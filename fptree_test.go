package fptree

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestPublicAPITree(t *testing.T) {
	tree, err := Create(Options{PoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 5000; k++ {
		if err := tree.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 5000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if v, ok := tree.Find(77); !ok || v != 154 {
		t.Fatalf("Find = %d,%v", v, ok)
	}
	if ok, _ := tree.Update(77, 1); !ok {
		t.Fatal("update failed")
	}
	if ok, _ := tree.Delete(78); !ok {
		t.Fatal("delete failed")
	}
	if err := tree.Upsert(78, 5); err != nil {
		t.Fatal(err)
	}
	kvs := tree.ScanN(100, 10)
	if len(kvs) != 10 || kvs[0].Key != 100 {
		t.Fatalf("scan = %v", kvs)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISaveLoad(t *testing.T) {
	tree, err := Create(Options{PoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 1000; k++ {
		tree.Insert(k, k) //nolint:errcheck
	}
	path := filepath.Join(t.TempDir(), "t.img")
	if err := tree.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := Load(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1000 {
		t.Fatalf("reloaded Len = %d", re.Len())
	}
}

func TestPublicAPICrashRecover(t *testing.T) {
	tree, err := Create(Options{PoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 2000; k++ {
		tree.Insert(k, k) //nolint:errcheck
	}
	tree.Pool().Crash()
	if err := tree.Recover(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 2000 {
		t.Fatalf("Len after recovery = %d", tree.Len())
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	tree, err := CreateConcurrent(Options{PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				k := uint64(w)*2000 + i + 1
				if err := tree.Insert(k, k); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tree.Len() != 8000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	tree.Pool().Crash()
	if err := tree.Recover(); err != nil {
		t.Fatal(err)
	}
	if v, ok := tree.Find(5); !ok || v != 5 {
		t.Fatalf("after recovery Find(5) = %d,%v", v, ok)
	}
}

func TestPublicAPIVar(t *testing.T) {
	tree, err := CreateVar(Options{PoolSize: 64 << 20, ValueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("user:%06d", i))
		if err := tree.Insert(k, []byte("profile")); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := tree.Find([]byte("user:000042")); !ok || string(v[:7]) != "profile" {
		t.Fatalf("var find = %q,%v", v, ok)
	}
	got := tree.ScanN([]byte("user:000100"), 3)
	if len(got) != 3 || string(got[0].Key) != "user:000100" {
		t.Fatalf("var scan = %v", got)
	}
}

func TestPublicAPIConcurrentVar(t *testing.T) {
	tree, err := CreateConcurrentVar(Options{PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := []byte(fmt.Sprintf("w%d-%05d", w, i))
				if err := tree.Insert(k, []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tree.Len() != 4000 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestPublicAPIPTreeVariant(t *testing.T) {
	tree, err := Create(Options{PoolSize: 32 << 20, PTree: true, LeafCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 500; k++ {
		tree.Insert(k, k) //nolint:errcheck
	}
	if v, ok := tree.Find(123); !ok || v != 123 {
		t.Fatalf("ptree find = %d,%v", v, ok)
	}
}

func TestPublicAPILatencyEmulation(t *testing.T) {
	mk := func(ns time.Duration) time.Duration {
		tree, err := Create(Options{
			PoolSize: 32 << 20,
			Latency:  LatencyProfile{Emulate: ns > 0, Read: ns, Write: ns, CacheBytes: -1},
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 2000; k++ {
			tree.Insert(k, k) //nolint:errcheck
		}
		start := time.Now()
		for k := uint64(1); k <= 2000; k++ {
			tree.Find(k)
		}
		return time.Since(start)
	}
	fast := mk(0)
	slow := mk(2 * time.Microsecond)
	if slow < fast*3 {
		t.Fatalf("latency emulation had no effect: fast=%v slow=%v", fast, slow)
	}
}

// TestPublicAPIIterators smokes the resumable iterators through all four
// facades; the exhaustive differential coverage lives in internal/crashtest.
func TestPublicAPIIterators(t *testing.T) {
	fixed, err := Create(Options{PoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cfixed, err := CreateConcurrent(Options{PoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(10); k <= 500; k += 10 {
		if err := fixed.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
		if err := cfixed.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	for name, it := range map[string]*Iterator{
		"Tree":  fixed.Iterator(100, 200),
		"CTree": cfixed.Iterator(100, 200),
	} {
		var got []uint64
		for ; it.Valid(); it.Next() {
			if it.Value() != it.Key()*3 {
				t.Fatalf("%s: value %d for key %d", name, it.Value(), it.Key())
			}
			got = append(got, it.Key())
		}
		it.Close()
		if len(got) != 10 || got[0] != 100 || got[9] != 190 {
			t.Fatalf("%s: window [100,200) = %v", name, got)
		}
	}
	rev := fixed.ReverseIterator(0, 0)
	if !rev.Valid() || rev.Key() != 500 {
		t.Fatalf("reverse start = %d, want 500", rev.Key())
	}
	rev.Next()
	if rev.Key() != 490 {
		t.Fatalf("reverse second = %d, want 490", rev.Key())
	}
	rev.Close()

	vt, err := CreateVar(Options{PoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cvt, err := CreateConcurrentVar(Options{PoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key%03d", i))
		if err := vt.Insert(k, []byte("12345678")); err != nil {
			t.Fatal(err)
		}
		if err := cvt.Insert(k, []byte("12345678")); err != nil {
			t.Fatal(err)
		}
	}
	for name, it := range map[string]*VarIterator{
		"VarTree":  vt.Iterator([]byte("key010"), []byte("key020")),
		"CVarTree": cvt.Iterator([]byte("key010"), []byte("key020")),
	} {
		n := 0
		for ; it.Valid(); it.Next() {
			n++
		}
		it.Close()
		if n != 10 {
			t.Fatalf("%s: window [key010,key020) yielded %d keys, want 10", name, n)
		}
	}
	vrev := cvt.ReverseIterator(nil, nil)
	if !vrev.Valid() || string(vrev.Key()) != "key049" {
		t.Fatalf("var reverse start = %q", vrev.Key())
	}
	vrev.Close()

	// CVarTree.ScanN joined the facade alongside the iterators.
	kvs := cvt.ScanN([]byte("key045"), 100)
	if len(kvs) != 5 || string(kvs[0].Key) != "key045" {
		t.Fatalf("CVarTree.ScanN = %d pairs, first %q", len(kvs), kvs[0].Key)
	}
}
