package fptree

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks walks every *.md file in the repository and checks that
// relative link targets exist. External URLs are not fetched (CI must not
// depend on the network); only file-path targets are verified. CI's docs job
// runs this test on every push so documentation reorganizations cannot leave
// dangling references behind.
func TestMarkdownLinks(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var mdFiles []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}

	linkRe := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, md)
		for _, target := range extractLinkTargets(linkRe, string(data)) {
			if !linkTargetExists(filepath.Dir(md), target) {
				t.Errorf("%s: broken link target %q", rel, target)
			}
		}
	}
}

// TestDeepDiveDocsLinked pins the documentation topology: the deep-dive
// walkthroughs (RECOVERY.md, CONCURRENCY.md) must exist and be reachable from
// both README.md and ARCHITECTURE.md, so a reader landing on either entry
// point can find them. A reorganization that drops a link fails here even
// though no link *target* broke.
func TestDeepDiveDocsLinked(t *testing.T) {
	for _, doc := range []string{"RECOVERY.md", "CONCURRENCY.md"} {
		if _, err := os.Stat(doc); err != nil {
			t.Fatalf("deep-dive doc missing: %v", err)
		}
		for _, from := range []string{"README.md", "ARCHITECTURE.md"} {
			data, err := os.ReadFile(from)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), "("+doc+")") {
				t.Errorf("%s does not link %s", from, doc)
			}
		}
	}
}

// extractLinkTargets returns the link destinations of every markdown inline
// link outside fenced code blocks.
func extractLinkTargets(linkRe *regexp.Regexp, doc string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return targets
}

// linkTargetExists reports whether a markdown link destination resolves:
// external and intra-document links are accepted as-is, relative paths must
// name an existing file or directory.
func linkTargetExists(dir, target string) bool {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return true
	}
	if strings.HasPrefix(target, "#") {
		return true // intra-document anchor
	}
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	_, err := os.Stat(filepath.Join(dir, target))
	return err == nil
}
