package fptree

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks for the benchstat comparison tracked in EXPERIMENTS.md:
// insert/find/scan on both key codecs, through the public facades only, so
// the same binary-independent workload runs before and after core refactors.

func benchFixedTree(b *testing.B, n uint64) *Tree {
	b.Helper()
	tree, err := Create(Options{PoolSize: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		if err := tree.Insert(k, k); err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

func benchVarTree(b *testing.B, n int) *VarTree {
	b.Helper()
	tree, err := CreateVar(Options{PoolSize: 512 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("key%013d", i)), []byte("12345678")); err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

func BenchmarkMicroInsertFixed(b *testing.B) {
	tree, err := Create(Options{PoolSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(rng.Uint64()|1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFindFixed(b *testing.B) {
	const n = 100000
	tree := benchFixedTree(b, n)
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tree.Find(rng.Uint64()%n + 1); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkMicroScanFixed(b *testing.B) {
	const n = 100000
	tree := benchFixedTree(b, n)
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := tree.ScanN(rng.Uint64()%n+1, 100)
		if len(got) == 0 {
			b.Fatal("empty scan")
		}
	}
}

// TestScanNAllocBound pins the allocation behaviour of the pre-sized ScanN
// paths so a regression back to per-call reflection sorting or unsized result
// slices fails loudly. The fixed codec returns values inline (a couple of
// slice headers per scan); the var codec inherently copies each key and value
// out of the arena, so its bound scales with the scan length.
func TestScanNAllocBound(t *testing.T) {
	fixed, err := Create(Options{PoolSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 10000; k++ {
		if err := fixed.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(100, func() { fixed.ScanN(500, 100) }); got > 8 {
		t.Errorf("fixed ScanN(·,100): %.1f allocs/op, want <= 8", got)
	}

	vt, err := CreateVar(Options{PoolSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := vt.Insert([]byte(fmt.Sprintf("key%013d", i)), []byte("12345678")); err != nil {
			t.Fatal(err)
		}
	}
	// ~2 allocs per returned pair (key copy + value copy) plus slack for the
	// per-leaf batches.
	if got := testing.AllocsPerRun(100, func() { vt.ScanN([]byte("key0000000000500"), 100) }); got > 260 {
		t.Errorf("var ScanN(·,100): %.1f allocs/op, want <= 260", got)
	}
}

func BenchmarkMicroInsertVar(b *testing.B) {
	tree, err := CreateVar(Options{PoolSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("key%013d", rng.Uint64())), []byte("12345678")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFindVar(b *testing.B) {
	const n = 100000
	tree := benchVarTree(b, n)
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tree.Find([]byte(fmt.Sprintf("key%013d", rng.Intn(n)))); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkMicroScanVar(b *testing.B) {
	const n = 100000
	tree := benchVarTree(b, n)
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := tree.ScanN([]byte(fmt.Sprintf("key%013d", rng.Intn(n))), 100)
		if len(got) == 0 {
			b.Fatal("empty scan")
		}
	}
}
