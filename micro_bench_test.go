package fptree

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks for the benchstat comparison tracked in EXPERIMENTS.md:
// insert/find/scan on both key codecs, through the public facades only, so
// the same binary-independent workload runs before and after core refactors.

func benchFixedTree(b *testing.B, n uint64) *Tree {
	b.Helper()
	tree, err := Create(Options{PoolSize: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		if err := tree.Insert(k, k); err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

func benchVarTree(b *testing.B, n int) *VarTree {
	b.Helper()
	tree, err := CreateVar(Options{PoolSize: 512 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("key%013d", i)), []byte("12345678")); err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

func BenchmarkMicroInsertFixed(b *testing.B) {
	tree, err := Create(Options{PoolSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(rng.Uint64()|1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFindFixed(b *testing.B) {
	const n = 100000
	tree := benchFixedTree(b, n)
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tree.Find(rng.Uint64()%n + 1); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkMicroScanFixed(b *testing.B) {
	const n = 100000
	tree := benchFixedTree(b, n)
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := tree.ScanN(rng.Uint64()%n+1, 100)
		if len(got) == 0 {
			b.Fatal("empty scan")
		}
	}
}

func BenchmarkMicroInsertVar(b *testing.B) {
	tree, err := CreateVar(Options{PoolSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("key%013d", rng.Uint64())), []byte("12345678")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFindVar(b *testing.B) {
	const n = 100000
	tree := benchVarTree(b, n)
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tree.Find([]byte(fmt.Sprintf("key%013d", rng.Intn(n)))); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkMicroScanVar(b *testing.B) {
	const n = 100000
	tree := benchVarTree(b, n)
	rng := rand.New(rand.NewSource(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := tree.ScanN([]byte(fmt.Sprintf("key%013d", rng.Intn(n))), 100)
		if len(got) == 0 {
			b.Fatal("empty scan")
		}
	}
}
