package fptree

// Benchmark harness: one testing.B entry per table and figure of the paper's
// evaluation. These run the same generators as cmd/fptree-bench at a scale
// suitable for `go test -bench`; use the CLI for the full paper-shaped
// sweeps (or -scale paper for the original sizes).

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"fptree/internal/bench"
)

var benchScale = bench.Scale{Warm: 20000, Ops: 10000}

// BenchmarkTable1NodeSizes regenerates the node-size tuning experiment.
func BenchmarkTable1NodeSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table1NodeSizes(io.Discard, bench.Scale{Warm: 5000, Ops: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Probes regenerates the expected-probe-count comparison.
func BenchmarkFigure4Probes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig4Probes(io.Discard, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Fixed regenerates the single-threaded latency sweep for
// fixed-size keys (Figure 7a-d).
func BenchmarkFigure7Fixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig7Fixed(io.Discard, benchScale, []int{90, 650}, bench.FixedKinds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Var regenerates Figure 7g-j (variable-size keys).
func BenchmarkFigure7Var(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig7Var(io.Discard, bench.Scale{Warm: 10000, Ops: 5000}, []int{90, 650}, bench.FixedKinds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Recovery regenerates Figure 7e-f (recovery vs size).
func BenchmarkFigure7Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig7Recovery(io.Discard, []int{5000, 20000}, []int{90, 650}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Memory regenerates the memory-consumption comparison.
func BenchmarkFigure8Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig8Memory(io.Discard, 20000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9Concurrency regenerates the single-socket thread sweep.
func BenchmarkFigure9Concurrency(b *testing.B) {
	threads := []int{1, 2, runtime.NumCPU() * 2}
	for i := 0; i < b.N; i++ {
		if err := bench.Fig9Concurrency(io.Discard, benchScale, threads, 85, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10TwoSockets extends the sweep past physical cores (the
// paper's second socket).
func BenchmarkFigure10TwoSockets(b *testing.B) {
	threads := []int{1, runtime.NumCPU() * 2, runtime.NumCPU() * 4}
	for i := 0; i < b.N; i++ {
		if err := bench.Fig9Concurrency(io.Discard, benchScale, threads, 85, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11HigherLatency re-runs the sweep at the paper's
// remote-socket latency.
func BenchmarkFigure11HigherLatency(b *testing.B) {
	threads := []int{1, runtime.NumCPU() * 2}
	for i := 0; i < b.N; i++ {
		if err := bench.Fig9Concurrency(io.Discard, benchScale, threads, 145, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12TATP regenerates the database throughput + restart table.
func BenchmarkFigure12TATP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig12TATP(io.Discard, 10000, 20000, 4, []int{160}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13Memcached regenerates the memcached throughput table.
func BenchmarkFigure13Memcached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig13Memcached(io.Discard, 4, 2000, []int{85}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure14Payload regenerates the payload-size sweep.
func BenchmarkFigure14Payload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig14Payload(io.Discard, bench.Scale{Warm: 5000, Ops: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablations from DESIGN.md.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := bench.Scale{Warm: 5000, Ops: 2000}
		if err := bench.AblationFingerprints(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
		if err := bench.AblationGroups(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
		if err := bench.AblationSelectivePersistence(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- direct per-operation microbenchmarks on the public API -----------------

func BenchmarkTreeInsert(b *testing.B) {
	tree, err := Create(Options{PoolSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(rng.Uint64()|1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeFind(b *testing.B) {
	tree, err := Create(Options{PoolSize: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for k := uint64(1); k <= n; k++ {
		tree.Insert(k, k) //nolint:errcheck
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Find(uint64(i%n) + 1)
	}
}

func BenchmarkCTreeInsertParallel(b *testing.B) {
	tree, err := CreateConcurrent(Options{PoolSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	var ctr uint64
	b.RunParallel(func(pb *testing.PB) {
		seed := rand.Uint64()
		i := uint64(0)
		for pb.Next() {
			i++
			if err := tree.Insert(seed^i<<20|i, i); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = ctr
}

func BenchmarkCTreeFindParallel(b *testing.B) {
	tree, err := CreateConcurrent(Options{PoolSize: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for k := uint64(1); k <= n; k++ {
		tree.Insert(k, k) //nolint:errcheck
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			tree.Find(i%n + 1)
		}
	})
}

func BenchmarkVarTreeInsert(b *testing.B) {
	tree, err := CreateVar(Options{PoolSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert([]byte(fmt.Sprintf("k%015d", i)), []byte("12345678")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery100k(b *testing.B) {
	tree, err := Create(Options{PoolSize: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(1); k <= 100000; k++ {
		tree.Insert(k, k) //nolint:errcheck
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Pool().Crash()
		if err := tree.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}
