package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecoveryBenchJSON drives the recovery workload end-to-end at a small
// size and checks the produced document against the schema validator — the
// same pairing CI's recovery-smoke job runs via the fptree-bench binary.
func TestRecoveryBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.json")
	var out bytes.Buffer
	err := RecoveryBench(&out, RecoveryConfig{
		Sizes:    []int{3000},
		Workers:  []int{1, 2},
		Var:      true,
		JSONPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("produced report fails validation: %v", err)
	}
	for _, want := range []string{"FPTree ", "FPTreeVar", "workers=1", "workers=2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary output missing %q:\n%s", want, out.String())
		}
	}
}

// TestValidateReportRejects exercises the malformed-document branches the
// smoke job relies on to catch schema drift.
func TestValidateReportRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":      `{"generated_at":"2026-01-02T03:04:05Z","go_version":"go1.23","goos":"linux","goarch":"amd64","num_cpu":1,"warm_keys":0,"bogus":1,"recovery":[]}`,
		"no records":         `{"generated_at":"2026-01-02T03:04:05Z","go_version":"go1.23","goos":"linux","goarch":"amd64","num_cpu":1,"warm_keys":0}`,
		"bad timestamp":      `{"generated_at":"yesterday","go_version":"go1.23","goos":"linux","goarch":"amd64","num_cpu":1,"warm_keys":0,"recovery":[{"tree":"FPTree","keys":1,"workers":1,"latency_ns":0,"recovery_ms":1,"rebuild_ms":0.5,"leaves_scanned":1,"groups_scanned":0,"speedup_vs_1":1}]}`,
		"zero workers":       `{"generated_at":"2026-01-02T03:04:05Z","go_version":"go1.23","goos":"linux","goarch":"amd64","num_cpu":1,"warm_keys":0,"recovery":[{"tree":"FPTree","keys":1,"workers":0,"latency_ns":0,"recovery_ms":1,"rebuild_ms":0.5,"leaves_scanned":1,"groups_scanned":0,"speedup_vs_1":1}]}`,
		"rebuild > recovery": `{"generated_at":"2026-01-02T03:04:05Z","go_version":"go1.23","goos":"linux","goarch":"amd64","num_cpu":1,"warm_keys":0,"recovery":[{"tree":"FPTree","keys":1,"workers":1,"latency_ns":0,"recovery_ms":1,"rebuild_ms":2,"leaves_scanned":1,"groups_scanned":0,"speedup_vs_1":1}]}`,
	}
	for name, doc := range cases {
		if err := ValidateReport([]byte(doc)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}
