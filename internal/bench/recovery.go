package bench

// Recovery-time experiment: the reproduction of the paper's §6 measurement
// that FPTree recovery is a fast linear scan of the leaf level (the DRAM
// inner nodes are rebuilt, not logged), and of the observation that the scan
// parallelizes across recovery threads. For each tree size the harness bulk
// loads a tree, simulates a restart (cold caches, only the durable view
// survives), and times core.Open at each requested worker count under the
// emulated SCM latency. Latency is charged in LatencySleep mode so the media
// waits of concurrent scan workers overlap in wall clock even when the host
// has fewer cores than workers; see scm.LatencySleep.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"fptree/internal/core"
	"fptree/internal/scm"
)

// JSONRecoveryResult is one recovery-time measurement: one tree, one size,
// one worker count.
type JSONRecoveryResult struct {
	Tree          string  `json:"tree"`       // FPTree | FPTreeVar
	Keys          int     `json:"keys"`       // live pairs in the recovered tree
	Workers       int     `json:"workers"`    // RecoveryOptions.Workers
	LatencyNS     int     `json:"latency_ns"` // emulated SCM read/write latency
	RecoveryMS    float64 `json:"recovery_ms"`
	RebuildMS     float64 `json:"rebuild_ms"` // leaf scan + inner rebuild portion
	LeavesScanned uint64  `json:"leaves_scanned"`
	GroupsScanned uint64  `json:"groups_scanned"`
	SpeedupVs1    float64 `json:"speedup_vs_1"` // recovery_ms(workers=1) / recovery_ms
	FileBacked    bool    `json:"file_backed,omitempty"`
}

// RecoveryConfig parameterizes RecoveryBench.
type RecoveryConfig struct {
	Sizes     []int  // tree sizes in keys; defaults to {100000, 1000000}
	Workers   []int  // worker counts; 1 is always included as the baseline
	LatencyNS int    // emulated SCM latency; defaults to 250 (reads and writes)
	Var       bool   // also measure the variable-size-key tree
	JSONPath  string // when non-empty, write a JSONReport with Recovery records
	// FileBacked builds each tree in an arena file (scm.OpenFile), closes it,
	// and reopens the file cold for every measurement — a true process
	// restart including the arena mmap, not just the emulated Crash.
	FileBacked bool
	// Dir is where FileBacked arena files live; empty means a fresh temp
	// directory, removed when the bench finishes.
	Dir string
}

func (c *RecoveryConfig) normalize() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{100000, 1000000}
	}
	if c.LatencyNS == 0 {
		c.LatencyNS = 250
	}
	seen := map[int]bool{1: true}
	ws := []int{1}
	for _, w := range c.Workers {
		if w > 1 && !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	if len(ws) == 1 {
		ws = append(ws, 2)
	}
	sort.Ints(ws)
	c.Workers = ws
}

// recoveryPoolMB sizes the arena for a bulk-loaded tree of n keys with
// ample headroom (leaves at the default fill factor, groups, allocator
// metadata; var keys additionally allocate one line-rounded block per key).
func recoveryPoolMB(n int, varKeys bool) int {
	perKey := 64
	if varKeys {
		perKey = 192
	}
	return 64 + n*perKey>>20
}

// RecoveryBench runs the recovery-time experiment and streams one summary
// line per measurement to w.
func RecoveryBench(w io.Writer, cfg RecoveryConfig) error {
	cfg.normalize()
	if cfg.FileBacked && cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "fptree-recovery-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	var results []JSONRecoveryResult
	for _, size := range cfg.Sizes {
		rs, err := measureRecoveryFixed(w, size, cfg)
		if err != nil {
			return err
		}
		results = append(results, rs...)
		if cfg.Var {
			rs, err := measureRecoveryVar(w, size, cfg)
			if err != nil {
				return err
			}
			results = append(results, rs...)
		}
	}
	if cfg.JSONPath != "" {
		rep := newJSONReport(0)
		rep.Recovery = results
		if err := writeJSONReport(rep, cfg.JSONPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d recovery results to %s\n", len(results), cfg.JSONPath)
	}
	return nil
}

func noteRecovery(w io.Writer, r JSONRecoveryResult) {
	mode := ""
	if r.FileBacked {
		mode = "  [arena file]"
	}
	fmt.Fprintf(w, "%-9s %9d keys  workers=%-2d  recovery %8.1f ms  rebuild %8.1f ms  %8d leaves  %.2fx%s\n",
		r.Tree, r.Keys, r.Workers, r.RecoveryMS, r.RebuildMS, r.LeavesScanned, r.SpeedupVs1, mode)
}

// timeRecovery simulates a restart of pool and times one recovery at the
// given worker count. open must run the codec-appropriate core.Open*.
func timeRecovery(pool *scm.Pool, lat time.Duration, open func() (*core.OpStats, int, error)) (time.Duration, *core.OpStats, int, error) {
	// A restart: unflushed lines are lost (none here — a quiescent tree is
	// fully flushed) and the CPU cache is cold. Recovery itself runs under
	// the emulated SCM latency; everything around it does not.
	pool.Crash()
	pool.SetLatency(scm.LatencySleep, lat, lat)
	start := time.Now()
	ops, n, err := open()
	dt := time.Since(start)
	pool.SetLatency(scm.LatencyCount, 0, 0)
	return dt, ops, n, err
}

// recoveryArena hands out the pool for each measurement. In-memory mode
// reuses the one loaded pool (timeRecovery's Crash resets it); file-backed
// mode closes the loaded arena after the bulk load and reopens the file cold
// per measurement, so every data point includes a real arena-file open.
type recoveryArena struct {
	cfg  RecoveryConfig
	pool *scm.Pool // the loaded tree's pool; nil once closed in file mode
	path string
}

func newRecoveryArena(cfg RecoveryConfig, name string, sizeMB int) (*recoveryArena, error) {
	a := &recoveryArena{cfg: cfg}
	if !cfg.FileBacked {
		a.pool = scm.NewPool(int64(sizeMB)<<20, scm.LatencyConfig{})
		return a, nil
	}
	a.path = filepath.Join(cfg.Dir, name)
	pool, _, err := scm.OpenFile(a.path, int64(sizeMB)<<20, scm.LatencyConfig{})
	if err != nil {
		return nil, err
	}
	a.pool = pool
	return a, nil
}

// forMeasurement returns the pool to recover plus a release function to call
// when the measurement is done.
func (a *recoveryArena) forMeasurement() (*scm.Pool, func(), error) {
	if !a.cfg.FileBacked {
		return a.pool, func() {}, nil
	}
	if a.pool != nil { // first measurement: close the arena the load built
		if err := a.pool.Close(); err != nil {
			return nil, nil, err
		}
		a.pool = nil
	}
	p, _, err := scm.OpenFile(a.path, 0, scm.LatencyConfig{})
	if err != nil {
		return nil, nil, err
	}
	return p, func() { p.Close() }, nil //nolint:errcheck
}

func measureRecoveryFixed(w io.Writer, size int, cfg RecoveryConfig) ([]JSONRecoveryResult, error) {
	arena, err := newRecoveryArena(cfg, fmt.Sprintf("fixed-%d.dat", size), recoveryPoolMB(size, false))
	if err != nil {
		return nil, err
	}
	tr, err := core.Create(arena.pool, core.Config{LeafCap: 56, InnerFanout: 128, GroupSize: 8})
	if err != nil {
		return nil, err
	}
	kvs := make([]core.KV, size)
	for i := range kvs {
		kvs[i] = core.KV{Key: uint64(i)*2 + 1, Value: uint64(i)}
	}
	if err := tr.BulkLoad(kvs, 0); err != nil {
		return nil, err
	}
	lat := time.Duration(cfg.LatencyNS) * time.Nanosecond
	var out []JSONRecoveryResult
	var base float64
	for _, workers := range cfg.Workers {
		pool, release, err := arena.forMeasurement()
		if err != nil {
			return nil, err
		}
		dt, ops, n, err := timeRecovery(pool, lat, func() (*core.OpStats, int, error) {
			t, err := core.Open(pool, core.RecoveryOptions{Workers: workers})
			if err != nil {
				return nil, 0, err
			}
			return &t.Ops, t.Len(), nil
		})
		release()
		if err != nil {
			return nil, err
		}
		if n != size {
			return nil, fmt.Errorf("bench: recovered %d keys, want %d", n, size)
		}
		r := recoveryResult("FPTree", size, workers, cfg, dt, ops, &base)
		noteRecovery(w, r)
		out = append(out, r)
	}
	return out, nil
}

func measureRecoveryVar(w io.Writer, size int, cfg RecoveryConfig) ([]JSONRecoveryResult, error) {
	arena, err := newRecoveryArena(cfg, fmt.Sprintf("var-%d.dat", size), recoveryPoolMB(size, true))
	if err != nil {
		return nil, err
	}
	tr, err := core.CreateVar(arena.pool, core.Config{LeafCap: 56, InnerFanout: 128, GroupSize: 8, ValueSize: 8})
	if err != nil {
		return nil, err
	}
	val := []byte("valuedat")
	kvs := make([]core.VarKV, size)
	for i := range kvs {
		kvs[i] = core.VarKV{Key: keys16(uint64(i)), Value: val}
	}
	if err := tr.BulkLoad(kvs, 0); err != nil {
		return nil, err
	}
	lat := time.Duration(cfg.LatencyNS) * time.Nanosecond
	var out []JSONRecoveryResult
	var base float64
	for _, workers := range cfg.Workers {
		pool, release, err := arena.forMeasurement()
		if err != nil {
			return nil, err
		}
		dt, ops, n, err := timeRecovery(pool, lat, func() (*core.OpStats, int, error) {
			t, err := core.OpenVar(pool, core.RecoveryOptions{Workers: workers})
			if err != nil {
				return nil, 0, err
			}
			return &t.Ops, t.Len(), nil
		})
		release()
		if err != nil {
			return nil, err
		}
		if n != size {
			return nil, fmt.Errorf("bench: recovered %d keys, want %d", n, size)
		}
		r := recoveryResult("FPTreeVar", size, workers, cfg, dt, ops, &base)
		noteRecovery(w, r)
		out = append(out, r)
	}
	return out, nil
}

// recoveryResult assembles one record; base carries the workers=1 time
// across the worker sweep for the speedup column.
func recoveryResult(tree string, size, workers int, cfg RecoveryConfig, dt time.Duration, ops *core.OpStats, base *float64) JSONRecoveryResult {
	ms := float64(dt.Nanoseconds()) / 1e6
	if workers == 1 {
		*base = ms
	}
	speedup := 1.0
	if ms > 0 && *base > 0 {
		speedup = *base / ms
	}
	return JSONRecoveryResult{
		Tree:          tree,
		Keys:          size,
		Workers:       workers,
		LatencyNS:     cfg.LatencyNS,
		RecoveryMS:    ms,
		RebuildMS:     float64(ops.RecoveryNanos.Load()) / 1e6,
		LeavesScanned: ops.RecoveryLeaves.Load(),
		GroupsScanned: ops.RecoveryGroups.Load(),
		SpeedupVs1:    speedup,
		FileBacked:    cfg.FileBacked,
	}
}
