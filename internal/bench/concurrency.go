package bench

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Fig9Concurrency reproduces Figures 9-11: throughput and speedup of the
// concurrent FPTree and NV-Tree across thread counts, for the
// Find/Insert/Update/Delete/Mixed workloads. latNS selects the emulated SCM
// latency (85 for Figure 9/10, 145 for Figure 11 — the paper's local vs
// remote socket latencies).
func Fig9Concurrency(w io.Writer, sc Scale, threads []int, latNS int, varKeys bool) error {
	title := "fixed keys"
	if varKeys {
		title = "variable-size keys"
	}
	fmt.Fprintf(w, "# Figures 9-11: concurrent throughput, %s, SCM %dns\n", title, latNS)
	fmt.Fprintf(w, "%-12s %8s %-8s %14s %10s\n", "tree", "threads", "op", "Mops/s", "speedup")
	for _, kind := range []Kind{KindFPTreeC, KindNVTreeC} {
		base := map[string]float64{}
		for _, th := range threads {
			rows, err := runConcurrent(kind, sc, th, latNS, varKeys)
			if err != nil {
				return err
			}
			for _, r := range rows {
				if th == threads[0] {
					base[r.op] = r.mops
				}
				sp := r.mops / base[r.op] * float64(threads[0])
				fmt.Fprintf(w, "%-12s %8d %-8s %14.3f %9.2fx\n", r.name, th, r.op, r.mops, sp)
			}
		}
	}
	return nil
}

type concRow struct {
	name string
	op   string
	mops float64
}

// runConcurrent warms the tree and measures each operation type with th
// goroutines over disjoint key stripes.
func runConcurrent(kind Kind, sc Scale, th, latNS int, varKeys bool) ([]concRow, error) {
	lat := LatencyNS(latNS, true)
	var name string
	var ft FixedTree
	var vt VarTree
	var err error
	if varKeys {
		name, vt, _, err = NewConcurrentVar(kind, poolForScale(sc)*4, 8, lat)
	} else {
		name, ft, _, err = NewConcurrentFixed(kind, poolForScale(sc)*2, lat)
	}
	if err != nil {
		return nil, err
	}
	warm := genKeys(sc.Warm, 21)
	extra := genKeys(sc.Ops, 22)
	val := []byte("valuedat")
	insertOne := func(k uint64, v uint64) error {
		if varKeys {
			return vt.Insert(keys16(k), val)
		}
		return ft.Insert(k, v)
	}
	for _, k := range warm {
		if err := insertOne(k, k); err != nil {
			return nil, err
		}
	}

	parallel := func(n int, fn func(i int)) float64 {
		var wg sync.WaitGroup
		chunk := n / th
		if chunk == 0 {
			chunk = 1
		}
		start := time.Now()
		for t := 0; t < th; t++ {
			lo := t * chunk
			hi := lo + chunk
			if t == th-1 {
				hi = n
			}
			if lo >= n {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}(lo, hi)
		}
		wg.Wait()
		return float64(n) / time.Since(start).Seconds() / 1e6
	}

	var rows []concRow
	rows = append(rows, concRow{name, "Find", parallel(sc.Ops, func(i int) {
		if varKeys {
			vt.Find(keys16(warm[i%len(warm)]))
		} else {
			ft.Find(warm[i%len(warm)])
		}
	})})
	rows = append(rows, concRow{name, "Insert", parallel(sc.Ops, func(i int) {
		if varKeys {
			vt.Insert(keys16(extra[i]), val) //nolint:errcheck
		} else {
			ft.Insert(extra[i], 1) //nolint:errcheck
		}
	})})
	rows = append(rows, concRow{name, "Update", parallel(sc.Ops, func(i int) {
		if varKeys {
			vt.Update(keys16(warm[i%len(warm)]), val) //nolint:errcheck
		} else {
			ft.Update(warm[i%len(warm)], 2) //nolint:errcheck
		}
	})})
	rows = append(rows, concRow{name, "Delete", parallel(sc.Ops, func(i int) {
		if varKeys {
			vt.Delete(keys16(extra[i])) //nolint:errcheck
		} else {
			ft.Delete(extra[i]) //nolint:errcheck
		}
	})})
	mixed := genKeys(sc.Ops, 23)
	rows = append(rows, concRow{name, "Mixed", parallel(sc.Ops, func(i int) {
		if i%2 == 0 {
			if varKeys {
				vt.Insert(keys16(mixed[i]), val) //nolint:errcheck
			} else {
				ft.Insert(mixed[i], 1) //nolint:errcheck
			}
		} else {
			if varKeys {
				vt.Find(keys16(warm[i%len(warm)]))
			} else {
				ft.Find(warm[i%len(warm)])
			}
		}
	})})
	return rows, nil
}
