package bench

import (
	"fmt"
	"io"
	"sync"

	"fptree/internal/core"
	"fptree/internal/kvserver"
	"fptree/internal/nvtree"
	"fptree/internal/scm"
	"fptree/internal/stx"
	"fptree/internal/tatp"
	"fptree/internal/wbtree"
)

// lockedIdx wraps a non-thread-safe index with an RWMutex so the TATP
// clients can read it in parallel, as the paper's prototype does with its
// single-threaded trees.
type lockedIdx struct {
	mu sync.RWMutex
	t  tatp.Index
}

func (l *lockedIdx) Insert(k, v uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Insert(k, v)
}

func (l *lockedIdx) Find(k uint64) (uint64, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.t.Find(k)
}

// tatpIndex builds the dictionary index of the given kind for Figure 12.
// The NV-Tree uses the paper's special database configuration (leaf 1024,
// inner 8) to survive the sequential-subscriber-id load.
func tatpIndex(kind Kind, poolMBs int, lat scm.LatencyConfig) (tatp.Index, func() (tatp.Index, error), *scm.Pool, error) {
	switch kind {
	case KindFPTree:
		pool := poolMB(poolMBs, lat)
		t, err := core.Create(pool, core.Config{LeafCap: 56, InnerFanout: 4096, GroupSize: 8})
		if err != nil {
			return nil, nil, nil, err
		}
		rec := func() (tatp.Index, error) {
			pool.Crash()
			nt, err := core.Open(pool)
			if err != nil {
				return nil, err
			}
			return &lockedIdx{t: nt}, nil
		}
		return &lockedIdx{t: t}, rec, pool, nil
	case KindPTree:
		pool := poolMB(poolMBs, lat)
		t, err := core.Create(pool, core.Config{Variant: core.VariantPTree, LeafCap: 32, InnerFanout: 4096})
		if err != nil {
			return nil, nil, nil, err
		}
		rec := func() (tatp.Index, error) {
			pool.Crash()
			nt, err := core.Open(pool)
			if err != nil {
				return nil, err
			}
			return &lockedIdx{t: nt}, nil
		}
		return &lockedIdx{t: t}, rec, pool, nil
	case KindNVTree:
		pool := poolMB(poolMBs, lat)
		t, err := nvtree.New(pool, nvtree.Config{LeafCap: 1024, InnerCap: 8})
		if err != nil {
			return nil, nil, nil, err
		}
		rec := func() (tatp.Index, error) {
			pool.Crash()
			nt, err := nvtree.Open(pool, 8)
			if err != nil {
				return nil, err
			}
			return &lockedIdx{t: nvIdx{nt}}, nil
		}
		return &lockedIdx{t: nvIdx{t}}, rec, pool, nil
	case KindWBTree:
		pool := poolMB(poolMBs, lat)
		t, err := wbtree.New(pool, wbtree.Config{InnerCap: 32, LeafCap: 63})
		if err != nil {
			return nil, nil, nil, err
		}
		rec := func() (tatp.Index, error) {
			pool.Crash()
			nt, err := wbtree.Open(pool)
			if err != nil {
				return nil, err
			}
			return &lockedIdx{t: wbIdx{nt}}, nil
		}
		return &lockedIdx{t: wbIdx{t}}, rec, pool, nil
	case KindSTXTree:
		t := stx.NewUint64()
		rec := func() (tatp.Index, error) {
			// A transient index must be rebuilt from scratch after a crash.
			nt := stx.NewUint64()
			return &lockedIdx{t: stxIdx{nt, true}}, nil
		}
		return &lockedIdx{t: stxIdx{t, false}}, rec, nil, nil
	}
	return nil, nil, nil, fmt.Errorf("bench: no TATP index for kind %q", kind)
}

type nvIdx struct{ t *nvtree.Tree }

func (a nvIdx) Insert(k, v uint64) error     { return a.t.Insert(k, v) }
func (a nvIdx) Find(k uint64) (uint64, bool) { return a.t.Find(k) }

type wbIdx struct{ t *wbtree.Tree }

func (a wbIdx) Insert(k, v uint64) error     { return a.t.Insert(k, v) }
func (a wbIdx) Find(k uint64) (uint64, bool) { return a.t.Find(k) }

type stxIdx struct {
	t     *stx.Tree[uint64, uint64]
	empty bool
}

func (a stxIdx) Insert(k, v uint64) error     { a.t.Insert(k, v); return nil }
func (a stxIdx) Find(k uint64) (uint64, bool) { return a.t.Find(k) }

// Fig12TATP reproduces Figure 12: TATP read-only throughput and database
// restart time per dictionary index, across SCM latencies.
func Fig12TATP(w io.Writer, subscribers, txns, clients int, latencies []int) error {
	fmt.Fprintf(w, "# Figure 12: TATP with %d subscribers, %d clients\n", subscribers, clients)
	fmt.Fprintf(w, "%-10s %8s %14s %14s\n", "index", "lat(ns)", "TX/s", "restart(ms)")
	for _, lat := range latencies {
		for _, kind := range []Kind{KindFPTree, KindPTree, KindNVTree, KindWBTree, KindSTXTree} {
			latCfg := LatencyNS(lat, true)
			idx, recoverIdx, idxPool, err := tatpIndex(kind, 64+subscribers/2000, latCfg)
			if err != nil {
				return err
			}
			colPool := poolMB(32+subscribers/1000, latCfg)
			db, err := tatp.Load(colPool, idx, subscribers)
			if err != nil {
				return err
			}
			tps := db.RunReadOnly(clients, txns)
			// Restart: crash both arenas and measure recovery (index rebuild
			// + column sanity scan). The STXTree restart re-inserts all ids.
			_ = idxPool
			restart, err := db.Restart(func() (tatp.Index, error) {
				nidx, err := recoverIdx()
				if err != nil {
					return nil, err
				}
				if si, ok := nidx.(*lockedIdx); ok {
					if sx, ok := si.t.(stxIdx); ok && sx.empty {
						for row := 0; row < subscribers; row++ {
							sx.t.Insert(uint64(row+1), uint64(row))
						}
					}
				}
				return nidx, nil
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %8d %14.0f %14.3f\n", kind, lat, tps, float64(restart.Microseconds())/1000)
		}
	}
	return nil
}

// Fig13Memcached reproduces Figure 13: memcached SET/GET throughput per
// storage engine over loopback TCP at two SCM latencies.
func Fig13Memcached(w io.Writer, clients, ops int, latencies []int) error {
	fmt.Fprintf(w, "# Figure 13: memcached over loopback, %d clients, %d ops per phase\n", clients, ops)
	fmt.Fprintf(w, "%-10s %8s %12s %12s\n", "store", "lat(ns)", "SET/s", "GET/s")
	type mk struct {
		name string
		make func(lat scm.LatencyConfig) (kvserver.Store, error)
	}
	stores := []mk{
		{"FPTreeC", func(l scm.LatencyConfig) (kvserver.Store, error) {
			return kvserver.NewFPTreeCStore(poolMB(64+ops/1000, l))
		}},
		{"FPTree", func(l scm.LatencyConfig) (kvserver.Store, error) {
			return kvserver.NewFPTreeStore(poolMB(64+ops/1000, l))
		}},
		{"PTree", func(l scm.LatencyConfig) (kvserver.Store, error) {
			return kvserver.NewPTreeStore(poolMB(64+ops/1000, l))
		}},
		{"NV-TreeC", func(l scm.LatencyConfig) (kvserver.Store, error) {
			return kvserver.NewNVTreeCStore(poolMB(128+ops/500, l))
		}},
		{"HashMap", func(l scm.LatencyConfig) (kvserver.Store, error) {
			return kvserver.NewHashMapStore(), nil
		}},
	}
	for _, lat := range latencies {
		for _, m := range stores {
			store, err := m.make(LatencyNS(lat, true))
			if err != nil {
				return err
			}
			srv, addr, err := kvserver.Serve("127.0.0.1:0", store)
			if err != nil {
				return err
			}
			res, err := kvserver.RunMCBenchmark(addr, clients, ops, 32)
			srv.Close()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %8d %12.0f %12.0f\n", m.name, lat, res.SetOps, res.GetOps)
			if m.name == "HashMap" {
				continue
			}
		}
	}
	return nil
}
