package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"fptree/internal/core"
	"fptree/internal/nvtree"
	"fptree/internal/scm"
	"fptree/internal/stx"
)

// Scale sizes an experiment. The paper uses 50 M warm-up keys and 50 M
// operations; the default CLI scale is laptop-sized and configurable.
type Scale struct {
	Warm int // keys loaded before measuring
	Ops  int // operations measured
}

// Latencies is the paper's emulated SCM read-latency sweep (Figure 7).
var Latencies = []int{90, 250, 450, 650}

// keys16 renders a fixed-size key as the paper's 16-byte string keys.
func keys16(k uint64) []byte {
	return []byte(fmt.Sprintf("k%015d", k%1e15))
}

func genKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for i := range keys {
		for {
			k := rng.Uint64()>>1 + 1
			if !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}
	return keys
}

func avgPerOp(n int, fn func(i int)) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	return time.Since(start) / time.Duration(n)
}

// Fig7Fixed reproduces Figure 7a-d: single-threaded Find/Insert/Update/
// Delete average time per operation across SCM latencies, fixed-size keys.
func Fig7Fixed(w io.Writer, sc Scale, latencies []int, kinds []Kind) error {
	fmt.Fprintf(w, "# Figure 7a-d: single-threaded base operations, fixed keys (8B)\n")
	fmt.Fprintf(w, "# warm=%d ops=%d; avg time/op in ns\n", sc.Warm, sc.Ops)
	fmt.Fprintf(w, "%-10s %8s %10s %10s %10s %10s\n", "tree", "lat(ns)", "Find", "Insert", "Update", "Delete")
	warm := genKeys(sc.Warm, 1)
	extra := genKeys(sc.Ops, 2)
	for _, kind := range kinds {
		for _, lat := range latencies {
			inst, err := NewFixed(kind, poolForScale(sc), LatencyNS(lat, true))
			if err != nil {
				return err
			}
			t := inst.Fixed
			for _, k := range warm {
				if err := t.Insert(k, k); err != nil {
					return err
				}
			}
			find := avgPerOp(sc.Ops, func(i int) { t.Find(warm[i%len(warm)]) })
			ins := avgPerOp(sc.Ops, func(i int) { t.Insert(extra[i], uint64(i)) })          //nolint:errcheck
			upd := avgPerOp(sc.Ops, func(i int) { t.Update(warm[i%len(warm)], uint64(i)) }) //nolint:errcheck
			del := avgPerOp(sc.Ops, func(i int) { t.Delete(extra[i]) })                     //nolint:errcheck
			fmt.Fprintf(w, "%-10s %8d %10d %10d %10d %10d\n", inst.Name, lat, find.Nanoseconds(), ins.Nanoseconds(), upd.Nanoseconds(), del.Nanoseconds())
			if kind == KindSTXTree {
				break // DRAM-only: latency-independent
			}
		}
	}
	return nil
}

// Fig7Var reproduces Figure 7g-j with 16-byte string keys.
func Fig7Var(w io.Writer, sc Scale, latencies []int, kinds []Kind) error {
	fmt.Fprintf(w, "# Figure 7g-j: single-threaded base operations, variable-size keys (16B strings)\n")
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %10s\n", "tree", "lat(ns)", "Find", "Insert", "Update", "Delete")
	warm := genKeys(sc.Warm, 3)
	extra := genKeys(sc.Ops, 4)
	val := []byte("valuedat")
	for _, kind := range kinds {
		for _, lat := range latencies {
			inst, err := NewVar(kind, poolForScale(sc)*2, 8, LatencyNS(lat, true))
			if err != nil {
				return err
			}
			t := inst.Var
			for _, k := range warm {
				if err := t.Insert(keys16(k), val); err != nil {
					return err
				}
			}
			find := avgPerOp(sc.Ops, func(i int) { t.Find(keys16(warm[i%len(warm)])) })
			ins := avgPerOp(sc.Ops, func(i int) { t.Insert(keys16(extra[i]), val) })          //nolint:errcheck
			upd := avgPerOp(sc.Ops, func(i int) { t.Update(keys16(warm[i%len(warm)]), val) }) //nolint:errcheck
			del := avgPerOp(sc.Ops, func(i int) { t.Delete(keys16(extra[i])) })               //nolint:errcheck
			fmt.Fprintf(w, "%-12s %8d %10d %10d %10d %10d\n", inst.Name, lat, find.Nanoseconds(), ins.Nanoseconds(), upd.Nanoseconds(), del.Nanoseconds())
			if kind == KindSTXTree {
				break
			}
		}
	}
	return nil
}

// Fig7Recovery reproduces Figure 7e-f: recovery time versus tree size at two
// SCM latencies, against a full STXTree rebuild.
func Fig7Recovery(w io.Writer, sizes []int, latencies []int) error {
	fmt.Fprintf(w, "# Figure 7e-f: recovery time vs tree size (fixed keys)\n")
	fmt.Fprintf(w, "%-10s %8s %10s %14s\n", "tree", "lat(ns)", "size", "recovery(ms)")
	for _, lat := range latencies {
		for _, size := range sizes {
			keys := genKeys(size, 5)
			for _, kind := range []Kind{KindFPTree, KindPTree, KindNVTree, KindWBTree} {
				inst, err := NewFixed(kind, 16+size/2000, LatencyNS(lat, true))
				if err != nil {
					return err
				}
				for _, k := range keys {
					if err := inst.Fixed.Insert(k, k); err != nil {
						return err
					}
				}
				inst.Pool.Crash()
				start := time.Now()
				if _, err := inst.Recover(); err != nil {
					return err
				}
				fmt.Fprintf(w, "%-10s %8d %10d %14.3f\n", inst.Name, lat, size, float64(time.Since(start).Microseconds())/1000)
			}
			// Full rebuild of the transient STXTree as the baseline.
			t := stx.NewUint64()
			start := time.Now()
			for _, k := range keys {
				t.Insert(k, k)
			}
			fmt.Fprintf(w, "%-10s %8s %10d %14.3f\n", "STXTree", "-", size, float64(time.Since(start).Microseconds())/1000)
		}
	}
	return nil
}

// Fig8Memory reproduces Figure 8: SCM and DRAM consumption per tree.
func Fig8Memory(w io.Writer, n int) error {
	fmt.Fprintf(w, "# Figure 8: memory consumption with %d keys (paper: 100M)\n", n)
	fmt.Fprintf(w, "%-12s %14s %14s %10s\n", "tree", "SCM(bytes)", "DRAM(bytes)", "DRAM%%")
	keys := genKeys(n, 6)
	for _, kind := range FixedKinds {
		inst, err := NewFixed(kind, 32+n/2000, scm.LatencyConfig{CacheBytes: -1})
		if err != nil {
			return err
		}
		for _, k := range keys {
			if err := inst.Fixed.Insert(k, k); err != nil {
				return err
			}
		}
		var scmBytes uint64
		if inst.Pool != nil {
			scmBytes = inst.Pool.AllocatedBytes()
		}
		dram := inst.DRAMBytes()
		frac := 0.0
		if scmBytes+dram > 0 {
			frac = float64(dram) / float64(scmBytes+dram) * 100
		}
		fmt.Fprintf(w, "%-12s %14d %14d %9.2f%%\n", inst.Name, scmBytes, dram, frac)
	}
	// Variable-size keys.
	fmt.Fprintf(w, "# variable-size keys (16B)\n")
	for _, kind := range FixedKinds {
		inst, err := NewVar(kind, 64+n/1000, 8, scm.LatencyConfig{CacheBytes: -1})
		if err != nil {
			return err
		}
		for _, k := range keys {
			if err := inst.Var.Insert(keys16(k), []byte("v")); err != nil {
				return err
			}
		}
		var scmBytes uint64
		if inst.Pool != nil {
			scmBytes = inst.Pool.AllocatedBytes()
		}
		dram := inst.DRAMBytes()
		frac := 0.0
		if scmBytes+dram > 0 {
			frac = float64(dram) / float64(scmBytes+dram) * 100
		}
		fmt.Fprintf(w, "%-12s %14d %14d %9.2f%%\n", inst.Name, scmBytes, dram, frac)
	}
	return nil
}

// Fig4Probes reproduces Figure 4: the expected number of in-leaf key probes,
// both analytically (the paper's closed form) and measured on the
// implementations.
func Fig4Probes(w io.Writer, n int) error {
	fmt.Fprintf(w, "# Figure 4: expected in-leaf key probes per successful search\n")
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %12s\n", "m", "FP(analytic)", "FP(meas)", "NV(analytic)", "NV(meas)", "wB(analytic)")
	for _, m := range []int{4, 8, 16, 32, 56} {
		fpA := expectedFPProbes(m, 256)
		nvA := float64(m+1) / 2
		wbA := math.Log2(float64(m))
		fpM := measureFPProbes(m, n)
		nvM := measureNVProbes(m, n)
		fmt.Fprintf(w, "%-8d %12.2f %12.2f %12.2f %12.2f %12.2f\n", m, fpA, fpM, nvA, nvM, wbA)
	}
	return nil
}

// expectedFPProbes is the paper's closed form (Section 4.2):
// E[T] = (1 + m / (n (1 - ((n-1)/n)^m))) / 2.
func expectedFPProbes(m, n int) float64 {
	nm := float64(n)
	mm := float64(m)
	return 0.5 * (1 + mm/(nm*(1-math.Pow((nm-1)/nm, mm))))
}

func measureFPProbes(m, n int) float64 {
	pool := scm.NewPool(128<<20, scm.LatencyConfig{CacheBytes: -1})
	t, err := core.Create(pool, core.Config{LeafCap: m, InnerFanout: 256, GroupSize: 8})
	if err != nil {
		return math.NaN()
	}
	keys := genKeys(n, 7)
	for _, k := range keys {
		t.Insert(k, k) //nolint:errcheck
	}
	t.Probes = core.ProbeStats{}
	for _, k := range keys {
		t.Find(k)
	}
	return t.Probes.AvgProbes()
}

func measureNVProbes(m, n int) float64 {
	pool := scm.NewPool(256<<20, scm.LatencyConfig{CacheBytes: -1})
	t, err := nvtree.New(pool, nvtree.Config{LeafCap: m, InnerCap: 128})
	if err != nil {
		return math.NaN()
	}
	keys := genKeys(n, 7)
	for _, k := range keys {
		t.Insert(k, k) //nolint:errcheck
	}
	t.Searches.Store(0)
	t.KeyProbes.Store(0)
	for _, k := range keys {
		t.Find(k)
	}
	return float64(t.KeyProbes.Load()) / float64(t.Searches.Load())
}

// Table1NodeSizes reproduces the preliminary node-size tuning experiment.
func Table1NodeSizes(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Table 1 (preliminary experiment): FPTree node-size sweep\n")
	fmt.Fprintf(w, "%-8s %-8s %12s %12s\n", "inner", "leaf", "Find(ns)", "Insert(ns)")
	warm := genKeys(sc.Warm, 8)
	extra := genKeys(sc.Ops, 9)
	for _, inner := range []int{64, 512, 4096} {
		for _, leaf := range []int{16, 32, 56, 64} {
			pool := scm.NewPool(int64(poolForScale(sc))<<20, LatencyNS(250, true))
			t, err := core.Create(pool, core.Config{LeafCap: leaf, InnerFanout: inner, GroupSize: 8})
			if err != nil {
				return err
			}
			for _, k := range warm {
				t.Insert(k, k) //nolint:errcheck
			}
			find := avgPerOp(sc.Ops, func(i int) { t.Find(warm[i%len(warm)]) })
			ins := avgPerOp(sc.Ops, func(i int) { t.Insert(extra[i], 1) }) //nolint:errcheck
			fmt.Fprintf(w, "%-8d %-8d %12d %12d\n", inner, leaf, find.Nanoseconds(), ins.Nanoseconds())
		}
	}
	return nil
}

// Fig14Payload reproduces Appendix A: payload-size impact on the
// variable-size-key trees at 360 ns.
func Fig14Payload(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Figure 14 (Appendix A): payload size impact, var keys, SCM 360ns\n")
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %10s\n", "tree", "payload", "Find", "Insert", "Update", "Delete")
	warm := genKeys(sc.Warm, 10)
	extra := genKeys(sc.Ops, 11)
	for _, kind := range []Kind{KindFPTree, KindPTree, KindNVTree, KindWBTree} {
		for _, payload := range []int{8, 48, 112} {
			inst, err := NewVar(kind, poolForScale(sc)*4, payload, LatencyNS(360, true))
			if err != nil {
				return err
			}
			t := inst.Var
			val := make([]byte, payload)
			for _, k := range warm {
				if err := t.Insert(keys16(k), val); err != nil {
					return err
				}
			}
			find := avgPerOp(sc.Ops, func(i int) { t.Find(keys16(warm[i%len(warm)])) })
			ins := avgPerOp(sc.Ops, func(i int) { t.Insert(keys16(extra[i]), val) })          //nolint:errcheck
			upd := avgPerOp(sc.Ops, func(i int) { t.Update(keys16(warm[i%len(warm)]), val) }) //nolint:errcheck
			del := avgPerOp(sc.Ops, func(i int) { t.Delete(keys16(extra[i])) })               //nolint:errcheck
			fmt.Fprintf(w, "%-12s %8d %10d %10d %10d %10d\n", inst.Name, payload, find.Nanoseconds(), ins.Nanoseconds(), upd.Nanoseconds(), del.Nanoseconds())
		}
	}
	return nil
}

// AblationFingerprints isolates the fingerprints' contribution: FPTree vs
// PTree with identical node sizes, Find-only, across latencies.
func AblationFingerprints(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Ablation: fingerprints on/off (identical node sizes), Find ns/op\n")
	fmt.Fprintf(w, "%-8s %14s %14s %8s\n", "lat(ns)", "with-FP", "without-FP", "speedup")
	warm := genKeys(sc.Warm, 12)
	for _, lat := range []int{90, 650} {
		res := map[bool]time.Duration{}
		for _, withFP := range []bool{true, false} {
			pool := scm.NewPool(int64(poolForScale(sc))<<20, LatencyNS(lat, true))
			cfg := core.Config{LeafCap: 56, InnerFanout: 4096, GroupSize: 8}
			if !withFP {
				cfg.Variant = core.VariantPTree
			}
			t, err := core.Create(pool, cfg)
			if err != nil {
				return err
			}
			for _, k := range warm {
				t.Insert(k, k) //nolint:errcheck
			}
			res[withFP] = avgPerOp(sc.Ops, func(i int) { t.Find(warm[i%len(warm)]) })
		}
		fmt.Fprintf(w, "%-8d %14d %14d %7.2fx\n", lat, res[true].Nanoseconds(), res[false].Nanoseconds(),
			float64(res[false])/float64(res[true]))
	}
	return nil
}

// AblationGroups isolates the leaf groups' contribution to insert
// performance (Section 4.3).
func AblationGroups(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Ablation: amortized leaf-group allocations on/off, Insert ns/op\n")
	fmt.Fprintf(w, "%-8s %14s %14s %8s\n", "lat(ns)", "groups", "no-groups", "speedup")
	keys := genKeys(sc.Warm+sc.Ops, 13)
	for _, lat := range []int{90, 650} {
		res := map[bool]time.Duration{}
		for _, groups := range []bool{true, false} {
			pool := scm.NewPool(int64(poolForScale(sc))<<20, LatencyNS(lat, true))
			cfg := core.Config{LeafCap: 56, InnerFanout: 4096}
			if groups {
				cfg.GroupSize = 8
			}
			t, err := core.Create(pool, cfg)
			if err != nil {
				return err
			}
			for _, k := range keys[:sc.Warm] {
				t.Insert(k, k) //nolint:errcheck
			}
			res[groups] = avgPerOp(sc.Ops, func(i int) { t.Insert(keys[sc.Warm+i], 1) }) //nolint:errcheck
		}
		fmt.Fprintf(w, "%-8d %14d %14d %7.2fx\n", lat, res[true].Nanoseconds(), res[false].Nanoseconds(),
			float64(res[false])/float64(res[true]))
	}
	return nil
}

// AblationSelectivePersistence contrasts the hybrid SCM-DRAM FPTree against
// the all-SCM wBTree on Find latency: the inner-node traversal is free of
// SCM misses only in the hybrid design.
func AblationSelectivePersistence(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Ablation: selective persistence (hybrid FPTree) vs all-SCM (wBTree), Find ns/op\n")
	fmt.Fprintf(w, "%-8s %14s %14s %8s\n", "lat(ns)", "hybrid", "all-SCM", "speedup")
	warm := genKeys(sc.Warm, 14)
	for _, lat := range []int{90, 650} {
		inst1, err := NewFixed(KindFPTree, poolForScale(sc), LatencyNS(lat, true))
		if err != nil {
			return err
		}
		inst2, err := NewFixed(KindWBTree, poolForScale(sc), LatencyNS(lat, true))
		if err != nil {
			return err
		}
		for _, k := range warm {
			inst1.Fixed.Insert(k, k) //nolint:errcheck
			inst2.Fixed.Insert(k, k) //nolint:errcheck
		}
		d1 := avgPerOp(sc.Ops, func(i int) { inst1.Fixed.Find(warm[i%len(warm)]) })
		d2 := avgPerOp(sc.Ops, func(i int) { inst2.Fixed.Find(warm[i%len(warm)]) })
		fmt.Fprintf(w, "%-8d %14d %14d %7.2fx\n", lat, d1.Nanoseconds(), d2.Nanoseconds(), float64(d2)/float64(d1))
	}
	return nil
}

// poolForScale sizes arenas generously for the workload.
func poolForScale(sc Scale) int {
	mb := 32 + (sc.Warm+sc.Ops)/4000
	return mb
}
