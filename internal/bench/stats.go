package bench

import (
	"fmt"
	"io"
	"sync"

	"fptree/internal/core"
	"fptree/internal/obs"
	"fptree/internal/scm"
	"fptree/internal/tatp"
)

// StatsReport is the metric-level validation of the paper's cost arguments:
// instead of timing operations, it counts them. Each phase (insert, find,
// update, delete on the single-threaded FPTree, then a concurrent mixed
// phase on FPTreeC) runs between two registry snapshots, and the printed
// per-op deltas are what the paper derives analytically — flushes and fences
// per operation (Section 6.1's write-cost argument), the fingerprint
// false-positive rate (~1/256, Section 4.2), the expected number of in-leaf
// key probes (~1), and the HTM abort/fallback ratio (Section 6.2).
func StatsReport(w io.Writer, sc Scale) error {
	fmt.Fprintf(w, "# Metric-level validation of paper claims\n")
	fmt.Fprintf(w, "# warm=%d ops=%d; counters, not timings\n", sc.Warm, sc.Ops)
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %11s\n",
		"phase", "ops", "flushes/op", "fences/op", "fp-rate", "probes/find")

	pool := scm.NewPool(int64(poolForScale(sc))<<20, scm.LatencyConfig{})
	tr, err := core.Create(pool, core.Config{})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	pool.RegisterMetrics(reg, "scm")
	tr.RegisterMetrics(reg)

	keys := genKeys(sc.Warm, 1)
	ops := sc.Ops
	if ops > sc.Warm {
		ops = sc.Warm
	}

	phase := func(name string, n int, fn func() error) error {
		before := reg.Snapshot()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		printPhase(w, name, n, reg.Snapshot().Sub(before))
		return nil
	}

	if err := phase("insert", sc.Warm, func() error {
		for i, k := range keys {
			if err := tr.Insert(k, uint64(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := phase("find", ops, func() error {
		for i := 0; i < ops; i++ {
			if _, ok := tr.Find(keys[i]); !ok {
				return fmt.Errorf("key %d missing", keys[i])
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := phase("update", ops, func() error {
		for i := 0; i < ops; i++ {
			if ok, err := tr.Update(keys[i], uint64(i)+1); err != nil || !ok {
				return fmt.Errorf("update %d: ok=%v err=%v", keys[i], ok, err)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := phase("delete", ops, func() error {
		for i := 0; i < ops; i++ {
			if ok, err := tr.Delete(keys[i]); err != nil || !ok {
				return fmt.Errorf("delete %d: ok=%v err=%v", keys[i], ok, err)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	return concurrentStatsPhase(w, sc)
}

// concurrentStatsPhase runs a mixed workload on the concurrent FPTree and
// reports the same per-op costs plus the emulated-HTM abort ratio.
func concurrentStatsPhase(w io.Writer, sc Scale) error {
	pool := scm.NewPool(int64(poolForScale(sc))<<20, scm.LatencyConfig{})
	ct, err := core.CCreate(pool, core.Config{})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	pool.RegisterMetrics(reg, "scm")
	ct.RegisterMetrics(reg)

	keys := genKeys(sc.Warm, 2)
	for i, k := range keys {
		if err := ct.Insert(k, uint64(i)); err != nil {
			return err
		}
	}

	const workers = 8
	perWorker := sc.Ops / workers
	if perWorker == 0 {
		perWorker = 1
	}
	total := perWorker * workers
	before := reg.Snapshot()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := keys[(g*perWorker+i)%len(keys)]
				if i%2 == 0 {
					ct.Find(k)
				} else {
					ct.Update(k, uint64(i)) //nolint:errcheck // measured workload
				}
			}
		}(g)
	}
	wg.Wait()
	d := reg.Snapshot().Sub(before)
	printPhase(w, "mixed-c8", total, d)
	fmt.Fprintf(w, "# concurrent: aborts/op %.4f, fallbacks %d, restarts %d\n",
		d.PerOp("htm_aborts_total", total),
		int64(d.Get("htm_fallbacks_total")),
		int64(d.Get("htm_restarts_total")))
	return nil
}

// TATPStatsReport is the metric-level counterpart of Figure 12: it loads the
// TATP schema with the paper's FPTree database configuration and runs the
// read-only mix, reporting per-phase SCM and fingerprint counters for the
// dictionary-index arena instead of timings.
func TATPStatsReport(w io.Writer, subscribers, txns, clients, latNS int) error {
	latCfg := LatencyNS(latNS, true)
	idxPool := poolMB(64+subscribers/2000, latCfg)
	t, err := core.Create(idxPool, core.Config{LeafCap: 56, InnerFanout: 4096, GroupSize: 8})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	idxPool.RegisterMetrics(reg, "scm")
	t.RegisterMetrics(reg)

	fmt.Fprintf(w, "# TATP metric deltas (index arena): %d subscribers, %d txns, %d clients, %dns SCM\n",
		subscribers, txns, clients, latNS)
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %11s\n",
		"phase", "ops", "flushes/op", "fences/op", "fp-rate", "probes/find")

	colPool := poolMB(32+subscribers/1000, latCfg)
	before := reg.Snapshot()
	db, err := tatp.Load(colPool, &lockedIdx{t: t}, subscribers)
	if err != nil {
		return err
	}
	printPhase(w, "load", subscribers, reg.Snapshot().Sub(before))

	before = reg.Snapshot()
	tps := db.RunReadOnly(clients, txns)
	printPhase(w, "txns", txns, reg.Snapshot().Sub(before))
	fmt.Fprintf(w, "# read-only mix: %.0f TX/s\n", tps)
	return nil
}

// printPhase renders one per-phase delta line. The fingerprint columns only
// apply to phases that searched leaves; they print "-" otherwise.
func printPhase(w io.Writer, name string, n int, d obs.Snapshot) {
	fpRate, probes := "-", "-"
	if d.Get("fptree_fingerprint_compares_total") > 0 {
		fpRate = fmt.Sprintf("%.4f", d.Ratio("fptree_fingerprint_false_positives_total", "fptree_fingerprint_compares_total"))
	}
	if d.Get("fptree_searches_total") > 0 {
		probes = fmt.Sprintf("%.3f", d.Ratio("fptree_key_probes_total", "fptree_searches_total"))
	}
	fmt.Fprintf(w, "%-10s %10d %12.3f %12.3f %10s %11s\n",
		name, n,
		d.PerOp("scm_flushes_total", n),
		d.PerOp("scm_fences_total", n),
		fpRate, probes)
}
