// Package bench is the reproduction harness for the paper's evaluation
// (Section 6): it wires every tree implementation behind uniform adapters,
// generates the workloads, sweeps SCM latencies and thread counts, and
// prints one paper-shaped table per figure.
package bench

import (
	"fmt"
	"time"

	"fptree/internal/core"
	"fptree/internal/nvtree"
	"fptree/internal/scm"
	"fptree/internal/stx"
	"fptree/internal/wbtree"
)

// FixedTree is the uniform adapter over all fixed-size-key trees.
type FixedTree interface {
	Insert(k, v uint64) error
	Find(k uint64) (uint64, bool)
	Update(k, v uint64) (bool, error)
	Delete(k uint64) (bool, error)
}

// VarTree is the uniform adapter over all variable-size-key trees.
type VarTree interface {
	Insert(k []byte, v []byte) error
	Find(k []byte) ([]byte, bool)
	Update(k, v []byte) (bool, error)
	Delete(k []byte) (bool, error)
}

// Instance couples a tree with its pool and recovery procedure.
type Instance struct {
	Name    string
	Fixed   FixedTree
	Var     VarTree
	Pool    *scm.Pool // nil for the fully transient STXTree
	Recover func() (any, error)
	// DRAMBytes estimates DRAM held by transient parts (Figure 8).
	DRAMBytes func() uint64
}

// LatencyNS returns the scm latency configuration for one of the paper's
// emulated SCM latencies (reads; writes are charged the same, Section 6.1).
func LatencyNS(ns int, emulate bool) scm.LatencyConfig {
	cfg := scm.LatencyConfig{
		ReadLatency:  time.Duration(ns) * time.Nanosecond,
		WriteLatency: time.Duration(ns) * time.Nanosecond,
	}
	if emulate {
		cfg.Mode = scm.LatencySpin
	}
	return cfg
}

// poolMB allocates an arena sized for the experiment.
func poolMB(mb int, lat scm.LatencyConfig) *scm.Pool {
	return scm.NewPool(int64(mb)<<20, lat)
}

// Kind names a tree implementation under test.
type Kind string

// The tree kinds of Table 1.
const (
	KindFPTree  Kind = "FPTree"
	KindPTree   Kind = "PTree"
	KindNVTree  Kind = "NV-Tree"
	KindWBTree  Kind = "wBTree"
	KindSTXTree Kind = "STXTree"
	KindFPTreeC Kind = "FPTreeC"
	KindNVTreeC Kind = "NV-TreeC"
)

// FixedKinds is the paper's single-threaded fixed-key lineup (Figure 7).
var FixedKinds = []Kind{KindFPTree, KindPTree, KindNVTree, KindWBTree, KindSTXTree}

// NewFixed builds a fixed-key tree of the given kind with its Table 1 node
// sizes, on an arena of poolSizeMB with the given latency profile.
func NewFixed(kind Kind, poolSizeMB int, lat scm.LatencyConfig) (*Instance, error) {
	switch kind {
	case KindFPTree:
		pool := poolMB(poolSizeMB, lat)
		t, err := core.Create(pool, core.Config{LeafCap: 56, InnerFanout: 4096, GroupSize: 8})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Name: string(kind), Fixed: t, Pool: pool}
		inst.Recover = func() (any, error) { return core.Open(pool) }
		inst.DRAMBytes = func() uint64 { return t.Memory().DRAMBytes }
		return inst, nil
	case KindPTree:
		pool := poolMB(poolSizeMB, lat)
		t, err := core.Create(pool, core.Config{Variant: core.VariantPTree, LeafCap: 32, InnerFanout: 4096, GroupSize: 0})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Name: string(kind), Fixed: t, Pool: pool}
		inst.Recover = func() (any, error) { return core.Open(pool) }
		inst.DRAMBytes = func() uint64 { return t.Memory().DRAMBytes }
		return inst, nil
	case KindNVTree:
		pool := poolMB(poolSizeMB, lat)
		t, err := nvtree.New(pool, nvtree.Config{LeafCap: 32, InnerCap: 128})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Name: string(kind), Fixed: t, Pool: pool}
		inst.Recover = func() (any, error) { return nvtree.Open(pool, 128) }
		inst.DRAMBytes = t.DRAMBytes
		return inst, nil
	case KindWBTree:
		pool := poolMB(poolSizeMB, lat)
		t, err := wbtree.New(pool, wbtree.Config{InnerCap: 32, LeafCap: 63})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Name: string(kind), Fixed: t, Pool: pool}
		inst.Recover = func() (any, error) { return wbtree.Open(pool) }
		inst.DRAMBytes = func() uint64 { return 0 } // SCM-only
		return inst, nil
	case KindSTXTree:
		t := stx.NewUint64()
		inst := &Instance{Name: string(kind), Fixed: stxFixed{t}}
		inst.Recover = func() (any, error) { return nil, fmt.Errorf("transient tree: full rebuild required") }
		inst.DRAMBytes = t.MemoryBytes
		return inst, nil
	}
	return nil, fmt.Errorf("bench: unknown fixed kind %q", kind)
}

// NewVar builds a variable-size-key tree of the given kind (Table 1 "Var"
// rows) with the given inline value size.
func NewVar(kind Kind, poolSizeMB int, valueSize int, lat scm.LatencyConfig) (*Instance, error) {
	switch kind {
	case KindFPTree:
		pool := poolMB(poolSizeMB, lat)
		t, err := core.CreateVar(pool, core.Config{LeafCap: 56, InnerFanout: 2048, GroupSize: 8, ValueSize: valueSize})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Name: "FPTreeVar", Var: t, Pool: pool}
		inst.Recover = func() (any, error) { return core.OpenVar(pool) }
		inst.DRAMBytes = func() uint64 { return t.Memory().DRAMBytes }
		return inst, nil
	case KindPTree:
		pool := poolMB(poolSizeMB, lat)
		t, err := core.CreateVar(pool, core.Config{Variant: core.VariantPTree, LeafCap: 32, InnerFanout: 256, GroupSize: 0, ValueSize: valueSize})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Name: "PTreeVar", Var: t, Pool: pool}
		inst.Recover = func() (any, error) { return core.OpenVar(pool) }
		inst.DRAMBytes = func() uint64 { return t.Memory().DRAMBytes }
		return inst, nil
	case KindNVTree:
		pool := poolMB(poolSizeMB, lat)
		t, err := nvtree.NewVar(pool, nvtree.Config{LeafCap: 32, InnerCap: 128, ValueSize: valueSize})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Name: "NV-TreeVar", Var: nvVar{t}, Pool: pool}
		inst.Recover = func() (any, error) { return nvtree.OpenVar(pool, 128) }
		inst.DRAMBytes = t.DRAMBytes
		return inst, nil
	case KindWBTree:
		pool := poolMB(poolSizeMB, lat)
		t, err := wbtree.NewVar(pool, wbtree.Config{InnerCap: 32, LeafCap: 63})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Name: "wBTreeVar", Var: wbVar{t}, Pool: pool}
		inst.Recover = func() (any, error) { return wbtree.OpenVar(pool) }
		inst.DRAMBytes = func() uint64 { return 0 }
		return inst, nil
	case KindSTXTree:
		t := stx.NewString()
		inst := &Instance{Name: "STXTreeVar", Var: stxVar{t}}
		inst.Recover = func() (any, error) { return nil, fmt.Errorf("transient tree") }
		inst.DRAMBytes = t.MemoryBytes
		return inst, nil
	}
	return nil, fmt.Errorf("bench: unknown var kind %q", kind)
}

// CFixedTree is the adapter over the concurrent fixed-key trees.
type CFixedTree interface {
	FixedTree
}

// NewConcurrentFixed builds a concurrent fixed-key tree (Figures 9-11).
func NewConcurrentFixed(kind Kind, poolSizeMB int, lat scm.LatencyConfig) (string, FixedTree, *scm.Pool, error) {
	switch kind {
	case KindFPTreeC:
		pool := poolMB(poolSizeMB, lat)
		t, err := core.CCreate(pool, core.Config{LeafCap: 56, InnerFanout: 128}) // Table 1: FPTreeC 128/64
		return "FPTreeC", t, pool, err
	case KindNVTreeC:
		pool := poolMB(poolSizeMB, lat)
		t, err := nvtree.CNew(pool, nvtree.Config{LeafCap: 32, InnerCap: 128})
		return "NV-TreeC", t, pool, err
	}
	return "", nil, nil, fmt.Errorf("bench: unknown concurrent kind %q", kind)
}

// NewConcurrentVar builds a concurrent variable-size-key tree.
func NewConcurrentVar(kind Kind, poolSizeMB int, valueSize int, lat scm.LatencyConfig) (string, VarTree, *scm.Pool, error) {
	switch kind {
	case KindFPTreeC:
		pool := poolMB(poolSizeMB, lat)
		t, err := core.CCreateVar(pool, core.Config{LeafCap: 56, InnerFanout: 64, ValueSize: valueSize})
		return "FPTreeCVar", t, pool, err
	case KindNVTreeC:
		pool := poolMB(poolSizeMB, lat)
		t, err := nvtree.CNewVar(pool, nvtree.Config{LeafCap: 32, InnerCap: 128, ValueSize: valueSize})
		return "NV-TreeCVar", nvCVar{t}, pool, err
	}
	return "", nil, nil, fmt.Errorf("bench: unknown concurrent kind %q", kind)
}

// --- thin adapters ------------------------------------------------------------

type stxFixed struct{ t *stx.Tree[uint64, uint64] }

func (a stxFixed) Insert(k, v uint64) error         { a.t.Insert(k, v); return nil }
func (a stxFixed) Find(k uint64) (uint64, bool)     { return a.t.Find(k) }
func (a stxFixed) Update(k, v uint64) (bool, error) { return a.t.Update(k, v), nil }
func (a stxFixed) Delete(k uint64) (bool, error)    { return a.t.Delete(k), nil }

type stxVar struct{ t *stx.Tree[string, []byte] }

func (a stxVar) Insert(k, v []byte) error         { a.t.Insert(string(k), v); return nil }
func (a stxVar) Find(k []byte) ([]byte, bool)     { return a.t.Find(string(k)) }
func (a stxVar) Update(k, v []byte) (bool, error) { return a.t.Update(string(k), v), nil }
func (a stxVar) Delete(k []byte) (bool, error)    { return a.t.Delete(string(k)), nil }

type nvVar struct{ t *nvtree.VarTree }

func (a nvVar) Insert(k, v []byte) error         { return a.t.Insert(k, v) }
func (a nvVar) Find(k []byte) ([]byte, bool)     { return a.t.Find(k) }
func (a nvVar) Update(k, v []byte) (bool, error) { return a.t.Update(k, v) }
func (a nvVar) Delete(k []byte) (bool, error)    { return a.t.Delete(k) }

type nvCVar struct{ t *nvtree.CVarTree }

func (a nvCVar) Insert(k, v []byte) error         { return a.t.Insert(k, v) }
func (a nvCVar) Find(k []byte) ([]byte, bool)     { return a.t.Find(k) }
func (a nvCVar) Update(k, v []byte) (bool, error) { return a.t.Update(k, v) }
func (a nvCVar) Delete(k []byte) (bool, error)    { return a.t.Delete(k) }

type wbVar struct{ t *wbtree.VarTree }

func u64le(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func (a wbVar) Insert(k, v []byte) error {
	var val uint64
	for i := 0; i < 8 && i < len(v); i++ {
		val |= uint64(v[i]) << (8 * i)
	}
	return a.t.Insert(k, val)
}
func (a wbVar) Find(k []byte) ([]byte, bool) {
	v, ok := a.t.Find(k)
	if !ok {
		return nil, false
	}
	return u64le(v), true
}
func (a wbVar) Update(k, v []byte) (bool, error) {
	var val uint64
	for i := 0; i < 8 && i < len(v); i++ {
		val |= uint64(v[i]) << (8 * i)
	}
	return a.t.Update(k, val)
}
func (a wbVar) Delete(k []byte) (bool, error) { return a.t.Delete(k) }
