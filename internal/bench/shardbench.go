package bench

// The memcached shard-scaling experiment: the Section 6.4 server with its
// keyspace hash-partitioned over N independent FPTree shards, driven by the
// in-process mc-benchmark over real loopback TCP. The paper's single-tree
// memcached integration tops out on the contention of one concurrency domain
// (fallback-lock serialization under occCC); sharding multiplies the domains,
// so throughput under many clients should scale with the shard count until
// cores run out. The suite records throughput, tail latency and the
// fleet-wide HTM/OCC abort ratio per (shards, clients) point.

import (
	"fmt"
	"io"
	"time"

	"fptree/internal/kvserver"
	"fptree/internal/obs"
	"fptree/internal/scm"
)

// MCShardConfig tunes the shard-scaling suite.
type MCShardConfig struct {
	Store     string // shard engine: "fptree" (locked, default) | "fptreec"
	Shards    []int  // fleet widths to measure, e.g. [1, 2, 4]
	Clients   []int  // benchmark connection counts per width, e.g. [8, 64]
	Ops       int    // operations per phase (SET then GET)
	ValueSize int    // payload bytes per SET
	LatencyNS int    // emulated SCM latency; charged in sleep mode so
	// concurrent shards' media waits overlap in wall-clock
	// time as real SCM accesses would
	JSONPath string // when set, append records to a -json report there
}

// mcShardPoint is one measured (shards, clients) cell.
type mcShardPoint struct {
	shards, clients  int
	set, get         kvserver.BenchResult
	abortRatio       float64
	searches, aborts uint64
}

// MCShardBench measures memcached SET/GET throughput per fleet width and
// client count, and derives the HTM/OCC abort ratio of each run from the
// engines' own counters. With cfg.JSONPath the measurements are written as
// standard workload records (workloads "mc_set"/"mc_get", tagged with shards
// + clients + htm_abort_ratio).
func MCShardBench(w io.Writer, cfg MCShardConfig) error {
	if cfg.Ops <= 0 {
		cfg.Ops = 50000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 32
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 4}
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{64}
	}
	switch cfg.Store {
	case "":
		cfg.Store = "fptree"
	case "fptree", "fptreec":
	default:
		return fmt.Errorf("bench: unknown -mc store %q (want fptree or fptreec)", cfg.Store)
	}
	lat := scm.LatencyConfig{}
	if cfg.LatencyNS > 0 {
		lat = scm.LatencyConfig{
			Mode:         scm.LatencySleep,
			ReadLatency:  time.Duration(cfg.LatencyNS) * time.Nanosecond,
			WriteLatency: time.Duration(cfg.LatencyNS) * time.Nanosecond,
		}
	}
	tree := "FPTree"
	if cfg.Store == "fptreec" {
		tree = "FPTreeC"
	}
	fmt.Fprintf(w, "# memcached shard scaling: %s, %d ops per phase, %d B values, SCM latency %dns\n",
		tree, cfg.Ops, cfg.ValueSize, cfg.LatencyNS)
	fmt.Fprintf(w, "%7s %8s %12s %12s %12s %12s %12s\n",
		"shards", "clients", "SET/s", "GET/s", "set_p99", "get_p99", "abort_ratio")

	rep := newJSONReport(0)
	var base float64 // single-shard SET/s per client count, for the speedup column
	baseline := map[int]float64{}
	for _, n := range cfg.Shards {
		for _, clients := range cfg.Clients {
			pt, err := runMCShardPoint(cfg.Store, n, clients, cfg.Ops, cfg.ValueSize, lat)
			if err != nil {
				return err
			}
			speedup := ""
			if n == 1 {
				baseline[clients] = pt.set.SetOps
			} else if base = baseline[clients]; base > 0 {
				speedup = fmt.Sprintf("  (%.2fx SET vs 1 shard)", pt.set.SetOps/base)
			}
			fmt.Fprintf(w, "%7d %8d %12.0f %12.0f %12v %12v %12.4f%s\n",
				n, clients, pt.set.SetOps, pt.get.GetOps,
				pt.set.SetLatency.P99, pt.get.GetLatency.P99, pt.abortRatio, speedup)

			common := JSONWorkloadResult{
				Tree:          tree,
				Ops:           cfg.Ops,
				Shards:        n,
				Clients:       clients,
				HTMAbortRatio: pt.abortRatio,
			}
			set := common
			set.Workload = "mc_set"
			set.OpsPerSec = pt.set.SetOps
			set.P50NS = pt.set.SetLatency.P50.Nanoseconds()
			set.P99NS = pt.set.SetLatency.P99.Nanoseconds()
			get := common
			get.Workload = "mc_get"
			get.OpsPerSec = pt.get.GetOps
			get.P50NS = pt.get.GetLatency.P50.Nanoseconds()
			get.P99NS = pt.get.GetLatency.P99.Nanoseconds()
			rep.Results = append(rep.Results, set, get)
		}
	}

	if cfg.JSONPath != "" {
		if err := writeJSONReport(rep, cfg.JSONPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d shard-scaling records to %s\n", len(rep.Results), cfg.JSONPath)
	}
	return nil
}

// runMCShardPoint serves one fleet of n shard trees (a plain store for
// n == 1, the router otherwise) and runs the SET+GET benchmark against it
// with the given connection count.
func runMCShardPoint(kind string, n, clients, ops, valueSize int, lat scm.LatencyConfig) (mcShardPoint, error) {
	mb := 64 + ops/1000
	newShard := func(p *scm.Pool) (kvserver.Store, error) {
		if kind == "fptreec" {
			return kvserver.NewFPTreeCStore(p)
		}
		return kvserver.NewFPTreeStore(p)
	}
	var store kvserver.Store
	if n == 1 {
		st, err := newShard(poolMB(mb, lat))
		if err != nil {
			return mcShardPoint{}, err
		}
		store = st
	} else {
		pools := make([]*scm.Pool, n)
		for i := range pools {
			pools[i] = poolMB(mb/n+1, lat)
		}
		stores, err := kvserver.BuildShardStores(n, func(i int) (kvserver.Store, error) {
			return newShard(pools[i])
		})
		if err != nil {
			return mcShardPoint{}, err
		}
		router, err := kvserver.NewShardedStore(stores, pools)
		if err != nil {
			return mcShardPoint{}, err
		}
		store = router
	}

	// Both the plain store and the router register the canonical
	// fptree_searches_total / htm_aborts_total series (the router sums its
	// shards under the same names), so one snapshot diff covers either shape.
	reg := obs.NewRegistry()
	if rm, ok := store.(interface{ RegisterMetrics(*obs.Registry) }); ok {
		rm.RegisterMetrics(reg)
	}

	srv, addr, err := kvserver.Serve("127.0.0.1:0", store)
	if err != nil {
		return mcShardPoint{}, err
	}
	defer srv.Close()

	before := reg.Snapshot()
	res, err := kvserver.RunMCBenchmark(addr, clients, ops, valueSize)
	if err != nil {
		return mcShardPoint{}, err
	}
	d := reg.Snapshot().Sub(before)
	pt := mcShardPoint{
		shards:   n,
		clients:  clients,
		set:      res,
		get:      res,
		searches: uint64(d["fptree_searches_total"]),
		aborts:   uint64(d["htm_aborts_total"]),
	}
	if pt.searches > 0 {
		pt.abortRatio = float64(pt.aborts) / float64(pt.searches)
	}
	return pt, nil
}
