package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The harness tests run every experiment at a tiny scale: they verify that
// each table generator runs end-to-end and emits the expected row structure.

var tiny = Scale{Warm: 2000, Ops: 1000}

func TestFig7FixedRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7Fixed(&buf, tiny, []int{0}, FixedKinds); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"FPTree", "PTree", "NV-Tree", "wBTree", "STXTree"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing row for %s:\n%s", name, out)
		}
	}
}

func TestFig7VarRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7Var(&buf, tiny, []int{0}, FixedKinds); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FPTreeVar") {
		t.Fatalf("missing FPTreeVar row:\n%s", buf.String())
	}
}

func TestFig7RecoveryRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7Recovery(&buf, []int{2000}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recovery(ms)") {
		t.Fatal("missing header")
	}
}

func TestFig8MemoryRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8Memory(&buf, 5000); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FPTree") || !strings.Contains(out, "DRAM") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestFig4ProbesRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4Probes(&buf, 4000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FP(analytic)") {
		t.Fatal("missing header")
	}
}

func TestFig4AnalyticFormula(t *testing.T) {
	// Spot values from the paper's Figure 4: E[T] ~1 for m up to ~400 with
	// n = 256.
	if e := expectedFPProbes(32, 256); e < 1.0 || e > 1.2 {
		t.Fatalf("E[T] at m=32: %f", e)
	}
	if e := expectedFPProbes(256, 256); e < 1.2 || e > 1.6 {
		t.Fatalf("E[T] at m=256: %f", e)
	}
}

func TestFig9ConcurrencyRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig9Concurrency(&buf, tiny, []int{1, 2}, 0, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FPTreeC") || !strings.Contains(out, "NV-TreeC") {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestFig12TATPRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig12TATP(&buf, 2000, 4000, 2, []int{0}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "restart(ms)") {
		t.Fatal("missing header")
	}
}

func TestFig13MemcachedRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig13Memcached(&buf, 2, 400, []int{0}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HashMap") {
		t.Fatal("missing HashMap row")
	}
}

func TestFig14PayloadRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig14Payload(&buf, Scale{Warm: 500, Ops: 300}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "payload") {
		t.Fatal("missing header")
	}
}

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1NodeSizes(&buf, Scale{Warm: 1000, Ops: 500}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inner") {
		t.Fatal("missing header")
	}
}

func TestAblationsRun(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationFingerprints(&buf, Scale{Warm: 1000, Ops: 500}); err != nil {
		t.Fatal(err)
	}
	if err := AblationGroups(&buf, Scale{Warm: 1000, Ops: 500}); err != nil {
		t.Fatal(err)
	}
	if err := AblationSelectivePersistence(&buf, Scale{Warm: 1000, Ops: 500}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("missing ablation output")
	}
}

func TestAdaptersRoundTrip(t *testing.T) {
	for _, kind := range FixedKinds {
		inst, err := NewFixed(kind, 32, LatencyNS(0, false))
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 200; k++ {
			if err := inst.Fixed.Insert(k, k*2); err != nil {
				t.Fatalf("%s: %v", inst.Name, err)
			}
		}
		for k := uint64(1); k <= 200; k++ {
			v, ok := inst.Fixed.Find(k)
			if !ok || v != k*2 {
				t.Fatalf("%s: find(%d) = %d,%v", inst.Name, k, v, ok)
			}
		}
		if ok, _ := inst.Fixed.Update(5, 99); !ok {
			t.Fatalf("%s: update failed", inst.Name)
		}
		if ok, _ := inst.Fixed.Delete(7); !ok {
			t.Fatalf("%s: delete failed", inst.Name)
		}
	}
	for _, kind := range FixedKinds {
		inst, err := NewVar(kind, 64, 8, LatencyNS(0, false))
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 200; k++ {
			if err := inst.Var.Insert(keys16(k), []byte("12345678")); err != nil {
				t.Fatalf("%s: %v", inst.Name, err)
			}
		}
		for k := uint64(1); k <= 200; k++ {
			if _, ok := inst.Var.Find(keys16(k)); !ok {
				t.Fatalf("%s: var find(%d) failed", inst.Name, k)
			}
		}
	}
}
