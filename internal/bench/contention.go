package bench

// Contention sweep: the A/B experiment behind the adaptive concurrency
// controller. Each point runs the same read/update mix over one concurrent
// FPTree twice — once with the fixed retry budget (htm.Backoff) and once with
// an htm.AdaptiveController attached — across a goroutine sweep under two key
// distributions: uniform (conflicts rare) and zipfian over *unscrambled*
// sequential keys, which concentrates the hot ranks into a handful of
// neighboring leaves — the worst case for leaf-lock conflicts, and the regime
// where Brown's template predicts fallback policy dominates. Results reuse
// the -json schema (cc_mode / fallback_entries / retry_budget fields), so
// -check-json and regression diffing apply unchanged.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"fptree/internal/core"
	"fptree/internal/htm"
	"fptree/internal/scm"
)

// ContentionConfig tunes a contention sweep.
type ContentionConfig struct {
	Goroutines []int    // sweep points; empty means 1,2,4,8
	Dists      []string // uniform | zipfian; empty means both
	Records    int      // preloaded sequential keys
	Ops        int      // measured ops per point (split across goroutines)
	UpdatePct  int      // percentage of updates in the mix (rest are finds)
	LatencyNS  int      // emulated SCM latency per line, sleep mode (0 = off)
	Trials     int      // trials per point, median-of-N by throughput (default 3)
	Seed       int64    // base RNG seed
	JSONPath   string   // optional -json output path
}

func (cfg ContentionConfig) withDefaults() ContentionConfig {
	if len(cfg.Goroutines) == 0 {
		cfg.Goroutines = []int{1, 2, 4, 8}
	}
	if len(cfg.Dists) == 0 {
		cfg.Dists = []string{"uniform", "zipfian"}
	}
	if cfg.UpdatePct <= 0 {
		cfg.UpdatePct = 50
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// ContentionBench runs the sweep, printing one line per measured point to w
// and, when cfg.JSONPath is set, writing the results as a -json report.
func ContentionBench(w io.Writer, cfg ContentionConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Records <= 0 || cfg.Ops <= 0 {
		return fmt.Errorf("bench: contention sweep needs positive records and ops")
	}
	rep := newJSONReport(cfg.Records)
	for _, dist := range cfg.Dists {
		if dist != "uniform" && dist != "zipfian" {
			return fmt.Errorf("bench: unknown contention distribution %q (want uniform or zipfian)", dist)
		}
		for _, g := range cfg.Goroutines {
			if g < 1 {
				return fmt.Errorf("bench: contention goroutine count %d < 1", g)
			}
			for _, mode := range []string{"fixed", "adaptive"} {
				res, err := contentionPoint(cfg, dist, g, mode)
				if err != nil {
					return fmt.Errorf("bench: contention %s g=%d %s: %v", dist, g, mode, err)
				}
				rep.Results = append(rep.Results, res)
				line := fmt.Sprintf("%-10s %-10s g=%-3d %-8s %9.0f ops/s  p99 %8dns  abort %.3f",
					res.Tree, res.Workload, res.Threads, res.CCMode, res.OpsPerSec, res.P99NS, res.HTMAbortRatio)
				if mode == "adaptive" {
					line += fmt.Sprintf("  fallbacks %d  budget %d", res.FallbackEntries, res.RetryBudget)
				}
				fmt.Fprintf(w, "%s  %s\n", line, dist)
			}
		}
	}
	if cfg.JSONPath != "" {
		if err := writeJSONReport(rep, cfg.JSONPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d workload results to %s\n", len(rep.Results), cfg.JSONPath)
	}
	return nil
}

// contentionPoint runs one (distribution, goroutines, cc-mode) point
// cfg.Trials times and reports the median trial by throughput: at the few-ms
// critical-section scale of the emulated-latency regime, single runs on a
// shared host carry scheduler noise on the order of the effect being measured.
func contentionPoint(cfg ContentionConfig, dist string, goroutines int, mode string) (JSONWorkloadResult, error) {
	trials := make([]JSONWorkloadResult, 0, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		res, err := contentionRun(cfg, dist, cfg.Seed+int64(i)*104729, goroutines, mode)
		if err != nil {
			return JSONWorkloadResult{}, err
		}
		trials = append(trials, res)
	}
	sort.Slice(trials, func(i, j int) bool { return trials[i].OpsPerSec < trials[j].OpsPerSec })
	return trials[len(trials)/2], nil
}

// contentionRun measures one trial on a freshly loaded tree, so every trial
// starts from identical state. The first quarter of each worker's ops run
// unmeasured: they warm the scheduler and, in adaptive mode, let the
// controller converge from its optimistic cold start before timing begins —
// the steady state is what the sweep compares, not the ramp.
func contentionRun(cfg ContentionConfig, dist string, seed int64, goroutines int, mode string) (JSONWorkloadResult, error) {
	lat := scm.LatencyConfig{}
	if cfg.LatencyNS > 0 {
		// Sleep mode: lock holders park while paying media latency instead of
		// burning the core, so leaf locks are genuinely held across waits and
		// contention materializes even on small machines.
		lat = scm.LatencyConfig{
			Mode:         scm.LatencySleep,
			ReadLatency:  time.Duration(cfg.LatencyNS) * time.Nanosecond,
			WriteLatency: time.Duration(cfg.LatencyNS) * time.Nanosecond,
		}
	}
	pool := scm.NewPool(int64(poolForScale(Scale{Warm: cfg.Records, Ops: cfg.Ops}))<<20, lat)
	tr, err := core.CCreate(pool, core.Config{LeafCap: 56, InnerFanout: 128})
	if err != nil {
		return JSONWorkloadResult{}, err
	}
	var ctrl *htm.AdaptiveController
	if mode == "adaptive" {
		// A short adaptation window relative to the run length (so the budget
		// reacts within the measured interval the way a long-lived server's
		// would across workload shifts) and hysteresis thresholds scaled to
		// the single-tree regime: on one tree with emulated media latency a
		// sustained 0.1 conflict-aborts/op already means every hot-leaf write
		// queues behind a parked holder, so optimism is cut well below the
		// 0.5 default that suits short in-DRAM critical sections.
		ctrl = htm.NewAdaptiveController(htm.AdaptiveConfig{
			AdaptEvery: 128,
			Low:        0.005,
			High:       0.08,
		})
		tr.SetController(ctrl)
	}

	// Sequential keys: zipfian's hot ranks land in the same few leaves, the
	// worst case for leaf-lock conflicts.
	for i := 1; i <= cfg.Records; i++ {
		if err := tr.Insert(uint64(i), 0); err != nil {
			return JSONWorkloadResult{}, err
		}
	}

	opsPer := cfg.Ops / goroutines
	if opsPer < 1 {
		opsPer = 1
	}
	warmPer := opsPer / 4
	totalOps := opsPer * goroutines

	lats := make([][]time.Duration, goroutines)
	errs := make([]error, goroutines)
	var warm, wg sync.WaitGroup
	startCh := make(chan struct{})
	for t := 0; t < goroutines; t++ {
		warm.Add(1)
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(t)*7919))
			var zipf *rand.Zipf
			if dist == "zipfian" {
				// s = 1.6 concentrates ~half the picks on a handful of ranks;
				// with sequential keys those ranks share one leaf, so this is
				// the hot-key regime the adaptive fallback is for.
				zipf = rand.NewZipf(rng, 1.6, 1, uint64(cfg.Records-1))
			}
			pick := func() uint64 {
				if zipf != nil {
					return zipf.Uint64() + 1
				}
				return rng.Uint64()%uint64(cfg.Records) + 1
			}
			op := func(i int) error {
				key := pick()
				if rng.Intn(100) < cfg.UpdatePct {
					_, err := tr.Update(key, uint64(i))
					return err
				}
				tr.Find(key)
				return nil
			}
			for i := 0; i < warmPer; i++ {
				if err := op(i); err != nil {
					errs[t] = err
					warm.Done()
					return
				}
			}
			warm.Done()
			<-startCh
			lat := make([]time.Duration, opsPer)
			for i := 0; i < opsPer; i++ {
				t0 := time.Now()
				if err := op(i); err != nil {
					errs[t] = err
					return
				}
				lat[i] = time.Since(t0)
			}
			lats[t] = lat
		}(t)
	}
	warm.Wait()
	// The preload and warmup leave allocation debt behind; collect it now so
	// GC pauses land between trials instead of inside the timed interval.
	runtime.GC()
	abortsBefore := tr.Stats.Aborts.Load()
	var fallbacksBefore uint64
	if ctrl != nil {
		fallbacksBefore = ctrl.Stats.FallbackEntries.Load()
	}
	start := time.Now()
	close(startCh)
	wg.Wait()
	total := time.Since(start)
	aborts := tr.Stats.Aborts.Load() - abortsBefore
	for _, err := range errs {
		if err != nil {
			return JSONWorkloadResult{}, err
		}
	}

	merged := make([]time.Duration, 0, totalOps)
	for _, l := range lats {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	pct := func(p float64) int64 {
		return merged[int(p*float64(len(merged)-1))].Nanoseconds()
	}
	res := JSONWorkloadResult{
		Tree:          "FPTreeC",
		Workload:      "contention",
		Ops:           totalOps,
		OpsPerSec:     float64(totalOps) / total.Seconds(),
		P50NS:         pct(0.50),
		P99NS:         pct(0.99),
		Threads:       goroutines,
		KeyDist:       dist,
		CCMode:        mode,
		HTMAbortRatio: float64(aborts) / float64(totalOps),
	}
	if ctrl != nil {
		res.FallbackEntries = ctrl.Stats.FallbackEntries.Load() - fallbacksBefore
		res.RetryBudget = ctrl.Budget()
	}
	return res, nil
}
