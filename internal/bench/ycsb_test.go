package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func TestYCSBChooserRanges(t *testing.T) {
	var count atomic.Uint64
	count.Store(1000)
	for _, dist := range []string{"zipfian", "latest", "uniform"} {
		c := newYCSBChooser(1, dist, 2000, &count)
		for i := 0; i < 5000; i++ {
			if idx := c.pick(); idx >= count.Load() {
				t.Fatalf("%s: picked index %d with only %d records", dist, idx, count.Load())
			}
		}
	}
	// latest must actually skew to recent indices.
	c := newYCSBChooser(2, "latest", 2000, &count)
	recent := 0
	for i := 0; i < 2000; i++ {
		if c.pick() >= 900 {
			recent++
		}
	}
	if recent < 1200 {
		t.Fatalf("latest chooser picked only %d/2000 from the newest 10%%", recent)
	}
}

func TestYCSBKeyInjective(t *testing.T) {
	seen := make(map[uint64]bool, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		k := ycsbKey(i)
		if seen[k] {
			t.Fatalf("ycsbKey collision at index %d", i)
		}
		seen[k] = true
	}
}

func TestYCSBBenchAllWorkloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ycsb.json")
	cfg := YCSBConfig{
		Records:  2000,
		Ops:      2000,
		Threads:  2,
		ScanLen:  50,
		Seed:     1,
		JSONPath: path,
	}
	var out bytes.Buffer
	if err := YCSBBench(&out, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("YCSB report fails -check-json validation: %v", err)
	}
	for _, wl := range []string{"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f"} {
		if !strings.Contains(string(data), `"workload": "`+wl+`"`) {
			t.Fatalf("report missing %s:\n%s", wl, data)
		}
	}
	if !strings.Contains(string(data), `"key_dist": "latest"`) {
		t.Fatalf("report missing latest key_dist:\n%s", data)
	}
}

func TestYCSBBenchRejectsUnknownWorkload(t *testing.T) {
	var out bytes.Buffer
	err := YCSBBench(&out, YCSBConfig{Workloads: []string{"Z"}, Records: 10, Ops: 10})
	if err == nil || !strings.Contains(err.Error(), "unknown YCSB workload") {
		t.Fatalf("want unknown-workload error, got %v", err)
	}
}

// Old reports (no threads/key_dist fields) must keep validating.
func TestValidateReportAcceptsOldSchema(t *testing.T) {
	old := []byte(`{
  "generated_at": "2026-01-01T00:00:00Z",
  "go_version": "go1.23.0",
  "goos": "linux",
  "goarch": "amd64",
  "num_cpu": 1,
  "warm_keys": 1000,
  "results": [
    {"tree": "FPTree", "workload": "insert", "ops": 10, "ops_per_sec": 5.0,
     "p50_ns": 1, "p99_ns": 2, "flushes_per_op": 1.5, "fences_per_op": 1.0}
  ]
}`)
	if err := ValidateReport(old); err != nil {
		t.Fatalf("old-schema report rejected: %v", err)
	}
}
