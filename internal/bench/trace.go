package bench

import (
	"fptree/internal/obs/trace"
)

// traceOp maps the -json workload names to the engine op whose sampled
// spans carry that workload's phase attribution.
var traceOp = map[string]trace.Op{
	"insert":  trace.OpInsert,
	"find":    trace.OpFind,
	"update":  trace.OpUpdate,
	"scan100": trace.OpScan,
	"delete":  trace.OpDelete,
}

// totalFor returns the cumulative totals entry for op (a zero-count entry
// when the op has no sampled spans yet).
func totalFor(totals []trace.OpTotal, op trace.Op) trace.OpTotal {
	for _, t := range totals {
		if t.Op == op {
			return t
		}
	}
	return trace.OpTotal{Op: op}
}

// phaseDeltas diffs two cumulative tracer snapshots for op and converts the
// delta into per-sampled-op phase records. Returns the number of spans
// sampled in the interval and nil phases when nothing was sampled.
func phaseDeltas(before, after []trace.OpTotal, op trace.Op) (uint64, []JSONPhase) {
	b, a := totalFor(before, op), totalFor(after, op)
	n := a.Count - b.Count
	if n == 0 {
		return 0, nil
	}
	prev := make(map[trace.Phase]trace.PhaseTotal, len(b.Phases))
	for _, p := range b.Phases {
		prev[p.Phase] = p
	}
	var out []JSONPhase
	for _, p := range a.Phases {
		d := p
		if q, ok := prev[p.Phase]; ok {
			d.NS -= q.NS
			d.Flushes -= q.Flushes
			d.Fences -= q.Fences
		}
		if d.NS == 0 && d.Flushes == 0 && d.Fences == 0 {
			continue
		}
		out = append(out, JSONPhase{
			Phase:        p.Phase.String(),
			NSPerOp:      float64(d.NS) / float64(n),
			FlushesPerOp: float64(d.Flushes) / float64(n),
			FencesPerOp:  float64(d.Fences) / float64(n),
		})
	}
	return n, out
}
