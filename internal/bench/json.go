package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"fptree/internal/core"
	"fptree/internal/obs"
	"fptree/internal/obs/trace"
	"fptree/internal/scm"
)

// JSONWorkloadResult is the machine-readable record for one measured
// workload: throughput, tail latency, and the per-op SCM write costs the
// paper argues about analytically (flushes/op, fences/op).
type JSONWorkloadResult struct {
	Tree         string  `json:"tree"`     // FPTree | FPTreeVar
	Workload     string  `json:"workload"` // insert | find | update | scan100 | delete
	Ops          int     `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50NS        int64   `json:"p50_ns"`
	P99NS        int64   `json:"p99_ns"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	FencesPerOp  float64 `json:"fences_per_op"`
	// Threads and KeyDist are set by multi-threaded suites (the YCSB
	// workloads); both are omitted from single-threaded records, so reports
	// produced before they existed still validate.
	Threads int    `json:"threads,omitempty"`
	KeyDist string `json:"key_dist,omitempty"` // zipfian | latest | uniform
	// Shards, Clients and HTMAbortRatio are emitted by the memcached
	// shard-scaling suite (MCShardBench): the fleet width behind the server,
	// the benchmark connection count, and the fleet-wide HTM/OCC aborts per
	// tree search during the run. Absent elsewhere.
	Shards        int     `json:"shards,omitempty"`
	Clients       int     `json:"clients,omitempty"`
	HTMAbortRatio float64 `json:"htm_abort_ratio,omitempty"`
	// CCMode, FallbackEntries and RetryBudget are emitted by the -contention
	// sweep (ContentionBench): which concurrency-control policy the point ran
	// under ("fixed" retry budget vs. "adaptive" controller), the writer
	// entries into the global fallback lock, and the controller's final live
	// retry budget. Absent elsewhere.
	CCMode          string `json:"cc_mode,omitempty"`
	FallbackEntries uint64 `json:"fallback_entries,omitempty"`
	RetryBudget     int    `json:"retry_budget,omitempty"`
	// TraceSampled and Phases are emitted by -trace runs: how many of this
	// workload's ops the tracer sampled, and their per-sampled-op phase
	// attribution. Absent without -trace, so older reports still validate.
	TraceSampled uint64      `json:"trace_sampled,omitempty"`
	Phases       []JSONPhase `json:"phases,omitempty"`
}

// JSONPhase is the per-sampled-op attribution of one operation phase,
// produced by the -trace flag from the span tracer's cumulative totals.
type JSONPhase struct {
	Phase        string  `json:"phase"` // descend | leaf | smo
	NSPerOp      float64 `json:"ns_per_op"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	FencesPerOp  float64 `json:"fences_per_op"`
}

// JSONReport is the top-level document written by the -json flag. It is
// intended for regression tracking: commit one baseline, diff later runs
// against it.
type JSONReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Warm        int    `json:"warm_keys"`
	// TraceSampleEvery is the 1-in-N span sampling rate of a -trace run
	// (the denominator behind every trace_sampled count); 0/absent when the
	// report was produced without -trace.
	TraceSampleEvery int                  `json:"trace_sample_every,omitempty"`
	Results          []JSONWorkloadResult `json:"results"`
	// Recovery holds the recovery-time experiment records written by the
	// -recovery workload (see RecoveryBench); absent from workload-only runs.
	Recovery []JSONRecoveryResult `json:"recovery,omitempty"`
}

// newJSONReport stamps the common environment fields.
func newJSONReport(warm int) JSONReport {
	return JSONReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Warm:        warm,
	}
}

// writeJSONReport writes the indented document to path.
func writeJSONReport(rep JSONReport, path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// ValidateReport checks that data is a well-formed -json document: strictly
// decodable (unknown fields rejected, so schema drift is caught), carrying a
// parseable timestamp and at least one workload or recovery record with sane
// values. CI's recovery-smoke job runs it over freshly produced output.
func ValidateReport(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep JSONReport
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("bench: report does not match schema: %w", err)
	}
	if _, err := time.Parse(time.RFC3339, rep.GeneratedAt); err != nil {
		return fmt.Errorf("bench: bad generated_at %q: %w", rep.GeneratedAt, err)
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("bench: missing go_version")
	}
	if len(rep.Results) == 0 && len(rep.Recovery) == 0 {
		return fmt.Errorf("bench: report has neither workload nor recovery records")
	}
	for i, r := range rep.Results {
		if r.Tree == "" || r.Workload == "" || r.Ops <= 0 || r.OpsPerSec <= 0 {
			return fmt.Errorf("bench: results[%d] malformed: %+v", i, r)
		}
		if r.Shards < 0 || r.Clients < 0 || r.HTMAbortRatio < 0 {
			return fmt.Errorf("bench: results[%d] has negative shard fields: %+v", i, r)
		}
		if r.CCMode != "" && r.CCMode != "fixed" && r.CCMode != "adaptive" {
			return fmt.Errorf("bench: results[%d] has unknown cc_mode %q", i, r.CCMode)
		}
		if r.RetryBudget < 0 {
			return fmt.Errorf("bench: results[%d] has negative retry_budget: %+v", i, r)
		}
		if len(r.Phases) > 0 && rep.TraceSampleEvery <= 0 {
			return fmt.Errorf("bench: results[%d] has phase attribution but no trace_sample_every", i)
		}
		for j, p := range r.Phases {
			if p.Phase == "" || p.NSPerOp < 0 || p.FlushesPerOp < 0 || p.FencesPerOp < 0 {
				return fmt.Errorf("bench: results[%d].phases[%d] malformed: %+v", i, j, p)
			}
		}
	}
	for i, r := range rep.Recovery {
		switch {
		case r.Tree == "" || r.Keys <= 0 || r.Workers <= 0:
			return fmt.Errorf("bench: recovery[%d] malformed: %+v", i, r)
		case r.RecoveryMS <= 0 || r.RebuildMS < 0 || r.RebuildMS > r.RecoveryMS:
			return fmt.Errorf("bench: recovery[%d] has inconsistent timings: %+v", i, r)
		case r.LeavesScanned == 0 || r.SpeedupVs1 <= 0:
			return fmt.Errorf("bench: recovery[%d] missing scan counters: %+v", i, r)
		}
	}
	return nil
}

// measureJSON times each op individually (for percentiles) and snapshots the
// obs registry around the loop (for per-op flush/fence counts). With a
// non-nil tracer it also diffs the tracer's cumulative totals around the
// loop and attaches the per-phase attribution of the workload's engine op.
func measureJSON(tree, workload string, reg *obs.Registry, tc *trace.Tracer, n int, fn func(i int)) JSONWorkloadResult {
	lat := make([]time.Duration, n)
	before := reg.Snapshot()
	tb := tc.Totals() // nil-safe: nil tracer yields nil totals
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		fn(i)
		lat[i] = time.Since(t0)
	}
	total := time.Since(start)
	d := reg.Snapshot().Sub(before)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		idx := int(p * float64(n-1))
		return lat[idx].Nanoseconds()
	}
	r := JSONWorkloadResult{
		Tree:         tree,
		Workload:     workload,
		Ops:          n,
		OpsPerSec:    float64(n) / total.Seconds(),
		P50NS:        pct(0.50),
		P99NS:        pct(0.99),
		FlushesPerOp: d.PerOp("scm_flushes_total", n),
		FencesPerOp:  d.PerOp("scm_fences_total", n),
	}
	if tc != nil {
		if op, ok := traceOp[workload]; ok {
			r.TraceSampled, r.Phases = phaseDeltas(tb, tc.Totals(), op)
		}
	}
	return r
}

// JSONBench runs the standard single-threaded workload suite (insert, find,
// update, scan100, delete) on the fixed- and variable-key FPTree and writes
// the results as an indented JSON document to path. A one-line summary per
// workload goes to w so interactive runs still show progress. traceEvery > 0
// attaches a 1-in-traceEvery sampling tracer to each tree and emits the
// per-phase attribution (phases / trace_sampled / trace_sample_every fields)
// into the report.
func JSONBench(w io.Writer, path string, sc Scale, traceEvery int) error {
	rep := newJSONReport(sc.Warm)
	if traceEvery > 0 {
		rep.TraceSampleEvery = traceEvery
	}
	note := func(r JSONWorkloadResult) {
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(w, "%-10s %-8s %9.0f ops/s  p50 %6dns  p99 %7dns  %.2f flushes/op  %.2f fences/op\n",
			r.Tree, r.Workload, r.OpsPerSec, r.P50NS, r.P99NS, r.FlushesPerOp, r.FencesPerOp)
		for _, p := range r.Phases {
			fmt.Fprintf(w, "           · %-7s %9.0f ns/op  %.2f flushes/op  %.2f fences/op (sampled %d)\n",
				p.Phase, p.NSPerOp, p.FlushesPerOp, p.FencesPerOp, r.TraceSampled)
		}
	}

	if err := jsonFixedSuite(sc, traceEvery, note); err != nil {
		return err
	}
	if err := jsonVarSuite(sc, traceEvery, note); err != nil {
		return err
	}

	if err := writeJSONReport(rep, path); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %d workload results to %s\n", len(rep.Results), path)
	return nil
}

func jsonFixedSuite(sc Scale, traceEvery int, note func(JSONWorkloadResult)) error {
	pool := scm.NewPool(int64(poolForScale(sc))<<20, scm.LatencyConfig{})
	tr, err := core.Create(pool, core.Config{LeafCap: 56, InnerFanout: 4096, GroupSize: 8})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	pool.RegisterMetrics(reg, "scm")
	var tc *trace.Tracer
	if traceEvery > 0 {
		tc = trace.New(trace.Config{SampleEvery: traceEvery, Costs: pool.Stats()})
		tr.SetTracer(tc)
	}

	warm := genKeys(sc.Warm, 1)
	extra := genKeys(sc.Ops, 2)
	for i, k := range warm {
		if err := tr.Insert(k, uint64(i)); err != nil {
			return err
		}
	}

	var opErr error
	note(measureJSON("FPTree", "insert", reg, tc, sc.Ops, func(i int) {
		if err := tr.Insert(extra[i], uint64(i)); err != nil {
			opErr = err
		}
	}))
	note(measureJSON("FPTree", "find", reg, tc, sc.Ops, func(i int) {
		tr.Find(warm[i%len(warm)])
	}))
	note(measureJSON("FPTree", "update", reg, tc, sc.Ops, func(i int) {
		if _, err := tr.Update(warm[i%len(warm)], uint64(i)+1); err != nil {
			opErr = err
		}
	}))
	scans := sc.Ops / 100
	if scans < 1 {
		scans = 1
	}
	note(measureJSON("FPTree", "scan100", reg, tc, scans, func(i int) {
		tr.ScanN(warm[i%len(warm)], 100)
	}))
	note(measureJSON("FPTree", "delete", reg, tc, sc.Ops, func(i int) {
		if _, err := tr.Delete(extra[i]); err != nil {
			opErr = err
		}
	}))
	return opErr
}

func jsonVarSuite(sc Scale, traceEvery int, note func(JSONWorkloadResult)) error {
	pool := scm.NewPool(int64(poolForScale(sc))<<21, scm.LatencyConfig{})
	tr, err := core.CreateVar(pool, core.Config{LeafCap: 56, InnerFanout: 2048, GroupSize: 8, ValueSize: 8})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	pool.RegisterMetrics(reg, "scm")
	var tc *trace.Tracer
	if traceEvery > 0 {
		tc = trace.New(trace.Config{SampleEvery: traceEvery, Costs: pool.Stats()})
		tr.SetTracer(tc)
	}

	warm := genKeys(sc.Warm, 3)
	extra := genKeys(sc.Ops, 4)
	val := []byte("valuedat")
	for _, k := range warm {
		if err := tr.Insert(keys16(k), val); err != nil {
			return err
		}
	}

	var opErr error
	note(measureJSON("FPTreeVar", "insert", reg, tc, sc.Ops, func(i int) {
		if err := tr.Insert(keys16(extra[i]), val); err != nil {
			opErr = err
		}
	}))
	note(measureJSON("FPTreeVar", "find", reg, tc, sc.Ops, func(i int) {
		tr.Find(keys16(warm[i%len(warm)]))
	}))
	note(measureJSON("FPTreeVar", "update", reg, tc, sc.Ops, func(i int) {
		if _, err := tr.Update(keys16(warm[i%len(warm)]), val); err != nil {
			opErr = err
		}
	}))
	scans := sc.Ops / 100
	if scans < 1 {
		scans = 1
	}
	note(measureJSON("FPTreeVar", "scan100", reg, tc, scans, func(i int) {
		tr.ScanN(keys16(warm[i%len(warm)]), 100)
	}))
	note(measureJSON("FPTreeVar", "delete", reg, tc, sc.Ops, func(i int) {
		if _, err := tr.Delete(keys16(extra[i])); err != nil {
			opErr = err
		}
	}))
	return opErr
}
