package bench

// YCSB-style workload suite (workloads A-F) over the concurrent FPTree.
// The mixes, request distributions and scan shape follow the original YCSB
// core workloads: A 50/50 read/update, B 95/5 read/update, C read-only,
// D read-latest with inserts, E short range scans with inserts, F
// read-modify-write — under scrambled-zipfian, latest or uniform key
// choosers. Results reuse the -json report schema (one JSONWorkloadResult
// per workload, tagged with the thread count and key distribution), so the
// regression-tracking and -check-json tooling applies unchanged.

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fptree/internal/core"
	"fptree/internal/obs"
	"fptree/internal/scm"
)

// YCSBConfig tunes a YCSB suite run.
type YCSBConfig struct {
	Workloads []string // subset of A..F; empty means all six
	Records   int      // preloaded records per workload
	Ops       int      // measured operations per workload
	Threads   int      // concurrent client goroutines
	ScanLen   int      // max entries per scan (workload E)
	Seed      int64    // base RNG seed
	JSONPath  string   // optional -json output path
}

// ycsbMix is one workload's operation percentages (summing to 100) and
// request distribution.
type ycsbMix struct {
	name                            string
	read, update, insert, scan, rmw int
	dist                            string // zipfian | latest | uniform
}

var ycsbMixes = []ycsbMix{
	{"A", 50, 50, 0, 0, 0, "zipfian"},
	{"B", 95, 5, 0, 0, 0, "zipfian"},
	{"C", 100, 0, 0, 0, 0, "zipfian"},
	{"D", 95, 0, 5, 0, 0, "latest"},
	{"E", 0, 0, 5, 95, 0, "zipfian"},
	{"F", 50, 0, 0, 0, 50, "zipfian"},
}

// ycsbHash is SplitMix64's finalizer: a bijection on uint64, used both to
// scatter insertion-order indices into the key space and to scramble the
// zipfian chooser so the hot set is spread across the tree.
func ycsbHash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ycsbKey maps record index i (insertion order) to its tree key.
func ycsbKey(i uint64) uint64 {
	k := ycsbHash(i + 1)
	if k == 0 {
		k = 0x9E3779B97F4A7C15
	}
	return k
}

// ycsbVal is the canonical value of a key; scans verify it (workload E has
// no updates, so every live value is canonical there).
func ycsbVal(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

// ycsbChooser picks record indices under one request distribution. Each
// client goroutine owns one (rand.Zipf is not goroutine-safe); the shared
// record count is read atomically so inserts by other threads become
// visible targets.
type ycsbChooser struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	dist  string
	count *atomic.Uint64
}

func newYCSBChooser(seed int64, dist string, maxRecords uint64, count *atomic.Uint64) *ycsbChooser {
	rng := rand.New(rand.NewSource(seed))
	return &ycsbChooser{
		rng:   rng,
		zipf:  rand.NewZipf(rng, 1.1, 1, maxRecords),
		dist:  dist,
		count: count,
	}
}

// pick returns an insertion-order record index in [0, count).
func (c *ycsbChooser) pick() uint64 {
	n := c.count.Load()
	switch c.dist {
	case "uniform":
		return c.rng.Uint64() % n
	case "latest":
		off := c.zipf.Uint64()
		if off >= n {
			off = n - 1
		}
		return n - 1 - off
	default: // scrambled zipfian
		return ycsbHash(c.zipf.Uint64()) % n
	}
}

// mixFor resolves a workload letter.
func mixFor(w string) (ycsbMix, error) {
	for _, m := range ycsbMixes {
		if m.name == w {
			return m, nil
		}
	}
	return ycsbMix{}, fmt.Errorf("bench: unknown YCSB workload %q (want A-F)", w)
}

// YCSBBench runs the configured workloads, each on a freshly loaded
// concurrent FPTree, printing one summary line per workload to w and, when
// cfg.JSONPath is set, writing the results as a -json report.
func YCSBBench(w io.Writer, cfg YCSBConfig) error {
	if cfg.Records <= 0 || cfg.Ops <= 0 {
		return fmt.Errorf("bench: YCSB needs positive records and ops")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.ScanLen <= 0 {
		cfg.ScanLen = 100
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{"A", "B", "C", "D", "E", "F"}
	}
	rep := newJSONReport(cfg.Records)
	for _, name := range cfg.Workloads {
		mix, err := mixFor(strings.ToUpper(strings.TrimSpace(name)))
		if err != nil {
			return err
		}
		res, err := ycsbRun(mix, cfg)
		if err != nil {
			return fmt.Errorf("bench: ycsb-%s: %v", strings.ToLower(mix.name), err)
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(w, "%-10s %-8s %9.0f ops/s  p50 %6dns  p99 %7dns  %d threads  %s\n",
			res.Tree, res.Workload, res.OpsPerSec, res.P50NS, res.P99NS, res.Threads, res.KeyDist)
	}
	if cfg.JSONPath != "" {
		if err := writeJSONReport(rep, cfg.JSONPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d workload results to %s\n", len(rep.Results), cfg.JSONPath)
	}
	return nil
}

// ycsbRun loads one tree and drives one workload mix to completion.
func ycsbRun(mix ycsbMix, cfg YCSBConfig) (JSONWorkloadResult, error) {
	pool := scm.NewPool(int64(poolForScale(Scale{Warm: cfg.Records, Ops: cfg.Ops}))<<20, scm.LatencyConfig{})
	tr, err := core.CCreate(pool, core.Config{LeafCap: 56, InnerFanout: 128})
	if err != nil {
		return JSONWorkloadResult{}, err
	}
	reg := obs.NewRegistry()
	pool.RegisterMetrics(reg, "scm")

	var count atomic.Uint64
	for i := uint64(0); i < uint64(cfg.Records); i++ {
		k := ycsbKey(i)
		if err := tr.Insert(k, ycsbVal(k)); err != nil {
			return JSONWorkloadResult{}, err
		}
	}
	count.Store(uint64(cfg.Records))

	// The zipf domain covers the preload plus every insert the run can
	// issue, so late inserts remain reachable by the choosers.
	maxRecords := uint64(cfg.Records+cfg.Ops) - 1

	opsPerThread := cfg.Ops / cfg.Threads
	if opsPerThread < 1 {
		opsPerThread = 1
	}
	totalOps := opsPerThread * cfg.Threads

	lats := make([][]time.Duration, cfg.Threads)
	errs := make([]error, cfg.Threads)
	var wg sync.WaitGroup
	before := reg.Snapshot()
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			seed := cfg.Seed + int64(t)*7919
			choose := newYCSBChooser(seed, mix.dist, maxRecords, &count)
			opRng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
			lat := make([]time.Duration, opsPerThread)
			for i := 0; i < opsPerThread; i++ {
				die := opRng.Intn(100)
				t0 := time.Now()
				var err error
				switch {
				case die < mix.read:
					k := ycsbKey(choose.pick())
					tr.Find(k)
				case die < mix.read+mix.update:
					k := ycsbKey(choose.pick())
					_, err = tr.Update(k, ycsbVal(k))
				case die < mix.read+mix.update+mix.insert:
					idx := count.Add(1) - 1
					k := ycsbKey(idx)
					err = tr.Insert(k, ycsbVal(k))
				case die < mix.read+mix.update+mix.insert+mix.scan:
					n := 1 + opRng.Intn(cfg.ScanLen)
					err = ycsbScan(tr, ycsbKey(choose.pick()), n)
				default: // read-modify-write
					k := ycsbKey(choose.pick())
					if old, ok := tr.Find(k); ok {
						_, err = tr.Update(k, old+1)
					}
				}
				lat[i] = time.Since(t0)
				if err != nil {
					errs[t] = err
					return
				}
			}
			lats[t] = lat
		}(t)
	}
	wg.Wait()
	total := time.Since(start)
	d := reg.Snapshot().Sub(before)
	for _, err := range errs {
		if err != nil {
			return JSONWorkloadResult{}, err
		}
	}

	merged := make([]time.Duration, 0, totalOps)
	for _, lat := range lats {
		merged = append(merged, lat...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	pct := func(p float64) int64 {
		return merged[int(p*float64(len(merged)-1))].Nanoseconds()
	}
	return JSONWorkloadResult{
		Tree:         "FPTreeC",
		Workload:     "ycsb-" + strings.ToLower(mix.name),
		Ops:          totalOps,
		OpsPerSec:    float64(totalOps) / total.Seconds(),
		P50NS:        pct(0.50),
		P99NS:        pct(0.99),
		FlushesPerOp: d.PerOp("scm_flushes_total", totalOps),
		FencesPerOp:  d.PerOp("scm_fences_total", totalOps),
		Threads:      cfg.Threads,
		KeyDist:      mix.dist,
	}, nil
}

// ycsbScan drives the resumable iterator for up to n entries from start,
// verifying every emitted value is canonical (workload E never updates, so
// a mismatch means the iterator surfaced a torn or stale pair).
func ycsbScan(tr *core.CTree, start uint64, n int) error {
	it := tr.Iterator(start, 0)
	defer it.Close()
	for i := 0; i < n && it.Valid(); i++ {
		if k, v := it.Key(), it.Value(); v != ycsbVal(k) {
			return fmt.Errorf("scan: key %d carries %d, canonical is %d", k, v, ycsbVal(k))
		}
		it.Next()
	}
	return nil
}
