// Package wbtree reimplements the write-atomic B+-Tree (wB+Tree) of Chen and
// Jin (PVLDB 2015) as evaluated in the FPTree paper: a persistent B+-Tree
// that lives entirely in SCM — inner nodes included — and achieves
// consistency through p-atomic bitmap updates plus sorted indirection slot
// arrays that enable binary search inside the unsorted nodes. As in the
// paper's evaluation, the original undo-redo logs are replaced with the more
// lightweight FPTree-style micro-logs.
//
// Because the whole tree is in SCM, recovery is near-instantaneous (micro-log
// replay only, no rebuild), but every inner-node access pays the SCM latency
// — the trade-off Figure 12 illustrates. Faithful to the paper's critique
// (Section 3), the wBTree does not track allocations of variable-size keys
// across crashes: a crash between a key allocation and its commit leaks the
// key. LeakCheck exposes this for tests.
//
// Node layout (cap ≤ 63 entries):
//
//	 0  slot array: 64 bytes — slot[0] = count, slot[1..count] = entry
//	    indexes in ascending key order (one cache line)
//	64  bitmap u64 — bit 63 = "slot array valid", bits 0..cap-1 = entry valid
//	72  flags  u64 — 1 = leaf
//	80  entries: cap × entrySize
//
// Fixed-key entry: key u64 | val u64 (val = child offset in inner nodes).
// Var-key entry:   pkey PPtr | klen u64 | val u64.
package wbtree

import (
	"bytes"
	"fmt"
	"math/bits"

	"fptree/internal/scm"
)

const (
	slotValidBit = uint64(1) << 63

	nOffSlots   = 0
	nOffBitmap  = 64
	nOffFlags   = 72
	nOffEntries = 80

	flagLeaf = 1

	// Meta block layout.
	mOffMagic    = 0
	mOffKeyMode  = 8
	mOffInnerCap = 16
	mOffLeafCap  = 24
	mOffRoot     = 32 // root node offset (8-byte p-atomic commit)
	mOffValSize  = 40
	mOffSplitLog = 64  // PCur, PNew, PParent (one cache line)
	mOffDelLog   = 128 // PCur, PParent
	mOffRootLog  = 192 // PNewRoot
	metaSize     = 256

	metaMagic = 0x3B7EE_0001

	modeFixed = 0
	modeVar   = 1
)

// Config tunes the node capacities (Table 1: inner 32, leaf 64 — capped at
// 63 here so the slot array stays within one cache line).
type Config struct {
	InnerCap int // entries per inner node (children)
	LeafCap  int // entries per leaf
}

func (c *Config) normalize() error {
	if c.InnerCap == 0 {
		c.InnerCap = 32
	}
	if c.LeafCap == 0 {
		c.LeafCap = 63
	}
	if c.InnerCap < 4 || c.InnerCap > 63 || c.LeafCap < 2 || c.LeafCap > 63 {
		return fmt.Errorf("wbtree: node capacities out of range [3..63]/[2..63]: %+v", *c)
	}
	return nil
}

// Tree is the fixed-size-key wBTree. Not safe for concurrent use.
type Tree struct {
	base
}

// VarTree is the variable-size-key wBTree.
type VarTree struct {
	base
}

// base carries everything shared between the two key modes.
type base struct {
	pool     *scm.Pool
	mode     int
	innerCap int
	leafCap  int
	meta     uint64
	size     int

	// Probes counts in-node key probes for the Figure 4 comparison.
	Searches  uint64
	KeyProbes uint64
}

func (b *base) entrySize() uint64 {
	if b.mode == modeVar {
		return scm.PPtrSize + 16
	}
	return 16
}

func (b *base) nodeSize(cap int) uint64 {
	return (nOffEntries + uint64(cap)*b.entrySize() + scm.LineSize - 1) / scm.LineSize * scm.LineSize
}

func (b *base) capOf(leaf bool) int {
	if leaf {
		return b.leafCap
	}
	return b.innerCap
}

// New formats a fixed-size-key wBTree in the pool.
func New(pool *scm.Pool, cfg Config) (*Tree, error) {
	b, err := create(pool, cfg, modeFixed)
	if err != nil {
		return nil, err
	}
	return &Tree{base: *b}, nil
}

// NewVar formats a variable-size-key wBTree in the pool.
func NewVar(pool *scm.Pool, cfg Config) (*VarTree, error) {
	b, err := create(pool, cfg, modeVar)
	if err != nil {
		return nil, err
	}
	return &VarTree{base: *b}, nil
}

func create(pool *scm.Pool, cfg Config, mode int) (*base, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if !pool.Root().IsNull() {
		return nil, fmt.Errorf("wbtree: pool already contains a tree")
	}
	if _, err := pool.AllocRoot(metaSize); err != nil {
		return nil, err
	}
	b := &base{pool: pool, mode: mode, innerCap: cfg.InnerCap, leafCap: cfg.LeafCap, meta: pool.Root().Offset}
	p := pool
	p.WriteU64(b.meta+mOffMagic, metaMagic)
	p.WriteU64(b.meta+mOffKeyMode, uint64(mode))
	p.WriteU64(b.meta+mOffInnerCap, uint64(cfg.InnerCap))
	p.WriteU64(b.meta+mOffLeafCap, uint64(cfg.LeafCap))
	p.Persist(b.meta, metaSize)
	return b, nil
}

// Open recovers a fixed-size-key wBTree: because the whole tree lives in
// SCM, recovery is just micro-log replay — the near-instant restart the
// paper reports for the wBTree.
func Open(pool *scm.Pool) (*Tree, error) {
	b, err := open(pool, modeFixed)
	if err != nil {
		return nil, err
	}
	return &Tree{base: *b}, nil
}

// OpenVar recovers a variable-size-key wBTree.
func OpenVar(pool *scm.Pool) (*VarTree, error) {
	b, err := open(pool, modeVar)
	if err != nil {
		return nil, err
	}
	return &VarTree{base: *b}, nil
}

func open(pool *scm.Pool, mode int) (*base, error) {
	pool.Recover()
	root := pool.Root()
	if root.IsNull() {
		return nil, fmt.Errorf("wbtree: arena has no tree")
	}
	b := &base{pool: pool, meta: root.Offset}
	if pool.ReadU64(b.meta+mOffMagic) != metaMagic {
		return nil, fmt.Errorf("wbtree: bad metadata magic")
	}
	if got := int(pool.ReadU64(b.meta + mOffKeyMode)); got != mode {
		return nil, fmt.Errorf("wbtree: key mode mismatch")
	}
	b.mode = mode
	b.innerCap = int(pool.ReadU64(b.meta + mOffInnerCap))
	b.leafCap = int(pool.ReadU64(b.meta + mOffLeafCap))
	b.recover()
	b.size = b.countKeys(b.rootOff())
	return b, nil
}

// --- node accessors ---------------------------------------------------------

func (b *base) rootOff() uint64 { return b.pool.ReadU64(b.meta + mOffRoot) }
func (b *base) setRootOff(off uint64) {
	b.pool.WriteU64(b.meta+mOffRoot, off)
	b.pool.Persist(b.meta+mOffRoot, 8)
}
func (b *base) nBitmap(n uint64) uint64 { return b.pool.ReadU64(n + nOffBitmap) }
func (b *base) nIsLeaf(n uint64) bool   { return b.pool.ReadU64(n+nOffFlags)&flagLeaf != 0 }

func (b *base) setBitmap(n, bm uint64) {
	b.pool.WriteU64(n+nOffBitmap, bm)
	b.pool.Persist(n+nOffBitmap, 8)
}

func (b *base) entryOff(n uint64, e int) uint64 {
	return n + nOffEntries + uint64(e)*b.entrySize()
}

func (b *base) entryVal(n uint64, e int) uint64 {
	if b.mode == modeVar {
		return b.pool.ReadU64(b.entryOff(n, e) + scm.PPtrSize + 8)
	}
	return b.pool.ReadU64(b.entryOff(n, e) + 8)
}

func (b *base) setEntryVal(n uint64, e int, v uint64) {
	off := b.entryOff(n, e) + 8
	if b.mode == modeVar {
		off = b.entryOff(n, e) + scm.PPtrSize + 8
	}
	b.pool.WriteU64(off, v)
	b.pool.Persist(off, 8)
}

func (b *base) entryKeyFixed(n uint64, e int) uint64 {
	return b.pool.ReadU64(b.entryOff(n, e))
}

func (b *base) entryKeyVar(n uint64, e int) []byte {
	pk := b.pool.ReadPPtr(b.entryOff(n, e))
	klen := b.pool.ReadU64(b.entryOff(n, e) + scm.PPtrSize)
	return b.pool.ReadBytes(pk.Offset, klen)
}

// cmpKey three-way-compares entry e's key with the probe key (exactly one of
// fk/vk is used depending on the mode).
func (b *base) cmpKey(n uint64, e int, fk uint64, vk []byte) int {
	b.KeyProbes++
	if b.entryIsInf(n, e) {
		return 1 // the infinity separator is greater than any probe key
	}
	if b.mode == modeFixed {
		k := b.entryKeyFixed(n, e)
		switch {
		case k < fk:
			return -1
		case k > fk:
			return 1
		}
		return 0
	}
	return bytes.Compare(b.entryKeyVar(n, e), vk)
}

// entryIsInf reports whether entry e carries the "+infinity" separator that
// marks the rightmost spine of the tree (introduced when the root grows).
func (b *base) entryIsInf(n uint64, e int) bool {
	if b.mode == modeFixed {
		return b.entryKeyFixed(n, e) == ^uint64(0)
	}
	return b.pool.ReadU64(b.entryOff(n, e)+scm.PPtrSize) == ^uint64(0)
}

// cmpEntries orders two entries of the same node, inf sorting last.
func (b *base) cmpEntries(n uint64, e1, e2 int) int {
	i1, i2 := b.entryIsInf(n, e1), b.entryIsInf(n, e2)
	switch {
	case i1 && i2:
		return 0
	case i1:
		return 1
	case i2:
		return -1
	}
	if b.mode == modeFixed {
		a, bb := b.entryKeyFixed(n, e1), b.entryKeyFixed(n, e2)
		switch {
		case a < bb:
			return -1
		case a > bb:
			return 1
		}
		return 0
	}
	return bytes.Compare(b.entryKeyVar(n, e1), b.entryKeyVar(n, e2))
}

// slots reads the slot array; ok is false when it is invalid and the caller
// must fall back to a bitmap scan.
func (b *base) slots(n uint64) ([]byte, bool) {
	if b.nBitmap(n)&slotValidBit == 0 {
		return nil, false
	}
	var buf [64]byte
	b.pool.ReadInto(n, buf[:])
	return buf[:], true
}

// sortedEntries returns the node's valid entry indexes in ascending key
// order, from the slot array when valid, else by sorting a bitmap scan.
func (b *base) sortedEntries(n uint64) []int {
	if sl, ok := b.slots(n); ok {
		bm := b.nBitmap(n)
		cnt := int(sl[0])
		out := make([]int, 0, cnt)
		for i := 0; i < cnt; i++ {
			e := int(sl[1+i])
			if bm&(1<<e) != 0 { // the slot array is a superset; filter
				out = append(out, e)
			}
		}
		return out
	}
	bm := b.nBitmap(n)
	var out []int
	for e := 0; e < 63; e++ {
		if bm&(1<<e) != 0 {
			out = append(out, e)
		}
	}
	// Insertion sort by key: nodes are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if b.cmpEntries(n, out[j-1], out[j]) <= 0 {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// writeSlots persists a fresh slot array (ascending entry indexes by key)
// and marks it valid in the same bitmap write that commits validity changes.
func (b *base) writeSlots(n uint64, order []int) {
	var buf [64]byte
	buf[0] = byte(len(order))
	for i, e := range order {
		buf[1+i] = byte(e)
	}
	b.pool.WriteBytes(n, buf[:])
	b.pool.Persist(n, 64)
}

// search binary-searches the node through its slot array, returning the
// position (rank) of the first entry with key >= probe and whether that
// entry's key equals the probe. This is the log2(m) probe behaviour of
// Figure 4.
func (b *base) search(n uint64, fk uint64, vk []byte) (order []int, rank int, exact bool) {
	order = b.sortedEntries(n)
	b.Searches++
	lo, hi := 0, len(order)
	for lo < hi {
		mid := (lo + hi) / 2
		c := b.cmpKey(n, order[mid], fk, vk)
		if c < 0 {
			lo = mid + 1
		} else if c > 0 {
			hi = mid
		} else {
			return order, mid, true
		}
	}
	return order, lo, false
}

// childIdx picks the descent child: separators are "max key of the left
// subtree", so the first separator >= key covers it; greater keys go to the
// last child. Inner nodes store cnt children whose entry keys are the
// subtree max keys; descent into entry order[idx].
func (b *base) childOf(n uint64, fk uint64, vk []byte) (child uint64, order []int, idx int) {
	order, rank, _ := b.search(n, fk, vk)
	if len(order) == 0 {
		panic("wbtree: descent into empty inner node")
	}
	idx = rank
	if idx >= len(order) {
		idx = len(order) - 1
	}
	return b.entryVal(n, order[idx]), order, idx
}

// --- allocation -------------------------------------------------------------

// newNode allocates and initializes a node through the given owning cell.
func (b *base) newNode(refOff uint64, leaf bool) (uint64, error) {
	capN := b.capOf(leaf)
	ptr, err := b.pool.Alloc(refOff, b.nodeSize(capN))
	if err != nil {
		return 0, err
	}
	var flags uint64
	if leaf {
		flags = flagLeaf
	}
	b.pool.WriteU64(ptr.Offset+nOffFlags, flags)
	b.pool.WriteU64(ptr.Offset+nOffBitmap, slotValidBit)
	b.pool.Persist(ptr.Offset+nOffFlags, 16)
	return ptr.Offset, nil
}

func (b *base) splitLog() mcell { return mcell{b.pool, b.meta + mOffSplitLog} }
func (b *base) delLog() mcell   { return mcell{b.pool, b.meta + mOffDelLog} }
func (b *base) rootLog() mcell  { return mcell{b.pool, b.meta + mOffRootLog} }

// mcell is a cache-line micro-log of up to three persistent pointers.
type mcell struct {
	pool *scm.Pool
	off  uint64
}

func (c mcell) p(i int) scm.PPtr  { return c.pool.ReadPPtr(c.off + uint64(i)*scm.PPtrSize) }
func (c mcell) pOff(i int) uint64 { return c.off + uint64(i)*scm.PPtrSize }

func (c mcell) set(i int, v scm.PPtr) {
	c.pool.WritePPtr(c.off+uint64(i)*scm.PPtrSize, v)
	c.pool.Persist(c.off+uint64(i)*scm.PPtrSize, scm.PPtrSize)
}

func (c mcell) reset() {
	for i := 0; i < 3; i++ {
		c.pool.WritePPtr(c.off+uint64(i)*scm.PPtrSize, scm.PPtr{})
	}
	c.pool.Persist(c.off, 3*scm.PPtrSize)
}

// Len returns the number of live keys.
func (b *base) Len() int { return b.size }

// Pool returns the backing pool.
func (b *base) Pool() *scm.Pool { return b.pool }

func (b *base) countKeys(n uint64) int {
	if n == 0 {
		return 0
	}
	if b.nIsLeaf(n) {
		return bits.OnesCount64(b.nBitmap(n) &^ slotValidBit)
	}
	total := 0
	for _, e := range b.sortedEntries(n) {
		total += b.countKeys(b.entryVal(n, e))
	}
	return total
}
