package wbtree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"fptree/internal/crashtest"
	"fptree/internal/scm"
)

func newPool() *scm.Pool {
	return scm.NewPool(64<<20, scm.LatencyConfig{CacheBytes: -1})
}

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(newPool(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

var cfgs = []struct {
	name string
	cfg  Config
}{
	{"small", Config{InnerCap: 4, LeafCap: 4}},
	{"default", Config{}},
	{"leaf63", Config{InnerCap: 32, LeafCap: 63}},
}

func TestEmpty(t *testing.T) {
	tr := newTree(t, Config{})
	if _, ok := tr.Find(1); ok {
		t.Fatal("find on empty")
	}
	if ok, _ := tr.Delete(1); ok {
		t.Fatal("delete on empty")
	}
	if ok, _ := tr.Update(1, 2); ok {
		t.Fatal("update on empty")
	}
}

func TestInsertFind(t *testing.T) {
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			tr := newTree(t, tc.cfg)
			rng := rand.New(rand.NewSource(1))
			const n = 5000
			for _, k := range rng.Perm(n) {
				if err := tr.Insert(uint64(k)+1, uint64(k)*3); err != nil {
					t.Fatal(err)
				}
			}
			for k := 1; k <= n; k++ {
				v, ok := tr.Find(uint64(k))
				if !ok || v != uint64(k-1)*3 {
					t.Fatalf("find(%d) = %d,%v", k, v, ok)
				}
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
		})
	}
}

func TestSequentialInsert(t *testing.T) {
	// Sequential keys stress the rightmost-spine infinity separator.
	tr := newTree(t, Config{InnerCap: 4, LeafCap: 4})
	for k := uint64(1); k <= 2000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 2000; k++ {
		if v, ok := tr.Find(k); !ok || v != k {
			t.Fatalf("find(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestUpdateDelete(t *testing.T) {
	tr := newTree(t, Config{InnerCap: 4, LeafCap: 4})
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= n; k += 2 {
		if ok, _ := tr.Update(k, k+1000); !ok {
			t.Fatalf("update(%d) failed", k)
		}
	}
	for k := uint64(1); k <= n; k += 4 {
		if ok, _ := tr.Delete(k); !ok {
			t.Fatalf("delete(%d) failed", k)
		}
	}
	for k := uint64(1); k <= n; k++ {
		v, ok := tr.Find(k)
		switch {
		case k%4 == 1:
			if ok {
				t.Fatalf("deleted %d present", k)
			}
		case k%2 == 1:
			if !ok || v != k+1000 {
				t.Fatalf("updated find(%d) = %d,%v", k, v, ok)
			}
		default:
			if !ok || v != k {
				t.Fatalf("find(%d) = %d,%v", k, v, ok)
			}
		}
	}
}

func TestDeleteAllReuse(t *testing.T) {
	tr := newTree(t, Config{InnerCap: 4, LeafCap: 4})
	for round := 0; round < 3; round++ {
		for k := uint64(1); k <= 500; k++ {
			if err := tr.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		for k := uint64(1); k <= 500; k++ {
			if ok, _ := tr.Delete(k); !ok {
				t.Fatalf("round %d: delete(%d) failed", round, k)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, tr.Len())
		}
	}
}

func TestScan(t *testing.T) {
	tr := newTree(t, Config{InnerCap: 4, LeafCap: 4})
	rng := rand.New(rand.NewSource(4))
	for _, k := range rng.Perm(1000) {
		if err := tr.Insert(uint64(k)*2+2, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	tr.Scan(100, func(k, v uint64) bool {
		got = append(got, k)
		return len(got) < 200
	})
	if len(got) != 200 {
		t.Fatalf("scan %d entries", len(got))
	}
	want := uint64(100)
	for i, k := range got {
		if k != want {
			t.Fatalf("scan[%d] = %d want %d", i, k, want)
		}
		want += 2
	}
}

func TestRecoveryCleanRestart(t *testing.T) {
	pool := newPool()
	tr, err := New(pool, Config{InnerCap: 8, LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for k := uint64(1); k <= n; k++ {
		if err := tr.Insert(k, k^0xff); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= n; k += 3 {
		if _, err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash()
	tr2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != n-(n+2)/3 {
		t.Fatalf("recovered Len = %d", tr2.Len())
	}
	for k := uint64(1); k <= n; k++ {
		v, ok := tr2.Find(k)
		if k%3 == 1 {
			if ok {
				t.Fatalf("deleted %d resurrected", k)
			}
		} else if !ok || v != k^0xff {
			t.Fatalf("find(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestCrashAtEveryFlush(t *testing.T) {
	pool := newPool()
	tr, err := New(pool, Config{InnerCap: 4, LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	acked := map[uint64]uint64{}
	for k := uint64(1); k <= 200; k++ {
		if err := tr.Insert(k*7, k); err != nil {
			t.Fatal(err)
		}
		acked[k*7] = k
	}
	rng := rand.New(rand.NewSource(9))
	step := int64(1)
	for op := 0; op < 150; op++ {
		k := rng.Uint64()%100000 + 1
		if _, dup := acked[k]; dup {
			continue
		}
		pool.FailAfterFlushes(step)
		crashed, opErr := crashtest.Crashes(func() error {
			return tr.Insert(k, k+1)
		})
		pool.FailAfterFlushes(-1)
		if opErr != nil {
			t.Fatal(opErr)
		}
		if !crashed {
			acked[k] = k + 1
			step = 1
			continue
		}
		step++
		pool.Crash()
		tr, err = Open(pool)
		if err != nil {
			t.Fatalf("op %d step %d: %v", op, step, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("op %d step %d: %v", op, step, err)
		}
		for ak, av := range acked {
			got, ok := tr.Find(ak)
			if !ok || got != av {
				t.Fatalf("op %d step %d: acked key %d = %d,%v want %d", op, step, ak, got, ok, av)
			}
		}
		if got, ok := tr.Find(k); ok && got != k+1 {
			t.Fatalf("op %d step %d: torn in-flight value", op, step)
		}
		op--
	}
}

func TestCrashDuringDeletes(t *testing.T) {
	pool := newPool()
	tr, err := New(pool, Config{InnerCap: 4, LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	live := map[uint64]bool{}
	for k := uint64(1); k <= 500; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
		live[k] = true
	}
	step := int64(1)
	for op := 0; op < 150 && len(live) > 0; op++ {
		var key uint64
		for k := range live {
			key = k
			break
		}
		pool.FailAfterFlushes(step)
		crashed, opErr := crashtest.Crashes(func() error {
			_, err := tr.Delete(key)
			return err
		})
		pool.FailAfterFlushes(-1)
		if opErr != nil {
			t.Fatal(opErr)
		}
		if !crashed {
			delete(live, key)
			step = 1
			continue
		}
		step++
		pool.Crash()
		tr, err = Open(pool)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("op %d step %d: %v", op, step, err)
		}
		for k := range live {
			if k == key {
				continue
			}
			if _, ok := tr.Find(k); !ok {
				t.Fatalf("op %d step %d: live key %d lost", op, step, k)
			}
		}
		if _, ok := tr.Find(key); !ok {
			delete(live, key) // delete rolled forward
		}
		op--
	}
}

func TestQuickOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(newPool(), Config{InnerCap: 4, LeafCap: 4})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]uint64{}
		for i := 0; i < 1200; i++ {
			k := rng.Uint64()%300 + 1
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				if err := tr.Upsert(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			case 1:
				ok, _ := tr.Delete(k)
				if _, want := oracle[k]; ok != want {
					t.Fatalf("delete(%d) = %v want %v", k, ok, want)
				}
				delete(oracle, k)
			case 2:
				v, ok := tr.Find(k)
				want, wok := oracle[k]
				if ok != wok || (ok && v != want) {
					t.Fatalf("find(%d) = %d,%v want %d,%v", k, v, ok, want, wok)
				}
			}
		}
		return tr.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestVarTreeBasics(t *testing.T) {
	pool := newPool()
	tr, err := NewVar(pool, Config{InnerCap: 8, LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
	const n = 2000
	rng := rand.New(rand.NewSource(2))
	for _, i := range rng.Perm(n) {
		if err := tr.Insert(key(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Find(key(i))
		if !ok || v != uint64(i) {
			t.Fatalf("find(%d) = %d,%v", i, v, ok)
		}
	}
	for i := 0; i < n; i += 2 {
		if ok, _ := tr.Delete(key(i)); !ok {
			t.Fatalf("delete(%d) failed", i)
		}
	}
	pool.Crash()
	tr2, err := OpenVar(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, ok := tr2.Find(key(i))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence %v after recovery", i, ok)
		}
	}
	var got [][]byte
	tr2.Scan(key(101), func(k []byte, v uint64) bool {
		got = append(got, append([]byte(nil), k...))
		return len(got) < 10
	})
	if len(got) != 10 || string(got[0]) != string(key(101)) {
		t.Fatalf("scan start = %q (%d entries)", got[0], len(got))
	}
}

func TestProbesLogarithmic(t *testing.T) {
	// The wBTree's sorted slot arrays give log2(m) in-leaf probes (Figure 4).
	tr := newTree(t, Config{InnerCap: 32, LeafCap: 63})
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		k := rng.Uint64()>>1 | 1
		keys = append(keys, k)
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Searches, tr.KeyProbes = 0, 0
	for _, k := range keys {
		if _, ok := tr.Find(k); !ok {
			t.Fatal("missing key")
		}
	}
	// Probes counted across all levels; per successful lookup with leaf 63
	// and two or three inner levels, expect roughly 3*log2(63) ≈ 12-20,
	// clearly logarithmic rather than linear (≈32 for the leaf alone).
	avg := float64(tr.KeyProbes) / float64(tr.Searches)
	if avg > 25 {
		t.Fatalf("avg probes/search = %.1f, not logarithmic", avg)
	}
}

func TestWrongModeOpenFails(t *testing.T) {
	pool := newPool()
	if _, err := New(pool, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVar(pool); err == nil {
		t.Fatal("OpenVar accepted fixed-mode arena")
	}
}
