package wbtree

import (
	"math/bits"

	"fptree/internal/scm"
)

// The wBTree's consistency protocol in this implementation:
//
//   - The bitmap word is the single p-atomic commit point for entry validity,
//     exactly as in the original design.
//   - The slot array is maintained as a sorted SUPERSET of the valid entries:
//     inserts rewrite it (including the new entry) BEFORE the bitmap commit,
//     deletes rewrite it AFTER the bitmap commit. Readers filter slot entries
//     through the bitmap, so a crash between the two writes is harmless and
//     needs no recovery action.
//   - Structure modifications (node splits, node removals, root changes) are
//     protected by FPTree-style micro-logs, as in the paper's evaluation
//     setup. A split copies the LOWER half into a fresh node and commits by
//     inserting the (sepKey -> newNode) entry into the parent, so exactly one
//     p-atomic parent commit publishes the split.

// --- generic (mode-dual) operations ------------------------------------------

func (b *base) count(n uint64) int {
	return bits.OnesCount64(b.nBitmap(n) &^ slotValidBit)
}

// full reports whether the node must be split before an insertion may touch
// it. Inner nodes split one entry early so a split's combined
// insert-plus-re-key commit always finds two free slots.
func (b *base) full(n uint64, leaf bool) bool {
	if leaf {
		return b.count(n) == b.leafCap
	}
	return b.count(n) >= b.innerCap-1
}

func (b *base) firstFree(n uint64) int {
	bm := b.nBitmap(n) &^ slotValidBit
	return bits.TrailingZeros64(^bm)
}

// writeEntryKey stores the key part of entry e (allocating the key block in
// var mode; the entry's pointer cell is the allocation owner).
func (b *base) writeEntryKey(n uint64, e int, fk uint64, vk []byte) error {
	off := b.entryOff(n, e)
	if b.mode == modeFixed {
		b.pool.WriteU64(off, fk)
		b.pool.Persist(off, 8)
		return nil
	}
	b.pool.WriteU64(off+scm.PPtrSize, uint64(len(vk)))
	b.pool.Persist(off+scm.PPtrSize, 8)
	pk, err := b.pool.Alloc(off, uint64(len(vk)))
	if err != nil {
		return err
	}
	b.pool.WriteBytes(pk.Offset, vk)
	b.pool.Persist(pk.Offset, uint64(len(vk)))
	return nil
}

// insertEntry adds (key, val) to a non-full node with the superset-slot
// protocol. It returns the entry index used.
func (b *base) insertEntry(n uint64, fk uint64, vk []byte, val uint64) (int, error) {
	order, rank, _ := b.search(n, fk, vk)
	if len(order) >= b.capOf(b.nIsLeaf(n)) {
		panic("wbtree: insertEntry on full node")
	}
	e := b.firstFree(n)
	if err := b.writeEntryKey(n, e, fk, vk); err != nil {
		return 0, err
	}
	b.setEntryVal(n, e, val)
	newOrder := make([]int, 0, len(order)+1)
	newOrder = append(newOrder, order[:rank]...)
	newOrder = append(newOrder, e)
	newOrder = append(newOrder, order[rank:]...)
	b.writeSlots(n, newOrder)
	b.setBitmap(n, b.nBitmap(n)|1<<e)
	return e, nil
}

// removeEntry hides entry e p-atomically, then refreshes the slot array and
// (in var mode) deallocates the key block through the entry's pointer cell.
func (b *base) removeEntry(n uint64, e int) {
	b.setBitmap(n, b.nBitmap(n)&^(1<<e))
	b.writeSlots(n, b.sortedEntries(n))
	if b.mode == modeVar {
		klen := b.pool.ReadU64(b.entryOff(n, e) + scm.PPtrSize)
		b.pool.Free(b.entryOff(n, e), klen)
	}
}

// entryWithVal locates the valid entry whose value equals val, or -1.
func (b *base) entryWithVal(n uint64, val uint64) int {
	bm := b.nBitmap(n) &^ slotValidBit
	for e := 0; e < 63; e++ {
		if bm&(1<<e) != 0 && b.entryVal(n, e) == val {
			return e
		}
	}
	return -1
}

// ensureRoot lazily materializes the root leaf (rootLog protocol).
func (b *base) ensureRoot() error {
	if b.rootOff() != 0 {
		return nil
	}
	log := b.rootLog()
	off, err := b.newNode(log.pOff(0), true)
	if err != nil {
		return err
	}
	b.setRootOff(off)
	log.reset()
	return nil
}

// growRoot puts a fresh inner node above a full root (rootLog protocol).
// insertInfEntry appends the +infinity separator entry for child.
func (b *base) insertInfEntry(n uint64, child uint64) {
	e := b.firstFree(n)
	off := b.entryOff(n, e)
	if b.mode == modeFixed {
		b.pool.WriteU64(off, ^uint64(0))
		b.pool.Persist(off, 8)
	} else {
		b.pool.WritePPtr(off, scm.PPtr{})
		b.pool.WriteU64(off+scm.PPtrSize, ^uint64(0))
		b.pool.Persist(off, scm.PPtrSize+8)
	}
	b.setEntryVal(n, e, child)
	b.writeSlots(n, append(b.sortedEntries(n), e))
	b.setBitmap(n, b.nBitmap(n)|1<<e)
}

func (b *base) growRoot() error {
	log := b.rootLog()
	old := b.rootOff()
	off, err := b.newNode(log.pOff(0), false)
	if err != nil {
		return err
	}
	// The old root becomes the single child behind a "+infinity" separator,
	// keeping the invariant that a node's greatest entry bounds its whole
	// key range from above.
	b.insertInfEntry(off, old)
	b.setRootOff(off)
	log.reset()
	return nil
}

// splitNode copies the lower half of the full node into a fresh node and
// publishes it with one p-atomic insert into the (non-full) parent. Returns
// the separator and the new node (which covers keys <= separator).
func (b *base) splitNode(n, parent uint64, leaf bool) (sepFK uint64, sepVK []byte, newOff uint64, err error) {
	log := b.splitLog()
	log.set(0, scm.PPtr{ArenaID: b.pool.ID(), Offset: n})
	log.set(2, scm.PPtr{ArenaID: b.pool.ID(), Offset: parent})
	capN := b.capOf(leaf)
	if _, err = b.pool.Alloc(log.pOff(1), b.nodeSize(capN)); err != nil {
		log.reset()
		return 0, nil, 0, err
	}
	newOff = b.pool.ReadPPtr(log.pOff(1)).Offset
	// Copy flags + entries wholesale (same entry indexes in both nodes).
	b.pool.WriteU64(newOff+nOffFlags, b.pool.ReadU64(n+nOffFlags))
	b.pool.Persist(newOff+nOffFlags, 8)
	ents := b.pool.ReadBytes(n+nOffEntries, uint64(capN)*b.entrySize())
	b.pool.WriteBytes(newOff+nOffEntries, ents)
	b.pool.Persist(newOff+nOffEntries, uint64(len(ents)))

	order := b.sortedEntries(n)
	keep := (len(order) + 1) / 2 // lower half moves to the new node
	lower := order[:keep]
	sepE := order[keep-1]
	if b.mode == modeFixed {
		sepFK = b.entryKeyFixed(n, sepE)
	} else {
		sepVK = b.entryKeyVar(n, sepE)
	}
	var lowBm uint64
	for _, e := range lower {
		lowBm |= 1 << e
	}
	b.writeSlots(newOff, lower)
	b.setBitmap(newOff, lowBm|slotValidBit)

	// Commit point: the parent entry (sep -> new node). If n was receiving
	// clamped overflow traffic (its parent-entry key is below sep), the same
	// p-atomic bitmap commit also re-keys n's entry to the infinity
	// separator, so the greatest parent entry keeps covering n's range.
	pe := b.entryWithVal(parent, n)
	if pe >= 0 && b.cmpKey(parent, pe, sepFK, sepVK) <= 0 {
		// pe.key <= sep implies n held keys beyond its separator, i.e. n was
		// the node's clamp target — so the infinity re-key is exact.
		err = b.insertSplitRekey(parent, sepFK, sepVK, newOff, pe, n)
	} else {
		_, err = b.insertEntry(parent, sepFK, sepVK, newOff)
	}
	if err != nil {
		return 0, nil, 0, err
	}
	b.finishSplit(n, newOff)
	log.reset()
	return sepFK, sepVK, newOff, nil
}

// insertSplitRekey atomically adds the (sep -> new) entry, replaces the
// split node's stale parent entry pe with an infinity entry, all with one
// bitmap store. Needs two free slots, which the insert path's early inner
// split threshold guarantees.
func (b *base) insertSplitRekey(parent uint64, sepFK uint64, sepVK []byte, newOff uint64, pe int, n uint64) error {
	bm := b.nBitmap(parent)
	e1 := bits.TrailingZeros64(^(bm &^ slotValidBit))
	if err := b.writeEntryKey(parent, e1, sepFK, sepVK); err != nil {
		return err
	}
	b.setEntryVal(parent, e1, newOff)
	e2 := bits.TrailingZeros64(^(bm&^slotValidBit | 1<<e1))
	off2 := b.entryOff(parent, e2)
	if b.mode == modeFixed {
		b.pool.WriteU64(off2, ^uint64(0))
		b.pool.Persist(off2, 8)
	} else {
		b.pool.WritePPtr(off2, scm.PPtr{})
		b.pool.WriteU64(off2+scm.PPtrSize, ^uint64(0))
		b.pool.Persist(off2, scm.PPtrSize+8)
	}
	b.setEntryVal(parent, e2, n)
	// Slot order: old entries minus pe, with e1 (sep) in rank order and e2
	// (infinity) last.
	var order []int
	for _, e := range b.sortedEntries(parent) {
		if e == pe {
			continue
		}
		order = append(order, e)
	}
	rank := 0
	for rank < len(order) && b.cmpKey(parent, order[rank], sepFK, sepVK) < 0 {
		rank = rank + 1
	}
	order = append(order, 0)
	copy(order[rank+1:], order[rank:])
	order[rank] = e1
	order = append(order, e2)
	b.writeSlots(parent, order)
	b.setBitmap(parent, (bm|1<<e1|1<<e2|slotValidBit)&^(1<<pe))
	if b.mode == modeVar {
		// The replaced entry's separator key block is no longer referenced.
		klen := b.pool.ReadU64(b.entryOff(parent, pe) + scm.PPtrSize)
		if !b.pool.ReadPPtr(b.entryOff(parent, pe)).IsNull() {
			b.pool.Free(b.entryOff(parent, pe), klen)
		}
	}
	return nil
}

// finishSplit shrinks the split node to its upper half; recovery re-enters
// it, so every step is idempotent.
func (b *base) finishSplit(n, newOff uint64) {
	moved := b.nBitmap(newOff) &^ slotValidBit
	b.setBitmap(n, b.nBitmap(n)&^moved)
	b.writeSlots(n, b.sortedEntries(n))
}

// descendPath records the nodes visited from root to leaf.
type pathEnt struct {
	node uint64
}

// doFind is the mode-dual point lookup.
func (b *base) doFind(fk uint64, vk []byte) (uint64, []byte, bool) {
	n := b.rootOff()
	if n == 0 {
		return 0, nil, false
	}
	for !b.nIsLeaf(n) {
		n, _, _ = b.childOf(n, fk, vk)
	}
	order, rank, exact := b.search(n, fk, vk)
	if !exact {
		return 0, nil, false
	}
	e := order[rank]
	if b.mode == modeVar {
		return 0, b.readVarVal(n, e), true
	}
	return b.entryVal(n, e), nil, true
}

func (b *base) readVarVal(n uint64, e int) []byte {
	return b.pool.ReadBytes(b.entryOff(n, e)+scm.PPtrSize+8, 8)
}

// doInsert is the mode-dual insert with top-down preemptive splits.
func (b *base) doInsert(fk uint64, vk []byte, val uint64) error {
	if err := b.ensureRoot(); err != nil {
		return err
	}
	if b.full(b.rootOff(), b.nIsLeaf(b.rootOff())) {
		if err := b.growRoot(); err != nil {
			return err
		}
	}
	parent := uint64(0)
	n := b.rootOff()
	for {
		leaf := b.nIsLeaf(n)
		if parent != 0 && b.full(n, leaf) {
			sepFK, sepVK, newOff, err := b.splitNode(n, parent, leaf)
			if err != nil {
				return err
			}
			if b.lessEq(fk, vk, sepFK, sepVK) {
				n = newOff
			}
		}
		if leaf {
			if _, err := b.insertEntry(n, fk, vk, val); err != nil {
				return err
			}
			b.size++
			return nil
		}
		parent = n
		n, _, _ = b.childOf(n, fk, vk)
	}
}

func (b *base) lessEq(aFK uint64, aVK []byte, bFK uint64, bVK []byte) bool {
	if b.mode == modeFixed {
		return aFK <= bFK
	}
	return string(aVK) <= string(bVK)
}

// doUpdate replaces the value under the key. Fixed-size values commit with
// one p-atomic 8-byte store.
func (b *base) doUpdate(fk uint64, vk []byte, val uint64) bool {
	n := b.rootOff()
	if n == 0 {
		return false
	}
	for !b.nIsLeaf(n) {
		n, _, _ = b.childOf(n, fk, vk)
	}
	order, rank, exact := b.search(n, fk, vk)
	if !exact {
		return false
	}
	b.setEntryVal(n, order[rank], val)
	return true
}

// doDelete removes the key, pruning emptied nodes up the recorded path with
// one micro-logged removal per level.
func (b *base) doDelete(fk uint64, vk []byte) bool {
	n := b.rootOff()
	if n == 0 {
		return false
	}
	var path []pathEnt
	for !b.nIsLeaf(n) {
		path = append(path, pathEnt{n})
		n, _, _ = b.childOf(n, fk, vk)
	}
	order, rank, exact := b.search(n, fk, vk)
	if !exact {
		return false
	}
	b.removeEntry(n, order[rank])
	b.size--
	// Prune an emptied subtree: find the highest ancestor that would become
	// empty, detach the whole chain with ONE p-atomic commit in its survivor
	// parent, then free the now-unreachable chain nodes. Detaching top-first
	// means no empty inner node is ever reachable, from any crash point.
	if b.count(n) == 0 && len(path) > 0 {
		i := len(path) - 1
		chainTop := n
		chain := []uint64{n}
		for i >= 0 && b.count(path[i].node) == 1 {
			chainTop = path[i].node
			chain = append(chain, chainTop)
			i--
		}
		if i >= 0 {
			surv := path[i].node
			if e := b.entryWithVal(surv, chainTop); e >= 0 {
				b.removeEntry(surv, e)
			}
		} else {
			// The whole tree emptied; chain includes the root.
			b.setRootOff(0)
		}
		// A crash here leaks any chain nodes not yet logged below — a
		// bounded, crash-only leak (the chain is unreachable either way).
		for _, nd := range chain {
			b.freeDetached(nd)
		}
	}
	// Collapse a root chain of single-child inner nodes; an inner root whose
	// last child was pruned leaves an empty tree.
	for {
		r := b.rootOff()
		if r == 0 || b.nIsLeaf(r) {
			break
		}
		switch b.count(r) {
		case 0:
			b.shrinkRoot(r, 0)
		case 1:
			only := b.sortedEntries(r)[0]
			b.shrinkRoot(r, b.entryVal(r, only))
		default:
			return true
		}
	}
	return true
}

// freeDetached deallocates a node that is no longer reachable from the root
// (delete micro-log: marker in p2, node in p0 — recovery frees it unless it
// is the current root).
func (b *base) freeDetached(n uint64) {
	log := b.delLog()
	log.set(2, scm.PPtr{ArenaID: b.pool.ID(), Offset: b.meta})
	log.set(0, scm.PPtr{ArenaID: b.pool.ID(), Offset: n})
	b.pool.Free(log.pOff(0), b.nodeSizeOf(n))
	log.reset()
}

// shrinkRoot replaces a single-child inner root by its child. The delete
// micro-log's third cell is set to the metadata block first, marking the
// root case unambiguously: a crash between the log writes must never be
// mistaken for a node removal (whose roll-forward test differs).
func (b *base) shrinkRoot(root, child uint64) {
	log := b.delLog()
	log.set(2, scm.PPtr{ArenaID: b.pool.ID(), Offset: b.meta})
	log.set(0, scm.PPtr{ArenaID: b.pool.ID(), Offset: root})
	b.setRootOff(child)
	b.pool.Free(log.pOff(0), b.nodeSizeOf(root))
	log.reset()
}

// nodeSizeOf computes the allocation size of an existing node from its kind.
func (b *base) nodeSizeOf(n uint64) uint64 {
	return b.nodeSize(b.capOf(b.nIsLeaf(n)))
}

// doScan seeks leaf by leaf through the tree, using the separators as upper
// bounds, and emits valid entries in slot (key) order.
func (b *base) doScan(fromFK uint64, fromVK []byte, emit func(n uint64, e int) bool) {
	curFK, curVK := fromFK, fromVK
	for {
		n := b.rootOff()
		if n == 0 {
			return
		}
		var ubFK uint64
		var ubVK []byte
		haveUB := false
		for !b.nIsLeaf(n) {
			order, rank, _ := b.search(n, curFK, curVK)
			idx := rank
			if idx >= len(order) {
				idx = len(order) - 1
			} else if !b.entryIsInf(n, order[idx]) {
				// The chosen separator bounds the subtree from above.
				if b.mode == modeFixed {
					ubFK = b.entryKeyFixed(n, order[idx])
				} else {
					ubVK = b.entryKeyVar(n, order[idx])
				}
				haveUB = true
			}
			n = b.entryVal(n, order[idx])
		}
		for _, e := range b.sortedEntries(n) {
			var c int
			if b.mode == modeFixed {
				k := b.entryKeyFixed(n, e)
				if k < curFK {
					c = -1
				}
			} else {
				c = -1
				if string(b.entryKeyVar(n, e)) >= string(curVK) {
					c = 0
				}
			}
			if c < 0 {
				continue
			}
			// A clamp-target leaf can hold keys above the separator that led
			// here. Those belong to a later round — the next descent clamps
			// back into this leaf — so emitting them now would duplicate them.
			if haveUB {
				if b.mode == modeFixed {
					if b.entryKeyFixed(n, e) > ubFK {
						break
					}
				} else if string(b.entryKeyVar(n, e)) > string(ubVK) {
					break
				}
			}
			if !emit(n, e) {
				return
			}
		}
		if !haveUB {
			return
		}
		if b.mode == modeFixed {
			curFK = ubFK + 1
		} else {
			curVK = append(append([]byte(nil), ubVK...), 0)
		}
	}
}

// recover replays the three micro-logs. The whole tree is in SCM, so this is
// all recovery does — the near-instant restart of Figure 12b.
//
// Each log is sanitized whenever ANY of its slots is non-null, not only when
// its leading slot is: a log line resets as a word-prefix commit, so a torn
// crash during reset() can null slot 0 while slots 1 and 2 keep their stale
// pointers. The replay logic itself stays keyed on slot 0 — it is written
// first in every protocol, so with slot 0 null the remaining slots are
// leftovers that recorded no durable mutation and must only be wiped (never
// freed — the blocks they name are owned by the live tree).
func (b *base) recover() {
	// Root log: a staged root (first leaf or grown root) either became the
	// root or is discarded.
	if rl := b.rootLog(); !rl.p(0).IsNull() || !rl.p(1).IsNull() || !rl.p(2).IsNull() {
		if !rl.p(0).IsNull() && b.rootOff() != rl.p(0).Offset {
			b.pool.Free(rl.pOff(0), b.nodeSizeOf(rl.p(0).Offset))
		}
		rl.reset()
	}
	// Split log: roll forward when the parent references the new node.
	if sl := b.splitLog(); !sl.p(0).IsNull() || !sl.p(1).IsNull() || !sl.p(2).IsNull() {
		if !sl.p(0).IsNull() {
			cur, parent := sl.p(0).Offset, sl.p(2).Offset
			if nw := sl.p(1); !nw.IsNull() {
				if parent != 0 && b.entryWithVal(parent, nw.Offset) >= 0 {
					b.finishSplit(cur, nw.Offset)
				} else {
					b.pool.Free(sl.pOff(1), b.nodeSizeOf(nw.Offset))
				}
			}
		}
		sl.reset()
	}
	// Delete log: the marker in p2 plus the node in p0 means "free this
	// node unless it is the current root" — covering both root shrinks and
	// detached-subtree frees. A log with only one cell set recorded no
	// durable mutation.
	if dl := b.delLog(); !dl.p(0).IsNull() || !dl.p(1).IsNull() || !dl.p(2).IsNull() {
		p0, p2 := dl.p(0), dl.p(2)
		if !p0.IsNull() && !p2.IsNull() && b.rootOff() != p0.Offset {
			b.pool.Free(dl.pOff(0), b.nodeSizeOf(p0.Offset))
		}
		dl.reset()
	}
}

// --- fixed-key public API ------------------------------------------------------

// Find returns the value stored under key.
func (t *Tree) Find(key uint64) (uint64, bool) {
	v, _, ok := t.doFind(key, nil)
	return v, ok
}

// Insert adds a key-value pair (keys are assumed unique).
func (t *Tree) Insert(key, value uint64) error { return t.doInsert(key, nil, value) }

// Update replaces the value under key with one p-atomic store.
func (t *Tree) Update(key, value uint64) (bool, error) { return t.doUpdate(key, nil, value), nil }

// Upsert inserts or updates.
func (t *Tree) Upsert(key, value uint64) error {
	if t.doUpdate(key, nil, value) {
		return nil
	}
	return t.Insert(key, value)
}

// Delete removes key.
func (t *Tree) Delete(key uint64) (bool, error) { return t.doDelete(key, nil), nil }

// Scan visits pairs with key >= from in ascending order until fn returns
// false.
func (t *Tree) Scan(from uint64, fn func(k, v uint64) bool) {
	t.doScan(from, nil, func(n uint64, e int) bool {
		return fn(t.entryKeyFixed(n, e), t.entryVal(n, e))
	})
}

// --- var-key public API ----------------------------------------------------------

// Find returns the value stored under key.
func (t *VarTree) Find(key []byte) (uint64, bool) {
	_, v, ok := t.doFind(0, key)
	if !ok {
		return 0, false
	}
	return leU64(v), true
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Insert adds a key-value pair.
func (t *VarTree) Insert(key []byte, value uint64) error { return t.doInsert(0, key, value) }

// Update replaces the value under key.
func (t *VarTree) Update(key []byte, value uint64) (bool, error) {
	return t.doUpdate(0, key, value), nil
}

// Upsert inserts or updates.
func (t *VarTree) Upsert(key []byte, value uint64) error {
	if t.doUpdate(0, key, value) {
		return nil
	}
	return t.Insert(key, value)
}

// Delete removes key.
func (t *VarTree) Delete(key []byte) (bool, error) { return t.doDelete(0, key), nil }

// Scan visits pairs with key >= from in ascending order until fn returns
// false.
func (t *VarTree) Scan(from []byte, fn func(k []byte, v uint64) bool) {
	t.doScan(0, from, func(n uint64, e int) bool {
		return fn(t.entryKeyVar(n, e), leU64(t.readVarVal(n, e)))
	})
}
