package wbtree

import (
	"bytes"
	"fmt"
	"math/bits"
)

// CheckInvariants verifies the structural properties every recovered state of
// the wBTree must satisfy:
//
//   - the root, split and delete micro-logs are quiescent (all-null),
//   - every node's bitmap has the slot-array-valid bit and only entry bits
//     below its capacity,
//   - the slot array covers every valid entry exactly once (it may carry
//     stale extras — the superset protocol allows them) in strictly
//     ascending key order,
//   - keys lie inside the routing interval (lo, hi] handed down by parent
//     separators; "+infinity" separators appear only in inner nodes, at most
//     once, and only as the last slot,
//   - all leaves sit at the same depth,
//   - the cached size equals the total number of valid leaf entries.
//
// It returns nil when all hold, or an error naming the first violation.
func (b *base) CheckInvariants() error {
	if b.pool.ReadU64(b.meta+mOffMagic) != metaMagic {
		return fmt.Errorf("wbtree: bad metadata magic")
	}
	for i := 0; i < 3; i++ {
		if !b.splitLog().p(i).IsNull() {
			return fmt.Errorf("wbtree: split log slot %d not reset", i)
		}
		if !b.rootLog().p(i).IsNull() {
			return fmt.Errorf("wbtree: root log slot %d not reset", i)
		}
		if !b.delLog().p(i).IsNull() {
			return fmt.Errorf("wbtree: delete log slot %d not reset", i)
		}
	}
	root := b.rootOff()
	if root == 0 {
		if b.size != 0 {
			return fmt.Errorf("wbtree: empty tree but cached size %d", b.size)
		}
		return nil
	}
	total, leafDepth := 0, -1
	err := b.checkNode(root, 0, ivBound{}, ivBound{inf: true}, &total, &leafDepth)
	if err != nil {
		return err
	}
	if b.size != total {
		return fmt.Errorf("wbtree: cached size %d != %d valid leaf entries", b.size, total)
	}
	return nil
}

// ivBound is one end of a routing interval: a key, or -/+infinity.
type ivBound struct {
	set bool // false = -infinity (only ever as a lower bound)
	inf bool // true = +infinity (only ever as an upper bound)
	fk  uint64
	vk  []byte
}

// cmpBound three-way-compares entry e's key with the bound.
func (b *base) cmpBound(n uint64, e int, bd ivBound) int {
	if b.entryIsInf(n, e) {
		if bd.inf {
			return 0
		}
		return 1
	}
	if bd.inf {
		return -1
	}
	if b.mode == modeFixed {
		k := b.entryKeyFixed(n, e)
		switch {
		case k < bd.fk:
			return -1
		case k > bd.fk:
			return 1
		}
		return 0
	}
	return bytes.Compare(b.entryKeyVar(n, e), bd.vk)
}

func (b *base) boundOf(n uint64, e int) ivBound {
	if b.entryIsInf(n, e) {
		return ivBound{inf: true}
	}
	if b.mode == modeFixed {
		return ivBound{set: true, fk: b.entryKeyFixed(n, e)}
	}
	return ivBound{set: true, vk: b.entryKeyVar(n, e)}
}

func (b *base) checkNode(n uint64, depth int, lo, hi ivBound, total, leafDepth *int) error {
	leaf := b.nIsLeaf(n)
	capN := b.capOf(leaf)
	bm := b.nBitmap(n)
	if bm&slotValidBit == 0 {
		return fmt.Errorf("wbtree: node %#x missing slot-valid bit", n)
	}
	valid := bm &^ slotValidBit
	if high := valid >> capN; high != 0 {
		return fmt.Errorf("wbtree: node %#x bitmap %#x has entries beyond capacity %d", n, valid, capN)
	}
	cnt := bits.OnesCount64(valid)

	// The slot array may be a superset, but filtered through the bitmap it
	// must enumerate each valid entry exactly once, in ascending key order.
	var sl [64]byte
	b.pool.ReadInto(n, sl[:])
	listed := int(sl[0])
	if listed > 63 {
		return fmt.Errorf("wbtree: node %#x slot count %d out of range", n, listed)
	}
	var order []int
	var seen uint64
	for i := 0; i < listed; i++ {
		e := int(sl[1+i])
		if e >= capN {
			return fmt.Errorf("wbtree: node %#x slot %d names entry %d beyond capacity %d", n, i, e, capN)
		}
		if valid&(1<<e) == 0 {
			continue // stale superset slot
		}
		if seen&(1<<e) != 0 {
			return fmt.Errorf("wbtree: node %#x slot array lists entry %d twice", n, e)
		}
		seen |= 1 << e
		order = append(order, e)
	}
	if len(order) != cnt {
		return fmt.Errorf("wbtree: node %#x slot array covers %d of %d valid entries", n, len(order), cnt)
	}
	for i := 1; i < len(order); i++ {
		if b.cmpEntries(n, order[i-1], order[i]) >= 0 {
			return fmt.Errorf("wbtree: node %#x slots %d,%d out of key order", n, i-1, i)
		}
	}
	for i, e := range order {
		if b.entryIsInf(n, e) {
			// The +infinity separator is a clamp marker standing for "up to
			// the parent's bound": legal only as the last slot of an inner
			// node, and exempt from the upper-bound check.
			if leaf {
				return fmt.Errorf("wbtree: leaf %#x entry %d carries the +infinity separator", n, e)
			}
			if i != len(order)-1 {
				return fmt.Errorf("wbtree: node %#x +infinity separator at slot %d is not last", n, i)
			}
			continue
		}
		if lo.set && b.cmpBound(n, e, lo) <= 0 {
			return fmt.Errorf("wbtree: node %#x entry %d at or below lower bound", n, e)
		}
		if b.cmpBound(n, e, hi) > 0 {
			return fmt.Errorf("wbtree: node %#x entry %d above upper bound", n, e)
		}
	}

	if leaf {
		if *leafDepth < 0 {
			*leafDepth = depth
		} else if *leafDepth != depth {
			return fmt.Errorf("wbtree: leaf %#x at depth %d, expected %d", n, depth, *leafDepth)
		}
		*total += cnt
		return nil
	}
	if cnt == 0 {
		return fmt.Errorf("wbtree: inner node %#x has no children", n)
	}
	childLo := lo
	for i, e := range order {
		child := b.entryVal(n, e)
		if child == 0 {
			return fmt.Errorf("wbtree: node %#x entry %d has null child", n, e)
		}
		childHi := b.boundOf(n, e)
		if i == len(order)-1 {
			// The last child absorbs clamped overflow: its effective upper
			// bound is the parent's, not its own separator.
			childHi = hi
		}
		if err := b.checkNode(child, depth+1, childLo, childHi, total, leafDepth); err != nil {
			return err
		}
		childLo = b.boundOf(n, e)
	}
	return nil
}
