package core

import "fptree/internal/htm"

// concurrency is the engine's synchronization template (Selective Concurrency,
// paper §4.2; cf. Brown's HTM-template factoring). The engine always runs the
// optimistic descend/validate/lock protocol; the controller decides whether
// those primitives actually do anything. The single-threaded controller turns
// every operation into a plain no-validation walk at zero cost, while the
// speculative controller delegates to the htm package's version locks (inner
// nodes) and leaf spinlocks, matching the paper's TSX-with-fallback scheme.
type concurrency interface {
	// concurrent reports whether real synchronization is in effect. The
	// engine uses it to gate single-threaded-only behavior (probe counters,
	// leaf groups, eager empty-leaf unlinking) — not for lock elision, which
	// the controller itself handles.
	concurrent() bool

	// Inner-node version locks (htm.VersionLock discipline).
	readBegin(l *htm.VersionLock) uint64
	validate(l *htm.VersionLock, ver uint64) bool
	lockNode(l *htm.VersionLock)
	unlockNode(l *htm.VersionLock)       // bumps the version
	unlockNodeNoBump(l *htm.VersionLock) // releases without invalidating readers

	// Leaf locks (htm.RWSpin on the DRAM leafRef handle).
	tryRLockLeaf(r *leafRef) bool
	rUnlockLeaf(r *leafRef)
	tryLockLeaf(r *leafRef) bool
	lockLeaf(r *leafRef)
	unlockLeaf(r *leafRef)
}

// nopCC is the single-threaded controller: every primitive is free and every
// try-acquire succeeds, so the engine's optimistic loops run exactly once.
type nopCC struct{}

func (nopCC) concurrent() bool                       { return false }
func (nopCC) readBegin(*htm.VersionLock) uint64      { return 0 }
func (nopCC) validate(*htm.VersionLock, uint64) bool { return true }
func (nopCC) lockNode(*htm.VersionLock)              {}
func (nopCC) unlockNode(*htm.VersionLock)            {}
func (nopCC) unlockNodeNoBump(*htm.VersionLock)      {}
func (nopCC) tryRLockLeaf(*leafRef) bool             { return true }
func (nopCC) rUnlockLeaf(*leafRef)                   {}
func (nopCC) tryLockLeaf(*leafRef) bool              { return true }
func (nopCC) lockLeaf(*leafRef)                      {}
func (nopCC) unlockLeaf(*leafRef)                    {}

// occCC is the concurrent controller: speculative validated descent over
// per-node version locks plus fine-grained leaf spinlocks, the software
// analogue of the paper's HTM sections with fallback.
type occCC struct{}

func (occCC) concurrent() bool                           { return true }
func (occCC) readBegin(l *htm.VersionLock) uint64        { return l.ReadBegin() }
func (occCC) validate(l *htm.VersionLock, v uint64) bool { return l.ReadValidate(v) }
func (occCC) lockNode(l *htm.VersionLock)                { l.Lock() }
func (occCC) unlockNode(l *htm.VersionLock)              { l.Unlock() }
func (occCC) unlockNodeNoBump(l *htm.VersionLock)        { l.UnlockNoBump() }
func (occCC) tryRLockLeaf(r *leafRef) bool               { return r.lk.TryRLock() }
func (occCC) rUnlockLeaf(r *leafRef)                     { r.lk.RUnlock() }
func (occCC) tryLockLeaf(r *leafRef) bool                { return r.lk.TryLock() }
func (occCC) lockLeaf(r *leafRef)                        { r.lk.Lock() }

// unlockLeaf bumps the leaf's modification version BEFORE releasing the
// exclusive lock. The order matters: an iterator validates "version
// unchanged" after caching content read under the shared lock, and the
// shared lock cannot be held while a writer holds the exclusive one — so an
// unchanged version proves the cached content is still current. Bumping
// after the unlock would open a window where changed content still carries
// the old version.
func (occCC) unlockLeaf(r *leafRef) {
	r.ver.Add(1)
	r.lk.Unlock()
}
