package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fptree/internal/htm"
)

// TestAdaptiveControllerAttach: the facade promotes SetController/Controller,
// single-threaded trees ignore it, and metrics registration picks up the
// controller series.
func TestAdaptiveControllerAttach(t *testing.T) {
	ct := newCTree(t, Config{LeafCap: 8, InnerFanout: 4})
	c := htm.NewAdaptiveController(htm.AdaptiveConfig{})
	ct.SetController(c)
	if ct.Controller() != c {
		t.Fatal("controller not installed on concurrent tree")
	}
	st, err := Create(newPool(16), Config{LeafCap: 8, InnerFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	st.SetController(c)
	if st.Controller() != nil {
		t.Fatal("single-threaded tree accepted a controller")
	}
}

// TestAdaptiveOpsFeedController: completed operations reach the controller's
// window clock, so adaptation actually runs against live traffic.
func TestAdaptiveOpsFeedController(t *testing.T) {
	ct := newCTree(t, Config{LeafCap: 8, InnerFanout: 4})
	c := htm.NewAdaptiveController(htm.AdaptiveConfig{AdaptEvery: 64})
	ct.SetController(c)
	for i := uint64(1); i <= 200; i++ {
		if err := ct.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 200; i++ {
		if _, ok := ct.Find(i); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	if c.Stats.Adaptations.Load() == 0 {
		t.Fatal("no adaptation windows fired under 400 ops with AdaptEvery=64")
	}
	if b := c.Budget(); b < c.Config().Floor || b > c.Config().Ceiling {
		t.Fatalf("budget %d out of bounds", b)
	}
}

// TestReaderConcurrentWithFallbackWriter is the race-enabled linearizability
// check for Brown's refinement: with AlwaysFallback forcing every write
// through the global fallback lock, optimistic readers must keep completing
// (they validate leaf versions against the writer's publication point instead
// of stalling on the lock) and every reader must observe a monotonically
// non-decreasing register — each update commits its leaf-version bump before
// the leaf lock is released, so no reader can see an older value after a
// newer one.
func TestReaderConcurrentWithFallbackWriter(t *testing.T) {
	ct := newCTree(t, Config{LeafCap: 8, InnerFanout: 4})
	c := htm.NewAdaptiveController(htm.AdaptiveConfig{AlwaysFallback: true})
	ct.SetController(c)

	const hot = uint64(500)
	// Populate the hot key's neighborhood so reads traverse real inner nodes.
	for i := uint64(1); i <= 1000; i++ {
		if err := ct.Insert(i, 0); err != nil {
			t.Fatal(err)
		}
	}

	// The writer keeps cycling through the fallback lock until every reader
	// has banked readsEach overlapping reads (at least minWrites updates
	// either way), so the test cannot pass without genuine reader progress
	// alongside an active fallback writer — and cannot flake on a scheduler
	// that briefly starves the readers, as a fixed write count can on one CPU.
	const minWrites = 2000
	const readers = 4
	const readsEach = 50
	var written atomic.Uint64
	var done atomic.Int32
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer done.Add(1)
			var last uint64
			for reads := 0; reads < readsEach; {
				if written.Load() == 0 {
					// Only count reads that overlap the writer's fallback
					// sections.
					runtime.Gosched()
					continue
				}
				v, ok := ct.Find(hot)
				if !ok {
					t.Error("hot key vanished")
					return
				}
				if v < last {
					t.Errorf("non-monotonic read: %d after %d", v, last)
					return
				}
				last = v
				reads++
			}
		}()
	}
	deadline := time.Now().Add(60 * time.Second)
	for written.Load() < minWrites || int(done.Load()) < readers {
		i := written.Load() + 1
		ok, err := ct.Update(hot, i)
		if err != nil || !ok {
			t.Fatalf("update %d: ok=%v err=%v", i, ok, err)
		}
		written.Store(i)
		if time.Now().After(deadline) {
			t.Fatalf("readers starved: %d/%d done after %d writes", done.Load(), readers, i)
		}
	}
	wg.Wait()

	writes := written.Load()
	if got := c.Stats.FallbackEntries.Load(); got < writes {
		t.Fatalf("FallbackEntries = %d, want >= %d (AlwaysFallback)", got, writes)
	}
	if v, ok := ct.Find(hot); !ok || v != writes {
		t.Fatalf("final value = %d,%v, want %d", v, ok, writes)
	}
}

// TestAdaptiveConcurrentMixed drives contending writers and readers through
// an adaptive controller end to end: the tree must stay correct, the budget
// must stay in bounds, and the sustained single-leaf conflicts must have
// produced adaptation traffic.
func TestAdaptiveConcurrentMixed(t *testing.T) {
	ct := newCTree(t, Config{LeafCap: 8, InnerFanout: 4})
	c := htm.NewAdaptiveController(htm.AdaptiveConfig{AdaptEvery: 64})
	ct.SetController(c)
	for i := uint64(1); i <= 64; i++ {
		if err := ct.Insert(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				key := uint64(w*3%8) + 1 // a few hot keys in one leaf
				if _, err := ct.Update(key, uint64(i)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if _, ok := ct.Find(key); !ok {
					t.Error("hot key missing")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if b := c.Budget(); b < c.Config().Floor || b > c.Config().Ceiling {
		t.Fatalf("budget %d out of bounds", b)
	}
	if c.Stats.Adaptations.Load() == 0 {
		t.Fatal("no adaptation windows fired")
	}
	if n := ct.Len(); n != 64 {
		t.Fatalf("Len = %d, want 64", n)
	}
}
