package core

import (
	"fmt"

	"fptree/internal/scm"
)

// groupAlloc implements the amortized persistent allocations of Section 4.3
// and Appendix B: leaves are carved out of persistently linked groups of
// GroupSize leaves, and a volatile vector tracks the leaves that are free.
//
// Persistent state: the group linked list (head/tail in the tree metadata,
// next pointer in each group header) plus the getLeaf and freeLeaf
// micro-logs. Volatile state: the free-leaf vector and per-group usage
// counters, both rebuilt during recovery by comparing group membership with
// the leaf list.
//
// Group block layout: next PPtr | pad to one cache line | GroupSize × leaf.
type groupAlloc struct {
	pool     *scm.Pool
	m        meta
	leafSize uint64
	size     int // leaves per group; 0 = groups disabled

	free      []uint64          // offsets of free leaves, LIFO
	used      map[uint64]int    // group offset -> number of in-tree leaves
	leafGroup map[uint64]uint64 // leaf offset -> its group offset
}

func (g *groupAlloc) init(pool *scm.Pool, m meta, leafSize uint64, size int) {
	g.pool, g.m, g.leafSize, g.size = pool, m, leafSize, size
	if size > 0 {
		g.used = make(map[uint64]int)
		g.leafGroup = make(map[uint64]uint64)
	}
}

func (g *groupAlloc) enabled() bool { return g.size > 0 }

func (g *groupAlloc) groupBytes() uint64 {
	return scm.LineSize + uint64(g.size)*g.leafSize
}

func (g *groupAlloc) leafOffsets(group uint64) []uint64 {
	out := make([]uint64, g.size)
	for i := range out {
		out[i] = group + scm.LineSize + uint64(i)*g.leafSize
	}
	return out
}

func (g *groupAlloc) groupNext(group uint64) scm.PPtr { return g.pool.ReadPPtr(group) }

func (g *groupAlloc) setGroupNext(group uint64, p scm.PPtr) {
	g.pool.WritePPtr(group, p)
	g.pool.Persist(group, scm.PPtrSize)
}

// getLeaf pops a free leaf, allocating and linking a new group when the
// vector is empty (Algorithm 10). The group allocation is staged in the
// getLeaf micro-log so a crash can neither leak the group nor link it twice.
func (g *groupAlloc) getLeaf() (uint64, error) {
	if len(g.free) == 0 {
		log := g.m.getLeafLog()
		ptr, err := g.pool.Alloc(log.aOff(), g.groupBytes())
		if err != nil {
			return 0, err
		}
		g.linkGroup(ptr)
		log.reset()
		g.used[ptr.Offset] = 0
		for _, off := range g.leafOffsets(ptr.Offset) {
			g.leafGroup[off] = ptr.Offset
			g.free = append(g.free, off)
		}
	}
	off := g.free[len(g.free)-1]
	g.free = g.free[:len(g.free)-1]
	g.used[g.leafGroup[off]]++
	return off, nil
}

// linkGroup appends the group to the persistent group list.
func (g *groupAlloc) linkGroup(ptr scm.PPtr) {
	if g.m.headGroup().IsNull() {
		g.m.setHeadGroup(ptr)
		g.m.setTailGroup(ptr)
		return
	}
	tail := g.m.tailGroup()
	g.setGroupNext(tail.Offset, ptr)
	g.m.setTailGroup(ptr)
}

// linkGroupReplay is the recovery version of linkGroup: the crash may have
// hit between any two of its steps, so the true list tail is re-derived by
// walking the list instead of trusting the tail pointer.
func (g *groupAlloc) linkGroupReplay(ptr scm.PPtr) {
	head := g.m.headGroup()
	if head.IsNull() {
		g.m.setHeadGroup(ptr)
		g.m.setTailGroup(ptr)
		return
	}
	p := head
	for {
		if p == ptr {
			// Already linked; only the tail update may be missing.
			break
		}
		next := g.groupNext(p.Offset)
		if next.IsNull() {
			g.setGroupNext(p.Offset, ptr)
			break
		}
		p = next
	}
	g.m.setTailGroup(ptr)
}

// freeLeaf returns a leaf to the vector; when its whole group becomes free
// the group is unlinked and deallocated (Algorithm 12).
func (g *groupAlloc) freeLeaf(leaf uint64) {
	group := g.leafGroup[leaf]
	g.used[group]--
	if g.used[group] > 0 || len(g.used) == 1 {
		// Keep the last group even when empty: the next insert would
		// otherwise re-allocate it immediately.
		g.free = append(g.free, leaf)
		return
	}
	// Drop the group's leaves from the volatile vector.
	kept := g.free[:0]
	for _, off := range g.free {
		if g.leafGroup[off] != group {
			kept = append(kept, off)
		}
	}
	g.free = kept

	log := g.m.freeLeafLog()
	gp := scm.PPtr{ArenaID: g.pool.ID(), Offset: group}
	log.setA(gp)
	if g.m.headGroup() == gp {
		g.m.setHeadGroup(g.groupNext(group))
		if g.m.tailGroup() == gp {
			g.m.setTailGroup(scm.PPtr{})
		}
	} else {
		prev := g.prevGroup(group)
		log.setB(prev)
		g.setGroupNext(prev.Offset, g.groupNext(group))
		if g.m.tailGroup() == gp {
			g.m.setTailGroup(prev)
		}
	}
	g.pool.Free(log.aOff(), g.groupBytes())
	log.reset()

	for _, off := range g.leafOffsets(group) {
		delete(g.leafGroup, off)
	}
	delete(g.used, group)
}

// prevGroup walks the persistent list for the predecessor of group. Group
// deallocations are rare (a whole group must empty), so the walk is fine.
func (g *groupAlloc) prevGroup(group uint64) scm.PPtr {
	p := g.m.headGroup()
	for !p.IsNull() {
		next := g.groupNext(p.Offset)
		if next.Offset == group {
			return p
		}
		p = next
	}
	panic(fmt.Sprintf("fptree: group %#x not in group list", group))
}

// recover replays the two group micro-logs (Algorithms 11 and 13). It uses
// only persistent state; the volatile vector is rebuilt afterwards.
func (g *groupAlloc) recover() {
	if !g.enabled() {
		return
	}
	// RecoverGetLeaf: the staged group is linked or discarded. A null log.a
	// means the allocator already rolled the allocation back.
	log := g.m.getLeafLog()
	if a := log.a(); !a.IsNull() {
		g.linkGroupReplay(a)
		log.reset()
	}
	// RecoverFreeLeaf: finish unlinking and deallocating the group.
	flog := g.m.freeLeafLog()
	a, b := flog.a(), flog.b()
	switch {
	case a.IsNull():
		if !b.IsNull() {
			flog.reset()
		}
	case !b.IsNull():
		// Crashed between the prev-link update and deallocation: redo.
		g.setGroupNext(b.Offset, g.groupNext(a.Offset))
		if g.m.tailGroup() == a {
			g.m.setTailGroup(b)
		}
		g.pool.Free(flog.aOff(), g.groupBytes())
		flog.reset()
	case g.m.headGroup() == a:
		// Crashed before the head pointer moved.
		g.m.setHeadGroup(g.groupNext(a.Offset))
		if g.m.tailGroup() == a {
			g.m.setTailGroup(scm.PPtr{})
		}
		g.pool.Free(flog.aOff(), g.groupBytes())
		flog.reset()
	case g.groupNext(a.Offset) == g.m.headGroup():
		// Head already moved; only the deallocation is missing.
		if g.m.tailGroup() == a {
			g.m.setTailGroup(scm.PPtr{})
		}
		g.pool.Free(flog.aOff(), g.groupBytes())
		flog.reset()
	default:
		flog.reset()
	}
}

// rebuildFreeVector reconstructs the volatile free vector and usage counters
// after recovery: a leaf is free exactly when it belongs to a group but is
// not linked in the tree's leaf list.
func (g *groupAlloc) rebuildFreeVector(inTree []uint64) {
	if !g.enabled() {
		return
	}
	g.free = g.free[:0]
	clear(g.used)
	clear(g.leafGroup)
	live := make(map[uint64]bool, len(inTree))
	for _, off := range inTree {
		live[off] = true
	}
	for p := g.m.headGroup(); !p.IsNull(); p = g.groupNext(p.Offset) {
		g.used[p.Offset] = 0
		for _, off := range g.leafOffsets(p.Offset) {
			g.leafGroup[off] = p.Offset
			if live[off] {
				g.used[p.Offset]++
			} else {
				g.free = append(g.free, off)
			}
		}
	}
}

// checkInvariants validates the volatile bookkeeping against the persistent
// group list.
func (g *groupAlloc) checkInvariants() error {
	if !g.enabled() {
		return nil
	}
	seen := 0
	for p := g.m.headGroup(); !p.IsNull(); p = g.groupNext(p.Offset) {
		seen++
		if _, ok := g.used[p.Offset]; !ok {
			return fmt.Errorf("group %#x in persistent list but not tracked", p.Offset)
		}
		if tail := g.m.tailGroup(); g.groupNext(p.Offset).IsNull() && p != tail {
			return fmt.Errorf("tail pointer %v does not match last group %v", tail, p)
		}
	}
	if seen != len(g.used) {
		return fmt.Errorf("tracked %d groups, persistent list has %d", len(g.used), seen)
	}
	for _, off := range g.free {
		if _, ok := g.leafGroup[off]; !ok {
			return fmt.Errorf("free leaf %#x belongs to no tracked group", off)
		}
	}
	return nil
}
