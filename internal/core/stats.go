package core

import (
	"sync/atomic"

	"fptree/internal/obs"
)

// OpStats counts the tree events behind the paper's cost arguments, with
// atomic fields so the concurrent variants can share one instance across
// goroutines and a metrics endpoint can read it during operation. It
// complements the older non-atomic ProbeStats (kept for the single-threaded
// Figure 4 experiment, which resets it between runs).
//
// Fingerprint accounting follows Section 4.2: every valid slot costs one
// byte-compare against the search key's fingerprint (FPCompares); a matching
// fingerprint forces a key dereference (FPHits = key probes on the
// fingerprint path); a dereference that finds a different key was a false
// positive (FPFalsePositives). With a uniform 1-byte hash the false-positive
// probability per compare is 1/256 ≈ 0.39%, which is what keeps the expected
// number of in-leaf key probes at ~1.
type OpStats struct {
	Searches         atomic.Uint64 // completed in-leaf searches
	KeyProbes        atomic.Uint64 // keys dereferenced and compared (any variant)
	FPCompares       atomic.Uint64 // fingerprint byte-compares on valid slots
	FPHits           atomic.Uint64 // fingerprint matches (forced key probes)
	FPFalsePositives atomic.Uint64 // fingerprint matched, key differed
	LeafSplits       atomic.Uint64 // completed leaf splits
	InnerRebuilds    atomic.Uint64 // DRAM inner-node reconstructions (recovery)
	RecoveryLeaves   atomic.Uint64 // persistent leaves scanned during recovery
	RecoveryGroups   atomic.Uint64 // leaf groups walked during recovery
	RecoveryNanos    atomic.Uint64 // wall-clock ns of the last inner rebuild
}

// noteSearch batches one search's local counts into the shared atomics: one
// atomic add per non-zero counter instead of one per slot visited.
func (o *OpStats) noteSearch(compares, hits, falsePos, probes uint64) {
	o.Searches.Add(1)
	if probes != 0 {
		o.KeyProbes.Add(probes)
	}
	if compares != 0 {
		o.FPCompares.Add(compares)
	}
	if hits != 0 {
		o.FPHits.Add(hits)
	}
	if falsePos != 0 {
		o.FPFalsePositives.Add(falsePos)
	}
}

// FPRate returns the measured fingerprint false-positive rate: the fraction
// of fingerprint compares that matched on a differing key. Expected ≈ 1/256
// for uniform keys.
func (o *OpStats) FPRate() float64 {
	c := o.FPCompares.Load()
	if c == 0 {
		return 0
	}
	return float64(o.FPFalsePositives.Load()) / float64(c)
}

// AvgKeyProbes returns the measured expected number of in-leaf key
// dereferences per search (the paper's "number of key probes" metric).
func (o *OpStats) AvgKeyProbes() float64 {
	s := o.Searches.Load()
	if s == 0 {
		return 0
	}
	return float64(o.KeyProbes.Load()) / float64(s)
}

// RegisterMetrics exposes the counters on reg under the given prefix
// (conventionally "fptree").
func (o *OpStats) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"_searches_total",
		"completed in-leaf searches", o.Searches.Load)
	reg.CounterFunc(prefix+"_key_probes_total",
		"keys dereferenced and compared during in-leaf searches", o.KeyProbes.Load)
	reg.CounterFunc(prefix+"_fingerprint_compares_total",
		"fingerprint byte-compares against valid slots", o.FPCompares.Load)
	reg.CounterFunc(prefix+"_fingerprint_hits_total",
		"fingerprint matches that forced a key dereference", o.FPHits.Load)
	reg.CounterFunc(prefix+"_fingerprint_false_positives_total",
		"fingerprint matches on a differing key (expected ~1/256 per compare)", o.FPFalsePositives.Load)
	reg.CounterFunc(prefix+"_leaf_splits_total",
		"completed leaf splits", o.LeafSplits.Load)
	reg.CounterFunc(prefix+"_inner_rebuilds_total",
		"DRAM inner-node reconstructions during recovery", o.InnerRebuilds.Load)
	reg.CounterFunc(prefix+"_recovery_leaves_scanned_total",
		"persistent leaves scanned while rebuilding inner nodes", o.RecoveryLeaves.Load)
	reg.CounterFunc(prefix+"_recovery_groups_total",
		"leaf groups walked while rebuilding inner nodes", o.RecoveryGroups.Load)
	reg.GaugeFunc(prefix+"_recovery_rebuild_seconds",
		"wall-clock duration of the last inner-node rebuild", func() float64 {
			return float64(o.RecoveryNanos.Load()) / 1e9
		})
}
