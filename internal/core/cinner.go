package core

import (
	"sync/atomic"
	"unsafe"

	"fptree/internal/htm"
)

// cInner is a DRAM inner node of the concurrent trees. Every mutation
// happens under the node's version lock; readers traverse optimistically and
// validate versions, which is the software equivalent of running the
// traversal inside an HTM transaction (see package htm). All fields readers
// touch are atomics so optimistic reads are race-free; a reader that observes
// a half-applied mutation simply fails validation and restarts.
//
// A node holds cnt children and cnt-1 separators. Separators are "max key of
// the left subtree". Arrays are allocated at the node's fixed capacity; a
// node is full at cnt == cap and is split preemptively during SMO descents,
// so an insertion never overflows.
type cInner[K any] struct {
	lock       htm.VersionLock
	leafParent bool
	cnt        atomic.Int32
	keys       []atomic.Pointer[K]
	kids       []atomic.Pointer[cInner[K]]
	leaves     []atomic.Pointer[leafRef]
}

// leafRef is the volatile handle of one SCM leaf: the leaf's arena offset
// plus its lock. The paper stores a lock byte inside the leaf but never
// persists it; keeping the live lock in DRAM is the exact equivalent
// (recovery "resets" leaf locks by building fresh handles). A deleted leaf's
// handle stays write-locked forever, so stale readers bounce and re-descend
// instead of touching reclaimed SCM.
type leafRef struct {
	off  uint64
	lk   htm.RWSpin
	dead atomic.Bool
	// ver counts completed exclusive sections on this leaf. The concurrent
	// controller bumps it before releasing the write lock, so an iterator that
	// cached the leaf's content under the shared lock can later prove the
	// cache is still current (see Iter.leafLive) without re-reading SCM.
	ver atomic.Uint64
}

func newCInner[K any](capacity int, leafParent bool) *cInner[K] {
	n := &cInner[K]{leafParent: leafParent}
	n.keys = make([]atomic.Pointer[K], capacity)
	if leafParent {
		n.leaves = make([]atomic.Pointer[leafRef], capacity)
	} else {
		n.kids = make([]atomic.Pointer[cInner[K]], capacity)
	}
	return n
}

func (n *cInner[K]) capacity() int { return len(n.keys) }

func (n *cInner[K]) full() bool { return int(n.cnt.Load()) == n.capacity() }

// search returns the child index covering key. ok is false when a torn
// concurrent mutation was observed (nil key); the caller must validate and
// restart. Writers holding the lock always see ok == true.
func (n *cInner[K]) search(key K, less func(a, b K) bool) (int, bool) {
	cnt := int(n.cnt.Load())
	lo, hi := 0, cnt-1
	if hi < 0 {
		return 0, true
	}
	for lo < hi {
		mid := (lo + hi) / 2
		kp := n.keys[mid].Load()
		if kp == nil {
			return 0, false
		}
		if !less(*kp, key) { // keys[mid] >= key
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// plainPtrs reinterprets a slice of atomic pointers as a slice of plain
// pointers so shifts can use bulk copy (memmove with write barriers) instead
// of one atomic store per element. atomic.Pointer[T] is exactly one machine
// pointer (its other fields are zero-size), which the compile-time assertion
// below pins. Only the single-threaded engine may take this path: with
// concurrent optimistic readers the per-element atomic stores are what keeps
// torn reads detectable-but-race-free.
func plainPtrs[T any](s []atomic.Pointer[T]) []*T {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((**T)(unsafe.Pointer(&s[0])), len(s))
}

// Fails to compile if atomic.Pointer ever grows beyond one pointer word.
var _ [unsafe.Sizeof(unsafe.Pointer(nil)) - unsafe.Sizeof(atomic.Pointer[int]{})]byte

// insertAt splices separator k at position i and a new right-hand child at
// i+1. Caller holds the lock and has ensured the node is not full. seq marks
// a single-threaded engine (no concurrent readers), enabling bulk shifts;
// inner-node fanouts are ~32× larger in the single-threaded configurations,
// so the element-wise atomic shift is the dominant split cost there.
func (n *cInner[K]) insertAt(i int, k K, newKid *cInner[K], newLeaf *leafRef, seq bool) {
	cnt := int(n.cnt.Load())
	if seq {
		keys := plainPtrs(n.keys)
		copy(keys[i+1:cnt], keys[i:cnt-1])
		keys[i] = &k
		if n.leafParent {
			lv := plainPtrs(n.leaves)
			copy(lv[i+2:cnt+1], lv[i+1:cnt])
			lv[i+1] = newLeaf
		} else {
			kd := plainPtrs(n.kids)
			copy(kd[i+2:cnt+1], kd[i+1:cnt])
			kd[i+1] = newKid
		}
		n.cnt.Store(int32(cnt + 1))
		return
	}
	for j := cnt - 2; j >= i; j-- {
		n.keys[j+1].Store(n.keys[j].Load())
	}
	n.keys[i].Store(&k)
	if n.leafParent {
		for j := cnt - 1; j >= i+1; j-- {
			n.leaves[j+1].Store(n.leaves[j].Load())
		}
		n.leaves[i+1].Store(newLeaf)
	} else {
		for j := cnt - 1; j >= i+1; j-- {
			n.kids[j+1].Store(n.kids[j].Load())
		}
		n.kids[i+1].Store(newKid)
	}
	n.cnt.Store(int32(cnt + 1))
}

// removeAt removes child i and the separator delimiting it. Caller holds the
// lock. seq as in insertAt.
func (n *cInner[K]) removeAt(i int, seq bool) {
	cnt := int(n.cnt.Load())
	ki := i
	if ki == cnt-1 {
		ki = cnt - 2
	}
	if seq {
		if cnt >= 2 { // cnt == 1 removes the only child: ki is -1, no separators
			keys := plainPtrs(n.keys)
			copy(keys[ki:cnt-2], keys[ki+1:cnt-1])
			keys[cnt-2] = nil
		}
		if n.leafParent {
			lv := plainPtrs(n.leaves)
			copy(lv[i:cnt-1], lv[i+1:cnt])
			lv[cnt-1] = nil
		} else {
			kd := plainPtrs(n.kids)
			copy(kd[i:cnt-1], kd[i+1:cnt])
			kd[cnt-1] = nil
		}
		n.cnt.Store(int32(cnt - 1))
		return
	}
	for j := ki; j < cnt-2; j++ {
		n.keys[j].Store(n.keys[j+1].Load())
	}
	if cnt >= 2 {
		n.keys[cnt-2].Store(nil)
	}
	if n.leafParent {
		for j := i; j < cnt-1; j++ {
			n.leaves[j].Store(n.leaves[j+1].Load())
		}
		n.leaves[cnt-1].Store(nil)
	} else {
		for j := i; j < cnt-1; j++ {
			n.kids[j].Store(n.kids[j+1].Load())
		}
		n.kids[cnt-1].Store(nil)
	}
	n.cnt.Store(int32(cnt - 1))
}

// splitNode moves the upper half of a full node into a fresh right sibling
// and returns the promoted separator. Caller holds the lock; the new node is
// not yet published anywhere.
func (n *cInner[K]) splitNode() (K, *cInner[K]) {
	cnt := int(n.cnt.Load())
	mid := (cnt - 1) / 2 // separator index to promote
	up := *n.keys[mid].Load()
	right := newCInner[K](n.capacity(), n.leafParent)
	rc := 0
	for j := mid + 1; j < cnt; j++ {
		if n.leafParent {
			right.leaves[rc].Store(n.leaves[j].Load())
			n.leaves[j].Store(nil)
		} else {
			right.kids[rc].Store(n.kids[j].Load())
			n.kids[j].Store(nil)
		}
		if j < cnt-1 {
			right.keys[rc].Store(n.keys[j].Load())
		}
		rc++
	}
	for j := mid; j < cnt-1; j++ {
		n.keys[j].Store(nil)
	}
	right.cnt.Store(int32(rc))
	n.cnt.Store(int32(mid + 1))
	return up, right
}
