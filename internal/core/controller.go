package core

import "fptree/internal/htm"

// SetController installs an adaptive concurrency controller on the tree; nil
// (the default) keeps the fixed htm.Backoff budget. Like SetTracer, the
// facades promote this method and kvserver discovers it through an optional
// interface, so any concurrent store can be steered without constructor
// plumbing. Single-threaded trees ignore it: the nop controller never aborts,
// so there is no signal to adapt on.
//
// Call before the tree serves traffic: the field is read without
// synchronization on every operation.
func (e *engine[K, V]) SetController(c *htm.AdaptiveController) {
	if e.st {
		return
	}
	e.ctrl = c
}

// Controller returns the installed adaptive controller (nil when the fixed
// budget is in effect).
func (e *engine[K, V]) Controller() *htm.AdaptiveController { return e.ctrl }

// opDone reports one completed public operation to the controller — the
// denominator of the abort ratio it steers on, and the clock that paces its
// adaptation windows.
func (e *engine[K, V]) opDone() {
	if e.ctrl != nil {
		e.ctrl.OnOp()
	}
}

// maybeFallback is consulted by writers at the top of every retry attempt:
// once the attempt count exceeds the controller's live budget the writer
// takes the global fallback lock and keeps it until the operation completes
// (releaseFallback), serializing budget-exhausted writers against each other
// so a conflict storm collapses instead of feeding on itself.
//
// The fallback lock is a contention valve, not a correctness device: the
// fallback writer still runs the full OLC protocol (descend, validate, leaf
// locks), and correctness never depends on holding the lock. That is what
// makes Brown's refinement safe by construction — optimistic readers never
// look at the fallback lock; they validate leaf versions against the writer's
// publication point (unlockLeaf bumps the version before releasing the leaf
// lock), so a reader overlapping a fallback writer either sees a consistent
// pre-image or aborts and retries, and never stalls on the global lock.
func (e *engine[K, V]) maybeFallback(attempt int, held *bool) {
	if *held || e.ctrl == nil {
		return
	}
	if e.ctrl.ShouldFallback(attempt) {
		e.ctrl.EnterFallback()
		*held = true
	}
}

// releaseFallback releases the fallback lock if this operation entered it.
func (e *engine[K, V]) releaseFallback(held *bool) {
	if *held {
		e.ctrl.ExitFallback()
		*held = false
	}
}

// lockLeafCC acquires the leaf write lock for one write attempt. On the
// optimistic path a held lock is a conflict: fail fast, abort, re-descend.
// A fallback writer is already serialized behind the controller's global
// lock, so it blocks for the leaf instead — the try/abort/re-descend cycle
// is exactly the stampede the fallback exists to stop, and waiting costs
// nothing it wasn't already paying. Blocking trades no correctness: the
// post-lock validation (ref.dead, inner version) still runs, so a leaf that
// split or died while we waited sends the writer back around the loop.
func (e *engine[K, V]) lockLeafCC(ref *leafRef, fb bool) bool {
	if fb {
		e.cc.lockLeaf(ref)
		return true
	}
	return e.cc.tryLockLeaf(ref)
}
