package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"fptree/internal/crashtest"
)

func newVarTree(t *testing.T, cfg Config) *VarTree {
	t.Helper()
	tr, err := CreateVar(newPool(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func strKey(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

var varConfigs = []struct {
	name string
	cfg  Config
}{
	{"leaf8-groups4", Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4}},
	{"leaf8-nogroups", Config{LeafCap: 8, InnerFanout: 4}},
	{"leaf56-val32", Config{LeafCap: 56, InnerFanout: 16, GroupSize: 8, ValueSize: 32}},
}

func TestVarEmptyTree(t *testing.T) {
	tr := newVarTree(t, Config{LeafCap: 8})
	if _, ok := tr.Find([]byte("a")); ok {
		t.Fatal("Find on empty tree")
	}
	if ok, _ := tr.Delete([]byte("a")); ok {
		t.Fatal("Delete on empty tree")
	}
	if err := tr.Insert(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestVarInsertFind(t *testing.T) {
	for _, tc := range varConfigs {
		t.Run(tc.name, func(t *testing.T) {
			tr := newVarTree(t, tc.cfg)
			rng := rand.New(rand.NewSource(2))
			const n = 2000
			for _, i := range rng.Perm(n) {
				if err := tr.Insert(strKey(i), strKey(i*2)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				v, ok := tr.Find(strKey(i))
				if !ok {
					t.Fatalf("key %d missing", i)
				}
				want := make([]byte, tr.cfg.ValueSize)
				copy(want, strKey(i*2))
				if !bytes.Equal(v, want) {
					t.Fatalf("value for %d = %q", i, v)
				}
			}
			if _, ok := tr.Find([]byte("nope")); ok {
				t.Fatal("found absent key")
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVarKeysOfMixedLengths(t *testing.T) {
	tr := newVarTree(t, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	keys := [][]byte{
		[]byte("a"), []byte("ab"), []byte("abc"),
		[]byte("b"), bytes.Repeat([]byte("x"), 300),
		bytes.Repeat([]byte("x"), 301), []byte("zz"),
	}
	for i, k := range keys {
		if err := tr.Insert(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v, ok := tr.Find(k)
		if !ok || v[0] != byte(i) {
			t.Fatalf("key %q = %v,%v", k, v, ok)
		}
	}
	// Prefix keys must not be confused for each other.
	if _, ok := tr.Find([]byte("abcd")); ok {
		t.Fatal("prefix confusion")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVarUpdateDelete(t *testing.T) {
	for _, tc := range varConfigs {
		t.Run(tc.name, func(t *testing.T) {
			tr := newVarTree(t, tc.cfg)
			const n = 1000
			for i := 0; i < n; i++ {
				if err := tr.Insert(strKey(i), []byte("v0")); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i += 2 {
				ok, err := tr.Update(strKey(i), []byte("v1"))
				if err != nil || !ok {
					t.Fatalf("update %d: %v %v", i, ok, err)
				}
			}
			for i := 0; i < n; i += 4 {
				ok, err := tr.Delete(strKey(i))
				if err != nil || !ok {
					t.Fatalf("delete %d: %v %v", i, ok, err)
				}
			}
			for i := 0; i < n; i++ {
				v, ok := tr.Find(strKey(i))
				switch {
				case i%4 == 0:
					if ok {
						t.Fatalf("deleted key %d present", i)
					}
				case i%2 == 0:
					if !ok || v[1] != '1' {
						t.Fatalf("updated key %d = %q,%v", i, v, ok)
					}
				default:
					if !ok || v[1] != '0' {
						t.Fatalf("key %d = %q,%v", i, v, ok)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVarDeleteAllAndReuse(t *testing.T) {
	tr := newVarTree(t, Config{LeafCap: 4, InnerFanout: 3, GroupSize: 2})
	for round := 0; round < 3; round++ {
		for i := 0; i < 300; i++ {
			if err := tr.Insert(strKey(i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 300; i++ {
			if ok, err := tr.Delete(strKey(i)); err != nil || !ok {
				t.Fatalf("round %d delete %d: %v %v", round, i, ok, err)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVarScan(t *testing.T) {
	tr := newVarTree(t, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	for i := 0; i < 500; i++ {
		if err := tr.Insert(strKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.ScanN(strKey(100), 50)
	if len(got) != 50 {
		t.Fatalf("scan returned %d", len(got))
	}
	for i, kv := range got {
		if !bytes.Equal(kv.Key, strKey(100+i)) {
			t.Fatalf("scan[%d] = %q", i, kv.Key)
		}
	}
}

func TestVarRecoveryCleanRestart(t *testing.T) {
	for _, tc := range varConfigs {
		t.Run(tc.name, func(t *testing.T) {
			pool := newPool(64)
			tr, err := CreateVar(pool, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			const n = 1200
			for i := 0; i < n; i++ {
				if err := tr.Insert(strKey(i), strKey(i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i += 3 {
				if _, err := tr.Delete(strKey(i)); err != nil {
					t.Fatal(err)
				}
			}
			pool.Crash()
			tr2, err := OpenVar(pool)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				_, ok := tr2.Find(strKey(i))
				if (i%3 == 0) == ok {
					t.Fatalf("key %d presence = %v after recovery", i, ok)
				}
			}
			if err := tr2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVarCrashAtEveryFlush drives mixed operations with crash injection at
// every flush boundary, recovering and checking invariants (including the
// exactly-one-owner invariant that the Algorithm 17 leak scan maintains).
func TestVarCrashAtEveryFlush(t *testing.T) {
	for _, tc := range varConfigs {
		t.Run(tc.name, func(t *testing.T) {
			pool := newPool(64)
			tr, err := CreateVar(pool, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			acked := map[string]bool{}
			for i := 0; i < 200; i++ {
				if err := tr.Insert(strKey(i*3), []byte("v")); err != nil {
					t.Fatal(err)
				}
				acked[string(strKey(i*3))] = true
			}
			rng := rand.New(rand.NewSource(17))
			step := int64(1)
			for op := 0; op < 120; op++ {
				i := rng.Intn(900)
				key := strKey(i)
				var mode int
				if acked[string(key)] {
					mode = rng.Intn(2) + 1 // update or delete
				}
				fn := func() error {
					switch mode {
					case 1:
						_, err := tr.Update(key, []byte("u"))
						return err
					case 2:
						_, err := tr.Delete(key)
						return err
					default:
						return tr.Insert(key, []byte("v"))
					}
				}
				pool.FailAfterFlushes(step)
				crashed, opErr := crashtest.Crashes(fn)
				pool.FailAfterFlushes(-1)
				if opErr != nil {
					t.Fatal(opErr)
				}
				if !crashed {
					switch mode {
					case 2:
						delete(acked, string(key))
					default:
						acked[string(key)] = true
					}
					step = 1
					continue
				}
				step++
				pool.Crash()
				tr, err = OpenVar(pool)
				if err != nil {
					t.Fatalf("op %d step %d: %v", op, step, err)
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("op %d step %d: %v", op, step, err)
				}
				// Every acked key except the in-flight one must be present.
				for k := range acked {
					if k == string(key) {
						continue
					}
					if _, ok := tr.Find([]byte(k)); !ok {
						t.Fatalf("op %d step %d: acked key %q lost", op, step, k)
					}
				}
				// In-flight delete may have rolled forward.
				if mode == 2 {
					if _, ok := tr.Find(key); !ok {
						delete(acked, string(key))
					}
				}
				op--
			}
		})
	}
}

func TestVarQuickAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := CreateVar(newPool(32), Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4, ValueSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[string][]byte{}
		for i := 0; i < 600; i++ {
			k := strKey(rng.Intn(150))
			switch rng.Intn(3) {
			case 0:
				v := make([]byte, 16)
				rng.Read(v)
				if err := tr.Upsert(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[string(k)] = v
			case 1:
				ok, err := tr.Delete(k)
				if err != nil {
					t.Fatal(err)
				}
				if _, want := oracle[string(k)]; ok != want {
					t.Fatalf("delete(%q) = %v, oracle %v", k, ok, want)
				}
				delete(oracle, string(k))
			case 2:
				v, ok := tr.Find(k)
				want, wok := oracle[string(k)]
				if ok != wok || (ok && !bytes.Equal(v, want)) {
					t.Fatalf("find(%q) = %q,%v want %q,%v", k, v, ok, want, wok)
				}
			}
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("Len = %d oracle %d", tr.Len(), len(oracle))
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestVarProbeStatsNearOne(t *testing.T) {
	tr := newVarTree(t, Config{LeafCap: 56, InnerFanout: 64, GroupSize: 8})
	rng := rand.New(rand.NewSource(4))
	keys := make([][]byte, 0, 10000)
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("k%015d", rng.Int63()))
		keys = append(keys, k)
		if err := tr.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	tr.Probes = ProbeStats{}
	for _, k := range keys {
		if _, ok := tr.Find(k); !ok {
			t.Fatalf("key %q missing", k)
		}
	}
	if avg := tr.Probes.AvgProbes(); avg < 1.0 || avg > 1.35 {
		t.Fatalf("avg probes = %.3f", avg)
	}
}

func TestVarFingerprintDistribution(t *testing.T) {
	// hash1Bytes must spread realistic key sets across all 256 values.
	counts := make([]int, 256)
	for i := 0; i < 100000; i++ {
		counts[hash1Bytes(strKey(i))]++
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 || hi > 3*100000/256 {
		t.Fatalf("fingerprint skew: min %d max %d", lo, hi)
	}
}

func TestFixedFingerprintDistribution(t *testing.T) {
	counts := make([]int, 256)
	for i := uint64(0); i < 100000; i++ {
		counts[hash1(i)]++ // sequential keys: worst case for naive hashes
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 || hi > 3*100000/256 {
		t.Fatalf("fingerprint skew: min %d max %d", lo, hi)
	}
}
