package core

import (
	"sort"
	"sync"

	"fptree/internal/scm"
)

// RecoveryOptions tunes how Open/COpen/OpenVar/COpenVar rebuild the
// DRAM-resident inner nodes from the persistent leaves (Algorithm 9).
//
// The rebuild has two phases: a scan that visits every persistent leaf
// (reading its validity bitmap, finding its max key and, for variable-size
// keys, detecting leaked key blocks) and a repair-and-build pass that prunes
// crash debris and constructs the inner nodes. The scan is read-only and
// dominated by SCM latency, so it parallelizes across Workers goroutines: the
// leaf-group list is partitioned into contiguous chunks, each worker emits a
// sorted (maxKey, leafPtr) run, and the runs are merged. All durable repairs
// (unlinking empty leaves, reclaiming leaked key blocks) are then applied
// sequentially in leaf-list order — exactly the order sequential recovery
// uses — so recovery produces a byte-identical arena regardless of Workers.
type RecoveryOptions struct {
	// Workers is the number of goroutines scanning persistent leaves during
	// recovery. Values below 2 (including the zero value) select the
	// sequential path. runtime.NumCPU() is a good setting for large trees.
	Workers int
}

func (o RecoveryOptions) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// recoveryOpts collapses a facade's variadic options; the last value wins.
func recoveryOpts(opts []RecoveryOptions) RecoveryOptions {
	if len(opts) == 0 {
		return RecoveryOptions{}
	}
	return opts[len(opts)-1]
}

// runEntry is one element of a per-worker sorted (maxKey, leafPtr) run: a
// live leaf with its max key, valid-slot count, successor pointer and the
// leak repairs its scan detected (var codec only; detection is read-only,
// application is deferred to the sequential repair pass). next is captured
// while the leaf's lines are still cache-resident from the scan so the
// sequential repair walk does not pay the SCM read latency a second time —
// mirroring the sequential path, where the next-pointer read directly follows
// the scan of the same leaf.
type runEntry[K any] struct {
	leaf  uint64
	max   K
	next  scm.PPtr
	count int
	leaks []leakAction
}

// scanLiveLeaves fans the leaf scan out over workers goroutines and returns
// one merged, key-ordered run of all live leaves (validity bitmap != 0).
// Reads only; safe to run concurrently with nothing else (recovery is
// single-client by contract).
func (e *engine[K, V]) scanLiveLeaves(workers int) []runEntry[K] {
	if e.groups.enabled() && !e.m.headGroup().IsNull() {
		return e.scanGroups(workers)
	}
	return e.scanList(workers)
}

// scanGroups partitions the persistent group list into contiguous chunks.
// Group membership gives each worker its leaves without chasing next
// pointers; liveness comes from the durable bitmap (a leaf not reachable
// from the leaf list always has a zero bitmap — bulk load and the split and
// delete micro-logs all link a leaf before committing its bitmap).
func (e *engine[K, V]) scanGroups(workers int) []runEntry[K] {
	var groups []uint64
	for p := e.m.headGroup(); !p.IsNull(); p = e.groups.groupNext(p.Offset) {
		groups = append(groups, p.Offset)
	}
	if len(groups) == 0 {
		return nil
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	runs := make([][]runEntry[K], workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(groups) / workers
		hi := (w + 1) * len(groups) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var run []runEntry[K]
			scanned := uint64(0)
			for _, g := range groups[lo:hi] {
				for _, leaf := range e.groups.leafOffsets(g) {
					scanned++
					if e.leafBitmap(leaf) == 0 {
						continue
					}
					mk, n, leaks := e.cdc.scanLeaf(leaf)
					run = append(run, runEntry[K]{leaf: leaf, max: mk, next: e.leafNext(leaf), count: n, leaks: leaks})
				}
			}
			sort.Slice(run, func(i, j int) bool { return e.cdc.less(run[i].max, run[j].max) })
			runs[w] = run
			e.Ops.RecoveryLeaves.Add(scanned)
		}(w, lo, hi)
	}
	wg.Wait()
	return mergeRuns(e.cdc.less, runs)
}

// scanList covers trees without leaf groups (the concurrent controllers):
// one cheap serial walk collects the leaf offsets, then workers scan the
// index ranges. List order is key order, so no sort or merge is needed.
func (e *engine[K, V]) scanList(workers int) []runEntry[K] {
	var offs []uint64
	for p := e.m.headLeaf(); !p.IsNull(); p = e.leafNext(p.Offset) {
		offs = append(offs, p.Offset)
	}
	e.Ops.RecoveryLeaves.Add(uint64(len(offs)))
	if len(offs) == 0 {
		return nil
	}
	if workers > len(offs) {
		workers = len(offs)
	}
	entries := make([]runEntry[K], len(offs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(offs) / workers
		hi := (w + 1) * len(offs) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				leaf := offs[i]
				if e.leafBitmap(leaf) == 0 {
					continue // left zero; compacted below
				}
				mk, n, leaks := e.cdc.scanLeaf(leaf)
				entries[i] = runEntry[K]{leaf: leaf, max: mk, next: e.leafNext(leaf), count: n, leaks: leaks}
			}
		}(lo, hi)
	}
	wg.Wait()
	live := entries[:0]
	for i := range entries {
		if entries[i].count > 0 {
			live = append(live, entries[i])
		}
	}
	return live
}

// mergeRuns performs a k-way merge of the per-worker sorted runs. Keys are
// unique across leaves (CheckInvariants enforces strict leaf ordering), so
// no tie-breaking is needed.
func mergeRuns[K any](less func(a, b K) bool, runs [][]runEntry[K]) []runEntry[K] {
	total := 0
	nonEmpty := 0
	for _, r := range runs {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		for _, r := range runs {
			if len(r) > 0 {
				return r
			}
		}
		return nil
	}
	out := make([]runEntry[K], 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for w := range runs {
			if idx[w] >= len(runs[w]) {
				continue
			}
			if best < 0 || less(runs[w][idx[w]].max, runs[best][idx[best]].max) {
				best = w
			}
		}
		out = append(out, runs[best][idx[best]])
		idx[best]++
	}
	return out
}

// collectLeavesParallel is the parallel counterpart of collectLeaves: the
// scan runs on workers goroutines, then one sequential pass walks the
// persistent leaf list applying every durable repair — leak reclamation on
// live leaves, unlink of leaves emptied by an interrupted delete — in the
// same order the sequential path would, which keeps the recovered arena
// byte-identical across worker counts. The walk also re-derives the
// authoritative leaf order from the list itself, so a (corrupt) live-but-
// unreachable leaf can never be woven into the inner nodes.
func (e *engine[K, V]) collectLeavesParallel(workers int) (leaves []uint64, maxKeys []K, size int) {
	merged := e.scanLiveLeaves(workers)
	byLeaf := make(map[uint64]*runEntry[K], len(merged))
	for i := range merged {
		byLeaf[merged[i].leaf] = &merged[i]
	}
	leaves = make([]uint64, 0, len(merged))
	maxKeys = make([]K, 0, len(merged))
	prev := uint64(0)
	for p := e.m.headLeaf(); !p.IsNull(); {
		leaf := p.Offset
		ent, ok := byLeaf[leaf]
		var next scm.PPtr
		if ok {
			next = ent.next
		} else {
			next = e.leafNext(leaf)
		}
		if ok {
			e.cdc.applyLeaks(leaf, ent.leaks)
			leaves = append(leaves, leaf)
			maxKeys = append(maxKeys, ent.max)
			size += ent.count
			prev = leaf
		} else {
			e.reclaimLeaf(leaf)
			e.unlinkLeaf(leaf, prev, nil)
		}
		p = next
	}
	return leaves, maxKeys, size
}

// buildInnerW is buildInner with the leaf-parent level constructed in
// parallel: node boundaries depend only on len(leaves), so workers fill
// disjoint, deterministic node-index ranges and the resulting tree has
// exactly the shape the sequential builder produces. Upper levels shrink by
// ~width× per level and are built sequentially.
func buildInnerW[K any](leaves []uint64, maxKeys []K, maxKids, workers int) *cInner[K] {
	width := maxKids * 9 / 10
	if width < 2 {
		width = 2
	}
	if len(leaves) == 0 {
		return newCInner[K](maxKids, true)
	}
	nNodes := (len(leaves) + width - 1) / width
	level := make([]*cInner[K], nNodes)
	var seps []K
	if nNodes > 1 {
		seps = make([]K, nNodes-1)
	}
	fill := func(ni int) {
		at := ni * width
		end := at + width
		if end > len(leaves) {
			end = len(leaves)
		}
		n := newCInner[K](maxKids, true)
		for i := at; i < end; i++ {
			n.leaves[i-at].Store(&leafRef{off: leaves[i]})
			if i < end-1 {
				k := maxKeys[i]
				n.keys[i-at].Store(&k)
			}
		}
		n.cnt.Store(int32(end - at))
		level[ni] = n
		if end < len(leaves) {
			seps[ni] = maxKeys[end-1]
		}
	}
	if workers > 1 && nNodes >= 2*workers {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * nNodes / workers
			hi := (w + 1) * nNodes / workers
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for ni := lo; ni < hi; ni++ {
					fill(ni)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for ni := 0; ni < nNodes; ni++ {
			fill(ni)
		}
	}
	for len(level) > 1 {
		var next []*cInner[K]
		var nextSeps []K
		for at := 0; at < len(level); at += width {
			end := at + width
			if end > len(level) {
				end = len(level)
			}
			n := newCInner[K](maxKids, false)
			for i := at; i < end; i++ {
				n.kids[i-at].Store(level[i])
				if i < end-1 {
					k := seps[i]
					n.keys[i-at].Store(&k)
				}
			}
			n.cnt.Store(int32(end - at))
			next = append(next, n)
			if end < len(level) {
				nextSeps = append(nextSeps, seps[end-1])
			}
		}
		level, seps = next, nextSeps
	}
	return level[0]
}
