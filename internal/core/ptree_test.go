package core

import (
	"math/rand"
	"testing"
)

// The PTree is the FPTree minus fingerprints, with separate key/value
// arrays; it shares the whole persistence machinery, so the suite here
// focuses on the layout-specific behaviour and re-runs the crash drills.

func TestPTreeBasics(t *testing.T) {
	tr := newTree(t, Config{Variant: VariantPTree, LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	rng := rand.New(rand.NewSource(8))
	const n = 3000
	for _, k := range rng.Perm(n) {
		if err := tr.Insert(uint64(k)+1, uint64(k)*5); err != nil {
			t.Fatal(err)
		}
	}
	for k := 1; k <= n; k++ {
		v, ok := tr.Find(uint64(k))
		if !ok || v != uint64(k-1)*5 {
			t.Fatalf("find(%d) = %d,%v", k, v, ok)
		}
	}
	for k := 1; k <= n; k += 2 {
		if ok, err := tr.Delete(uint64(k)); err != nil || !ok {
			t.Fatalf("delete(%d): %v %v", k, ok, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPTreeRecovery(t *testing.T) {
	pool := newPool(64)
	tr, err := Create(pool, Config{Variant: VariantPTree, LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 2000; i++ {
		if err := tr.Insert(i, i+3); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash()
	tr2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.cfg.Variant != VariantPTree {
		t.Fatal("variant not preserved across recovery")
	}
	for i := uint64(1); i <= 2000; i++ {
		v, ok := tr2.Find(i)
		if !ok || v != i+3 {
			t.Fatalf("find(%d) = %d,%v", i, v, ok)
		}
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPTreeCrashAtEveryFlush(t *testing.T) {
	testCrashOps(t, Config{Variant: VariantPTree, LeafCap: 8, InnerFanout: 4, GroupSize: 4},
		func(tr *Tree, rng *rand.Rand, acked map[uint64]uint64) (uint64, func() error) {
			k := rng.Uint64()%10000 + 1
			for {
				if _, dup := acked[k]; !dup {
					break
				}
				k = rng.Uint64()%10000 + 1
			}
			return k, func() error { return tr.Insert(k, k*7) }
		})
}

func TestPTreeProbesLinear(t *testing.T) {
	// Without fingerprints the expected number of key probes for a uniform
	// successful search is (m+1)/2 over the *fill* of the leaf — far above
	// the FPTree's ~1. This is Figure 4's contrast.
	mk := func(variant Variant) float64 {
		tr, err := Create(newPool(64), Config{Variant: variant, LeafCap: 32, InnerFanout: 64, GroupSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		keys := make([]uint64, 0, 20000)
		for i := 0; i < 20000; i++ {
			k := rng.Uint64() | 1
			keys = append(keys, k)
			if err := tr.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		tr.Probes = ProbeStats{}
		for _, k := range keys {
			if _, ok := tr.Find(k); !ok {
				t.Fatal("missing key")
			}
		}
		return tr.Probes.AvgProbes()
	}
	pt := mk(VariantPTree)
	fp := mk(VariantFPTree)
	if pt < 4 {
		t.Fatalf("PTree avg probes = %.2f, expected linear-scan cost", pt)
	}
	if fp > 1.5 {
		t.Fatalf("FPTree avg probes = %.2f, expected ≈1", fp)
	}
	if pt < 3*fp {
		t.Fatalf("expected PTree (%.2f) >> FPTree (%.2f)", pt, fp)
	}
}

func TestPTreeVarBasics(t *testing.T) {
	tr := newVarTree(t, Config{Variant: VariantPTree, LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	for i := 0; i < 1500; i++ {
		if err := tr.Insert(strKey(i), strKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1500; i++ {
		if _, ok := tr.Find(strKey(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	pool := tr.Pool()
	pool.Crash()
	tr2, err := OpenVar(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if _, ok := tr2.Find(strKey(i)); !ok {
			t.Fatalf("key %d missing after recovery", i)
		}
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRejectsPTreeVariant(t *testing.T) {
	if _, err := CCreate(newPool(8), Config{Variant: VariantPTree, LeafCap: 8}); err == nil {
		t.Fatal("CCreate accepted PTree variant")
	}
	if _, err := CCreateVar(newPool(8), Config{Variant: VariantPTree, LeafCap: 8}); err == nil {
		t.Fatal("CCreateVar accepted PTree variant")
	}
}
