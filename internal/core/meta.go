package core

import (
	"fmt"

	"fptree/internal/scm"
)

// Persistent tree-metadata block. It is allocated from the pool at creation
// time and anchored in the arena header's root pointer, so the whole tree is
// reachable from one well-known location after a restart.
//
// Layout (offsets relative to the block):
//
//	  0  magic      u64
//	  8  status     u64   1 once initialization finished (Algorithm 9, line 1)
//	 56  variant    u64   0 FPTree, 1 PTree
//	 16  keyKind    u64   0 fixed-size keys, 1 variable-size keys
//	 24  leafCap    u64
//	 32  groupSize  u64   0 when leaf groups are disabled
//	 40  valueSize  u64
//	 48  numLogs    u64
//	 64  headLeaf   PPtr  head of the linked list of leaves
//	 80  headGroup  PPtr  head of the linked list of leaf groups
//	 96  tailGroup  PPtr  tail of the linked list of leaf groups
//	128  getLeafLog  (PNewGroup PPtr)              — own cache line
//	192  freeLeafLog (PCurrentGroup, PPrevGroup)   — own cache line
//	256  splitLogs   numLogs × 64B (PCurrentLeaf, PNewLeaf)
//	...  deleteLogs  numLogs × 64B (PCurrentLeaf, PPrevLeaf)
//
// Each micro-log occupies its own cache line, which the paper requires so
// that back-to-back writes to one log can be persisted together.
const (
	metaMagic       = 0xF97B_0000_4EAF_0001
	mOffMagic       = 0
	mOffStatus      = 8
	mOffKeyKind     = 16
	mOffLeafCap     = 24
	mOffGroupSize   = 32
	mOffValueSize   = 40
	mOffNumLogs     = 48
	mOffVariant     = 56
	mOffHeadLeaf    = 64
	mOffHeadGroup   = 80
	mOffTailGroup   = 96
	mOffGetLeafLog  = 128
	mOffFreeLeafLog = 192
	mOffLogs        = 256

	keyKindFixed = 0
	keyKindVar   = 1
)

// meta wraps offset arithmetic over the metadata block.
type meta struct {
	pool  *scm.Pool
	base  uint64
	nLogs int
}

func metaSize(numLogs int) uint64 { return mOffLogs + uint64(numLogs)*2*scm.LineSize }

// createMeta allocates and formats a metadata block, anchoring it in the
// arena root. The status flag is set only after everything else is durable,
// mirroring the tree-initialization check in Algorithm 9.
func createMeta(pool *scm.Pool, keyKind uint64, cfg Config) (meta, error) {
	if _, err := pool.AllocRoot(metaSize(cfg.NumLogs)); err != nil {
		return meta{}, fmt.Errorf("fptree: allocating metadata: %w", err)
	}
	m := meta{pool: pool, base: pool.Root().Offset, nLogs: cfg.NumLogs}
	p := pool
	p.WriteU64(m.base+mOffMagic, metaMagic)
	p.WriteU64(m.base+mOffKeyKind, keyKind)
	p.WriteU64(m.base+mOffLeafCap, uint64(cfg.LeafCap))
	p.WriteU64(m.base+mOffGroupSize, uint64(cfg.GroupSize))
	p.WriteU64(m.base+mOffValueSize, uint64(cfg.ValueSize))
	p.WriteU64(m.base+mOffNumLogs, uint64(cfg.NumLogs))
	p.WriteU64(m.base+mOffVariant, uint64(cfg.Variant))
	p.Persist(m.base, mOffLogs)
	p.WriteU64(m.base+mOffStatus, 1)
	p.Persist(m.base+mOffStatus, 8)
	return m, nil
}

// HasTree reports whether the pool's arena already holds a fully initialized
// tree of any variant. It runs allocator recovery first (idempotent, and
// required before the root pointer may be trusted), so callers with a freshly
// reopened arena — e.g. memkv deciding between Create and Open on a -data
// file — can use it directly.
func HasTree(pool *scm.Pool) bool {
	pool.Recover()
	root := pool.Root()
	if root.IsNull() {
		return false
	}
	return pool.ReadU64(root.Offset+mOffMagic) == metaMagic &&
		pool.ReadU64(root.Offset+mOffStatus) == 1
}

// openMeta locates an existing metadata block through the arena root and
// validates it against the expected key kind.
func openMeta(pool *scm.Pool, wantKind uint64) (meta, Config, error) {
	root := pool.Root()
	if root.IsNull() {
		return meta{}, Config{}, fmt.Errorf("fptree: arena has no tree (null root)")
	}
	m := meta{pool: pool, base: root.Offset}
	if got := pool.ReadU64(m.base + mOffMagic); got != metaMagic {
		return meta{}, Config{}, fmt.Errorf("fptree: bad metadata magic %#x", got)
	}
	if pool.ReadU64(m.base+mOffStatus) != 1 {
		return meta{}, Config{}, fmt.Errorf("fptree: tree initialization never completed")
	}
	if got := pool.ReadU64(m.base + mOffKeyKind); got != wantKind {
		return meta{}, Config{}, fmt.Errorf("fptree: key kind mismatch: arena has %d, caller wants %d", got, wantKind)
	}
	cfg := Config{
		Variant:   Variant(pool.ReadU64(m.base + mOffVariant)),
		LeafCap:   int(pool.ReadU64(m.base + mOffLeafCap)),
		GroupSize: int(pool.ReadU64(m.base + mOffGroupSize)),
		ValueSize: int(pool.ReadU64(m.base + mOffValueSize)),
		NumLogs:   int(pool.ReadU64(m.base + mOffNumLogs)),
	}
	m.nLogs = cfg.NumLogs
	return m, cfg, nil
}

func (m meta) headLeaf() scm.PPtr  { return m.pool.ReadPPtr(m.base + mOffHeadLeaf) }
func (m meta) headGroup() scm.PPtr { return m.pool.ReadPPtr(m.base + mOffHeadGroup) }
func (m meta) tailGroup() scm.PPtr { return m.pool.ReadPPtr(m.base + mOffTailGroup) }

func (m meta) setHeadLeaf(p scm.PPtr) {
	m.pool.WritePPtr(m.base+mOffHeadLeaf, p)
	m.pool.Persist(m.base+mOffHeadLeaf, scm.PPtrSize)
}

func (m meta) setHeadGroup(p scm.PPtr) {
	m.pool.WritePPtr(m.base+mOffHeadGroup, p)
	m.pool.Persist(m.base+mOffHeadGroup, scm.PPtrSize)
}

func (m meta) setTailGroup(p scm.PPtr) {
	m.pool.WritePPtr(m.base+mOffTailGroup, p)
	m.pool.Persist(m.base+mOffTailGroup, scm.PPtrSize)
}

// Micro-log accessors. A micro-log is a pair of persistent-pointer cells in
// one cache line; index i < nLogs selects a split log, the delete logs follow.

func (m meta) splitLogOff(i int) uint64 {
	return m.base + mOffLogs + uint64(i)*scm.LineSize
}

func (m meta) deleteLogOff(i int) uint64 {
	return m.base + mOffLogs + uint64(m.nLogs+i)*scm.LineSize
}

// mlog is a generic two-pointer micro-log at a fixed SCM offset. Field A is
// the first persistent pointer (PCurrentLeaf / PNewGroup / PCurrentGroup),
// field B the second (PNewLeaf / PPrevLeaf / PPrevGroup).
type mlog struct {
	pool *scm.Pool
	off  uint64
}

func (l mlog) a() scm.PPtr { return l.pool.ReadPPtr(l.off) }
func (l mlog) b() scm.PPtr { return l.pool.ReadPPtr(l.off + scm.PPtrSize) }

// aOff and bOff expose the cells themselves so they can serve as the
// allocator's owning reference during Alloc/Free.
func (l mlog) aOff() uint64 { return l.off }
func (l mlog) bOff() uint64 { return l.off + scm.PPtrSize }

func (l mlog) setA(p scm.PPtr) {
	l.pool.WritePPtr(l.off, p)
	l.pool.Persist(l.off, scm.PPtrSize)
}

func (l mlog) setB(p scm.PPtr) {
	l.pool.WritePPtr(l.off+scm.PPtrSize, p)
	l.pool.Persist(l.off+scm.PPtrSize, scm.PPtrSize)
}

// reset nulls both cells with a single flush — they share a cache line.
func (l mlog) reset() {
	l.pool.WritePPtr(l.off, scm.PPtr{})
	l.pool.WritePPtr(l.off+scm.PPtrSize, scm.PPtr{})
	l.pool.Persist(l.off, 2*scm.PPtrSize)
}

func (m meta) getLeafLog() mlog     { return mlog{m.pool, m.base + mOffGetLeafLog} }
func (m meta) freeLeafLog() mlog    { return mlog{m.pool, m.base + mOffFreeLeafLog} }
func (m meta) splitLog(i int) mlog  { return mlog{m.pool, m.splitLogOff(i)} }
func (m meta) deleteLog(i int) mlog { return mlog{m.pool, m.deleteLogOff(i)} }
