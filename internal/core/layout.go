// Package core implements the Fingerprinting Persistent Tree (FPTree) of
// Oukid et al., SIGMOD 2016: a hybrid SCM-DRAM B+-Tree whose leaf nodes live
// in (emulated) SCM and whose inner nodes live in DRAM and are rebuilt on
// recovery.
//
// The paper evaluates four tree variants — the single-threaded fixed-key
// FPTree (with amortized leaf-group allocations), the concurrent fixed-key
// FPTree (Selective Concurrency), and the variable-size-key versions of both.
// Here all four are one generic engine (engine.go) parameterized along two
// axes: a key codec (codec.go — fixed 8-byte keys inline in the leaf, or
// variable-size keys behind persistent key-block pointers per Appendix C)
// and a concurrency controller (concurrency.go — single-threaded, or
// version-lock optimistic descent with fine-grained leaf locks). The
// exported types Tree, CTree, VarTree and CVarTree (tree.go, ctree.go,
// tree_var.go, cvar.go) are thin facades instantiating those axes.
//
// Recovery (Open/COpen/OpenVar/COpenVar) replays the allocator intent and
// the split/delete micro-logs, then rebuilds the DRAM inner nodes from a
// scan of the persistent leaves; RecoveryOptions (recovery.go) parallelizes
// that scan across goroutines while keeping the recovered arena
// byte-identical to sequential recovery. See RECOVERY.md at the repository
// root for the pipeline end to end.
//
// All persistent state is kept inside an scm.Pool and accessed through
// explicit offset codecs, so layouts are exactly the paper's and the Go
// garbage collector never touches SCM-resident data.
package core

import (
	"errors"
	"fmt"

	"fptree/internal/scm"
)

// MaxLeafCap is the largest number of entries per leaf. The in-leaf bitmap is
// a single 8-byte word so that validity updates are p-atomic, which caps the
// capacity at 64.
const MaxLeafCap = 64

// Errors shared by all tree variants.
var (
	ErrClosed     = errors.New("fptree: tree is closed")
	ErrKeyTooLong = errors.New("fptree: key exceeds configured maximum")
)

// Variant selects between the paper's single-threaded persistent trees that
// share this package's leaf machinery.
type Variant int

const (
	// VariantFPTree is the full design: fingerprints + interleaved KV slots.
	VariantFPTree Variant = iota
	// VariantPTree is the light version (Section 5, variant 3): selective
	// persistence and unsorted leaves only — no fingerprints, and keys and
	// values in separate arrays for better locality during the linear key
	// scan.
	VariantPTree
)

// Config carries the tunables Table 1 of the paper sweeps.
type Config struct {
	// Variant selects FPTree (default) or the fingerprint-less PTree.
	Variant Variant
	// LeafCap is the number of entries per leaf (m). Must be in [2,64].
	LeafCap int
	// InnerFanout is the maximum number of keys per DRAM inner node.
	InnerFanout int
	// GroupSize enables amortized persistent allocations: leaves are carved
	// out of groups of GroupSize leaves (Section 4.3). 0 disables groups
	// (the concurrent variant never uses them).
	GroupSize int
	// ValueSize is the inline payload size in bytes for variable-size-key
	// trees (Appendix A's payload sweep). Fixed-key trees always store
	// 8-byte values. 0 means 8.
	ValueSize int
	// NumLogs is the number of split and delete micro-logs pre-allocated for
	// the concurrent variants. 0 means DefaultNumLogs.
	NumLogs int
}

// DefaultNumLogs bounds the number of in-flight structure modifications in
// the concurrent tree variants.
const DefaultNumLogs = 64

func (c *Config) normalize() error {
	if c.LeafCap == 0 {
		c.LeafCap = 56
	}
	if c.LeafCap < 2 || c.LeafCap > MaxLeafCap {
		return fmt.Errorf("fptree: leaf capacity %d out of range [2,%d]", c.LeafCap, MaxLeafCap)
	}
	if c.InnerFanout == 0 {
		c.InnerFanout = 4096
	}
	if c.InnerFanout < 2 {
		return fmt.Errorf("fptree: inner fanout %d too small", c.InnerFanout)
	}
	if c.GroupSize < 0 {
		return fmt.Errorf("fptree: negative group size")
	}
	if c.ValueSize == 0 {
		c.ValueSize = 8
	}
	if c.ValueSize < 1 || c.ValueSize > 4096 {
		return fmt.Errorf("fptree: value size %d out of range [1,4096]", c.ValueSize)
	}
	if c.NumLogs == 0 {
		c.NumLogs = DefaultNumLogs
	}
	return nil
}

// fixedLayout describes the SCM layout of a fixed-size-key leaf.
//
// FPTree variant (fingerprints, interleaved slots):
//
//	fingerprints[m] | bitmap u64 | lock u8 | pad | next PPtr | m × (key u64, value u64)
//
// With m = 56 the fingerprint array plus the bitmap fill exactly the first
// cache line, so a Find touches one line for the filter and one line for the
// matching key-value — the paper's "two SCM cache misses per lookup".
//
// PTree variant (no fingerprints, separate arrays):
//
//	bitmap u64 | lock u8 | pad | next PPtr | keys[m] u64 | values[m] u64
type fixedLayout struct {
	cap       int
	hasFP     bool
	offBitmap uint64
	offLock   uint64
	offNext   uint64
	offKV     uint64 // interleaved slots (FPTree) or key array (PTree)
	offVals   uint64 // value array (PTree only)
	size      uint64
}

func newFixedLayoutV(leafCap int, v Variant) fixedLayout {
	l := fixedLayout{cap: leafCap, hasFP: v == VariantFPTree}
	if l.hasFP {
		l.offBitmap = uint64((leafCap + 7) / 8 * 8)
	}
	l.offLock = l.offBitmap + 8
	l.offNext = l.offLock + 8 // keep the PPtr 8-aligned
	l.offKV = l.offNext + scm.PPtrSize
	if l.hasFP {
		l.size = l.offKV + uint64(leafCap)*16
	} else {
		l.offVals = l.offKV + uint64(leafCap)*8
		l.size = l.offVals + uint64(leafCap)*8
	}
	l.size = (l.size + scm.LineSize - 1) / scm.LineSize * scm.LineSize
	return l
}

func (l fixedLayout) keyOff(leaf uint64, slot int) uint64 {
	if l.hasFP {
		return leaf + l.offKV + uint64(slot)*16
	}
	return leaf + l.offKV + uint64(slot)*8
}

func (l fixedLayout) valOff(leaf uint64, slot int) uint64 {
	if l.hasFP {
		return leaf + l.offKV + uint64(slot)*16 + 8
	}
	return leaf + l.offVals + uint64(slot)*8
}

// varLayout describes a variable-size-key leaf. Each slot stores a persistent
// pointer to the key (allocated separately, as in Appendix C), the key
// length, and an inline value of ValueSize bytes:
//
//	fingerprints[m] | bitmap u64 | lock u8 | pad | next PPtr |
//	m × (pkey PPtr, klen u64, value [ValueSize]byte)
type varLayout struct {
	cap       int
	valSize   int
	hasFP     bool
	slotSize  uint64
	offBitmap uint64
	offLock   uint64
	offNext   uint64
	offKV     uint64
	size      uint64
}

func newVarLayoutV(leafCap, valueSize int, v Variant) varLayout {
	l := varLayout{cap: leafCap, valSize: valueSize, hasFP: v == VariantFPTree}
	l.slotSize = scm.PPtrSize + 8 + uint64((valueSize+7)/8*8)
	if l.hasFP {
		l.offBitmap = uint64((leafCap + 7) / 8 * 8)
	}
	l.offLock = l.offBitmap + 8
	l.offNext = l.offLock + 8
	l.offKV = l.offNext + scm.PPtrSize
	l.size = (l.offKV + uint64(leafCap)*l.slotSize + scm.LineSize - 1) / scm.LineSize * scm.LineSize
	return l
}

func (l varLayout) slotOff(leaf uint64, slot int) uint64 {
	return leaf + l.offKV + uint64(slot)*l.slotSize
}

func (l varLayout) pkeyOff(leaf uint64, slot int) uint64 { return l.slotOff(leaf, slot) }

func (l varLayout) klenOff(leaf uint64, slot int) uint64 {
	return l.slotOff(leaf, slot) + scm.PPtrSize
}

func (l varLayout) valOff(leaf uint64, slot int) uint64 {
	return l.slotOff(leaf, slot) + scm.PPtrSize + 8
}

// hash1 produces the one-byte fingerprint of a fixed-size key. Fibonacci
// hashing spreads uniform and sequential key spaces evenly over the 256
// fingerprint values.
func hash1(key uint64) byte {
	return byte((key * 0x9E3779B97F4A7C15) >> 56)
}

// hash1Bytes produces the one-byte fingerprint of a variable-size key
// (FNV-1a, folded to one byte).
func hash1Bytes(key []byte) byte {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return byte(h ^ h>>8 ^ h>>16 ^ h>>24)
}

// ProbeStats counts in-leaf search work for the Figure 4 reproduction: how
// many candidate keys a successful lookup actually had to compare after the
// fingerprint filter.
type ProbeStats struct {
	Searches  uint64 // completed leaf searches
	KeyProbes uint64 // keys dereferenced and compared
	FPScans   uint64 // fingerprint bytes inspected
}

// AvgProbes returns the measured expected number of in-leaf key probes.
func (s ProbeStats) AvgProbes() float64 {
	if s.Searches == 0 {
		return 0
	}
	return float64(s.KeyProbes) / float64(s.Searches)
}
