package core

import (
	"fmt"
	"math/bits"
	"sort"

	"fptree/internal/scm"
)

// Tree is the single-threaded fixed-size-key FPTree: Selective Persistence
// (leaves in SCM, inner nodes in DRAM), Fingerprinting, unsorted leaves with
// a p-atomic validity bitmap, and amortized persistent allocations through
// leaf groups (Section 5, variant 1). Keys and values are 8-byte integers.
//
// The tree is not safe for concurrent use; CTree is the Selective
// Concurrency variant.
type Tree struct {
	pool *scm.Pool
	cfg  Config
	lay  fixedLayout
	m    meta

	root *stInner[uint64] // nil while the tree holds no leaves
	size int              // number of live keys (volatile, rebuilt on recovery)

	groups     groupAlloc // leaf-group management (volatile part)
	recovering bool       // true while micro-logs are being replayed

	Probes ProbeStats // in-leaf search work, for the Figure 4 experiment
	Ops    OpStats    // atomic event counters for the metrics registry

	path  []pathEntry[uint64] // reusable descent stack
	fpBuf []byte              // reusable fingerprint read buffer
	kbuf  []uint64            // reusable split scratch
	sbuf  []int               // reusable split scratch
}

// KV is one fixed-size key-value pair.
type KV struct {
	Key   uint64
	Value uint64
}

// Create formats a new single-threaded FPTree in the pool. The pool must be
// empty (null root).
func Create(pool *scm.Pool, cfg Config) (*Tree, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if !pool.Root().IsNull() {
		return nil, fmt.Errorf("fptree: pool already contains a tree")
	}
	m, err := createMeta(pool, keyKindFixed, cfg)
	if err != nil {
		return nil, err
	}
	t := &Tree{pool: pool, cfg: cfg, lay: newFixedLayoutV(cfg.LeafCap, cfg.Variant), m: m}
	t.groups.init(t.pool, t.m, t.lay.size, cfg.GroupSize)
	t.fpBuf = make([]byte, cfg.LeafCap)
	return t, nil
}

// Open recovers a single-threaded FPTree from a pool that survived a crash
// or restart: it replays the allocator intent and all micro-logs, then
// rebuilds the DRAM-resident inner nodes and the volatile free-leaf vector
// (Algorithm 9).
func Open(pool *scm.Pool) (*Tree, error) {
	pool.Recover()
	m, cfg, err := openMeta(pool, keyKindFixed)
	if err != nil {
		return nil, err
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := &Tree{pool: pool, cfg: cfg, lay: newFixedLayoutV(cfg.LeafCap, cfg.Variant), m: m}
	t.fpBuf = make([]byte, cfg.LeafCap)
	t.groups.init(t.pool, t.m, t.lay.size, cfg.GroupSize)
	t.recovering = true
	t.recoverSplit(t.m.splitLog(0))
	t.recoverDelete(t.m.deleteLog(0))
	t.groups.recover()
	t.rebuild()
	t.recovering = false
	return t, nil
}

// Pool returns the SCM pool backing the tree.
func (t *Tree) Pool() *scm.Pool { return t.pool }

// Len returns the number of live keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of inner-node levels above the leaves.
func (t *Tree) Height() int {
	h, n := 0, t.root
	for n != nil {
		h++
		if n.isLeafParent() {
			break
		}
		n = n.kids[0]
	}
	return h
}

func (t *Tree) fullBitmap() uint64 {
	if t.cfg.LeafCap == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << t.cfg.LeafCap) - 1
}

// --- leaf accessors ---------------------------------------------------------

func (t *Tree) leafBitmap(leaf uint64) uint64     { return t.pool.ReadU64(leaf + t.lay.offBitmap) }
func (t *Tree) leafNext(leaf uint64) scm.PPtr     { return t.pool.ReadPPtr(leaf + t.lay.offNext) }
func (t *Tree) leafKey(leaf uint64, s int) uint64 { return t.pool.ReadU64(t.lay.keyOff(leaf, s)) }
func (t *Tree) leafVal(leaf uint64, s int) uint64 { return t.pool.ReadU64(t.lay.valOff(leaf, s)) }

func (t *Tree) setLeafBitmap(leaf, bm uint64) {
	t.pool.WriteU64(leaf+t.lay.offBitmap, bm)
	t.pool.Persist(leaf+t.lay.offBitmap, 8)
}

func (t *Tree) setLeafNext(leaf uint64, p scm.PPtr) {
	t.pool.WritePPtr(leaf+t.lay.offNext, p)
	t.pool.Persist(leaf+t.lay.offNext, scm.PPtrSize)
}

// leafMaxKey returns the greatest valid key in the leaf (0 for an empty
// leaf), used when rebuilding inner nodes.
func (t *Tree) leafMaxKey(leaf uint64) (uint64, int) {
	bm := t.leafBitmap(leaf)
	var maxK uint64
	n := 0
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		n++
		if k := t.leafKey(leaf, s); k > maxK {
			maxK = k
		}
	}
	return maxK, n
}

// findInLeaf performs the fingerprint-filtered leaf search of Section 4.2:
// it scans the fingerprint array (one cache line), and only dereferences
// keys whose fingerprint matches.
func (t *Tree) findInLeaf(leaf, key uint64) (int, bool) {
	bm := t.leafBitmap(leaf)
	t.Probes.Searches++
	if !t.lay.hasFP {
		// PTree variant: plain linear scan over the valid keys.
		slot, probes := -1, uint64(0)
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			t.Probes.KeyProbes++
			probes++
			if t.leafKey(leaf, s) == key {
				slot = s
				break
			}
		}
		t.Ops.noteSearch(0, 0, 0, probes)
		return slot, slot >= 0
	}
	t.pool.ReadInto(leaf, t.fpBuf)
	fp := hash1(key)
	t.Probes.FPScans += uint64(t.cfg.LeafCap)
	slot := -1
	var compares, hits, falsePos uint64
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		compares++
		if t.fpBuf[s] != fp {
			continue
		}
		hits++
		t.Probes.KeyProbes++
		if t.leafKey(leaf, s) == key {
			slot = s
			break
		}
		falsePos++
	}
	t.Ops.noteSearch(compares, hits, falsePos, hits)
	return slot, slot >= 0
}

// --- descent ---------------------------------------------------------------

// findLeaf descends to the leaf covering key, recording the path in t.path.
func (t *Tree) findLeaf(key uint64) uint64 {
	t.path = t.path[:0]
	n := t.root
	for {
		i := n.childIdx(key, lessU64)
		t.path = append(t.path, pathEntry[uint64]{n, i})
		if n.isLeafParent() {
			return n.leaves[i]
		}
		n = n.kids[i]
	}
}

// prevLeafOf returns the left neighbor of the leaf reached by the current
// t.path, or 0 when the leaf is the head of the list. It descends the
// rightmost spine of the nearest left sibling subtree.
func (t *Tree) prevLeafOf() uint64 {
	for level := len(t.path) - 1; level >= 0; level-- {
		e := t.path[level]
		if e.idx == 0 {
			continue
		}
		if e.n.isLeafParent() {
			return e.n.leaves[e.idx-1]
		}
		n := e.n.kids[e.idx-1]
		for !n.isLeafParent() {
			n = n.kids[len(n.kids)-1]
		}
		return n.leaves[len(n.leaves)-1]
	}
	return 0
}

// --- base operations ---------------------------------------------------------

// Find returns the value stored under key.
func (t *Tree) Find(key uint64) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	leaf := t.findLeaf(key)
	s, ok := t.findInLeaf(leaf, key)
	if !ok {
		return 0, false
	}
	return t.leafVal(leaf, s), true
}

// Insert adds a key-value pair (Algorithm 2's single-threaded core). Keys
// are assumed unique, as in the paper; inserting an existing key creates a
// duplicate entry (use Upsert for update-or-insert semantics).
func (t *Tree) Insert(key, value uint64) error {
	if t.root == nil {
		leaf, err := t.firstLeaf()
		if err != nil {
			return err
		}
		t.root = &stInner[uint64]{leaves: []uint64{leaf}}
	}
	leaf := t.findLeaf(key)
	bm := t.leafBitmap(leaf)
	full := t.fullBitmap()
	if bm == full {
		splitKey, newLeaf, err := t.splitLeaf(leaf)
		if err != nil {
			return err
		}
		t.root = insertChild(t.root, t.path, len(t.path)-1, splitKey, nil, newLeaf, t.cfg.InnerFanout)
		if key > splitKey {
			leaf = newLeaf
		}
		bm = t.leafBitmap(leaf)
	}
	t.insertIntoLeaf(leaf, bm, key, value)
	t.size++
	return nil
}

// insertIntoLeaf writes (key, value) and its fingerprint into the first free
// slot and commits with a single p-atomic bitmap store (Algorithm 2, lines
// 12-15). A crash before the bitmap flush leaves the insert invisible; after
// it, complete. No recovery action is ever needed.
func (t *Tree) insertIntoLeaf(leaf, bm, key, value uint64) {
	slot := bits.TrailingZeros64(^bm)
	t.pool.WriteU64(t.lay.keyOff(leaf, slot), key)
	t.pool.WriteU64(t.lay.valOff(leaf, slot), value)
	t.pool.Persist(t.lay.keyOff(leaf, slot), 8)
	t.pool.Persist(t.lay.valOff(leaf, slot), 8)
	if t.lay.hasFP {
		t.pool.WriteU8(leaf+uint64(slot), hash1(key))
		t.pool.Persist(leaf+uint64(slot), 1)
	}
	t.setLeafBitmap(leaf, bm|(1<<slot))
}

// Update replaces the value stored under key (Algorithm 8): the new pair is
// written to a free slot and both the removal of the old slot and the
// insertion of the new one commit with one p-atomic bitmap write. Returns
// false if the key is absent.
func (t *Tree) Update(key, value uint64) (bool, error) {
	if t.root == nil {
		return false, nil
	}
	leaf := t.findLeaf(key)
	prev, ok := t.findInLeaf(leaf, key)
	if !ok {
		return false, nil
	}
	bm := t.leafBitmap(leaf)
	if bm == t.fullBitmap() {
		splitKey, newLeaf, err := t.splitLeaf(leaf)
		if err != nil {
			return false, err
		}
		t.root = insertChild(t.root, t.path, len(t.path)-1, splitKey, nil, newLeaf, t.cfg.InnerFanout)
		if key > splitKey {
			leaf = newLeaf
		}
		bm = t.leafBitmap(leaf)
		prev, _ = t.findInLeaf(leaf, key)
	}
	slot := bits.TrailingZeros64(^bm)
	t.pool.WriteU64(t.lay.keyOff(leaf, slot), key)
	t.pool.WriteU64(t.lay.valOff(leaf, slot), value)
	t.pool.Persist(t.lay.keyOff(leaf, slot), 8)
	t.pool.Persist(t.lay.valOff(leaf, slot), 8)
	if t.lay.hasFP {
		t.pool.WriteU8(leaf+uint64(slot), hash1(key))
		t.pool.Persist(leaf+uint64(slot), 1)
	}
	t.setLeafBitmap(leaf, bm&^(1<<prev)|(1<<slot))
	return true, nil
}

// Upsert inserts the pair or updates it in place when the key exists.
func (t *Tree) Upsert(key, value uint64) error {
	ok, err := t.Update(key, value)
	if err != nil || ok {
		return err
	}
	return t.Insert(key, value)
}

// Delete removes key (Algorithm 5's single-threaded core). Deleting the last
// key of a leaf unlinks and frees the whole leaf under a delete micro-log.
func (t *Tree) Delete(key uint64) (bool, error) {
	if t.root == nil {
		return false, nil
	}
	leaf := t.findLeaf(key)
	slot, ok := t.findInLeaf(leaf, key)
	if !ok {
		return false, nil
	}
	bm := t.leafBitmap(leaf)
	if bm&^(1<<slot) == 0 {
		prev := t.prevLeafOf()
		if err := t.deleteLeaf(leaf, prev); err != nil {
			return false, err
		}
		t.root = removeLeaf(t.root, t.path)
	} else {
		t.setLeafBitmap(leaf, bm&^(1<<slot))
	}
	t.size--
	return true, nil
}

// Scan visits live pairs with key >= from in ascending key order until fn
// returns false. Leaves are unsorted, so each visited leaf is sorted in DRAM
// before emission; the persistent next pointers chain the leaves (Figure 2).
func (t *Tree) Scan(from uint64, fn func(KV) bool) {
	if t.root == nil {
		return
	}
	leaf := t.findLeaf(from)
	var batch []KV
	for {
		bm := t.leafBitmap(leaf)
		batch = batch[:0]
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			if k := t.leafKey(leaf, s); k >= from {
				batch = append(batch, KV{k, t.leafVal(leaf, s)})
			}
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].Key < batch[j].Key })
		for _, kv := range batch {
			if !fn(kv) {
				return
			}
		}
		next := t.leafNext(leaf)
		if next.IsNull() {
			return
		}
		leaf = next.Offset
	}
}

// ScanN returns up to n pairs with key >= from.
func (t *Tree) ScanN(from uint64, n int) []KV {
	out := make([]KV, 0, n)
	t.Scan(from, func(kv KV) bool {
		out = append(out, kv)
		return len(out) < n
	})
	return out
}

// --- structure modifications -------------------------------------------------

// firstLeaf materializes the head leaf of an empty tree.
func (t *Tree) firstLeaf() (uint64, error) {
	if t.groups.enabled() {
		off, err := t.groups.getLeaf()
		if err != nil {
			return 0, err
		}
		t.m.setHeadLeaf(scm.PPtr{ArenaID: t.pool.ID(), Offset: off})
		return off, nil
	}
	ptr, err := t.pool.Alloc(t.m.base+mOffHeadLeaf, t.lay.size)
	if err != nil {
		return 0, err
	}
	return ptr.Offset, nil
}

// splitLeaf implements Algorithm 3: persistent copy of the full leaf into a
// freshly obtained one, p-atomic bitmap updates on both halves, and linking,
// all under a split micro-log so RecoverSplit can finish or discard the
// operation from any crash point.
func (t *Tree) splitLeaf(leaf uint64) (splitKey uint64, newLeaf uint64, err error) {
	log := t.m.splitLog(0)
	log.setA(scm.PPtr{ArenaID: t.pool.ID(), Offset: leaf})
	if t.groups.enabled() {
		off, gerr := t.groups.getLeaf()
		if gerr != nil {
			log.reset()
			return 0, 0, gerr
		}
		log.setB(scm.PPtr{ArenaID: t.pool.ID(), Offset: off})
	} else {
		if _, aerr := t.pool.Alloc(log.bOff(), t.lay.size); aerr != nil {
			log.reset()
			return 0, 0, aerr
		}
	}
	newLeaf = log.b().Offset
	splitKey = t.completeSplit(leaf, newLeaf)
	log.reset()
	t.Ops.LeafSplits.Add(1)
	return splitKey, newLeaf, nil
}

// completeSplit performs lines 6-14 of Algorithm 3; recovery re-enters it.
func (t *Tree) completeSplit(leaf, newLeaf uint64) uint64 {
	// Copy the full leaf content (including the next pointer: the new leaf
	// becomes the right neighbor).
	buf := t.pool.ReadBytes(leaf, t.lay.size)
	t.pool.WriteBytes(newLeaf, buf)
	t.pool.Persist(newLeaf, t.lay.size)

	splitKey, newBm := t.findSplitKey(leaf)
	t.setLeafBitmap(newLeaf, newBm)
	t.setLeafBitmap(leaf, t.fullBitmap()&^newBm)
	t.setLeafNext(leaf, scm.PPtr{ArenaID: t.pool.ID(), Offset: newLeaf})
	return splitKey
}

// findSplitKey picks the median key of a full leaf: the returned splitKey is
// the greatest key that stays in the left (original) leaf, and the returned
// bitmap marks the slots that move to the new right leaf.
func (t *Tree) findSplitKey(leaf uint64) (uint64, uint64) {
	m := t.cfg.LeafCap
	t.kbuf = t.kbuf[:0]
	t.sbuf = t.sbuf[:0]
	for s := 0; s < m; s++ {
		t.kbuf = append(t.kbuf, t.leafKey(leaf, s))
		t.sbuf = append(t.sbuf, s)
	}
	keys := t.kbuf
	sort.Slice(t.sbuf, func(i, j int) bool { return keys[t.sbuf[i]] < keys[t.sbuf[j]] })
	keep := (m + 1) / 2
	splitKey := keys[t.sbuf[keep-1]]
	var newBm uint64
	for _, s := range t.sbuf[keep:] {
		newBm |= 1 << s
	}
	return splitKey, newBm
}

// deleteLeaf implements Algorithm 6: unlink the leaf from the persistent
// list under a delete micro-log, then return it to the leaf groups (or the
// allocator when groups are disabled).
func (t *Tree) deleteLeaf(leaf, prev uint64) error {
	log := t.m.deleteLog(0)
	log.setA(scm.PPtr{ArenaID: t.pool.ID(), Offset: leaf})
	if t.m.headLeaf().Offset == leaf {
		t.m.setHeadLeaf(t.leafNext(leaf))
	} else {
		log.setB(scm.PPtr{ArenaID: t.pool.ID(), Offset: prev})
		t.setLeafNext(prev, t.leafNext(leaf))
	}
	t.releaseLeaf(log)
	log.reset()
	return nil
}

// releaseLeaf hands the unlinked leaf in log.a back to its owner: the leaf
// groups, or the persistent allocator via the micro-log cell (which nulls
// it). During micro-log replay the group bookkeeping is still volatile-empty,
// so a grouped leaf is simply left for rebuildFreeVector to reclassify as
// free (it is no longer reachable from the leaf list).
func (t *Tree) releaseLeaf(log mlog) {
	if t.groups.enabled() {
		if !t.recovering {
			t.groups.freeLeaf(log.a().Offset)
		}
		return
	}
	t.pool.Free(log.aOff(), t.lay.size)
}

// --- recovery ---------------------------------------------------------------

// recoverSplit is Algorithm 4.
func (t *Tree) recoverSplit(log mlog) {
	a, b := log.a(), log.b()
	if a.IsNull() || b.IsNull() {
		// Crashed before the new leaf was durably obtained: the allocator
		// intent has already been rolled back (or the group leaf stays in
		// the free vector); discard.
		if !a.IsNull() || !b.IsNull() {
			log.reset()
		}
		return
	}
	if t.leafBitmap(a.Offset) == t.fullBitmap() {
		// Crashed before line 11 (the split leaf's bitmap update): redo the
		// whole copy phase.
		t.completeSplit(a.Offset, b.Offset)
	} else {
		// Crashed at or after line 11: recompute the idempotent tail.
		t.setLeafBitmap(a.Offset, t.fullBitmap()&^t.leafBitmap(b.Offset))
		t.setLeafNext(a.Offset, b)
	}
	log.reset()
}

// recoverDelete is Algorithm 7.
func (t *Tree) recoverDelete(log mlog) {
	a, b := log.a(), log.b()
	if a.IsNull() {
		if !b.IsNull() {
			log.reset()
		}
		return
	}
	head := t.m.headLeaf()
	switch {
	case !b.IsNull():
		// Crashed between the prev-link update and deallocation: redo both.
		t.setLeafNext(b.Offset, t.leafNext(a.Offset))
		t.releaseLeaf(log)
	case a == head:
		// Crashed before the head pointer moved.
		t.m.setHeadLeaf(t.leafNext(a.Offset))
		t.releaseLeaf(log)
	case t.leafNext(a.Offset) == head:
		// Head already moved; only the deallocation is missing.
		t.releaseLeaf(log)
	default:
		// Only the micro-log itself was written: nothing durable changed.
	}
	log.reset()
}

// rebuild reconstructs the DRAM inner nodes by walking the persistent leaf
// list (Algorithm 9, RebuildInnerNodes). Leaves emptied by an interrupted
// delete are unlinked on the way — a crash can leave an empty leaf in the
// list, and separators for empty leaves would be meaningless.
func (t *Tree) rebuild() {
	leaves, maxKeys, size := t.collectLeaves()
	t.size = size
	t.root = buildInnerNodes(leaves, maxKeys, t.cfg.InnerFanout)
	t.groups.rebuildFreeVector(leaves)
	t.Ops.InnerRebuilds.Add(1)
}

// collectLeaves walks the persistent leaf list, pruning leaves emptied by an
// interrupted delete, and returns the live leaves with their max keys.
func (t *Tree) collectLeaves() (leaves, maxKeys []uint64, size int) {
	prev := uint64(0)
	for p := t.m.headLeaf(); !p.IsNull(); {
		leaf := p.Offset
		next := t.leafNext(leaf)
		mk, n := t.leafMaxKey(leaf)
		if n == 0 {
			t.deleteLeaf(leaf, prev) //nolint:errcheck // release path cannot fail
			p = next
			continue
		}
		leaves = append(leaves, leaf)
		maxKeys = append(maxKeys, mk)
		size += n
		prev = leaf
		p = next
	}
	return leaves, maxKeys, size
}

// CheckInvariants validates the structural invariants the design relies on;
// tests call it after crash-recovery cycles. It returns the first violation
// found.
func (t *Tree) CheckInvariants() error {
	// 1. Leaf-list keys are ordered between leaves and fingerprints match.
	var prevMax uint64
	first := true
	n := 0
	for p := t.m.headLeaf(); !p.IsNull(); p = t.leafNext(p.Offset) {
		leaf := p.Offset
		bm := t.leafBitmap(leaf)
		t.pool.ReadInto(leaf, t.fpBuf)
		var lo, hi uint64
		lo = ^uint64(0)
		cnt := 0
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := t.leafKey(leaf, s)
			if t.lay.hasFP && t.fpBuf[s] != hash1(k) {
				return fmt.Errorf("leaf %#x slot %d: fingerprint mismatch for key %d", leaf, s, k)
			}
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
			cnt++
			n++
		}
		if cnt == 0 && t.size > 0 {
			return fmt.Errorf("leaf %#x: empty leaf in non-empty tree", leaf)
		}
		if !first && cnt > 0 && lo <= prevMax {
			return fmt.Errorf("leaf %#x: min key %d <= previous leaf max %d", leaf, lo, prevMax)
		}
		if cnt > 0 {
			prevMax = hi
			first = false
		}
	}
	if n != t.size {
		return fmt.Errorf("size mismatch: list has %d keys, tree reports %d", n, t.size)
	}
	// 2. Every key is reachable through the inner nodes.
	if t.root != nil {
		for p := t.m.headLeaf(); !p.IsNull(); p = t.leafNext(p.Offset) {
			leaf := p.Offset
			bm := t.leafBitmap(leaf)
			for s := 0; s < t.cfg.LeafCap; s++ {
				if bm&(1<<s) == 0 {
					continue
				}
				k := t.leafKey(leaf, s)
				if got := t.findLeaf(k); got != leaf {
					return fmt.Errorf("key %d lives in leaf %#x but descent reaches %#x", k, leaf, got)
				}
			}
		}
	}
	return t.groups.checkInvariants()
}

// MemoryStats reports the tree's memory footprint split by medium, for the
// Figure 8 experiment.
type MemoryStats struct {
	SCMBytes  uint64 // SCM consumed by the whole arena's live allocations
	DRAMBytes uint64 // estimated DRAM held by inner nodes and volatile state
	Leaves    int
	Inners    int
}

// Memory walks the DRAM part and combines it with the pool's SCM accounting.
func (t *Tree) Memory() MemoryStats {
	var st MemoryStats
	st.SCMBytes = t.pool.AllocatedBytes()
	var walk func(n *stInner[uint64])
	walk = func(n *stInner[uint64]) {
		st.Inners++
		st.DRAMBytes += uint64(len(n.keys)*8 + 48)
		if n.isLeafParent() {
			st.DRAMBytes += uint64(len(n.leaves) * 8)
			st.Leaves += len(n.leaves)
			return
		}
		st.DRAMBytes += uint64(len(n.kids) * 8)
		for _, k := range n.kids {
			walk(k)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return st
}
