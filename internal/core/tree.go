package core

import (
	"fptree/internal/scm"
)

// Tree is the single-threaded fixed-size-key FPTree: Selective Persistence
// (leaves in SCM, inner nodes in DRAM), Fingerprinting, unsorted leaves with
// a p-atomic validity bitmap, and amortized persistent allocations through
// leaf groups (Section 5, variant 1). Keys and values are 8-byte integers.
//
// The tree is not safe for concurrent use; CTree is the Selective
// Concurrency variant. Both are facades over the same generic engine — Tree
// pairs the fixed-key codec with the no-op concurrency controller.
type Tree struct {
	*engine[uint64, uint64]
}

// KV is one fixed-size key-value pair.
type KV struct {
	Key   uint64
	Value uint64
}

// MemoryStats reports a tree's memory footprint split by medium, for the
// Figure 8 experiment.
type MemoryStats struct {
	SCMBytes  uint64 // SCM consumed by the whole arena's live allocations
	DRAMBytes uint64 // estimated DRAM held by inner nodes and volatile state
	Leaves    int
	Inners    int
}

// Create formats a new single-threaded FPTree in the pool. The pool must be
// empty (null root).
func Create(pool *scm.Pool, cfg Config) (*Tree, error) {
	e, err := createEngine(pool, cfg, keyKindFixed, fixedCodecOf, nopCC{})
	if err != nil {
		return nil, err
	}
	return &Tree{e}, nil
}

// Open recovers a single-threaded FPTree from a pool that survived a crash
// or restart: it replays the allocator intent and all micro-logs, then
// rebuilds the DRAM-resident inner nodes and the volatile free-leaf vector
// (Algorithm 9). An optional RecoveryOptions parallelizes the leaf scan; the
// recovered tree and arena are identical for every worker count.
func Open(pool *scm.Pool, opts ...RecoveryOptions) (*Tree, error) {
	e, err := openEngine(pool, keyKindFixed, fixedCodecOf, nopCC{}, recoveryOpts(opts))
	if err != nil {
		return nil, err
	}
	return &Tree{e}, nil
}

// Scan visits live pairs with key >= from in ascending key order until fn
// returns false.
func (t *Tree) Scan(from uint64, fn func(KV) bool) {
	t.engine.scan(from, func(k, v uint64) bool { return fn(KV{k, v}) })
}

// ScanN returns up to n pairs with key >= from (nil when n <= 0). The result
// is pre-sized to min(n, Len()), so a large n does not over-allocate.
func (t *Tree) ScanN(from uint64, n int) []KV {
	out := make([]KV, 0, scanNCap(n, t.Len()))
	if n <= 0 {
		return nil
	}
	t.Scan(from, func(kv KV) bool {
		out = append(out, kv)
		return len(out) < n
	})
	return out
}

// Iterator returns a resumable ascending iterator over the window
// [start, end); end == 0 means unbounded. The iterator is created positioned
// on the window's first key (check Valid); Close it when done.
func (t *Tree) Iterator(start, end uint64) *FixedIterator {
	s, e := fixedIterBounds(start, end)
	return t.engine.iterator(s, e, false)
}

// ReverseIterator returns a resumable descending iterator over [start, end),
// positioned on the greatest key below end (end == 0: the maximum key).
func (t *Tree) ReverseIterator(start, end uint64) *FixedIterator {
	s, e := fixedIterBounds(start, end)
	return t.engine.iterator(s, e, true)
}
