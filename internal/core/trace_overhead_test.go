package core

import (
	"testing"
	"time"

	"fptree/internal/obs/trace"
)

// overheadTree builds a fixed-key tree with enough warm keys to exercise a
// multi-level descend.
func overheadTree(t testing.TB, warm int) *Tree {
	t.Helper()
	tr, err := Create(newPool(64), Config{LeafCap: 56, InnerFanout: 64, GroupSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < warm; i++ {
		if err := tr.Insert(uint64(i)*7, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestTracerDisabledZeroAlloc is the acceptance guard for the disabled
// tracing path: with no tracer installed — and equally with a tracer whose
// sampling never fires inside the run — Find performs zero allocations per
// op, so the instrumentation sites cost one predictable branch and nothing
// else.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	tr := overheadTree(t, 5000)
	var sink uint64
	find := func() {
		v, ok := tr.Find(7 * 1234)
		if !ok {
			t.Fatal("warm key missing")
		}
		sink += v
	}

	if got := testing.AllocsPerRun(200, find); got != 0 {
		t.Fatalf("find with nil tracer: %.1f allocs/op, want 0", got)
	}

	// Installed but unsampled: the ticket increment must not allocate.
	tr.SetTracer(trace.New(trace.Config{SampleEvery: 1 << 30}))
	if got := testing.AllocsPerRun(200, find); got != 0 {
		t.Fatalf("find with unsampled tracer: %.1f allocs/op, want 0", got)
	}
	_ = sink
}

// TestTracerDisabledOverhead compares fixed-key insert throughput with the
// tracer field nil against an installed-but-never-sampling tracer. The two
// paths differ by one branch and one atomic add per span site; the guard
// allows generous slack for scheduler noise on small CI hosts but catches a
// real regression (an allocation or lock on the disabled path shows up as
// 2-10x, not tens of percent). The precise ≤2% comparison against the
// pre-instrumentation baseline is reproduced in EXPERIMENTS.md.
func TestTracerDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const warm = 2000
	const ops = 30000

	run := func(sampleEvery int) time.Duration {
		tr := overheadTree(t, warm)
		if sampleEvery > 0 {
			tr.SetTracer(trace.New(trace.Config{SampleEvery: sampleEvery}))
		}
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := tr.Insert(uint64(warm+i)*7+1, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	// Warm the code and allocator once, then take the best of three for each
	// configuration: minima are far more stable than means under CI noise.
	run(0)
	best := func(every int) time.Duration {
		b := run(every)
		for i := 0; i < 2; i++ {
			if d := run(every); d < b {
				b = d
			}
		}
		return b
	}
	off := best(0)
	unsampled := best(1 << 30)

	ratio := float64(unsampled) / float64(off)
	if ratio > 1.5 {
		t.Fatalf("unsampled tracer made insert %.2fx slower (off=%v traced=%v); disabled-path regression", ratio, off, unsampled)
	}
	t.Logf("fixed-key insert: tracer off %v, unsampled tracer %v (%.3fx)", off, unsampled, ratio)
}

// TestTraceFlushAttributionComplete is the sum≈cumulative acceptance check
// in its exact form: single-threaded with 1-in-1 sampling, every flush the
// pool counts during traced operations must be attributed to some phase of
// some span, so the per-op totals sum to exactly the SCM counter delta.
// (Under 1-in-N sampling the same sum times N converges on the counter
// within sampling error; under concurrency attribution is an upper bound —
// see the trace package doc.)
func TestTraceFlushAttributionComplete(t *testing.T) {
	pool := newPool(64)
	tr, err := Create(pool, Config{LeafCap: 56, InnerFanout: 64, GroupSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(uint64(i)*3, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	tc := trace.New(trace.Config{SampleEvery: 1, Costs: pool.Stats()})
	tr.SetTracer(tc)
	flushes0, fences0 := pool.Stats().FlushFence()
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(uint64(2000+i)*3+1, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if _, err := tr.Delete(uint64(2000+i)*3 + 1); err != nil {
			t.Fatal(err)
		}
	}
	flushes1, fences1 := pool.Stats().FlushFence()

	var sumF, sumFe uint64
	for _, tot := range tc.Totals() {
		for _, p := range tot.Phases {
			sumF += p.Flushes
			sumFe += p.Fences
		}
	}
	if sumF != flushes1-flushes0 {
		t.Fatalf("attributed flushes %d != cumulative delta %d", sumF, flushes1-flushes0)
	}
	if sumFe != fences1-fences0 {
		t.Fatalf("attributed fences %d != cumulative delta %d", sumFe, fences1-fences0)
	}
}

// BenchmarkInsertTracerOff / BenchmarkInsertTracerUnsampled are the
// fine-grained versions of the guard: run with -benchmem to verify the
// 0 allocs/op and ≤2% ns/op acceptance numbers interactively.
func BenchmarkInsertTracerOff(b *testing.B)       { benchInsert(b, 0) }
func BenchmarkInsertTracerUnsampled(b *testing.B) { benchInsert(b, 1<<30) }
func BenchmarkInsertTracerSampled64(b *testing.B) { benchInsert(b, 64) }

func benchInsert(b *testing.B, sampleEvery int) {
	tr := overheadTree(b, 2000)
	if sampleEvery > 0 {
		tr.SetTracer(trace.New(trace.Config{SampleEvery: sampleEvery}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(uint64(2000+i)*7+1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
