package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fptree/internal/crashtest"
	"fptree/internal/scm"
)

func newPool(sizeMB int) *scm.Pool {
	return scm.NewPool(int64(sizeMB)<<20, scm.LatencyConfig{CacheBytes: -1})
}

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := Create(newPool(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// configs the suite repeats over: small leaves force deep trees and frequent
// splits; groups on/off exercises both allocation paths.
var testConfigs = []struct {
	name string
	cfg  Config
}{
	{"leaf8-groups4", Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4}},
	{"leaf8-nogroups", Config{LeafCap: 8, InnerFanout: 4}},
	{"leaf56-groups8", Config{LeafCap: 56, InnerFanout: 16, GroupSize: 8}},
	{"leaf2-fanout2", Config{LeafCap: 2, InnerFanout: 2, GroupSize: 2}},
	{"leaf64", Config{LeafCap: 64, InnerFanout: 8}},
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8})
	if _, ok := tr.Find(1); ok {
		t.Fatal("Find on empty tree")
	}
	if ok, _ := tr.Delete(1); ok {
		t.Fatal("Delete on empty tree")
	}
	if ok, _ := tr.Update(1, 2); ok {
		t.Fatal("Update on empty tree")
	}
	if got := tr.ScanN(0, 10); len(got) != 0 {
		t.Fatal("Scan on empty tree")
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree has non-zero size or height")
	}
}

func TestInsertFindSingle(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8})
	if err := tr.Insert(42, 4200); err != nil {
		t.Fatal(err)
	}
	v, ok := tr.Find(42)
	if !ok || v != 4200 {
		t.Fatalf("Find(42) = %d,%v", v, ok)
	}
	if _, ok := tr.Find(43); ok {
		t.Fatal("found absent key")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertManyAscending(t *testing.T) {
	for _, tc := range testConfigs {
		t.Run(tc.name, func(t *testing.T) {
			tr := newTree(t, tc.cfg)
			const n = 3000
			for i := uint64(1); i <= n; i++ {
				if err := tr.Insert(i, i*10); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			for i := uint64(1); i <= n; i++ {
				v, ok := tr.Find(i)
				if !ok || v != i*10 {
					t.Fatalf("Find(%d) = %d,%v", i, v, ok)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertManyRandom(t *testing.T) {
	for _, tc := range testConfigs {
		t.Run(tc.name, func(t *testing.T) {
			tr := newTree(t, tc.cfg)
			rng := rand.New(rand.NewSource(7))
			keys := rng.Perm(5000)
			for _, k := range keys {
				if err := tr.Insert(uint64(k)+1, uint64(k)*3); err != nil {
					t.Fatal(err)
				}
			}
			for _, k := range keys {
				v, ok := tr.Find(uint64(k) + 1)
				if !ok || v != uint64(k)*3 {
					t.Fatalf("Find(%d) = %d,%v", k+1, v, ok)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUpdate(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	for i := uint64(1); i <= 500; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 500; i++ {
		ok, err := tr.Update(i, i+1000)
		if err != nil || !ok {
			t.Fatalf("Update(%d) = %v,%v", i, ok, err)
		}
	}
	for i := uint64(1); i <= 500; i++ {
		v, ok := tr.Find(i)
		if !ok || v != i+1000 {
			t.Fatalf("after update Find(%d) = %d,%v", i, v, ok)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d after updates", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateOnFullLeafSplits(t *testing.T) {
	// Fill exactly one leaf, then update: the leaf must split (Algorithm 8's
	// split case) and the update must still be atomic.
	tr := newTree(t, Config{LeafCap: 4, InnerFanout: 4})
	for i := uint64(1); i <= 4; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Update(1, 99)
	if err != nil || !ok {
		t.Fatalf("Update = %v,%v", ok, err)
	}
	v, ok := tr.Find(1)
	if !ok || v != 99 {
		t.Fatalf("Find(1) = %d,%v", v, ok)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpsert(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8})
	if err := tr.Upsert(5, 50); err != nil {
		t.Fatal(err)
	}
	if err := tr.Upsert(5, 51); err != nil {
		t.Fatal(err)
	}
	v, ok := tr.Find(5)
	if !ok || v != 51 {
		t.Fatalf("Find(5) = %d,%v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteAll(t *testing.T) {
	for _, tc := range testConfigs {
		t.Run(tc.name, func(t *testing.T) {
			tr := newTree(t, tc.cfg)
			const n = 2000
			rng := rand.New(rand.NewSource(3))
			keys := rng.Perm(n)
			for _, k := range keys {
				if err := tr.Insert(uint64(k)+1, uint64(k)); err != nil {
					t.Fatal(err)
				}
			}
			for i, k := range keys {
				ok, err := tr.Delete(uint64(k) + 1)
				if err != nil || !ok {
					t.Fatalf("Delete(%d) = %v,%v", k+1, ok, err)
				}
				if _, ok := tr.Find(uint64(k) + 1); ok {
					t.Fatalf("key %d still found after delete", k+1)
				}
				if i%500 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after deleting everything", tr.Len())
			}
			// The tree must be reusable after emptying.
			if err := tr.Insert(1, 2); err != nil {
				t.Fatal(err)
			}
			if v, ok := tr.Find(1); !ok || v != 2 {
				t.Fatal("insert after emptying failed")
			}
		})
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8})
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if ok, _ := tr.Delete(2); ok {
		t.Fatal("deleted absent key")
	}
	if tr.Len() != 1 {
		t.Fatal("Len changed on absent delete")
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	rng := rand.New(rand.NewSource(11))
	for _, k := range rng.Perm(1000) {
		if err := tr.Insert(uint64(k)*2+2, uint64(k)); err != nil { // even keys 2..2000
			t.Fatal(err)
		}
	}
	got := tr.ScanN(501, 100)
	if len(got) != 100 {
		t.Fatalf("ScanN returned %d", len(got))
	}
	want := uint64(502)
	for i, kv := range got {
		if kv.Key != want {
			t.Fatalf("scan[%d] = %d, want %d", i, kv.Key, want)
		}
		want += 2
	}
	// Scan beyond the last key yields nothing.
	if got := tr.ScanN(3000, 5); len(got) != 0 {
		t.Fatalf("scan past end returned %d", len(got))
	}
	// Full scan yields every key in order.
	all := tr.ScanN(0, 2000)
	if len(all) != 1000 {
		t.Fatalf("full scan returned %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Key <= all[i-1].Key {
			t.Fatal("scan out of order")
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8})
	for i := uint64(1); i <= 100; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	var seen int
	tr.Scan(0, func(kv KV) bool {
		seen++
		return seen < 7
	})
	if seen != 7 {
		t.Fatalf("early stop visited %d", seen)
	}
}

func TestDuplicateInsertVisibleAndUpdateable(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8})
	if err := tr.Insert(9, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(9, 2); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d with duplicate", tr.Len())
	}
	if _, ok := tr.Find(9); !ok {
		t.Fatal("duplicate key not found")
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 4, InnerFanout: 4})
	for i := uint64(1); i <= 4000; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Height(); h < 3 || h > 10 {
		t.Fatalf("height %d out of expected band", h)
	}
}

// TestRecoveryCleanRestart simulates save + reload and checks contents.
func TestRecoveryCleanRestart(t *testing.T) {
	for _, tc := range testConfigs {
		t.Run(tc.name, func(t *testing.T) {
			pool := newPool(64)
			tr, err := Create(pool, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			const n = 2000
			for i := uint64(1); i <= n; i++ {
				if err := tr.Insert(i, i^0xabc); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(1); i <= n; i += 3 {
				if _, err := tr.Delete(i); err != nil {
					t.Fatal(err)
				}
			}
			pool.Crash() // a clean restart discards the cache view too
			tr2, err := Open(pool)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(1); i <= n; i++ {
				v, ok := tr2.Find(i)
				if i%3 == 1 {
					if ok {
						t.Fatalf("deleted key %d resurrected", i)
					}
				} else if !ok || v != i^0xabc {
					t.Fatalf("Find(%d) = %d,%v after recovery", i, v, ok)
				}
			}
			if err := tr2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashAtEveryFlushDuringInserts is the core durability claim: crash the
// machine at every possible flush boundary during a batch of inserts, recover,
// and check that the tree contains exactly a prefix of the acknowledged
// operations plus possibly nothing of the in-flight one.
func TestCrashAtEveryFlushDuringInserts(t *testing.T) {
	for _, tc := range testConfigs {
		t.Run(tc.name, func(t *testing.T) {
			testCrashOps(t, tc.cfg, func(tr *Tree, rng *rand.Rand, acked map[uint64]uint64) (uint64, func() error) {
				k := rng.Uint64()%10000 + 1
				for {
					if _, dup := acked[k]; !dup {
						break
					}
					k = rng.Uint64()%10000 + 1
				}
				return k, func() error { return tr.Insert(k, k*7) }
			})
		})
	}
}

func TestCrashAtEveryFlushDuringDeletes(t *testing.T) {
	for _, tc := range testConfigs {
		t.Run(tc.name, func(t *testing.T) {
			testCrashDeletes(t, tc.cfg)
		})
	}
}

// testCrashOps drives operations with a crash injected at flush k for
// growing k until an operation completes without crashing; after each crash
// it recovers and verifies all previously acknowledged data.
func testCrashOps(t *testing.T, cfg Config, mkOp func(*Tree, *rand.Rand, map[uint64]uint64) (uint64, func() error)) {
	t.Helper()
	pool := newPool(64)
	tr, err := Create(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	acked := map[uint64]uint64{}
	// Base data so splits and deletes have structure to damage.
	for i := uint64(1); i <= 300; i++ {
		k := i * 13
		if err := tr.Insert(k, k*7); err != nil {
			t.Fatal(err)
		}
		acked[k] = k * 7
	}
	step := int64(1)
	for op := 0; op < 120; op++ {
		key, fn := mkOp(tr, rng, acked)
		pool.FailAfterFlushes(step)
		crashed, opErr := crashtest.Crashes(fn)
		pool.FailAfterFlushes(-1)
		if opErr != nil {
			t.Fatal(opErr)
		}
		if !crashed {
			acked[key] = key * 7
			step = 1
			continue
		}
		step++
		pool.Crash()
		tr, err = Open(pool)
		if err != nil {
			t.Fatalf("op %d step %d: recovery failed: %v", op, step, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("op %d step %d: %v", op, step, err)
		}
		for k, v := range acked {
			got, ok := tr.Find(k)
			if !ok || got != v {
				t.Fatalf("op %d step %d: acked key %d = %d,%v (want %d)", op, step, k, got, ok, v)
			}
		}
		// The in-flight key must be either fully present or fully absent.
		if got, ok := tr.Find(key); ok && got != key*7 {
			t.Fatalf("op %d step %d: in-flight key %d has torn value %d", op, step, key, got)
		}
		op-- // retry the same op with a deeper crash point
	}
}

func testCrashDeletes(t *testing.T, cfg Config) {
	t.Helper()
	pool := newPool(64)
	tr, err := Create(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := map[uint64]uint64{}
	for i := uint64(1); i <= 400; i++ {
		k := i * 3
		if err := tr.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
		live[k] = k + 1
	}
	rng := rand.New(rand.NewSource(5))
	step := int64(1)
	for op := 0; op < 150 && len(live) > 0; op++ {
		var key uint64
		for k := range live {
			key = k
			break
		}
		_ = rng
		pool.FailAfterFlushes(step)
		crashed, opErr := crashtest.Crashes(func() error {
			_, err := tr.Delete(key)
			return err
		})
		pool.FailAfterFlushes(-1)
		if opErr != nil {
			t.Fatal(opErr)
		}
		if !crashed {
			delete(live, key)
			step = 1
			continue
		}
		step++
		pool.Crash()
		tr, err = Open(pool)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("op %d step %d: %v", op, step, err)
		}
		// The in-flight delete may have rolled forward (key gone) or back
		// (key intact with its value). All other keys must be intact.
		for k, v := range live {
			if k == key {
				continue
			}
			got, ok := tr.Find(k)
			if !ok || got != v {
				t.Fatalf("op %d step %d: live key %d = %d,%v", op, step, k, got, ok)
			}
		}
		if got, ok := tr.Find(key); ok && got != live[key] {
			t.Fatalf("op %d step %d: torn value for in-flight delete", op, step)
		} else if !ok {
			delete(live, key) // rolled forward
		}
		op--
	}
}

// TestQuickAgainstOracle drives random op sequences against a map oracle.
func TestQuickAgainstOracle(t *testing.T) {
	cfgs := []Config{
		{LeafCap: 4, InnerFanout: 3, GroupSize: 2},
		{LeafCap: 16, InnerFanout: 8},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			tr, err := Create(newPool(32), cfg)
			if err != nil {
				t.Fatal(err)
			}
			oracle := map[uint64]uint64{}
			for i := 0; i < 800; i++ {
				k := rng.Uint64()%300 + 1
				switch rng.Intn(4) {
				case 0: // upsert
					v := rng.Uint64()
					if err := tr.Upsert(k, v); err != nil {
						t.Fatal(err)
					}
					oracle[k] = v
				case 1: // delete
					ok, err := tr.Delete(k)
					if err != nil {
						t.Fatal(err)
					}
					if _, want := oracle[k]; ok != want {
						t.Fatalf("delete(%d) = %v, oracle %v", k, ok, want)
					}
					delete(oracle, k)
				case 2: // find
					v, ok := tr.Find(k)
					want, wok := oracle[k]
					if ok != wok || (ok && v != want) {
						t.Fatalf("find(%d) = %d,%v want %d,%v", k, v, ok, want, wok)
					}
				case 3: // update
					v := rng.Uint64()
					ok, err := tr.Update(k, v)
					if err != nil {
						t.Fatal(err)
					}
					if _, want := oracle[k]; ok != want {
						t.Fatalf("update(%d) = %v, oracle %v", k, ok, want)
					}
					if ok {
						oracle[k] = v
					}
				}
			}
			if tr.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
			}
			// Full scan must equal the sorted oracle.
			got := tr.ScanN(0, len(oracle)+10)
			if len(got) != len(oracle) {
				t.Fatalf("scan %d entries, oracle %d", len(got), len(oracle))
			}
			for _, kv := range got {
				if oracle[kv.Key] != kv.Value {
					t.Fatalf("scan kv %v disagrees with oracle %d", kv, oracle[kv.Key])
				}
			}
			return tr.CheckInvariants() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuickRecoveryEquivalence: after any batch of ops, crash+recover must
// preserve exactly the acknowledged state.
func TestQuickRecoveryEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := newPool(32)
		tr, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]uint64{}
		for i := 0; i < 600; i++ {
			k := rng.Uint64()%200 + 1
			if rng.Intn(3) == 0 {
				if _, err := tr.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(oracle, k)
			} else {
				v := rng.Uint64()
				if err := tr.Upsert(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			}
		}
		pool.Crash()
		tr2, err := Open(pool)
		if err != nil {
			t.Fatal(err)
		}
		if tr2.Len() != len(oracle) {
			t.Fatalf("recovered Len = %d, oracle %d", tr2.Len(), len(oracle))
		}
		for k, v := range oracle {
			got, ok := tr2.Find(k)
			if !ok || got != v {
				t.Fatalf("recovered find(%d) = %d,%v want %d", k, got, ok, v)
			}
		}
		return tr2.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeStatsNearOne(t *testing.T) {
	// The Figure 4 claim: with m=56 entries and 256 fingerprint values, a
	// successful search probes ~1.1 keys on average.
	tr := newTree(t, Config{LeafCap: 56, InnerFanout: 64, GroupSize: 8})
	rng := rand.New(rand.NewSource(21))
	keys := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() | 1
		keys = append(keys, k)
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Probes = ProbeStats{}
	for _, k := range keys {
		if _, ok := tr.Find(k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
	avg := tr.Probes.AvgProbes()
	if avg < 1.0 || avg > 1.35 {
		t.Fatalf("avg in-leaf probes = %.3f, want ≈1.1", avg)
	}
}

func TestMemoryStatsDRAMSmallFraction(t *testing.T) {
	// Selective Persistence: the DRAM share of the tree must be a small
	// fraction of the total (paper: <3% at leaf 56 / inner 4096; relaxed
	// bounds here for small scale).
	tr := newTree(t, Config{LeafCap: 56, InnerFanout: 128, GroupSize: 8})
	for i := uint64(1); i <= 100000; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Memory()
	if st.Leaves == 0 || st.Inners == 0 {
		t.Fatal("memory stats missing nodes")
	}
	frac := float64(st.DRAMBytes) / float64(st.DRAMBytes+st.SCMBytes)
	if frac > 0.10 {
		t.Fatalf("DRAM fraction %.2f%% too high", frac*100)
	}
}

func TestSaveLoadTree(t *testing.T) {
	dir := t.TempDir()
	pool := newPool(32)
	tr, err := Create(pool, Config{LeafCap: 8, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 500; i++ {
		if err := tr.Insert(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	path := dir + "/tree.img"
	if err := pool.Save(path); err != nil {
		t.Fatal(err)
	}
	pool2, err := scm.Load(path, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 500; i++ {
		v, ok := tr2.Find(i)
		if !ok || v != i*2 {
			t.Fatalf("Find(%d) after reload = %d,%v", i, v, ok)
		}
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsWrongKind(t *testing.T) {
	pool := newPool(8)
	if _, err := Open(pool); err == nil {
		t.Fatal("Open on empty pool should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LeafCap: 1},
		{LeafCap: 65},
		{LeafCap: 8, InnerFanout: 1},
		{LeafCap: 8, GroupSize: -1},
		{LeafCap: 8, ValueSize: -2},
	}
	for i, cfg := range bad {
		if _, err := Create(newPool(8), cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
