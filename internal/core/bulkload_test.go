package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBulkLoadBasics(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 16, InnerFanout: 8, GroupSize: 4})
	rng := rand.New(rand.NewSource(1))
	kvs := make([]KV, 5000)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i)*3 + 1, Value: rng.Uint64()}
	}
	if err := tr.BulkLoad(kvs, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(kvs) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, kv := range kvs {
		v, ok := tr.Find(kv.Key)
		if !ok || v != kv.Value {
			t.Fatalf("find(%d) = %d,%v", kv.Key, v, ok)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree remains fully operational after a bulk load.
	if err := tr.Insert(2, 22); err != nil {
		t.Fatal(err)
	}
	if ok, _ := tr.Delete(4); !ok {
		t.Fatal("delete after bulk load failed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, GroupSize: 4})
	if err := tr.BulkLoad([]KV{{3, 0}, {1, 0}}, 0); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if err := tr.BulkLoad([]KV{{1, 0}}, 1.5); err == nil {
		t.Fatal("bad fill accepted")
	}
	if err := tr.Insert(9, 9); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad([]KV{{1, 0}}, 0); err == nil {
		t.Fatal("bulk load into non-empty tree accepted")
	}
	tr2 := newTree(t, Config{LeafCap: 8}) // groups disabled
	if err := tr2.BulkLoad([]KV{{1, 0}}, 0); err == nil {
		t.Fatal("bulk load without groups accepted")
	}
}

func TestBulkLoadCrashPrefix(t *testing.T) {
	pool := newPool(64)
	tr, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	kvs := make([]KV, 2000)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i) + 1, Value: uint64(i) * 7}
	}
	pool.FailAfterFlushes(150)
	func() {
		defer func() { recover() }()
		tr.BulkLoad(kvs, 0) //nolint:errcheck
	}()
	pool.FailAfterFlushes(-1)
	pool.Crash()
	tr2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The recovered contents must be exactly a prefix of the load.
	got := tr2.ScanN(0, len(kvs)+1)
	if len(got) > len(kvs) {
		t.Fatalf("recovered %d > loaded %d", len(got), len(kvs))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
		t.Fatal("recovered scan not sorted")
	}
	for i, kv := range got {
		if kv != kvs[i] {
			t.Fatalf("recovered[%d] = %v, want %v (not a prefix)", i, kv, kvs[i])
		}
	}
}
