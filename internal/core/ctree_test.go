package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fptree/internal/scm"
)

func newCTree(t *testing.T, cfg Config) *CTree {
	t.Helper()
	tr, err := CCreate(newPool(128), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

var cConfigs = []struct {
	name string
	cfg  Config
}{
	{"leaf8-fanout4", Config{LeafCap: 8, InnerFanout: 4, NumLogs: 8}},
	{"leaf64-fanout128", Config{LeafCap: 64, InnerFanout: 128}},
	{"leaf4-fanout2", Config{LeafCap: 4, InnerFanout: 2, NumLogs: 4}},
}

func TestCTreeSingleThreadBasics(t *testing.T) {
	for _, tc := range cConfigs {
		t.Run(tc.name, func(t *testing.T) {
			tr := newCTree(t, tc.cfg)
			if _, ok := tr.Find(1); ok {
				t.Fatal("find on empty")
			}
			const n = 3000
			rng := rand.New(rand.NewSource(1))
			for _, k := range rng.Perm(n) {
				if err := tr.Insert(uint64(k)+1, uint64(k)*2); err != nil {
					t.Fatal(err)
				}
			}
			for k := 1; k <= n; k++ {
				v, ok := tr.Find(uint64(k))
				if !ok || v != uint64(k-1)*2 {
					t.Fatalf("find(%d) = %d,%v", k, v, ok)
				}
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Updates.
			for k := 1; k <= n; k += 2 {
				ok, err := tr.Update(uint64(k), 999)
				if err != nil || !ok {
					t.Fatalf("update(%d): %v %v", k, ok, err)
				}
			}
			for k := 1; k <= n; k += 2 {
				if v, _ := tr.Find(uint64(k)); v != 999 {
					t.Fatalf("after update find(%d) = %d", k, v)
				}
			}
			// Deletes.
			for k := 1; k <= n; k++ {
				ok, err := tr.Delete(uint64(k))
				if err != nil || !ok {
					t.Fatalf("delete(%d): %v %v", k, ok, err)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after delete-all", tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Reusable after emptying.
			if err := tr.Insert(5, 6); err != nil {
				t.Fatal(err)
			}
			if v, ok := tr.Find(5); !ok || v != 6 {
				t.Fatal("insert after emptying failed")
			}
		})
	}
}

func TestCTreeScan(t *testing.T) {
	tr := newCTree(t, Config{LeafCap: 8, InnerFanout: 4})
	for i := uint64(1); i <= 1000; i++ {
		if err := tr.Insert(i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.ScanN(100, 200)
	if len(got) != 200 {
		t.Fatalf("scan returned %d", len(got))
	}
	want := uint64(100)
	for i, kv := range got {
		if kv.Key != want {
			t.Fatalf("scan[%d] = %d want %d", i, kv.Key, want)
		}
		want += 2
	}
	if n := len(tr.ScanN(3000, 10)); n != 0 {
		t.Fatalf("scan past end returned %d", n)
	}
}

func TestCTreeConcurrentInserts(t *testing.T) {
	for _, tc := range cConfigs {
		t.Run(tc.name, func(t *testing.T) {
			tr := newCTree(t, tc.cfg)
			const (
				workers = 8
				perW    = 2000
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						k := uint64(w*perW+i) + 1
						if err := tr.Insert(k, k*3); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if tr.Len() != workers*perW {
				t.Fatalf("Len = %d, want %d", tr.Len(), workers*perW)
			}
			for k := uint64(1); k <= workers*perW; k++ {
				v, ok := tr.Find(k)
				if !ok || v != k*3 {
					t.Fatalf("find(%d) = %d,%v", k, v, ok)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCTreeConcurrentMixed(t *testing.T) {
	// Each worker owns a disjoint key stripe; within a stripe operations are
	// sequential, so every read has a deterministic expected answer even
	// under full concurrency across stripes.
	tr := newCTree(t, Config{LeafCap: 8, InnerFanout: 4, NumLogs: 8})
	const (
		workers = 8
		stripe  = 1 << 20
		ops     = 4000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			oracle := map[uint64]uint64{}
			base := uint64(w * stripe)
			for i := 0; i < ops; i++ {
				k := base + rng.Uint64()%500 + 1
				switch rng.Intn(4) {
				case 0:
					v := rng.Uint64()
					if err := tr.Upsert(k, v); err != nil {
						t.Error(err)
						return
					}
					oracle[k] = v
				case 1:
					ok, err := tr.Delete(k)
					if err != nil {
						t.Error(err)
						return
					}
					if _, want := oracle[k]; ok != want {
						t.Errorf("delete(%d) = %v, want %v", k, ok, want)
						return
					}
					delete(oracle, k)
				case 2:
					v, ok := tr.Find(k)
					want, wok := oracle[k]
					if ok != wok || (ok && v != want) {
						t.Errorf("find(%d) = %d,%v want %d,%v", k, v, ok, want, wok)
						return
					}
				case 3:
					v := rng.Uint64()
					ok, err := tr.Update(k, v)
					if err != nil {
						t.Error(err)
						return
					}
					if _, want := oracle[k]; ok != want {
						t.Errorf("update(%d) = %v, want %v", k, ok, want)
						return
					}
					if ok {
						oracle[k] = v
					}
				}
			}
			// Final per-stripe verification.
			for k, v := range oracle {
				got, ok := tr.Find(k)
				if !ok || got != v {
					t.Errorf("final find(%d) = %d,%v want %d", k, got, ok, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCTreeConcurrentScanWhileWriting(t *testing.T) {
	tr := newCTree(t, Config{LeafCap: 8, InnerFanout: 4, NumLogs: 8})
	for i := uint64(1); i <= 2000; i++ {
		if err := tr.Insert(i*10, i); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer churns a disjoint upper range
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := 100000 + rng.Uint64()%1000
			switch rng.Intn(2) {
			case 0:
				tr.Upsert(k, k) //nolint:errcheck
			case 1:
				tr.Delete(k) //nolint:errcheck
			}
		}
	}()
	// Scans over the stable lower range must always see exactly its keys.
	for round := 0; round < 50; round++ {
		got := tr.ScanN(10, 100)
		if len(got) != 100 {
			t.Fatalf("scan %d entries", len(got))
		}
		for i, kv := range got {
			if kv.Key != uint64(i+1)*10 {
				t.Fatalf("scan[%d] = %d", i, kv.Key)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestCTreeDeferredEmptyLeafIsReused(t *testing.T) {
	// Force the leftmost-in-parent deferred-delete path: build two parents,
	// empty a leaf that is leftmost in the second parent, then insert into
	// its range again.
	tr := newCTree(t, Config{LeafCap: 2, InnerFanout: 2, NumLogs: 4})
	for k := uint64(1); k <= 40; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 40; k++ {
		if ok, err := tr.Delete(k); err != nil || !ok {
			t.Fatalf("delete(%d): %v %v", k, ok, err)
		}
	}
	for k := uint64(1); k <= 40; k++ {
		if err := tr.Insert(k, k+7); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 40; k++ {
		if v, ok := tr.Find(k); !ok || v != k+7 {
			t.Fatalf("find(%d) = %d,%v", k, v, ok)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCTreeRecovery(t *testing.T) {
	pool := newPool(128)
	tr, err := CCreate(pool, Config{LeafCap: 8, InnerFanout: 4, NumLogs: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(w*2000+i) + 1
				if err := tr.Insert(k, k); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := uint64(1); k <= 8000; k += 2 {
		if _, err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash()
	tr2, err := COpen(pool)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 8000; k++ {
		v, ok := tr2.Find(k)
		if k%2 == 1 {
			if ok {
				t.Fatalf("deleted key %d resurrected", k)
			}
		} else if !ok || v != k {
			t.Fatalf("find(%d) = %d,%v after recovery", k, v, ok)
		}
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCTreeCrashDuringConcurrentInserts(t *testing.T) {
	// Crash injection under concurrency: the injected panic fires in one
	// worker; all workers stop, the pool crashes, recovery must produce a
	// consistent tree containing every key acknowledged before the crash.
	pool := newPool(128)
	tr, err := CCreate(pool, Config{LeafCap: 4, InnerFanout: 4, NumLogs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 500; i++ {
		if err := tr.Insert(i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 25; trial++ {
		var acked sync.Map
		pool.FailAfterFlushes(int64(trial*7 + 3))
		var wg sync.WaitGroup
		var crashed atomic.Bool
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if r != scm.ErrInjectedCrash {
							panic(r)
						}
						crashed.Store(true)
					}
				}()
				for i := 0; i < 300; i++ {
					if crashed.Load() {
						return
					}
					k := uint64(1_000_000 + trial*100000 + w*10000 + i)
					if err := tr.Insert(k, k); err != nil {
						t.Error(err)
						return
					}
					acked.Store(k, true)
				}
			}()
		}
		wg.Wait()
		pool.FailAfterFlushes(-1)
		pool.Crash()
		tr2, err := COpen(pool)
		if err != nil {
			t.Fatalf("trial %d: recovery: %v", trial, err)
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		missing := 0
		acked.Range(func(k, _ any) bool {
			if _, ok := tr2.Find(k.(uint64)); !ok {
				missing++
			}
			return true
		})
		// Workers may have been acknowledged-but-unflushed at most for the
		// operation racing the crash; one in-flight op per worker may be
		// counted as acked by the test after its bitmap flush was the crash
		// trigger itself. Everything else must be durable.
		if missing > 4 {
			t.Fatalf("trial %d: %d acked keys missing after crash", trial, missing)
		}
		tr = tr2
	}
}

func TestCTreeStatsCountAborts(t *testing.T) {
	tr := newCTree(t, Config{LeafCap: 4, InnerFanout: 2, NumLogs: 8})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				k := uint64(i%97) + uint64(w) // heavy same-leaf contention
				tr.Upsert(k, k)               //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	// With four workers hammering 100 keys, some aborts must occur.
	if tr.Stats.Restarts.Load() == 0 {
		t.Log("no aborts observed (acceptable on a single-core machine)")
	}
}
