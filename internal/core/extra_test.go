package core

import (
	"math/rand"
	"testing"

	"fptree/internal/crashtest"
	"fptree/internal/scm"
	"fptree/internal/stx"
)

// TestDifferentialAgainstSTX runs the same random workload against the
// FPTree and the transient STX B+-Tree and requires identical answers —
// a cross-implementation oracle that catches divergence bugs both ways.
func TestDifferentialAgainstSTX(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fp, err := Create(newPool(32), Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		sx := stx.New[uint64, uint64](4, 4, func(a, b uint64) bool { return a < b })
		for i := 0; i < 3000; i++ {
			k := rng.Uint64()%500 + 1
			switch rng.Intn(4) {
			case 0:
				v := rng.Uint64()
				if err := fp.Upsert(k, v); err != nil {
					t.Fatal(err)
				}
				sx.Insert(k, v)
			case 1:
				ok1, _ := fp.Delete(k)
				ok2 := sx.Delete(k)
				if ok1 != ok2 {
					t.Fatalf("seed %d op %d: delete(%d) fp=%v stx=%v", seed, i, k, ok1, ok2)
				}
			case 2:
				v1, ok1 := fp.Find(k)
				v2, ok2 := sx.Find(k)
				if ok1 != ok2 || (ok1 && v1 != v2) {
					t.Fatalf("seed %d op %d: find(%d) fp=%d,%v stx=%d,%v", seed, i, k, v1, ok1, v2, ok2)
				}
			case 3:
				v := rng.Uint64()
				ok1, _ := fp.Update(k, v)
				ok2 := sx.Update(k, v)
				if ok1 != ok2 {
					t.Fatalf("seed %d op %d: update(%d) fp=%v stx=%v", seed, i, k, ok1, ok2)
				}
			}
		}
		if fp.Len() != sx.Len() {
			t.Fatalf("seed %d: sizes diverge fp=%d stx=%d", seed, fp.Len(), sx.Len())
		}
		// Scans must agree pair-by-pair.
		fkv := fp.ScanN(0, fp.Len()+1)
		sk, sv := sx.ScanN(0, sx.Len()+1)
		if len(fkv) != len(sk) {
			t.Fatalf("seed %d: scan lengths diverge %d vs %d", seed, len(fkv), len(sk))
		}
		for i := range fkv {
			if fkv[i].Key != sk[i] || fkv[i].Value != sv[i] {
				t.Fatalf("seed %d: scan[%d] fp=%v stx=(%d,%d)", seed, i, fkv[i], sk[i], sv[i])
			}
		}
	}
}

// TestCrashTornRecovery exercises recovery against torn cache lines: on
// crash, each dirty line durably commits a random prefix of its 8-byte words
// — the weakest guarantee the paper's p-atomicity assumption allows. All
// acknowledged data must still survive.
func TestCrashTornRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		pool := newPool(32)
		tr, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		acked := map[uint64]uint64{}
		for k := uint64(1); k <= 500; k++ {
			if err := tr.Insert(k, k*11); err != nil {
				t.Fatal(err)
			}
			acked[k] = k * 11
		}
		// Crash mid-operation with torn lines.
		pool.FailAfterFlushes(int64(rng.Intn(12) + 1))
		var inflight uint64
		crashed, opErr := crashtest.Crashes(func() error {
			for k := uint64(10_000); ; k++ {
				inflight = k
				if err := tr.Insert(k, k); err != nil {
					return err
				}
				acked[k] = k
			}
		})
		if opErr != nil {
			t.Fatal(opErr)
		}
		if !crashed {
			t.Fatal("injected crash never fired")
		}
		delete(acked, inflight)
		pool.FailAfterFlushes(-1)
		pool.CrashTornSeed(31_000 + int64(trial))
		tr2, err := Open(pool)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k, v := range acked {
			got, ok := tr2.Find(k)
			if !ok || got != v {
				t.Fatalf("trial %d: acked key %d = %d,%v want %d", trial, k, got, ok, v)
			}
		}
	}
}

// TestScanRangeBoundaries checks scans starting exactly on, below and above
// existing keys, including the extremes.
func TestScanRangeBoundaries(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	for k := uint64(10); k <= 1000; k += 10 {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		from  uint64
		first uint64
	}{
		{0, 10}, {9, 10}, {10, 10}, {11, 20}, {995, 1000}, {1000, 1000},
	}
	for _, c := range cases {
		got := tr.ScanN(c.from, 1)
		if len(got) != 1 || got[0].Key != c.first {
			t.Fatalf("ScanN(%d) = %v, want first %d", c.from, got, c.first)
		}
	}
	if got := tr.ScanN(1001, 1); len(got) != 0 {
		t.Fatalf("scan past max returned %v", got)
	}
}

// TestLargeValuesVarTree stresses the var tree with values at the configured
// maximum and keys of wildly varying lengths.
func TestLargeValuesVarTree(t *testing.T) {
	tr := newVarTree(t, Config{LeafCap: 16, InnerFanout: 8, GroupSize: 4, ValueSize: 512})
	rng := rand.New(rand.NewSource(3))
	type rec struct{ k, v []byte }
	var recs []rec
	for i := 0; i < 400; i++ {
		k := make([]byte, rng.Intn(200)+1)
		rng.Read(k)
		v := make([]byte, 512)
		rng.Read(v)
		if _, dup := tr.Find(k); dup {
			continue
		}
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{k, v})
	}
	for _, r := range recs {
		got, ok := tr.Find(r.k)
		if !ok {
			t.Fatalf("key %x missing", r.k[:4])
		}
		for i := range r.v {
			if got[i] != r.v[i] {
				t.Fatalf("value mismatch at byte %d", i)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolExhaustion verifies graceful ErrOutOfMemory handling: the tree
// must stay consistent after failed inserts.
func TestPoolExhaustion(t *testing.T) {
	pool := scm.NewPool(1<<20, scm.LatencyConfig{CacheBytes: -1})
	tr, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var inserted uint64
	var failed bool
	for k := uint64(1); k <= 1_000_000; k++ {
		if err := tr.Insert(k, k); err != nil {
			failed = true
			break
		}
		inserted = k
	}
	if !failed {
		t.Fatal("pool never filled")
	}
	// Everything inserted before the failure must still be readable.
	for k := uint64(1); k <= inserted; k += 97 {
		if _, ok := tr.Find(k); !ok {
			t.Fatalf("key %d lost after OOM", k)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
