package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"fptree/internal/htm"
	"fptree/internal/obs"
	"fptree/internal/obs/trace"
	"fptree/internal/scm"
)

// engine is the one FPTree implementation. Everything the paper describes —
// fingerprint-filtered leaf search, unsorted leaves committed by a p-atomic
// bitmap, micro-logged splits and deletes, recovery, inner-node rebuild,
// scans — lives here exactly once, parameterized by a codec (fixed u64 keys
// vs. variable []byte keys, see codec.go) and a concurrency controller
// (single-threaded no-ops vs. speculative validated descent, see
// concurrency.go). Tree, VarTree, CTree and CVarTree are thin facades that
// pick a (codec, controller) pair.
//
// The DRAM inner structure is always the concurrent cInner node: with the
// no-op controller every validation succeeds on the first try, so the
// single-threaded trees pay only an atomic load per hop, and the four former
// forks cannot drift again.
type engine[K, V any] struct {
	pool *scm.Pool
	cfg  Config
	m    meta
	cdc  codec[K, V]
	cc   concurrency
	st   bool // single-threaded (cc is the no-op controller)
	sh   leafShape

	anchor htm.VersionLock
	root   atomic.Pointer[cInner[K]]

	splitQ  chan int // free split micro-log indices
	deleteQ chan int // free delete micro-log indices

	groups     groupAlloc // leaf-group management (single-threaded only)
	recovering bool       // true while micro-logs are being replayed
	recWorkers int        // leaf-scan goroutines during recovery (>= 1)

	// mut counts mutating operations on the single-threaded engines, where
	// leaf handles carry no usable version (the no-op controller never bumps
	// them). Iterators snapshot it to detect that anything at all changed
	// between steps and fall back to a re-seek from the cursor. Plain int:
	// the single-threaded trees are not safe for concurrent use by contract.
	mut uint64

	// Probes tracks in-leaf search work for the Figure 4 experiment. The
	// fields are plain integers and only maintained by the single-threaded
	// controller (tests reset them between runs).
	Probes ProbeStats
	// Ops counts in-leaf search and structure-modification events (atomic, so
	// shared across goroutines and metric scrapes).
	Ops OpStats
	// Stats counts optimistic aborts and restarts, mirroring TSX event
	// counters. Only the concurrent controller produces them.
	Stats htm.Stats

	// tr samples operations into latency-attribution spans; nil (default)
	// disables tracing. See SetTracer (trace.go).
	tr *trace.Tracer

	// ctrl adapts the retry budget and fallback entry to the live abort
	// ratio; nil (default) keeps the fixed htm.Backoff schedule. See
	// SetController (controller.go).
	ctrl *htm.AdaptiveController

	size atomic.Int64
}

func newEngine[K, V any](pool *scm.Pool, cfg Config, m meta, cdc codec[K, V], cc concurrency) *engine[K, V] {
	e := &engine[K, V]{pool: pool, cfg: cfg, m: m, cdc: cdc, cc: cc, st: !cc.concurrent(), sh: cdc.shape(), recWorkers: 1}
	e.groups.init(pool, m, e.sh.size, cfg.GroupSize)
	e.splitQ = make(chan int, cfg.NumLogs)
	e.deleteQ = make(chan int, cfg.NumLogs)
	for i := 0; i < cfg.NumLogs; i++ {
		e.splitQ <- i
		e.deleteQ <- i
	}
	e.root.Store(newCInner[K](e.maxKids(), true))
	return e
}

// checkConcurrentCfg rejects configurations the concurrent controller cannot
// run: the PTree variant has no concurrent implementation, and leaf groups
// are a central synchronization point that hinders scalability (§4.3), so
// they are forced off.
func checkConcurrentCfg(cc concurrency, cfg *Config) error {
	if !cc.concurrent() {
		return nil
	}
	if cfg.Variant != VariantFPTree {
		return fmt.Errorf("fptree: only the FPTree variant has a concurrent implementation")
	}
	cfg.GroupSize = 0
	return nil
}

func createEngine[K, V any](pool *scm.Pool, cfg Config, kind uint64, mk func(*scm.Pool, Config) codec[K, V], cc concurrency) (*engine[K, V], error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := checkConcurrentCfg(cc, &cfg); err != nil {
		return nil, err
	}
	if !pool.Root().IsNull() {
		return nil, fmt.Errorf("fptree: pool already contains a tree")
	}
	m, err := createMeta(pool, kind, cfg)
	if err != nil {
		return nil, err
	}
	return newEngine(pool, cfg, m, mk(pool, cfg), cc), nil
}

// openEngine recovers a tree from a pool that survived a crash or restart:
// it replays the allocator intent and every micro-log, runs the codec's leak
// scan, then rebuilds the DRAM-resident inner nodes and the volatile
// free-leaf vector (Algorithm 9). Leaf locks are "reset" by building fresh
// handles. rec selects the sequential or parallel leaf scan; either way the
// recovered arena is byte-identical (see RecoveryOptions).
func openEngine[K, V any](pool *scm.Pool, kind uint64, mk func(*scm.Pool, Config) codec[K, V], cc concurrency, rec RecoveryOptions) (*engine[K, V], error) {
	pool.Recover()
	m, cfg, err := openMeta(pool, kind)
	if err != nil {
		return nil, err
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := checkConcurrentCfg(cc, &cfg); err != nil {
		return nil, err
	}
	e := newEngine(pool, cfg, m, mk(pool, cfg), cc)
	e.recWorkers = rec.workers()
	e.recovering = true
	for i := 0; i < cfg.NumLogs; i++ {
		e.recoverSplit(m.splitLog(i))
		e.recoverDelete(m.deleteLog(i))
	}
	e.groups.recover()
	e.rebuild()
	e.recovering = false
	return e, nil
}

func fixedCodecOf(pool *scm.Pool, cfg Config) codec[uint64, uint64] { return newFixedCodec(pool, cfg) }
func varCodecOf(pool *scm.Pool, cfg Config) codec[[]byte, []byte]   { return newVarCodec(pool, cfg) }

// Pool returns the SCM pool backing the tree.
func (e *engine[K, V]) Pool() *scm.Pool { return e.pool }

// Len returns the number of live keys.
func (e *engine[K, V]) Len() int { return int(e.size.Load()) }

// Height returns the number of inner-node levels above the leaves (0 for an
// empty tree).
func (e *engine[K, V]) Height() int {
	n := e.root.Load()
	if n.cnt.Load() == 0 {
		return 0
	}
	h := 0
	for {
		h++
		if n.leafParent {
			return h
		}
		n = n.kids[0].Load()
	}
}

func (e *engine[K, V]) maxKids() int { return e.cfg.InnerFanout + 1 }

func (e *engine[K, V]) fullBitmap() uint64 {
	if e.sh.cap == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << e.sh.cap) - 1
}

// RegisterMetrics exposes the tree's operation counters on reg under the
// "fptree" prefix, plus the emulated-HTM concurrency counters under "htm"
// for the concurrent variants.
func (e *engine[K, V]) RegisterMetrics(reg *obs.Registry) {
	e.Ops.RegisterMetrics(reg, "fptree")
	if !e.st {
		e.Stats.RegisterMetrics(reg, "htm")
		if e.ctrl != nil {
			e.ctrl.RegisterMetrics(reg, "htm")
		}
	}
}

// --- leaf persistence helpers -----------------------------------------------

func (e *engine[K, V]) leafBitmap(leaf uint64) uint64 { return e.pool.ReadU64(leaf + e.sh.offBitmap) }
func (e *engine[K, V]) leafNext(leaf uint64) scm.PPtr { return e.pool.ReadPPtr(leaf + e.sh.offNext) }

// persistLeafHeader commits a new validity bitmap with one p-atomic 8-byte
// store + flush. Every bitmap write in the engine goes through here, so all
// variants get identical (and countable) flush behavior.
func (e *engine[K, V]) persistLeafHeader(leaf, bm uint64) {
	e.pool.WriteU64(leaf+e.sh.offBitmap, bm)
	e.pool.Persist(leaf+e.sh.offBitmap, 8)
}

func (e *engine[K, V]) setLeafNext(leaf uint64, p scm.PPtr) {
	e.pool.WritePPtr(leaf+e.sh.offNext, p)
	e.pool.Persist(leaf+e.sh.offNext, scm.PPtrSize)
}

// commitSlot makes slot valid: it writes the fingerprint and commits the new
// bitmap. When the fingerprint array and the bitmap share the leaf's first
// cache line (leafCap <= 56, the paper's default geometry), one flush + fence
// covers both: a torn crash commits 8-byte word prefixes of the line, and the
// bitmap is the line's last word, so a committed bitmap implies a committed
// fingerprint. When they do not share a line (leafCap 57..64), the
// fingerprint must be durable before the bitmap byte is even written —
// a torn crash commits prefixes of all dirty lines independently, so having
// both lines dirty at once could expose a valid bit with a stale fingerprint.
func (e *engine[K, V]) commitSlot(leaf uint64, slot int, key K, bm uint64) {
	if !e.sh.hasFP {
		e.persistLeafHeader(leaf, bm)
		return
	}
	e.pool.WriteU8(leaf+uint64(slot), e.cdc.fingerprint(key))
	if e.sh.offBitmap+8 <= scm.LineSize {
		e.pool.WriteU64(leaf+e.sh.offBitmap, bm)
		e.pool.Persist(leaf+uint64(slot), e.sh.offBitmap+8-uint64(slot))
		return
	}
	e.pool.Persist(leaf+uint64(slot), 1)
	e.persistLeafHeader(leaf, bm)
}

// findInLeaf is the fingerprint-filtered leaf search of Section 4.2. The
// fingerprint array and the validity bitmap are read in ONE batched header
// load (the forks used to re-read the bitmap word separately on every
// probe); only keys whose fingerprint matches are dereferenced. It returns
// the slot, the bitmap it observed (so callers do not re-read it), and
// whether the key was found.
func (e *engine[K, V]) findInLeaf(leaf uint64, key K) (int, uint64, bool) {
	if e.st {
		e.Probes.Searches++
	}
	if !e.sh.hasFP {
		// PTree variant: plain linear scan over the valid keys.
		bm := e.leafBitmap(leaf)
		slot, probes := -1, uint64(0)
		for s := 0; s < e.sh.cap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			probes++
			if e.cdc.slotKeyEquals(leaf, s, key) {
				slot = s
				break
			}
		}
		if e.st {
			e.Probes.KeyProbes += probes
		}
		e.Ops.noteSearch(0, 0, 0, probes)
		return slot, bm, slot >= 0
	}
	var hdr [MaxLeafCap + 16]byte
	h := hdr[:e.sh.offBitmap+8]
	e.pool.ReadInto(leaf, h)
	bm := binary.LittleEndian.Uint64(h[e.sh.offBitmap:])
	fp := e.cdc.fingerprint(key)
	if e.st {
		e.Probes.FPScans += uint64(e.sh.cap)
	}
	slot := -1
	var compares, hits, falsePos uint64
	for s := 0; s < e.sh.cap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		compares++
		if h[s] != fp {
			continue
		}
		hits++
		if e.cdc.slotKeyEquals(leaf, s, key) {
			slot = s
			break
		}
		falsePos++
	}
	if e.st {
		e.Probes.KeyProbes += hits
	}
	e.Ops.noteSearch(compares, hits, falsePos, hits)
	return slot, bm, slot >= 0
}

// insertIntoLeaf writes (key, value) into the first free slot and commits
// with the p-atomic bitmap store (Algorithm 2 lines 12-15 / Algorithm 14
// lines 12-18). A crash before the bitmap flush leaves the insert invisible;
// after it, complete.
func (e *engine[K, V]) insertIntoLeaf(leaf, bm uint64, key K, value V) error {
	slot := bits.TrailingZeros64(^bm)
	if err := e.cdc.writeSlot(leaf, slot, key, value); err != nil {
		return err
	}
	e.commitSlot(leaf, slot, key, bm|(1<<slot))
	return nil
}

// --- optimistic descent -------------------------------------------------------

// descend walks to the leaf covering key (Figure 6: the traversal is the
// HTM-transaction part; with the no-op controller it degenerates to a plain
// B-tree descent). On success it returns the version snapshot of the leaf
// parent, the child index and the leaf handle; ok=false means a conflict was
// observed and the caller must restart. ref==nil means the tree is empty.
func (e *engine[K, V]) descend(key K) (n *cInner[K], ver uint64, idx int, ref *leafRef, ok bool) {
	av := e.cc.readBegin(&e.anchor)
	n = e.root.Load()
	ver = e.cc.readBegin(&n.lock)
	if !e.cc.validate(&e.anchor, av) {
		return nil, 0, 0, nil, false
	}
	for {
		i, sok := n.search(key, e.cdc.less)
		if !sok || !e.cc.validate(&n.lock, ver) {
			return nil, 0, 0, nil, false
		}
		if n.leafParent {
			if n.cnt.Load() == 0 {
				return n, ver, 0, nil, true // empty tree
			}
			r := n.leaves[i].Load()
			if r == nil || !e.cc.validate(&n.lock, ver) {
				return nil, 0, 0, nil, false
			}
			return n, ver, i, r, true
		}
		child := n.kids[i].Load()
		if child == nil || !e.cc.validate(&n.lock, ver) {
			return nil, 0, 0, nil, false
		}
		cver := e.cc.readBegin(&child.lock)
		if !e.cc.validate(&n.lock, ver) {
			return nil, 0, 0, nil, false
		}
		n, ver = child, cver
	}
}

// noteMutation invalidates resting single-threaded iterators (conservative:
// an Update/Delete that ends up a no-op still bumps, which only costs those
// iterators one redundant re-seek).
func (e *engine[K, V]) noteMutation() {
	if e.st {
		e.mut++
	}
}

// findLeafRef retries descend until it succeeds and returns the leaf handle
// (nil for an empty tree). Used by invariant checks and the single-threaded
// scan, where the no-op controller guarantees the first try succeeds.
func (e *engine[K, V]) findLeafRef(key K) *leafRef {
	for attempt := 0; ; attempt++ {
		_, _, _, ref, ok := e.descend(key)
		if ok {
			return ref
		}
		e.abortc(htm.AbortDescend, nil, attempt)
	}
}

// --- base operations ----------------------------------------------------------

// Find returns the value stored under key (Algorithm 1). The leaf is read
// under its shared lock; a locked or concurrently modified path aborts and
// retries, as a TSX conflict would.
func (e *engine[K, V]) Find(key K) (V, bool) {
	sp := e.tr.Start(trace.OpFind)
	v, found := e.findT(key, sp)
	sp.Finish()
	e.opDone()
	return v, found
}

func (e *engine[K, V]) findT(key K, sp *trace.Span) (V, bool) {
	var zero V
	for attempt := 0; ; attempt++ {
		sp.Enter(trace.PhaseDescend)
		n, ver, _, ref, ok := e.descend(key)
		if !ok {
			e.abortc(htm.AbortDescend, sp, attempt)
			continue
		}
		if ref == nil {
			return zero, false // empty tree
		}
		if !e.cc.tryRLockLeaf(ref) {
			e.abortc(htm.AbortLeafLock, sp, attempt)
			continue
		}
		if !e.cc.validate(&n.lock, ver) {
			e.cc.rUnlockLeaf(ref)
			e.abortc(htm.AbortPostLock, sp, attempt)
			continue
		}
		sp.Enter(trace.PhaseLeaf)
		s, _, found := e.findInLeaf(ref.off, key)
		var v V
		if found {
			v = e.cdc.slotValue(ref.off, s)
		}
		e.cc.rUnlockLeaf(ref)
		return v, found
	}
}

// Insert adds a key-value pair (Algorithm 2 / 14). Keys are assumed unique,
// as in the paper; inserting an existing key creates a duplicate entry (use
// Upsert for update-or-insert semantics). The fast path locks only the leaf;
// a split performs the persistent work outside any inner-node lock and then
// re-descends pessimistically to update the parents.
func (e *engine[K, V]) Insert(key K, value V) error {
	sp := e.tr.Start(trace.OpInsert)
	err := e.insertT(key, value, sp)
	sp.Finish()
	e.opDone()
	return err
}

func (e *engine[K, V]) insertT(key K, value V, sp *trace.Span) error {
	if err := e.cdc.validateKey(key); err != nil {
		return err
	}
	e.noteMutation()
	fb := false
	defer e.releaseFallback(&fb)
	for attempt := 0; ; attempt++ {
		e.maybeFallback(attempt, &fb)
		sp.Enter(trace.PhaseDescend)
		n, ver, _, ref, ok := e.descend(key)
		if !ok {
			e.abortc(htm.AbortDescend, sp, attempt)
			continue
		}
		if ref == nil {
			sp.Enter(trace.PhaseSMO)
			if err := e.firstLeaf(n); err != nil {
				return err
			}
			continue
		}
		if !e.lockLeafCC(ref, fb) {
			e.abortc(htm.AbortLeafLock, sp, attempt)
			continue
		}
		if ref.dead.Load() || !e.cc.validate(&n.lock, ver) {
			e.cc.unlockLeaf(ref)
			e.abortc(htm.AbortPostLock, sp, attempt)
			continue
		}
		sp.Enter(trace.PhaseLeaf)
		bm := e.leafBitmap(ref.off)
		if bm != e.fullBitmap() {
			err := e.insertIntoLeaf(ref.off, bm, key, value)
			e.cc.unlockLeaf(ref)
			if err != nil {
				return err
			}
			e.size.Add(1)
			return nil
		}
		// Split: persistent part first (outside any inner lock), then the
		// parent update in a pessimistic SMO descent.
		sp.Enter(trace.PhaseSMO)
		splitKey, newRef, err := e.splitLeaf(ref)
		if err != nil {
			e.cc.unlockLeaf(ref)
			return err
		}
		e.insertSMO(splitKey, ref, newRef)
		target := ref
		if e.cdc.less(splitKey, key) {
			target = newRef
		}
		sp.Enter(trace.PhaseLeaf)
		err = e.insertIntoLeaf(target.off, e.leafBitmap(target.off), key, value)
		e.cc.unlockLeaf(ref)
		e.cc.unlockLeaf(newRef)
		if err != nil {
			return err
		}
		e.size.Add(1)
		return nil
	}
}

// firstLeaf materializes the head leaf of an empty tree under the root lock.
func (e *engine[K, V]) firstLeaf(root *cInner[K]) error {
	e.cc.lockNode(&e.anchor)
	r := e.root.Load()
	e.cc.lockNode(&r.lock)
	if r != root || r.cnt.Load() != 0 {
		e.cc.unlockNodeNoBump(&r.lock)
		e.cc.unlockNodeNoBump(&e.anchor)
		return nil // someone else created it; retry the insert
	}
	var off uint64
	if e.groups.enabled() {
		o, err := e.groups.getLeaf()
		if err != nil {
			e.cc.unlockNodeNoBump(&r.lock)
			e.cc.unlockNodeNoBump(&e.anchor)
			return err
		}
		e.m.setHeadLeaf(scm.PPtr{ArenaID: e.pool.ID(), Offset: o})
		off = o
	} else {
		ptr, err := e.pool.Alloc(e.m.base+mOffHeadLeaf, e.sh.size)
		if err != nil {
			e.cc.unlockNodeNoBump(&r.lock)
			e.cc.unlockNodeNoBump(&e.anchor)
			return err
		}
		off = ptr.Offset
	}
	r.leaves[0].Store(&leafRef{off: off})
	r.cnt.Store(1)
	e.cc.unlockNode(&r.lock)
	e.cc.unlockNodeNoBump(&e.anchor)
	return nil
}

// splitLeaf is Algorithm 3 under a split micro-log drawn from the free
// queue, so RecoverSplit can finish or discard the operation from any crash
// point. The new leaf comes from the leaf groups when enabled (§4.3,
// single-threaded only) or straight from the persistent allocator. The new
// leaf's handle is born write-locked; the caller publishes it to the parents
// and unlocks both halves.
func (e *engine[K, V]) splitLeaf(ref *leafRef) (K, *leafRef, error) {
	var zero K
	li := <-e.splitQ
	log := e.m.splitLog(li)
	log.setA(scm.PPtr{ArenaID: e.pool.ID(), Offset: ref.off})
	if e.groups.enabled() {
		off, gerr := e.groups.getLeaf()
		if gerr != nil {
			log.reset()
			e.splitQ <- li
			return zero, nil, gerr
		}
		log.setB(scm.PPtr{ArenaID: e.pool.ID(), Offset: off})
	} else {
		if _, aerr := e.pool.Alloc(log.bOff(), e.sh.size); aerr != nil {
			log.reset()
			e.splitQ <- li
			return zero, nil, aerr
		}
	}
	newOff := log.b().Offset
	splitKey := e.completeSplit(ref.off, newOff)
	log.reset()
	e.splitQ <- li
	e.Ops.LeafSplits.Add(1)
	newRef := &leafRef{off: newOff}
	e.cc.lockLeaf(newRef)
	return splitKey, newRef, nil
}

// completeSplit performs lines 6-14 of Algorithm 3; recovery re-enters it.
func (e *engine[K, V]) completeSplit(leaf, newLeaf uint64) K {
	// Copy the full leaf content (including the next pointer: the new leaf
	// becomes the right neighbor).
	buf := e.pool.ReadBytes(leaf, e.sh.size)
	e.pool.WriteBytes(newLeaf, buf)
	e.pool.Persist(newLeaf, e.sh.size)

	splitKey, newBm := e.findSplitKey(leaf)
	e.persistLeafHeader(newLeaf, newBm)
	e.persistLeafHeader(leaf, e.fullBitmap()&^newBm)
	e.cdc.afterSplitBitmaps(leaf, newLeaf)
	e.setLeafNext(leaf, scm.PPtr{ArenaID: e.pool.ID(), Offset: newLeaf})
	return splitKey
}

// findSplitKey picks the median key of a full leaf: the returned splitKey is
// the greatest key that stays in the left (original) leaf, and the returned
// bitmap marks the slots that move to the new right leaf. Scratch is
// function-local so concurrent splits do not share state (the old
// single-threaded forks reused per-tree buffers; not worth a type split).
func (e *engine[K, V]) findSplitKey(leaf uint64) (K, uint64) {
	m := e.sh.cap
	keys := make([]K, m)
	idxs := make([]int, m)
	for s := 0; s < m; s++ {
		keys[s] = e.cdc.slotKey(leaf, s)
		idxs[s] = s
	}
	sort.Slice(idxs, func(i, j int) bool { return e.cdc.less(keys[idxs[i]], keys[idxs[j]]) })
	keep := (m + 1) / 2
	splitKey := keys[idxs[keep-1]]
	var newBm uint64
	for _, s := range idxs[keep:] {
		newBm |= 1 << s
	}
	return splitKey, newBm
}

// insertSMO inserts (splitKey, newRef) into the leaf parent covering the
// locked leaf oldRef, splitting full nodes preemptively on the way down with
// lock crabbing. Because oldRef stays locked for the whole operation, the
// leaf's key range cannot change and the descent deterministically lands on
// its parent.
func (e *engine[K, V]) insertSMO(splitKey K, oldRef, newRef *leafRef) {
	e.cc.lockNode(&e.anchor)
	cur := e.root.Load()
	e.cc.lockNode(&cur.lock)
	if cur.full() {
		up, right := cur.splitNode()
		nr := newCInner[K](e.maxKids(), false)
		nr.kids[0].Store(cur)
		nr.kids[1].Store(right)
		nr.keys[0].Store(&up)
		nr.cnt.Store(2)
		e.root.Store(nr)
		e.cc.unlockNode(&e.anchor)
		if e.cdc.less(up, splitKey) {
			e.cc.unlockNode(&cur.lock)
			cur = right
			e.cc.lockNode(&cur.lock) // fresh node: no contention
		}
	} else {
		e.cc.unlockNodeNoBump(&e.anchor)
	}
	for !cur.leafParent {
		i, _ := cur.search(splitKey, e.cdc.less)
		child := cur.kids[i].Load()
		e.cc.lockNode(&child.lock)
		if child.full() {
			up, right := child.splitNode()
			cur.insertAt(i, up, right, nil, e.st)
			if e.cdc.less(up, splitKey) {
				e.cc.unlockNode(&child.lock)
				child = right
				e.cc.lockNode(&child.lock)
			}
		}
		e.cc.unlockNode(&cur.lock)
		cur = child
	}
	i, _ := cur.search(splitKey, e.cdc.less)
	if got := cur.leaves[i].Load(); got != oldRef {
		panic("fptree: SMO descent lost the split leaf")
	}
	cur.insertAt(i, splitKey, nil, newRef, e.st)
	e.cc.unlockNode(&cur.lock)
}

// Update is Algorithm 8 / 16: the new pair is written to a free slot and both
// the removal of the old slot and the insertion of the new one commit with
// one p-atomic bitmap write. Returns false if the key is absent.
func (e *engine[K, V]) Update(key K, value V) (bool, error) {
	sp := e.tr.Start(trace.OpUpdate)
	ok, err := e.updateT(key, value, sp)
	sp.Finish()
	e.opDone()
	return ok, err
}

func (e *engine[K, V]) updateT(key K, value V, sp *trace.Span) (bool, error) {
	e.noteMutation()
	fb := false
	defer e.releaseFallback(&fb)
	for attempt := 0; ; attempt++ {
		e.maybeFallback(attempt, &fb)
		sp.Enter(trace.PhaseDescend)
		n, ver, _, ref, ok := e.descend(key)
		if !ok {
			e.abortc(htm.AbortDescend, sp, attempt)
			continue
		}
		if ref == nil {
			return false, nil
		}
		if !e.lockLeafCC(ref, fb) {
			e.abortc(htm.AbortLeafLock, sp, attempt)
			continue
		}
		if ref.dead.Load() || !e.cc.validate(&n.lock, ver) {
			e.cc.unlockLeaf(ref)
			e.abortc(htm.AbortPostLock, sp, attempt)
			continue
		}
		sp.Enter(trace.PhaseLeaf)
		prev, bm, found := e.findInLeaf(ref.off, key)
		if !found {
			e.cc.unlockLeaf(ref)
			return false, nil
		}
		target := ref
		var newRef *leafRef
		if bm == e.fullBitmap() {
			sp.Enter(trace.PhaseSMO)
			splitKey, nr, err := e.splitLeaf(ref)
			if err != nil {
				e.cc.unlockLeaf(ref)
				return false, err
			}
			newRef = nr
			e.insertSMO(splitKey, ref, newRef)
			if e.cdc.less(splitKey, key) {
				target = newRef
			}
			sp.Enter(trace.PhaseLeaf)
			prev, bm, _ = e.findInLeaf(target.off, key)
		}
		slot := bits.TrailingZeros64(^bm)
		e.cdc.moveSlot(target.off, slot, prev, key, value)
		e.commitSlot(target.off, slot, key, bm&^(1<<prev)|(1<<slot))
		e.cdc.afterUpdate(target.off, prev)
		e.cc.unlockLeaf(ref)
		if newRef != nil {
			e.cc.unlockLeaf(newRef)
		}
		return true, nil
	}
}

// Upsert inserts the pair or updates it in place when the key exists. One
// span covers both halves, so a traced upsert attributes its update probe
// and its insert under a single OpUpsert record.
func (e *engine[K, V]) Upsert(key K, value V) error {
	sp := e.tr.Start(trace.OpUpsert)
	ok, err := e.updateT(key, value, sp)
	if err == nil && !ok {
		err = e.insertT(key, value, sp)
	}
	sp.Finish()
	e.opDone()
	return err
}

// Delete removes key (Algorithm 5 / 15): the bitmap flip hides the slot,
// then per-slot key storage is released. Removing a leaf's last key unlinks
// and deallocates the leaf under a delete micro-log. (The old fixed-key fork
// skipped the bitmap flip on the last-key path; flipping first costs one
// flush but keeps one code path, and recovery prunes empty leaves either
// way.) The single-threaded controller always finds the left neighbor; the
// concurrent one only takes it when it is adjacent in the same parent (or
// the leaf is the list head) — the cross-subtree neighbor hunt is not worth
// its locks, so the empty leaf stays linked and recovery reclaims it.
func (e *engine[K, V]) Delete(key K) (bool, error) {
	sp := e.tr.Start(trace.OpDelete)
	ok, err := e.deleteT(key, sp)
	sp.Finish()
	e.opDone()
	return ok, err
}

func (e *engine[K, V]) deleteT(key K, sp *trace.Span) (bool, error) {
	e.noteMutation()
	fb := false
	defer e.releaseFallback(&fb)
	for attempt := 0; ; attempt++ {
		e.maybeFallback(attempt, &fb)
		sp.Enter(trace.PhaseDescend)
		n, ver, _, ref, ok := e.descend(key)
		if !ok {
			e.abortc(htm.AbortDescend, sp, attempt)
			continue
		}
		if ref == nil {
			return false, nil
		}
		if !e.lockLeafCC(ref, fb) {
			e.abortc(htm.AbortLeafLock, sp, attempt)
			continue
		}
		if ref.dead.Load() || !e.cc.validate(&n.lock, ver) {
			e.cc.unlockLeaf(ref)
			e.abortc(htm.AbortPostLock, sp, attempt)
			continue
		}
		sp.Enter(trace.PhaseLeaf)
		slot, bm, found := e.findInLeaf(ref.off, key)
		if !found {
			e.cc.unlockLeaf(ref)
			return false, nil
		}
		rest := bm &^ (1 << slot)
		e.persistLeafHeader(ref.off, rest)
		e.cdc.releaseSlotKey(ref.off, slot)
		if rest == 0 {
			// Last key: try to remove the whole leaf.
			sp.Enter(trace.PhaseSMO)
			if !e.deleteSMO(key, ref) {
				e.cc.unlockLeaf(ref) // leaf stays empty but linked
			}
		} else {
			e.cc.unlockLeaf(ref)
		}
		e.size.Add(-1)
		return true, nil
	}
}

// deleteSMO removes the locked, empty leaf from the tree: pessimistic
// crabbing descent, removal from the leaf parent (pruning emptied ancestors
// and collapsing the root), then the persistent unlink and deallocation
// under a delete micro-log (Algorithm 6). Returns false when the leaf must
// stay (left neighbor unavailable — concurrent controller only).
func (e *engine[K, V]) deleteSMO(key K, ref *leafRef) bool {
	e.cc.lockNode(&e.anchor)
	anchorHeld := true
	root := e.root.Load()
	e.cc.lockNode(&root.lock)
	stack := []*cInner[K]{root}
	bail := func() {
		for _, nd := range stack {
			e.cc.unlockNodeNoBump(&nd.lock)
		}
		if anchorHeld {
			e.cc.unlockNodeNoBump(&e.anchor)
		}
	}
	cur := root
	if cur.leafParent || cur.cnt.Load() > 2 {
		e.cc.unlockNodeNoBump(&e.anchor)
		anchorHeld = false
	}
	for !cur.leafParent {
		i, _ := cur.search(key, e.cdc.less)
		child := cur.kids[i].Load()
		e.cc.lockNode(&child.lock)
		stack = append(stack, child)
		if child.cnt.Load() >= 2 {
			// Safe: removal below cannot empty this child; release ancestors.
			for _, nd := range stack[:len(stack)-1] {
				e.cc.unlockNodeNoBump(&nd.lock)
			}
			if anchorHeld {
				e.cc.unlockNodeNoBump(&e.anchor)
				anchorHeld = false
			}
			stack = stack[len(stack)-1:]
		}
		cur = child
	}
	i, _ := cur.search(key, e.cdc.less)
	if got := cur.leaves[i].Load(); got != ref {
		panic("fptree: delete SMO descent lost the leaf")
	}
	isHead := e.m.headLeaf().Offset == ref.off
	var prevRef *leafRef
	if !isHead {
		switch {
		case i > 0:
			prevRef = cur.leaves[i-1].Load()
			if !e.cc.tryLockLeaf(prevRef) {
				bail()
				return false
			}
		case e.st:
			// Single-threaded: the left neighbor lives in another subtree.
			// Hunt it down the rightmost spine of the nearest left sibling
			// (free of locks here) so empty leaves never linger.
			prevRef = e.prevLeafRef(key)
		}
		if prevRef == nil {
			bail() // leftmost in parent and not list head: leave it linked
			return false
		}
	}
	// DRAM removal: prune emptied nodes bottom-up along the locked chain.
	cur.removeAt(i, e.st)
	modified := len(stack) - 1
	for level := len(stack) - 1; level > 0 && stack[level].cnt.Load() == 0; level-- {
		parent := stack[level-1]
		j, _ := parent.search(key, e.cdc.less)
		parent.removeAt(j, e.st)
		modified = level - 1
	}
	// Root collapse: keep the height minimal.
	rootSwapped := false
	if anchorHeld {
		r := stack[0]
		for !r.leafParent && r.cnt.Load() == 1 {
			r = r.kids[0].Load()
			e.root.Store(r)
			rootSwapped = true
		}
	}
	for i, nd := range stack {
		if i >= modified {
			e.cc.unlockNode(&nd.lock)
		} else {
			e.cc.unlockNodeNoBump(&nd.lock)
		}
	}
	if anchorHeld {
		if rootSwapped {
			e.cc.unlockNode(&e.anchor)
		} else {
			e.cc.unlockNodeNoBump(&e.anchor)
		}
	}

	// Persistent unlink + deallocation (Algorithm 6).
	var prevOff uint64
	if prevRef != nil {
		prevOff = prevRef.off
	}
	e.unlinkLeaf(ref.off, prevOff, ref)
	if prevRef != nil {
		e.cc.unlockLeaf(prevRef)
	}
	return true
}

// prevLeafRef finds the left neighbor of the leaf covering key by descending
// the rightmost spine of the nearest left sibling subtree. Single-threaded
// only (no locks are taken); returns nil when the leaf is the list head.
func (e *engine[K, V]) prevLeafRef(key K) *leafRef {
	var cand *cInner[K]
	candIdx := 0
	n := e.root.Load()
	for {
		i, _ := n.search(key, e.cdc.less)
		if i > 0 {
			cand, candIdx = n, i
		}
		if n.leafParent {
			break
		}
		n = n.kids[i].Load()
	}
	if cand == nil {
		return nil
	}
	if cand.leafParent {
		return cand.leaves[candIdx-1].Load()
	}
	n = cand.kids[candIdx-1].Load()
	for !n.leafParent {
		n = n.kids[int(n.cnt.Load())-1].Load()
	}
	return n.leaves[int(n.cnt.Load())-1].Load()
}

// unlinkLeaf removes leaf from the persistent list under a delete micro-log
// and releases its storage (Algorithm 6). prev is ignored when leaf is the
// list head. ref may be nil during recovery (no live handle exists yet).
func (e *engine[K, V]) unlinkLeaf(leaf, prev uint64, ref *leafRef) {
	li := <-e.deleteQ
	log := e.m.deleteLog(li)
	log.setA(scm.PPtr{ArenaID: e.pool.ID(), Offset: leaf})
	if e.m.headLeaf().Offset == leaf {
		e.m.setHeadLeaf(e.leafNext(leaf))
	} else {
		log.setB(scm.PPtr{ArenaID: e.pool.ID(), Offset: prev})
		e.setLeafNext(prev, e.leafNext(leaf))
	}
	if ref != nil {
		ref.dead.Store(true) // handle stays locked forever; stale readers bounce
	}
	e.releaseLeaf(log)
	log.reset()
	e.deleteQ <- li
}

// releaseLeaf hands the unlinked leaf in log.a back to its owner: the leaf
// groups, or the persistent allocator via the micro-log cell (which nulls
// it). During micro-log replay the group bookkeeping is still volatile-empty,
// so a grouped leaf is simply left for rebuildFreeVector to reclassify as
// free (it is no longer reachable from the leaf list).
func (e *engine[K, V]) releaseLeaf(log mlog) {
	if e.groups.enabled() {
		if !e.recovering {
			e.groups.freeLeaf(log.a().Offset)
		}
		return
	}
	e.pool.Free(log.aOff(), e.sh.size)
}

// --- scans --------------------------------------------------------------------

// scan visits live pairs with key >= from in ascending key order until fn
// returns false. Leaves are unsorted, so each visited leaf is sorted in DRAM
// before emission. The single-threaded engine chases the persistent next
// pointers (Figure 2); the concurrent one must not (a concurrently
// deallocated leaf could be reused under the reader), so it seeks leaf by
// leaf through the inner nodes, using the separators as upper bounds.
func (e *engine[K, V]) scan(from K, fn func(K, V) bool) {
	sp := e.tr.Start(trace.OpScan)
	if e.st {
		e.scanChase(from, fn, sp)
	} else {
		e.scanSeek(from, fn, sp)
	}
	sp.Finish()
	e.opDone()
}

type kvPair[K, V any] struct {
	k K
	v V
}

// sortPairs orders a leaf batch ascending. slices.SortFunc compiles to a
// monomorphic sort (sort.Slice reflects on every swap and allocates its
// closure header per leaf — measurable on scan-heavy workloads).
func (e *engine[K, V]) sortPairs(batch []kvPair[K, V]) {
	less := e.cdc.less
	slices.SortFunc(batch, func(a, b kvPair[K, V]) int {
		switch {
		case less(a.k, b.k):
			return -1
		case less(b.k, a.k):
			return 1
		}
		return 0
	})
}

func (e *engine[K, V]) scanChase(from K, fn func(K, V) bool, sp *trace.Span) {
	sp.Enter(trace.PhaseDescend)
	ref := e.findLeafRef(from)
	if ref == nil {
		return
	}
	sp.Enter(trace.PhaseLeaf)
	leaf := ref.off
	batch := make([]kvPair[K, V], 0, e.sh.cap)
	for {
		bm := e.leafBitmap(leaf)
		batch = batch[:0]
		for s := 0; s < e.sh.cap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := e.cdc.slotKey(leaf, s)
			if !e.cdc.less(k, from) {
				batch = append(batch, kvPair[K, V]{k, e.cdc.slotValue(leaf, s)})
			}
		}
		e.sortPairs(batch)
		for _, kv := range batch {
			if !fn(kv.k, kv.v) {
				return
			}
		}
		next := e.leafNext(leaf)
		if next.IsNull() {
			return
		}
		leaf = next.Offset
	}
}

func (e *engine[K, V]) scanSeek(from K, fn func(K, V) bool, sp *trace.Span) {
	cur := from
	batch := make([]kvPair[K, V], 0, e.sh.cap)
	attempt := 0 // consecutive aborts at the current position; resets per leaf
	for {
		batch = batch[:0]
		var ub K
		haveUB := false
		sp.Enter(trace.PhaseDescend)
		ok := func() bool {
			n, ver, _, ref, dok := e.descendUB(cur, &ub, &haveUB)
			if !dok {
				return false
			}
			if ref == nil {
				return true // empty tree
			}
			if !e.cc.tryRLockLeaf(ref) {
				return false
			}
			if !e.cc.validate(&n.lock, ver) {
				e.cc.rUnlockLeaf(ref)
				return false
			}
			sp.Enter(trace.PhaseLeaf)
			bm := e.leafBitmap(ref.off)
			for s := 0; s < e.sh.cap; s++ {
				if bm&(1<<s) == 0 {
					continue
				}
				k := e.cdc.slotKey(ref.off, s)
				if !e.cdc.less(k, cur) {
					batch = append(batch, kvPair[K, V]{k, e.cdc.slotValue(ref.off, s)})
				}
			}
			e.cc.rUnlockLeaf(ref)
			return true
		}()
		if !ok {
			e.abortc(htm.AbortIter, sp, attempt)
			attempt++
			continue
		}
		attempt = 0
		e.sortPairs(batch)
		for _, kv := range batch {
			if !fn(kv.k, kv.v) {
				return
			}
		}
		if !haveUB {
			return // rightmost leaf done
		}
		// Seek to the smallest key strictly greater than the separator. (The
		// old fixed fork used MaxUint64 as an in-band "no bound" sentinel and
		// ub+1, which wrapped for keys at the top of the range; haveUB +
		// nextAfter handles both codecs without a sentinel.)
		next, nok := e.cdc.nextAfter(ub)
		if !nok {
			return
		}
		cur = next
	}
}

// descendUB is descend plus tracking of the tightest right-hand separator on
// the path: the reached leaf covers no key greater than *ub (when *haveUB).
func (e *engine[K, V]) descendUB(key K, ub *K, haveUB *bool) (n *cInner[K], ver uint64, idx int, ref *leafRef, ok bool) {
	av := e.cc.readBegin(&e.anchor)
	n = e.root.Load()
	ver = e.cc.readBegin(&n.lock)
	if !e.cc.validate(&e.anchor, av) {
		return nil, 0, 0, nil, false
	}
	*haveUB = false
	for {
		i, sok := n.search(key, e.cdc.less)
		if !sok {
			return nil, 0, 0, nil, false
		}
		if i < int(n.cnt.Load())-1 {
			kp := n.keys[i].Load()
			if kp == nil {
				return nil, 0, 0, nil, false
			}
			if !*haveUB || e.cdc.less(*kp, *ub) {
				*ub = *kp
				*haveUB = true
			}
		}
		if !e.cc.validate(&n.lock, ver) {
			return nil, 0, 0, nil, false
		}
		if n.leafParent {
			if n.cnt.Load() == 0 {
				return n, ver, 0, nil, true
			}
			r := n.leaves[i].Load()
			if r == nil || !e.cc.validate(&n.lock, ver) {
				return nil, 0, 0, nil, false
			}
			return n, ver, i, r, true
		}
		child := n.kids[i].Load()
		if child == nil || !e.cc.validate(&n.lock, ver) {
			return nil, 0, 0, nil, false
		}
		cver := e.cc.readBegin(&child.lock)
		if !e.cc.validate(&n.lock, ver) {
			return nil, 0, 0, nil, false
		}
		n, ver = child, cver
	}
}

// --- recovery -----------------------------------------------------------------

// recoverSplit is Algorithm 4.
func (e *engine[K, V]) recoverSplit(log mlog) {
	a, b := log.a(), log.b()
	if a.IsNull() || b.IsNull() {
		// Crashed before the new leaf was durably obtained: the allocator
		// intent has already been rolled back (or the group leaf stays in the
		// free vector); discard.
		if !a.IsNull() || !b.IsNull() {
			log.reset()
		}
		return
	}
	if e.leafBitmap(a.Offset) == e.fullBitmap() {
		// Crashed before line 11 (the split leaf's bitmap update): redo the
		// whole copy phase.
		e.completeSplit(a.Offset, b.Offset)
	} else {
		// Crashed at or after line 11: recompute the idempotent tail.
		e.persistLeafHeader(a.Offset, e.fullBitmap()&^e.leafBitmap(b.Offset))
		e.cdc.afterSplitBitmaps(a.Offset, b.Offset)
		e.setLeafNext(a.Offset, b)
	}
	log.reset()
}

// recoverDelete is Algorithm 7.
func (e *engine[K, V]) recoverDelete(log mlog) {
	a, b := log.a(), log.b()
	if a.IsNull() {
		if !b.IsNull() {
			log.reset()
		}
		return
	}
	head := e.m.headLeaf()
	switch {
	case !b.IsNull():
		// Crashed between the prev-link update and deallocation: redo both.
		e.setLeafNext(b.Offset, e.leafNext(a.Offset))
		e.releaseLeaf(log)
	case a == head:
		// Crashed before the head pointer moved.
		e.m.setHeadLeaf(e.leafNext(a.Offset))
		e.releaseLeaf(log)
	case e.leafNext(a.Offset) == head:
		// Head already moved; only the deallocation is missing.
		e.releaseLeaf(log)
	default:
		// Only the micro-log itself was written: nothing durable changed.
	}
	log.reset()
}

// rebuild reconstructs the DRAM inner nodes by walking the persistent leaf
// list (Algorithm 9, RebuildInnerNodes). Leaves emptied by an interrupted
// delete are unlinked on the way — a crash can leave an empty leaf in the
// list, and separators for empty leaves would be meaningless. With more than
// one recovery worker the leaf scan is parallelized (recovery.go); the
// durable repairs are sequential in either mode, so both produce the same
// arena bytes.
func (e *engine[K, V]) rebuild() {
	start := time.Now()
	var leaves []uint64
	var maxKeys []K
	var size int
	if e.recWorkers > 1 {
		leaves, maxKeys, size = e.collectLeavesParallel(e.recWorkers)
	} else {
		leaves, maxKeys, size = e.collectLeaves()
	}
	e.size.Store(int64(size))
	e.root.Store(buildInnerW(leaves, maxKeys, e.maxKids(), e.recWorkers))
	e.groups.rebuildFreeVector(leaves)
	e.sanitizeFreeLeaves()
	if e.groups.enabled() {
		for p := e.m.headGroup(); !p.IsNull(); p = e.groups.groupNext(p.Offset) {
			e.Ops.RecoveryGroups.Add(1)
		}
	}
	e.Ops.InnerRebuilds.Add(1)
	e.Ops.RecoveryNanos.Store(uint64(time.Since(start).Nanoseconds()))
}

// collectLeaves walks the persistent leaf list, running the codec's leak
// scan (Algorithm 17; a no-op for fixed keys) on every leaf, pruning leaves
// emptied by an interrupted delete, and returning the live leaves with their
// max keys.
func (e *engine[K, V]) collectLeaves() (leaves []uint64, maxKeys []K, size int) {
	prev := uint64(0)
	for p := e.m.headLeaf(); !p.IsNull(); {
		leaf := p.Offset
		next := e.leafNext(leaf)
		e.Ops.RecoveryLeaves.Add(1)
		mk, n, leaks := e.cdc.scanLeaf(leaf)
		e.cdc.applyLeaks(leaf, leaks)
		if n == 0 {
			e.unlinkLeaf(leaf, prev, nil)
			p = next
			continue
		}
		leaves = append(leaves, leaf)
		maxKeys = append(maxKeys, mk)
		size += n
		prev = leaf
		p = next
	}
	return leaves, maxKeys, size
}

// reclaimLeaf runs the codec's Algorithm 17 leak scan on one leaf and
// applies the repairs immediately (the sequential recovery shape; the
// parallel path scans up front and applies later, in the same order).
func (e *engine[K, V]) reclaimLeaf(leaf uint64) {
	e.cdc.applyLeaks(leaf, e.cdc.scanLeaks(leaf))
}

// sanitizeFreeLeaves restores, at the end of recovery, the invariant that a
// group leaf not reachable from the leaf list has a zero durable bitmap and
// owns no key blocks. A crash can break it in exactly one spot: bulk load
// fills a carved leaf (var keys: durably publishing key-block pointers into
// its slots) before linking it. Without the sweep, the free vector would
// hand that leaf back to firstLeaf, whose stale nonzero bitmap would
// resurrect the dead keys. The free vector is rebuilt in deterministic
// group-walk order, so the sweep issues the same durable writes regardless
// of the recovery worker count.
func (e *engine[K, V]) sanitizeFreeLeaves() {
	if !e.groups.enabled() {
		return
	}
	for _, leaf := range e.groups.free {
		if e.leafBitmap(leaf) != 0 {
			e.persistLeafHeader(leaf, 0)
		}
		e.reclaimLeaf(leaf)
	}
}

// leafMaxKey returns the greatest valid key in the leaf and the number of
// valid slots, used when rebuilding inner nodes. (The fixed fork compared
// against a zero max and the var fork against nil; "first valid slot wins"
// covers both without a sentinel.)
func (e *engine[K, V]) leafMaxKey(leaf uint64) (K, int) {
	bm := e.leafBitmap(leaf)
	var maxK K
	n := 0
	for s := 0; s < e.sh.cap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		n++
		if k := e.cdc.slotKey(leaf, s); n == 1 || e.cdc.less(maxK, k) {
			maxK = k
		}
	}
	return maxK, n
}

// buildInner bulk-builds the DRAM part from the recovered leaf list, packing
// nodes to at most ~90% so the first inserts do not immediately split every
// node. (The forks disagreed: the single-threaded builder packed nodes full.
// 90% wins — full nodes made every post-recovery insert path split first.)
// It is the sequential form of buildInnerW (recovery.go), which can fill the
// leaf-parent level with several workers.
func buildInner[K any](leaves []uint64, maxKeys []K, maxKids int) *cInner[K] {
	return buildInnerW(leaves, maxKeys, maxKids, 1)
}

// --- introspection ------------------------------------------------------------

// CheckInvariants validates the structural invariants the design relies on;
// tests call it after crash-recovery cycles (and, for the concurrent
// variants, only while no operations are in flight). It returns the first
// violation found.
func (e *engine[K, V]) CheckInvariants() error {
	var prevMax K
	havePrev := false
	n := 0
	owners := map[scm.PPtr]int{}
	var hdr [MaxLeafCap + 16]byte
	for p := e.m.headLeaf(); !p.IsNull(); p = e.leafNext(p.Offset) {
		leaf := p.Offset
		bm := e.leafBitmap(leaf)
		if e.sh.hasFP {
			e.pool.ReadInto(leaf, hdr[:e.sh.cap])
		}
		var lo, hi K
		cnt := 0
		for s := 0; s < e.sh.cap; s++ {
			if bm&(1<<s) == 0 {
				if err := e.cdc.checkInvalidSlot(leaf, s); err != nil {
					return err
				}
				continue
			}
			k := e.cdc.slotKey(leaf, s)
			if tok, okTok := e.cdc.ownerToken(leaf, s); okTok {
				owners[tok]++
			}
			if e.sh.hasFP && hdr[s] != e.cdc.fingerprint(k) {
				return fmt.Errorf("leaf %#x slot %d: fingerprint mismatch for key %v", leaf, s, k)
			}
			if cnt == 0 || e.cdc.less(k, lo) {
				lo = k
			}
			if cnt == 0 || e.cdc.less(hi, k) {
				hi = k
			}
			cnt++
			n++
		}
		// Empty leaves only ever linger in the concurrent trees (deferred
		// deletions); the single-threaded delete always unlinks eagerly.
		if cnt == 0 && e.st && e.Len() > 0 {
			return fmt.Errorf("leaf %#x: empty leaf in non-empty tree", leaf)
		}
		if cnt > 0 {
			if havePrev && !e.cdc.less(prevMax, lo) {
				return fmt.Errorf("leaf %#x: min key %v <= previous leaf max %v", leaf, lo, prevMax)
			}
			prevMax, havePrev = hi, true
		}
	}
	for pk, c := range owners {
		if c != 1 {
			return fmt.Errorf("key block %v has %d owners", pk, c)
		}
	}
	if n != e.Len() {
		return fmt.Errorf("size mismatch: list has %d keys, tree reports %d", n, e.Len())
	}
	// Every key reachable through the inner nodes.
	for p := e.m.headLeaf(); !p.IsNull(); p = e.leafNext(p.Offset) {
		leaf := p.Offset
		bm := e.leafBitmap(leaf)
		for s := 0; s < e.sh.cap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := e.cdc.slotKey(leaf, s)
			if ref := e.findLeafRef(k); ref == nil || ref.off != leaf {
				return fmt.Errorf("key %v lives in leaf %#x but descent misses it", k, leaf)
			}
		}
	}
	// A group leaf not linked in the leaf list must look freshly recycled:
	// zero durable bitmap (otherwise a reuse through firstLeaf would
	// resurrect its stale slots) and, for the var codec, no owned key blocks.
	// Both codecs share the check; recovery's free-leaf sweep enforces it.
	if e.groups.enabled() {
		linked := make(map[uint64]bool)
		for p := e.m.headLeaf(); !p.IsNull(); p = e.leafNext(p.Offset) {
			linked[p.Offset] = true
		}
		for p := e.m.headGroup(); !p.IsNull(); p = e.groups.groupNext(p.Offset) {
			for _, leaf := range e.groups.leafOffsets(p.Offset) {
				if linked[leaf] {
					continue
				}
				if bm := e.leafBitmap(leaf); bm != 0 {
					return fmt.Errorf("leaf %#x: unreachable group leaf has nonzero bitmap %#x", leaf, bm)
				}
				for s := 0; s < e.sh.cap; s++ {
					if err := e.cdc.checkInvalidSlot(leaf, s); err != nil {
						return err
					}
				}
			}
		}
	}
	return e.groups.checkInvariants()
}

// Memory walks the DRAM part and combines it with the pool's SCM accounting
// (the Figure 8 experiment). DRAM cost counts live content per node — the
// fixed-capacity arrays overallocate, but the estimate tracks what a
// dynamically sized node would hold, matching the paper's model.
func (e *engine[K, V]) Memory() MemoryStats {
	var st MemoryStats
	st.SCMBytes = e.pool.AllocatedBytes()
	var walk func(n *cInner[K])
	walk = func(n *cInner[K]) {
		st.Inners++
		c := int(n.cnt.Load())
		st.DRAMBytes += 48 + uint64(c)*8
		for i := 0; i < c-1; i++ {
			if kp := n.keys[i].Load(); kp != nil {
				st.DRAMBytes += e.cdc.keyDRAMBytes(*kp)
			}
		}
		if n.leafParent {
			st.Leaves += c
			return
		}
		for i := 0; i < c; i++ {
			walk(n.kids[i].Load())
		}
	}
	if r := e.root.Load(); r.cnt.Load() > 0 {
		walk(r)
	}
	return st
}
