package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func newCVarTree(t *testing.T, cfg Config) *CVarTree {
	t.Helper()
	tr, err := CCreateVar(newPool(128), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCVarSingleThreadBasics(t *testing.T) {
	tr := newCVarTree(t, Config{LeafCap: 8, InnerFanout: 4, NumLogs: 8, ValueSize: 16})
	if _, ok := tr.Find([]byte("x")); ok {
		t.Fatal("find on empty")
	}
	const n = 2000
	rng := rand.New(rand.NewSource(3))
	for _, i := range rng.Perm(n) {
		if err := tr.Insert(strKey(i), strKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Find(strKey(i))
		if !ok || !bytes.HasPrefix(v, strKey(i)) {
			t.Fatalf("find(%d) = %q,%v", i, v, ok)
		}
	}
	for i := 0; i < n; i += 2 {
		if ok, err := tr.Update(strKey(i), []byte("upd")); err != nil || !ok {
			t.Fatalf("update(%d): %v %v", i, ok, err)
		}
	}
	for i := 0; i < n; i += 4 {
		if ok, err := tr.Delete(strKey(i)); err != nil || !ok {
			t.Fatalf("delete(%d): %v %v", i, ok, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Find(strKey(i))
		switch {
		case i%4 == 0:
			if ok {
				t.Fatalf("deleted %d present", i)
			}
		case i%2 == 0:
			if !ok || !bytes.HasPrefix(v, []byte("upd")) {
				t.Fatalf("updated %d = %q,%v", i, v, ok)
			}
		default:
			if !ok {
				t.Fatalf("key %d missing", i)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCVarScan(t *testing.T) {
	tr := newCVarTree(t, Config{LeafCap: 8, InnerFanout: 4})
	for i := 0; i < 600; i++ {
		if err := tr.Insert(strKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.ScanN(strKey(100), 50)
	if len(got) != 50 {
		t.Fatalf("scan %d entries", len(got))
	}
	for i, kv := range got {
		if !bytes.Equal(kv.Key, strKey(100+i)) {
			t.Fatalf("scan[%d] = %q", i, kv.Key)
		}
	}
}

func TestCVarConcurrentMixedStripes(t *testing.T) {
	tr := newCVarTree(t, Config{LeafCap: 8, InnerFanout: 4, NumLogs: 8, ValueSize: 8})
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			oracle := map[string][]byte{}
			for i := 0; i < 2500; i++ {
				k := append([]byte{byte('a' + w)}, strKey(rng.Intn(300))...)
				switch rng.Intn(4) {
				case 0, 3:
					v := strKey(rng.Intn(1000))[:8]
					if err := tr.Upsert(k, v); err != nil {
						t.Error(err)
						return
					}
					oracle[string(k)] = v
				case 1:
					ok, err := tr.Delete(k)
					if err != nil {
						t.Error(err)
						return
					}
					if _, want := oracle[string(k)]; ok != want {
						t.Errorf("delete(%q) = %v want %v", k, ok, want)
						return
					}
					delete(oracle, string(k))
				case 2:
					v, ok := tr.Find(k)
					want, wok := oracle[string(k)]
					if ok != wok || (ok && !bytes.Equal(v[:8], want)) {
						t.Errorf("find(%q) = %q,%v want %q,%v", k, v, ok, want, wok)
						return
					}
				}
			}
			for k, v := range oracle {
				got, ok := tr.Find([]byte(k))
				if !ok || !bytes.Equal(got[:8], v) {
					t.Errorf("final find(%q) = %q,%v", k, got, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCVarRecovery(t *testing.T) {
	pool := newPool(128)
	tr, err := CCreateVar(pool, Config{LeafCap: 8, InnerFanout: 4, NumLogs: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				k := strKey(w*1500 + i)
				if err := tr.Insert(k, k); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 6000; i += 2 {
		if _, err := tr.Delete(strKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	pool.Crash()
	tr2, err := COpenVar(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		_, ok := tr2.Find(strKey(i))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence %v after recovery", i, ok)
		}
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
