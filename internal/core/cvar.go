package core

import (
	"bytes"
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"fptree/internal/htm"
	"fptree/internal/scm"
)

// CVarTree is the concurrent variable-size-key FPTree (Appendix C +
// Selective Concurrency). Inner-node separators are Go strings in DRAM;
// leaf slots hold persistent pointers to separately allocated key blocks,
// exactly as in the single-threaded VarTree. Concurrency control mirrors
// CTree: optimistic validated descents for the transient part, fine-grained
// leaf locks plus micro-logs for the persistent part.
type CVarTree struct {
	pool *scm.Pool
	cfg  Config
	lay  varLayout
	m    meta

	anchor htm.VersionLock
	root   atomic.Pointer[cInner[string]]

	splitQ  chan int
	deleteQ chan int

	// Stats counts optimistic aborts and restarts.
	Stats htm.Stats
	// Ops counts in-leaf search and structure-modification events.
	Ops OpStats

	size atomic.Int64
}

func lessStr(a, b string) bool { return a < b }

// CCreateVar formats a new concurrent variable-size-key FPTree.
func CCreateVar(pool *scm.Pool, cfg Config) (*CVarTree, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Variant != VariantFPTree {
		return nil, fmt.Errorf("fptree: only the FPTree variant has a concurrent implementation")
	}
	cfg.GroupSize = 0
	if !pool.Root().IsNull() {
		return nil, fmt.Errorf("fptree: pool already contains a tree")
	}
	m, err := createMeta(pool, keyKindVar, cfg)
	if err != nil {
		return nil, err
	}
	t := &CVarTree{pool: pool, cfg: cfg, lay: newVarLayout(cfg.LeafCap, cfg.ValueSize), m: m}
	t.initQueues()
	t.root.Store(newCInner[string](t.maxKids(), true))
	return t, nil
}

// COpenVar recovers a concurrent variable-size-key FPTree, replaying all
// micro-logs and the Algorithm 17 leak scan before rebuilding inner nodes.
func COpenVar(pool *scm.Pool) (*CVarTree, error) {
	pool.Recover()
	m, cfg, err := openMeta(pool, keyKindVar)
	if err != nil {
		return nil, err
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cfg.GroupSize = 0
	t := &CVarTree{pool: pool, cfg: cfg, lay: newVarLayout(cfg.LeafCap, cfg.ValueSize), m: m}
	t.initQueues()

	rec := &VarTree{pool: pool, cfg: cfg, lay: t.lay, m: m, recovering: true}
	rec.fpBuf = make([]byte, cfg.LeafCap)
	rec.groups.init(pool, m, t.lay.size, 0)
	for i := 0; i < cfg.NumLogs; i++ {
		rec.recoverSplit(m.splitLog(i))
		rec.recoverDelete(m.deleteLog(i))
	}
	leaves, maxKeys, size := rec.collectLeaves()
	t.size.Store(int64(size))
	t.root.Store(buildCVarInner(leaves, maxKeys, t.maxKids()))
	t.Ops.InnerRebuilds.Add(1)
	return t, nil
}

func (t *CVarTree) initQueues() {
	t.splitQ = make(chan int, t.cfg.NumLogs)
	t.deleteQ = make(chan int, t.cfg.NumLogs)
	for i := 0; i < t.cfg.NumLogs; i++ {
		t.splitQ <- i
		t.deleteQ <- i
	}
}

func (t *CVarTree) maxKids() int { return t.cfg.InnerFanout + 1 }

// Pool returns the SCM pool backing the tree.
func (t *CVarTree) Pool() *scm.Pool { return t.pool }

// Len returns the number of live keys.
func (t *CVarTree) Len() int { return int(t.size.Load()) }

func (t *CVarTree) fullBitmap() uint64 {
	if t.cfg.LeafCap == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << t.cfg.LeafCap) - 1
}

func buildCVarInner(leaves []uint64, maxKeys [][]byte, maxKids int) *cInner[string] {
	width := maxKids * 9 / 10
	if width < 2 {
		width = 2
	}
	if len(leaves) == 0 {
		return newCInner[string](maxKids, true)
	}
	var level []*cInner[string]
	var seps []string
	for at := 0; at < len(leaves); at += width {
		end := at + width
		if end > len(leaves) {
			end = len(leaves)
		}
		n := newCInner[string](maxKids, true)
		for i := at; i < end; i++ {
			n.leaves[i-at].Store(&leafRef{off: leaves[i]})
			if i < end-1 {
				k := string(maxKeys[i])
				n.keys[i-at].Store(&k)
			}
		}
		n.cnt.Store(int32(end - at))
		level = append(level, n)
		if end < len(leaves) {
			seps = append(seps, string(maxKeys[end-1]))
		}
	}
	for len(level) > 1 {
		var next []*cInner[string]
		var nextSeps []string
		for at := 0; at < len(level); at += width {
			end := at + width
			if end > len(level) {
				end = len(level)
			}
			n := newCInner[string](maxKids, false)
			for i := at; i < end; i++ {
				n.kids[i-at].Store(level[i])
				if i < end-1 {
					k := seps[i]
					n.keys[i-at].Store(&k)
				}
			}
			n.cnt.Store(int32(end - at))
			next = append(next, n)
			if end < len(level) {
				nextSeps = append(nextSeps, seps[end-1])
			}
		}
		level, seps = next, nextSeps
	}
	return level[0]
}

// --- leaf persistence helpers -------------------------------------------------

func (t *CVarTree) leafBitmap(leaf uint64) uint64 { return t.pool.ReadU64(leaf + t.lay.offBitmap) }
func (t *CVarTree) leafNext(leaf uint64) scm.PPtr { return t.pool.ReadPPtr(leaf + t.lay.offNext) }

func (t *CVarTree) setLeafBitmap(leaf, bm uint64) {
	t.pool.WriteU64(leaf+t.lay.offBitmap, bm)
	t.pool.Persist(leaf+t.lay.offBitmap, 8)
}

func (t *CVarTree) setLeafNext(leaf uint64, p scm.PPtr) {
	t.pool.WritePPtr(leaf+t.lay.offNext, p)
	t.pool.Persist(leaf+t.lay.offNext, scm.PPtrSize)
}

func (t *CVarTree) slotKeyEquals(leaf uint64, s int, key []byte) bool {
	if t.pool.ReadU64(t.lay.klenOff(leaf, s)) != uint64(len(key)) {
		return false
	}
	pk := t.pool.ReadPPtr(t.lay.pkeyOff(leaf, s))
	return t.pool.EqualBytes(pk.Offset, key)
}

func (t *CVarTree) slotKey(leaf uint64, s int) []byte {
	pk := t.pool.ReadPPtr(t.lay.pkeyOff(leaf, s))
	return t.pool.ReadBytes(pk.Offset, t.pool.ReadU64(t.lay.klenOff(leaf, s)))
}

func (t *CVarTree) findInLeaf(leaf uint64, key []byte) (int, bool) {
	var buf [MaxLeafCap]byte
	bm := t.leafBitmap(leaf)
	t.pool.ReadInto(leaf, buf[:t.cfg.LeafCap])
	fp := hash1Bytes(key)
	slot := -1
	var compares, hits, falsePos uint64
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		compares++
		if buf[s] != fp {
			continue
		}
		hits++
		if t.slotKeyEquals(leaf, s, key) {
			slot = s
			break
		}
		falsePos++
	}
	t.Ops.noteSearch(compares, hits, falsePos, hits)
	return slot, slot >= 0
}

func (t *CVarTree) writeValue(leaf uint64, slot int, value []byte) {
	buf := make([]byte, t.cfg.ValueSize)
	copy(buf, value)
	t.pool.WriteBytes(t.lay.valOff(leaf, slot), buf)
	t.pool.Persist(t.lay.valOff(leaf, slot), uint64(len(buf)))
}

func (t *CVarTree) insertIntoLeaf(leaf, bm uint64, key, value []byte) error {
	slot := bits.TrailingZeros64(^bm)
	t.pool.WriteU64(t.lay.klenOff(leaf, slot), uint64(len(key)))
	t.pool.Persist(t.lay.klenOff(leaf, slot), 8)
	pk, err := t.pool.Alloc(t.lay.pkeyOff(leaf, slot), uint64(len(key)))
	if err != nil {
		return err
	}
	t.pool.WriteBytes(pk.Offset, key)
	t.pool.Persist(pk.Offset, uint64(len(key)))
	t.writeValue(leaf, slot, value)
	t.pool.WriteU8(leaf+uint64(slot), hash1Bytes(key))
	t.pool.Persist(leaf+uint64(slot), 1)
	t.setLeafBitmap(leaf, bm|(1<<slot))
	return nil
}

func (t *CVarTree) completeSplit(leaf, newLeaf uint64) []byte {
	buf := t.pool.ReadBytes(leaf, t.lay.size)
	t.pool.WriteBytes(newLeaf, buf)
	t.pool.Persist(newLeaf, t.lay.size)

	splitKey, newBm := t.findSplitKey(leaf)
	t.setLeafBitmap(newLeaf, newBm)
	t.setLeafBitmap(leaf, t.fullBitmap()&^newBm)
	t.resetInvalidPKeys(leaf)
	t.resetInvalidPKeys(newLeaf)
	t.setLeafNext(leaf, scm.PPtr{ArenaID: t.pool.ID(), Offset: newLeaf})
	return splitKey
}

func (t *CVarTree) resetInvalidPKeys(leaf uint64) {
	bm := t.leafBitmap(leaf)
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) != 0 {
			continue
		}
		if !t.pool.ReadPPtr(t.lay.pkeyOff(leaf, s)).IsNull() {
			t.pool.WritePPtr(t.lay.pkeyOff(leaf, s), scm.PPtr{})
			t.pool.Persist(t.lay.pkeyOff(leaf, s), scm.PPtrSize)
		}
	}
}

func (t *CVarTree) findSplitKey(leaf uint64) ([]byte, uint64) {
	m := t.cfg.LeafCap
	keys := make([][]byte, m)
	idxs := make([]int, m)
	for s := 0; s < m; s++ {
		keys[s] = t.slotKey(leaf, s)
		idxs[s] = s
	}
	sort.Slice(idxs, func(i, j int) bool { return bytes.Compare(keys[idxs[i]], keys[idxs[j]]) < 0 })
	keep := (m + 1) / 2
	splitKey := keys[idxs[keep-1]]
	var newBm uint64
	for _, s := range idxs[keep:] {
		newBm |= 1 << s
	}
	return splitKey, newBm
}

// --- optimistic descent -------------------------------------------------------

func (t *CVarTree) descend(key string) (n *cInner[string], ver uint64, idx int, ref *leafRef, ok bool) {
	av := t.anchor.ReadBegin()
	n = t.root.Load()
	ver = n.lock.ReadBegin()
	if !t.anchor.ReadValidate(av) {
		return nil, 0, 0, nil, false
	}
	for {
		i, sok := n.search(key, lessStr)
		if !sok || !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		if n.leafParent {
			if n.cnt.Load() == 0 {
				return n, ver, 0, nil, true
			}
			r := n.leaves[i].Load()
			if r == nil || !n.lock.ReadValidate(ver) {
				return nil, 0, 0, nil, false
			}
			return n, ver, i, r, true
		}
		child := n.kids[i].Load()
		if child == nil || !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		cver := child.lock.ReadBegin()
		if !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		n, ver = child, cver
	}
}

func (t *CVarTree) abort() {
	t.pool.PanicIfCrashed()
	t.Stats.Aborts.Add(1)
	t.Stats.Restarts.Add(1)
}

// Find returns a copy of the value stored under key.
func (t *CVarTree) Find(key []byte) ([]byte, bool) {
	sk := string(key)
	for {
		n, ver, _, ref, ok := t.descend(sk)
		if !ok {
			t.abort()
			continue
		}
		if ref == nil {
			return nil, false
		}
		if !ref.lk.TryRLock() {
			t.abort()
			continue
		}
		if !n.lock.ReadValidate(ver) {
			ref.lk.RUnlock()
			t.abort()
			continue
		}
		s, found := t.findInLeaf(ref.off, key)
		var v []byte
		if found {
			v = t.pool.ReadBytes(t.lay.valOff(ref.off, s), uint64(t.cfg.ValueSize))
		}
		ref.lk.RUnlock()
		return v, found
	}
}

// Insert adds a key-value pair (Algorithm 14 with Selective Concurrency).
func (t *CVarTree) Insert(key, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("fptree: empty key")
	}
	sk := string(key)
	for {
		n, ver, _, ref, ok := t.descend(sk)
		if !ok {
			t.abort()
			continue
		}
		if ref == nil {
			if err := t.firstLeaf(n); err != nil {
				return err
			}
			continue
		}
		if !ref.lk.TryLock() {
			t.abort()
			continue
		}
		if ref.dead.Load() || !n.lock.ReadValidate(ver) {
			ref.lk.Unlock()
			t.abort()
			continue
		}
		bm := t.leafBitmap(ref.off)
		if bm != t.fullBitmap() {
			err := t.insertIntoLeaf(ref.off, bm, key, value)
			ref.lk.Unlock()
			if err == nil {
				t.size.Add(1)
			}
			return err
		}
		splitKey, newRef, err := t.splitLeaf(ref)
		if err != nil {
			ref.lk.Unlock()
			return err
		}
		t.insertSMO(splitKey, ref, newRef)
		target := ref
		if sk > splitKey {
			target = newRef
		}
		err = t.insertIntoLeaf(target.off, t.leafBitmap(target.off), key, value)
		ref.lk.Unlock()
		newRef.lk.Unlock()
		if err == nil {
			t.size.Add(1)
		}
		return err
	}
}

func (t *CVarTree) firstLeaf(root *cInner[string]) error {
	t.anchor.Lock()
	r := t.root.Load()
	r.lock.Lock()
	if r != root || r.cnt.Load() != 0 {
		r.lock.UnlockNoBump()
		t.anchor.UnlockNoBump()
		return nil
	}
	ptr, err := t.pool.Alloc(t.m.base+mOffHeadLeaf, t.lay.size)
	if err != nil {
		r.lock.UnlockNoBump()
		t.anchor.UnlockNoBump()
		return err
	}
	r.leaves[0].Store(&leafRef{off: ptr.Offset})
	r.cnt.Store(1)
	r.lock.Unlock()
	t.anchor.UnlockNoBump()
	return nil
}

func (t *CVarTree) splitLeaf(ref *leafRef) (string, *leafRef, error) {
	li := <-t.splitQ
	log := t.m.splitLog(li)
	log.setA(scm.PPtr{ArenaID: t.pool.ID(), Offset: ref.off})
	if _, err := t.pool.Alloc(log.bOff(), t.lay.size); err != nil {
		log.reset()
		t.splitQ <- li
		return "", nil, err
	}
	newOff := log.b().Offset
	splitKey := t.completeSplit(ref.off, newOff)
	log.reset()
	t.splitQ <- li
	t.Ops.LeafSplits.Add(1)
	newRef := &leafRef{off: newOff}
	newRef.lk.Lock()
	return string(splitKey), newRef, nil
}

func (t *CVarTree) insertSMO(splitKey string, oldRef, newRef *leafRef) {
	t.anchor.Lock()
	cur := t.root.Load()
	cur.lock.Lock()
	if cur.full() {
		up, right := cur.splitNode()
		nr := newCInner[string](t.maxKids(), false)
		nr.kids[0].Store(cur)
		nr.kids[1].Store(right)
		nr.keys[0].Store(&up)
		nr.cnt.Store(2)
		t.root.Store(nr)
		t.anchor.Unlock()
		if splitKey > up {
			cur.lock.Unlock()
			cur = right
			cur.lock.Lock()
		}
	} else {
		t.anchor.UnlockNoBump()
	}
	for !cur.leafParent {
		i, _ := cur.search(splitKey, lessStr)
		child := cur.kids[i].Load()
		child.lock.Lock()
		if child.full() {
			up, right := child.splitNode()
			cur.insertAt(i, up, right, nil)
			if splitKey > up {
				child.lock.Unlock()
				child = right
				child.lock.Lock()
			}
		}
		cur.lock.Unlock()
		cur = child
	}
	i, _ := cur.search(splitKey, lessStr)
	if got := cur.leaves[i].Load(); got != oldRef {
		panic("fptree: SMO descent lost the split leaf")
	}
	cur.insertAt(i, splitKey, nil, newRef)
	cur.lock.Unlock()
}

// Update is Algorithm 16: the key block is reused (pointer copy), one
// p-atomic bitmap write commits, and the old reference is reset.
func (t *CVarTree) Update(key, value []byte) (bool, error) {
	sk := string(key)
	for {
		n, ver, _, ref, ok := t.descend(sk)
		if !ok {
			t.abort()
			continue
		}
		if ref == nil {
			return false, nil
		}
		if !ref.lk.TryLock() {
			t.abort()
			continue
		}
		if ref.dead.Load() || !n.lock.ReadValidate(ver) {
			ref.lk.Unlock()
			t.abort()
			continue
		}
		prev, found := t.findInLeaf(ref.off, key)
		if !found {
			ref.lk.Unlock()
			return false, nil
		}
		bm := t.leafBitmap(ref.off)
		target := ref
		var newRef *leafRef
		if bm == t.fullBitmap() {
			splitKey, nr, err := t.splitLeaf(ref)
			if err != nil {
				ref.lk.Unlock()
				return false, err
			}
			newRef = nr
			t.insertSMO(splitKey, ref, newRef)
			if sk > splitKey {
				target = newRef
			}
			bm = t.leafBitmap(target.off)
			prev, _ = t.findInLeaf(target.off, key)
		}
		slot := bits.TrailingZeros64(^bm)
		t.pool.WritePPtr(t.lay.pkeyOff(target.off, slot), t.pool.ReadPPtr(t.lay.pkeyOff(target.off, prev)))
		t.pool.WriteU64(t.lay.klenOff(target.off, slot), t.pool.ReadU64(t.lay.klenOff(target.off, prev)))
		t.pool.Persist(t.lay.pkeyOff(target.off, slot), scm.PPtrSize+8)
		t.writeValue(target.off, slot, value)
		t.pool.WriteU8(target.off+uint64(slot), hash1Bytes(key))
		t.pool.Persist(target.off+uint64(slot), 1)
		t.setLeafBitmap(target.off, bm&^(1<<prev)|(1<<slot))
		t.pool.WritePPtr(t.lay.pkeyOff(target.off, prev), scm.PPtr{})
		t.pool.Persist(t.lay.pkeyOff(target.off, prev), scm.PPtrSize)
		ref.lk.Unlock()
		if newRef != nil {
			newRef.lk.Unlock()
		}
		return true, nil
	}
}

// Upsert inserts the pair or updates it in place when the key exists.
func (t *CVarTree) Upsert(key, value []byte) error {
	ok, err := t.Update(key, value)
	if err != nil || ok {
		return err
	}
	return t.Insert(key, value)
}

// Delete removes key (Algorithm 15 with Selective Concurrency). As in CTree,
// a leaf whose left neighbor is in another subtree is left empty rather than
// unlinked; recovery reclaims it.
func (t *CVarTree) Delete(key []byte) (bool, error) {
	sk := string(key)
	for {
		n, ver, _, ref, ok := t.descend(sk)
		if !ok {
			t.abort()
			continue
		}
		if ref == nil {
			return false, nil
		}
		if !ref.lk.TryLock() {
			t.abort()
			continue
		}
		if ref.dead.Load() || !n.lock.ReadValidate(ver) {
			ref.lk.Unlock()
			t.abort()
			continue
		}
		slot, found := t.findInLeaf(ref.off, key)
		if !found {
			ref.lk.Unlock()
			return false, nil
		}
		bm := t.leafBitmap(ref.off)
		klen := t.pool.ReadU64(t.lay.klenOff(ref.off, slot))
		t.setLeafBitmap(ref.off, bm&^(1<<slot))
		t.pool.Free(t.lay.pkeyOff(ref.off, slot), klen)
		if bm&^(1<<slot) != 0 {
			ref.lk.Unlock()
			t.size.Add(-1)
			return true, nil
		}
		if !t.deleteSMO(sk, ref) {
			ref.lk.Unlock()
		}
		t.size.Add(-1)
		return true, nil
	}
}

func (t *CVarTree) deleteSMO(key string, ref *leafRef) bool {
	t.anchor.Lock()
	anchorHeld := true
	root := t.root.Load()
	root.lock.Lock()
	stack := []*cInner[string]{root}
	cur := root
	if cur.leafParent || cur.cnt.Load() > 2 {
		t.anchor.UnlockNoBump()
		anchorHeld = false
	}
	for !cur.leafParent {
		i, _ := cur.search(key, lessStr)
		child := cur.kids[i].Load()
		child.lock.Lock()
		stack = append(stack, child)
		if child.cnt.Load() >= 2 {
			for _, nd := range stack[:len(stack)-1] {
				nd.lock.UnlockNoBump()
			}
			if anchorHeld {
				t.anchor.UnlockNoBump()
				anchorHeld = false
			}
			stack = stack[len(stack)-1:]
		}
		cur = child
	}
	i, _ := cur.search(key, lessStr)
	if got := cur.leaves[i].Load(); got != ref {
		panic("fptree: delete SMO descent lost the leaf")
	}
	isHead := t.m.headLeaf().Offset == ref.off
	var prevRef *leafRef
	if !isHead {
		if i == 0 {
			for _, nd := range stack {
				nd.lock.UnlockNoBump()
			}
			if anchorHeld {
				t.anchor.UnlockNoBump()
			}
			return false
		}
		prevRef = cur.leaves[i-1].Load()
		if !prevRef.lk.TryLock() {
			for _, nd := range stack {
				nd.lock.UnlockNoBump()
			}
			if anchorHeld {
				t.anchor.UnlockNoBump()
			}
			return false
		}
	}
	cur.removeAt(i)
	modified := len(stack) - 1
	for level := len(stack) - 1; level > 0 && stack[level].cnt.Load() == 0; level-- {
		parent := stack[level-1]
		j, _ := parent.search(key, lessStr)
		parent.removeAt(j)
		modified = level - 1
	}
	rootSwapped := false
	if anchorHeld {
		r := stack[0]
		for !r.leafParent && r.cnt.Load() == 1 {
			r = r.kids[0].Load()
			t.root.Store(r)
			rootSwapped = true
		}
	}
	for i, nd := range stack {
		if i >= modified {
			nd.lock.Unlock()
		} else {
			nd.lock.UnlockNoBump()
		}
	}
	if anchorHeld {
		if rootSwapped {
			t.anchor.Unlock()
		} else {
			t.anchor.UnlockNoBump()
		}
	}

	li := <-t.deleteQ
	log := t.m.deleteLog(li)
	log.setA(scm.PPtr{ArenaID: t.pool.ID(), Offset: ref.off})
	if isHead {
		t.m.setHeadLeaf(t.leafNext(ref.off))
	} else {
		log.setB(scm.PPtr{ArenaID: t.pool.ID(), Offset: prevRef.off})
		t.setLeafNext(prevRef.off, t.leafNext(ref.off))
	}
	ref.dead.Store(true)
	t.pool.Free(log.aOff(), t.lay.size)
	log.reset()
	t.deleteQ <- li
	if prevRef != nil {
		prevRef.lk.Unlock()
	}
	return true
}

// Scan visits live pairs with key >= from in ascending order until fn
// returns false, seeking leaf by leaf through the inner nodes.
func (t *CVarTree) Scan(from []byte, fn func(VarKV) bool) {
	cur := string(from)
	var batch []VarKV
	for {
		batch = batch[:0]
		ub := ""
		haveUB := false
		ok := func() bool {
			n, ver, _, ref, dok := t.descendUB(cur, &ub, &haveUB)
			if !dok {
				return false
			}
			if ref == nil {
				return true
			}
			if !ref.lk.TryRLock() {
				return false
			}
			if !n.lock.ReadValidate(ver) {
				ref.lk.RUnlock()
				return false
			}
			bm := t.leafBitmap(ref.off)
			for s := 0; s < t.cfg.LeafCap; s++ {
				if bm&(1<<s) == 0 {
					continue
				}
				k := t.slotKey(ref.off, s)
				if string(k) >= cur {
					batch = append(batch, VarKV{k, t.pool.ReadBytes(t.lay.valOff(ref.off, s), uint64(t.cfg.ValueSize))})
				}
			}
			ref.lk.RUnlock()
			return true
		}()
		if !ok {
			t.abort()
			continue
		}
		sort.Slice(batch, func(i, j int) bool { return bytes.Compare(batch[i].Key, batch[j].Key) < 0 })
		for _, kv := range batch {
			if !fn(kv) {
				return
			}
		}
		if !haveUB {
			return
		}
		cur = ub + "\x00" // smallest key strictly greater than ub
	}
}

func (t *CVarTree) descendUB(key string, ub *string, haveUB *bool) (n *cInner[string], ver uint64, idx int, ref *leafRef, ok bool) {
	av := t.anchor.ReadBegin()
	n = t.root.Load()
	ver = n.lock.ReadBegin()
	if !t.anchor.ReadValidate(av) {
		return nil, 0, 0, nil, false
	}
	*haveUB = false
	*ub = ""
	for {
		i, sok := n.search(key, lessStr)
		if !sok {
			return nil, 0, 0, nil, false
		}
		if i < int(n.cnt.Load())-1 {
			kp := n.keys[i].Load()
			if kp == nil {
				return nil, 0, 0, nil, false
			}
			if !*haveUB || *kp < *ub {
				*ub = *kp
				*haveUB = true
			}
		}
		if !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		if n.leafParent {
			if n.cnt.Load() == 0 {
				return n, ver, 0, nil, true
			}
			r := n.leaves[i].Load()
			if r == nil || !n.lock.ReadValidate(ver) {
				return nil, 0, 0, nil, false
			}
			return n, ver, i, r, true
		}
		child := n.kids[i].Load()
		if child == nil || !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		cver := child.lock.ReadBegin()
		if !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		n, ver = child, cver
	}
}

// ScanN returns up to n pairs with key >= from.
func (t *CVarTree) ScanN(from []byte, n int) []VarKV {
	out := make([]VarKV, 0, n)
	t.Scan(from, func(kv VarKV) bool {
		out = append(out, kv)
		return len(out) < n
	})
	return out
}

// CheckInvariants validates the tree while quiescent.
func (t *CVarTree) CheckInvariants() error {
	var prevMax []byte
	n := 0
	for p := t.m.headLeaf(); !p.IsNull(); p = t.leafNext(p.Offset) {
		leaf := p.Offset
		bm := t.leafBitmap(leaf)
		var lo, hi []byte
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := t.slotKey(leaf, s)
			if fp := t.pool.ReadU8(leaf + uint64(s)); fp != hash1Bytes(k) {
				return fmt.Errorf("leaf %#x slot %d: fingerprint mismatch", leaf, s)
			}
			if lo == nil || bytes.Compare(k, lo) < 0 {
				lo = k
			}
			if hi == nil || bytes.Compare(k, hi) > 0 {
				hi = k
			}
			n++
		}
		if lo != nil && prevMax != nil && bytes.Compare(lo, prevMax) <= 0 {
			return fmt.Errorf("leaf %#x: min %q <= prev max %q", leaf, lo, prevMax)
		}
		if hi != nil {
			prevMax = hi
		}
	}
	if n != t.Len() {
		return fmt.Errorf("leaf list holds %d keys, tree reports %d", n, t.Len())
	}
	for p := t.m.headLeaf(); !p.IsNull(); p = t.leafNext(p.Offset) {
		leaf := p.Offset
		bm := t.leafBitmap(leaf)
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := t.slotKey(leaf, s)
			if _, found := t.Find(k); !found {
				return fmt.Errorf("key %q in leaf %#x unreachable via descent", k, leaf)
			}
		}
	}
	return nil
}
