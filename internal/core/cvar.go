package core

import (
	"fptree/internal/scm"
)

// CVarTree is the concurrent variable-size-key FPTree: the Appendix C leaf
// format under the Selective Concurrency scheme of Section 4.2. It is a
// facade over the same generic engine as the other three variants — the
// variable-key codec paired with the speculative concurrency controller.
type CVarTree struct {
	*engine[[]byte, []byte]
}

// CCreateVar formats a new concurrent variable-size-key FPTree.
func CCreateVar(pool *scm.Pool, cfg Config) (*CVarTree, error) {
	e, err := createEngine(pool, cfg, keyKindVar, varCodecOf, occCC{})
	if err != nil {
		return nil, err
	}
	return &CVarTree{e}, nil
}

// COpenVar recovers a concurrent variable-size-key FPTree (Algorithm 9 plus
// the Algorithm 17 leak scan). An optional RecoveryOptions parallelizes the
// leaf scan.
func COpenVar(pool *scm.Pool, opts ...RecoveryOptions) (*CVarTree, error) {
	e, err := openEngine(pool, keyKindVar, varCodecOf, occCC{}, recoveryOpts(opts))
	if err != nil {
		return nil, err
	}
	return &CVarTree{e}, nil
}

// Scan visits live pairs with key >= from in ascending order until fn
// returns false, seeking leaf by leaf through the inner nodes.
func (t *CVarTree) Scan(from []byte, fn func(VarKV) bool) {
	t.engine.scan(from, func(k, v []byte) bool { return fn(VarKV{k, v}) })
}

// ScanN returns up to n pairs with key >= from (nil when n <= 0). The result
// is pre-sized to min(n, Len()), so a large n does not over-allocate.
func (t *CVarTree) ScanN(from []byte, n int) []VarKV {
	out := make([]VarKV, 0, scanNCap(n, t.Len()))
	if n <= 0 {
		return nil
	}
	t.Scan(from, func(kv VarKV) bool {
		out = append(out, kv)
		return len(out) < n
	})
	return out
}

// Iterator returns a resumable ascending iterator over [start, end) in
// bytewise key order; a nil edge means unbounded. Safe to advance while
// other goroutines mutate the tree; see Iter for the exact guarantees.
func (t *CVarTree) Iterator(start, end []byte) *VarIterator {
	return t.engine.iterator(varIterBound(start), varIterBound(end), false)
}

// ReverseIterator returns a resumable descending iterator over [start, end),
// positioned on the greatest key below end (nil end: the maximum key).
func (t *CVarTree) ReverseIterator(start, end []byte) *VarIterator {
	return t.engine.iterator(varIterBound(start), varIterBound(end), true)
}
