package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"fptree/internal/scm"
)

// leafShape is the codec-independent geometry the engine needs for header
// reads, bitmap commits and next-pointer chasing.
type leafShape struct {
	cap       int
	hasFP     bool
	offBitmap uint64
	offNext   uint64
	size      uint64
}

// codec owns everything that depends on the key representation: the leaf slot
// layout, fingerprints, comparisons, slot read/write/persist, and the
// key-ownership bookkeeping that only variable-size keys need (Appendix C).
// The engine never touches a slot except through this interface.
//
// Fixed codec: inline u64 key + u64 value per slot, nothing to allocate or
// leak. Var codec: each slot holds a persistent pointer to a separately
// allocated key block plus an inline value, so insert/update/delete/split all
// have extra ownership steps (the no-op methods below on the fixed codec).
type codec[K, V any] interface {
	shape() leafShape
	less(a, b K) bool
	fingerprint(k K) byte
	// validateKey rejects keys the codec cannot store (empty var keys).
	validateKey(k K) error

	slotKey(leaf uint64, s int) K
	slotKeyEquals(leaf uint64, s int, k K) bool
	slotValue(leaf uint64, s int) V

	// writeSlot persists the key and value payload of a free slot. It does
	// NOT touch the fingerprint or bitmap — engine.commitSlot owns those.
	writeSlot(leaf uint64, slot int, k K, v V) error
	// moveSlot restages an existing slot's key with a new value into a free
	// slot (update path). The var codec copies the key's persistent pointer
	// instead of re-allocating (Algorithm 16).
	moveSlot(leaf uint64, slot, prev int, k K, v V)
	// afterUpdate runs after the bitmap commit of an update; the var codec
	// nulls the old slot's key pointer so the key keeps exactly one owner.
	afterUpdate(leaf uint64, prev int)
	// releaseSlotKey frees per-slot key storage after a delete's bitmap flip.
	releaseSlotKey(leaf uint64, slot int)
	// afterSplitBitmaps restores per-slot ownership invariants once the two
	// halves' complementary bitmaps are durable (var: null the invalid
	// slots' key pointers in both halves).
	afterSplitBitmaps(leaf, newLeaf uint64)
	// scanLeaks is the detection half of the Algorithm 17 per-leaf recovery
	// scan: it reads the leaf and reports the repairs needed, without
	// touching SCM. Read-only so parallel recovery workers may run it
	// concurrently; the engine applies the actions sequentially afterwards.
	scanLeaks(leaf uint64) []leakAction
	// applyLeaks performs the durable repairs scanLeaks detected, in slot
	// order.
	applyLeaks(leaf uint64, acts []leakAction)
	// scanLeaf is the one-stop per-leaf recovery read: the live max key, the
	// live count, and the scanLeaks repairs, computed from a single batched
	// read of the leaf image (one emulator crossing instead of one per slot
	// — the recovery scan visits every slot anyway, so per-slot accessors
	// only add overhead). Read-only, so recovery workers run it in parallel;
	// it must detect exactly the repairs scanLeaks would.
	scanLeaf(leaf uint64) (K, int, []leakAction)

	// checkInvalidSlot / ownerToken support CheckInvariants: codec-specific
	// invariants of invalid slots, and a token identifying shared key
	// storage (each token must have exactly one owning slot).
	checkInvalidSlot(leaf uint64, s int) error
	ownerToken(leaf uint64, s int) (scm.PPtr, bool)

	// nextAfter returns the smallest key greater than k, or ok=false when no
	// such key exists (fixed u64 overflow). Used by the concurrent scan to
	// hop past a separator upper bound.
	nextAfter(k K) (K, bool)
	// keyDRAMBytes estimates the DRAM cost of holding k in an inner node.
	keyDRAMBytes(k K) uint64
}

// --- fixed-size keys ---------------------------------------------------------

type fixedCodec struct {
	pool *scm.Pool
	lay  fixedLayout
}

func newFixedCodec(pool *scm.Pool, cfg Config) *fixedCodec {
	return &fixedCodec{pool: pool, lay: newFixedLayoutV(cfg.LeafCap, cfg.Variant)}
}

func (c *fixedCodec) shape() leafShape {
	return leafShape{cap: c.lay.cap, hasFP: c.lay.hasFP, offBitmap: c.lay.offBitmap, offNext: c.lay.offNext, size: c.lay.size}
}

func (c *fixedCodec) less(a, b uint64) bool     { return a < b }
func (c *fixedCodec) fingerprint(k uint64) byte { return hash1(k) }
func (c *fixedCodec) validateKey(uint64) error  { return nil }

func (c *fixedCodec) slotKey(leaf uint64, s int) uint64 {
	return c.pool.ReadU64(c.lay.keyOff(leaf, s))
}

func (c *fixedCodec) slotKeyEquals(leaf uint64, s int, k uint64) bool {
	return c.pool.ReadU64(c.lay.keyOff(leaf, s)) == k
}

func (c *fixedCodec) slotValue(leaf uint64, s int) uint64 {
	return c.pool.ReadU64(c.lay.valOff(leaf, s))
}

func (c *fixedCodec) writeSlot(leaf uint64, slot int, k, v uint64) error {
	c.pool.WriteU64(c.lay.keyOff(leaf, slot), k)
	c.pool.WriteU64(c.lay.valOff(leaf, slot), v)
	if c.lay.hasFP {
		// Interleaved slot: key and value are contiguous, one flush covers
		// both (the forks disagreed here — two flushes was pure overhead).
		c.pool.Persist(c.lay.keyOff(leaf, slot), 16)
	} else {
		// PTree keeps separate key/value arrays; the two words land on
		// different cache lines.
		c.pool.Persist(c.lay.keyOff(leaf, slot), 8)
		c.pool.Persist(c.lay.valOff(leaf, slot), 8)
	}
	return nil
}

func (c *fixedCodec) moveSlot(leaf uint64, slot, prev int, k, v uint64) {
	c.writeSlot(leaf, slot, k, v) //nolint:errcheck // fixed writeSlot cannot fail
}

func (c *fixedCodec) afterUpdate(uint64, int)            {}
func (c *fixedCodec) releaseSlotKey(uint64, int)         {}
func (c *fixedCodec) afterSplitBitmaps(uint64, uint64)   {}
func (c *fixedCodec) scanLeaks(uint64) []leakAction      { return nil }
func (c *fixedCodec) applyLeaks(uint64, []leakAction)    {}
func (c *fixedCodec) checkInvalidSlot(uint64, int) error { return nil }

// scanLeaf reads the whole leaf image once and folds the max-key scan over
// it; fixed keys have no leak repairs.
func (c *fixedCodec) scanLeaf(leaf uint64) (uint64, int, []leakAction) {
	buf := c.pool.ReadBytes(leaf, c.lay.size)
	bm := binary.LittleEndian.Uint64(buf[c.lay.offBitmap:])
	var maxK uint64
	n := 0
	for s := 0; s < c.lay.cap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		k := binary.LittleEndian.Uint64(buf[c.lay.keyOff(0, s):])
		n++
		if n == 1 || k > maxK {
			maxK = k
		}
	}
	return maxK, n, nil
}

func (c *fixedCodec) ownerToken(uint64, int) (scm.PPtr, bool) { return scm.PPtr{}, false }

func (c *fixedCodec) nextAfter(k uint64) (uint64, bool) {
	if k == ^uint64(0) {
		return 0, false
	}
	return k + 1, true
}

func (c *fixedCodec) keyDRAMBytes(uint64) uint64 { return 8 }

// --- variable-size keys ------------------------------------------------------

type varCodec struct {
	pool    *scm.Pool
	lay     varLayout
	valSize int
}

func newVarCodec(pool *scm.Pool, cfg Config) *varCodec {
	return &varCodec{pool: pool, lay: newVarLayoutV(cfg.LeafCap, cfg.ValueSize, cfg.Variant), valSize: cfg.ValueSize}
}

func (c *varCodec) shape() leafShape {
	return leafShape{cap: c.lay.cap, hasFP: c.lay.hasFP, offBitmap: c.lay.offBitmap, offNext: c.lay.offNext, size: c.lay.size}
}

func (c *varCodec) less(a, b []byte) bool     { return bytes.Compare(a, b) < 0 }
func (c *varCodec) fingerprint(k []byte) byte { return hash1Bytes(k) }

func (c *varCodec) validateKey(k []byte) error {
	if len(k) == 0 {
		return fmt.Errorf("fptree: empty key")
	}
	return nil
}

func (c *varCodec) slotPKey(leaf uint64, s int) scm.PPtr {
	return c.pool.ReadPPtr(c.lay.pkeyOff(leaf, s))
}

func (c *varCodec) slotKLen(leaf uint64, s int) uint64 {
	return c.pool.ReadU64(c.lay.klenOff(leaf, s))
}

// slotKey dereferences the slot's key pointer — the extra SCM cache miss
// that makes fingerprints so valuable for string keys.
func (c *varCodec) slotKey(leaf uint64, s int) []byte {
	pk := c.slotPKey(leaf, s)
	return c.pool.ReadBytes(pk.Offset, c.slotKLen(leaf, s))
}

func (c *varCodec) slotKeyEquals(leaf uint64, s int, k []byte) bool {
	if c.slotKLen(leaf, s) != uint64(len(k)) {
		return false
	}
	pk := c.slotPKey(leaf, s)
	return c.pool.EqualBytes(pk.Offset, k)
}

func (c *varCodec) slotValue(leaf uint64, s int) []byte {
	return c.pool.ReadBytes(c.lay.valOff(leaf, s), uint64(c.valSize))
}

// writeSlot performs lines 12-18 of Algorithm 14: persist the key length,
// allocate and fill the key block (the allocator durably publishes it in the
// slot's pointer cell, so a crash can never leak it), then persist the value.
func (c *varCodec) writeSlot(leaf uint64, slot int, k, v []byte) error {
	c.pool.WriteU64(c.lay.klenOff(leaf, slot), uint64(len(k)))
	c.pool.Persist(c.lay.klenOff(leaf, slot), 8)
	pk, err := c.pool.Alloc(c.lay.pkeyOff(leaf, slot), uint64(len(k)))
	if err != nil {
		return err
	}
	c.pool.WriteBytes(pk.Offset, k)
	c.pool.Persist(pk.Offset, uint64(len(k)))
	c.writeValue(leaf, slot, v)
	return nil
}

func (c *varCodec) writeValue(leaf uint64, slot int, value []byte) {
	buf := make([]byte, c.valSize)
	copy(buf, value)
	c.pool.WriteBytes(c.lay.valOff(leaf, slot), buf)
	c.pool.Persist(c.lay.valOff(leaf, slot), uint64(len(buf)))
}

// moveSlot copies the previous slot's key pointer and length instead of
// re-allocating the key (Algorithm 16): after the bitmap flip the key briefly
// has two owners, which afterUpdate repairs.
func (c *varCodec) moveSlot(leaf uint64, slot, prev int, k, v []byte) {
	c.pool.WritePPtr(c.lay.pkeyOff(leaf, slot), c.slotPKey(leaf, prev))
	c.pool.WriteU64(c.lay.klenOff(leaf, slot), c.slotKLen(leaf, prev))
	c.pool.Persist(c.lay.pkeyOff(leaf, slot), scm.PPtrSize+8)
	c.writeValue(leaf, slot, v)
}

// afterUpdate resets the old slot's reference so the key has exactly one
// owner again (Algorithm 16, line 16).
func (c *varCodec) afterUpdate(leaf uint64, prev int) {
	c.pool.WritePPtr(c.lay.pkeyOff(leaf, prev), scm.PPtr{})
	c.pool.Persist(c.lay.pkeyOff(leaf, prev), scm.PPtrSize)
}

// releaseSlotKey deallocates the key block through the slot's pointer cell
// (which nulls it durably).
func (c *varCodec) releaseSlotKey(leaf uint64, slot int) {
	c.pool.Free(c.lay.pkeyOff(leaf, slot), c.slotKLen(leaf, slot))
}

// afterSplitBitmaps nulls the invalid slots' key pointers in both halves so
// every key block has exactly one owning reference — otherwise the Algorithm
// 17 leak scan could reclaim a key still referenced by the sibling leaf.
func (c *varCodec) afterSplitBitmaps(leaf, newLeaf uint64) {
	c.resetInvalidPKeys(leaf)
	c.resetInvalidPKeys(newLeaf)
}

func (c *varCodec) resetInvalidPKeys(leaf uint64) {
	bm := c.pool.ReadU64(leaf + c.lay.offBitmap)
	for s := 0; s < c.lay.cap; s++ {
		if bm&(1<<s) != 0 {
			continue
		}
		if !c.slotPKey(leaf, s).IsNull() {
			c.pool.WritePPtr(c.lay.pkeyOff(leaf, s), scm.PPtr{})
			c.pool.Persist(c.lay.pkeyOff(leaf, s), scm.PPtrSize)
		}
	}
}

// leakAction is one repair the Algorithm 17 leak scan detected in a leaf:
// either deallocate the invalid slot's key block (free) or just null the
// slot's dangling reference (the block is still owned by a valid slot).
type leakAction struct {
	slot int
	free bool
}

// scanLeaks is the detection half of Algorithm 17: for every invalid slot
// with a non-null key pointer, decide between the update-crash case (another
// valid slot in the same leaf references the same key: reset the pointer)
// and the insert/delete-crash case (no other reference: deallocate the key).
func (c *varCodec) scanLeaks(leaf uint64) []leakAction {
	bm := c.pool.ReadU64(leaf + c.lay.offBitmap)
	var acts []leakAction
	for s := 0; s < c.lay.cap; s++ {
		if bm&(1<<s) != 0 {
			continue
		}
		pk := c.slotPKey(leaf, s)
		if pk.IsNull() {
			continue
		}
		shared := false
		for v := 0; v < c.lay.cap; v++ {
			if bm&(1<<v) != 0 && c.slotPKey(leaf, v) == pk {
				shared = true
				break
			}
		}
		acts = append(acts, leakAction{slot: s, free: !shared})
	}
	return acts
}

// applyLeaks performs the repairs in slot order, matching the write sequence
// the pre-split reclaimLeaks emitted (a reset is a durable pointer null, a
// free goes through the slot's pointer cell, which also nulls it).
func (c *varCodec) applyLeaks(leaf uint64, acts []leakAction) {
	for _, a := range acts {
		if a.free {
			c.pool.Free(c.lay.pkeyOff(leaf, a.slot), c.slotKLen(leaf, a.slot))
		} else {
			c.pool.WritePPtr(c.lay.pkeyOff(leaf, a.slot), scm.PPtr{})
			c.pool.Persist(c.lay.pkeyOff(leaf, a.slot), scm.PPtrSize)
		}
	}
}

// scanLeaf reads the leaf image once, chases each valid slot's key pointer
// for the max-key comparison (the pointer dereferences are the latency that
// parallel recovery overlaps), and runs the scanLeaks detection on the
// buffered slot pointers.
func (c *varCodec) scanLeaf(leaf uint64) ([]byte, int, []leakAction) {
	buf := c.pool.ReadBytes(leaf, c.lay.size)
	bm := binary.LittleEndian.Uint64(buf[c.lay.offBitmap:])
	pk := func(s int) scm.PPtr {
		off := c.lay.pkeyOff(0, s)
		return scm.PPtr{
			ArenaID: binary.LittleEndian.Uint64(buf[off:]),
			Offset:  binary.LittleEndian.Uint64(buf[off+8:]),
		}
	}
	klen := func(s int) uint64 {
		return binary.LittleEndian.Uint64(buf[c.lay.klenOff(0, s):])
	}
	var maxK []byte
	n := 0
	var acts []leakAction
	for s := 0; s < c.lay.cap; s++ {
		if bm&(1<<s) != 0 {
			k := c.pool.ReadBytes(pk(s).Offset, klen(s))
			n++
			if n == 1 || bytes.Compare(maxK, k) < 0 {
				maxK = k
			}
			continue
		}
		p := pk(s)
		if p.IsNull() {
			continue
		}
		shared := false
		for v := 0; v < c.lay.cap; v++ {
			if bm&(1<<v) != 0 && pk(v) == p {
				shared = true
				break
			}
		}
		acts = append(acts, leakAction{slot: s, free: !shared})
	}
	return maxK, n, acts
}

func (c *varCodec) checkInvalidSlot(leaf uint64, s int) error {
	if !c.slotPKey(leaf, s).IsNull() {
		return fmt.Errorf("leaf %#x slot %d: invalid slot owns a key pointer", leaf, s)
	}
	return nil
}

func (c *varCodec) ownerToken(leaf uint64, s int) (scm.PPtr, bool) {
	return c.slotPKey(leaf, s), true
}

func (c *varCodec) nextAfter(k []byte) ([]byte, bool) {
	next := make([]byte, len(k)+1)
	copy(next, k)
	return next, true
}

func (c *varCodec) keyDRAMBytes(k []byte) uint64 { return uint64(len(k)) + 24 }
