package core

import (
	"bytes"
	"fmt"
	"math/bits"
	"sort"

	"fptree/internal/scm"
)

// VarTree is the single-threaded variable-size-key FPTree (Appendix C).
// Keys are byte strings stored in separately allocated SCM blocks; each leaf
// slot holds a persistent pointer to its key, the key length, and an inline
// value of Config.ValueSize bytes. Every insert allocates the key through
// the leak-prevention allocator interface (the slot's own pointer cell is
// the owner), and recovery runs the Algorithm 17 scan that reclaims keys
// orphaned by a crash.
type VarTree struct {
	pool *scm.Pool
	cfg  Config
	lay  varLayout
	m    meta

	root *stInner[[]byte]
	size int

	groups     groupAlloc
	recovering bool

	Probes ProbeStats
	Ops    OpStats

	path  []pathEntry[[]byte]
	fpBuf []byte
	sbuf  []int
}

// VarKV is one variable-size-key pair.
type VarKV struct {
	Key   []byte
	Value []byte
}

// CreateVar formats a new single-threaded variable-size-key FPTree.
func CreateVar(pool *scm.Pool, cfg Config) (*VarTree, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if !pool.Root().IsNull() {
		return nil, fmt.Errorf("fptree: pool already contains a tree")
	}
	m, err := createMeta(pool, keyKindVar, cfg)
	if err != nil {
		return nil, err
	}
	t := &VarTree{pool: pool, cfg: cfg, lay: newVarLayoutV(cfg.LeafCap, cfg.ValueSize, cfg.Variant), m: m}
	t.groups.init(pool, m, t.lay.size, cfg.GroupSize)
	t.fpBuf = make([]byte, cfg.LeafCap)
	return t, nil
}

// OpenVar recovers a variable-size-key FPTree: allocator intent, micro-logs,
// the Algorithm 17 leak scan, then the inner-node rebuild.
func OpenVar(pool *scm.Pool) (*VarTree, error) {
	pool.Recover()
	m, cfg, err := openMeta(pool, keyKindVar)
	if err != nil {
		return nil, err
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := &VarTree{pool: pool, cfg: cfg, lay: newVarLayoutV(cfg.LeafCap, cfg.ValueSize, cfg.Variant), m: m}
	t.groups.init(pool, m, t.lay.size, cfg.GroupSize)
	t.fpBuf = make([]byte, cfg.LeafCap)
	t.recovering = true
	t.recoverSplit(t.m.splitLog(0))
	t.recoverDelete(t.m.deleteLog(0))
	t.groups.recover()
	t.rebuild()
	t.recovering = false
	return t, nil
}

// Pool returns the SCM pool backing the tree.
func (t *VarTree) Pool() *scm.Pool { return t.pool }

// Len returns the number of live keys.
func (t *VarTree) Len() int { return t.size }

func (t *VarTree) fullBitmap() uint64 {
	if t.cfg.LeafCap == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << t.cfg.LeafCap) - 1
}

// --- leaf accessors ---------------------------------------------------------

func (t *VarTree) leafBitmap(leaf uint64) uint64 { return t.pool.ReadU64(leaf + t.lay.offBitmap) }
func (t *VarTree) leafNext(leaf uint64) scm.PPtr { return t.pool.ReadPPtr(leaf + t.lay.offNext) }

func (t *VarTree) setLeafBitmap(leaf, bm uint64) {
	t.pool.WriteU64(leaf+t.lay.offBitmap, bm)
	t.pool.Persist(leaf+t.lay.offBitmap, 8)
}

func (t *VarTree) setLeafNext(leaf uint64, p scm.PPtr) {
	t.pool.WritePPtr(leaf+t.lay.offNext, p)
	t.pool.Persist(leaf+t.lay.offNext, scm.PPtrSize)
}

func (t *VarTree) slotPKey(leaf uint64, s int) scm.PPtr {
	return t.pool.ReadPPtr(t.lay.pkeyOff(leaf, s))
}

func (t *VarTree) slotKLen(leaf uint64, s int) uint64 {
	return t.pool.ReadU64(t.lay.klenOff(leaf, s))
}

// slotKey dereferences the slot's key pointer — the extra SCM cache miss
// that makes fingerprints so valuable for string keys.
func (t *VarTree) slotKey(leaf uint64, s int) []byte {
	pk := t.slotPKey(leaf, s)
	return t.pool.ReadBytes(pk.Offset, t.slotKLen(leaf, s))
}

func (t *VarTree) slotKeyEquals(leaf uint64, s int, key []byte) bool {
	if t.slotKLen(leaf, s) != uint64(len(key)) {
		return false
	}
	pk := t.slotPKey(leaf, s)
	return t.pool.EqualBytes(pk.Offset, key)
}

func (t *VarTree) slotKeyCompare(leaf uint64, s int, key []byte) int {
	pk := t.slotPKey(leaf, s)
	klen := t.slotKLen(leaf, s)
	n := klen
	if uint64(len(key)) < n {
		n = uint64(len(key))
	}
	if c := t.pool.CompareBytes(pk.Offset, n, key[:n]); c != 0 {
		return c
	}
	switch {
	case klen < uint64(len(key)):
		return -1
	case klen > uint64(len(key)):
		return 1
	}
	return 0
}

func (t *VarTree) slotValue(leaf uint64, s int) []byte {
	return t.pool.ReadBytes(t.lay.valOff(leaf, s), uint64(t.cfg.ValueSize))
}

func (t *VarTree) leafMaxKey(leaf uint64) ([]byte, int) {
	bm := t.leafBitmap(leaf)
	var maxK []byte
	n := 0
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		n++
		k := t.slotKey(leaf, s)
		if maxK == nil || bytes.Compare(k, maxK) > 0 {
			maxK = k
		}
	}
	return maxK, n
}

func (t *VarTree) findInLeaf(leaf uint64, key []byte) (int, bool) {
	bm := t.leafBitmap(leaf)
	t.Probes.Searches++
	if !t.lay.hasFP {
		// PTreeVar variant: every valid slot's key must be dereferenced —
		// an SCM cache miss per probe, which is what fingerprints avoid.
		slot, probes := -1, uint64(0)
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			t.Probes.KeyProbes++
			probes++
			if t.slotKeyEquals(leaf, s, key) {
				slot = s
				break
			}
		}
		t.Ops.noteSearch(0, 0, 0, probes)
		return slot, slot >= 0
	}
	t.pool.ReadInto(leaf, t.fpBuf)
	fp := hash1Bytes(key)
	t.Probes.FPScans += uint64(t.cfg.LeafCap)
	slot := -1
	var compares, hits, falsePos uint64
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		compares++
		if t.fpBuf[s] != fp {
			continue
		}
		hits++
		t.Probes.KeyProbes++
		if t.slotKeyEquals(leaf, s, key) {
			slot = s
			break
		}
		falsePos++
	}
	t.Ops.noteSearch(compares, hits, falsePos, hits)
	return slot, slot >= 0
}

// --- descent ---------------------------------------------------------------

func (t *VarTree) findLeaf(key []byte) uint64 {
	t.path = t.path[:0]
	n := t.root
	for {
		i := n.childIdx(key, lessBytes)
		t.path = append(t.path, pathEntry[[]byte]{n, i})
		if n.isLeafParent() {
			return n.leaves[i]
		}
		n = n.kids[i]
	}
}

func (t *VarTree) prevLeafOf() uint64 {
	for level := len(t.path) - 1; level >= 0; level-- {
		e := t.path[level]
		if e.idx == 0 {
			continue
		}
		if e.n.isLeafParent() {
			return e.n.leaves[e.idx-1]
		}
		n := e.n.kids[e.idx-1]
		for !n.isLeafParent() {
			n = n.kids[len(n.kids)-1]
		}
		return n.leaves[len(n.leaves)-1]
	}
	return 0
}

// --- base operations ----------------------------------------------------------

// Find returns a copy of the value stored under key.
func (t *VarTree) Find(key []byte) ([]byte, bool) {
	if t.root == nil {
		return nil, false
	}
	leaf := t.findLeaf(key)
	s, ok := t.findInLeaf(leaf, key)
	if !ok {
		return nil, false
	}
	return t.slotValue(leaf, s), true
}

// Insert adds a key-value pair (Algorithm 14's single-threaded core). The
// key bytes are stored in a freshly allocated SCM block owned by the slot's
// persistent pointer cell, so a crash can never leak them. value is padded
// or truncated to the tree's configured value size.
func (t *VarTree) Insert(key, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("fptree: empty key")
	}
	if t.root == nil {
		leaf, err := t.firstLeaf()
		if err != nil {
			return err
		}
		t.root = &stInner[[]byte]{leaves: []uint64{leaf}}
	}
	leaf := t.findLeaf(key)
	bm := t.leafBitmap(leaf)
	if bm == t.fullBitmap() {
		splitKey, newLeaf, err := t.splitLeaf(leaf)
		if err != nil {
			return err
		}
		t.root = insertChild(t.root, t.path, len(t.path)-1, splitKey, nil, newLeaf, t.cfg.InnerFanout)
		if bytes.Compare(key, splitKey) > 0 {
			leaf = newLeaf
		}
		bm = t.leafBitmap(leaf)
	}
	if err := t.insertIntoLeaf(leaf, bm, key, value); err != nil {
		return err
	}
	t.size++
	return nil
}

// insertIntoLeaf performs lines 12-18 of Algorithm 14: persist the key
// length, allocate and fill the key block (the allocator durably publishes
// it in the slot's pointer cell), persist value and fingerprint, and commit
// with the p-atomic bitmap store.
func (t *VarTree) insertIntoLeaf(leaf, bm uint64, key, value []byte) error {
	slot := bits.TrailingZeros64(^bm)
	t.pool.WriteU64(t.lay.klenOff(leaf, slot), uint64(len(key)))
	t.pool.Persist(t.lay.klenOff(leaf, slot), 8)
	pk, err := t.pool.Alloc(t.lay.pkeyOff(leaf, slot), uint64(len(key)))
	if err != nil {
		return err
	}
	t.pool.WriteBytes(pk.Offset, key)
	t.pool.Persist(pk.Offset, uint64(len(key)))
	t.writeValue(leaf, slot, value)
	if t.lay.hasFP {
		t.pool.WriteU8(leaf+uint64(slot), hash1Bytes(key))
		t.pool.Persist(leaf+uint64(slot), 1)
	}
	t.setLeafBitmap(leaf, bm|(1<<slot))
	return nil
}

func (t *VarTree) writeValue(leaf uint64, slot int, value []byte) {
	buf := make([]byte, t.cfg.ValueSize)
	copy(buf, value)
	t.pool.WriteBytes(t.lay.valOff(leaf, slot), buf)
	t.pool.Persist(t.lay.valOff(leaf, slot), uint64(len(buf)))
}

// Update is Algorithm 16: the new slot reuses the existing key block (its
// persistent pointer is copied, not re-allocated); the bitmap flip makes the
// removal of the old slot and the insertion of the new one atomic; finally
// the old slot's pointer is reset so exactly one reference to the key
// remains.
func (t *VarTree) Update(key, value []byte) (bool, error) {
	if t.root == nil {
		return false, nil
	}
	leaf := t.findLeaf(key)
	prev, ok := t.findInLeaf(leaf, key)
	if !ok {
		return false, nil
	}
	bm := t.leafBitmap(leaf)
	if bm == t.fullBitmap() {
		splitKey, newLeaf, err := t.splitLeaf(leaf)
		if err != nil {
			return false, err
		}
		t.root = insertChild(t.root, t.path, len(t.path)-1, splitKey, nil, newLeaf, t.cfg.InnerFanout)
		if bytes.Compare(key, splitKey) > 0 {
			leaf = newLeaf
		}
		bm = t.leafBitmap(leaf)
		prev, _ = t.findInLeaf(leaf, key)
	}
	slot := bits.TrailingZeros64(^bm)
	t.pool.WritePPtr(t.lay.pkeyOff(leaf, slot), t.slotPKey(leaf, prev))
	t.pool.WriteU64(t.lay.klenOff(leaf, slot), t.slotKLen(leaf, prev))
	t.pool.Persist(t.lay.pkeyOff(leaf, slot), scm.PPtrSize+8)
	t.writeValue(leaf, slot, value)
	if t.lay.hasFP {
		t.pool.WriteU8(leaf+uint64(slot), hash1Bytes(key))
		t.pool.Persist(leaf+uint64(slot), 1)
	}
	t.setLeafBitmap(leaf, bm&^(1<<prev)|(1<<slot))
	// Reset the old reference so the key has exactly one owner again
	// (Algorithm 16, line 16).
	t.pool.WritePPtr(t.lay.pkeyOff(leaf, prev), scm.PPtr{})
	t.pool.Persist(t.lay.pkeyOff(leaf, prev), scm.PPtrSize)
	return true, nil
}

// Upsert inserts the pair or updates it in place when the key exists.
func (t *VarTree) Upsert(key, value []byte) error {
	ok, err := t.Update(key, value)
	if err != nil || ok {
		return err
	}
	return t.Insert(key, value)
}

// Delete removes key (Algorithm 15's single-threaded core): the bitmap flip
// hides the slot, then the key block is deallocated through the slot's
// pointer cell (which nulls it). Deleting a leaf's last key unlinks the leaf.
func (t *VarTree) Delete(key []byte) (bool, error) {
	if t.root == nil {
		return false, nil
	}
	leaf := t.findLeaf(key)
	slot, ok := t.findInLeaf(leaf, key)
	if !ok {
		return false, nil
	}
	bm := t.leafBitmap(leaf)
	klen := t.slotKLen(leaf, slot)
	t.setLeafBitmap(leaf, bm&^(1<<slot))
	t.pool.Free(t.lay.pkeyOff(leaf, slot), klen)
	if bm&^(1<<slot) == 0 {
		prev := t.prevLeafOf()
		if err := t.deleteLeaf(leaf, prev); err != nil {
			return false, err
		}
		t.root = removeLeaf(t.root, t.path)
	}
	t.size--
	return true, nil
}

// Scan visits live pairs with key >= from in ascending order until fn
// returns false.
func (t *VarTree) Scan(from []byte, fn func(VarKV) bool) {
	if t.root == nil {
		return
	}
	leaf := t.findLeaf(from)
	var batch []VarKV
	for {
		bm := t.leafBitmap(leaf)
		batch = batch[:0]
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := t.slotKey(leaf, s)
			if bytes.Compare(k, from) >= 0 {
				batch = append(batch, VarKV{k, t.slotValue(leaf, s)})
			}
		}
		sort.Slice(batch, func(i, j int) bool { return bytes.Compare(batch[i].Key, batch[j].Key) < 0 })
		for _, kv := range batch {
			if !fn(kv) {
				return
			}
		}
		next := t.leafNext(leaf)
		if next.IsNull() {
			return
		}
		leaf = next.Offset
	}
}

// ScanN returns up to n pairs with key >= from.
func (t *VarTree) ScanN(from []byte, n int) []VarKV {
	out := make([]VarKV, 0, n)
	t.Scan(from, func(kv VarKV) bool {
		out = append(out, kv)
		return len(out) < n
	})
	return out
}

// --- structure modifications ---------------------------------------------------

func (t *VarTree) firstLeaf() (uint64, error) {
	if t.groups.enabled() {
		off, err := t.groups.getLeaf()
		if err != nil {
			return 0, err
		}
		t.m.setHeadLeaf(scm.PPtr{ArenaID: t.pool.ID(), Offset: off})
		return off, nil
	}
	ptr, err := t.pool.Alloc(t.m.base+mOffHeadLeaf, t.lay.size)
	if err != nil {
		return 0, err
	}
	return ptr.Offset, nil
}

// splitLeaf is Algorithm 3 applied to variable-size keys. The leaf copy
// duplicates the key pointers; after the complementary bitmaps are durable,
// the invalid slots' pointers in both halves are persistently reset so every
// key block has exactly one owning reference — otherwise the Algorithm 17
// leak scan could reclaim a key still referenced by the sibling leaf.
func (t *VarTree) splitLeaf(leaf uint64) ([]byte, uint64, error) {
	log := t.m.splitLog(0)
	log.setA(scm.PPtr{ArenaID: t.pool.ID(), Offset: leaf})
	if t.groups.enabled() {
		off, gerr := t.groups.getLeaf()
		if gerr != nil {
			log.reset()
			return nil, 0, gerr
		}
		log.setB(scm.PPtr{ArenaID: t.pool.ID(), Offset: off})
	} else {
		if _, aerr := t.pool.Alloc(log.bOff(), t.lay.size); aerr != nil {
			log.reset()
			return nil, 0, aerr
		}
	}
	newLeaf := log.b().Offset
	splitKey := t.completeSplit(leaf, newLeaf)
	log.reset()
	t.Ops.LeafSplits.Add(1)
	return splitKey, newLeaf, nil
}

func (t *VarTree) completeSplit(leaf, newLeaf uint64) []byte {
	buf := t.pool.ReadBytes(leaf, t.lay.size)
	t.pool.WriteBytes(newLeaf, buf)
	t.pool.Persist(newLeaf, t.lay.size)

	splitKey, newBm := t.findSplitKey(leaf)
	t.setLeafBitmap(newLeaf, newBm)
	t.setLeafBitmap(leaf, t.fullBitmap()&^newBm)
	t.resetInvalidPKeys(leaf)
	t.resetInvalidPKeys(newLeaf)
	t.setLeafNext(leaf, scm.PPtr{ArenaID: t.pool.ID(), Offset: newLeaf})
	return splitKey
}

// resetInvalidPKeys nulls the key pointers of all invalid slots so each key
// block keeps a single owning reference after a split.
func (t *VarTree) resetInvalidPKeys(leaf uint64) {
	bm := t.leafBitmap(leaf)
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) != 0 {
			continue
		}
		if !t.slotPKey(leaf, s).IsNull() {
			t.pool.WritePPtr(t.lay.pkeyOff(leaf, s), scm.PPtr{})
			t.pool.Persist(t.lay.pkeyOff(leaf, s), scm.PPtrSize)
		}
	}
}

func (t *VarTree) findSplitKey(leaf uint64) ([]byte, uint64) {
	m := t.cfg.LeafCap
	keys := make([][]byte, m)
	t.sbuf = t.sbuf[:0]
	for s := 0; s < m; s++ {
		keys[s] = t.slotKey(leaf, s)
		t.sbuf = append(t.sbuf, s)
	}
	sort.Slice(t.sbuf, func(i, j int) bool { return bytes.Compare(keys[t.sbuf[i]], keys[t.sbuf[j]]) < 0 })
	keep := (m + 1) / 2
	splitKey := keys[t.sbuf[keep-1]]
	var newBm uint64
	for _, s := range t.sbuf[keep:] {
		newBm |= 1 << s
	}
	return splitKey, newBm
}

func (t *VarTree) deleteLeaf(leaf, prev uint64) error {
	log := t.m.deleteLog(0)
	log.setA(scm.PPtr{ArenaID: t.pool.ID(), Offset: leaf})
	if t.m.headLeaf().Offset == leaf {
		t.m.setHeadLeaf(t.leafNext(leaf))
	} else {
		log.setB(scm.PPtr{ArenaID: t.pool.ID(), Offset: prev})
		t.setLeafNext(prev, t.leafNext(leaf))
	}
	t.releaseLeaf(log)
	log.reset()
	return nil
}

func (t *VarTree) releaseLeaf(log mlog) {
	if t.groups.enabled() {
		if !t.recovering {
			t.groups.freeLeaf(log.a().Offset)
		}
		return
	}
	t.pool.Free(log.aOff(), t.lay.size)
}

// --- recovery -----------------------------------------------------------------

func (t *VarTree) recoverSplit(log mlog) {
	a, b := log.a(), log.b()
	if a.IsNull() || b.IsNull() {
		if !a.IsNull() || !b.IsNull() {
			log.reset()
		}
		return
	}
	if t.leafBitmap(a.Offset) == t.fullBitmap() {
		t.completeSplit(a.Offset, b.Offset)
	} else {
		t.setLeafBitmap(a.Offset, t.fullBitmap()&^t.leafBitmap(b.Offset))
		t.resetInvalidPKeys(a.Offset)
		t.resetInvalidPKeys(b.Offset)
		t.setLeafNext(a.Offset, b)
	}
	log.reset()
}

func (t *VarTree) recoverDelete(log mlog) {
	a, b := log.a(), log.b()
	if a.IsNull() {
		if !b.IsNull() {
			log.reset()
		}
		return
	}
	head := t.m.headLeaf()
	switch {
	case !b.IsNull():
		t.setLeafNext(b.Offset, t.leafNext(a.Offset))
		t.releaseLeaf(log)
	case a == head:
		t.m.setHeadLeaf(t.leafNext(a.Offset))
		t.releaseLeaf(log)
	case t.leafNext(a.Offset) == head:
		t.releaseLeaf(log)
	default:
	}
	log.reset()
}

// rebuild walks the leaf list (Algorithm 17): it gathers the max key per
// leaf for the inner-node rebuild and, for every invalid slot with a
// non-null key pointer, decides between the update-crash case (another valid
// slot in the same leaf references the same key: reset the pointer) and the
// insert/delete-crash case (no other reference: deallocate the key).
func (t *VarTree) rebuild() {
	t.Ops.InnerRebuilds.Add(1)
	leaves, maxKeys, size := t.collectLeaves()
	t.size = size
	t.root = buildInnerNodes(leaves, maxKeys, t.cfg.InnerFanout)
	t.groups.rebuildFreeVector(leaves)
}

// collectLeaves walks the persistent leaf list, running the leak scan on
// every leaf, pruning leaves emptied by an interrupted delete, and returning
// the live leaves with their max keys.
func (t *VarTree) collectLeaves() (leaves []uint64, maxKeys [][]byte, size int) {
	prev := uint64(0)
	for p := t.m.headLeaf(); !p.IsNull(); {
		leaf := p.Offset
		next := t.leafNext(leaf)
		t.reclaimLeaks(leaf)
		mk, n := t.leafMaxKey(leaf)
		if n == 0 {
			// A crash between the last-key bitmap flip and the leaf unlink
			// leaves an empty leaf in the list: finish the delete now.
			t.deleteLeaf(leaf, prev) //nolint:errcheck // release path cannot fail
			p = next
			continue
		}
		leaves = append(leaves, leaf)
		maxKeys = append(maxKeys, mk)
		size += n
		prev = leaf
		p = next
	}
	return leaves, maxKeys, size
}

func (t *VarTree) reclaimLeaks(leaf uint64) {
	bm := t.leafBitmap(leaf)
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) != 0 {
			continue
		}
		pk := t.slotPKey(leaf, s)
		if pk.IsNull() {
			continue
		}
		shared := false
		for v := 0; v < t.cfg.LeafCap; v++ {
			if bm&(1<<v) != 0 && t.slotPKey(leaf, v) == pk {
				shared = true
				break
			}
		}
		if shared {
			// Crashed during an update after the bitmap flip: just drop the
			// second reference.
			t.pool.WritePPtr(t.lay.pkeyOff(leaf, s), scm.PPtr{})
			t.pool.Persist(t.lay.pkeyOff(leaf, s), scm.PPtrSize)
		} else {
			// Crashed during an insert or delete: the key block is orphaned.
			t.pool.Free(t.lay.pkeyOff(leaf, s), t.slotKLen(leaf, s))
		}
	}
}

// CheckInvariants validates leaf-list ordering, fingerprints, key-pointer
// uniqueness and reachability.
func (t *VarTree) CheckInvariants() error {
	var prevMax []byte
	n := 0
	owners := map[scm.PPtr]int{}
	for p := t.m.headLeaf(); !p.IsNull(); p = t.leafNext(p.Offset) {
		leaf := p.Offset
		bm := t.leafBitmap(leaf)
		t.pool.ReadInto(leaf, t.fpBuf)
		var lo, hi []byte
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				if !t.slotPKey(leaf, s).IsNull() {
					return fmt.Errorf("leaf %#x slot %d: invalid slot owns a key pointer", leaf, s)
				}
				continue
			}
			k := t.slotKey(leaf, s)
			owners[t.slotPKey(leaf, s)]++
			if t.lay.hasFP && t.fpBuf[s] != hash1Bytes(k) {
				return fmt.Errorf("leaf %#x slot %d: fingerprint mismatch", leaf, s)
			}
			if lo == nil || bytes.Compare(k, lo) < 0 {
				lo = k
			}
			if hi == nil || bytes.Compare(k, hi) > 0 {
				hi = k
			}
			n++
		}
		if lo != nil && prevMax != nil && bytes.Compare(lo, prevMax) <= 0 {
			return fmt.Errorf("leaf %#x: min key %q <= previous max %q", leaf, lo, prevMax)
		}
		if hi != nil {
			prevMax = hi
		}
	}
	for pk, c := range owners {
		if c != 1 {
			return fmt.Errorf("key block %v has %d owners", pk, c)
		}
	}
	if n != t.size {
		return fmt.Errorf("size mismatch: list has %d keys, tree reports %d", n, t.size)
	}
	if t.root != nil {
		for p := t.m.headLeaf(); !p.IsNull(); p = t.leafNext(p.Offset) {
			leaf := p.Offset
			bm := t.leafBitmap(leaf)
			for s := 0; s < t.cfg.LeafCap; s++ {
				if bm&(1<<s) == 0 {
					continue
				}
				k := t.slotKey(leaf, s)
				if got := t.findLeaf(k); got != leaf {
					return fmt.Errorf("key %q lives in leaf %#x but descent reaches %#x", k, leaf, got)
				}
			}
		}
	}
	return t.groups.checkInvariants()
}

// Memory reports the tree's footprint split by medium.
func (t *VarTree) Memory() MemoryStats {
	var st MemoryStats
	st.SCMBytes = t.pool.AllocatedBytes()
	var walk func(n *stInner[[]byte])
	walk = func(n *stInner[[]byte]) {
		st.Inners++
		st.DRAMBytes += 48
		for _, k := range n.keys {
			st.DRAMBytes += uint64(len(k)) + 24
		}
		if n.isLeafParent() {
			st.DRAMBytes += uint64(len(n.leaves) * 8)
			st.Leaves += len(n.leaves)
			return
		}
		st.DRAMBytes += uint64(len(n.kids) * 8)
		for _, k := range n.kids {
			walk(k)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return st
}
