package core

import (
	"fptree/internal/scm"
)

// VarTree is the single-threaded variable-size-key FPTree (Appendix C).
// Keys are byte strings stored in separately allocated SCM blocks; each leaf
// slot holds a persistent pointer to its key, the key length, and an inline
// value of Config.ValueSize bytes. Every insert allocates the key through
// the leak-prevention allocator interface (the slot's own pointer cell is
// the owner), and recovery runs the Algorithm 17 scan that reclaims keys
// orphaned by a crash.
//
// VarTree is a facade over the same generic engine as Tree — it pairs the
// variable-key codec with the no-op concurrency controller.
type VarTree struct {
	*engine[[]byte, []byte]
}

// VarKV is one variable-size-key pair.
type VarKV struct {
	Key   []byte
	Value []byte
}

// CreateVar formats a new single-threaded variable-size-key FPTree.
func CreateVar(pool *scm.Pool, cfg Config) (*VarTree, error) {
	e, err := createEngine(pool, cfg, keyKindVar, varCodecOf, nopCC{})
	if err != nil {
		return nil, err
	}
	return &VarTree{e}, nil
}

// OpenVar recovers a variable-size-key FPTree: allocator intent, micro-logs,
// the Algorithm 17 leak scan, then the inner-node rebuild. An optional
// RecoveryOptions parallelizes the leaf scan.
func OpenVar(pool *scm.Pool, opts ...RecoveryOptions) (*VarTree, error) {
	e, err := openEngine(pool, keyKindVar, varCodecOf, nopCC{}, recoveryOpts(opts))
	if err != nil {
		return nil, err
	}
	return &VarTree{e}, nil
}

// Scan visits live pairs with key >= from in ascending order until fn
// returns false.
func (t *VarTree) Scan(from []byte, fn func(VarKV) bool) {
	t.engine.scan(from, func(k, v []byte) bool { return fn(VarKV{k, v}) })
}

// ScanN returns up to n pairs with key >= from (nil when n <= 0). The result
// is pre-sized to min(n, Len()), so a large n does not over-allocate.
func (t *VarTree) ScanN(from []byte, n int) []VarKV {
	out := make([]VarKV, 0, scanNCap(n, t.Len()))
	if n <= 0 {
		return nil
	}
	t.Scan(from, func(kv VarKV) bool {
		out = append(out, kv)
		return len(out) < n
	})
	return out
}

// Iterator returns a resumable ascending iterator over [start, end) in
// bytewise key order; a nil edge means unbounded. The iterator is created
// positioned on the window's first key (check Valid); Close it when done.
func (t *VarTree) Iterator(start, end []byte) *VarIterator {
	return t.engine.iterator(varIterBound(start), varIterBound(end), false)
}

// ReverseIterator returns a resumable descending iterator over [start, end),
// positioned on the greatest key below end (nil end: the maximum key).
func (t *VarTree) ReverseIterator(start, end []byte) *VarIterator {
	return t.engine.iterator(varIterBound(start), varIterBound(end), true)
}
