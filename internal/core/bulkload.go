package core

import (
	"fmt"
	"sort"

	"fptree/internal/scm"
)

// DefaultBulkFill is the leaf fill factor used by BulkLoad, matching the
// ~70% node fill the paper's Figure 8 measurement uses.
const DefaultBulkFill = 0.7

// BulkLoad populates an empty tree from a key-value slice far faster than
// repeated inserts: leaves are written sequentially at the given fill factor
// (0 = DefaultBulkFill) and linked as they complete, then the inner nodes
// are built in one pass — the same procedure recovery uses.
//
// Crash consistency: the persistent leaf list always forms a consistent
// prefix of the load (each leaf is complete and durable before it is
// linked), so a crash mid-load recovers a tree holding the first k pairs for
// some k. Leaves that were carved but never linked return to the free
// vector during recovery. Bulk loading requires leaf groups (the default
// configuration).
func (t *Tree) BulkLoad(kvs []KV, fill float64) error {
	e := t.engine
	if e.root.Load().cnt.Load() != 0 || !e.m.headLeaf().IsNull() {
		return fmt.Errorf("fptree: BulkLoad requires an empty tree")
	}
	if !e.groups.enabled() {
		return fmt.Errorf("fptree: BulkLoad requires leaf groups")
	}
	if fill == 0 {
		fill = DefaultBulkFill
	}
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("fptree: fill factor %v out of (0,1]", fill)
	}
	if !sort.SliceIsSorted(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key }) {
		return fmt.Errorf("fptree: BulkLoad input must be sorted by key")
	}
	lay := e.cdc.(*fixedCodec).lay // raw slot layout: bulk writes bypass per-slot persists
	per := int(float64(e.sh.cap) * fill)
	if per < 1 {
		per = 1
	}
	var leaves, maxKeys []uint64
	prev := uint64(0)
	for at := 0; at < len(kvs); at += per {
		end := at + per
		if end > len(kvs) {
			end = len(kvs)
		}
		leaf, err := e.groups.getLeaf()
		if err != nil {
			return err
		}
		var bm uint64
		for s, kv := range kvs[at:end] {
			e.pool.WriteU64(lay.keyOff(leaf, s), kv.Key)
			e.pool.WriteU64(lay.valOff(leaf, s), kv.Value)
			if lay.hasFP {
				e.pool.WriteU8(leaf+uint64(s), hash1(kv.Key))
			}
			bm |= 1 << s
		}
		e.pool.WriteU64(leaf+lay.offBitmap, bm)
		e.pool.WritePPtr(leaf+lay.offNext, scm.PPtr{})
		e.pool.Persist(leaf, lay.size)
		// Link only after the leaf is durable: the list stays a consistent
		// prefix at every instant.
		if prev == 0 {
			e.m.setHeadLeaf(scm.PPtr{ArenaID: e.pool.ID(), Offset: leaf})
		} else {
			e.setLeafNext(prev, scm.PPtr{ArenaID: e.pool.ID(), Offset: leaf})
		}
		prev = leaf
		leaves = append(leaves, leaf)
		maxKeys = append(maxKeys, kvs[end-1].Key)
		e.size.Add(int64(end - at))
	}
	e.root.Store(buildInner(leaves, maxKeys, e.maxKids()))
	return nil
}
