package core

import (
	"fmt"

	"fptree/internal/scm"
)

// DefaultBulkFill is the leaf fill factor used by BulkLoad, matching the
// ~70% node fill the paper's Figure 8 measurement uses.
const DefaultBulkFill = 0.7

// bulkLoad populates an empty tree from n sorted pairs, delivered by at(i),
// far faster than repeated inserts: leaves are written sequentially at the
// given fill factor (0 = DefaultBulkFill) and linked as they complete, then
// the inner nodes are built in one pass — the same procedure recovery uses.
// It is generic over the codec, so both the fixed and the var facades wrap
// it. Bulk loading requires leaf groups and a single-threaded tree.
//
// Crash consistency: each leaf is made durable with its validity bitmap
// still zero, then linked into the list, and only then is the bitmap
// committed. The list is therefore a consistent prefix of the load at every
// instant, and — crucially — a leaf that is not reachable from the list
// never carries a nonzero durable bitmap. (Committing the bitmap before the
// link looks equally safe but is not: recovery would reclassify the
// unreachable leaf as free while its durable bitmap still marks the dead
// slots valid, and the next firstLeaf reuse would resurrect them.) Key
// blocks the var codec already published into an unlinked leaf's slots are
// reclaimed by recovery's free-leaf sweep. A bulk load that returns a
// non-nil error mid-way (allocation failure) leaves carved leaves behind;
// reopen the pool to reclaim them before using the tree.
func (e *engine[K, V]) bulkLoad(n int, fill float64, at func(int) (K, V)) error {
	if e.root.Load().cnt.Load() != 0 || !e.m.headLeaf().IsNull() {
		return fmt.Errorf("fptree: BulkLoad requires an empty tree")
	}
	if !e.groups.enabled() {
		return fmt.Errorf("fptree: BulkLoad requires leaf groups")
	}
	if fill == 0 {
		fill = DefaultBulkFill
	}
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("fptree: fill factor %v out of (0,1]", fill)
	}
	e.noteMutation()
	for i := 0; i < n; i++ {
		k, _ := at(i)
		if err := e.cdc.validateKey(k); err != nil {
			return err
		}
		if i > 0 {
			if prev, _ := at(i - 1); e.cdc.less(k, prev) {
				return fmt.Errorf("fptree: BulkLoad input must be sorted by key")
			}
		}
	}
	per := int(float64(e.sh.cap) * fill)
	if per < 1 {
		per = 1
	}
	leaves := make([]uint64, 0, (n+per-1)/per)
	maxKeys := make([]K, 0, (n+per-1)/per)
	prev := uint64(0)
	for base := 0; base < n; base += per {
		end := base + per
		if end > n {
			end = n
		}
		leaf, err := e.groups.getLeaf()
		if err != nil {
			return err
		}
		var bm uint64
		var maxK K
		for s := 0; s < end-base; s++ {
			k, v := at(base + s)
			if err := e.cdc.writeSlot(leaf, s, k, v); err != nil {
				return err
			}
			if e.sh.hasFP {
				e.pool.WriteU8(leaf+uint64(s), e.cdc.fingerprint(k))
			}
			bm |= 1 << s
			maxK = k
		}
		e.pool.WriteU64(leaf+e.sh.offBitmap, 0)
		e.pool.WritePPtr(leaf+e.sh.offNext, scm.PPtr{})
		e.pool.Persist(leaf, e.sh.size)
		if prev == 0 {
			e.m.setHeadLeaf(scm.PPtr{ArenaID: e.pool.ID(), Offset: leaf})
		} else {
			e.setLeafNext(prev, scm.PPtr{ArenaID: e.pool.ID(), Offset: leaf})
		}
		e.persistLeafHeader(leaf, bm)
		prev = leaf
		leaves = append(leaves, leaf)
		maxKeys = append(maxKeys, maxK)
		e.size.Add(int64(end - base))
	}
	e.root.Store(buildInner(leaves, maxKeys, e.maxKids()))
	return nil
}

// BulkLoad populates an empty tree from a sorted key-value slice; fill is
// the leaf fill factor (0 = DefaultBulkFill). See bulkLoad for the crash
// contract.
func (t *Tree) BulkLoad(kvs []KV, fill float64) error {
	return t.engine.bulkLoad(len(kvs), fill, func(i int) (uint64, uint64) {
		return kvs[i].Key, kvs[i].Value
	})
}

// BulkLoad populates an empty variable-size-key tree from a slice sorted by
// bytewise key order; fill is the leaf fill factor (0 = DefaultBulkFill).
// See bulkLoad for the crash contract.
func (t *VarTree) BulkLoad(kvs []VarKV, fill float64) error {
	return t.engine.bulkLoad(len(kvs), fill, func(i int) ([]byte, []byte) {
		return kvs[i].Key, kvs[i].Value
	})
}
