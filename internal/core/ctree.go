package core

import (
	"fptree/internal/scm"
)

// CTree is the concurrent fixed-size-key FPTree (Section 5, variant 2):
// Selective Concurrency over Selective Persistence. The transient part (the
// DRAM inner nodes) is traversed optimistically with version validation —
// the package htm emulation of running the traversal inside an HTM
// transaction — while the persistent part (the SCM leaves) is protected by
// fine-grained leaf locks, and all persistence primitives execute outside
// the optimistic region, exactly as in Figure 6. Structure modifications
// re-descend pessimistically with lock crabbing and split full nodes
// preemptively. Leaf groups are not used: as the paper notes, they are a
// central synchronization point that hinders scalability.
//
// CTree is a facade over the same generic engine as Tree — it pairs the
// fixed-key codec with the speculative concurrency controller.
type CTree struct {
	*engine[uint64, uint64]
}

// CCreate formats a new concurrent FPTree in the pool.
func CCreate(pool *scm.Pool, cfg Config) (*CTree, error) {
	e, err := createEngine(pool, cfg, keyKindFixed, fixedCodecOf, occCC{})
	if err != nil {
		return nil, err
	}
	return &CTree{e}, nil
}

// COpen recovers a concurrent FPTree: the allocator intent and every
// micro-log in the split and delete arrays are replayed, then the inner
// nodes are rebuilt from the leaf list and all leaf locks are reset (fresh
// handles), per Algorithm 9. An optional RecoveryOptions parallelizes the
// leaf scan.
func COpen(pool *scm.Pool, opts ...RecoveryOptions) (*CTree, error) {
	e, err := openEngine(pool, keyKindFixed, fixedCodecOf, occCC{}, recoveryOpts(opts))
	if err != nil {
		return nil, err
	}
	return &CTree{e}, nil
}

// Scan visits live pairs with key >= from in ascending order until fn
// returns false. Unlike the single-threaded tree, the concurrent scan does
// not chase persistent next pointers (a concurrently deallocated leaf could
// be reused under the reader); it seeks leaf by leaf through the inner
// nodes, using the separators to find each leaf's upper bound.
func (t *CTree) Scan(from uint64, fn func(KV) bool) {
	t.engine.scan(from, func(k, v uint64) bool { return fn(KV{k, v}) })
}

// ScanN returns up to n pairs with key >= from (nil when n <= 0). The result
// is pre-sized to min(n, Len()), so a large n does not over-allocate.
func (t *CTree) ScanN(from uint64, n int) []KV {
	out := make([]KV, 0, scanNCap(n, t.Len()))
	if n <= 0 {
		return nil
	}
	t.Scan(from, func(kv KV) bool {
		out = append(out, kv)
		return len(out) < n
	})
	return out
}

// Iterator returns a resumable ascending iterator over [start, end); end == 0
// means unbounded. Safe to advance while other goroutines mutate the tree:
// each step revalidates the cached leaf's version and re-seeks from the last
// returned key on conflict. See Iter for the exact guarantees.
func (t *CTree) Iterator(start, end uint64) *FixedIterator {
	s, e := fixedIterBounds(start, end)
	return t.engine.iterator(s, e, false)
}

// ReverseIterator returns a resumable descending iterator over [start, end),
// positioned on the greatest key below end (end == 0: the maximum key).
// Reverse steps re-seek through the inner index — the leaf list only links
// forward — so reverse iteration costs one descent per leaf.
func (t *CTree) ReverseIterator(start, end uint64) *FixedIterator {
	s, e := fixedIterBounds(start, end)
	return t.engine.iterator(s, e, true)
}
