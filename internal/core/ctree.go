package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"fptree/internal/htm"
	"fptree/internal/scm"
)

// CTree is the concurrent fixed-size-key FPTree (Section 5, variant 2):
// Selective Concurrency over Selective Persistence. The transient part (the
// DRAM inner nodes) is traversed optimistically with version validation —
// the package htm emulation of running the traversal inside an HTM
// transaction — while the persistent part (the SCM leaves) is protected by
// fine-grained leaf locks, and all persistence primitives execute outside
// the optimistic region, exactly as in Figure 6. Structure modifications
// re-descend pessimistically with lock crabbing and split full nodes
// preemptively. Leaf groups are not used: as the paper notes, they are a
// central synchronization point that hinders scalability.
type CTree struct {
	pool *scm.Pool
	cfg  Config
	lay  fixedLayout
	m    meta

	anchor htm.VersionLock
	root   atomic.Pointer[cInner[uint64]]

	splitQ  chan int // free split micro-log indices
	deleteQ chan int // free delete micro-log indices

	// Stats counts optimistic aborts and restarts, mirroring TSX event
	// counters.
	Stats htm.Stats
	// Ops counts in-leaf search and structure-modification events.
	Ops OpStats

	size atomic.Int64
}

// CCreate formats a new concurrent FPTree in the pool.
func CCreate(pool *scm.Pool, cfg Config) (*CTree, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Variant != VariantFPTree {
		return nil, fmt.Errorf("fptree: only the FPTree variant has a concurrent implementation")
	}
	cfg.GroupSize = 0 // leaf groups hinder scalability; never used here
	if !pool.Root().IsNull() {
		return nil, fmt.Errorf("fptree: pool already contains a tree")
	}
	m, err := createMeta(pool, keyKindFixed, cfg)
	if err != nil {
		return nil, err
	}
	t := &CTree{pool: pool, cfg: cfg, lay: newFixedLayout(cfg.LeafCap), m: m}
	t.initQueues()
	t.root.Store(newCInner[uint64](t.maxKids(), true))
	return t, nil
}

// COpen recovers a concurrent FPTree: the allocator intent and every
// micro-log in the split and delete arrays are replayed, then the inner
// nodes are rebuilt from the leaf list and all leaf locks are reset (fresh
// handles), per Algorithm 9.
func COpen(pool *scm.Pool) (*CTree, error) {
	pool.Recover()
	m, cfg, err := openMeta(pool, keyKindFixed)
	if err != nil {
		return nil, err
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cfg.GroupSize = 0
	t := &CTree{pool: pool, cfg: cfg, lay: newFixedLayout(cfg.LeafCap), m: m}
	t.initQueues()

	// Replay the micro-logs with the single-threaded machinery: recovery is
	// single-threaded by nature and the persistent formats are identical.
	rec := &Tree{pool: pool, cfg: cfg, lay: t.lay, m: m, recovering: true}
	rec.fpBuf = make([]byte, cfg.LeafCap)
	rec.groups.init(pool, m, t.lay.size, 0)
	for i := 0; i < cfg.NumLogs; i++ {
		rec.recoverSplit(m.splitLog(i))
		rec.recoverDelete(m.deleteLog(i))
	}
	leaves, maxKeys, size := rec.collectLeaves()
	t.size.Store(int64(size))
	t.root.Store(buildCInner(leaves, maxKeys, t.maxKids()))
	t.Ops.InnerRebuilds.Add(1)
	return t, nil
}

func (t *CTree) initQueues() {
	t.splitQ = make(chan int, t.cfg.NumLogs)
	t.deleteQ = make(chan int, t.cfg.NumLogs)
	for i := 0; i < t.cfg.NumLogs; i++ {
		t.splitQ <- i
		t.deleteQ <- i
	}
}

func (t *CTree) maxKids() int { return t.cfg.InnerFanout + 1 }

// Pool returns the SCM pool backing the tree.
func (t *CTree) Pool() *scm.Pool { return t.pool }

// Len returns the number of live keys.
func (t *CTree) Len() int { return int(t.size.Load()) }

func (t *CTree) fullBitmap() uint64 {
	if t.cfg.LeafCap == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << t.cfg.LeafCap) - 1
}

// buildCInner bulk-builds the concurrent DRAM part from the recovered leaf
// list, packing nodes to at most ~90% so the first inserts do not
// immediately split every node.
func buildCInner(leaves []uint64, maxKeys []uint64, maxKids int) *cInner[uint64] {
	width := maxKids * 9 / 10
	if width < 2 {
		width = 2
	}
	mk := func(leafSlice []uint64, keySlice []uint64) *cInner[uint64] {
		n := newCInner[uint64](maxKids, true)
		for i, off := range leafSlice {
			n.leaves[i].Store(&leafRef{off: off})
			if i < len(leafSlice)-1 {
				k := keySlice[i]
				n.keys[i].Store(&k)
			}
		}
		n.cnt.Store(int32(len(leafSlice)))
		return n
	}
	if len(leaves) == 0 {
		return newCInner[uint64](maxKids, true)
	}
	var level []*cInner[uint64]
	var seps []uint64
	for at := 0; at < len(leaves); at += width {
		end := at + width
		if end > len(leaves) {
			end = len(leaves)
		}
		level = append(level, mk(leaves[at:end], maxKeys[at:end]))
		if end < len(leaves) {
			seps = append(seps, maxKeys[end-1])
		}
	}
	for len(level) > 1 {
		var next []*cInner[uint64]
		var nextSeps []uint64
		for at := 0; at < len(level); at += width {
			end := at + width
			if end > len(level) {
				end = len(level)
			}
			n := newCInner[uint64](maxKids, false)
			for i := at; i < end; i++ {
				n.kids[i-at].Store(level[i])
				if i < end-1 {
					k := seps[i]
					n.keys[i-at].Store(&k)
				}
			}
			n.cnt.Store(int32(end - at))
			next = append(next, n)
			if end < len(level) {
				nextSeps = append(nextSeps, seps[end-1])
			}
		}
		level, seps = next, nextSeps
	}
	return level[0]
}

// --- leaf persistence helpers (same formats as the single-threaded tree) ----

func (t *CTree) leafBitmap(leaf uint64) uint64 { return t.pool.ReadU64(leaf + t.lay.offBitmap) }
func (t *CTree) leafNext(leaf uint64) scm.PPtr { return t.pool.ReadPPtr(leaf + t.lay.offNext) }

func (t *CTree) setLeafBitmap(leaf, bm uint64) {
	t.pool.WriteU64(leaf+t.lay.offBitmap, bm)
	t.pool.Persist(leaf+t.lay.offBitmap, 8)
}

func (t *CTree) setLeafNext(leaf uint64, p scm.PPtr) {
	t.pool.WritePPtr(leaf+t.lay.offNext, p)
	t.pool.Persist(leaf+t.lay.offNext, scm.PPtrSize)
}

func (t *CTree) findInLeaf(leaf, key uint64) (int, bool) {
	var buf [MaxLeafCap]byte
	bm := t.leafBitmap(leaf)
	t.pool.ReadInto(leaf, buf[:t.cfg.LeafCap])
	fp := hash1(key)
	slot := -1
	var compares, hits, falsePos uint64
	for s := 0; s < t.cfg.LeafCap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		compares++
		if buf[s] != fp {
			continue
		}
		hits++
		if t.pool.ReadU64(t.lay.keyOff(leaf, s)) == key {
			slot = s
			break
		}
		falsePos++
	}
	t.Ops.noteSearch(compares, hits, falsePos, hits)
	return slot, slot >= 0
}

func (t *CTree) insertIntoLeaf(leaf, bm, key, value uint64) {
	slot := bits.TrailingZeros64(^bm)
	t.pool.WriteU64(t.lay.keyOff(leaf, slot), key)
	t.pool.WriteU64(t.lay.valOff(leaf, slot), value)
	t.pool.Persist(t.lay.keyOff(leaf, slot), 16)
	t.pool.WriteU8(leaf+uint64(slot), hash1(key))
	t.pool.Persist(leaf+uint64(slot), 1)
	t.setLeafBitmap(leaf, bm|(1<<slot))
}

func (t *CTree) completeSplit(leaf, newLeaf uint64) uint64 {
	buf := t.pool.ReadBytes(leaf, t.lay.size)
	t.pool.WriteBytes(newLeaf, buf)
	t.pool.Persist(newLeaf, t.lay.size)

	splitKey, newBm := t.findSplitKey(leaf)
	t.setLeafBitmap(newLeaf, newBm)
	t.setLeafBitmap(leaf, t.fullBitmap()&^newBm)
	t.setLeafNext(leaf, scm.PPtr{ArenaID: t.pool.ID(), Offset: newLeaf})
	return splitKey
}

func (t *CTree) findSplitKey(leaf uint64) (uint64, uint64) {
	m := t.cfg.LeafCap
	var keys [MaxLeafCap]uint64
	var idxs [MaxLeafCap]int
	for s := 0; s < m; s++ {
		keys[s] = t.pool.ReadU64(t.lay.keyOff(leaf, s))
		idxs[s] = s
	}
	sl := idxs[:m]
	sort.Slice(sl, func(i, j int) bool { return keys[sl[i]] < keys[sl[j]] })
	keep := (m + 1) / 2
	splitKey := keys[sl[keep-1]]
	var newBm uint64
	for _, s := range sl[keep:] {
		newBm |= 1 << s
	}
	return splitKey, newBm
}

// --- optimistic descent -------------------------------------------------------

// descend optimistically walks to the leaf covering key (Figure 6: the
// traversal is the HTM-transaction part). On success it returns the locked
// version snapshot of the leaf parent, the child index and the leaf handle;
// ok=false means a conflict was observed and the caller must restart.
func (t *CTree) descend(key uint64) (n *cInner[uint64], ver uint64, idx int, ref *leafRef, ok bool) {
	av := t.anchor.ReadBegin()
	n = t.root.Load()
	ver = n.lock.ReadBegin()
	if !t.anchor.ReadValidate(av) {
		return nil, 0, 0, nil, false
	}
	for {
		i, sok := n.search(key, lessU64)
		if !sok || !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		if n.leafParent {
			if n.cnt.Load() == 0 {
				return n, ver, 0, nil, true // empty tree
			}
			r := n.leaves[i].Load()
			if r == nil || !n.lock.ReadValidate(ver) {
				return nil, 0, 0, nil, false
			}
			return n, ver, i, r, true
		}
		child := n.kids[i].Load()
		if child == nil || !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		cver := child.lock.ReadBegin()
		if !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		n, ver = child, cver
	}
}

func (t *CTree) abort() {
	t.pool.PanicIfCrashed()
	t.Stats.Aborts.Add(1)
	t.Stats.Restarts.Add(1)
}

// Find returns the value stored under key (Algorithm 1). The leaf is read
// under its shared lock; a locked or concurrently modified path aborts and
// retries, as a TSX conflict would.
func (t *CTree) Find(key uint64) (uint64, bool) {
	for {
		n, ver, _, ref, ok := t.descend(key)
		if !ok {
			t.abort()
			continue
		}
		if ref == nil {
			return 0, false // empty tree
		}
		if !ref.lk.TryRLock() {
			t.abort()
			continue
		}
		if !n.lock.ReadValidate(ver) {
			ref.lk.RUnlock()
			t.abort()
			continue
		}
		s, found := t.findInLeaf(ref.off, key)
		var v uint64
		if found {
			v = t.pool.ReadU64(t.lay.valOff(ref.off, s))
		}
		ref.lk.RUnlock()
		return v, found
	}
}

// Insert adds a key-value pair (Algorithm 2). The fast path locks only the
// leaf; a split performs the persistent work outside any inner-node lock and
// then re-descends pessimistically to update the parents.
func (t *CTree) Insert(key, value uint64) error {
	for {
		n, ver, _, ref, ok := t.descend(key)
		if !ok {
			t.abort()
			continue
		}
		if ref == nil {
			if err := t.firstLeaf(n); err != nil {
				return err
			}
			continue
		}
		if !ref.lk.TryLock() {
			t.abort()
			continue
		}
		if ref.dead.Load() || !n.lock.ReadValidate(ver) {
			ref.lk.Unlock()
			t.abort()
			continue
		}
		bm := t.leafBitmap(ref.off)
		if bm != t.fullBitmap() {
			t.insertIntoLeaf(ref.off, bm, key, value)
			ref.lk.Unlock()
			t.size.Add(1)
			return nil
		}
		// Split: persistent part first (outside any inner lock), then the
		// parent update in a pessimistic SMO descent.
		splitKey, newRef, err := t.splitLeaf(ref)
		if err != nil {
			ref.lk.Unlock()
			return err
		}
		t.insertSMO(splitKey, ref, newRef)
		target := ref
		if key > splitKey {
			target = newRef
		}
		t.insertIntoLeaf(target.off, t.leafBitmap(target.off), key, value)
		ref.lk.Unlock()
		newRef.lk.Unlock()
		t.size.Add(1)
		return nil
	}
}

// firstLeaf materializes the head leaf under the root lock.
func (t *CTree) firstLeaf(root *cInner[uint64]) error {
	t.anchor.Lock()
	r := t.root.Load()
	r.lock.Lock()
	if r != root || r.cnt.Load() != 0 {
		r.lock.UnlockNoBump()
		t.anchor.UnlockNoBump()
		return nil // someone else created it; retry the insert
	}
	ptr, err := t.pool.Alloc(t.m.base+mOffHeadLeaf, t.lay.size)
	if err != nil {
		r.lock.UnlockNoBump()
		t.anchor.UnlockNoBump()
		return err
	}
	r.leaves[0].Store(&leafRef{off: ptr.Offset})
	r.cnt.Store(1)
	r.lock.Unlock()
	t.anchor.UnlockNoBump()
	return nil
}

// splitLeaf is Algorithm 3 under a micro-log drawn from the lock-free queue.
// The new leaf's handle is born write-locked; the caller publishes it to the
// parents and unlocks both halves.
func (t *CTree) splitLeaf(ref *leafRef) (uint64, *leafRef, error) {
	li := <-t.splitQ
	log := t.m.splitLog(li)
	log.setA(scm.PPtr{ArenaID: t.pool.ID(), Offset: ref.off})
	if _, err := t.pool.Alloc(log.bOff(), t.lay.size); err != nil {
		log.reset()
		t.splitQ <- li
		return 0, nil, err
	}
	newOff := log.b().Offset
	splitKey := t.completeSplit(ref.off, newOff)
	log.reset()
	t.splitQ <- li
	t.Ops.LeafSplits.Add(1)
	newRef := &leafRef{off: newOff}
	newRef.lk.Lock()
	return splitKey, newRef, nil
}

// insertSMO inserts (splitKey, newRef) into the leaf parent covering the
// locked leaf oldRef, splitting full nodes preemptively on the way down with
// lock crabbing. Because oldRef stays locked for the whole operation, the
// leaf's key range cannot change and the descent deterministically lands on
// its parent.
func (t *CTree) insertSMO(splitKey uint64, oldRef, newRef *leafRef) {
	t.anchor.Lock()
	cur := t.root.Load()
	cur.lock.Lock()
	if cur.full() {
		up, right := cur.splitNode()
		nr := newCInner[uint64](t.maxKids(), false)
		nr.kids[0].Store(cur)
		nr.kids[1].Store(right)
		nr.keys[0].Store(&up)
		nr.cnt.Store(2)
		t.root.Store(nr)
		t.anchor.Unlock()
		if splitKey > up {
			cur.lock.Unlock()
			cur = right
			cur.lock.Lock() // fresh node: no contention
		}
	} else {
		t.anchor.UnlockNoBump()
	}
	for !cur.leafParent {
		i, _ := cur.search(splitKey, lessU64)
		child := cur.kids[i].Load()
		child.lock.Lock()
		if child.full() {
			up, right := child.splitNode()
			cur.insertAt(i, up, right, nil)
			if splitKey > up {
				child.lock.Unlock()
				child = right
				child.lock.Lock()
			}
		}
		cur.lock.Unlock()
		cur = child
	}
	i, _ := cur.search(splitKey, lessU64)
	if got := cur.leaves[i].Load(); got != oldRef {
		panic("fptree: SMO descent lost the split leaf")
	}
	cur.insertAt(i, splitKey, nil, newRef)
	cur.lock.Unlock()
}

// Update is Algorithm 8: one p-atomic bitmap write moves the record to a
// fresh slot with the new value.
func (t *CTree) Update(key, value uint64) (bool, error) {
	for {
		n, ver, _, ref, ok := t.descend(key)
		if !ok {
			t.abort()
			continue
		}
		if ref == nil {
			return false, nil
		}
		if !ref.lk.TryLock() {
			t.abort()
			continue
		}
		if ref.dead.Load() || !n.lock.ReadValidate(ver) {
			ref.lk.Unlock()
			t.abort()
			continue
		}
		prev, found := t.findInLeaf(ref.off, key)
		if !found {
			ref.lk.Unlock()
			return false, nil
		}
		bm := t.leafBitmap(ref.off)
		target := ref
		var newRef *leafRef
		if bm == t.fullBitmap() {
			splitKey, nr, err := t.splitLeaf(ref)
			if err != nil {
				ref.lk.Unlock()
				return false, err
			}
			newRef = nr
			t.insertSMO(splitKey, ref, newRef)
			if key > splitKey {
				target = newRef
			}
			bm = t.leafBitmap(target.off)
			prev, _ = t.findInLeaf(target.off, key)
		}
		slot := bits.TrailingZeros64(^bm)
		t.pool.WriteU64(t.lay.keyOff(target.off, slot), key)
		t.pool.WriteU64(t.lay.valOff(target.off, slot), value)
		t.pool.Persist(t.lay.keyOff(target.off, slot), 16)
		t.pool.WriteU8(target.off+uint64(slot), hash1(key))
		t.pool.Persist(target.off+uint64(slot), 1)
		t.setLeafBitmap(target.off, bm&^(1<<prev)|(1<<slot))
		ref.lk.Unlock()
		if newRef != nil {
			newRef.lk.Unlock()
		}
		return true, nil
	}
}

// Upsert inserts the pair or updates it in place when the key exists.
func (t *CTree) Upsert(key, value uint64) error {
	ok, err := t.Update(key, value)
	if err != nil || ok {
		return err
	}
	return t.Insert(key, value)
}

// Delete removes key (Algorithm 5). Clearing a non-last key is one p-atomic
// bitmap write under the leaf lock. Removing a leaf's last key unlinks and
// deallocates the leaf when its left neighbor is adjacent in the same parent
// (or when the leaf is the list head); otherwise the empty leaf stays linked
// and is reused by later inserts into its range and reclaimed on recovery —
// the concurrent left-neighbor hunt across subtrees is not worth its locks.
func (t *CTree) Delete(key uint64) (bool, error) {
	for {
		n, ver, _, ref, ok := t.descend(key)
		if !ok {
			t.abort()
			continue
		}
		if ref == nil {
			return false, nil
		}
		if !ref.lk.TryLock() {
			t.abort()
			continue
		}
		if ref.dead.Load() || !n.lock.ReadValidate(ver) {
			ref.lk.Unlock()
			t.abort()
			continue
		}
		slot, found := t.findInLeaf(ref.off, key)
		if !found {
			ref.lk.Unlock()
			return false, nil
		}
		bm := t.leafBitmap(ref.off)
		if bm&^(1<<slot) != 0 {
			t.setLeafBitmap(ref.off, bm&^(1<<slot))
			ref.lk.Unlock()
			t.size.Add(-1)
			return true, nil
		}
		// Last key: try to remove the whole leaf.
		if !t.deleteSMO(key, ref) {
			// Could not take the neighbor locks (or leftmost-in-parent):
			// leave the leaf empty but linked.
			t.setLeafBitmap(ref.off, 0)
			ref.lk.Unlock()
		}
		t.size.Add(-1)
		return true, nil
	}
}

// deleteSMO removes the locked, about-to-be-empty leaf from the tree:
// pessimistic crabbing descent, removal from the leaf parent (pruning
// emptied ancestors and collapsing the root), then the persistent unlink and
// deallocation under a delete micro-log (Algorithm 6). Returns false when
// the leaf must stay (left neighbor unavailable).
func (t *CTree) deleteSMO(key uint64, ref *leafRef) bool {
	t.anchor.Lock()
	anchorHeld := true
	root := t.root.Load()
	root.lock.Lock()
	stack := []*cInner[uint64]{root}
	release := func(modified int) {
		// Unlock stack nodes; indexes >= modified were changed.
		for i, nd := range stack {
			if i >= modified {
				nd.lock.Unlock()
			} else {
				nd.lock.UnlockNoBump()
			}
		}
		if anchorHeld {
			t.anchor.UnlockNoBump()
		}
	}
	cur := root
	if cur.leafParent || cur.cnt.Load() > 2 {
		t.anchor.UnlockNoBump()
		anchorHeld = false
	}
	for !cur.leafParent {
		i, _ := cur.search(key, lessU64)
		child := cur.kids[i].Load()
		child.lock.Lock()
		stack = append(stack, child)
		if child.cnt.Load() >= 2 {
			// Safe: removal below cannot empty this child; release ancestors.
			for _, nd := range stack[:len(stack)-1] {
				nd.lock.UnlockNoBump()
			}
			if anchorHeld {
				t.anchor.UnlockNoBump()
				anchorHeld = false
			}
			stack = stack[len(stack)-1:]
		}
		cur = child
	}
	i, _ := cur.search(key, lessU64)
	if got := cur.leaves[i].Load(); got != ref {
		panic("fptree: delete SMO descent lost the leaf")
	}
	isHead := t.m.headLeaf().Offset == ref.off
	var prevRef *leafRef
	if !isHead {
		if i == 0 {
			release(len(stack)) // leftmost in parent and not list head: bail
			return false
		}
		prevRef = cur.leaves[i-1].Load()
		if !prevRef.lk.TryLock() {
			release(len(stack))
			return false
		}
	}
	// DRAM removal: prune emptied nodes bottom-up along the locked chain.
	cur.removeAt(i)
	modified := len(stack) - 1
	for level := len(stack) - 1; level > 0 && stack[level].cnt.Load() == 0; level-- {
		parent := stack[level-1]
		j, _ := parent.search(key, lessU64)
		parent.removeAt(j)
		modified = level - 1
	}
	// Root collapse: keep the height minimal.
	if anchorHeld {
		r := stack[0]
		for !r.leafParent && r.cnt.Load() == 1 {
			r = r.kids[0].Load()
			t.root.Store(r)
		}
		if r != stack[0] {
			for i, nd := range stack {
				if i >= modified {
					nd.lock.Unlock()
				} else {
					nd.lock.UnlockNoBump()
				}
			}
			t.anchor.Unlock()
			anchorHeld = false
			stack = nil
		}
	}
	if stack != nil {
		for i, nd := range stack {
			if i >= modified {
				nd.lock.Unlock()
			} else {
				nd.lock.UnlockNoBump()
			}
		}
		if anchorHeld {
			t.anchor.UnlockNoBump()
		}
	}

	// Persistent unlink + deallocation (Algorithm 6).
	li := <-t.deleteQ
	log := t.m.deleteLog(li)
	log.setA(scm.PPtr{ArenaID: t.pool.ID(), Offset: ref.off})
	if isHead {
		t.m.setHeadLeaf(t.leafNext(ref.off))
	} else {
		log.setB(scm.PPtr{ArenaID: t.pool.ID(), Offset: prevRef.off})
		t.setLeafNext(prevRef.off, t.leafNext(ref.off))
	}
	ref.dead.Store(true) // handle stays locked forever
	t.pool.Free(log.aOff(), t.lay.size)
	log.reset()
	t.deleteQ <- li
	if prevRef != nil {
		prevRef.lk.Unlock()
	}
	return true
}

// Scan visits live pairs with key >= from in ascending order until fn
// returns false. Unlike the single-threaded tree, the concurrent scan does
// not chase persistent next pointers (a concurrently deallocated leaf could
// be reused under the reader); it seeks leaf by leaf through the inner
// nodes, using the separators to find each leaf's upper bound.
func (t *CTree) Scan(from uint64, fn func(KV) bool) {
	cur := from
	var batch []KV
	for {
		batch = batch[:0]
		ub := uint64(math.MaxUint64)
		ok := func() bool {
			n, ver, idx, ref, dok := t.descendUB(cur, &ub)
			if !dok {
				return false
			}
			if ref == nil {
				return true // empty tree
			}
			if !ref.lk.TryRLock() {
				return false
			}
			if !n.lock.ReadValidate(ver) {
				ref.lk.RUnlock()
				return false
			}
			_ = idx
			bm := t.leafBitmap(ref.off)
			for s := 0; s < t.cfg.LeafCap; s++ {
				if bm&(1<<s) == 0 {
					continue
				}
				if k := t.pool.ReadU64(t.lay.keyOff(ref.off, s)); k >= cur {
					batch = append(batch, KV{k, t.pool.ReadU64(t.lay.valOff(ref.off, s))})
				}
			}
			ref.lk.RUnlock()
			return true
		}()
		if !ok {
			t.abort()
			continue
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].Key < batch[j].Key })
		for _, kv := range batch {
			if !fn(kv) {
				return
			}
		}
		if ub == math.MaxUint64 {
			return // rightmost leaf done
		}
		cur = ub + 1
	}
}

// descendUB is descend plus tracking of the tightest right-hand separator on
// the path: the reached leaf covers no key greater than *ub.
func (t *CTree) descendUB(key uint64, ub *uint64) (n *cInner[uint64], ver uint64, idx int, ref *leafRef, ok bool) {
	av := t.anchor.ReadBegin()
	n = t.root.Load()
	ver = n.lock.ReadBegin()
	if !t.anchor.ReadValidate(av) {
		return nil, 0, 0, nil, false
	}
	for {
		i, sok := n.search(key, lessU64)
		if !sok {
			return nil, 0, 0, nil, false
		}
		if i < int(n.cnt.Load())-1 {
			kp := n.keys[i].Load()
			if kp == nil {
				return nil, 0, 0, nil, false
			}
			if *kp < *ub {
				*ub = *kp
			}
		}
		if !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		if n.leafParent {
			if n.cnt.Load() == 0 {
				return n, ver, 0, nil, true
			}
			r := n.leaves[i].Load()
			if r == nil || !n.lock.ReadValidate(ver) {
				return nil, 0, 0, nil, false
			}
			return n, ver, i, r, true
		}
		child := n.kids[i].Load()
		if child == nil || !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		cver := child.lock.ReadBegin()
		if !n.lock.ReadValidate(ver) {
			return nil, 0, 0, nil, false
		}
		n, ver = child, cver
	}
}

// ScanN returns up to n pairs with key >= from.
func (t *CTree) ScanN(from uint64, n int) []KV {
	out := make([]KV, 0, n)
	t.Scan(from, func(kv KV) bool {
		out = append(out, kv)
		return len(out) < n
	})
	return out
}

// CheckInvariants validates the tree structure. It must only be called
// while no concurrent operations are in flight.
func (t *CTree) CheckInvariants() error {
	// Persistent side: walk the leaf list, keys ordered between leaves
	// (empty leaves are permitted: deferred deletions).
	var prevMax uint64
	havePrev := false
	n := 0
	for p := t.m.headLeaf(); !p.IsNull(); p = t.leafNext(p.Offset) {
		leaf := p.Offset
		bm := t.leafBitmap(leaf)
		var lo, hi uint64
		lo = math.MaxUint64
		cnt := 0
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := t.pool.ReadU64(t.lay.keyOff(leaf, s))
			if fp := t.pool.ReadU8(leaf + uint64(s)); fp != hash1(k) {
				return fmt.Errorf("leaf %#x slot %d: fingerprint mismatch", leaf, s)
			}
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
			cnt++
			n++
		}
		if cnt > 0 {
			if havePrev && lo <= prevMax {
				return fmt.Errorf("leaf %#x: min %d <= prev max %d", leaf, lo, prevMax)
			}
			prevMax, havePrev = hi, true
		}
	}
	if n != t.Len() {
		return fmt.Errorf("leaf list holds %d keys, tree reports %d", n, t.Len())
	}
	// Transient side: every key reachable by Find.
	for p := t.m.headLeaf(); !p.IsNull(); p = t.leafNext(p.Offset) {
		leaf := p.Offset
		bm := t.leafBitmap(leaf)
		for s := 0; s < t.cfg.LeafCap; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := t.pool.ReadU64(t.lay.keyOff(leaf, s))
			v, found := t.Find(k)
			if !found || v != t.pool.ReadU64(t.lay.valOff(leaf, s)) {
				return fmt.Errorf("key %d in leaf %#x unreachable via descent", k, leaf)
			}
		}
	}
	return nil
}
