package core

import (
	"math/rand"
	"testing"

	"fptree/internal/obs"
)

// TestFingerprintFalsePositiveRateUniform checks the paper's Section 4.2
// argument empirically: with a uniform 1-byte hash, a fingerprint compare
// matches a differing key with probability 1/256, so the measured
// false-positive rate over many lookups must sit well under 3%.
func TestFingerprintFalsePositiveRateUniform(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 56, InnerFanout: 64})
	rng := rand.New(rand.NewSource(42))
	const n = 50_000
	keys := make([]uint64, n)
	seen := map[uint64]bool{}
	for i := range keys {
		k := rng.Uint64()
		for seen[k] {
			k = rng.Uint64()
		}
		seen[k] = true
		keys[i] = k
		if err := tr.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Ops = OpStats{} // measure lookups only
	for i, k := range keys {
		v, ok := tr.Find(k)
		if !ok || v != uint64(i) {
			t.Fatalf("Find(%d) = %d, %v", k, v, ok)
		}
	}
	if tr.Ops.FPCompares.Load() == 0 {
		t.Fatal("no fingerprint compares recorded")
	}
	if rate := tr.Ops.FPRate(); rate >= 0.03 {
		t.Fatalf("fingerprint false-positive rate %.4f >= 3%% (compares=%d, falsePos=%d)",
			rate, tr.Ops.FPCompares.Load(), tr.Ops.FPFalsePositives.Load())
	} else if rate == 0 {
		t.Fatalf("false-positive rate exactly 0 over %d compares; instrumentation suspect",
			tr.Ops.FPCompares.Load())
	}
	// The headline claim: fingerprints keep expected key probes at ~1.
	if avg := tr.Ops.AvgKeyProbes(); avg >= 1.5 {
		t.Fatalf("average key probes per search = %.3f, want ~1", avg)
	}
}

func TestOpStatsCountersAdvance(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerFanout: 4})
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Ops.LeafSplits.Load() == 0 {
		t.Fatal("no leaf splits counted after 1000 inserts into 8-entry leaves")
	}
	for i := uint64(0); i < 1000; i++ {
		if _, ok := tr.Find(i); !ok {
			t.Fatalf("Find(%d) failed", i)
		}
	}
	if tr.Ops.Searches.Load() == 0 || tr.Ops.FPCompares.Load() == 0 {
		t.Fatalf("search counters did not advance: %d searches, %d compares",
			tr.Ops.Searches.Load(), tr.Ops.FPCompares.Load())
	}
	// FPHits and KeyProbes coincide on the fingerprint path.
	if tr.Ops.FPHits.Load() != tr.Ops.KeyProbes.Load() {
		t.Fatalf("FPHits %d != KeyProbes %d on fingerprint-only workload",
			tr.Ops.FPHits.Load(), tr.Ops.KeyProbes.Load())
	}
}

func TestTreeRegisterMetricsSeries(t *testing.T) {
	tr := newTree(t, Config{LeafCap: 8, InnerFanout: 4})
	reg := obs.NewRegistry()
	tr.RegisterMetrics(reg)
	for i := uint64(0); i < 100; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		if _, ok := tr.Find(i); !ok {
			t.Fatalf("Find(%d) failed", i)
		}
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"fptree_searches_total",
		"fptree_key_probes_total",
		"fptree_fingerprint_compares_total",
		"fptree_fingerprint_hits_total",
		"fptree_fingerprint_false_positives_total",
		"fptree_leaf_splits_total",
		"fptree_inner_rebuilds_total",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("registry missing series %q: %v", name, reg.Names())
		}
	}
	if snap.Get("fptree_searches_total") == 0 {
		t.Fatal("registered series does not read the live counter")
	}
}

func TestCTreeRegisterMetricsIncludesHTM(t *testing.T) {
	ct, err := CCreate(newPool(64), Config{LeafCap: 8, InnerFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ct.RegisterMetrics(reg)
	for _, name := range []string{
		"fptree_fingerprint_false_positives_total",
		"htm_aborts_total",
		"htm_restarts_total",
		"htm_fallbacks_total",
	} {
		if _, ok := reg.Snapshot()[name]; !ok {
			t.Fatalf("registry missing series %q: %v", name, reg.Names())
		}
	}
}
