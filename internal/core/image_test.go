package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"fptree/internal/scm"
)

// imageOracleFixed applies the same trace to a map, the ground truth the
// reloaded tree must match.
func imageOracleFixed(seed int64, n int) map[uint64]uint64 {
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(300)) + 1
		switch rng.Intn(4) {
		case 0:
			delete(oracle, k)
		case 1:
			if _, ok := oracle[k]; ok {
				oracle[k] = k * 3
			}
		default:
			oracle[k] = k * 7
		}
	}
	return oracle
}

func driveFixed(t *testing.T, tr engineOpsFixed, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(300)) + 1
		var err error
		switch rng.Intn(4) {
		case 0:
			_, err = tr.Delete(k)
		case 1:
			_, err = tr.Update(k, k*3)
		default:
			err = tr.Upsert(k, k*7)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestImageRoundTripFixed drives a mixed workload, saves the image, reloads
// it, and diffs the recovered tree against a map oracle for both the
// single-threaded and concurrent fixed-key codecs.
func TestImageRoundTripFixed(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := "single"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			const seed, n = 99, 1500
			pool := newPool(64)
			cfg := Config{LeafCap: 8, InnerFanout: 4}
			if concurrent {
				tr, err := CCreate(pool, cfg)
				if err != nil {
					t.Fatal(err)
				}
				driveFixed(t, tr, seed, n)
			} else {
				tr, err := Create(pool, cfg)
				if err != nil {
					t.Fatal(err)
				}
				driveFixed(t, tr, seed, n)
			}

			path := filepath.Join(t.TempDir(), "tree.img")
			if err := pool.Save(path); err != nil {
				t.Fatal(err)
			}
			lp, err := scm.Load(path, scm.LatencyConfig{CacheBytes: -1})
			if err != nil {
				t.Fatal(err)
			}

			oracle := imageOracleFixed(seed, n)
			var got []KV
			if concurrent {
				rt, err := COpen(lp)
				if err != nil {
					t.Fatal(err)
				}
				if err := rt.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				got = scanAllFixed(rt.engine)
			} else {
				rt, err := Open(lp)
				if err != nil {
					t.Fatal(err)
				}
				if err := rt.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				got = scanAllFixed(rt.engine)
			}
			if len(got) != len(oracle) {
				t.Fatalf("reloaded tree has %d keys, oracle has %d", len(got), len(oracle))
			}
			for _, kv := range got {
				if want, ok := oracle[kv.Key]; !ok || want != kv.Value {
					t.Fatalf("key %d = %d, oracle %d (present=%v)", kv.Key, kv.Value, want, ok)
				}
			}
		})
	}
}

// TestImageRoundTripVar is the variable-size-key version of the oracle diff.
func TestImageRoundTripVar(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := "single"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			const seed, n = 101, 1200
			pool := newPool(64)
			cfg := Config{LeafCap: 8, InnerFanout: 4}
			var tr engineOpsVar
			var err error
			if concurrent {
				tr, err = CCreateVar(pool, cfg)
			} else {
				tr, err = CreateVar(pool, cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			oracle := make(map[string]string)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key-%04d", rng.Intn(250))
				v := fmt.Sprintf("val-%04d", rng.Intn(1000))
				switch rng.Intn(4) {
				case 0:
					if _, err := tr.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(oracle, k)
				case 1:
					ok, err := tr.Update([]byte(k), []byte(v))
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						oracle[k] = v
					}
				default:
					if err := tr.Upsert([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					oracle[k] = v
				}
			}

			path := filepath.Join(t.TempDir(), "tree.img")
			if err := pool.Save(path); err != nil {
				t.Fatal(err)
			}
			lp, err := scm.Load(path, scm.LatencyConfig{CacheBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			var got []VarKV
			if concurrent {
				rt, err := COpenVar(lp)
				if err != nil {
					t.Fatal(err)
				}
				if err := rt.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				got = scanAllVar(rt.engine)
			} else {
				rt, err := OpenVar(lp)
				if err != nil {
					t.Fatal(err)
				}
				if err := rt.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				got = scanAllVar(rt.engine)
			}
			if len(got) != len(oracle) {
				t.Fatalf("reloaded tree has %d keys, oracle has %d", len(got), len(oracle))
			}
			for _, kv := range got {
				if want, ok := oracle[string(kv.Key)]; !ok || want != string(kv.Value) {
					t.Fatalf("key %q = %q, oracle %q (present=%v)", kv.Key, kv.Value, want, ok)
				}
			}
		})
	}
}

// TestFileBackedOpenRecoversTree builds a tree in a file-backed arena, tears
// the process image down without Close (as kill -9 would), reopens the file
// and checks the recovered tree matches the oracle.
func TestFileBackedOpenRecoversTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.dat")
	pool, recovered, err := scm.OpenFile(path, 16<<20, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if recovered {
		t.Fatal("fresh file reported recovered")
	}
	if HasTree(pool) {
		t.Fatal("fresh arena claims to hold a tree")
	}
	tr, err := CCreate(pool, Config{LeafCap: 8, InnerFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	const seed, n = 7, 2000
	driveFixed(t, tr, seed, n)
	// No Close, no Sync: simulate sudden process death. Reopen from the file.
	pool2, recovered, err := scm.OpenFile(path, 0, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if !recovered {
		t.Fatal("existing arena not reported recovered")
	}
	if pool2.WasCleanShutdown() {
		t.Fatal("sudden-death image reported clean shutdown")
	}
	if !HasTree(pool2) {
		t.Fatal("HasTree = false on an arena with a tree")
	}
	rt, err := COpen(pool2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	oracle := imageOracleFixed(seed, n)
	if rt.Len() != len(oracle) {
		t.Fatalf("recovered tree has %d keys, oracle has %d", rt.Len(), len(oracle))
	}
	for k, v := range oracle {
		got, ok := rt.Find(k)
		if !ok || got != v {
			t.Fatalf("key %d = %d,%v, oracle %d", k, got, ok, v)
		}
	}
}

// TestHasTreeDistinguishesStates pins the create-or-recover decision points:
// no tree on a fresh arena, a tree after Create, and still a tree after a
// save/load cycle.
func TestHasTreeDistinguishesStates(t *testing.T) {
	pool := newPool(64)
	if HasTree(pool) {
		t.Fatal("fresh pool claims a tree")
	}
	if _, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4}); err != nil {
		t.Fatal(err)
	}
	if !HasTree(pool) {
		t.Fatal("pool with a tree reports none")
	}
	path := filepath.Join(t.TempDir(), "img")
	if err := pool.Save(path); err != nil {
		t.Fatal(err)
	}
	lp, err := scm.Load(path, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !HasTree(lp) {
		t.Fatal("loaded image with a tree reports none")
	}
}

// TestFileBackedRecoveryMatchesInMemory recovers the same logical state two
// ways — through a Save image and through the arena file — and checks the
// durable bytes agree, so the file-backed path cannot drift from the
// emulated-crash pipeline.
func TestFileBackedRecoveryMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	filePath := filepath.Join(dir, "arena.dat")
	pool, _, err := scm.OpenFile(filePath, 16<<20, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	driveFixed(t, tr, 11, 800)
	imgPath := filepath.Join(dir, "arena.img")
	if err := pool.Save(imgPath); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	fp, _, err := scm.OpenFile(filePath, 0, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	ip, err := scm.Load(imgPath, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := Open(fp)
	if err != nil {
		t.Fatal(err)
	}
	it, err := Open(ip)
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ft.Len() != it.Len() {
		t.Fatalf("file-backed Len %d != image Len %d", ft.Len(), it.Len())
	}
	fKV, iKV := scanAllFixed(ft.engine), scanAllFixed(it.engine)
	for i := range fKV {
		if fKV[i] != iKV[i] {
			t.Fatalf("scan[%d]: file-backed %v, image %v", i, fKV[i], iKV[i])
		}
	}
	// The clean-shutdown marker differs by design (the image was saved before
	// Close); mask it out and the durable views must be byte-identical.
	fImg, iImg := durableImage(t, ft.pool), durableImage(t, it.pool)
	for _, img := range [][]byte{fImg, iImg} {
		for i := 0; i < 8; i++ {
			img[scm.OffClean+i] = 0
		}
	}
	if !bytes.Equal(fImg, iImg) {
		t.Fatal("file-backed and image-loaded durable arenas differ")
	}
}
