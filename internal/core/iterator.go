package core

import (
	"slices"

	"fptree/internal/htm"
	"fptree/internal/obs/trace"
)

// Resumable range iterators over the [start, end) key window, for all four
// facades. The design follows the leaf sibling list the paper's scans use,
// with one twist that makes the iterator safe under Selective Concurrency:
// every batch of keys is read from one leaf under its shared lock together
// with the leaf's modification version, and each Next() revalidates that
// version before serving from the batch. On conflict (the leaf was split,
// merged or mutated underneath) or exhaustion the iterator re-seeks from the
// last key it returned, so iteration is linearizable per step: every emitted
// key was live at its emission instant, emission is strictly monotonic (no
// key is ever returned twice), and a key that is present for the whole
// session and inside the window is never skipped.
//
// What the iterator does NOT provide is a snapshot: keys inserted or deleted
// concurrently behind the cursor are simply outside its past, and ones ahead
// of the cursor may or may not be observed depending on when the mutation
// lands relative to the cursor's arrival.
//
// Forward iteration steps to the next leaf via the single-threaded engine's
// persistent next pointer (safe while nothing mutated) or, concurrently, by
// re-seeking past the tightest right-hand separator observed during the
// descent — the same ub device scanSeek uses. Reverse iteration always
// re-seeks through the inner index using the tightest LEFT separator: sibling
// pointers only go forward, and the left separator is by construction the max
// key of the left neighbor subtree, so descending to it lands exactly one
// leaf to the left (and strictly decreases at every hop, which guarantees
// termination).

// bound is an optional key: an inclusive/exclusive domain edge or a separator
// picked up during a descent. ok=false means "unbounded".
type bound[K any] struct {
	key K
	ok  bool
}

// Iter is a resumable iterator over a [start, end) window of the tree,
// created by the facades' Iterator/ReverseIterator methods. A freshly created
// iterator is already positioned on the first key of the window (check
// Valid); Next advances. Iterators are not safe for concurrent use by
// multiple goroutines, but on the concurrent trees they may run alongside
// writers. Close releases the iterator; it must not be used after the tree
// is re-opened (Recover builds a new engine).
type Iter[K, V any] struct {
	e       *engine[K, V]
	reverse bool
	start   bound[K] // inclusive lower domain edge
	end     bound[K] // exclusive upper domain edge

	cur    K // last emitted key: the exclusive resume cursor
	curSet bool

	batch []kvPair[K, V] // window keys of the current leaf, in emission order

	haveLeaf bool
	ref      *leafRef // leaf handle the batch was read from (occ revalidation)
	leafVer  uint64   // ref.ver at batch time (occ)
	leafOff  uint64   // leaf offset at batch time (st sibling chase)
	mutSnap  uint64   // engine mutation counter at batch time (st revalidation)
	ub       bound[K] // tightest right separator of the batch leaf's descent
	lb       bound[K] // tightest left separator of the batch leaf's descent

	k     K
	v     V
	valid bool
	done  bool
}

// FixedIterator iterates 8-byte keys and values ([Tree], [CTree]).
type FixedIterator = Iter[uint64, uint64]

// VarIterator iterates byte-string keys and values ([VarTree], [CVarTree]).
type VarIterator = Iter[[]byte, []byte]

// fixedIterBounds maps the fixed facades' window convention onto bounds:
// end == 0 means unbounded (a zero exclusive end would exclude every key, so
// the zero value is free to mean "no bound"); start 0 is simply the smallest
// key, which is indistinguishable from unbounded.
func fixedIterBounds(start, end uint64) (bound[uint64], bound[uint64]) {
	return bound[uint64]{key: start, ok: true}, bound[uint64]{key: end, ok: end != 0}
}

// varIterBound maps the var facades' convention: nil (or empty, which is not
// a legal key) means unbounded. The edge is cloned — the iterator outlives
// the call and the caller keeps ownership of its slice.
func varIterBound(k []byte) bound[[]byte] {
	if len(k) == 0 {
		return bound[[]byte]{}
	}
	return bound[[]byte]{key: slices.Clone(k), ok: true}
}

// scanNCap sizes a ScanN result slice: min(n, live keys), floored at zero.
func scanNCap(n, live int) int {
	if n < 0 {
		n = 0
	}
	if live < n {
		n = live
	}
	return n
}

func (e *engine[K, V]) iterator(start, end bound[K], reverse bool) *Iter[K, V] {
	it := &Iter[K, V]{e: e, reverse: reverse, start: start, end: end}
	if start.ok && end.ok && !e.cdc.less(start.key, end.key) {
		it.done = true // empty domain
		return it
	}
	it.advance()
	return it
}

// Valid reports whether the iterator is positioned on a key.
func (it *Iter[K, V]) Valid() bool { return it.valid }

// Key returns the key the iterator is positioned on (zero when !Valid).
func (it *Iter[K, V]) Key() K { return it.k }

// Value returns the value the iterator is positioned on (zero when !Valid).
func (it *Iter[K, V]) Value() V { return it.v }

// Domain returns the window the iterator was created with, in constructor
// form (the zero value of an edge means unbounded).
func (it *Iter[K, V]) Domain() (start, end K) { return it.start.key, it.end.key }

// Next advances to the next key of the window and reports whether one exists.
func (it *Iter[K, V]) Next() bool {
	it.advance()
	return it.valid
}

// Close releases the iterator. Further calls report an exhausted iterator.
func (it *Iter[K, V]) Close() { it.finish() }

func (it *Iter[K, V]) finish() {
	it.done = true
	it.valid = false
	it.haveLeaf = false
	it.ref = nil
	it.batch = nil
}

// advance is the per-step core: serve from the cached leaf batch while it
// provably matches the live leaf, step to the neighbor leaf on exhaustion,
// and re-seek from the cursor when the leaf changed underneath.
func (it *Iter[K, V]) advance() {
	it.valid = false
	if it.done {
		return
	}
	for {
		if len(it.batch) > 0 {
			if it.leafLive() {
				kv := it.batch[0]
				it.batch = it.batch[1:]
				it.k, it.v = kv.k, kv.v
				it.cur, it.curSet = kv.k, true
				it.valid = true
				return
			}
			// Conflict: the batch may contain stale pairs. Drop it and
			// re-seek from the last emitted key.
			it.batch = it.batch[:0]
			it.haveLeaf = false
		}
		if it.haveLeaf && it.leafLive() {
			// Batch exhausted with the leaf intact: step to the neighbor.
			it.haveLeaf = false
			if !it.reverse {
				if it.e.st {
					// Single-threaded fast path: chase the persistent
					// sibling pointer (valid while nothing mutated).
					next := it.e.leafNext(it.leafOff)
					if next.IsNull() {
						it.finish()
						return
					}
					it.leafOff = next.Offset
					it.fill(it.leafOff)
					it.haveLeaf = true
					continue
				}
				if !it.ub.ok {
					it.finish() // rightmost leaf done
					return
				}
				t, ok := it.e.cdc.nextAfter(it.ub.key)
				if !ok || (it.end.ok && !it.e.cdc.less(t, it.end.key)) {
					it.finish()
					return
				}
				if !it.seek(&t, false) {
					it.finish()
					return
				}
				continue
			}
			if !it.lb.ok || (it.start.ok && it.e.cdc.less(it.lb.key, it.start.key)) {
				it.finish() // leftmost leaf of the window done
				return
			}
			t := it.lb.key
			if !it.seek(&t, false) {
				it.finish()
				return
			}
			continue
		}
		// No live leaf (first positioning, or a conflict was detected):
		// resume from the cursor.
		if !it.seekResume() {
			it.finish()
			return
		}
	}
}

// leafLive reports whether the cached batch still matches the leaf it was
// read from: on the single-threaded engine no mutation ran since the batch
// was taken; on the concurrent engine the leaf is neither deleted nor was
// its version bumped by a writer (occCC.unlockLeaf).
func (it *Iter[K, V]) leafLive() bool {
	if it.e.st {
		return it.mutSnap == it.e.mut
	}
	return !it.ref.dead.Load() && it.ref.ver.Load() == it.leafVer
}

// seekResume descends to the leaf covering the resume point: just past the
// last emitted key, or the domain edge when nothing was emitted yet. Returns
// false when the window is exhausted or the tree is empty.
func (it *Iter[K, V]) seekResume() bool {
	if !it.reverse {
		if it.curSet {
			t, ok := it.e.cdc.nextAfter(it.cur)
			if !ok || (it.end.ok && !it.e.cdc.less(t, it.end.key)) {
				return false
			}
			return it.seek(&t, false)
		}
		if it.start.ok {
			t := it.start.key
			return it.seek(&t, false)
		}
		return it.seek(nil, false) // leftmost leaf
	}
	if it.curSet {
		t := it.cur
		return it.seek(&t, false)
	}
	if it.end.ok {
		t := it.end.key
		return it.seek(&t, false)
	}
	return it.seek(nil, true) // rightmost leaf
}

// seek descends to the leaf covering target (nil: the leftmost or rightmost
// leaf), fills the batch from it under the shared leaf lock, and records the
// revalidation state (leaf version / mutation counter) plus the separator
// bounds for stepping. Returns false only for an empty tree.
func (it *Iter[K, V]) seek(target *K, rightmost bool) bool {
	e := it.e
	sp := e.tr.Start(trace.OpIterSeek)
	sp.Enter(trace.PhaseDescend)
	for attempt := 0; ; attempt++ {
		n, ver, ref, lb, ub, ok := e.descendIter(target, rightmost)
		if !ok {
			e.abortc(htm.AbortIter, sp, attempt)
			continue
		}
		if ref == nil {
			sp.Finish()
			e.opDone()
			return false // empty tree
		}
		if !e.cc.tryRLockLeaf(ref) {
			e.abortc(htm.AbortLeafLock, sp, attempt)
			continue
		}
		if !e.cc.validate(&n.lock, ver) {
			e.cc.rUnlockLeaf(ref)
			e.abortc(htm.AbortPostLock, sp, attempt)
			continue
		}
		// ver and content form a consistent pair: writers bump ref.ver
		// before releasing the exclusive lock, which cannot be held while
		// we hold the shared lock.
		sp.Enter(trace.PhaseLeaf)
		lv := ref.ver.Load()
		it.fill(ref.off)
		e.cc.rUnlockLeaf(ref)
		it.ref, it.leafVer, it.leafOff = ref, lv, ref.off
		it.lb, it.ub = lb, ub
		it.mutSnap = e.mut
		it.haveLeaf = true
		sp.Finish()
		e.opDone()
		return true
	}
}

// fill reads the leaf's valid slots, filters them to the live window
// (cursor-exclusive on the emission side, domain edges otherwise) and sorts
// them into emission order.
func (it *Iter[K, V]) fill(leaf uint64) {
	e := it.e
	bm := e.leafBitmap(leaf)
	it.batch = it.batch[:0]
	if it.batch == nil {
		it.batch = make([]kvPair[K, V], 0, e.sh.cap)
	}
	for s := 0; s < e.sh.cap; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		k := e.cdc.slotKey(leaf, s)
		if !it.inWindow(k) {
			continue
		}
		it.batch = append(it.batch, kvPair[K, V]{k, e.cdc.slotValue(leaf, s)})
	}
	less := e.cdc.less
	sign := 1
	if it.reverse {
		sign = -1
	}
	slices.SortFunc(it.batch, func(a, b kvPair[K, V]) int {
		switch {
		case less(a.k, b.k):
			return -sign
		case less(b.k, a.k):
			return sign
		}
		return 0
	})
}

// inWindow reports whether k lies in the not-yet-emitted part of the window.
func (it *Iter[K, V]) inWindow(k K) bool {
	less := it.e.cdc.less
	if !it.reverse {
		if it.curSet {
			if !less(it.cur, k) {
				return false
			}
		} else if it.start.ok && less(k, it.start.key) {
			return false
		}
		return !it.end.ok || less(k, it.end.key)
	}
	if it.curSet {
		if !less(k, it.cur) {
			return false
		}
	} else if it.end.ok && !less(k, it.end.key) {
		return false
	}
	return !it.start.ok || !less(k, it.start.key)
}

// descendIter is descend plus tracking of BOTH the tightest right separator
// (ub: the reached leaf covers no key greater than it) and the tightest left
// separator (lb: the max key of the nearest left neighbor subtree — reverse
// iteration's next descent target). target==nil descends to the leftmost
// (rightmost=false) or rightmost (rightmost=true) leaf. ok=false means a
// conflict was observed; ref==nil an empty tree.
func (e *engine[K, V]) descendIter(target *K, rightmost bool) (n *cInner[K], ver uint64, ref *leafRef, lb, ub bound[K], ok bool) {
	av := e.cc.readBegin(&e.anchor)
	n = e.root.Load()
	ver = e.cc.readBegin(&n.lock)
	if !e.cc.validate(&e.anchor, av) {
		return nil, 0, nil, lb, ub, false
	}
	for {
		cnt := int(n.cnt.Load())
		var i int
		if target != nil {
			var sok bool
			i, sok = n.search(*target, e.cdc.less)
			if !sok {
				return nil, 0, nil, lb, ub, false
			}
		} else if rightmost && cnt > 0 {
			i = cnt - 1
		}
		if i > 0 && i <= cnt-1 {
			kp := n.keys[i-1].Load()
			if kp == nil {
				return nil, 0, nil, lb, ub, false
			}
			if !lb.ok || e.cdc.less(lb.key, *kp) {
				lb = bound[K]{*kp, true}
			}
		}
		if i < cnt-1 {
			kp := n.keys[i].Load()
			if kp == nil {
				return nil, 0, nil, lb, ub, false
			}
			if !ub.ok || e.cdc.less(*kp, ub.key) {
				ub = bound[K]{*kp, true}
			}
		}
		if !e.cc.validate(&n.lock, ver) {
			return nil, 0, nil, lb, ub, false
		}
		if n.leafParent {
			if cnt == 0 {
				return n, ver, nil, lb, ub, true // empty tree
			}
			r := n.leaves[i].Load()
			if r == nil || !e.cc.validate(&n.lock, ver) {
				return nil, 0, nil, lb, ub, false
			}
			return n, ver, r, lb, ub, true
		}
		child := n.kids[i].Load()
		if child == nil || !e.cc.validate(&n.lock, ver) {
			return nil, 0, nil, lb, ub, false
		}
		cver := e.cc.readBegin(&child.lock)
		if !e.cc.validate(&n.lock, ver) {
			return nil, 0, nil, lb, ub, false
		}
		n, ver = child, cver
	}
}
