package core

import (
	"fptree/internal/htm"
	"fptree/internal/obs/trace"
)

// SetTracer installs tr as the engine's operation tracer; nil (the default)
// disables tracing, leaving exactly one predictable nil-check branch per
// instrumentation site. The facades promote this method, and kvserver
// discovers it through an optional interface, so any store backed by a tree
// can be traced without new constructor plumbing.
//
// Call before the tree serves traffic: the field is read without
// synchronization on every operation.
func (e *engine[K, V]) SetTracer(tr *trace.Tracer) { e.tr = tr }

// Tracer returns the installed tracer (nil when tracing is disabled).
func (e *engine[K, V]) Tracer() *trace.Tracer { return e.tr }

// abortc records one optimistic-validation failure: the crash-injection
// check every retry loop must make, the cause-tagged htm counters, and the
// (possibly nil) span of the operation that must now restart. attempt is the
// operation's abort count so far; it paces the retry so a long-held conflict
// parks the goroutine instead of spinning — the TSX retry budget followed by
// the fallback wait. With an adaptive controller installed the budget and
// park cap are the controller's live values; otherwise the fixed
// htm.Backoff schedule applies.
func (e *engine[K, V]) abortc(c htm.AbortCause, sp *trace.Span, attempt int) {
	e.pool.PanicIfCrashed()
	e.Stats.NoteAbort(c)
	sp.Abort(c)
	if e.ctrl != nil {
		e.ctrl.OnAbort(c, attempt)
	} else {
		htm.Backoff(attempt)
	}
}
