package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"fptree/internal/scm"
)

// fixedIterTree is the surface the fixed-key iterator tests drive, satisfied
// by both *Tree and *CTree (edge-domain behavior must be identical across
// concurrency controllers when used from a single goroutine).
type fixedIterTree interface {
	Insert(k, v uint64) error
	Delete(k uint64) (bool, error)
	Update(k, v uint64) (bool, error)
	Iterator(start, end uint64) *FixedIterator
	ReverseIterator(start, end uint64) *FixedIterator
	Len() int
}

type varIterTree interface {
	Insert(k, v []byte) error
	Delete(k []byte) (bool, error)
	Iterator(start, end []byte) *VarIterator
	ReverseIterator(start, end []byte) *VarIterator
	Len() int
}

// newFixedIterTree builds a small-leaf tree so a few dozen keys span many
// leaves and iterator stepping is actually exercised.
func newFixedIterTree(t *testing.T, concurrent bool) fixedIterTree {
	t.Helper()
	pool := newPool(16)
	if concurrent {
		tr, err := CCreate(pool, Config{LeafCap: 8, InnerFanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func newVarIterTree(t *testing.T, concurrent bool) varIterTree {
	t.Helper()
	pool := newPool(16)
	if concurrent {
		tr, err := CCreateVar(pool, Config{LeafCap: 8, InnerFanout: 4, ValueSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr, err := CreateVar(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4, ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func val8(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// collectFixed drains an iterator, checking that every value matches k*10.
func collectFixed(t *testing.T, it *FixedIterator) []uint64 {
	t.Helper()
	defer it.Close()
	var got []uint64
	for ; it.Valid(); it.Next() {
		if it.Value() != it.Key()*10 {
			t.Fatalf("key %d carries value %d, want %d", it.Key(), it.Value(), it.Key()*10)
		}
		got = append(got, it.Key())
	}
	if it.Next() {
		t.Fatal("Next on an exhausted iterator reported true")
	}
	return got
}

func collectVar(t *testing.T, it *VarIterator) []string {
	t.Helper()
	defer it.Close()
	var got []string
	for ; it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	return got
}

func eqU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqStr(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIteratorDomainsFixed covers the edge windows of the issue checklist on
// both controllers: empty tree, start == end, start past the max key,
// reverse from the unbounded end, and interior windows whose edges do and do
// not coincide with stored keys.
func TestIteratorDomainsFixed(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := map[bool]string{false: "st", true: "occ"}[concurrent]
		t.Run(name, func(t *testing.T) {
			tr := newFixedIterTree(t, concurrent)

			// Empty tree: nothing in any window, forward or reverse.
			if it := tr.Iterator(0, 0); it.Valid() {
				t.Fatal("iterator over empty tree is Valid")
			}
			if it := tr.ReverseIterator(0, 0); it.Valid() {
				t.Fatal("reverse iterator over empty tree is Valid")
			}

			// Keys 10, 20, ..., 400: several leaves at LeafCap 8.
			var keys []uint64
			for k := uint64(10); k <= 400; k += 10 {
				if err := tr.Insert(k, k*10); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, k)
			}
			rev := make([]uint64, len(keys))
			for i, k := range keys {
				rev[len(keys)-1-i] = k
			}

			// Full range, both directions.
			if got := collectFixed(t, tr.Iterator(0, 0)); !eqU64(got, keys) {
				t.Fatalf("full forward: got %v want %v", got, keys)
			}
			if got := collectFixed(t, tr.ReverseIterator(0, 0)); !eqU64(got, rev) {
				t.Fatalf("full reverse: got %v want %v", got, rev)
			}

			// start == end is empty by [start, end) definition.
			if it := tr.Iterator(50, 50); it.Valid() {
				t.Fatal("start == end window is non-empty")
			}
			if it := tr.ReverseIterator(50, 50); it.Valid() {
				t.Fatal("reverse start == end window is non-empty")
			}
			// Inverted window likewise.
			if it := tr.Iterator(60, 50); it.Valid() {
				t.Fatal("inverted window is non-empty")
			}

			// start past the max key.
			if it := tr.Iterator(401, 0); it.Valid() {
				t.Fatalf("start past max: got key %d", it.Key())
			}
			if it := tr.ReverseIterator(401, 0); it.Valid() {
				t.Fatalf("reverse window above max: got key %d", it.Key())
			}

			// Interior window [35, 205): exclusive end, inclusive start, edges
			// between keys.
			want := []uint64{40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200}
			if got := collectFixed(t, tr.Iterator(35, 205)); !eqU64(got, want) {
				t.Fatalf("window [35,205): got %v want %v", got, want)
			}
			// Edges on stored keys: start inclusive, end exclusive.
			want = []uint64{40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160, 170, 180, 190}
			if got := collectFixed(t, tr.Iterator(40, 200)); !eqU64(got, want) {
				t.Fatalf("window [40,200): got %v want %v", got, want)
			}
			wantRev := make([]uint64, len(want))
			for i, k := range want {
				wantRev[len(want)-1-i] = k
			}
			if got := collectFixed(t, tr.ReverseIterator(40, 200)); !eqU64(got, wantRev) {
				t.Fatalf("reverse window [40,200): got %v want %v", got, wantRev)
			}

			// Reverse with bounded start, unbounded end.
			want = nil
			for k := uint64(400); k >= 380; k -= 10 {
				want = append(want, k)
			}
			if got := collectFixed(t, tr.ReverseIterator(380, 0)); !eqU64(got, want) {
				t.Fatalf("reverse [380,∞): got %v want %v", got, want)
			}

			// Max-key edge: fixed keys at the top of the u64 range must not
			// wrap during forward stepping (nextAfter saturates).
			top := ^uint64(0)
			for _, k := range []uint64{top, top - 1, top - 2} {
				if err := tr.Insert(k, k*10); err != nil {
					t.Fatal(err)
				}
			}
			if got := collectFixed(t, tr.Iterator(top-2, 0)); !eqU64(got, []uint64{top - 2, top - 1, top}) {
				t.Fatalf("top-of-range window: got %v", got)
			}
		})
	}
}

// TestIteratorDomainsVar mirrors the edge-domain checks for byte-string keys
// (nil edges mean unbounded) on both controllers.
func TestIteratorDomainsVar(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := map[bool]string{false: "st", true: "occ"}[concurrent]
		t.Run(name, func(t *testing.T) {
			tr := newVarIterTree(t, concurrent)

			if it := tr.Iterator(nil, nil); it.Valid() {
				t.Fatal("iterator over empty tree is Valid")
			}
			if it := tr.ReverseIterator(nil, nil); it.Valid() {
				t.Fatal("reverse iterator over empty tree is Valid")
			}

			var keys []string
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("key-%03d", i)
				if err := tr.Insert([]byte(k), val8(uint64(i))); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, k)
			}
			rev := make([]string, len(keys))
			for i, k := range keys {
				rev[len(keys)-1-i] = k
			}

			if got := collectVar(t, tr.Iterator(nil, nil)); !eqStr(got, keys) {
				t.Fatalf("full forward: got %v want %v", got, keys)
			}
			if got := collectVar(t, tr.ReverseIterator(nil, nil)); !eqStr(got, rev) {
				t.Fatalf("full reverse: got %v want %v", got, rev)
			}

			if it := tr.Iterator([]byte("key-010"), []byte("key-010")); it.Valid() {
				t.Fatal("start == end window is non-empty")
			}
			if it := tr.Iterator([]byte("zzz"), nil); it.Valid() {
				t.Fatalf("start past max: got %q", it.Key())
			}

			// [key-005, key-009): end exclusive.
			want := []string{"key-005", "key-006", "key-007", "key-008"}
			if got := collectVar(t, tr.Iterator([]byte("key-005"), []byte("key-009"))); !eqStr(got, want) {
				t.Fatalf("window: got %v want %v", got, want)
			}
			wantRev := []string{"key-008", "key-007", "key-006", "key-005"}
			if got := collectVar(t, tr.ReverseIterator([]byte("key-005"), []byte("key-009"))); !eqStr(got, wantRev) {
				t.Fatalf("reverse window: got %v want %v", got, wantRev)
			}

			// Reverse from nil end with bounded start.
			if got := collectVar(t, tr.ReverseIterator([]byte("key-037"), nil)); !eqStr(got, []string{"key-039", "key-038", "key-037"}) {
				t.Fatalf("reverse [key-037,∞): got %v", got)
			}

			// The iterator must not alias the caller's edge slices.
			edge := []byte("key-005")
			it := tr.Iterator(edge, nil)
			edge[4] = '9'
			if !it.Valid() || string(it.Key()) != "key-005" {
				t.Fatalf("mutating the caller's edge slice moved the window: at %q", it.Key())
			}
			it.Close()
		})
	}
}

// TestIteratorSplitMidIteration parks an iterator on a leaf, splits that
// leaf underneath it, and checks the continuation: nothing ahead of the
// cursor is skipped or double-emitted, including the newly inserted keys.
func TestIteratorSplitMidIteration(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := map[bool]string{false: "st", true: "occ"}[concurrent]
		t.Run(name, func(t *testing.T) {
			tr := newFixedIterTree(t, concurrent)
			for k := uint64(10); k <= 80; k += 10 { // exactly one full leaf (cap 8)
				if err := tr.Insert(k, k*10); err != nil {
					t.Fatal(err)
				}
			}
			it := tr.Iterator(0, 0)
			if !it.Valid() || it.Key() != 10 {
				t.Fatalf("positioned at %d, want 10", it.Key())
			}
			if !it.Next() || it.Key() != 20 {
				t.Fatalf("second key %d, want 20", it.Key())
			}
			// Split the leaf the iterator is parked on.
			for _, k := range []uint64{11, 12, 13, 14, 15} {
				if err := tr.Insert(k, k*10); err != nil {
					t.Fatal(err)
				}
			}
			// Everything live and > 20 must now appear, in order.
			want := []uint64{30, 40, 50, 60, 70, 80}
			var got []uint64
			for it.Next() {
				got = append(got, it.Key())
			}
			it.Close()
			if !eqU64(got, want) {
				t.Fatalf("continuation after split: got %v want %v", got, want)
			}

			// Reverse flavor: park at 80, 70 then split again below the cursor.
			rit := tr.ReverseIterator(0, 0)
			if !rit.Valid() || rit.Key() != 80 {
				t.Fatalf("reverse positioned at %d, want 80", rit.Key())
			}
			if !rit.Next() || rit.Key() != 70 {
				t.Fatalf("reverse second key %d, want 70", rit.Key())
			}
			for _, k := range []uint64{41, 42, 43} {
				if err := tr.Insert(k, k*10); err != nil {
					t.Fatal(err)
				}
			}
			want = []uint64{60, 50, 43, 42, 41, 40, 30, 20, 15, 14, 13, 12, 11, 10}
			got = nil
			for rit.Next() {
				got = append(got, rit.Key())
			}
			rit.Close()
			if !eqU64(got, want) {
				t.Fatalf("reverse continuation after split: got %v want %v", got, want)
			}
		})
	}
}

// TestIteratorDeleteMidIteration deletes keys — including a whole leaf,
// which unlinks it (single-threaded) or marks its handle dead (concurrent) —
// while an iterator is parked on or before it.
func TestIteratorDeleteMidIteration(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := map[bool]string{false: "st", true: "occ"}[concurrent]
		t.Run(name, func(t *testing.T) {
			tr := newFixedIterTree(t, concurrent)
			for k := uint64(10); k <= 320; k += 10 { // four full leaves
				if err := tr.Insert(k, k*10); err != nil {
					t.Fatal(err)
				}
			}
			it := tr.Iterator(0, 0)
			if !it.Next() || it.Key() != 20 {
				t.Fatalf("at %d, want 20", it.Key())
			}
			// Delete the entire second leaf (keys 90..160) plus a key on the
			// iterator's current leaf ahead of the cursor.
			for k := uint64(90); k <= 160; k += 10 {
				if ok, err := tr.Delete(k); err != nil || !ok {
					t.Fatalf("delete %d: %v %v", k, ok, err)
				}
			}
			if ok, err := tr.Delete(40); err != nil || !ok {
				t.Fatalf("delete 40: %v %v", ok, err)
			}
			var got []uint64
			for it.Next() {
				got = append(got, it.Key())
			}
			it.Close()
			var want []uint64
			for k := uint64(30); k <= 320; k += 10 {
				if k == 40 || (k >= 90 && k <= 160) {
					continue
				}
				want = append(want, k)
			}
			if !eqU64(got, want) {
				t.Fatalf("continuation after deletes: got %v want %v", got, want)
			}

			// Reverse: park above a leaf, delete it, continue down.
			rit := tr.ReverseIterator(0, 0)
			if !rit.Valid() || rit.Key() != 320 {
				t.Fatalf("reverse at %d, want 320", rit.Key())
			}
			for k := uint64(170); k <= 240; k += 10 {
				if ok, err := tr.Delete(k); err != nil || !ok {
					t.Fatalf("delete %d: %v %v", k, ok, err)
				}
			}
			want = nil
			for k := uint64(310); k >= 10; k -= 10 {
				if k == 40 || (k >= 90 && k <= 240) {
					continue
				}
				want = append(want, k)
			}
			got = nil
			for rit.Next() {
				got = append(got, rit.Key())
			}
			rit.Close()
			if !eqU64(got, want) {
				t.Fatalf("reverse continuation after leaf delete: got %v want %v", got, want)
			}
		})
	}
}

// TestIteratorUpdateMidIteration checks that an update behind the cursor is
// invisible and one ahead of the cursor is observed exactly once with the
// new value.
func TestIteratorUpdateMidIteration(t *testing.T) {
	tr := newFixedIterTree(t, false)
	for k := uint64(10); k <= 160; k += 10 {
		if err := tr.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.Iterator(0, 0)
	it.Next() // at 20
	if ok, err := tr.Update(10, 1); err != nil || !ok {
		t.Fatal("update 10")
	}
	if ok, err := tr.Update(30, 999); err != nil || !ok {
		t.Fatal("update 30")
	}
	if !it.Next() || it.Key() != 30 || it.Value() != 999 {
		t.Fatalf("after update: key %d value %d, want 30/999", it.Key(), it.Value())
	}
	n := 1
	for it.Next() {
		n++
	}
	it.Close()
	if n != 14 { // 30..160
		t.Fatalf("emitted %d keys after cursor 20, want 14", n)
	}
}

// TestIteratorFileBackedRecovery is the recovery-interplay check of the
// issue: build a tree in a real arena file, crash it mid-operation
// (injected persist failure + abandoned mmap, the kill -9 shape), reopen
// the file, and verify full forward and reverse iteration matches the map
// oracle byte-for-byte.
func TestIteratorFileBackedRecovery(t *testing.T) {
	t.Run("fixed", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "arena.fpt")
		pool, recovered, err := scm.OpenFile(path, 16<<20, scm.LatencyConfig{CacheBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		if recovered {
			t.Fatal("fresh arena file reported recovered")
		}
		tr, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 600; i++ {
			k := uint64(rng.Intn(200)) + 1
			if rng.Intn(4) == 0 {
				if _, err := tr.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(oracle, k)
			} else {
				if err := tr.Upsert(k, k*7); err != nil {
					t.Fatal(err)
				}
				oracle[k] = k * 7
			}
		}
		// Crash during an insert of a brand-new key: after recovery the key
		// is either fully present or fully absent (p-atomic bitmap commit).
		const inflight = uint64(100000)
		pool.FailAfterFlushes(2)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("injected crash did not fire")
				}
			}()
			_ = tr.Insert(inflight, inflight*7)
		}()
		// Abandon the mmap without Close: kill -9 semantics.
		pool2, recovered, err := scm.OpenFile(path, 0, scm.LatencyConfig{CacheBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !recovered {
			t.Fatal("arena abandoned without Close reported clean")
		}
		tr2, err := Open(pool2)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if _, ok := tr2.Find(inflight); ok {
			oracle[inflight] = inflight * 7
		}
		var want []uint64
		for k := range oracle {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []uint64
		for it := tr2.Iterator(0, 0); it.Valid(); it.Next() {
			if it.Value() != oracle[it.Key()] {
				t.Fatalf("key %d: value %d, oracle %d", it.Key(), it.Value(), oracle[it.Key()])
			}
			got = append(got, it.Key())
		}
		if !eqU64(got, want) {
			t.Fatalf("forward iteration after file recovery: got %d keys, want %d", len(got), len(want))
		}
		got = nil
		for it := tr2.ReverseIterator(0, 0); it.Valid(); it.Next() {
			got = append(got, it.Key())
		}
		for i, j := 0, len(got)-1; i < j; i, j = i+1, j-1 {
			got[i], got[j] = got[j], got[i]
		}
		if !eqU64(got, want) {
			t.Fatalf("reverse iteration after file recovery: got %d keys, want %d", len(got), len(want))
		}
		pool2.Close()
	})

	t.Run("var", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "arena.fpt")
		pool, _, err := scm.OpenFile(path, 16<<20, scm.LatencyConfig{CacheBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := CreateVar(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4, ValueSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[string]uint64{}
		rng := rand.New(rand.NewSource(43))
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("k%04d", rng.Intn(120))
			if rng.Intn(4) == 0 {
				if _, err := tr.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(oracle, k)
			} else {
				if err := tr.Upsert([]byte(k), val8(uint64(i))); err != nil {
					t.Fatal(err)
				}
				oracle[k] = uint64(i)
			}
		}
		const inflight = "zzz-inflight"
		pool.FailAfterFlushes(3)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("injected crash did not fire")
				}
			}()
			_ = tr.Insert([]byte(inflight), val8(1))
		}()
		pool2, recovered, err := scm.OpenFile(path, 0, scm.LatencyConfig{CacheBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !recovered {
			t.Fatal("arena abandoned without Close reported clean")
		}
		tr2, err := OpenVar(pool2)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if _, ok := tr2.Find([]byte(inflight)); ok {
			oracle[inflight] = 1
		}
		var want []string
		for k := range oracle {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		for it := tr2.Iterator(nil, nil); it.Valid(); it.Next() {
			if !bytes.Equal(it.Value(), val8(oracle[string(it.Key())])) {
				t.Fatalf("key %q: value %x, oracle %x", it.Key(), it.Value(), val8(oracle[string(it.Key())]))
			}
			got = append(got, string(it.Key()))
		}
		if !eqStr(got, want) {
			t.Fatalf("forward iteration after file recovery: got %d keys, want %d", len(got), len(want))
		}
		got = nil
		for it := tr2.ReverseIterator(nil, nil); it.Valid(); it.Next() {
			got = append(got, string(it.Key()))
		}
		for i, j := 0, len(got)-1; i < j; i, j = i+1, j-1 {
			got[i], got[j] = got[j], got[i]
		}
		if !eqStr(got, want) {
			t.Fatalf("reverse iteration after file recovery: got %d keys, want %d", len(got), len(want))
		}
		pool2.Close()
	})
}
