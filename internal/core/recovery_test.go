package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"fptree/internal/scm"
)

// runWithCrash executes fn with the flush fail-point armed at failAt,
// swallows the injected crash if it fires, and reverts unflushed lines so
// the pool holds exactly the durable crash image.
func runWithCrash(t *testing.T, pool *scm.Pool, failAt int64, fn func()) {
	t.Helper()
	pool.FailAfterFlushes(failAt)
	func() {
		defer func() {
			if r := recover(); r != nil && r != scm.ErrInjectedCrash {
				panic(r)
			}
		}()
		fn()
	}()
	pool.FailAfterFlushes(-1)
	pool.Crash()
}

// durableImage snapshots the pool's durable view.
func durableImage(t *testing.T, pool *scm.Pool) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "img")
	if err := pool.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// leafListOffsets walks the persistent leaf list and returns the offsets in
// list order.
func leafListOffsets[K any, V any](e *engine[K, V]) []uint64 {
	var offs []uint64
	for p := e.m.headLeaf(); !p.IsNull(); p = e.leafNext(p.Offset) {
		offs = append(offs, p.Offset)
	}
	return offs
}

// checkRecoveredEqual asserts that two recoveries of the same crash image —
// sequential on the original pool, parallel on a clone — produced identical
// trees: same logical contents, same leaf list, and byte-identical durable
// arenas (recovery's repair writes must not depend on the worker count).
func checkRecoveredEqual[K any, V any](t *testing.T, seq, par *engine[K, V]) {
	t.Helper()
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("sequential recovery invariants: %v", err)
	}
	if err := par.CheckInvariants(); err != nil {
		t.Fatalf("parallel recovery invariants: %v", err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("Len: sequential %d, parallel %d", seq.Len(), par.Len())
	}
	so, po := leafListOffsets(seq), leafListOffsets(par)
	if len(so) != len(po) {
		t.Fatalf("leaf list length: sequential %d, parallel %d", len(so), len(po))
	}
	for i := range so {
		if so[i] != po[i] {
			t.Fatalf("leaf list[%d]: sequential %#x, parallel %#x", i, so[i], po[i])
		}
	}
	if !bytes.Equal(durableImage(t, seq.pool), durableImage(t, par.pool)) {
		t.Fatal("durable arenas differ after recovery")
	}
}

func scanAllFixed(e *engine[uint64, uint64]) []KV {
	var out []KV
	e.scan(0, func(k, v uint64) bool {
		out = append(out, KV{k, v})
		return true
	})
	return out
}

func scanAllVar(e *engine[[]byte, []byte]) []VarKV {
	var out []VarKV
	e.scan(nil, func(k, v []byte) bool {
		out = append(out, VarKV{append([]byte(nil), k...), append([]byte(nil), v...)})
		return true
	})
	return out
}

// fixedCrashTrace drives a mixed insert/update/delete workload against a
// fresh fixed-key tree until the armed crash fires (or the trace completes),
// and leaves the pool holding the crash image.
func fixedCrashTrace(t *testing.T, pool *scm.Pool, cfg Config, concurrent bool, seed, failAt int64) {
	t.Helper()
	var (
		tr  engineOpsFixed
		err error
	)
	if concurrent {
		tr, err = CCreate(pool, cfg)
	} else {
		tr, err = Create(pool, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	runWithCrash(t, pool, failAt, func() {
		for i := 0; i < 1200; i++ {
			k := uint64(rng.Intn(300)) + 1
			switch rng.Intn(4) {
			case 0:
				tr.Delete(k) //nolint:errcheck
			case 1:
				tr.Update(k, k*3) //nolint:errcheck
			default:
				tr.Upsert(k, k*7) //nolint:errcheck
			}
		}
	})
}

// engineOpsFixed is the op surface shared by Tree and CTree. The trace uses
// Upsert, not Insert: Insert is the paper's Algorithm 2, which assumes the
// key is absent.
type engineOpsFixed interface {
	Upsert(k, v uint64) error
	Update(k, v uint64) (bool, error)
	Delete(k uint64) (bool, error)
}

func varCrashTrace(t *testing.T, pool *scm.Pool, cfg Config, concurrent bool, seed, failAt int64) {
	t.Helper()
	var (
		tr  engineOpsVar
		err error
	)
	if concurrent {
		tr, err = CCreateVar(pool, cfg)
	} else {
		tr, err = CreateVar(pool, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	runWithCrash(t, pool, failAt, func() {
		for i := 0; i < 1000; i++ {
			k := []byte(fmt.Sprintf("key-%04d", rng.Intn(250)))
			v := []byte(fmt.Sprintf("val-%04d", rng.Intn(1000)))
			switch rng.Intn(4) {
			case 0:
				tr.Delete(k) //nolint:errcheck
			case 1:
				tr.Update(k, v) //nolint:errcheck
			default:
				tr.Upsert(k, v) //nolint:errcheck
			}
		}
	})
}

type engineOpsVar interface {
	Upsert(k, v []byte) error
	Update(k, v []byte) (bool, error)
	Delete(k []byte) (bool, error)
}

// The fail points sampled per variant: early (mid first splits), middle, and
// late (usually past the end of the trace, i.e. a clean shutdown image).
var recoveryFailPoints = []int64{7, 61, 257, 1031, 1 << 30}

// TestParallelRecoveryEquivalenceFixed proves that recovering the same crash
// image with Workers=1 and Workers=3 yields identical fixed-key trees —
// logically and byte-for-byte in the durable arena.
func TestParallelRecoveryEquivalenceFixed(t *testing.T) {
	cases := []struct {
		name       string
		cfg        Config
		concurrent bool
	}{
		{"groups4", Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4}, false},
		{"nogroups", Config{LeafCap: 8, InnerFanout: 4}, false},
		{"concurrent", Config{LeafCap: 8, InnerFanout: 4}, true},
	}
	for _, tc := range cases {
		for _, failAt := range recoveryFailPoints {
			t.Run(fmt.Sprintf("%s/fail%d", tc.name, failAt), func(t *testing.T) {
				pool := newPool(64)
				fixedCrashTrace(t, pool, tc.cfg, tc.concurrent, 42, failAt)
				clone := pool.Clone()

				var seq, par *engine[uint64, uint64]
				if tc.concurrent {
					s, err := COpen(pool)
					if err != nil {
						t.Fatal(err)
					}
					p, err := COpen(clone, RecoveryOptions{Workers: 3})
					if err != nil {
						t.Fatal(err)
					}
					seq, par = s.engine, p.engine
				} else {
					s, err := Open(pool)
					if err != nil {
						t.Fatal(err)
					}
					p, err := Open(clone, RecoveryOptions{Workers: 3})
					if err != nil {
						t.Fatal(err)
					}
					seq, par = s.engine, p.engine
				}
				checkRecoveredEqual(t, seq, par)
				sKV, pKV := scanAllFixed(seq), scanAllFixed(par)
				if len(sKV) != len(pKV) {
					t.Fatalf("scan: sequential %d pairs, parallel %d", len(sKV), len(pKV))
				}
				for i := range sKV {
					if sKV[i] != pKV[i] {
						t.Fatalf("scan[%d]: sequential %v, parallel %v", i, sKV[i], pKV[i])
					}
				}
				if par.Ops.RecoveryNanos.Load() == 0 {
					t.Fatal("RecoveryNanos not recorded")
				}
				if len(sKV) > 0 && par.Ops.RecoveryLeaves.Load() == 0 {
					t.Fatal("RecoveryLeaves not counted")
				}
			})
		}
	}
}

// TestParallelRecoveryEquivalenceVar is the variable-size-key version, which
// additionally exercises the Algorithm 17 leak scan: the parallel path must
// detect leaks concurrently but reclaim them in the same order as the
// sequential path.
func TestParallelRecoveryEquivalenceVar(t *testing.T) {
	cases := []struct {
		name       string
		cfg        Config
		concurrent bool
	}{
		{"groups4", Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4}, false},
		{"nogroups", Config{LeafCap: 8, InnerFanout: 4}, false},
		{"concurrent", Config{LeafCap: 8, InnerFanout: 4}, true},
	}
	for _, tc := range cases {
		for _, failAt := range recoveryFailPoints {
			t.Run(fmt.Sprintf("%s/fail%d", tc.name, failAt), func(t *testing.T) {
				pool := newPool(64)
				varCrashTrace(t, pool, tc.cfg, tc.concurrent, 43, failAt)
				clone := pool.Clone()

				var seq, par *engine[[]byte, []byte]
				if tc.concurrent {
					s, err := COpenVar(pool)
					if err != nil {
						t.Fatal(err)
					}
					p, err := COpenVar(clone, RecoveryOptions{Workers: 3})
					if err != nil {
						t.Fatal(err)
					}
					seq, par = s.engine, p.engine
				} else {
					s, err := OpenVar(pool)
					if err != nil {
						t.Fatal(err)
					}
					p, err := OpenVar(clone, RecoveryOptions{Workers: 3})
					if err != nil {
						t.Fatal(err)
					}
					seq, par = s.engine, p.engine
				}
				checkRecoveredEqual(t, seq, par)
				sKV, pKV := scanAllVar(seq), scanAllVar(par)
				if len(sKV) != len(pKV) {
					t.Fatalf("scan: sequential %d pairs, parallel %d", len(sKV), len(pKV))
				}
				for i := range sKV {
					if !bytes.Equal(sKV[i].Key, pKV[i].Key) || !bytes.Equal(sKV[i].Value, pKV[i].Value) {
						t.Fatalf("scan[%d]: sequential %q=%q, parallel %q=%q",
							i, sKV[i].Key, sKV[i].Value, pKV[i].Key, pKV[i].Value)
					}
				}
			})
		}
	}
}

// TestParallelRecoveryWorkerCounts recovers one image at several worker
// counts (including more workers than leaves) and checks they all agree with
// the sequential result.
func TestParallelRecoveryWorkerCounts(t *testing.T) {
	pool := newPool(64)
	fixedCrashTrace(t, pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4}, false, 7, 509)
	ref, err := Open(pool.Clone())
	if err != nil {
		t.Fatal(err)
	}
	want := scanAllFixed(ref.engine)
	refImg := durableImage(t, ref.pool)
	for _, w := range []int{0, 1, 2, 4, 64} {
		tr, err := Open(pool.Clone(), RecoveryOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := scanAllFixed(tr.engine)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: scan[%d] = %v, want %v", w, i, got[i], want[i])
			}
		}
		if !bytes.Equal(durableImage(t, tr.pool), refImg) {
			t.Fatalf("workers=%d: durable arena differs from sequential recovery", w)
		}
	}
}

// TestBulkLoadCrashRecoveryBothCodecs sweeps crash points through a bulk
// load for both codecs and asserts that sequential and parallel recovery of
// each image agree, the result is a strict prefix of the input, and the tree
// stays writable. This pins the ordering fix: a leaf's validity bitmap is
// committed only after the leaf is linked, so an unreachable leaf can never
// resurrect dead keys through group-slot reuse.
func TestBulkLoadCrashRecoveryBothCodecs(t *testing.T) {
	const n = 300
	failPoints := []int64{1, 2, 3, 5, 9, 17, 33, 65, 129, 257}

	t.Run("fixed", func(t *testing.T) {
		kvs := make([]KV, n)
		for i := range kvs {
			kvs[i] = KV{Key: uint64(i)*2 + 1, Value: uint64(i) * 7}
		}
		for _, failAt := range failPoints {
			pool := newPool(64)
			tr, err := Create(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
			if err != nil {
				t.Fatal(err)
			}
			runWithCrash(t, pool, failAt, func() {
				tr.BulkLoad(kvs, 0) //nolint:errcheck
			})
			clone := pool.Clone()
			seq, err := Open(pool)
			if err != nil {
				t.Fatalf("fail%d: %v", failAt, err)
			}
			par, err := Open(clone, RecoveryOptions{Workers: 3})
			if err != nil {
				t.Fatalf("fail%d: %v", failAt, err)
			}
			checkRecoveredEqual(t, seq.engine, par.engine)
			got := scanAllFixed(seq.engine)
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
				t.Fatalf("fail%d: recovered scan not sorted", failAt)
			}
			for i, kv := range got {
				if kv != kvs[i] {
					t.Fatalf("fail%d: recovered[%d] = %v, want %v (not a prefix)", failAt, i, kv, kvs[i])
				}
			}
			// The recovered tree keeps working: the rest of the load goes in
			// one by one.
			for _, kv := range kvs[len(got):] {
				if err := seq.Insert(kv.Key, kv.Value); err != nil {
					t.Fatalf("fail%d: insert after recovery: %v", failAt, err)
				}
			}
			if seq.Len() != n {
				t.Fatalf("fail%d: Len = %d after refill, want %d", failAt, seq.Len(), n)
			}
			if err := seq.CheckInvariants(); err != nil {
				t.Fatalf("fail%d: %v", failAt, err)
			}
		}
	})

	t.Run("var", func(t *testing.T) {
		kvs := make([]VarKV, n)
		for i := range kvs {
			kvs[i] = VarKV{
				Key:   []byte(fmt.Sprintf("key-%05d", i)),
				Value: []byte(fmt.Sprintf("val-%04d", i)),
			}
		}
		for _, failAt := range failPoints {
			pool := newPool(64)
			tr, err := CreateVar(pool, Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
			if err != nil {
				t.Fatal(err)
			}
			runWithCrash(t, pool, failAt, func() {
				tr.BulkLoad(kvs, 0) //nolint:errcheck
			})
			clone := pool.Clone()
			seq, err := OpenVar(pool)
			if err != nil {
				t.Fatalf("fail%d: %v", failAt, err)
			}
			par, err := OpenVar(clone, RecoveryOptions{Workers: 3})
			if err != nil {
				t.Fatalf("fail%d: %v", failAt, err)
			}
			checkRecoveredEqual(t, seq.engine, par.engine)
			got := scanAllVar(seq.engine)
			for i, kv := range got {
				if !bytes.Equal(kv.Key, kvs[i].Key) || !bytes.Equal(kv.Value, kvs[i].Value) {
					t.Fatalf("fail%d: recovered[%d] = %q, want %q (not a prefix)", failAt, i, kv.Key, kvs[i].Key)
				}
			}
			for _, kv := range kvs[len(got):] {
				if err := seq.Insert(kv.Key, kv.Value); err != nil {
					t.Fatalf("fail%d: insert after recovery: %v", failAt, err)
				}
			}
			if seq.Len() != n {
				t.Fatalf("fail%d: Len = %d after refill, want %d", failAt, seq.Len(), n)
			}
			if err := seq.CheckInvariants(); err != nil {
				t.Fatalf("fail%d: %v", failAt, err)
			}
		}
	})
}
