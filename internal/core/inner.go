package core

// DRAM-resident inner nodes of the single-threaded trees, generic over the
// key type (uint64 for the fixed-size trees, []byte for the variable-size
// trees). Inner nodes keep a classical sorted-array layout (Figure 2a); they
// are transient, rebuilt from the leaf list on recovery, and need no
// persistence effort — that is the point of Selective Persistence.
//
// Separators are "max key of the left subtree": child i covers keys k with
// keys[i-1] < k <= keys[i], and the last child covers everything greater.

type stInner[K any] struct {
	keys   []K
	kids   []*stInner[K] // non-nil when this node's children are inner nodes
	leaves []uint64      // non-nil when this node is a leaf parent (SCM offsets)
}

func (n *stInner[K]) isLeafParent() bool { return n.leaves != nil }

func (n *stInner[K]) width() int {
	if n.isLeafParent() {
		return len(n.leaves)
	}
	return len(n.kids)
}

// childIdx returns the index of the child that covers key k: the first
// separator >= k, or the last child when k exceeds all separators.
func (n *stInner[K]) childIdx(k K, less func(a, b K) bool) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if !less(n.keys[mid], k) { // keys[mid] >= k
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// insertAt splices separator k at position i and the new right-hand child at
// position i+1.
func (n *stInner[K]) insertAt(i int, k K, newKid *stInner[K], newLeaf uint64) {
	var zero K
	n.keys = append(n.keys, zero)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	if n.isLeafParent() {
		n.leaves = append(n.leaves, 0)
		copy(n.leaves[i+2:], n.leaves[i+1:])
		n.leaves[i+1] = newLeaf
	} else {
		n.kids = append(n.kids, nil)
		copy(n.kids[i+2:], n.kids[i+1:])
		n.kids[i+1] = newKid
	}
}

// removeAt removes child i and the separator that delimited it.
func (n *stInner[K]) removeAt(i int) {
	ki := i
	if ki == len(n.keys) {
		ki = len(n.keys) - 1
	}
	if ki >= 0 {
		n.keys = append(n.keys[:ki], n.keys[ki+1:]...)
	}
	if n.isLeafParent() {
		n.leaves = append(n.leaves[:i], n.leaves[i+1:]...)
	} else {
		n.kids = append(n.kids[:i], n.kids[i+1:]...)
	}
}

// split divides an overflowing node in two, returning the promoted separator
// and the new right sibling. The median separator moves up (it remains a
// valid "max of left subtree" for the left half).
func (n *stInner[K]) split() (K, *stInner[K]) {
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := &stInner[K]{}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	if n.isLeafParent() {
		right.leaves = append(right.leaves, n.leaves[mid+1:]...)
		n.leaves = n.leaves[: mid+1 : mid+1]
	} else {
		right.kids = append(right.kids, n.kids[mid+1:]...)
		n.kids = n.kids[: mid+1 : mid+1]
	}
	n.keys = n.keys[:mid:mid]
	return up, right
}

// pathEntry records one step of a root-to-leaf descent.
type pathEntry[K any] struct {
	n   *stInner[K]
	idx int
}

// insertChild inserts (sep, right) into the parent chain recorded in path,
// splitting inner nodes upward as needed. level is the index in path of the
// node receiving the insertion; a split at level 0 grows a new root, which is
// returned (otherwise the current root is returned unchanged).
func insertChild[K any](root *stInner[K], path []pathEntry[K], level int, sep K, newKid *stInner[K], newLeaf uint64, fanout int) *stInner[K] {
	for {
		n := path[level].n
		i := path[level].idx
		n.insertAt(i, sep, newKid, newLeaf)
		if len(n.keys) <= fanout {
			return root
		}
		up, right := n.split()
		if level == 0 {
			return &stInner[K]{keys: []K{up}, kids: []*stInner[K]{n, right}}
		}
		level--
		sep, newKid, newLeaf = up, right, 0
	}
}

// removeLeaf removes the leaf at path's bottom entry, pruning emptied inner
// nodes upward. It returns the new root (nil when the tree became empty).
func removeLeaf[K any](root *stInner[K], path []pathEntry[K]) *stInner[K] {
	for level := len(path) - 1; level >= 0; level-- {
		n := path[level].n
		n.removeAt(path[level].idx)
		if n.width() > 0 {
			break
		}
		if level == 0 {
			return nil
		}
	}
	// Collapse a root with a single inner child to keep the height minimal.
	for root != nil && !root.isLeafParent() && len(root.kids) == 1 {
		root = root.kids[0]
	}
	return root
}

// buildInnerNodes bulk-builds the DRAM part from the ordered leaf list, as
// recovery and bulk load do (Algorithm 9, RebuildInnerNodes). maxKeys[i] is
// the greatest key in leaves[i] and becomes the separator to its right
// sibling. Nodes are packed to the full fanout: recovery produces the most
// compact transient part possible.
func buildInnerNodes[K any](leaves []uint64, maxKeys []K, fanout int) *stInner[K] {
	if len(leaves) == 0 {
		return nil
	}
	width := fanout + 1
	var level []*stInner[K]
	var seps []K
	for at := 0; at < len(leaves); at += width {
		end := at + width
		if end > len(leaves) {
			end = len(leaves)
		}
		n := &stInner[K]{
			leaves: append([]uint64(nil), leaves[at:end]...),
			keys:   append([]K(nil), maxKeys[at:end-1]...),
		}
		level = append(level, n)
		if end < len(leaves) {
			seps = append(seps, maxKeys[end-1])
		}
	}
	for len(level) > 1 {
		var next []*stInner[K]
		var nextSeps []K
		for at := 0; at < len(level); at += width {
			end := at + width
			if end > len(level) {
				end = len(level)
			}
			n := &stInner[K]{
				kids: append([]*stInner[K](nil), level[at:end]...),
				keys: append([]K(nil), seps[at:end-1]...),
			}
			next = append(next, n)
			if end < len(level) {
				nextSeps = append(nextSeps, seps[end-1])
			}
		}
		level, seps = next, nextSeps
	}
	return level[0]
}

// lessU64 orders fixed-size keys.
func lessU64(a, b uint64) bool { return a < b }

// lessBytes orders variable-size keys lexicographically.
func lessBytes(a, b []byte) bool { return string(a) < string(b) }
