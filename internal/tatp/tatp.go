// Package tatp is the database integration of Section 6.4: a single-level,
// dictionary-encoded columnar storage prototype whose dictionary index is
// the persistent tree under test, driven by the read-only transactions of
// the Telecom Application Transaction Processing (TATP) benchmark.
//
// The columnar data (subscriber, access-info and call-forwarding columns)
// lives in SCM as large arrays; the index maps subscriber ids to row
// numbers. Loading inserts sequential subscriber ids — the highly skewed
// insertion pattern that Section 6.4 reports as pathological for the
// NV-Tree's rebuild scheme. Restart recovers the index (rebuilding its DRAM
// part) and sanity-scans the SCM-resident columns, as the paper describes.
package tatp

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fptree/internal/scm"
)

// Index is the dictionary index under test: subscriber id -> row number.
// Implementations must be safe for concurrent reads; writes happen only
// during the single-threaded load phase.
type Index interface {
	Insert(k, v uint64) error
	Find(k uint64) (uint64, bool)
}

// DB is the prototype database.
type DB struct {
	pool *scm.Pool
	idx  Index
	n    int // subscribers

	// Column offsets in SCM. Subscriber: sub_nbr, bits, msc_location.
	// AccessInfo: 4 rows per subscriber (ai_type 1..4), data1..4 packed.
	// CallForwarding: 4 rows per subscriber keyed by sf_type, start_time.
	colSubNbr uint64
	colBits   uint64
	colMscLoc uint64
	colAIData uint64
	colCFDest uint64
	colCFTime uint64

	// mu serializes access for non-thread-safe indexes; RLock-only during
	// the measured read-only phase, so concurrent indexes still scale.
	mu sync.RWMutex
}

const (
	aiPerSub = 4
	cfPerSub = 4
)

// Load populates the database with n subscribers and builds the dictionary
// index by inserting the sequentially generated subscriber ids. The column
// data lives in its own SCM arena (colPool), separate from the index's
// arena, mirroring the paper's prototype where multiple database structures
// share SCM.
func Load(colPool *scm.Pool, idx Index, n int) (*DB, error) {
	db := &DB{pool: colPool, idx: idx, n: n}
	// A root-anchored catalog block owns the six column arrays, so every
	// allocation follows the leak-prevention protocol.
	meta, err := colPool.AllocRoot(6 * 16)
	if err != nil {
		return nil, fmt.Errorf("tatp: allocating catalog: %w", err)
	}
	var offs [6]uint64
	sizes := []uint64{8 * uint64(n), 8 * uint64(n), 8 * uint64(n),
		8 * uint64(n) * aiPerSub, 8 * uint64(n) * cfPerSub, 8 * uint64(n) * cfPerSub}
	for i, sz := range sizes {
		ptr, err := colPool.Alloc(meta.Offset+uint64(i)*16, sz)
		if err != nil {
			return nil, err
		}
		offs[i] = ptr.Offset
	}
	db.colSubNbr, db.colBits, db.colMscLoc = offs[0], offs[1], offs[2]
	db.colAIData, db.colCFDest, db.colCFTime = offs[3], offs[4], offs[5]

	rng := rand.New(rand.NewSource(42))
	for row := 0; row < n; row++ {
		sid := uint64(row + 1) // sequential ids: the skewed insert pattern
		db.pool.WriteU64(db.colSubNbr+uint64(row)*8, sid*7919)
		db.pool.WriteU64(db.colBits+uint64(row)*8, rng.Uint64())
		db.pool.WriteU64(db.colMscLoc+uint64(row)*8, rng.Uint64()%1e9)
		for t := 0; t < aiPerSub; t++ {
			db.pool.WriteU64(db.colAIData+uint64(row*aiPerSub+t)*8, rng.Uint64())
		}
		for t := 0; t < cfPerSub; t++ {
			db.pool.WriteU64(db.colCFDest+uint64(row*cfPerSub+t)*8, rng.Uint64()%1e8)
			db.pool.WriteU64(db.colCFTime+uint64(row*cfPerSub+t)*8, uint64(rng.Intn(24)))
		}
		if err := db.idx.Insert(sid, uint64(row)); err != nil {
			return nil, err
		}
	}
	// Make the column data durable in one sweep (bulk load).
	for i, sz := range sizes {
		db.pool.Persist(offs[i], sz)
	}
	return db, nil
}

// GetSubscriberData is TATP's GET_SUBSCRIBER_DATA: one index lookup plus the
// subscriber row.
func (db *DB) GetSubscriberData(sid uint64) (uint64, uint64, uint64, bool) {
	row, ok := db.idx.Find(sid)
	if !ok {
		return 0, 0, 0, false
	}
	return db.pool.ReadU64(db.colSubNbr + row*8),
		db.pool.ReadU64(db.colBits + row*8),
		db.pool.ReadU64(db.colMscLoc + row*8), true
}

// GetNewDestination is TATP's GET_NEW_DESTINATION: index lookup plus a
// call-forwarding probe.
func (db *DB) GetNewDestination(sid uint64, sfType, startTime int) (uint64, bool) {
	row, ok := db.idx.Find(sid)
	if !ok {
		return 0, false
	}
	i := row*cfPerSub + uint64(sfType%cfPerSub)
	if db.pool.ReadU64(db.colCFTime+i*8) > uint64(startTime) {
		return 0, false // no active forwarding
	}
	return db.pool.ReadU64(db.colCFDest + i*8), true
}

// GetAccessData is TATP's GET_ACCESS_DATA: index lookup plus an access-info
// row.
func (db *DB) GetAccessData(sid uint64, aiType int) (uint64, bool) {
	row, ok := db.idx.Find(sid)
	if !ok {
		return 0, false
	}
	return db.pool.ReadU64(db.colAIData + (row*aiPerSub+uint64(aiType%aiPerSub))*8), true
}

// RunReadOnly executes the TATP read-only transaction mix (GET_SUBSCRIBER_
// DATA : GET_NEW_DESTINATION : GET_ACCESS_DATA at the standard 35:10:35
// weights, normalized) with the given number of clients for total
// transactions, returning transactions per second.
func (db *DB) RunReadOnly(clients, total int) float64 {
	var wg sync.WaitGroup
	per := total / clients
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				sid := rng.Uint64()%uint64(db.n) + 1
				db.mu.RLock()
				switch w := rng.Intn(80); {
				case w < 35:
					db.GetSubscriberData(sid)
				case w < 45:
					db.GetNewDestination(sid, rng.Intn(4), rng.Intn(24))
				default:
					db.GetAccessData(sid, rng.Intn(4))
				}
				db.mu.RUnlock()
			}
		}(int64(c))
	}
	wg.Wait()
	return float64(per*clients) / time.Since(start).Seconds()
}

// Verify spot-checks the index against the column data.
func (db *DB) Verify(samples int) error {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < samples; i++ {
		sid := rng.Uint64()%uint64(db.n) + 1
		nbr, _, _, ok := db.GetSubscriberData(sid)
		if !ok {
			return fmt.Errorf("tatp: subscriber %d missing", sid)
		}
		if nbr != sid*7919 {
			return fmt.Errorf("tatp: subscriber %d has sub_nbr %d", sid, nbr)
		}
	}
	return nil
}

// Restart simulates a crash and measures recovery: the pool reverts to its
// durable state, recoverIdx rebuilds the index's transient part, and the
// SCM-resident columns get a sanity scan, as the paper's restart procedure
// describes. The recovered DB is returned with the new index installed.
func (db *DB) Restart(recoverIdx func() (Index, error)) (time.Duration, error) {
	db.pool.Crash()
	start := time.Now()
	idx, err := recoverIdx()
	if err != nil {
		return 0, err
	}
	db.idx = idx
	// Sanity-scan the columns (checksum read of SCM-resident data).
	var sum uint64
	for row := 0; row < db.n; row += 64 {
		sum += db.pool.ReadU64(db.colSubNbr + uint64(row)*8)
	}
	_ = sum
	elapsed := time.Since(start)
	return elapsed, db.Verify(100)
}

// Subscribers returns the loaded subscriber count.
func (db *DB) Subscribers() int { return db.n }
