package tatp

import (
	"testing"

	"fptree/internal/core"
	"fptree/internal/scm"
)

type fpIdx struct{ t *core.Tree }

func (a fpIdx) Insert(k, v uint64) error     { return a.t.Insert(k, v) }
func (a fpIdx) Find(k uint64) (uint64, bool) { return a.t.Find(k) }

func newDB(t *testing.T, n int) (*DB, *scm.Pool) {
	t.Helper()
	idxPool := scm.NewPool(64<<20, scm.LatencyConfig{})
	tr, err := core.Create(idxPool, core.Config{LeafCap: 56, InnerFanout: 128, GroupSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	colPool := scm.NewPool(64<<20, scm.LatencyConfig{})
	db, err := Load(colPool, fpIdx{tr}, n)
	if err != nil {
		t.Fatal(err)
	}
	return db, idxPool
}

func TestLoadAndQueries(t *testing.T) {
	db, _ := newDB(t, 5000)
	if err := db.Verify(500); err != nil {
		t.Fatal(err)
	}
	nbr, _, _, ok := db.GetSubscriberData(123)
	if !ok || nbr != 123*7919 {
		t.Fatalf("GetSubscriberData = %d,%v", nbr, ok)
	}
	if _, _, _, ok := db.GetSubscriberData(999999); ok {
		t.Fatal("found absent subscriber")
	}
	if _, ok := db.GetAccessData(55, 2); !ok {
		t.Fatal("GetAccessData failed")
	}
	// GetNewDestination may legitimately miss (inactive forwarding) but must
	// never error; probe until a hit.
	hit := false
	for sid := uint64(1); sid <= 200 && !hit; sid++ {
		for sf := 0; sf < 4; sf++ {
			if _, ok := db.GetNewDestination(sid, sf, 23); ok {
				hit = true
				break
			}
		}
	}
	if !hit {
		t.Fatal("no active call forwarding found in 200 subscribers")
	}
}

func TestRunReadOnlyThroughput(t *testing.T) {
	db, _ := newDB(t, 2000)
	tps := db.RunReadOnly(4, 8000)
	if tps <= 0 {
		t.Fatalf("tps = %f", tps)
	}
}

func TestRestartRecoversIndex(t *testing.T) {
	db, idxPool := newDB(t, 3000)
	elapsed, err := db.Restart(func() (Index, error) {
		idxPool.Crash()
		tr, err := core.Open(idxPool)
		if err != nil {
			return nil, err
		}
		return fpIdx{tr}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("restart took no time")
	}
	if err := db.Verify(300); err != nil {
		t.Fatal(err)
	}
	if tps := db.RunReadOnly(2, 2000); tps <= 0 {
		t.Fatal("no throughput after restart")
	}
}
