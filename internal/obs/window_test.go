package obs

import (
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestHistogramSnapshotSub pins the delta arithmetic windowed quantiles are
// built on: counts, sums and buckets subtract element-wise and quantiles are
// recomputed from the delta alone.
func TestHistogramSnapshotSub(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	before := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(time.Millisecond)
	}
	d := h.Snapshot().Sub(before)
	if d.Count != 50 {
		t.Fatalf("delta count = %d, want 50", d.Count)
	}
	if d.P50 < 100*time.Microsecond {
		t.Fatalf("delta p50 = %v, want ~1ms (old 100ns samples must not leak in)", d.P50)
	}
}

// TestWindowDeltaRatio drives a window by hand: counters advance between
// ticks and the trailing-window queries must see only the advance.
func TestWindowDeltaRatio(t *testing.T) {
	var aborts, searches atomic.Uint64
	reg := NewRegistry()
	reg.CounterFunc("htm_aborts_total", "", aborts.Load)
	reg.CounterFunc("fptree_searches_total", "", searches.Load)

	w := NewWindow(reg, 8)
	searches.Store(1000)
	aborts.Store(10)
	w.Tick()
	searches.Store(3000)
	aborts.Store(110)
	w.Tick()

	if d := w.Delta("fptree_searches_total", time.Hour); d != 2000 {
		t.Fatalf("delta = %v, want 2000", d)
	}
	if r := w.Ratio("htm_aborts_total", "fptree_searches_total", time.Hour); r != 0.05 {
		t.Fatalf("ratio = %v, want 0.05", r)
	}
	if rate := w.Rate("fptree_searches_total", time.Hour); rate <= 0 {
		t.Fatalf("rate = %v, want > 0", rate)
	}
	// One slot is not a window: queries need two snapshots to diff.
	w2 := NewWindow(reg, 8)
	w2.Tick()
	if d := w2.Delta("fptree_searches_total", time.Hour); d != 0 {
		t.Fatalf("single-slot delta = %v, want 0", d)
	}
}

// TestWindowWrap fills the slot ring several times over and checks queries
// still see a consistent trailing window.
func TestWindowWrap(t *testing.T) {
	var c atomic.Uint64
	reg := NewRegistry()
	reg.CounterFunc("c_total", "", c.Load)
	w := NewWindow(reg, 4)
	for i := 0; i < 20; i++ {
		c.Add(5)
		w.Tick()
	}
	// Only the last 4 slots are retained: the visible delta spans 3 ticks.
	if d := w.Delta("c_total", time.Hour); d != 15 {
		t.Fatalf("wrapped delta = %v, want 15", d)
	}
}

// TestWindowQuantile checks tracked-histogram deltas: old samples fall out
// of the window as slots expire.
func TestWindowQuantile(t *testing.T) {
	var h Histogram
	reg := NewRegistry()
	w := NewWindow(reg, 8)
	w.TrackHistogram("lat_ns", &h)

	w.Tick()
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	w.Tick()
	q := w.Quantile("lat_ns", 0.99, time.Hour)
	if q < 100*time.Microsecond {
		t.Fatalf("windowed p99 = %v, want ~1ms", q)
	}
}

// TestWindowExportGauges checks the derived gauges register and can be
// scraped from the same registry the window observes (no deadlock).
func TestWindowExportGauges(t *testing.T) {
	var aborts, searches atomic.Uint64
	reg := NewRegistry()
	reg.CounterFunc("htm_aborts_total", "", aborts.Load)
	reg.CounterFunc("fptree_searches_total", "", searches.Load)
	w := NewWindow(reg, 8)
	w.ExportRatio(reg, "window_abort_ratio", "windowed abort ratio",
		"htm_aborts_total", "fptree_searches_total", time.Hour)

	searches.Store(100)
	w.Tick()
	aborts.Store(25)
	searches.Store(200)
	w.Tick()
	if got := reg.Snapshot().Get("window_abort_ratio"); got != 0.25 {
		t.Fatalf("window_abort_ratio = %v, want 0.25", got)
	}
}

// TestEventRingStats pins the wraparound accounting satellite: recorded
// counts every Record call, dropped counts entries evicted by the wrap, and
// the oldest retained seq equals the dropped count.
func TestEventRingStats(t *testing.T) {
	ring := NewEventRing(4)
	for i := 0; i < 10; i++ {
		ring.Record("k", "event %d", i)
	}
	recorded, dropped := ring.Stats()
	if recorded != 10 || dropped != 6 {
		t.Fatalf("stats = %d/%d, want 10/6", recorded, dropped)
	}
	evs := ring.Events()
	if len(evs) != 4 || evs[0].Seq != 6 {
		t.Fatalf("retained %d events, first seq %d; want 4 events from seq 6", len(evs), evs[0].Seq)
	}
}

// TestEventsEndpointDroppedHeader checks /debug/events surfaces the
// wraparound accounting in its header line.
func TestEventsEndpointDroppedHeader(t *testing.T) {
	ring := NewEventRing(4)
	for i := 0; i < 7; i++ {
		ring.Record("k", "event %d", i)
	}
	srv := httptest.NewServer(Handler(NewRegistry(), ring))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "# events recorded=7 retained=4 dropped=3") {
		t.Fatalf("missing dropped header in:\n%s", body)
	}
}
