package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistrySnapshotAndDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_conns", "conns")
	var ext uint64
	reg.CounterFunc("test_ext_total", "external", func() uint64 { return ext })

	c.Add(5)
	g.Set(3)
	ext = 10
	before := reg.Snapshot()
	if before.Get("test_ops_total") != 5 || before.Get("test_conns") != 3 || before.Get("test_ext_total") != 10 {
		t.Fatalf("snapshot = %v", before)
	}

	c.Add(7)
	c.Inc()
	g.Add(-1)
	ext = 25
	d := reg.Snapshot().Sub(before)
	if d.Get("test_ops_total") != 8 {
		t.Fatalf("counter delta = %v", d.Get("test_ops_total"))
	}
	if d.Get("test_conns") != -1 {
		t.Fatalf("gauge delta = %v", d.Get("test_conns"))
	}
	if d.Get("test_ext_total") != 15 {
		t.Fatalf("func counter delta = %v", d.Get("test_ext_total"))
	}
	if got := d.PerOp("test_ops_total", 4); got != 2 {
		t.Fatalf("PerOp = %v", got)
	}
	if got := d.Ratio("test_conns", "test_ops_total"); got != -0.125 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := d.Ratio("test_conns", "test_missing"); got != 0 {
		t.Fatalf("Ratio with zero denominator = %v", got)
	}
}

func TestRegistryHistogramSnapshotSeries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "latency")
	h.Observe(time.Microsecond)
	h.Observe(3 * time.Microsecond)
	s := reg.Snapshot()
	if s.Get("test_latency_seconds_count") != 2 {
		t.Fatalf("hist count series = %v", s)
	}
	if s.Get("test_latency_seconds_sum_ns") != 4000 {
		t.Fatalf("hist sum series = %v", s)
	}
}

func TestRegistryRejectsDuplicatesAndBadNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "x")
	mustPanic(t, func() { reg.Counter("dup_total", "y") })
	mustPanic(t, func() { reg.Counter("bad name", "y") })
	mustPanic(t, func() { reg.Counter("1leading", "y") })
	mustPanic(t, func() { reg.Counter("", "y") })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	fn()
}

func TestRegistryConcurrentReadsRaceFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_total", "x")
	h := reg.Histogram("race_seconds", "x")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				h.Observe(time.Microsecond)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		reg.Snapshot()
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestEventRing(t *testing.T) {
	r := NewEventRing(4)
	if r.Len() != 0 || len(r.Events()) != 0 {
		t.Fatalf("fresh ring not empty")
	}
	for i := 0; i < 6; i++ {
		r.Record("kind", "event %d", i)
	}
	ev := r.Events()
	if r.Len() != 4 || len(ev) != 4 {
		t.Fatalf("ring kept %d events", len(ev))
	}
	// Oldest two overwritten; survivors in order with stable sequence numbers.
	for i, e := range ev {
		if e.Seq != uint64(i+2) || e.Msg != "event "+string(rune('0'+i+2)) {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.Kind != "kind" || e.Time.IsZero() {
			t.Fatalf("event %d metadata = %+v", i, e)
		}
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "[kind] event 5") {
		t.Fatalf("WriteTo output:\n%s", b.String())
	}
}

func TestEventRingConcurrentRecord(t *testing.T) {
	r := NewEventRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("g", "%d-%d", g, i)
				r.Events()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("ring len = %d", r.Len())
	}
	ev := r.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", ev[i-1].Seq, ev[i].Seq)
		}
	}
}
