package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry and the standard
// debug surfaces:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/vars     expvar (Go runtime memstats, cmdline)
//	/debug/pprof/   net/http/pprof profiles
//	/debug/events   the event ring, oldest first (when ring is non-nil)
func Handler(reg *Registry, ring *EventRing) http.Handler {
	return HandlerWith(reg, ring, nil)
}

// HandlerWith is Handler plus caller-supplied routes (e.g. the tracing
// layer's /debug/traces) mounted on the same mux. Extra paths must not
// collide with the standard ones.
func HandlerWith(reg *Registry, ring *EventRing, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if ring != nil {
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			recorded, dropped := ring.Stats()
			fmt.Fprintf(w, "# events recorded=%d retained=%d dropped=%d\n",
				recorded, ring.Len(), dropped)
			ring.WriteTo(w) //nolint:errcheck // best-effort debug dump
		})
	}
	for path, h := range extra {
		mux.Handle(path, h)
	}
	return mux
}

// MetricsHandler serves only the /metrics exposition of reg.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client went away
	})
}

// HTTPServer is a running observability endpoint; Close shuts it down.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. "127.0.0.1:9100" or
// ":0" for an ephemeral port) and returns the server and its bound address.
func Serve(addr string, reg *Registry, ring *EventRing) (*HTTPServer, string, error) {
	return ServeWith(addr, reg, ring, nil)
}

// ServeWith is Serve with extra routes mounted via HandlerWith.
func ServeWith(addr string, reg *Registry, ring *EventRing, extra map[string]http.Handler) (*HTTPServer, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: HandlerWith(reg, ring, extra), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return &HTTPServer{ln: ln, srv: srv}, ln.Addr().String(), nil
}

// Addr returns the bound address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes idle connections.
func (s *HTTPServer) Close() error { return s.srv.Close() }
