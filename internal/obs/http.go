package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry and the standard
// debug surfaces:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/vars     expvar (Go runtime memstats, cmdline)
//	/debug/pprof/   net/http/pprof profiles
//	/debug/events   the event ring, oldest first (when ring is non-nil)
func Handler(reg *Registry, ring *EventRing) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if ring != nil {
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			ring.WriteTo(w) //nolint:errcheck // best-effort debug dump
		})
	}
	return mux
}

// MetricsHandler serves only the /metrics exposition of reg.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client went away
	})
}

// HTTPServer is a running observability endpoint; Close shuts it down.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. "127.0.0.1:9100" or
// ":0" for an ephemeral port) and returns the server and its bound address.
func Serve(addr string, reg *Registry, ring *EventRing) (*HTTPServer, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(reg, ring), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return &HTTPServer{ln: ln, srv: srv}, ln.Addr().String(), nil
}

// Addr returns the bound address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes idle connections.
func (s *HTTPServer) Close() error { return s.srv.Close() }
