package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"fptree/internal/htm"
	"fptree/internal/obs"
)

// fakeCosts is a CostSource whose counters the test advances by hand.
type fakeCosts struct {
	flushes, fences uint64
}

func (c *fakeCosts) FlushFence() (uint64, uint64) { return c.flushes, c.fences }

// TestNilTracerAndSpan pins the disabled-tracing contract: every method on a
// nil tracer and a nil span is a no-op, so instrumentation sites need no
// guards beyond the one sampling branch.
func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(OpFind)
	if sp != nil {
		t.Fatalf("nil tracer produced a span")
	}
	sp.Enter(PhaseLeaf)
	sp.Abort(htm.AbortDescend)
	sp.Fallback()
	sp.Finish()
	if got := tr.Totals(); got != nil {
		t.Fatalf("nil tracer totals = %v, want nil", got)
	}
	if spans, recorded, dropped := tr.Spans(); len(spans) != 0 || recorded != 0 || dropped != 0 {
		t.Fatalf("nil tracer spans = %d/%d/%d", len(spans), recorded, dropped)
	}
}

// TestSampling checks the 1-in-N ticket arithmetic: exactly one span per
// SampleEvery starts.
func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	var sampled int
	for i := 0; i < 64; i++ {
		if sp := tr.Start(OpFind); sp != nil {
			sampled++
			sp.Finish()
		}
	}
	if sampled != 16 {
		t.Fatalf("sampled %d of 64 at 1-in-4, want 16", sampled)
	}
}

// TestSpanAttribution drives one span through phases with a hand-advanced
// cost source and checks the phase/flush/fence bookkeeping end to end.
func TestSpanAttribution(t *testing.T) {
	costs := &fakeCosts{}
	tr := New(Config{SampleEvery: 1, Costs: costs})

	sp := tr.Start(OpInsert)
	if sp == nil {
		t.Fatalf("1-in-1 sampling did not start a span")
	}
	sp.Enter(PhaseDescend)
	sp.Abort(htm.AbortDescend)
	sp.Abort(htm.AbortLeafLock)
	costs.flushes, costs.fences = 3, 2 // descend-phase cost
	sp.Enter(PhaseLeaf)
	costs.flushes, costs.fences = 10, 6 // leaf-phase cost: +7 / +4
	sp.Finish()

	if sp.Flushes[PhaseDescend] != 3 || sp.Fences[PhaseDescend] != 2 {
		t.Fatalf("descend costs = %d/%d, want 3/2", sp.Flushes[PhaseDescend], sp.Fences[PhaseDescend])
	}
	if sp.Flushes[PhaseLeaf] != 7 || sp.Fences[PhaseLeaf] != 4 {
		t.Fatalf("leaf costs = %d/%d, want 7/4", sp.Flushes[PhaseLeaf], sp.Fences[PhaseLeaf])
	}

	tots := tr.Totals()
	if len(tots) != 1 || tots[0].Op != OpInsert || tots[0].Count != 1 || tots[0].Aborts != 2 {
		t.Fatalf("totals = %+v", tots)
	}
	by := tr.AbortsByCause()
	if by[htm.AbortDescend] != 1 || by[htm.AbortLeafLock] != 1 {
		t.Fatalf("aborts by cause = %v", by)
	}
}

// TestConcurrentRingWraparound hammers a small ring from many goroutines and
// checks the lock-free accounting invariant: every published span is either
// retained or counted as dropped, and retained seqs are unique.
func TestConcurrentRingWraparound(t *testing.T) {
	const (
		workers = 8
		each    = 400
	)
	tr := New(Config{SampleEvery: 1, RingSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := tr.Start(OpFind)
				sp.Enter(PhaseDescend)
				sp.Finish()
			}
		}()
	}
	wg.Wait()

	spans, recorded, dropped := tr.Spans()
	if recorded != workers*each {
		t.Fatalf("recorded = %d, want %d", recorded, workers*each)
	}
	if dropped == 0 {
		t.Fatalf("expected drops on a %d-slot ring after %d spans", 64, workers*each)
	}
	if got := uint64(len(spans)) + dropped; got != recorded {
		t.Fatalf("retained %d + dropped %d = %d, want recorded %d", len(spans), dropped, got, recorded)
	}
	seen := make(map[uint64]bool, len(spans))
	last := uint64(0)
	for i, sp := range spans {
		if seen[sp.Seq] {
			t.Fatalf("duplicate seq %d", sp.Seq)
		}
		seen[sp.Seq] = true
		if i > 0 && sp.Seq <= last {
			t.Fatalf("spans not sorted by seq: %d after %d", sp.Seq, last)
		}
		last = sp.Seq
	}
}

// TestReportRoundTrip encodes a live tracer's report to JSON and strict-
// decodes it back, pinning the /debug/traces wire schema.
func TestReportRoundTrip(t *testing.T) {
	costs := &fakeCosts{}
	tr := New(Config{SampleEvery: 1, Costs: costs, SlowOp: time.Nanosecond})

	sp := tr.Start(OpUpsert)
	sp.Enter(PhaseDescend)
	sp.Abort(htm.AbortPostLock)
	costs.flushes, costs.fences = 5, 3
	sp.Enter(PhaseSMO)
	costs.flushes, costs.fences = 9, 4
	sp.Finish()

	rep := BuildReport(tr)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.SampleEvery != 1 || back.Recorded != 1 || back.SlowSpans != 1 {
		t.Fatalf("round-tripped header = %+v", back)
	}
	if len(back.Spans) != 1 || back.Spans[0].Op != "upsert" || back.Spans[0].Aborts != 1 {
		t.Fatalf("round-tripped spans = %+v", back.Spans)
	}
	if back.AbortsByCause["post_lock"] != 1 {
		t.Fatalf("aborts_by_cause = %v", back.AbortsByCause)
	}
	if got := back.FlushSum(); got != 9 {
		t.Fatalf("FlushSum = %d, want 9", got)
	}
}

// TestDecodeReportRejectsUnknownFields checks the strict decoder catches
// schema drift.
func TestDecodeReportRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"sample_every":1,"bogus_field":true}`)); err == nil {
		t.Fatalf("unknown field accepted")
	}
}

// TestFlushSumExcludesRequestOps: request spans wrap engine spans, so their
// attributed flushes must not double into the sum≈cumulative check.
func TestFlushSumExcludesRequestOps(t *testing.T) {
	costs := &fakeCosts{}
	tr := New(Config{SampleEvery: 1, Costs: costs})

	req := tr.Start(OpReqSet)
	req.Enter(PhaseStore)
	eng := tr.Start(OpInsert)
	eng.Enter(PhaseLeaf)
	costs.flushes = 4
	eng.Finish()
	req.Finish()

	rep := BuildReport(tr)
	if got := rep.FlushSum(); got != 4 {
		t.Fatalf("FlushSum = %d, want 4 (engine only; req_set repeats the same flushes)", got)
	}
}

// TestSlowLog checks that a finished span over the threshold lands in the
// event ring as a formatted trace.slow line.
func TestSlowLog(t *testing.T) {
	ring := obs.NewEventRing(16)
	tr := New(Config{SampleEvery: 1, SlowOp: time.Nanosecond, Events: ring})

	sp := tr.Start(OpDelete)
	sp.Enter(PhaseLeaf)
	time.Sleep(time.Millisecond)
	sp.Finish()

	if tr.SlowSpans() != 1 {
		t.Fatalf("slow spans = %d, want 1", tr.SlowSpans())
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != "trace.slow" {
		t.Fatalf("events = %+v", evs)
	}
	if !strings.Contains(evs[0].Msg, "delete took") || !strings.Contains(evs[0].Msg, "leaf=") {
		t.Fatalf("slow line %q missing op/phase text", evs[0].Msg)
	}
}

// TestRegisterMetrics checks the tracer's Prometheus surface renders.
func TestRegisterMetrics(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	sp := tr.Start(OpFind)
	sp.Enter(PhaseDescend)
	sp.Finish()

	reg := obs.NewRegistry()
	tr.RegisterMetrics(reg, "trace")
	snap := reg.Snapshot()
	if got := snap.Get("trace_spans_sampled_total"); got != 1 {
		t.Fatalf("trace_spans_sampled_total = %v, want 1", got)
	}
}
