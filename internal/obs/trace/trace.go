// Package trace is the span-based latency-attribution layer of the
// observability stack. Where internal/obs answers "how many flushes has the
// tree issued, ever", trace answers "where inside THIS insert did the time
// and the flushes go" — the attribution the paper's §6 claims (network-bound
// server with ≤2% tree overhead; abort behavior under contention) need.
//
// Design constraints, in order:
//
//  1. Disabled tracing costs one predictable branch per span site. Every
//     instrumentation point holds a possibly-nil *Tracer; Start on a nil
//     tracer (and every method on the nil *Span it returns) is a nil check
//     and nothing else. No allocation, no time read, no atomic.
//  2. Sampling keeps enabled tracing cheap: Start takes a ticket from one
//     atomic counter and allocates a Span only for 1-in-SampleEvery ops.
//  3. Recording is lock-free: finished spans are published into a sharded
//     ring of atomic pointers (shards striped by sampling ticket, the
//     portable stand-in for a per-P ring), overwriting the oldest. A
//     wrapped ring reports how many spans it dropped.
//
// A Span divides an operation into phases (inner-node descent, leaf work,
// structure modification, request parse/store/reply). Entering a phase
// snapshots wall time and — when a CostSource is configured — the cumulative
// SCM flush/fence counters, so closing the phase attributes elapsed
// nanoseconds and persistence costs to it. Go has no per-goroutine counters,
// so cost deltas are exact in single-threaded runs and an upper bound (they
// include concurrent goroutines' activity) under contention; the sampled sum
// still converges on the true cumulative counters within sampling error,
// which is exactly the /debug/traces acceptance check.
//
// HTM aborts are tagged with their htm.AbortCause so a span shows not just
// "3 aborts" but "3 descend-validation aborts", feeding the adaptive-CC
// roadmap item the same signal the windowed abort ratio exports globally.
package trace

import (
	"sync/atomic"
	"time"

	"fptree/internal/htm"
	"fptree/internal/obs"
)

// Op identifies the operation a span covers.
type Op uint8

// Engine operations, then kvserver request commands. NumOps bounds arrays
// indexed by Op.
const (
	OpFind Op = iota
	OpInsert
	OpUpdate
	OpUpsert
	OpDelete
	OpScan
	OpIterSeek
	OpReqGet
	OpReqSet
	OpReqDelete
	NumOps
)

// String returns the stable lowercase name used in trace JSON and metrics.
func (o Op) String() string {
	switch o {
	case OpFind:
		return "find"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpUpsert:
		return "upsert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpIterSeek:
		return "iter_seek"
	case OpReqGet:
		return "req_get"
	case OpReqSet:
		return "req_set"
	case OpReqDelete:
		return "req_delete"
	default:
		return "unknown"
	}
}

// IsRequest reports whether o is a kvserver request command rather than an
// engine operation. A sampled request span wraps the engine span of the
// same call, so its store-phase flush/fence deltas repeat costs the engine
// span already attributed; aggregations that compare attributed flushes to
// the cumulative SCM counters must count only one of the two levels.
func (o Op) IsRequest() bool { return o >= OpReqGet && o < NumOps }

// Phase identifies a section inside an operation.
type Phase uint8

// Engine phases, then kvserver request phases. NumPhases bounds arrays
// indexed by Phase.
const (
	// PhaseDescend: optimistic traversal of the transient inner nodes.
	PhaseDescend Phase = iota
	// PhaseLeaf: probe/modify of the persistent leaf under its lock,
	// including the p-atomic bitmap/fingerprint commits.
	PhaseLeaf
	// PhaseSMO: structure modification — leaf split, leaf delete from the
	// linked list, inner rebuild.
	PhaseSMO
	// PhaseParse: kvserver command read + parse.
	PhaseParse
	// PhaseStore: kvserver call into the storage engine.
	PhaseStore
	// PhaseReply: kvserver response write.
	PhaseReply
	NumPhases
)

// phaseNone marks a span with no open phase.
const phaseNone Phase = 0xff

// String returns the stable lowercase name used in trace JSON and metrics.
func (p Phase) String() string {
	switch p {
	case PhaseDescend:
		return "descend"
	case PhaseLeaf:
		return "leaf"
	case PhaseSMO:
		return "smo"
	case PhaseParse:
		return "parse"
	case PhaseStore:
		return "store"
	case PhaseReply:
		return "reply"
	default:
		return "unknown"
	}
}

// CostSource supplies the cumulative flush/fence counters a span diffs at
// phase boundaries. *scm.Stats implements it; the indirection keeps trace
// from importing scm.
type CostSource interface {
	FlushFence() (flushes, fences uint64)
}

// Span is the record of one sampled operation. Callers drive it through
// Enter/Abort/Fallback and close it with Finish; every method is safe on a
// nil receiver (the "not sampled" case), so instrumentation sites never
// branch beyond the implicit nil check.
//
// A Span is owned by one goroutine until Finish publishes it; afterwards it
// is immutable and may be read concurrently from the ring.
type Span struct {
	Op        Op
	Seq       uint64    // assigned at Finish, monotonic per tracer
	Start     time.Time // wall-clock start (monotonic reading retained)
	Duration  time.Duration
	Aborts    uint32
	Fallbacks uint32
	ByCause   [htm.NumAbortCauses]uint32
	PhaseNS   [NumPhases]int64
	Flushes   [NumPhases]uint64
	Fences    [NumPhases]uint64

	tr         *Tracer
	ticket     uint64
	cur        Phase
	curStart   time.Time
	curFlushes uint64
	curFences  uint64
}

// DefaultSampleEvery samples 1 in 64 operations, the rate the acceptance
// experiment runs at.
const DefaultSampleEvery = 64

// DefaultRingSize is the default number of retained spans.
const DefaultRingSize = 512

// ringShards stripes the span ring to keep publication lock-free without a
// contended slot counter; must be a power of two.
const ringShards = 8

// Config parameterizes New.
type Config struct {
	// SampleEvery samples 1 in N operations. 1 traces every op; <=0 means
	// DefaultSampleEvery.
	SampleEvery int
	// RingSize is the total retained-span budget across shards; <=0 means
	// DefaultRingSize.
	RingSize int
	// Costs, when non-nil, enables flush/fence attribution per phase.
	Costs CostSource
	// SlowOp, when >0, logs sampled spans that run at least this long to
	// Events as human-readable "trace.slow" entries and counts them.
	SlowOp time.Duration
	// Events is the slow-span log sink; nil disables the log (the counter
	// still advances).
	Events *obs.EventRing
}

type ringShard struct {
	next atomic.Uint64
	buf  []atomic.Pointer[Span]
}

// opTotals aggregates every sampled span of one Op since tracer creation —
// the low-noise series the bench -trace report and the sum≈cumulative
// acceptance check read (ring contents alone are only the most recent spans).
type opTotals struct {
	count     atomic.Uint64
	ns        atomic.Uint64
	aborts    atomic.Uint64
	fallbacks atomic.Uint64
	phaseNS   [NumPhases]atomic.Uint64
	flushes   [NumPhases]atomic.Uint64
	fences    [NumPhases]atomic.Uint64
}

// Tracer samples operations into spans. A nil *Tracer is valid and disabled;
// all methods are nil-safe.
type Tracer struct {
	sampleEvery uint64
	costs       CostSource
	slowNS      int64
	events      *obs.EventRing

	// tickets is striped per op: interleaved op streams (every server
	// request draws a request ticket and then an engine ticket in lockstep)
	// would otherwise alias the shared modulo and starve whole op classes
	// of samples.
	tickets [NumOps]atomic.Uint64
	sampled atomic.Uint64 // spans handed out; ring-shard round-robin source
	seq     atomic.Uint64 // finished sampled spans; Span.Seq source
	slow    atomic.Uint64
	shards  [ringShards]ringShard

	totals  [NumOps]opTotals
	byCause [htm.NumAbortCauses]atomic.Uint64

	phaseHist [NumPhases]*obs.Histogram
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	se := cfg.SampleEvery
	if se <= 0 {
		se = DefaultSampleEvery
	}
	rs := cfg.RingSize
	if rs <= 0 {
		rs = DefaultRingSize
	}
	per := (rs + ringShards - 1) / ringShards
	if per < 1 {
		per = 1
	}
	t := &Tracer{
		sampleEvery: uint64(se),
		costs:       cfg.Costs,
		slowNS:      cfg.SlowOp.Nanoseconds(),
		events:      cfg.Events,
	}
	for i := range t.shards {
		t.shards[i].buf = make([]atomic.Pointer[Span], per)
	}
	for p := range t.phaseHist {
		t.phaseHist[p] = &obs.Histogram{}
	}
	return t
}

// SampleEvery reports the configured sampling period (0 when the tracer is
// nil/disabled).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleEvery)
}

// SlowOp reports the slow-span threshold (0 when none or the tracer is nil).
func (t *Tracer) SlowOp() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNS)
}

// Start begins a span for op, or returns nil when the tracer is disabled or
// this operation lost the sampling lottery. The nil result is the common
// case and every Span method tolerates it, so call sites need no guards.
func (t *Tracer) Start(op Op) *Span {
	if t == nil {
		return nil
	}
	n := t.tickets[op].Add(1)
	if t.sampleEvery > 1 && n%t.sampleEvery != 0 {
		return nil
	}
	// The ring shard comes from a sampled-span counter, not the op ticket:
	// sampled tickets are all multiples of sampleEvery, which would alias
	// every span into the same shard whenever ringShards divides the rate.
	return &Span{tr: t, Op: op, ticket: t.sampled.Add(1), Start: time.Now(), cur: phaseNone}
}

// Enter closes the span's current phase (attributing elapsed nanoseconds and
// flush/fence deltas to it) and opens p. Nil-safe.
func (s *Span) Enter(p Phase) {
	if s == nil {
		return
	}
	now := time.Now()
	s.closePhase(now)
	s.cur = p
	s.curStart = now
	if s.tr.costs != nil {
		s.curFlushes, s.curFences = s.tr.costs.FlushFence()
	}
}

func (s *Span) closePhase(now time.Time) {
	if s.cur == phaseNone {
		return
	}
	s.PhaseNS[s.cur] += now.Sub(s.curStart).Nanoseconds()
	if s.tr.costs != nil {
		f, fe := s.tr.costs.FlushFence()
		s.Flushes[s.cur] += f - s.curFlushes
		s.Fences[s.cur] += fe - s.curFences
	}
	s.cur = phaseNone
}

// Abort records one HTM conflict abort, tagged with its cause. The retry's
// time lands in whichever phase the operation re-enters. Nil-safe.
func (s *Span) Abort(c htm.AbortCause) {
	if s == nil {
		return
	}
	if c >= htm.NumAbortCauses {
		c = htm.AbortOther
	}
	s.Aborts++
	s.ByCause[c]++
}

// Fallback records that the operation took the serialized fallback path.
// Nil-safe.
func (s *Span) Fallback() {
	if s == nil {
		return
	}
	s.Fallbacks++
}

// Finish closes the open phase, stamps the duration, folds the span into the
// tracer's cumulative totals, publishes it to the ring, and logs it when it
// crossed the slow-op threshold. The span must not be mutated afterwards.
// Nil-safe.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	now := time.Now()
	s.closePhase(now)
	s.Duration = now.Sub(s.Start)
	t := s.tr
	s.Seq = t.seq.Add(1) - 1

	tot := &t.totals[s.Op]
	tot.count.Add(1)
	tot.ns.Add(uint64(s.Duration.Nanoseconds()))
	tot.aborts.Add(uint64(s.Aborts))
	tot.fallbacks.Add(uint64(s.Fallbacks))
	for p := 0; p < int(NumPhases); p++ {
		if s.PhaseNS[p] != 0 {
			tot.phaseNS[p].Add(uint64(s.PhaseNS[p]))
			t.phaseHist[p].Observe(time.Duration(s.PhaseNS[p]))
		}
		if s.Flushes[p] != 0 {
			tot.flushes[p].Add(s.Flushes[p])
		}
		if s.Fences[p] != 0 {
			tot.fences[p].Add(s.Fences[p])
		}
	}
	for c := range s.ByCause {
		if s.ByCause[c] != 0 {
			t.byCause[c].Add(uint64(s.ByCause[c]))
		}
	}

	sh := &t.shards[s.ticket&(ringShards-1)]
	i := sh.next.Add(1) - 1
	sh.buf[i%uint64(len(sh.buf))].Store(s)

	if t.slowNS > 0 && s.Duration.Nanoseconds() >= t.slowNS {
		t.slow.Add(1)
		if t.events != nil {
			t.events.Record("trace.slow", "%s", s.slowLine())
		}
	}
}

// slowLine renders the human-readable slow-op log entry.
func (s *Span) slowLine() string {
	line := s.Op.String() + " took " + s.Duration.String()
	for p := Phase(0); p < NumPhases; p++ {
		if s.PhaseNS[p] == 0 && s.Flushes[p] == 0 {
			continue
		}
		line += " " + p.String() + "=" + time.Duration(s.PhaseNS[p]).String()
		if s.Flushes[p] > 0 || s.Fences[p] > 0 {
			line += "(" + utoa(s.Flushes[p]) + "f/" + utoa(s.Fences[p]) + "fe)"
		}
	}
	if s.Aborts > 0 {
		line += " aborts=" + utoa(uint64(s.Aborts))
		for c := range s.ByCause {
			if s.ByCause[c] > 0 {
				line += " " + htm.AbortCause(c).String() + "=" + utoa(uint64(s.ByCause[c]))
			}
		}
	}
	if s.Fallbacks > 0 {
		line += " fallbacks=" + utoa(uint64(s.Fallbacks))
	}
	return line
}

// utoa is strconv.FormatUint without pulling fmt into the hot slow path.
func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Spans returns the retained spans, oldest first (by Seq), plus how many
// sampled spans were recorded in total and how many the ring has dropped.
func (t *Tracer) Spans() (spans []*Span, recorded, dropped uint64) {
	if t == nil {
		return nil, 0, 0
	}
	recorded = t.seq.Load()
	dropped = t.dropped()
	for i := range t.shards {
		sh := &t.shards[i]
		for j := range sh.buf {
			if sp := sh.buf[j].Load(); sp != nil {
				spans = append(spans, sp)
			}
		}
	}
	// Oldest first; Seq is assigned from one atomic counter at Finish.
	sortSpans(spans)
	return spans, recorded, dropped
}

// dropped counts ring evictions: per shard, publications beyond capacity.
func (t *Tracer) dropped() uint64 {
	var d uint64
	for i := range t.shards {
		sh := &t.shards[i]
		if n := sh.next.Load(); n > uint64(len(sh.buf)) {
			d += n - uint64(len(sh.buf))
		}
	}
	return d
}

func sortSpans(spans []*Span) {
	// Insertion sort: ring capacities are small (hundreds) and mostly
	// ordered already (shards fill round-robin by ticket).
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j-1].Seq > spans[j].Seq; j-- {
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
}

// PhaseTotal is the cumulative cost attributed to one phase of one Op.
type PhaseTotal struct {
	Phase   Phase
	NS      uint64
	Flushes uint64
	Fences  uint64
}

// OpTotal aggregates every sampled span of one Op since tracer creation.
type OpTotal struct {
	Op        Op
	Count     uint64
	NS        uint64
	Aborts    uint64
	Fallbacks uint64
	Phases    []PhaseTotal // only phases with activity
}

// Totals snapshots the cumulative per-op aggregates, skipping ops with no
// sampled spans. Multiply by SampleEvery to estimate whole-run costs.
func (t *Tracer) Totals() []OpTotal {
	if t == nil {
		return nil
	}
	var out []OpTotal
	for op := Op(0); op < NumOps; op++ {
		tot := &t.totals[op]
		c := tot.count.Load()
		if c == 0 {
			continue
		}
		ot := OpTotal{
			Op:        op,
			Count:     c,
			NS:        tot.ns.Load(),
			Aborts:    tot.aborts.Load(),
			Fallbacks: tot.fallbacks.Load(),
		}
		for p := Phase(0); p < NumPhases; p++ {
			pt := PhaseTotal{
				Phase:   p,
				NS:      tot.phaseNS[p].Load(),
				Flushes: tot.flushes[p].Load(),
				Fences:  tot.fences[p].Load(),
			}
			if pt.NS != 0 || pt.Flushes != 0 || pt.Fences != 0 {
				ot.Phases = append(ot.Phases, pt)
			}
		}
		out = append(out, ot)
	}
	return out
}

// AbortsByCause snapshots the cumulative sampled abort counts per cause.
func (t *Tracer) AbortsByCause() [htm.NumAbortCauses]uint64 {
	var out [htm.NumAbortCauses]uint64
	if t == nil {
		return out
	}
	for c := range t.byCause {
		out[c] = t.byCause[c].Load()
	}
	return out
}

// SlowSpans reports how many sampled spans crossed the slow-op threshold.
func (t *Tracer) SlowSpans() uint64 {
	if t == nil {
		return 0
	}
	return t.slow.Load()
}

// PhaseHistogram returns the tracer's per-phase latency histogram (sampled
// span nanoseconds attributed to p) for windowed p99-by-phase queries, or
// nil on a nil tracer.
func (t *Tracer) PhaseHistogram(p Phase) *obs.Histogram {
	if t == nil || p >= NumPhases {
		return nil
	}
	return t.phaseHist[p]
}

// RegisterMetrics exposes the tracer's own counters and per-phase latency
// histograms on reg under prefix (e.g. "trace"): sampled/dropped span
// counts, slow-span count, and one histogram per phase
// (<prefix>_phase_<name>_ns).
func (t *Tracer) RegisterMetrics(reg *obs.Registry, prefix string) {
	if t == nil {
		return
	}
	reg.CounterFunc(prefix+"_spans_sampled_total",
		"operations sampled into trace spans", t.seq.Load)
	reg.CounterFunc(prefix+"_spans_dropped_total",
		"sampled spans evicted from the trace ring before being read", t.dropped)
	reg.CounterFunc(prefix+"_slow_spans_total",
		"sampled spans over the slow-op threshold", t.slow.Load)
	for p := Phase(0); p < NumPhases; p++ {
		reg.RegisterHistogram(prefix+"_phase_"+p.String()+"_ns",
			"sampled-span nanoseconds attributed to the "+p.String()+" phase",
			t.phaseHist[p])
	}
}
