package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"fptree/internal/htm"
)

// Report is the strict JSON document served at /debug/traces. Every field is
// produced by BuildReport and accepted by DecodeReport with unknown fields
// rejected, so the schema itself is round-trip tested.
type Report struct {
	// SampleEvery is the sampling period: spans describe 1 in SampleEvery
	// operations, so whole-run cost estimates multiply by it.
	SampleEvery int `json:"sample_every"`
	// SlowOpThresholdNS is the slow-span log threshold (0 = disabled).
	SlowOpThresholdNS int64 `json:"slow_op_threshold_ns"`
	// Recorded counts every sampled span since tracer creation; Dropped
	// counts those the ring has since evicted (Recorded - Dropped ≈
	// len(Spans), modulo spans mid-publication).
	Recorded  uint64 `json:"recorded"`
	Dropped   uint64 `json:"dropped"`
	SlowSpans uint64 `json:"slow_spans"`
	// Totals aggregates every sampled span per op — the low-noise series
	// for sum≈cumulative checks. Spans holds the most recent individual
	// spans retained by the ring, oldest first.
	Totals []OpTotalJSON `json:"totals"`
	Spans  []SpanJSON    `json:"spans"`
	// AbortsByCause is the cumulative sampled abort count per cause name.
	AbortsByCause map[string]uint64 `json:"aborts_by_cause,omitempty"`
}

// SpanJSON is one retained span.
type SpanJSON struct {
	Seq         uint64            `json:"seq"`
	Op          string            `json:"op"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurationNS  int64             `json:"duration_ns"`
	Aborts      uint32            `json:"aborts,omitempty"`
	Fallbacks   uint32            `json:"fallbacks,omitempty"`
	AbortCauses map[string]uint32 `json:"abort_causes,omitempty"`
	Phases      []PhaseJSON       `json:"phases,omitempty"`
}

// PhaseJSON is the cost attributed to one phase of a span or op total.
type PhaseJSON struct {
	Phase   string `json:"phase"`
	NS      int64  `json:"ns"`
	Flushes uint64 `json:"flushes"`
	Fences  uint64 `json:"fences"`
}

// OpTotalJSON aggregates every sampled span of one op.
type OpTotalJSON struct {
	Op        string      `json:"op"`
	Count     uint64      `json:"count"`
	NS        uint64      `json:"ns"`
	Aborts    uint64      `json:"aborts"`
	Fallbacks uint64      `json:"fallbacks"`
	Phases    []PhaseJSON `json:"phases,omitempty"`
}

// BuildReport snapshots the tracer into its JSON document. Safe on a nil
// tracer (returns an empty, still-valid report).
func BuildReport(t *Tracer) Report {
	rep := Report{
		SampleEvery:       t.SampleEvery(),
		SlowOpThresholdNS: t.SlowOp().Nanoseconds(),
		SlowSpans:         t.SlowSpans(),
	}
	for _, tot := range t.Totals() {
		oj := OpTotalJSON{
			Op:        tot.Op.String(),
			Count:     tot.Count,
			NS:        tot.NS,
			Aborts:    tot.Aborts,
			Fallbacks: tot.Fallbacks,
		}
		for _, pt := range tot.Phases {
			oj.Phases = append(oj.Phases, PhaseJSON{
				Phase: pt.Phase.String(), NS: int64(pt.NS),
				Flushes: pt.Flushes, Fences: pt.Fences,
			})
		}
		rep.Totals = append(rep.Totals, oj)
	}
	spans, recorded, dropped := t.Spans()
	rep.Recorded, rep.Dropped = recorded, dropped
	for _, sp := range spans {
		sj := SpanJSON{
			Seq:         sp.Seq,
			Op:          sp.Op.String(),
			StartUnixNS: sp.Start.UnixNano(),
			DurationNS:  sp.Duration.Nanoseconds(),
			Aborts:      sp.Aborts,
			Fallbacks:   sp.Fallbacks,
		}
		for c := range sp.ByCause {
			if sp.ByCause[c] > 0 {
				if sj.AbortCauses == nil {
					sj.AbortCauses = map[string]uint32{}
				}
				sj.AbortCauses[htm.AbortCause(c).String()] = sp.ByCause[c]
			}
		}
		for p := Phase(0); p < NumPhases; p++ {
			if sp.PhaseNS[p] == 0 && sp.Flushes[p] == 0 && sp.Fences[p] == 0 {
				continue
			}
			sj.Phases = append(sj.Phases, PhaseJSON{
				Phase: p.String(), NS: sp.PhaseNS[p],
				Flushes: sp.Flushes[p], Fences: sp.Fences[p],
			})
		}
		rep.Spans = append(rep.Spans, sj)
	}
	byCause := t.AbortsByCause()
	for c := range byCause {
		if byCause[c] > 0 {
			if rep.AbortsByCause == nil {
				rep.AbortsByCause = map[string]uint64{}
			}
			rep.AbortsByCause[htm.AbortCause(c).String()] = byCause[c]
		}
	}
	return rep
}

// DecodeReport strictly parses a /debug/traces document: unknown fields are
// an error, so schema drift between producer and consumers is caught.
func DecodeReport(data []byte) (Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("trace report: %w", err)
	}
	return rep, nil
}

// Handler serves the tracer's Report as JSON — the /debug/traces endpoint.
// Safe on a nil tracer.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(BuildReport(t)) //nolint:errcheck // client went away
	})
}

// FlushSum returns the report's total attributed flushes across the
// engine-level op totals — the left-hand side of the sum×SampleEvery ≈
// cumulative-scm-flushes acceptance check. Request-level ops (req_*) are
// excluded: they wrap the engine spans and would double-count every flush
// (see Op.IsRequest).
func (r Report) FlushSum() uint64 {
	req := make(map[string]bool, NumOps)
	for o := OpFind; o < NumOps; o++ {
		if o.IsRequest() {
			req[o.String()] = true
		}
	}
	var sum uint64
	for _, tot := range r.Totals {
		if req[tot.Op] {
			continue
		}
		for _, p := range tot.Phases {
			sum += p.Flushes
		}
	}
	return sum
}
