package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Mean != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Nanosecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 5 || s.Mean != 5 || s.Max != 5 {
		t.Fatalf("single-sample snapshot = %+v", s)
	}
	// Quantiles are bucket upper bounds clamped to Max: never below the
	// sample, never above the observed maximum.
	for _, q := range []time.Duration{s.P50, s.P95, s.P99} {
		if q < 5 || q > s.Max {
			t.Fatalf("quantile %v outside [5ns, Max]: %+v", q, s)
		}
	}
}

func TestHistogramNegativeDurationClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Hour)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Mean != 0 || s.P50 != 0 || s.Max != 0 {
		t.Fatalf("negative observation snapshot = %+v", s)
	}
}

func TestHistogramMaxBucketSaturation(t *testing.T) {
	var h Histogram
	// 2^39 ns and far beyond all land in the last bucket.
	huge := []time.Duration{
		time.Duration(1) << 39,
		time.Duration(1) << 45,
		time.Duration(math.MaxInt64),
	}
	for _, d := range huge {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Buckets[HistogramBuckets-1] != uint64(len(huge)) {
		t.Fatalf("last bucket = %d, want %d", s.Buckets[HistogramBuckets-1], len(huge))
	}
	if s.Count != uint64(len(huge)) {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != time.Duration(math.MaxInt64) {
		t.Fatalf("max = %v", s.Max)
	}
	if s.P50 > s.Max || s.P99 > s.Max {
		t.Fatalf("quantiles exceed max: %+v", s)
	}
	if s.P50 < time.Duration(1)<<39 {
		t.Fatalf("p50 = %v below the saturated bucket's range", s.P50)
	}
}

func TestHistogramQuantileMonotonicityUnderConcurrentObserve(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for {
				// xorshift spread over ~6 decades of nanoseconds. Observe
				// before checking stop so every goroutine contributes at
				// least one sample even if stop closes immediately.
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				h.Observe(time.Duration(x % 1_000_000_000))
				select {
				case <-stop:
					return
				default:
				}
			}
		}(uint64(g)*0x9E3779B9 + 1)
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
			t.Fatalf("quantiles not monotonic: P50=%v P95=%v P99=%v Max=%v", s.P50, s.P95, s.P99, s.Max)
		}
		if s.Count > 0 && s.Mean > s.Max {
			t.Fatalf("mean %v exceeds max %v", s.Mean, s.Max)
		}
	}
	close(stop)
	wg.Wait()
	// Quiescent consistency: count equals the bucket sum and mean is exact.
	s := h.Snapshot()
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d after quiescence", total, s.Count)
	}
	if want := time.Duration(uint64(s.Sum) / s.Count); s.Mean != want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
}
