package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusValidAndComplete(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("scm_flushes_total", "cache-line write-backs")
	g := reg.Gauge("kv_conns", "open connections")
	h := reg.Histogram("kv_get_latency_seconds", "get latency")
	c.Add(42)
	g.Set(-3)
	h.Observe(800 * time.Nanosecond)
	h.Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP scm_flushes_total cache-line write-backs",
		"# TYPE scm_flushes_total counter",
		"scm_flushes_total 42",
		"# TYPE kv_conns gauge",
		"kv_conns -3",
		"# TYPE kv_get_latency_seconds histogram",
		`kv_get_latency_seconds_bucket{le="+Inf"} 2`,
		"kv_get_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, out)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":            "a_total 1\n",
		"duplicate series":   "# TYPE a_total counter\na_total 1\na_total 2\n",
		"duplicate TYPE":     "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n",
		"bad value":          "# TYPE a_total counter\na_total zebra\n",
		"bad name":           "# TYPE 9bad counter\n9bad 1\n",
		"empty":              "\n",
		"decreasing buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
	}
	for name, body := range cases {
		if err := ValidateExposition(strings.NewReader(body)); err == nil {
			t.Errorf("%s: validation unexpectedly passed:\n%s", name, body)
		}
	}
}

func TestValidateExpositionAcceptsLabels(t *testing.T) {
	body := "# HELP h lat\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.001\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.003\nh_count 2\n"
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPEndpointServesMetricsExpvarAndEvents(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("endpoint_test_total", "x").Add(7)
	ring := NewEventRing(8)
	ring.Record("test", "hello ring")
	srv, addr, err := Serve("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "endpoint_test_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	if err := ValidateExposition(strings.NewReader(metrics)); err != nil {
		t.Fatalf("/metrics not valid exposition: %v", err)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Fatalf("/debug/vars missing memstats")
	}
	if ev := get("/debug/events"); !strings.Contains(ev, "hello ring") {
		t.Fatalf("/debug/events missing recorded event: %q", ev)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles")
	}
}
