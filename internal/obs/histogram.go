package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free latency histogram with power-of-two nanosecond
// buckets: bucket b counts observations whose nanosecond value has b
// significant bits (upper bound 2^b - 1 ns). Forty buckets cover sub-ns to
// ~9 minutes, far beyond any realistic request latency.
//
// It was generalized out of internal/kvserver so every subsystem shares one
// implementation; kvserver aliases this type.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
	buckets [HistogramBuckets]atomic.Uint64
}

// HistogramBuckets is the number of power-of-two buckets.
const HistogramBuckets = 40

// Observe records one latency sample. Negative durations (a clock step
// between the caller's two time reads) are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	b := bits.Len64(ns)
	if b >= HistogramBuckets {
		b = HistogramBuckets - 1
	}
	h.buckets[b].Add(1)
	h.sumNS.Add(ns)
	h.count.Add(1)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram. Quantiles are
// upper bounds of the containing power-of-two bucket clamped to the observed
// maximum, so they are conservative (never under-report) and monotonic:
// P50 <= P95 <= P99 <= Max whenever Count > 0.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Mean    time.Duration
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Max     time.Duration
	Buckets [HistogramBuckets]uint64
}

// Snapshot summarizes the histogram. count and sumNS are read before the
// bucket loop so the reported Mean never pairs a sum with an older count
// (concurrent Observe calls land sum before count, see Observe).
func (h *Histogram) Snapshot() HistogramSnapshot {
	count := h.count.Load()
	sum := h.sumNS.Load()
	var s HistogramSnapshot
	total := uint64(0)
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
		total += s.Buckets[i]
	}
	s.Count = count
	s.Sum = time.Duration(sum)
	s.Max = time.Duration(h.maxNS.Load())
	if count == 0 {
		return s
	}
	s.Mean = time.Duration(sum / count)
	quantile := func(q float64) time.Duration {
		target := uint64(q * float64(total))
		if target == 0 {
			target = 1
		}
		seen := uint64(0)
		for b, c := range s.Buckets {
			seen += c
			if seen >= target {
				if b == 0 {
					return 0
				}
				// The last bucket is a catch-all with no finite upper bound;
				// the observed maximum is the only honest answer there.
				if b == HistogramBuckets-1 {
					return s.Max
				}
				// Bucket upper bound, clamped to the true maximum so a lone
				// sample cannot push a quantile above Max.
				ub := time.Duration(uint64(1)<<b - 1)
				if ub > s.Max {
					return s.Max
				}
				return ub
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P95 = quantile(0.95)
	s.P99 = quantile(0.99)
	return s
}

// Sub returns the delta snapshot s - prev: the distribution of observations
// recorded between the two snapshots, with Mean and quantiles recomputed
// from the delta buckets. prev must be an earlier snapshot of the same
// histogram. The true maximum of just the window is unknowable from
// cumulative counters, so Max is the upper bound of the highest non-empty
// delta bucket clamped to s.Max (conservative, like the quantiles).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	d.Count = s.Count - prev.Count
	d.Sum = s.Sum - prev.Sum
	for i := range d.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	for b := HistogramBuckets - 1; b >= 0; b-- {
		if d.Buckets[b] == 0 {
			continue
		}
		d.Max = s.Max
		if b < HistogramBuckets-1 {
			if ub := time.Duration(uint64(1)<<b - 1); ub < d.Max {
				d.Max = ub
			}
		}
		break
	}
	if d.Count == 0 {
		return d
	}
	d.Mean = time.Duration(uint64(d.Sum) / d.Count)
	d.P50 = d.bucketQuantile(0.50)
	d.P95 = d.bucketQuantile(0.95)
	d.P99 = d.bucketQuantile(0.99)
	return d
}

// bucketQuantile computes a conservative quantile from the snapshot's
// buckets — the same rules as Snapshot: bucket upper bound, clamped to Max,
// with the catch-all bucket answered by Max.
func (s HistogramSnapshot) bucketQuantile(q float64) time.Duration {
	total := uint64(0)
	for _, c := range s.Buckets {
		total += c
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	seen := uint64(0)
	for b, c := range s.Buckets {
		seen += c
		if seen >= target {
			if b == 0 {
				return 0
			}
			if b == HistogramBuckets-1 {
				return s.Max
			}
			ub := time.Duration(uint64(1)<<b - 1)
			if ub > s.Max {
				return s.Max
			}
			return ub
		}
	}
	return s.Max
}
