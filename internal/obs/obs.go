// Package obs is the repository's unified observability layer: a
// dependency-free named-metric registry with atomic counters, gauges and
// power-of-two latency histograms, snapshot/delta semantics for phase-scoped
// measurement, Prometheus text-format exposition, an HTTP endpoint that also
// mounts expvar and net/http/pprof, and a fixed-size event ring buffer for
// post-hoc debugging of concurrency anomalies.
//
// The FPTree paper's performance argument rests on low-level cost counters —
// line flushes and memory fences per operation, fingerprint false-positive
// probes, HTM abort and fallback rates. The subsystems that already collect
// them (internal/scm, internal/htm, internal/core, internal/kvserver)
// register their counters here so every binary can export them uniformly and
// benchmarks can report per-phase deltas against the paper's cost model.
//
// Metrics are registered once at setup time and read concurrently while the
// instrumented code runs; all counter updates are atomic.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Kind classifies a registered metric for exposition.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a power-of-two latency histogram.
	KindHistogram
)

// metric is one registered series.
type metric struct {
	name   string
	labels string // rendered label set (`{shard="0"}`), "" for unlabeled
	help   string
	kind   Kind
	read   func() float64 // counters and gauges
	hist   *Histogram     // histograms only
}

// series is the full identity of the metric: name plus rendered labels. It
// is the Snapshot key and the sample name in the Prometheus exposition.
func (m *metric) series() string { return m.name + m.labels }

// Registry holds named metrics in registration order. Registration typically
// happens once at startup; reads (Snapshot, WritePrometheus) are safe while
// the instrumented code runs.
type Registry struct {
	mu     sync.RWMutex
	order  []*metric
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// validName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(m *metric) {
	if !validName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	if m.labels != "" && m.kind == KindHistogram {
		panic(fmt.Sprintf("obs: metric %q: labeled histograms are not supported", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.series()
	if _, dup := r.byName[key]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", key))
	}
	r.byName[key] = m
	r.order = append(r.order, m)
}

// Counter creates, registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, c.Load)
	return c
}

// CounterFunc registers a counter whose value is read through fn — the hook
// for counters that already live in another subsystem's atomic fields.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, kind: KindCounter,
		read: func() float64 { return float64(fn()) }})
}

// Gauge creates, registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, help, func() float64 { return float64(g.Load()) })
	return g
}

// GaugeFunc registers a gauge whose value is read through fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: KindGauge, read: fn})
}

// Histogram creates, registers and returns a new histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram registers an existing histogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	for i, m := range r.order {
		out[i] = m.series()
	}
	return out
}

// Snapshot is a point-in-time copy of every scalar series in a registry.
// Counters and gauges appear under their name; a histogram named h
// contributes h_count and h_sum_ns. Use Sub for phase-scoped deltas.
type Snapshot map[string]float64

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snapshot, len(r.order)+len(r.order)/2)
	for _, m := range r.order {
		if m.kind == KindHistogram {
			hs := m.hist.Snapshot()
			s[m.name+"_count"] = float64(hs.Count)
			s[m.name+"_sum_ns"] = float64(hs.Sum.Nanoseconds())
			continue
		}
		s[m.series()] = m.read()
	}
	return s
}

// Sub returns the per-series delta s - prev. Series missing from prev are
// treated as zero (new metrics registered mid-phase); series missing from s
// are dropped.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for name, v := range s {
		d[name] = v - prev[name]
	}
	return d
}

// Get returns the value of name, or 0 when absent.
func (s Snapshot) Get(name string) float64 { return s[name] }

// PerOp divides the value of name by ops; 0 when ops is 0.
func (s Snapshot) PerOp(name string, ops int) float64 {
	if ops == 0 {
		return 0
	}
	return s[name] / float64(ops)
}

// Ratio returns s[num] / s[den], or 0 when the denominator is 0 — e.g. the
// fingerprint false-positive rate as
// Ratio("fptree_fingerprint_false_positives_total", "fptree_fingerprint_compares_total").
func (s Snapshot) Ratio(num, den string) float64 {
	if s[den] == 0 {
		return 0
	}
	return s[num] / s[den]
}

// Keys returns the snapshot's series names, sorted.
func (s Snapshot) Keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
