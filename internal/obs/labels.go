package obs

import (
	"fmt"
	"strings"
)

// Label is one name="value" pair attached to a metric series. Labeled series
// let several instances of the same logical metric coexist in one registry —
// the sharded kvserver registers e.g. fptree_searches_total{shard="2"} per
// shard next to the unlabeled aggregate — while Prometheus still sees a
// single metric family.
type Label struct {
	Name  string
	Value string
}

// Labels is an ordered label set. Order is preserved as given (it is part of
// the series identity), so register the same labels in the same order
// everywhere.
type Labels []Label

// ShardLabel is the conventional label set for per-shard series.
func ShardLabel(shard int) Labels {
	return Labels{{Name: "shard", Value: fmt.Sprintf("%d", shard)}}
}

// validLabelName enforces the Prometheus label-name charset
// [a-zA-Z_][a-zA-Z0-9_]* (no colons, unlike metric names).
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

var labelValueEscaper = strings.NewReplacer("\\", "\\\\", "\"", "\\\"", "\n", "\\n")

// render formats the label set in exposition form: `{a="b",c="d"}`, or ""
// for an empty set. Panics on an invalid label name — labels are wired at
// startup, exactly like metric names.
func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(labelValueEscaper.Replace(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Series returns the full series key of name with the given labels — the key
// labeled series appear under in Snapshot and the exact sample name in the
// Prometheus exposition (e.g. `htm_aborts_total{shard="0"}`). With empty
// labels it is just name.
func Series(name string, ls Labels) string {
	return name + ls.render()
}

// CounterL creates, registers and returns a counter under name with the
// given label set.
func (r *Registry) CounterL(name string, labels Labels, help string) *Counter {
	c := &Counter{}
	r.CounterFuncL(name, labels, help, c.Load)
	return c
}

// CounterFuncL registers a labeled counter whose value is read through fn.
// All series of one family (same name, different labels) share the family's
// HELP/TYPE header in the exposition; the first registration's help wins.
func (r *Registry) CounterFuncL(name string, labels Labels, help string, fn func() uint64) {
	r.register(&metric{name: name, labels: labels.render(), help: help, kind: KindCounter,
		read: func() float64 { return float64(fn()) }})
}

// GaugeL creates, registers and returns a gauge under name with the given
// label set.
func (r *Registry) GaugeL(name string, labels Labels, help string) *Gauge {
	g := &Gauge{}
	r.GaugeFuncL(name, labels, help, func() float64 { return float64(g.Load()) })
	return g
}

// GaugeFuncL registers a labeled gauge whose value is read through fn.
func (r *Registry) GaugeFuncL(name string, labels Labels, help string, fn func() float64) {
	r.register(&metric{name: name, labels: labels.render(), help: help, kind: KindGauge, read: fn})
}
