package obs

import (
	"sync"
	"time"
)

// Window turns cumulative counters into live, windowed signals: it keeps a
// ring of periodic registry snapshots and answers rate/ratio/quantile
// queries over the last N seconds instead of over process lifetime. The
// adaptive-CC roadmap item and operator dashboards both need "abort ratio
// over the last 10s", not "aborts since boot" — a server that aborted
// heavily an hour ago but is quiet now should read ~0.
//
// Usage: build with NewWindow, optionally TrackHistogram for windowed
// quantiles, call Tick on a fixed cadence (or let Run do it), and register
// derived gauges with ExportRate/ExportRatio/ExportP99 so the windowed
// values appear in the normal Prometheus exposition.
//
// Tick snapshots the registry WITHOUT holding the window mutex, so the
// derived gauges (which lock it briefly when scraped) can live on the same
// registry the window observes without deadlock; their values simply become
// part of subsequent snapshots, which is harmless.
type Window struct {
	reg   *Registry
	mu    sync.Mutex
	slots []windowSlot
	next  uint64 // ticks ever; slot index is next % len(slots)
	hists map[string]*Histogram
}

type windowSlot struct {
	when time.Time
	snap Snapshot
	hist map[string]HistogramSnapshot
}

// DefaultWindowSlots retains 60 intervals — a minute of history at 1s ticks.
const DefaultWindowSlots = 60

// NewWindow returns a window over reg retaining the last slots snapshots
// (DefaultWindowSlots when slots <= 0).
func NewWindow(reg *Registry, slots int) *Window {
	if slots <= 0 {
		slots = DefaultWindowSlots
	}
	return &Window{reg: reg, slots: make([]windowSlot, slots)}
}

// TrackHistogram snapshots h (full bucket state, not just count/sum) at each
// tick so quantile queries can be answered per window. Call before ticking
// starts; name is the query key (conventionally the metric name).
func (w *Window) TrackHistogram(name string, h *Histogram) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hists == nil {
		w.hists = map[string]*Histogram{}
	}
	w.hists[name] = h
}

// Tick captures one snapshot. Call it on a fixed cadence; queries interpolate
// nothing, they diff the two retained snapshots that bracket the lookback.
func (w *Window) Tick() {
	snap := w.reg.Snapshot() // outside w.mu: reading derived gauges re-locks it
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	slot := windowSlot{when: now, snap: snap}
	if len(w.hists) > 0 {
		slot.hist = make(map[string]HistogramSnapshot, len(w.hists))
		for name, h := range w.hists {
			slot.hist[name] = h.Snapshot()
		}
	}
	w.slots[w.next%uint64(len(w.slots))] = slot
	w.next++
}

// Run ticks the window every interval until stop is closed — the goroutine
// body binaries use. Blocks; run it with go.
func (w *Window) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.Tick()
		case <-stop:
			return
		}
	}
}

// bounds returns the newest slot and the oldest retained slot no older than
// lookback before it (or the oldest retained when none is recent enough).
// ok is false until two ticks exist.
func (w *Window) bounds(lookback time.Duration) (oldest, newest windowSlot, ok bool) {
	n := uint64(len(w.slots))
	if w.next < 2 {
		return windowSlot{}, windowSlot{}, false
	}
	start := uint64(0)
	if w.next > n {
		start = w.next - n
	}
	newest = w.slots[(w.next-1)%n]
	cutoff := newest.when.Add(-lookback)
	oldest = w.slots[(w.next-2)%n] // at least one full tick of history
	for s := w.next - 2; s > start; s-- {
		slot := w.slots[(s-1)%n]
		if slot.when.Before(cutoff) {
			break
		}
		oldest = slot
	}
	return oldest, newest, oldest.when.Before(newest.when)
}

// Delta returns the change in series name over the last lookback (clamped to
// retained history); 0 until two ticks exist.
func (w *Window) Delta(name string, lookback time.Duration) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, nw, ok := w.bounds(lookback)
	if !ok {
		return 0
	}
	return nw.snap.Get(name) - o.snap.Get(name)
}

// Rate returns Delta(name) divided by the actual elapsed seconds between the
// bracketing snapshots — a per-second rate over the window.
func (w *Window) Rate(name string, lookback time.Duration) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, nw, ok := w.bounds(lookback)
	if !ok {
		return 0
	}
	secs := nw.when.Sub(o.when).Seconds()
	if secs <= 0 {
		return 0
	}
	return (nw.snap.Get(name) - o.snap.Get(name)) / secs
}

// Ratio returns delta(num)/delta(den) over the window — e.g. the windowed
// abort ratio as Ratio("htm_aborts_total", "fptree_searches_total", 10s).
// 0 when the denominator did not move.
func (w *Window) Ratio(num, den string, lookback time.Duration) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, nw, ok := w.bounds(lookback)
	if !ok {
		return 0
	}
	d := nw.snap.Get(den) - o.snap.Get(den)
	if d == 0 {
		return 0
	}
	return (nw.snap.Get(num) - o.snap.Get(num)) / d
}

// Quantile answers a quantile of a tracked histogram over the window, from
// the delta of its bucket snapshots. 0 until two ticks exist or when the
// histogram saw no observations in the window.
func (w *Window) Quantile(name string, q float64, lookback time.Duration) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, nw, ok := w.bounds(lookback)
	if !ok {
		return 0
	}
	ns, okN := nw.hist[name]
	os, okO := o.hist[name]
	if !okN || !okO {
		return 0
	}
	d := ns.Sub(os)
	if d.Count == 0 {
		return 0
	}
	return d.bucketQuantile(q)
}

// ExportRate registers gauge name on reg reading Rate(series, lookback).
func (w *Window) ExportRate(reg *Registry, name, help, series string, lookback time.Duration) {
	reg.GaugeFunc(name, help, func() float64 { return w.Rate(series, lookback) })
}

// ExportRatio registers gauge name on reg reading Ratio(num, den, lookback).
func (w *Window) ExportRatio(reg *Registry, name, help, num, den string, lookback time.Duration) {
	reg.GaugeFunc(name, help, func() float64 { return w.Ratio(num, den, lookback) })
}

// ExportP99 registers gauge name on reg reading the windowed p99 (in
// nanoseconds) of tracked histogram hist.
func (w *Window) ExportP99(reg *Registry, name, help, hist string, lookback time.Duration) {
	reg.GaugeFunc(name, help, func() float64 {
		return float64(w.Quantile(hist, 0.99, lookback).Nanoseconds())
	})
}
