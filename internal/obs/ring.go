package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one entry in an EventRing.
type Event struct {
	Seq  uint64    // monotonically increasing per ring
	Time time.Time // when Record was called
	Kind string    // short category, e.g. "htm.fallback", "conn.rejected"
	Msg  string    // human-readable detail
}

// EventRing is a fixed-size ring buffer of recent noteworthy events, kept for
// post-hoc debugging of concurrency anomalies (HTM fallback storms, allocator
// pressure, connection churn) without unbounded memory. Recording is cheap
// and safe for concurrent use; when the ring is full the oldest event is
// overwritten.
type EventRing struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf index is next % len(buf)
}

// DefaultEventRingSize is used when NewEventRing is given a non-positive
// capacity.
const DefaultEventRingSize = 256

// NewEventRing returns a ring holding the last n events.
func NewEventRing(n int) *EventRing {
	if n <= 0 {
		n = DefaultEventRingSize
	}
	return &EventRing{buf: make([]Event, n)}
}

// Record appends an event, overwriting the oldest when full.
func (r *EventRing) Record(kind, format string, args ...interface{}) {
	e := Event{Time: time.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	e.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// Stats reports how many events were ever recorded and how many have been
// overwritten by wraparound — the count /debug/events surfaces so a wrapped
// ring no longer silently loses history. Seq numbers on the retained events
// are contiguous: the oldest retained Seq equals dropped.
func (r *EventRing) Stats() (recorded, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	recorded = r.next
	if n := uint64(len(r.buf)); recorded > n {
		dropped = recorded - n
	}
	return recorded, dropped
}

// Len reports how many events the ring currently holds.
func (r *EventRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Events returns the retained events, oldest first.
func (r *EventRing) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	if r.next > n {
		start = r.next - n
	}
	out := make([]Event, 0, r.next-start)
	for s := start; s < r.next; s++ {
		out = append(out, r.buf[s%n])
	}
	return out
}

// WriteTo renders the retained events, oldest first, one per line.
func (r *EventRing) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range r.Events() {
		n, err := fmt.Fprintf(w, "%d %s [%s] %s\n",
			e.Seq, e.Time.Format(time.RFC3339Nano), e.Kind, e.Msg)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
