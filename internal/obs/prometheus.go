package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per family
// followed by its samples. Counters keep the name they were registered with
// (the convention is a _total suffix); histograms expand into cumulative
// _bucket{le="..."} series in seconds plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bw := bufio.NewWriter(w)
	announced := map[string]bool{} // family -> HELP/TYPE emitted
	for _, m := range r.order {
		// All series of one family (labeled variants of the same name) share
		// a single HELP/TYPE header; the first registration announces it.
		if !announced[m.name] {
			announced[m.name] = true
			help := strings.NewReplacer("\\", "\\\\", "\n", "\\n").Replace(m.help)
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, help)
			switch m.kind {
			case KindCounter:
				fmt.Fprintf(bw, "# TYPE %s counter\n", m.name)
			case KindGauge:
				fmt.Fprintf(bw, "# TYPE %s gauge\n", m.name)
			case KindHistogram:
				fmt.Fprintf(bw, "# TYPE %s histogram\n", m.name)
			}
		}
		switch m.kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(bw, "%s %s\n", m.series(), formatValue(m.read()))
		case KindHistogram:
			writeHistogram(bw, m.name, m.hist.Snapshot())
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series. Power-of-two nanosecond
// upper bounds are converted to seconds; empty high buckets beyond the last
// populated one are collapsed into +Inf to keep scrapes compact.
func writeHistogram(w io.Writer, name string, s HistogramSnapshot) {
	last := 0
	for b, c := range s.Buckets {
		if c > 0 {
			last = b
		}
	}
	cum := uint64(0)
	for b := 0; b <= last; b++ {
		cum += s.Buckets[b]
		ub := float64(uint64(1)<<uint(b)-1) / 1e9
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(ub), cum)
	}
	for b := last + 1; b < HistogramBuckets; b++ {
		cum += s.Buckets[b]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(s.Sum.Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition checks that r contains well-formed Prometheus text
// exposition: every sample belongs to a family announced by a preceding
// # TYPE line, HELP/TYPE appear at most once per family, no series (name plus
// label set) repeats, sample values parse as floats, and histogram families
// have consistent _bucket/_sum/_count samples with non-decreasing cumulative
// bucket counts. The CI metrics-smoke job and the endpoint tests run every
// /metrics scrape through it.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typeOf := map[string]string{}     // family -> type
	helped := map[string]bool{}       // family -> HELP seen
	seen := map[string]bool{}         // full series (name+labels) -> sample seen
	lastBucket := map[string]uint64{} // histogram family -> last cumulative count
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			family := fields[2]
			if !validName(family) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, family)
			}
			if fields[1] == "HELP" {
				if helped[family] {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, family)
				}
				helped[family] = true
				continue
			}
			if _, dup := typeOf[family]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, family)
			}
			if len(fields) < 4 {
				return fmt.Errorf("line %d: TYPE without a type %q", lineNo, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
			}
			typeOf[family] = fields[3]
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		series := name + labels
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %q", lineNo, series)
		}
		seen[series] = true
		family, isBucket := histogramFamily(name, typeOf)
		if typeOf[family] == "" {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		if isBucket {
			cum := uint64(value)
			if cum < lastBucket[family] {
				return fmt.Errorf("line %d: %s cumulative bucket decreased", lineNo, family)
			}
			lastBucket[family] = cum
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(seen) == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

// histogramFamily maps a sample name to its announced family, resolving the
// _bucket/_sum/_count suffixes of histogram and summary expansions.
func histogramFamily(name string, typeOf map[string]string) (family string, isBucket bool) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t := typeOf[base]; t == "histogram" || t == "summary" {
				return base, suf == "_bucket"
			}
		}
	}
	return name, false
}

// parseSample splits `name{labels} value [timestamp]` and checks the pieces.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = rest[:i], rest[i:j+1], strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("sample without value: %q", line)
		}
		name, rest = fields[0], strings.Join(fields[1:], " ")
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid sample name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	v, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", fields[0], perr)
	}
	return name, labels, v, nil
}
