// Package stx implements a classical main-memory B+-Tree with sorted nodes,
// modeled after the STX B+-Tree the paper uses as its fully transient
// reference implementation (Table 1: small nodes tuned for cache locality).
// It lives entirely in DRAM, offers no persistence, and serves as the
// performance ceiling the FPTree is measured against, as well as the
// "full rebuild" recovery baseline.
package stx

import "sort"

// Tree is a transient B+-Tree, generic over key and value. It is not safe
// for concurrent use.
type Tree[K any, V any] struct {
	less   func(a, b K) bool
	inner  int // max keys per inner node
	leaf   int // max pairs per leaf
	root   any // *innerNode[K,V] or *leafNode[K,V]
	height int
	size   int
	head   *leafNode[K, V]
}

type innerNode[K any, V any] struct {
	keys []K
	kids []any
}

type leafNode[K any, V any] struct {
	keys []K
	vals []V
	next *leafNode[K, V]
}

// New creates a tree with the given node capacities (keys per inner node,
// pairs per leaf). less defines the total key order.
func New[K any, V any](inner, leaf int, less func(a, b K) bool) *Tree[K, V] {
	if inner < 2 {
		inner = 16
	}
	if leaf < 2 {
		leaf = 16
	}
	return &Tree[K, V]{less: less, inner: inner, leaf: leaf}
}

// NewUint64 creates a tree over uint64 keys and values with the paper's
// default STXTree node sizes (Table 1).
func NewUint64() *Tree[uint64, uint64] {
	return New[uint64, uint64](16, 16, func(a, b uint64) bool { return a < b })
}

// NewString creates a tree over string keys with the paper's variable-size
// key node sizes.
func NewString() *Tree[string, []byte] {
	return New[string, []byte](8, 8, func(a, b string) bool { return a < b })
}

// Len returns the number of stored pairs.
func (t *Tree[K, V]) Len() int { return t.size }

// Height returns the number of node levels.
func (t *Tree[K, V]) Height() int { return t.height }

func (t *Tree[K, V]) lowerBound(keys []K, k K) int {
	return sort.Search(len(keys), func(i int) bool { return !t.less(keys[i], k) })
}

// Find returns the value stored under key.
func (t *Tree[K, V]) Find(key K) (V, bool) {
	var zero V
	if t.root == nil {
		return zero, false
	}
	n := t.root
	for {
		switch nd := n.(type) {
		case *innerNode[K, V]:
			// Separators are "max key of the left subtree": an equal key
			// descends left.
			i := t.lowerBound(nd.keys, key)
			n = nd.kids[i]
		case *leafNode[K, V]:
			i := t.lowerBound(nd.keys, key)
			if i < len(nd.keys) && !t.less(key, nd.keys[i]) && !t.less(nd.keys[i], key) {
				return nd.vals[i], true
			}
			return zero, false
		}
	}
}

// Insert stores a pair; an existing key is overwritten (sorted B+-Trees have
// no cheap duplicate policy, and the paper's workloads use unique keys).
func (t *Tree[K, V]) Insert(key K, value V) {
	if t.root == nil {
		l := &leafNode[K, V]{keys: []K{key}, vals: []V{value}}
		t.root = l
		t.head = l
		t.height = 1
		t.size = 1
		return
	}
	up, right := t.insert(t.root, key, value)
	if right != nil {
		t.root = &innerNode[K, V]{keys: []K{up}, kids: []any{t.root, right}}
		t.height++
	}
}

func (t *Tree[K, V]) insert(n any, key K, value V) (K, any) {
	var zero K
	switch nd := n.(type) {
	case *innerNode[K, V]:
		i := t.lowerBound(nd.keys, key)
		up, right := t.insert(nd.kids[i], key, value)
		if right == nil {
			return zero, nil
		}
		nd.keys = append(nd.keys, up)
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = up
		nd.kids = append(nd.kids, nil)
		copy(nd.kids[i+2:], nd.kids[i+1:])
		nd.kids[i+1] = right
		if len(nd.keys) <= t.inner {
			return zero, nil
		}
		mid := len(nd.keys) / 2
		promoted := nd.keys[mid]
		r := &innerNode[K, V]{
			keys: append([]K(nil), nd.keys[mid+1:]...),
			kids: append([]any(nil), nd.kids[mid+1:]...),
		}
		nd.keys = nd.keys[:mid:mid]
		nd.kids = nd.kids[: mid+1 : mid+1]
		return promoted, r
	case *leafNode[K, V]:
		i := t.lowerBound(nd.keys, key)
		if i < len(nd.keys) && !t.less(key, nd.keys[i]) && !t.less(nd.keys[i], key) {
			nd.vals[i] = value // overwrite
			return zero, nil
		}
		var zk K
		var zv V
		nd.keys = append(nd.keys, zk)
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = key
		nd.vals = append(nd.vals, zv)
		copy(nd.vals[i+1:], nd.vals[i:])
		nd.vals[i] = value
		t.size++
		if len(nd.keys) <= t.leaf {
			return zero, nil
		}
		mid := len(nd.keys) / 2
		r := &leafNode[K, V]{
			keys: append([]K(nil), nd.keys[mid:]...),
			vals: append([]V(nil), nd.vals[mid:]...),
			next: nd.next,
		}
		nd.keys = nd.keys[:mid:mid]
		nd.vals = nd.vals[:mid:mid]
		nd.next = r
		return nd.keys[mid-1], r
	}
	panic("stx: unknown node type")
}

// Update replaces the value under key, reporting whether it existed.
func (t *Tree[K, V]) Update(key K, value V) bool {
	if t.root == nil {
		return false
	}
	n := t.root
	for {
		switch nd := n.(type) {
		case *innerNode[K, V]:
			i := t.lowerBound(nd.keys, key)
			n = nd.kids[i]
		case *leafNode[K, V]:
			i := t.lowerBound(nd.keys, key)
			if i < len(nd.keys) && !t.less(key, nd.keys[i]) && !t.less(nd.keys[i], key) {
				nd.vals[i] = value
				return true
			}
			return false
		}
	}
}

// Delete removes key, reporting whether it existed. Underflowed nodes are
// not rebalanced (sorted deletion cost dominates either way, and the paper's
// delete benchmark measures exactly that).
func (t *Tree[K, V]) Delete(key K) bool {
	if t.root == nil {
		return false
	}
	deleted := t.delete(t.root, key)
	if deleted {
		t.size--
		for {
			in, ok := t.root.(*innerNode[K, V])
			if !ok {
				break
			}
			if len(in.kids) == 0 {
				t.root = nil
				break
			}
			if len(in.kids) > 1 {
				break
			}
			t.root = in.kids[0]
			t.height--
		}
		if lf, ok := t.root.(*leafNode[K, V]); ok && len(lf.keys) == 0 {
			t.root = nil
		}
		if t.root == nil {
			t.height = 0
			t.head = nil
		}
	}
	return deleted
}

func (t *Tree[K, V]) delete(n any, key K) bool {
	switch nd := n.(type) {
	case *innerNode[K, V]:
		i := t.lowerBound(nd.keys, key)
		if !t.delete(nd.kids[i], key) {
			return false
		}
		// Prune emptied children.
		if width[K, V](nd.kids[i]) == 0 {
			ki := i
			if ki == len(nd.keys) {
				ki = len(nd.keys) - 1
			}
			if ki >= 0 {
				nd.keys = append(nd.keys[:ki], nd.keys[ki+1:]...)
			}
			nd.kids = append(nd.kids[:i], nd.kids[i+1:]...)
		}
		return true
	case *leafNode[K, V]:
		i := t.lowerBound(nd.keys, key)
		if i >= len(nd.keys) || t.less(key, nd.keys[i]) || t.less(nd.keys[i], key) {
			return false
		}
		nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
		nd.vals = append(nd.vals[:i], nd.vals[i+1:]...)
		return true
	}
	panic("stx: unknown node type")
}

func width[K any, V any](n any) int {
	switch nd := n.(type) {
	case *innerNode[K, V]:
		return len(nd.kids)
	case *leafNode[K, V]:
		return len(nd.keys)
	}
	return 0
}

// Scan visits pairs with key >= from in order until fn returns false.
func (t *Tree[K, V]) Scan(from K, fn func(K, V) bool) {
	if t.root == nil {
		return
	}
	n := t.root
	var leaf *leafNode[K, V]
	for leaf == nil {
		switch nd := n.(type) {
		case *innerNode[K, V]:
			i := t.lowerBound(nd.keys, from)
			n = nd.kids[i]
		case *leafNode[K, V]:
			leaf = nd
		}
	}
	for leaf != nil {
		for i := range leaf.keys {
			if t.less(leaf.keys[i], from) {
				continue
			}
			if !fn(leaf.keys[i], leaf.vals[i]) {
				return
			}
		}
		leaf = leaf.next
	}
}

// ScanN returns up to n pairs with key >= from.
func (t *Tree[K, V]) ScanN(from K, n int) ([]K, []V) {
	ks := make([]K, 0, n)
	vs := make([]V, 0, n)
	t.Scan(from, func(k K, v V) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return len(ks) < n
	})
	return ks, vs
}

// MemoryBytes estimates the DRAM held by the tree's nodes (for the Figure 8
// comparison).
func (t *Tree[K, V]) MemoryBytes() uint64 {
	var total uint64
	var walk func(n any)
	walk = func(n any) {
		switch nd := n.(type) {
		case *innerNode[K, V]:
			total += uint64(cap(nd.keys))*16 + uint64(cap(nd.kids))*16 + 48
			for _, k := range nd.kids {
				walk(k)
			}
		case *leafNode[K, V]:
			total += uint64(cap(nd.keys))*16 + uint64(cap(nd.vals))*16 + 56
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return total
}
