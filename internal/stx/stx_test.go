package stx

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := NewUint64()
	if _, ok := tr.Find(1); ok {
		t.Fatal("find on empty")
	}
	if tr.Delete(1) {
		t.Fatal("delete on empty")
	}
	if tr.Update(1, 2) {
		t.Fatal("update on empty")
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("non-zero size/height")
	}
}

func TestInsertFindRandom(t *testing.T) {
	tr := NewUint64()
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	for _, k := range rng.Perm(n) {
		tr.Insert(uint64(k)+1, uint64(k)*2)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for k := 1; k <= n; k++ {
		v, ok := tr.Find(uint64(k))
		if !ok || v != uint64(k-1)*2 {
			t.Fatalf("find(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Find(n + 10); ok {
		t.Fatal("found absent")
	}
	if h := tr.Height(); h < 3 {
		t.Fatalf("height = %d, too shallow for %d keys", h, n)
	}
}

func TestInsertOverwrites(t *testing.T) {
	tr := NewUint64()
	tr.Insert(5, 1)
	tr.Insert(5, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Find(5); v != 2 {
		t.Fatalf("value = %d", v)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := NewUint64()
	rng := rand.New(rand.NewSource(2))
	keys := rng.Perm(5000)
	for _, k := range keys {
		tr.Insert(uint64(k)+1, 0)
	}
	for _, k := range keys {
		if !tr.Delete(uint64(k) + 1) {
			t.Fatalf("delete(%d) failed", k+1)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Insert(1, 1)
	if v, ok := tr.Find(1); !ok || v != 1 {
		t.Fatal("reuse after emptying failed")
	}
}

func TestScanOrder(t *testing.T) {
	tr := NewUint64()
	rng := rand.New(rand.NewSource(3))
	for _, k := range rng.Perm(2000) {
		tr.Insert(uint64(k)*2+2, uint64(k))
	}
	ks, _ := tr.ScanN(100, 300)
	if len(ks) != 300 {
		t.Fatalf("scan %d", len(ks))
	}
	want := uint64(100)
	for i, k := range ks {
		if k != want {
			t.Fatalf("scan[%d] = %d want %d", i, k, want)
		}
		want += 2
	}
}

func TestStringKeys(t *testing.T) {
	tr := NewString()
	for i := 0; i < 3000; i++ {
		tr.Insert(fmt.Sprintf("key-%06d", i), []byte{byte(i)})
	}
	for i := 0; i < 3000; i++ {
		v, ok := tr.Find(fmt.Sprintf("key-%06d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("find %d failed", i)
		}
	}
	ks, _ := tr.ScanN("key-000100", 10)
	if len(ks) != 10 || ks[0] != "key-000100" {
		t.Fatalf("scan = %v", ks)
	}
}

func TestQuickOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[uint64, uint64](4, 4, func(a, b uint64) bool { return a < b })
		oracle := map[uint64]uint64{}
		for i := 0; i < 1500; i++ {
			k := rng.Uint64()%400 + 1
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				tr.Insert(k, v)
				oracle[k] = v
			case 1:
				ok := tr.Delete(k)
				if _, want := oracle[k]; ok != want {
					t.Fatalf("delete(%d) = %v want %v", k, ok, want)
				}
				delete(oracle, k)
			case 2:
				v, ok := tr.Find(k)
				want, wok := oracle[k]
				if ok != wok || (ok && v != want) {
					t.Fatalf("find(%d) = %d,%v want %d,%v", k, v, ok, want, wok)
				}
			}
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("Len = %d oracle %d", tr.Len(), len(oracle))
		}
		ks, vs := tr.ScanN(0, len(oracle)+1)
		if len(ks) != len(oracle) {
			t.Fatalf("scan %d oracle %d", len(ks), len(oracle))
		}
		for i := range ks {
			if oracle[ks[i]] != vs[i] {
				t.Fatalf("scan pair %d mismatch", i)
			}
			if i > 0 && ks[i] <= ks[i-1] {
				t.Fatal("scan out of order")
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBytesNonZero(t *testing.T) {
	tr := NewUint64()
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	if tr.MemoryBytes() < 1000*16 {
		t.Fatalf("MemoryBytes = %d, implausibly small", tr.MemoryBytes())
	}
}
