package htm

import "fptree/internal/obs"

// RegisterMetrics exposes the emulated-HTM event counters on reg under the
// given prefix (e.g. "htm"): conflict aborts, operation restarts, and
// fallback-lock acquisitions — the numbers behind the paper's observation
// that Selective Concurrency keeps TSX abort rates low by moving SCM writes
// out of transactions.
func (s *Stats) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"_aborts_total",
		"optimistic validation failures (TSX conflict-abort analogue)", s.Aborts.Load)
	reg.CounterFunc(prefix+"_restarts_total",
		"full operation restarts after an abort", s.Restarts.Load)
	reg.CounterFunc(prefix+"_fallbacks_total",
		"times the global fallback lock serialized a section", s.Fallbacks.Load)
	for c := AbortCause(0); c < NumAbortCauses; c++ {
		reg.CounterFunc(prefix+"_aborts_"+c.String()+"_total",
			"conflict aborts attributed to the "+c.String()+" protocol step",
			s.ByCause[c].Load)
	}
}

// RegisterMetrics exposes the adaptive controller's live state and event
// counters on reg under the given prefix (e.g. "htm"): the budget/backoff-cap
// gauges operators watch to see the controller react to contention, plus the
// fallback-entry and adaptation counters the contention sweep records.
func (c *AdaptiveController) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+"_adaptive_budget",
		"live optimistic retry budget (writers enter the fallback lock past it)",
		func() float64 { return float64(c.Budget()) })
	reg.GaugeFunc(prefix+"_adaptive_backoff_cap_ns",
		"live exponential-backoff park cap applied past the budget",
		func() float64 { return float64(c.BackoffCap()) })
	reg.GaugeFunc(prefix+"_adaptive_abort_ewma",
		"smoothed conflict-aborts-per-op ratio steering the budget",
		c.AbortEWMA)
	reg.GaugeFunc(prefix+"_fallback_held",
		"1 while a fallback writer holds the global lock",
		func() float64 { return float64(c.fbHeld.Load()) })
	reg.CounterFunc(prefix+"_fallback_entries_total",
		"writer entries into the global fallback lock",
		c.Stats.FallbackEntries.Load)
	reg.CounterFunc(prefix+"_adaptive_adaptations_total",
		"adaptation windows evaluated by the controller",
		c.Stats.Adaptations.Load)
	reg.CounterFunc(prefix+"_adaptive_budget_cuts_total",
		"adaptation windows that shrank the retry budget",
		c.Stats.BudgetCuts.Load)
	reg.CounterFunc(prefix+"_adaptive_budget_raises_total",
		"adaptation windows that grew the retry budget",
		c.Stats.BudgetRaises.Load)
}
