package htm

import "fptree/internal/obs"

// RegisterMetrics exposes the emulated-HTM event counters on reg under the
// given prefix (e.g. "htm"): conflict aborts, operation restarts, and
// fallback-lock acquisitions — the numbers behind the paper's observation
// that Selective Concurrency keeps TSX abort rates low by moving SCM writes
// out of transactions.
func (s *Stats) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"_aborts_total",
		"optimistic validation failures (TSX conflict-abort analogue)", s.Aborts.Load)
	reg.CounterFunc(prefix+"_restarts_total",
		"full operation restarts after an abort", s.Restarts.Load)
	reg.CounterFunc(prefix+"_fallbacks_total",
		"times the global fallback lock serialized a section", s.Fallbacks.Load)
	for c := AbortCause(0); c < NumAbortCauses; c++ {
		reg.CounterFunc(prefix+"_aborts_"+c.String()+"_total",
			"conflict aborts attributed to the "+c.String()+" protocol step",
			s.ByCause[c].Load)
	}
}
