package htm

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Adaptive concurrency control, after Brown's "A Template for Implementing
// Fast Lock-free Trees Using HTM": the fallback-path policy dominates scaling
// more than the fast path does, so the retry budget and the decision to enter
// the global-lock fallback should track the *live* abort ratio instead of
// being compile-time constants.
//
// An AdaptiveController sits beside one tree (one per kvserver shard) and
// observes the same cause-tagged abort stream that feeds the htm_aborts_*
// telemetry. Every AdaptEvery completed operations it folds the window's
// conflict-abort ratio into an EWMA and moves the retry budget by AIMD
// (additive increase, multiplicative decrease) between a configured floor and
// ceiling, with a hysteresis band so a steady ratio never oscillates:
//
//	EWMA > High  -> budget halves toward Floor, backoff cap doubles
//	               (sustained conflicts: give up optimism sooner, park longer)
//	EWMA < Low   -> budget +1 toward Ceiling, backoff cap halves
//	               (contention drained: restore optimism)
//	otherwise    -> no change
//
// Only conflict-cause aborts (descend, leaf_lock, post_lock, iter) steer the
// budget. Forced aborts model TSX's spurious/capacity aborts: retrying those
// less optimistically would not help, so they count toward the totals but not
// toward the steering signal — the same reason Brown's template sends
// capacity aborts straight to the fallback instead of spending retries.
//
// Writers whose attempt count exceeds the live budget enter the fallback
// mutex. Brown's key refinement is preserved by construction: optimistic
// *readers* never consult the fallback lock. They validate leaf versions
// against the writer's publication point (occCC bumps the leaf version before
// releasing the leaf lock), so a reader overlapping a fallback writer either
// validates a consistent pre-image or aborts and retries — it never stalls on
// the global lock. See CONCURRENCY.md for the full safety argument.

// AdaptiveConfig bounds and paces an AdaptiveController. The zero value
// selects the defaults documented on each field.
type AdaptiveConfig struct {
	// Floor and Ceiling bound the retry budget (optimistic attempts before a
	// writer enters the fallback lock). Defaults 2 and 16; the fixed-budget
	// DefaultMaxRetries sits between them.
	Floor   int
	Ceiling int

	// BackoffFloor and BackoffCeiling bound the exponential-backoff park cap
	// applied past the budget. Defaults 16µs and 256µs (the fixed Backoff
	// caps at 64µs).
	BackoffFloor   time.Duration
	BackoffCeiling time.Duration

	// Low and High are the EWMA hysteresis thresholds, in conflict aborts per
	// completed operation. Below Low the budget grows; above High it shrinks;
	// between them it holds. Defaults 0.05 and 0.5.
	Low  float64
	High float64

	// Alpha is the EWMA weight of the newest window sample. Default 0.4.
	Alpha float64

	// AdaptEvery is the adaptation period in completed operations. Counting
	// operations instead of wall time keeps adaptation deterministic under
	// test and naturally scales the sampling rate with load. Default 256.
	AdaptEvery int

	// AlwaysFallback forces every write through the fallback lock regardless
	// of the abort ratio — the verification mode crashtest uses to prove the
	// serialized path preserves persistence ordering.
	AlwaysFallback bool
}

// Defaults for AdaptiveConfig's zero fields.
const (
	DefaultAdaptiveFloor   = 2
	DefaultAdaptiveCeiling = 16
	DefaultAdaptEvery      = 256
)

const (
	defaultBackoffFloor   = 16 * time.Microsecond
	defaultBackoffCeiling = 256 * time.Microsecond
	defaultEWMALow        = 0.05
	defaultEWMAHigh       = 0.5
	defaultEWMAAlpha      = 0.4
)

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Floor <= 0 {
		c.Floor = DefaultAdaptiveFloor
	}
	if c.Ceiling <= 0 {
		c.Ceiling = DefaultAdaptiveCeiling
	}
	if c.Ceiling < c.Floor {
		c.Ceiling = c.Floor
	}
	if c.BackoffFloor <= 0 {
		c.BackoffFloor = defaultBackoffFloor
	}
	if c.BackoffCeiling <= 0 {
		c.BackoffCeiling = defaultBackoffCeiling
	}
	if c.BackoffCeiling < c.BackoffFloor {
		c.BackoffCeiling = c.BackoffFloor
	}
	if c.Low <= 0 {
		c.Low = defaultEWMALow
	}
	if c.High <= 0 {
		c.High = defaultEWMAHigh
	}
	if c.High < c.Low {
		c.High = c.Low
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = defaultEWMAAlpha
	}
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = DefaultAdaptEvery
	}
	return c
}

// AdaptiveStats counts controller events; all fields are safe to read while
// the controller is live.
type AdaptiveStats struct {
	Adaptations     atomic.Uint64 // adaptation windows evaluated
	BudgetCuts      atomic.Uint64 // windows that shrank the budget
	BudgetRaises    atomic.Uint64 // windows that grew the budget
	FallbackEntries atomic.Uint64 // writer entries into the fallback lock
}

// AdaptiveController owns the live retry budget, backoff cap, and fallback
// lock for one tree. All methods are safe for concurrent use; the controller
// adds two atomic increments to the completed-op path and nothing to the
// conflict-free read path beyond them.
type AdaptiveController struct {
	cfg AdaptiveConfig

	budget atomic.Int64  // live retry budget, in [Floor, Ceiling]
	capNS  atomic.Int64  // live backoff park cap, nanoseconds
	ewma   atomic.Uint64 // float64 bits of the conflict-abort-ratio EWMA

	ops       atomic.Uint64 // completed ops in the current window
	conflicts atomic.Uint64 // conflict-cause aborts in the current window
	adapting  atomic.Bool   // single-flight latch for window evaluation

	fbMu   sync.Mutex   // the global fallback lock (writers only)
	fbHeld atomic.Int32 // gauge: 1 while a fallback writer is inside

	Stats AdaptiveStats
}

// NewAdaptiveController returns a controller with the budget at cfg's ceiling
// (start optimistic, earn pessimism) and the backoff cap at its floor.
func NewAdaptiveController(cfg AdaptiveConfig) *AdaptiveController {
	c := &AdaptiveController{cfg: cfg.withDefaults()}
	c.budget.Store(int64(c.cfg.Ceiling))
	c.capNS.Store(int64(c.cfg.BackoffFloor))
	return c
}

// Config returns the controller's effective configuration (defaults applied).
func (c *AdaptiveController) Config() AdaptiveConfig { return c.cfg }

// Budget returns the live retry budget.
func (c *AdaptiveController) Budget() int { return int(c.budget.Load()) }

// BackoffCap returns the live exponential-backoff park cap.
func (c *AdaptiveController) BackoffCap() time.Duration {
	return time.Duration(c.capNS.Load())
}

// AbortEWMA returns the smoothed conflict-aborts-per-op ratio the controller
// is steering on.
func (c *AdaptiveController) AbortEWMA() float64 {
	return math.Float64frombits(c.ewma.Load())
}

// FallbackHeld reports whether a fallback writer is currently inside the
// global lock.
func (c *AdaptiveController) FallbackHeld() bool { return c.fbHeld.Load() != 0 }

// OnOp records one completed operation and, at window boundaries, re-evaluates
// the budget. Called once per public tree operation (find, insert, update,
// delete, one per iterator seek).
func (c *AdaptiveController) OnOp() {
	if c.ops.Add(1) < uint64(c.cfg.AdaptEvery) {
		return
	}
	if !c.adapting.CompareAndSwap(false, true) {
		return
	}
	ops := c.ops.Swap(0)
	conflicts := c.conflicts.Swap(0)
	c.adapt(ops, conflicts)
	c.adapting.Store(false)
}

// OnAbort records one abort and paces the retry, replacing the fixed Backoff
// when a controller is attached: within the live budget it yields, past it it
// parks with exponentially growing sleeps capped at the live backoff cap.
func (c *AdaptiveController) OnAbort(cause AbortCause, attempt int) {
	if isConflictCause(cause) {
		c.conflicts.Add(1)
	}
	budget := int(c.budget.Load())
	if attempt < budget {
		runtime.Gosched()
		return
	}
	shift := attempt - budget
	if shift > 16 {
		shift = 16
	}
	d := time.Microsecond << shift
	if cap := time.Duration(c.capNS.Load()); d > cap {
		d = cap
	}
	time.Sleep(d)
}

// isConflictCause reports whether a cause represents a genuine data conflict
// (the signal the budget steers on). Forced aborts emulate TSX
// spurious/capacity aborts — shrinking the budget cannot avoid them — and
// unclassified aborts carry no locality information.
func isConflictCause(cause AbortCause) bool {
	switch cause {
	case AbortDescend, AbortLeafLock, AbortPostLock, AbortIter:
		return true
	}
	return false
}

// ShouldFallback reports whether a writer at the given attempt number should
// stop retrying optimistically and take the fallback lock.
func (c *AdaptiveController) ShouldFallback(attempt int) bool {
	return c.cfg.AlwaysFallback || attempt > int(c.budget.Load())
}

// EnterFallback takes the global fallback lock. Writers only: optimistic
// readers validate against the fallback writer's leaf-version publication
// point instead of waiting here (Brown's refinement).
func (c *AdaptiveController) EnterFallback() {
	c.fbMu.Lock()
	c.fbHeld.Store(1)
	c.Stats.FallbackEntries.Add(1)
}

// ExitFallback releases the global fallback lock.
func (c *AdaptiveController) ExitFallback() {
	c.fbHeld.Store(0)
	c.fbMu.Unlock()
}

// adapt folds one window sample into the EWMA and applies the AIMD step.
func (c *AdaptiveController) adapt(ops, conflicts uint64) {
	if ops == 0 {
		return
	}
	sample := float64(conflicts) / float64(ops)
	e := c.cfg.Alpha*sample + (1-c.cfg.Alpha)*c.AbortEWMA()
	c.ewma.Store(math.Float64bits(e))
	c.Stats.Adaptations.Add(1)

	switch {
	case e > c.cfg.High:
		// Sustained conflicts: halve the budget toward the floor so writers
		// reach the fallback lock sooner, and park losers longer.
		b := int(c.budget.Load()) / 2
		if b < c.cfg.Floor {
			b = c.cfg.Floor
		}
		if int64(b) != c.budget.Swap(int64(b)) {
			c.Stats.BudgetCuts.Add(1)
		}
		cap := 2 * time.Duration(c.capNS.Load())
		if cap > c.cfg.BackoffCeiling {
			cap = c.cfg.BackoffCeiling
		}
		c.capNS.Store(int64(cap))
	case e < c.cfg.Low:
		// Contention drained: restore optimism one attempt at a time.
		b := int(c.budget.Load()) + 1
		if b > c.cfg.Ceiling {
			b = c.cfg.Ceiling
		}
		if int64(b) != c.budget.Swap(int64(b)) {
			c.Stats.BudgetRaises.Add(1)
		}
		cap := time.Duration(c.capNS.Load()) / 2
		if cap < c.cfg.BackoffFloor {
			cap = c.cfg.BackoffFloor
		}
		c.capNS.Store(int64(cap))
	}
}
