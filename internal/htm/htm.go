// Package htm emulates the Hardware Transactional Memory semantics the
// FPTree's Selective Concurrency scheme obtains from Intel TSX.
//
// Go cannot issue XBEGIN/XEND, so the package provides the established
// software equivalent: optimistic version-locks (optimistic lock coupling).
// A VersionLock gives readers invisible, abort-and-retry access to a node —
// exactly what a TSX transaction gives at cache-line granularity — and gives
// writers exclusive access that invalidates concurrent readers. Conflicts are
// detected at node granularity instead of cache-line granularity, which is
// coarser but preserves the scheme's structure: the transient part of the
// tree is traversed optimistically, persistent-leaf changes happen under
// fine-grained leaf locks outside the optimistic region, and a reader that
// observes a concurrent change aborts and retries, falling back as needed.
//
// Stats mirror the abort/retry/fallback counters one would read from TSX
// performance events.
package htm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// VersionLock is a word combining a lock bit with a version counter, the core
// of optimistic lock coupling. Readers snapshot the version, do their reads,
// and validate; writers take the lock bit and bump the version on release so
// every overlapping reader fails validation — the software analogue of a TSX
// conflict abort.
type VersionLock struct {
	w atomic.Uint64
}

// ReadBegin waits until the lock is free and returns the version snapshot to
// validate against. It is the XBEGIN analogue for one node.
func (v *VersionLock) ReadBegin() uint64 {
	for {
		w := v.w.Load()
		if w&1 == 0 {
			return w
		}
		runtime.Gosched()
	}
}

// ReadValidate reports whether the node is still unchanged since ReadBegin
// returned ver. A false result is the XABORT analogue: the reader must
// restart.
func (v *VersionLock) ReadValidate(ver uint64) bool {
	return v.w.Load() == ver
}

// TryUpgrade atomically converts a validated read snapshot into exclusive
// ownership. It fails if any writer intervened since ReadBegin.
func (v *VersionLock) TryUpgrade(ver uint64) bool {
	return v.w.CompareAndSwap(ver, ver|1)
}

// Lock spins until it holds the node exclusively.
func (v *VersionLock) Lock() {
	for {
		w := v.w.Load()
		if w&1 == 0 && v.w.CompareAndSwap(w, w|1) {
			return
		}
		runtime.Gosched()
	}
}

// TryLock attempts to take the node exclusively without spinning.
func (v *VersionLock) TryLock() bool {
	w := v.w.Load()
	return w&1 == 0 && v.w.CompareAndSwap(w, w|1)
}

// Unlock releases exclusive ownership and bumps the version, aborting every
// reader that overlapped the write.
func (v *VersionLock) Unlock() {
	v.w.Add(1) // 1 (lock bit) -> +1 wraps it into the version field: v|1 + 1 = (ver+1)<<1... see test
}

// UnlockNoBump releases exclusive ownership without invalidating readers.
// Use it when the critical section turned out to make no changes.
func (v *VersionLock) UnlockNoBump() {
	v.w.Add(^uint64(0)) // subtract the lock bit
}

// IsLocked reports whether a writer currently owns the node.
func (v *VersionLock) IsLocked() bool { return v.w.Load()&1 == 1 }

// AbortCause classifies why an optimistic section aborted. Real TSX reports
// an abort cause word (conflict, capacity, explicit XABORT); the emulation
// tags each abort with where in the protocol the conflict was observed, so
// the windowed abort-ratio telemetry and the per-span trace attribution can
// distinguish traversal conflicts from leaf-lock contention.
type AbortCause uint8

const (
	// AbortDescend: version validation failed while traversing the inner
	// nodes (a writer modified a node on the path).
	AbortDescend AbortCause = iota
	// AbortLeafLock: the target leaf's lock was unavailable (a writer or
	// reader held it), the analogue of a data-conflict abort on the leaf.
	AbortLeafLock
	// AbortPostLock: the leaf parent changed between taking the leaf lock
	// and the final validation, or the leaf died underneath the operation.
	AbortPostLock
	// AbortIter: an iterator or scan re-seek observed a conflict.
	AbortIter
	// AbortForced: a ForceAbort schedule fired (the emulation hook for the
	// spurious/capacity aborts real TSX suffers).
	AbortForced
	// AbortOther: unclassified (callers predating cause tagging).
	AbortOther

	// NumAbortCauses is the number of distinct causes; arrays indexed by
	// AbortCause have this length.
	NumAbortCauses
)

// String returns the short lowercase name used in metric names and trace
// JSON ("descend", "leaf_lock", ...).
func (c AbortCause) String() string {
	switch c {
	case AbortDescend:
		return "descend"
	case AbortLeafLock:
		return "leaf_lock"
	case AbortPostLock:
		return "post_lock"
	case AbortIter:
		return "iter"
	case AbortForced:
		return "forced"
	default:
		return "other"
	}
}

// Stats counts emulated-HTM events.
type Stats struct {
	Aborts    atomic.Uint64 // validation failures (conflict aborts)
	Restarts  atomic.Uint64 // full operation restarts
	Fallbacks atomic.Uint64 // times the global fallback lock was taken

	// ByCause breaks Aborts down by AbortCause; the per-cause counters sum
	// to Aborts (NoteAbort maintains both).
	ByCause [NumAbortCauses]atomic.Uint64
}

// NoteAbort records one conflict abort plus the operation restart it forces,
// tagged with its cause. It is the counting path behind the engine's
// abort-and-retry loops; Aborts == sum(ByCause) holds by construction.
func (s *Stats) NoteAbort(c AbortCause) {
	if c >= NumAbortCauses {
		c = AbortOther
	}
	s.Aborts.Add(1)
	s.Restarts.Add(1)
	s.ByCause[c].Add(1)
}

// SpecMutex emulates the TBB speculative spin mutex the paper uses as the
// TSX fallback mechanism: a critical section first runs optimistically
// (signalled by Speculate returning true) and resorts to a real global lock
// after MaxRetries aborts. The tree's concurrent operations consult it to
// decide between the optimistic path and the serialized path.
type SpecMutex struct {
	// MaxRetries is the abort budget before falling back to the global lock.
	// Zero means DefaultMaxRetries.
	MaxRetries int
	Stats      Stats

	// ForceAbort, when non-nil, is an abort-schedule hook for verification
	// harnesses: optimistic attempts consult it via Guard.MustAbort and the
	// caller aborts whenever it returns true for the current attempt number.
	// Fallback (serialized) attempts never consult it, so a schedule that
	// always returns true still terminates — it just drives every section
	// through the fallback path. Must be safe for concurrent calls.
	ForceAbort func(attempt int) bool

	mu     sync.Mutex
	serial atomic.Bool // true while a fallback holder is inside
}

// DefaultMaxRetries matches the common TSX retry budget.
const DefaultMaxRetries = 8

// Backoff paces one optimistic retry loop between aborts. Real TSX retries a
// conflicted transaction immediately only for a bounded budget and then
// blocks on the fallback lock; an unbounded Gosched spin instead lets a
// single long-held lock (e.g. a writer paying emulated SCM latency inside
// its critical section) farm thousands of counted aborts per conflict on a
// small machine, inflating the abort telemetry beyond anything real hardware
// can produce. Within the budget Backoff just yields; past it, it parks the
// goroutine with exponentially growing sleeps capped at 64µs — the
// scheduling analogue of waiting on the fallback path.
func Backoff(attempt int) {
	if attempt < DefaultMaxRetries {
		runtime.Gosched()
		return
	}
	shift := attempt - DefaultMaxRetries
	if shift > 6 {
		shift = 6
	}
	time.Sleep(time.Microsecond << shift)
}

// Guard is the per-attempt state of a speculative critical section.
type Guard struct {
	m        *SpecMutex
	attempts int
	fallback bool
}

// Acquire starts a speculative critical section. While another goroutine
// holds the fallback lock, optimistic execution is not allowed (the lock is
// in the transaction's read set, as in real TSX lock elision), so Acquire
// waits for it.
func (m *SpecMutex) Acquire() *Guard {
	g := &Guard{m: m}
	g.begin()
	return g
}

func (g *Guard) begin() {
	if g.attempts > g.m.maxRetries() {
		g.m.mu.Lock()
		g.m.serial.Store(true)
		g.fallback = true
		g.m.Stats.Fallbacks.Add(1)
		return
	}
	// Optimistic attempt: wait until no fallback holder is inside.
	for g.m.serial.Load() {
		runtime.Gosched()
	}
}

// Abort records a conflict and prepares the next attempt; the caller must
// restart its critical section from the top. Aborts driven by a ForceAbort
// schedule are tagged AbortForced, organic conflicts AbortOther (the mutex
// cannot see where inside the section the conflict arose).
func (g *Guard) Abort() {
	cause := AbortOther
	if g.m.ForceAbort != nil {
		cause = AbortForced
	}
	g.m.Stats.NoteAbort(cause)
	if g.fallback {
		g.m.serial.Store(false)
		g.m.mu.Unlock()
		g.fallback = false
	}
	g.attempts++
	g.begin()
}

// Release commits the critical section.
func (g *Guard) Release() {
	if g.fallback {
		g.m.serial.Store(false)
		g.m.mu.Unlock()
		g.fallback = false
	}
}

// Serialized reports whether this attempt runs under the global fallback
// lock. Sections running serialized cannot conflict and may skip validation.
func (g *Guard) Serialized() bool { return g.fallback }

// MustAbort reports whether the mutex's ForceAbort schedule demands that this
// optimistic attempt abort — the emulation hook for the spurious/capacity
// aborts real TSX suffers, letting tests steer sections onto the fallback
// path deterministically. Callers check it inside the critical section and
// call Abort when it returns true. Always false on fallback attempts.
func (g *Guard) MustAbort() bool {
	return !g.fallback && g.m.ForceAbort != nil && g.m.ForceAbort(g.attempts)
}

func (m *SpecMutex) maxRetries() int {
	if m.MaxRetries > 0 {
		return m.MaxRetries
	}
	return DefaultMaxRetries
}

// RWSpin is a tiny reader-writer spinlock used as the volatile per-leaf lock.
// The paper writes leaf locks inside TSX transactions with plain stores; in
// the emulation the equivalent is an atomic word. Leaf locks are never
// persisted and are reset during recovery.
type RWSpin struct {
	w atomic.Int32
}

const rwWriter = -1 << 20

// TryRLock attempts to add a reader; it fails while a writer is inside.
func (l *RWSpin) TryRLock() bool {
	for {
		w := l.w.Load()
		if w < 0 {
			return false
		}
		if l.w.CompareAndSwap(w, w+1) {
			return true
		}
	}
}

// RUnlock removes a reader.
func (l *RWSpin) RUnlock() { l.w.Add(-1) }

// TryLock attempts to take the write lock; it fails while any reader or
// writer is inside.
func (l *RWSpin) TryLock() bool {
	return l.w.CompareAndSwap(0, rwWriter)
}

// Lock spins until it holds the write lock.
func (l *RWSpin) Lock() {
	for !l.TryLock() {
		runtime.Gosched()
	}
}

// Unlock releases the write lock.
func (l *RWSpin) Unlock() { l.w.Store(0) }

// Locked reports whether a writer holds the lock (the "Leaf.lock == 1" test
// in the paper's pseudo-code).
func (l *RWSpin) Locked() bool { return l.w.Load() < 0 }

// Reset forces the lock to the released state; recovery uses it because
// volatile locks must not survive a crash.
func (l *RWSpin) Reset() { l.w.Store(0) }
