package htm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVersionLockReadValidate(t *testing.T) {
	var v VersionLock
	ver := v.ReadBegin()
	if !v.ReadValidate(ver) {
		t.Fatal("validation should pass with no writer")
	}
	v.Lock()
	if v.ReadValidate(ver) {
		t.Fatal("validation should fail while locked")
	}
	v.Unlock()
	if v.ReadValidate(ver) {
		t.Fatal("validation should fail after a write")
	}
	ver2 := v.ReadBegin()
	if ver2 == ver {
		t.Fatal("version should have advanced")
	}
}

func TestVersionLockUnlockNoBump(t *testing.T) {
	var v VersionLock
	ver := v.ReadBegin()
	v.Lock()
	v.UnlockNoBump()
	if !v.ReadValidate(ver) {
		t.Fatal("no-bump unlock must keep readers valid")
	}
}

func TestVersionLockTryUpgrade(t *testing.T) {
	var v VersionLock
	ver := v.ReadBegin()
	if !v.TryUpgrade(ver) {
		t.Fatal("upgrade should succeed with no interference")
	}
	if !v.IsLocked() {
		t.Fatal("upgrade should hold the lock")
	}
	v.Unlock()
	if v.TryUpgrade(ver) {
		t.Fatal("stale upgrade should fail")
	}
}

func TestVersionLockTryLock(t *testing.T) {
	var v VersionLock
	if !v.TryLock() {
		t.Fatal("TryLock on free lock")
	}
	if v.TryLock() {
		t.Fatal("TryLock on held lock")
	}
	v.Unlock()
	if !v.TryLock() {
		t.Fatal("TryLock after unlock")
	}
	v.Unlock()
}

func TestVersionLockConcurrentCounter(t *testing.T) {
	// A counter guarded by the version lock must not lose increments, and
	// optimistic readers must never observe a torn intermediate state.
	var v VersionLock
	var a, b atomic.Uint64 // invariant under the lock: a == b
	const (
		writers = 4
		perW    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				v.Lock()
				a.Add(1)
				b.Add(1)
				v.Unlock()
			}
		}()
	}
	var torn atomic.Uint64
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ver := v.ReadBegin()
				x, y := a.Load(), b.Load()
				if v.ReadValidate(ver) && x != y {
					torn.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if a.Load() != writers*perW || b.Load() != a.Load() {
		t.Fatalf("lost increments: a=%d b=%d", a.Load(), b.Load())
	}
	if torn.Load() != 0 {
		t.Fatalf("%d validated torn reads", torn.Load())
	}
}

func TestSpecMutexFallbackAfterRetries(t *testing.T) {
	m := &SpecMutex{MaxRetries: 3}
	g := m.Acquire()
	for i := 0; i < 4; i++ {
		if g.Serialized() {
			t.Fatalf("serialized too early at attempt %d", i)
		}
		g.Abort()
	}
	if !g.Serialized() {
		t.Fatal("should be serialized after exhausting retries")
	}
	if m.Stats.Fallbacks.Load() != 1 {
		t.Fatalf("fallbacks = %d", m.Stats.Fallbacks.Load())
	}
	if m.Stats.Aborts.Load() != 4 {
		t.Fatalf("aborts = %d", m.Stats.Aborts.Load())
	}
	g.Release()
	// The mutex must be reusable afterwards.
	g2 := m.Acquire()
	g2.Release()
}

func TestSpecMutexForceAbortSchedule(t *testing.T) {
	// A schedule that kills the first two optimistic attempts: the section
	// must succeed on the third attempt, still optimistic.
	m := &SpecMutex{MaxRetries: 5, ForceAbort: func(attempt int) bool { return attempt < 2 }}
	g := m.Acquire()
	aborts := 0
	for g.MustAbort() {
		aborts++
		g.Abort()
	}
	if aborts != 2 {
		t.Fatalf("forced aborts = %d, want 2", aborts)
	}
	if g.Serialized() {
		t.Fatal("schedule should not have exhausted the retry budget")
	}
	g.Release()
}

func TestSpecMutexForceAbortAlwaysFallsBack(t *testing.T) {
	// An always-abort schedule must terminate by driving the section onto
	// the fallback path, where MustAbort is defined to be false.
	m := &SpecMutex{MaxRetries: 2, ForceAbort: func(int) bool { return true }}
	g := m.Acquire()
	for g.MustAbort() {
		g.Abort()
	}
	if !g.Serialized() {
		t.Fatal("always-abort schedule should end serialized")
	}
	if m.Stats.Fallbacks.Load() != 1 {
		t.Fatalf("fallbacks = %d", m.Stats.Fallbacks.Load())
	}
	g.Release()
	if m.mu.TryLock() {
		m.mu.Unlock()
	} else {
		t.Fatal("fallback lock leaked")
	}
}

func TestSpecMutexSerializedExcludesOptimists(t *testing.T) {
	m := &SpecMutex{MaxRetries: 0}
	g := m.Acquire()
	for !g.Serialized() {
		g.Abort()
	}
	done := make(chan struct{})
	go func() {
		g2 := m.Acquire() // must wait for the fallback holder
		g2.Release()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("optimistic acquire did not wait for fallback holder")
	default:
	}
	g.Release()
	<-done
}

func TestSpecMutexAbortWhileSerializedReleasesLock(t *testing.T) {
	m := &SpecMutex{MaxRetries: 1}
	g := m.Acquire()
	g.Abort()
	g.Abort() // now serialized
	if !g.Serialized() {
		t.Fatal("expected serialized")
	}
	g.Abort() // aborting a serialized section must release and re-enter
	if !g.Serialized() {
		t.Fatal("re-entry should serialize again (attempts keep the budget spent)")
	}
	g.Release()
}

// TestSpecMutexOptimisticNeverOverlapsFallbackWrites exercises the full
// emulated-TSX discipline under contention: writers that exhaust their retry
// budget take the global fallback lock and mutate shared state under a
// VersionLock (as the tree's serialized path does), while optimistic readers
// run speculative sections and validate before trusting what they read. A
// validated optimistic section must never observe a fallback holder's
// half-finished write — the invariant a == b must hold for every validated
// snapshot — and every writer iteration must have gone through the fallback
// path.
func TestSpecMutexOptimisticNeverOverlapsFallbackWrites(t *testing.T) {
	m := &SpecMutex{MaxRetries: 2}
	var vl VersionLock
	var a, b atomic.Uint64 // invariant outside writer critical sections: a == b
	const (
		writers = 2
		perW    = 300
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				g := m.Acquire()
				for !g.Serialized() {
					g.Abort() // burn the retry budget: force the fallback path
				}
				// Fallback holder's write, deliberately torn in the middle so
				// any overlapping validated reader would see a != b.
				vl.Lock()
				a.Add(1)
				runtime.Gosched()
				b.Add(1)
				vl.Unlock()
				g.Release()
			}
		}()
	}
	var violations, validated atomic.Uint64
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := m.Acquire()
				for {
					if g.Serialized() {
						// Serialized sections exclude all writers by
						// construction; a torn view here is a real bug too.
						if a.Load() != b.Load() {
							violations.Add(1)
						}
						break
					}
					ver := vl.ReadBegin()
					x, y := a.Load(), b.Load()
					if vl.ReadValidate(ver) {
						validated.Add(1)
						if x != y {
							violations.Add(1)
						}
						break
					}
					g.Abort() // conflict with a writer: restart the section
				}
				g.Release()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := a.Load(); got != writers*perW || b.Load() != got {
		t.Fatalf("lost writes: a=%d b=%d want %d", a.Load(), b.Load(), writers*perW)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d validated optimistic sections overlapped a fallback holder's writes", violations.Load())
	}
	if validated.Load() == 0 {
		t.Fatal("no optimistic section ever validated; the test exercised nothing")
	}
	if m.Stats.Fallbacks.Load() < writers*perW {
		t.Fatalf("fallbacks = %d, want >= %d", m.Stats.Fallbacks.Load(), writers*perW)
	}
}

func TestRWSpinReadersExcludeWriter(t *testing.T) {
	var l RWSpin
	if !l.TryRLock() {
		t.Fatal("reader should enter free lock")
	}
	if l.TryLock() {
		t.Fatal("writer should not enter with a reader inside")
	}
	if !l.TryRLock() {
		t.Fatal("second reader should enter")
	}
	l.RUnlock()
	l.RUnlock()
	if !l.TryLock() {
		t.Fatal("writer should enter after readers leave")
	}
	if l.TryRLock() {
		t.Fatal("reader should not enter with writer inside")
	}
	if !l.Locked() {
		t.Fatal("Locked() should report the writer")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("Locked() after Unlock")
	}
}

func TestRWSpinReset(t *testing.T) {
	var l RWSpin
	l.Lock()
	l.Reset()
	if !l.TryLock() {
		t.Fatal("Reset should force-release")
	}
	l.Unlock()
}

func TestRWSpinConcurrentMutualExclusion(t *testing.T) {
	var l RWSpin
	var inside atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Lock()
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
}

func TestBackoffBudgetThenParks(t *testing.T) {
	// Within the retry budget Backoff must return essentially immediately
	// (it only yields); past the budget it must actually park the goroutine.
	start := time.Now()
	for a := 0; a < DefaultMaxRetries; a++ {
		Backoff(a)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("in-budget backoff too slow: %v", d)
	}

	start = time.Now()
	Backoff(DefaultMaxRetries + 6) // deepest tier: 64µs sleep
	if d := time.Since(start); d < 64*time.Microsecond {
		t.Fatalf("deep backoff returned in %v, want >= 64µs sleep", d)
	}

	// The sleep tier is capped: absurd attempt counts must not sleep longer
	// than the deepest tier by orders of magnitude.
	start = time.Now()
	Backoff(1 << 20)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("capped backoff too slow: %v", d)
	}
}
