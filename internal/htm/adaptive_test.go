package htm

import (
	"sync"
	"testing"
	"time"
)

// feedWindow drives one full adaptation window through the controller: ops
// completed operations, each preceded by abortsPerOp conflict aborts of the
// given cause. Synchronous and single-goroutine, so adaptation is
// deterministic.
func feedWindow(c *AdaptiveController, ops, abortsPerOp int, cause AbortCause) {
	for i := 0; i < ops; i++ {
		for a := 0; a < abortsPerOp; a++ {
			c.OnAbort(cause, 0) // attempt 0: yields, never sleeps
		}
		c.OnOp()
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	c := NewAdaptiveController(AdaptiveConfig{})
	cfg := c.Config()
	if cfg.Floor != DefaultAdaptiveFloor || cfg.Ceiling != DefaultAdaptiveCeiling {
		t.Fatalf("budget bounds = [%d,%d]", cfg.Floor, cfg.Ceiling)
	}
	if cfg.AdaptEvery != DefaultAdaptEvery {
		t.Fatalf("AdaptEvery = %d", cfg.AdaptEvery)
	}
	if got := c.Budget(); got != cfg.Ceiling {
		t.Fatalf("initial budget = %d, want ceiling %d", got, cfg.Ceiling)
	}
	if got := c.BackoffCap(); got != cfg.BackoffFloor {
		t.Fatalf("initial backoff cap = %v, want floor %v", got, cfg.BackoffFloor)
	}
	if cfg.Low >= cfg.High {
		t.Fatalf("hysteresis band inverted: Low=%v High=%v", cfg.Low, cfg.High)
	}
}

// TestAdaptiveRampUp: a sustained high-conflict stream must drive the budget
// to the floor and the backoff cap to the ceiling, staying in bounds at every
// step, and stay there while the stream continues.
func TestAdaptiveRampUp(t *testing.T) {
	cfg := AdaptiveConfig{Floor: 2, Ceiling: 16, AdaptEvery: 64}
	c := NewAdaptiveController(cfg)
	cfg = c.Config()
	for round := 0; round < 12; round++ {
		feedWindow(c, cfg.AdaptEvery, 2, AbortLeafLock) // ratio 2.0 >> High
		b := c.Budget()
		if b < cfg.Floor || b > cfg.Ceiling {
			t.Fatalf("round %d: budget %d out of [%d,%d]", round, b, cfg.Floor, cfg.Ceiling)
		}
		if cap := c.BackoffCap(); cap < cfg.BackoffFloor || cap > cfg.BackoffCeiling {
			t.Fatalf("round %d: backoff cap %v out of [%v,%v]", round, cap, cfg.BackoffFloor, cfg.BackoffCeiling)
		}
	}
	if got := c.Budget(); got != cfg.Floor {
		t.Fatalf("budget after sustained conflicts = %d, want floor %d", got, cfg.Floor)
	}
	if got := c.BackoffCap(); got != cfg.BackoffCeiling {
		t.Fatalf("backoff cap after sustained conflicts = %v, want ceiling %v", got, cfg.BackoffCeiling)
	}
	if c.Stats.BudgetCuts.Load() == 0 {
		t.Fatal("no budget cuts recorded")
	}
	// At the floor, further conflict windows must not move it (no underflow).
	feedWindow(c, cfg.AdaptEvery, 2, AbortDescend)
	if got := c.Budget(); got != cfg.Floor {
		t.Fatalf("budget left the floor under continued conflicts: %d", got)
	}
}

// TestAdaptiveDrain: after contention drains, calm windows must restore the
// budget to the ceiling and the backoff cap to the floor.
func TestAdaptiveDrain(t *testing.T) {
	cfg := AdaptiveConfig{Floor: 2, Ceiling: 16, AdaptEvery: 64}
	c := NewAdaptiveController(cfg)
	cfg = c.Config()
	for round := 0; round < 12; round++ {
		feedWindow(c, cfg.AdaptEvery, 2, AbortLeafLock)
	}
	if c.Budget() != cfg.Floor {
		t.Fatalf("precondition: budget %d != floor", c.Budget())
	}
	// EWMA must decay below Low, then the budget climbs +1 per window; give
	// it decay windows plus one window per budget step.
	for round := 0; round < 40 && c.Budget() < cfg.Ceiling; round++ {
		feedWindow(c, cfg.AdaptEvery, 0, AbortOther) // ratio 0
	}
	if got := c.Budget(); got != cfg.Ceiling {
		t.Fatalf("budget after drain = %d, want ceiling %d", got, cfg.Ceiling)
	}
	if got := c.BackoffCap(); got != cfg.BackoffFloor {
		t.Fatalf("backoff cap after drain = %v, want floor %v", got, cfg.BackoffFloor)
	}
	if c.Stats.BudgetRaises.Load() == 0 {
		t.Fatal("no budget raises recorded")
	}
}

// TestAdaptiveBurst: one conflicted window inside a calm stream may dip the
// budget, but the EWMA must smooth it and the budget must recover to the
// ceiling once the burst passes.
func TestAdaptiveBurst(t *testing.T) {
	cfg := AdaptiveConfig{Floor: 2, Ceiling: 16, AdaptEvery: 64}
	c := NewAdaptiveController(cfg)
	cfg = c.Config()
	for round := 0; round < 4; round++ {
		feedWindow(c, cfg.AdaptEvery, 0, AbortOther)
	}
	feedWindow(c, cfg.AdaptEvery, 3, AbortPostLock) // the burst
	dip := c.Budget()
	if dip < cfg.Floor || dip > cfg.Ceiling {
		t.Fatalf("budget %d out of bounds after burst", dip)
	}
	for round := 0; round < 40 && c.Budget() < cfg.Ceiling; round++ {
		feedWindow(c, cfg.AdaptEvery, 0, AbortOther)
	}
	if got := c.Budget(); got != cfg.Ceiling {
		t.Fatalf("budget did not recover after burst: %d", got)
	}
}

// TestAdaptiveNoOscillation: a steady ratio inside the hysteresis band must
// leave the budget unchanged window after window — the band exists precisely
// so the controller cannot flap between raise and cut on a constant signal.
func TestAdaptiveNoOscillation(t *testing.T) {
	cfg := AdaptiveConfig{Floor: 2, Ceiling: 16, AdaptEvery: 100, Low: 0.05, High: 0.5}
	c := NewAdaptiveController(cfg)
	cfg = c.Config()
	// Ratio 0.2 sits inside (Low, High): 20 conflicts per 100-op window.
	warm := func() {
		for i := 0; i < cfg.AdaptEvery; i++ {
			if i < 20 {
				c.OnAbort(AbortLeafLock, 0)
			}
			c.OnOp()
		}
	}
	warm() // EWMA moves from 0 toward 0.2; may raise once while below Low
	warm()
	ref := c.Budget()
	for round := 0; round < 20; round++ {
		warm()
		if got := c.Budget(); got != ref {
			t.Fatalf("round %d: budget oscillated %d -> %d on a steady in-band ratio", round, ref, got)
		}
	}
}

// TestAdaptiveForcedAbortsDoNotSteer: forced (spurious/capacity-analogue)
// aborts must not shrink the budget — only conflict causes carry a signal the
// budget can act on.
func TestAdaptiveForcedAbortsDoNotSteer(t *testing.T) {
	cfg := AdaptiveConfig{Floor: 2, Ceiling: 16, AdaptEvery: 64}
	c := NewAdaptiveController(cfg)
	cfg = c.Config()
	for round := 0; round < 10; round++ {
		feedWindow(c, cfg.AdaptEvery, 3, AbortForced)
	}
	if got := c.Budget(); got != cfg.Ceiling {
		t.Fatalf("forced aborts moved the budget: %d", got)
	}
	if got := c.AbortEWMA(); got != 0 {
		t.Fatalf("forced aborts leaked into the conflict EWMA: %v", got)
	}
}

func TestAdaptiveShouldFallback(t *testing.T) {
	c := NewAdaptiveController(AdaptiveConfig{Floor: 2, Ceiling: 4})
	if c.ShouldFallback(0) || c.ShouldFallback(4) {
		t.Fatal("fallback before exhausting the budget")
	}
	if !c.ShouldFallback(5) {
		t.Fatal("no fallback past the budget")
	}
	af := NewAdaptiveController(AdaptiveConfig{AlwaysFallback: true})
	if !af.ShouldFallback(0) {
		t.Fatal("AlwaysFallback did not force fallback on attempt 0")
	}
}

// TestAdaptiveFallbackMutualExclusion: Enter/ExitFallback is a real mutex and
// the held gauge plus entry counter track it.
func TestAdaptiveFallbackMutualExclusion(t *testing.T) {
	c := NewAdaptiveController(AdaptiveConfig{})
	const goroutines, rounds = 4, 200
	var inside, max int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.EnterFallback()
				mu.Lock()
				inside++
				if inside > max {
					max = inside
				}
				if !c.FallbackHeld() {
					t.Error("FallbackHeld false inside the critical section")
				}
				inside--
				mu.Unlock()
				c.ExitFallback()
			}
		}()
	}
	wg.Wait()
	if max != 1 {
		t.Fatalf("fallback admitted %d holders at once", max)
	}
	if got := c.Stats.FallbackEntries.Load(); got != goroutines*rounds {
		t.Fatalf("FallbackEntries = %d, want %d", got, goroutines*rounds)
	}
	if c.FallbackHeld() {
		t.Fatal("FallbackHeld stuck after release")
	}
}

// TestAdaptiveOnAbortPacing: past the budget the park is bounded by the live
// cap; within it, OnAbort returns promptly.
func TestAdaptiveOnAbortPacing(t *testing.T) {
	c := NewAdaptiveController(AdaptiveConfig{Floor: 2, Ceiling: 4, BackoffCeiling: 100 * time.Microsecond})
	start := time.Now()
	c.OnAbort(AbortDescend, 0)    // within budget: yield only
	c.OnAbort(AbortDescend, 1000) // far past budget: park, capped
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("OnAbort park unbounded: %v", elapsed)
	}
}
