//go:build !linux

package scm

import "os"

// Fallback for platforms without the mmap path: the durable view stays a
// heap slice and Pool.Sync rewrites the whole arena file. Data is then only
// as durable as the last Sync/Close — kill -9 durability needs the mapped
// path (mmap_linux.go).

const mmapSupported = false

func mmapFile(*os.File, int64) ([]byte, error) { panic("scm: mmap unsupported on this platform") }

func munmapFile([]byte) error { return nil }

func msyncFile([]byte) error { return nil }
