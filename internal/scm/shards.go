package scm

// Multi-arena helpers for sharded stores: a keyspace partitioned over N
// independent FPTree shards keeps one arena file per shard
// (<data>.shard<i>), so shards never contend on an allocator or a durable
// region and each one recovers independently. These helpers open, sync and
// close the whole fleet with the same create-or-recover semantics OpenFile
// gives a single arena.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ShardPath returns the arena file path of shard i of a sharded data path:
// "<path>.shard<i>".
func ShardPath(path string, i int) string {
	return fmt.Sprintf("%s.shard%d", path, i)
}

// OpenFileShards opens (or creates) the n shard arena files of path, each
// with create-or-recover semantics (see OpenFile). recovered[i] reports
// whether shard i held an existing image. capacityEach sizes each fresh
// shard arena.
//
// The on-disk shard count is part of the store's identity — a key hashed to
// shard 2 of 4 is unreachable in a 2-shard layout — so the open fails when
// the directory holds shard files beyond index n-1 (the store was previously
// run with more shards). Missing files among 0..n-1 are created fresh, which
// keeps a crash during first-time formatting recoverable.
//
// On error, any pools opened so far are closed; on success the caller owns
// all n pools and should release them with ClosePools (or SyncPools for
// periodic power-fail durability).
func OpenFileShards(path string, n int, capacityEach int64, cfg LatencyConfig) (pools []*Pool, recovered []bool, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("scm: shard count %d < 1", n)
	}
	if extra, err := strayShards(path, n); err != nil {
		return nil, nil, err
	} else if len(extra) > 0 {
		return nil, nil, fmt.Errorf("scm: %s was sharded wider than %d (found %s); reopen with the original shard count",
			path, n, strings.Join(extra, ", "))
	}
	pools = make([]*Pool, n)
	recovered = make([]bool, n)
	for i := 0; i < n; i++ {
		p, rec, err := OpenFile(ShardPath(path, i), capacityEach, cfg)
		if err != nil {
			ClosePools(pools[:i]) //nolint:errcheck — surfacing the open error
			return nil, nil, fmt.Errorf("scm: shard %d/%d: %w", i, n, err)
		}
		pools[i], recovered[i] = p, rec
	}
	return pools, recovered, nil
}

// strayShards lists shard files of path with index >= n.
func strayShards(path string, n int) ([]string, error) {
	dir := filepath.Dir(path)
	prefix := filepath.Base(path) + ".shard"
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var extra []string
	for _, e := range entries {
		idx, ok := strings.CutPrefix(e.Name(), prefix)
		if !ok {
			continue
		}
		if i, err := strconv.Atoi(idx); err == nil && i >= n {
			extra = append(extra, e.Name())
		}
	}
	return extra, nil
}

// SyncPools makes every pool's durable view power-fail durable (Pool.Sync on
// each). All pools are synced even if one fails; the first error wins.
func SyncPools(pools []*Pool) error {
	var first error
	for _, p := range pools {
		if p == nil {
			continue
		}
		if err := p.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ClosePools closes every pool (clean-shutdown marker + sync + release). All
// pools are closed even if one fails; the first error wins. nil entries are
// skipped, so partially-built fleets can be torn down with it.
func ClosePools(pools []*Pool) error {
	var first error
	for _, p := range pools {
		if p == nil {
			continue
		}
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
