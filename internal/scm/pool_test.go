package scm

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newTestPool(t *testing.T) *Pool {
	t.Helper()
	return NewPool(1<<20, LatencyConfig{CacheBytes: -1})
}

func TestReadWriteRoundTrip(t *testing.T) {
	p := newTestPool(t)
	off := uint64(headerSize)
	p.WriteU64(off, 0xdeadbeefcafef00d)
	if got := p.ReadU64(off); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x", got)
	}
	p.WriteU32(off+8, 0x12345678)
	if got := p.ReadU32(off + 8); got != 0x12345678 {
		t.Fatalf("ReadU32 = %#x", got)
	}
	p.WriteU16(off+12, 0xabcd)
	if got := p.ReadU16(off + 12); got != 0xabcd {
		t.Fatalf("ReadU16 = %#x", got)
	}
	p.WriteU8(off+14, 0x42)
	if got := p.ReadU8(off + 14); got != 0x42 {
		t.Fatalf("ReadU8 = %#x", got)
	}
	p.WriteBytes(off+64, []byte("hello scm"))
	if got := p.ReadBytes(off+64, 9); string(got) != "hello scm" {
		t.Fatalf("ReadBytes = %q", got)
	}
	if !p.EqualBytes(off+64, []byte("hello scm")) {
		t.Fatal("EqualBytes mismatch")
	}
	if c := p.CompareBytes(off+64, 9, []byte("hello scn")); c >= 0 {
		t.Fatalf("CompareBytes = %d, want < 0", c)
	}
	pp := PPtr{ArenaID: 7, Offset: 1234}
	p.WritePPtr(off+128, pp)
	if got := p.ReadPPtr(off + 128); got != pp {
		t.Fatalf("ReadPPtr = %v", got)
	}
}

func TestCrashDiscardsUnflushedWrites(t *testing.T) {
	p := newTestPool(t)
	off := uint64(headerSize)
	p.WriteU64(off, 111)
	p.Persist(off, 8)
	p.WriteU64(off, 222) // never flushed
	p.WriteU64(off+LineSize, 333)
	p.Crash()
	if got := p.ReadU64(off); got != 111 {
		t.Fatalf("flushed value lost or dirty survived: got %d, want 111", got)
	}
	if got := p.ReadU64(off + LineSize); got != 0 {
		t.Fatalf("unflushed line survived crash: got %d", got)
	}
}

func TestPersistIsLineGranular(t *testing.T) {
	p := newTestPool(t)
	off := uint64(headerSize)
	p.WriteU64(off, 1)
	p.WriteU64(off+LineSize, 2)
	p.Persist(off, 8) // only first line
	p.Crash()
	if got := p.ReadU64(off); got != 1 {
		t.Fatalf("first line: got %d", got)
	}
	if got := p.ReadU64(off + LineSize); got != 0 {
		t.Fatalf("second line should be lost: got %d", got)
	}
}

func TestPersistSpanningLines(t *testing.T) {
	p := newTestPool(t)
	off := uint64(headerSize + LineSize - 8)
	p.WriteU64(off, 42)
	p.WriteU64(off+8, 43)
	p.Persist(off, 16)
	p.Crash()
	if p.ReadU64(off) != 42 || p.ReadU64(off+8) != 43 {
		t.Fatal("spanning persist lost data")
	}
}

func TestPPtrNull(t *testing.T) {
	if !(PPtr{}).IsNull() {
		t.Fatal("zero PPtr should be null")
	}
	if (PPtr{ArenaID: 1, Offset: 8}).IsNull() {
		t.Fatal("non-zero PPtr should not be null")
	}
	if (PPtr{}).String() != "pnull" {
		t.Fatal("null PPtr string")
	}
}

// refCells allocates a block to hold persistent-pointer cells for tests, so
// cells never overlap blocks handed out later.
func refCells(t *testing.T, p *Pool) uint64 {
	t.Helper()
	ptr, err := p.Alloc(offRoot, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return ptr.Offset
}

func TestAllocWritesRefAndZeroes(t *testing.T) {
	p := newTestPool(t)
	refOff := refCells(t, p)
	ptr, err := p.Alloc(refOff, 128)
	if err != nil {
		t.Fatal(err)
	}
	if ptr.IsNull() {
		t.Fatal("null allocation")
	}
	if got := p.ReadPPtr(refOff); got != ptr {
		t.Fatalf("ref cell = %v, want %v", got, ptr)
	}
	if ptr.Offset%LineSize != 0 {
		t.Fatalf("block not line-aligned: %#x", ptr.Offset)
	}
	for i := uint64(0); i < 128; i += 8 {
		if v := p.ReadU64(ptr.Offset + i); v != 0 {
			t.Fatalf("block not zeroed at +%d: %#x", i, v)
		}
	}
}

func TestFreeNullsRefAndReuses(t *testing.T) {
	p := newTestPool(t)
	refOff := refCells(t, p)
	ptr, err := p.Alloc(refOff, 128)
	if err != nil {
		t.Fatal(err)
	}
	p.Free(refOff, 128)
	if got := p.ReadPPtr(refOff); !got.IsNull() {
		t.Fatalf("ref not nulled after free: %v", got)
	}
	ptr2, err := p.Alloc(refOff, 128)
	if err != nil {
		t.Fatal(err)
	}
	if ptr2.Offset != ptr.Offset {
		t.Fatalf("free list not reused: got %#x, want %#x", ptr2.Offset, ptr.Offset)
	}
}

func TestFreeNullRefIsNoop(t *testing.T) {
	p := newTestPool(t)
	p.Free(refCells(t, p), 128) // ref cell holds null
	if p.Stats().Frees.Load() != 0 {
		t.Fatal("free of null pointer should be a no-op")
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	p := NewPool(headerSize*2, LatencyConfig{CacheBytes: -1})
	if _, err := p.Alloc(offRoot, 1<<30); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// The intent must be cleared so later operations are unaffected.
	if _, err := p.Alloc(offRoot, 64); err != nil {
		t.Fatalf("small alloc after OOM failed: %v", err)
	}
}

func TestAllocDifferentClassesDoNotMix(t *testing.T) {
	p := newTestPool(t)
	base := refCells(t, p)
	ref1, ref2 := base, base+16
	a, _ := p.Alloc(ref1, 64)
	p.Free(ref1, 64)
	b, err := p.Alloc(ref2, 128) // different class: must not reuse a
	if err != nil {
		t.Fatal(err)
	}
	if b.Offset == a.Offset {
		t.Fatal("class mixing: 128B alloc reused 64B block")
	}
}

func TestLargeAllocBumpOnly(t *testing.T) {
	p := NewPool(4<<20, LatencyConfig{CacheBytes: -1})
	ref := refCells(t, p)
	big := uint64(maxClassSize + LineSize)
	a, err := p.Alloc(ref, big)
	if err != nil {
		t.Fatal(err)
	}
	p.Free(ref, big)
	if p.LargeFrees() != 1 {
		t.Fatalf("LargeFrees = %d, want 1", p.LargeFrees())
	}
	b, err := p.Alloc(ref, big)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offset == b.Offset {
		t.Fatal("large blocks must not be reused")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arena.img")
	p := newTestPool(t)
	ref := refCells(t, p)
	ptr, err := p.Alloc(ref, 256)
	if err != nil {
		t.Fatal(err)
	}
	p.WriteBytes(ptr.Offset, []byte("durable payload"))
	p.Persist(ptr.Offset, 15)
	p.SetRoot(ptr)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	q, err := Load(path, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	q.Recover()
	root := q.Root()
	if root.Offset != ptr.Offset {
		t.Fatalf("root = %v, want offset %#x", root, ptr.Offset)
	}
	if got := q.ReadBytes(root.Offset, 15); string(got) != "durable payload" {
		t.Fatalf("payload = %q", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bogus.img")
	if err := writeFile(path, bytes.Repeat([]byte{0xff}, headerSize*2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, LatencyConfig{}); err == nil {
		t.Fatal("Load accepted garbage image")
	}
	if err := writeFile(path, []byte("short")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, LatencyConfig{}); err == nil {
		t.Fatal("Load accepted short image")
	}
}

func TestCrashTornPreservesWordAtomicity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := newTestPool(t)
		off := uint64(headerSize)
		// Durable baseline.
		for i := uint64(0); i < 8; i++ {
			p.WriteU64(off+i*8, 0x1111111111111111)
		}
		p.Persist(off, 64)
		// Overwrite without flushing, then tear.
		for i := uint64(0); i < 8; i++ {
			p.WriteU64(off+i*8, 0x2222222222222222)
		}
		p.CrashTorn(rng)
		for i := uint64(0); i < 8; i++ {
			v := p.ReadU64(off + i*8)
			if v != 0x1111111111111111 && v != 0x2222222222222222 {
				t.Fatalf("torn word %d: %#x — 8-byte atomicity violated", i, v)
			}
		}
	}
}

func TestStatsCountFlushesAndMisses(t *testing.T) {
	p := NewPool(1<<20, LatencyConfig{CacheBytes: -1}) // cache disabled: all accesses miss
	before := p.Stats().Snapshot()
	off := uint64(headerSize)
	p.WriteU64(off, 9)
	p.Persist(off, 8)
	p.ReadU64(off)
	d := p.Stats().Snapshot().Sub(before)
	if d.Writes != 1 || d.Reads != 1 {
		t.Fatalf("reads/writes = %d/%d", d.Reads, d.Writes)
	}
	if d.Flushes != 1 {
		t.Fatalf("flushes = %d", d.Flushes)
	}
	if d.ReadMisses < 2 {
		t.Fatalf("misses = %d, want >= 2 with cache disabled", d.ReadMisses)
	}
}

func TestCacheSimHitsAfterTouch(t *testing.T) {
	c := newCacheSim(0)
	if !c.touch(0) {
		t.Fatal("first touch should miss")
	}
	if c.touch(0) {
		t.Fatal("second touch should hit")
	}
	if c.touch(8) {
		t.Fatal("same line should hit")
	}
	c.evict(0)
	if !c.touch(0) {
		t.Fatal("touch after evict should miss")
	}
	c.reset()
	if !c.touch(0) {
		t.Fatal("touch after reset should miss")
	}
}

func TestCacheSimAssociativityEviction(t *testing.T) {
	c := newCacheSim(LineSize * cacheWays) // exactly one set
	if c.sets != 1 {
		t.Fatalf("sets = %d, want 1", c.sets)
	}
	for i := uint64(0); i < cacheWays+1; i++ {
		c.touch(i * LineSize)
	}
	// The set holds cacheWays lines; at least one of the first must be gone.
	misses := 0
	for i := uint64(0); i < cacheWays+1; i++ {
		if c.touch(i * LineSize) {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("no eviction in a full set")
	}
}

func TestClearPersistOfCleanLineIsFree(t *testing.T) {
	p := newTestPool(t)
	off := uint64(headerSize)
	p.WriteU64(off, 1)
	p.Persist(off, 8)
	before := p.Stats().Flushes.Load()
	p.Persist(off, 8) // line is clean now
	if got := p.Stats().Flushes.Load(); got != before {
		t.Fatalf("clean-line persist flushed %d lines", got-before)
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
