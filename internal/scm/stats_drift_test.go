package scm

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"fptree/internal/obs"
)

// TestStatsSnapshotCoversEveryCounter guards against counter drift: any
// atomic.Uint64 field added to Stats must also be copied by Snapshot and
// differenced by Sub. It sets each counter to a distinct value via reflection
// and checks the snapshot field of the same name carries it, so a field
// forgotten in Snapshot (stuck at zero) or in Sub (delta equals the absolute
// value) fails with the field's name.
func TestStatsSnapshotCoversEveryCounter(t *testing.T) {
	var s Stats
	sv := reflect.ValueOf(&s).Elem()
	st := sv.Type()
	atomicU64 := reflect.TypeOf(atomic.Uint64{})

	names := make([]string, 0, st.NumField())
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type != atomicU64 {
			t.Fatalf("Stats.%s is %v; every Stats field must be an atomic.Uint64 counter", f.Name, f.Type)
		}
		names = append(names, f.Name)
		counter := sv.Field(i).Addr().Interface().(*atomic.Uint64)
		counter.Store(uint64(100 + i))
	}

	snap := s.Snapshot()
	snapV := reflect.ValueOf(snap)
	if got, want := snapV.NumField(), len(names); got != want {
		t.Fatalf("StatsSnapshot has %d fields, Stats has %d counters", got, want)
	}
	for i, name := range names {
		f := snapV.FieldByName(name)
		if !f.IsValid() {
			t.Fatalf("StatsSnapshot is missing field %s", name)
		}
		if got, want := f.Uint(), uint64(100+i); got != want {
			t.Errorf("Snapshot().%s = %d, want %d (field not copied by Snapshot)", name, got, want)
		}
	}

	// Sub must difference every field: bump each live counter by a distinct
	// amount and check the delta field-by-field.
	for i := 0; i < st.NumField(); i++ {
		sv.Field(i).Addr().Interface().(*atomic.Uint64).Add(uint64(1 + i))
	}
	delta := s.Snapshot().Sub(snap)
	deltaV := reflect.ValueOf(delta)
	for i, name := range names {
		if got, want := deltaV.FieldByName(name).Uint(), uint64(1+i); got != want {
			t.Errorf("Sub().%s = %d, want %d (field not differenced by Sub)", name, got, want)
		}
	}
}

// TestStatsRegisterMetricsCoversEveryCounter checks the obs registration stays
// in sync with the Stats struct the same way: one registry series per counter,
// reading the live value.
func TestStatsRegisterMetricsCoversEveryCounter(t *testing.T) {
	var s Stats
	sv := reflect.ValueOf(&s).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).Addr().Interface().(*atomic.Uint64).Store(uint64(7 + i))
	}
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg, "scm")
	snap := reg.Snapshot()
	if got, want := len(reg.Names()), sv.NumField(); got != want {
		t.Fatalf("registered %d series for %d counters: %v", got, want, reg.Names())
	}
	total := 0.0
	for _, name := range reg.Names() {
		if !strings.HasPrefix(name, "scm_") {
			t.Errorf("series %q missing prefix", name)
		}
		total += snap.Get(name)
	}
	want := 0.0
	for i := 0; i < sv.NumField(); i++ {
		want += float64(7 + i)
	}
	if total != want {
		t.Fatalf("registered series sum to %v, live counters sum to %v", total, want)
	}
}

func TestPoolRegisterMetricsGauges(t *testing.T) {
	p := NewPool(1<<20, LatencyConfig{CacheBytes: -1})
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg, "scm")
	if _, err := p.Alloc(0, 4096); err != nil {
		t.Fatal(err)
	}
	readsBefore := p.Stats().Reads.Load()
	snap := reg.Snapshot()
	if snap.Get("scm_pool_size_bytes") != float64(p.Size()) {
		t.Fatalf("pool size gauge = %v, want %v", snap.Get("scm_pool_size_bytes"), p.Size())
	}
	if snap.Get("scm_pool_allocated_bytes") < 4096 {
		t.Fatalf("allocated gauge = %v, want >= 4096", snap.Get("scm_pool_allocated_bytes"))
	}
	if got := p.Stats().Reads.Load(); got != readsBefore {
		t.Fatalf("metrics scrape performed %d SCM reads; scrapes must not perturb the counters", got-readsBefore)
	}
}

func TestReadHitsCountedOnCacheHit(t *testing.T) {
	p := NewPool(1<<20, LatencyConfig{}) // default simulated cache
	off := uint64(headerSize)
	p.ReadU64(off) // cold miss
	p.ReadU64(off) // hit
	p.ReadU64(off) // hit
	st := p.Stats().Snapshot()
	if st.ReadHits < 2 {
		t.Fatalf("ReadHits = %d after two warm reads (stats: %+v)", st.ReadHits, st)
	}
	if st.ReadMisses == 0 {
		t.Fatalf("ReadMisses = 0 after a cold read")
	}
}
