package scm

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadAdvancesPoolIDCounter is the regression test for the duplicate
// ArenaID bug: Load restored p.id from the image but never advanced the
// global counter, so a pool created after a Load could mint the same ArenaID
// and its persistent pointers would alias the loaded arena's.
func TestLoadAdvancesPoolIDCounter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.img")
	p := newTestPool(t)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	// Push the image's ID far above the live counter, as if the image came
	// from a long-running previous process.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	high := poolIDs.Load() + 1000
	binary.LittleEndian.PutUint64(img[offArenaID:], high)
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	q, err := Load(path, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if q.ID() != high {
		t.Fatalf("loaded ID = %d, want %d", q.ID(), high)
	}
	fresh := NewPool(1<<16, LatencyConfig{CacheBytes: -1})
	if fresh.ID() <= high {
		t.Fatalf("pool created after Load minted ID %d <= loaded ID %d (ArenaID collision)", fresh.ID(), high)
	}
}

func TestNotePoolIDNeverRegresses(t *testing.T) {
	before := poolIDs.Load()
	notePoolID(1) // far below the live counter
	if got := poolIDs.Load(); got < before {
		t.Fatalf("notePoolID regressed counter: %d -> %d", before, got)
	}
	notePoolID(before + 50)
	if got := poolIDs.Load(); got < before+50 {
		t.Fatalf("notePoolID failed to advance counter: got %d, want >= %d", got, before+50)
	}
}

// TestSaveIsAtomic checks the temp-file+rename discipline: a Save over an
// existing image leaves either image intact (never a torn mix) and cleans up
// its temp file.
func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arena.img")
	p := newTestPool(t)
	ref := refCells(t, p)
	ptr, err := p.Alloc(ref, 64)
	if err != nil {
		t.Fatal(err)
	}
	p.WriteBytes(ptr.Offset, []byte("v1"))
	p.Persist(ptr.Offset, 2)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	p.WriteBytes(ptr.Offset, []byte("v2"))
	p.Persist(ptr.Offset, 2)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stray temp file after Save: %s", e.Name())
		}
	}
	q, err := Load(path, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.ReadBytes(ptr.Offset, 2); string(got) != "v2" {
		t.Fatalf("image content = %q, want v2", got)
	}
}

func TestSaveToUnwritableDirFails(t *testing.T) {
	p := newTestPool(t)
	if err := p.Save(filepath.Join(t.TempDir(), "no-such-dir", "arena.img")); err == nil {
		t.Fatal("Save into missing directory succeeded")
	}
}

func TestLoadRejectsTruncatedImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arena.img")
	p := newTestPool(t)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated to a line boundary below the bump pointer: header parses but
	// allocated blocks are missing — validateImage must reject it.
	cut := img[:headerSize+LineSize]
	trunc := filepath.Join(dir, "trunc.img")
	if err := os.WriteFile(trunc, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	// Force the bump pointer beyond the truncated size.
	bumped := append([]byte(nil), cut...)
	binary.LittleEndian.PutUint64(bumped[offBump:], uint64(len(img)))
	if err := os.WriteFile(trunc, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc, LatencyConfig{}); err == nil {
		t.Fatal("Load accepted image with bump pointer past EOF")
	}

	// Header that never finished formatting (state word torn back to 0).
	torn := append([]byte(nil), img...)
	binary.LittleEndian.PutUint64(torn[offState:], 0)
	tornPath := filepath.Join(dir, "torn.img")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(tornPath, LatencyConfig{}); err == nil {
		t.Fatal("Load accepted half-formatted header")
	}
}

func TestOpenFileCreatesAndReopens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.dat")
	p, recovered, err := OpenFile(path, 1<<20, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if recovered {
		t.Fatal("fresh arena reported recovered")
	}
	if !p.FileBacked() || p.Path() != path {
		t.Fatalf("FileBacked=%v Path=%q", p.FileBacked(), p.Path())
	}
	ref := refCells(t, p)
	ptr, err := p.Alloc(ref, 128)
	if err != nil {
		t.Fatal(err)
	}
	p.WriteBytes(ptr.Offset, []byte("file-backed payload"))
	p.Persist(ptr.Offset, 19)
	p.SetRoot(ptr)
	id := p.ID()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q, recovered, err := OpenFile(path, 0, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if !recovered {
		t.Fatal("existing arena not reported recovered")
	}
	if !q.WasCleanShutdown() {
		t.Fatal("clean Close not reflected by WasCleanShutdown")
	}
	if q.ID() != id {
		t.Fatalf("arena ID changed across reopen: %d -> %d", id, q.ID())
	}
	q.Recover()
	root := q.Root()
	if root.Offset != ptr.Offset {
		t.Fatalf("root = %v, want offset %#x", root, ptr.Offset)
	}
	if got := q.ReadBytes(root.Offset, 19); string(got) != "file-backed payload" {
		t.Fatalf("payload = %q", got)
	}
}

// TestOpenFileDirtyMarkerAfterNonClose verifies the clean-shutdown marker is
// re-armed on open: an exit without Close (modelled by dropping the pool and
// only syncing) must leave the image marked dirty.
func TestOpenFileDirtyMarkerAfterNonClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.dat")
	p, _, err := OpenFile(path, 1<<20, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (consumes + re-arms marker), then tear down WITHOUT Close.
	p, _, err = OpenFile(path, 0, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.WasCleanShutdown() {
		t.Fatal("expected clean marker on first reopen")
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.teardownBacking(); err != nil { // simulated crash: no Close
		t.Fatal(err)
	}

	q, _, err := OpenFile(path, 0, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.WasCleanShutdown() {
		t.Fatal("image still marked clean after a non-Close teardown")
	}
}

func TestOpenFilePersistSurvivesReopenWithoutSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.dat")
	p, _, err := OpenFile(path, 1<<20, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ref := refCells(t, p)
	ptr, err := p.Alloc(ref, 64)
	if err != nil {
		t.Fatal(err)
	}
	p.WriteU64(ptr.Offset, 0xfeed)
	p.Persist(ptr.Offset, 8)
	p.SetRoot(ptr)
	// Kill the process image without Sync or Close: on the mmap path the
	// persisted lines are already in the page cache / mapping.
	if err := p.teardownBacking(); err != nil {
		t.Fatal(err)
	}

	q, recovered, err := OpenFile(path, 0, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if !recovered {
		t.Fatal("existing arena not reported recovered")
	}
	if q.WasCleanShutdown() {
		t.Fatal("crash-style teardown reported clean shutdown")
	}
	q.Recover()
	if got := q.ReadU64(q.Root().Offset); got != 0xfeed {
		t.Fatalf("persisted word lost across teardown: %#x", got)
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.dat")
	if err := os.WriteFile(path, []byte("not an arena image at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if p, _, err := OpenFile(path, 0, LatencyConfig{}); err == nil {
		p.Close()
		t.Fatal("OpenFile accepted garbage file")
	}
}

func TestOpenFileStatsCountSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.dat")
	p, _, err := OpenFile(path, 1<<20, LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Stats().Syncs.Load()
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Syncs.Load(); got != before+1 {
		t.Fatalf("Syncs = %d, want %d", got, before+1)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncOnHeapPoolIsNoop(t *testing.T) {
	p := newTestPool(t)
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Syncs.Load() != 0 {
		t.Fatal("Sync on a non-file-backed pool should not count")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.FileBacked() || p.Path() != "" || p.WasCleanShutdown() {
		t.Fatal("heap pool claims file backing")
	}
}
