package scm

import (
	"sync"
	"sync/atomic"
	"time"
)

// LatencyMode selects how the emulator charges SCM media latency.
type LatencyMode int

const (
	// LatencyCount only counts misses and flushes; no time is spent. Use it
	// in unit tests where determinism matters more than timing.
	LatencyCount LatencyMode = iota
	// LatencySpin busy-waits for the configured duration on every SCM cache
	// miss and line flush, so wall-clock measurements reflect the emulated
	// medium. Use it in benchmarks.
	LatencySpin
	// LatencySleep accumulates the charged latency into a shared debt counter
	// and materializes it in batched time.Sleep calls of latencyBatch each.
	// Unlike LatencySpin — whose busy-waits serialize on a machine with fewer
	// cores than accessor goroutines — sleeping releases the CPU, so the
	// media waits of concurrent accessors overlap in wall-clock time exactly
	// as overlapping SCM accesses would on real hardware. Use it for
	// parallelism experiments (e.g. parallel recovery) on few-core hosts.
	// Single-threaded phases pay the same total latency as with LatencySpin,
	// in coarser steps; up to latencyBatch of residual debt per pool is never
	// slept, which is noise at measurement scale.
	LatencySleep
)

// latencyBatch is the debt threshold at which LatencySleep mode actually
// sleeps. It is chosen well above the OS timer slack (tens of microseconds)
// so oversleep stays a small relative error, yet small enough that waits
// interleave finely across workers.
const latencyBatch = 500 * time.Microsecond

// LatencyConfig describes the emulated SCM medium and the CPU cache in front
// of it. The zero value disables latency emulation entirely (counting only,
// zero latencies) which is the right default for correctness tests.
type LatencyConfig struct {
	Mode LatencyMode
	// ReadLatency is charged on every cache miss that reads SCM media.
	ReadLatency time.Duration
	// WriteLatency is charged on every cache-line write-back (flush).
	WriteLatency time.Duration
	// CacheBytes is the capacity of the simulated CPU cache in front of SCM.
	// 0 means the default of 4 MiB. Set to -1 to disable the cache entirely
	// (every access is a miss), which makes miss counts fully deterministic.
	CacheBytes int64
}

// DefaultCacheBytes is the simulated last-level cache capacity used when
// LatencyConfig.CacheBytes is zero.
const DefaultCacheBytes = 4 << 20

const cacheWays = 8

// cacheSim is a set-associative tag array emulating the CPU cache in front of
// SCM. It decides which accesses hit DRAM-speed cache and which pay the SCM
// media latency, mirroring how the paper's emulation platform exposes latency
// only on cache misses.
type cacheSim struct {
	sets     int
	disabled bool
	locks    [64]sync.Mutex // striped by set index
	tags     []uint64       // sets × cacheWays entries; 0 = empty
	clock    []uint8        // round-robin replacement cursor per set
}

func newCacheSim(capacity int64) *cacheSim {
	if capacity < 0 {
		return &cacheSim{disabled: true}
	}
	if capacity == 0 {
		capacity = DefaultCacheBytes
	}
	sets := int(capacity / (LineSize * cacheWays))
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two so the set index is a mask.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	return &cacheSim{
		sets:  sets,
		tags:  make([]uint64, sets*cacheWays),
		clock: make([]uint8, sets),
	}
}

// touch simulates an access to the line containing off and reports whether it
// missed the cache (and therefore must pay SCM read latency).
func (c *cacheSim) touch(off uint64) bool {
	if c.disabled {
		return true
	}
	line := off/LineSize + 1 // +1 so tag 0 means "empty way"
	set := int(line) & (c.sets - 1)
	lk := &c.locks[set&(len(c.locks)-1)]
	lk.Lock()
	base := set * cacheWays
	for w := 0; w < cacheWays; w++ {
		if c.tags[base+w] == line {
			lk.Unlock()
			return false
		}
	}
	victim := int(c.clock[set]) % cacheWays
	c.clock[set]++
	c.tags[base+victim] = line
	lk.Unlock()
	return true
}

// evict removes the line containing off from the cache, modelling CLFLUSH
// (which both writes back and invalidates the line).
func (c *cacheSim) evict(off uint64) {
	if c.disabled {
		return
	}
	line := off/LineSize + 1
	set := int(line) & (c.sets - 1)
	lk := &c.locks[set&(len(c.locks)-1)]
	lk.Lock()
	base := set * cacheWays
	for w := 0; w < cacheWays; w++ {
		if c.tags[base+w] == line {
			c.tags[base+w] = 0
		}
	}
	lk.Unlock()
}

// reset empties the cache, as after a machine restart.
func (c *cacheSim) reset() {
	if c.disabled {
		return
	}
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// spin busy-waits for roughly d. It deliberately avoids the Go scheduler
// (no time.Sleep) because emulated latencies are in the tens-to-hundreds of
// nanoseconds, far below timer resolution.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}

// Stats aggregates emulator activity counters. All fields are updated
// atomically and may be read while the pool is in use.
type Stats struct {
	Reads        atomic.Uint64 // SCM load operations (any size)
	Writes       atomic.Uint64 // SCM store operations (any size)
	ReadHits     atomic.Uint64 // line accesses served by the simulated cache
	ReadMisses   atomic.Uint64 // loads/stores that missed the simulated cache
	Flushes      atomic.Uint64 // cache-line write-backs (CLFLUSH equivalents)
	Fences       atomic.Uint64 // memory fences
	Allocs       atomic.Uint64 // persistent allocations
	Frees        atomic.Uint64 // persistent deallocations
	BytesFlushed atomic.Uint64 // payload bytes made durable
	Syncs        atomic.Uint64 // arena-file syncs (msync/fdatasync equivalents)
	SyncNanos    atomic.Uint64 // wall-clock nanoseconds spent in arena-file syncs
}

// FlushFence returns the current cumulative flush and fence counts in two
// atomic loads. It is the span hook the tracing layer snapshots at phase
// boundaries to attribute persist/fence costs to an operation: the delta
// between two FlushFence calls is exact when one goroutine runs and an
// upper bound (all goroutines' activity) under concurrency.
func (s *Stats) FlushFence() (flushes, fences uint64) {
	return s.Flushes.Load(), s.Fences.Load()
}

// Snapshot returns a plain-struct copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Reads:        s.Reads.Load(),
		Writes:       s.Writes.Load(),
		ReadHits:     s.ReadHits.Load(),
		ReadMisses:   s.ReadMisses.Load(),
		Flushes:      s.Flushes.Load(),
		Fences:       s.Fences.Load(),
		Allocs:       s.Allocs.Load(),
		Frees:        s.Frees.Load(),
		BytesFlushed: s.BytesFlushed.Load(),
		Syncs:        s.Syncs.Load(),
		SyncNanos:    s.SyncNanos.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Reads        uint64
	Writes       uint64
	ReadHits     uint64
	ReadMisses   uint64
	Flushes      uint64
	Fences       uint64
	Allocs       uint64
	Frees        uint64
	BytesFlushed uint64
	Syncs        uint64
	SyncNanos    uint64
}

// Add returns the sum s + o, counter by counter — the aggregation the
// sharded server uses to report one stats block across shard pools.
func (s StatsSnapshot) Add(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Reads:        s.Reads + o.Reads,
		Writes:       s.Writes + o.Writes,
		ReadHits:     s.ReadHits + o.ReadHits,
		ReadMisses:   s.ReadMisses + o.ReadMisses,
		Flushes:      s.Flushes + o.Flushes,
		Fences:       s.Fences + o.Fences,
		Allocs:       s.Allocs + o.Allocs,
		Frees:        s.Frees + o.Frees,
		BytesFlushed: s.BytesFlushed + o.BytesFlushed,
		Syncs:        s.Syncs + o.Syncs,
		SyncNanos:    s.SyncNanos + o.SyncNanos,
	}
}

// Sub returns the delta s - o, counter by counter.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Reads:        s.Reads - o.Reads,
		Writes:       s.Writes - o.Writes,
		ReadHits:     s.ReadHits - o.ReadHits,
		ReadMisses:   s.ReadMisses - o.ReadMisses,
		Flushes:      s.Flushes - o.Flushes,
		Fences:       s.Fences - o.Fences,
		Allocs:       s.Allocs - o.Allocs,
		Frees:        s.Frees - o.Frees,
		BytesFlushed: s.BytesFlushed - o.BytesFlushed,
		Syncs:        s.Syncs - o.Syncs,
		SyncNanos:    s.SyncNanos - o.SyncNanos,
	}
}
