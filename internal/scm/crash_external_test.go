package scm_test

// The allocator crash-enumeration tests live in an external test package so
// they can drive the shared crashtest harness (which imports scm) without an
// import cycle. They are the promoted form of the original crashEveryFlush
// helper tests.

import (
	"testing"

	"fptree/internal/crashtest"
	"fptree/internal/scm"
)

func newCrashPool(t *testing.T) *scm.Pool {
	t.Helper()
	return scm.NewPool(1<<20, scm.LatencyConfig{CacheBytes: -1})
}

// refCells allocates the root block to hold persistent-pointer cells, so
// cells never overlap blocks handed out later.
func refCells(t *testing.T, p *scm.Pool) uint64 {
	t.Helper()
	ptr, err := p.AllocRoot(1024)
	if err != nil {
		t.Fatal(err)
	}
	return ptr.Offset
}

// allocVerify returns the invariant check both allocator enumerations share:
// after recovery, allocating twice must yield two distinct blocks.
func allocVerify(t *testing.T, p *scm.Pool, base uint64, size uint64) func(pt crashtest.Point) error {
	return func(pt crashtest.Point) error {
		p.Recover()
		r1, r2 := base+32, base+48
		a, err := p.Alloc(r1, size)
		if err != nil {
			t.Fatalf("%v: %v", pt, err)
		}
		b, err := p.Alloc(r2, size)
		if err != nil {
			t.Fatalf("%v: %v", pt, err)
		}
		if a.Offset == b.Offset {
			t.Fatalf("%v: double allocation of %#x", pt, a.Offset)
		}
		p.Free(r1, size)
		p.Free(r2, size)
		return nil
	}
}

func TestAllocCrashAtEveryFlushNeverLeaks(t *testing.T) {
	// After every possible crash point inside Alloc — before each flush and
	// at each fence — recovery must leave the arena in a state where the
	// block is either owned by the ref cell or back on the free list.
	for _, opts := range []crashtest.Options{{Persists: true}, {Fences: true}} {
		p := newCrashPool(t)
		base := refCells(t, p)
		refOff := base
		// Pre-populate one free-listed block so both carve paths are exercised.
		warm := base + 16
		if _, err := p.Alloc(warm, 192); err != nil {
			t.Fatal(err)
		}
		p.Free(warm, 192)

		verify := allocVerify(t, p, base, 192)
		crashtest.Enumerate(t, p, opts,
			func() error {
				_, err := p.Alloc(refOff, 192)
				return err
			},
			func(pt crashtest.Point) error {
				if err := verify(pt); err != nil {
					return err
				}
				if ref := p.ReadPPtr(refOff); !ref.IsNull() {
					// Completed before the crash point mattered: free it so
					// the next iteration starts from the same state.
					p.Free(refOff, 192)
				}
				return nil
			})
	}
}

func TestFreeCrashAtEveryFlushIsExactlyOnce(t *testing.T) {
	p := newCrashPool(t)
	base := refCells(t, p)
	refOff := base
	if _, err := p.Alloc(refOff, 256); err != nil {
		t.Fatal(err)
	}
	verify := allocVerify(t, p, base, 256)
	crashtest.EveryPersist(t, p,
		func() error {
			if p.ReadPPtr(refOff).IsNull() {
				// Free completed in an earlier iteration: re-allocate so the
				// operation under test runs again.
				if _, err := p.Alloc(refOff, 256); err != nil {
					return err
				}
			}
			p.Free(refOff, 256)
			return nil
		},
		func(pt crashtest.Point) error {
			// After recovery the ref is either intact (free rolled forward on
			// next run) or null. Either way a fresh alloc/free pair must work
			// and never hand out the same block twice.
			if err := verify(pt); err != nil {
				return err
			}
			for _, r := range []uint64{base + 32, base + 48} {
				a, err := p.Alloc(r, 256)
				if err != nil {
					t.Fatalf("%v: %v", pt, err)
				}
				if a.Offset == p.ReadPPtr(refOff).Offset {
					t.Fatalf("%v: allocator handed out a block still owned by ref", pt)
				}
				p.Free(r, 256)
			}
			return nil
		})
}

func TestFailAfterFencesFiresAfterFlush(t *testing.T) {
	// A fence-granularity crash interrupts Persist AFTER its write-backs:
	// the covered line must be durable, unlike the flush-granularity crash.
	p := newCrashPool(t)
	base := refCells(t, p)
	p.WriteU64(base, 41)
	p.Persist(base, 8)

	p.FailAfterFences(1)
	crashed, _ := crashtest.Crashes(func() error {
		p.WriteU64(base, 42)
		p.Persist(base, 8)
		return nil
	})
	if !crashed {
		t.Fatal("fence fail-point never fired")
	}
	p.Crash()
	if got := p.ReadU64(base); got != 42 {
		t.Fatalf("after fence crash value = %d, want 42 (flushed before the fence)", got)
	}

	p.FailAfterFlushes(1)
	crashed, _ = crashtest.Crashes(func() error {
		p.WriteU64(base, 43)
		p.Persist(base, 8)
		return nil
	})
	if !crashed {
		t.Fatal("flush fail-point never fired")
	}
	p.Crash()
	if got := p.ReadU64(base); got != 42 {
		t.Fatalf("after flush crash value = %d, want 42 (crash fires before the flush)", got)
	}
}

func TestExplicitFenceCrash(t *testing.T) {
	p := newCrashPool(t)
	p.FailAfterFences(1)
	crashed, _ := crashtest.Crashes(func() error {
		p.Fence()
		return nil
	})
	if !crashed {
		t.Fatal("explicit Fence did not consume the fence fail-point")
	}
	p.Crash()
}

func TestCrashTornSeedDeterministic(t *testing.T) {
	// The same seed over the same dirty state must commit the same torn
	// image — the property that lets a failing enumeration replay exactly.
	images := make([][]byte, 2)
	for trial := range images {
		p := newCrashPool(t)
		base := refCells(t, p)
		for i := uint64(0); i < 64; i++ {
			p.WriteU64(base+8*i, i*0x0101010101010101)
		}
		p.CrashTornSeed(1234)
		images[trial] = p.ReadBytes(base, 512)
	}
	if string(images[0]) != string(images[1]) {
		t.Fatal("CrashTornSeed produced different images for identical state and seed")
	}
}
