package scm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Pool is one emulated SCM arena: a contiguous byte-addressable region with
// cache/durable split, dirty-line tracking, persistence primitives and a
// crash-safe allocator (alloc.go).
//
// Concurrency contract: like real memory, the pool does not serialize data
// accesses — callers must ensure that two goroutines never touch the same
// 8-byte word concurrently unless both only read (the trees guarantee this
// with leaf locks). Dirty-line bookkeeping, the cache simulator, the
// allocator, and all counters are internally synchronized. Crash, Recover and
// Save require quiescence (no in-flight operations).
type Pool struct {
	id      uint64
	cfg     LatencyConfig
	mem     []byte          // cache view: what loads observe
	durable []byte          // durable view: what survives a crash
	dirty   []atomic.Uint64 // bitmap over lines: 1 = cache view ahead of durable
	cache   *cacheSim
	stats   Stats

	// back is non-nil for file-backed pools (OpenFile): the durable view is
	// then the arena file itself (an mmap on supporting platforms), so it
	// survives a real process death, not just an emulated Crash. wasClean
	// records whether the image carried the clean-shutdown marker when it was
	// reopened.
	back     *fileBacking
	wasClean bool

	alloc allocState // persistent allocator bookkeeping (volatile part)

	// latDebt is the accumulated un-slept media latency in LatencySleep mode,
	// in nanoseconds; see LatencySleep for the batching contract.
	latDebt atomic.Int64

	// failFlushes < 0 disables injection; otherwise it is decremented on each
	// Persist and the crash fires when it reaches zero. failFences is the
	// same fail-point at fence granularity: it counts explicit Fence calls
	// and the fence every Persist issues after its write-backs.
	failFlushes atomic.Int64
	failFences  atomic.Int64
	crashed     atomic.Bool
}

// ErrInjectedCrash is the panic value raised by an injected crash fail-point.
// Test harnesses recover it, call Crash, and run recovery.
var ErrInjectedCrash = errors.New("scm: injected crash")

// ErrOutOfMemory is returned when an allocation does not fit in the arena.
var ErrOutOfMemory = errors.New("scm: arena out of memory")

var poolIDs atomic.Uint64

// roundCapacity applies the arena sizing rules shared by NewPool and
// OpenFile: at least two header pages, rounded up to whole cache lines.
func roundCapacity(capacity int64) int64 {
	if capacity < headerSize*2 {
		capacity = headerSize * 2
	}
	return (capacity + LineSize - 1) / LineSize * LineSize
}

// newPoolRaw assembles a pool around an existing durable view (a fresh
// zeroed slice, a loaded image, or an arena-file mapping). The cache view
// starts equal to the durable view, as after a cold restart; the caller is
// responsible for the arena ID and header.
func newPoolRaw(durable []byte, cfg LatencyConfig) *Pool {
	lines := int64(len(durable)) / LineSize
	p := &Pool{
		cfg:     cfg,
		mem:     append([]byte(nil), durable...),
		durable: durable,
		dirty:   make([]atomic.Uint64, (lines+63)/64),
		cache:   newCacheSim(cfg.CacheBytes),
	}
	p.failFlushes.Store(-1)
	p.failFences.Store(-1)
	return p
}

// NewPool creates a fresh arena of the given capacity (rounded up to a whole
// number of cache lines) and formats its header and allocator state.
func NewPool(capacity int64, cfg LatencyConfig) *Pool {
	p := newPoolRaw(make([]byte, roundCapacity(capacity)), cfg)
	p.id = poolIDs.Add(1)
	p.formatHeader()
	return p
}

// ID returns the arena identifier used in persistent pointers minted by this
// pool.
func (p *Pool) ID() uint64 { return p.id }

// Size returns the arena capacity in bytes.
func (p *Pool) Size() int64 { return int64(len(p.mem)) }

// Stats exposes the pool's activity counters.
func (p *Pool) Stats() *Stats { return &p.stats }

// Config returns the latency configuration the pool was created with.
func (p *Pool) Config() LatencyConfig { return p.cfg }

// SetLatency swaps the emulated media latencies at runtime (used by the
// benchmark harness to sweep SCM latency on one loaded tree). The cache
// configuration cannot change.
func (p *Pool) SetLatency(mode LatencyMode, read, write time.Duration) {
	p.cfg.Mode = mode
	p.cfg.ReadLatency = read
	p.cfg.WriteLatency = write
}

// --- loads and stores ---------------------------------------------------

func (p *Pool) onAccess(off, size uint64, write bool) {
	if p.crashed.Load() {
		// The machine is "powered off": after an injected crash nothing may
		// execute until Crash()+recovery run. Propagating the panic stops
		// every worker, as a real power failure would.
		panic(ErrInjectedCrash)
	}
	if write {
		p.stats.Writes.Add(1)
	} else {
		p.stats.Reads.Add(1)
	}
	first := off / LineSize
	last := (off + size - 1) / LineSize
	for l := first; l <= last; l++ {
		if p.cache.touch(l * LineSize) {
			p.stats.ReadMisses.Add(1)
			if p.cfg.Mode != LatencyCount {
				p.charge(p.cfg.ReadLatency)
			}
		} else {
			p.stats.ReadHits.Add(1)
		}
		if write {
			p.dirty[l/64].Or(1 << (l % 64))
		}
	}
}

// ReadU64 loads a little-endian 8-byte word. Aligned 8-byte loads are the
// p-atomic unit of the emulated medium.
func (p *Pool) ReadU64(off uint64) uint64 {
	p.onAccess(off, 8, false)
	return binary.LittleEndian.Uint64(p.mem[off:])
}

// WriteU64 stores a little-endian 8-byte word (p-atomic when aligned).
func (p *Pool) WriteU64(off, v uint64) {
	p.onAccess(off, 8, true)
	binary.LittleEndian.PutUint64(p.mem[off:], v)
}

// ReadU32 loads a little-endian 4-byte word.
func (p *Pool) ReadU32(off uint64) uint32 {
	p.onAccess(off, 4, false)
	return binary.LittleEndian.Uint32(p.mem[off:])
}

// WriteU32 stores a little-endian 4-byte word.
func (p *Pool) WriteU32(off uint64, v uint32) {
	p.onAccess(off, 4, true)
	binary.LittleEndian.PutUint32(p.mem[off:], v)
}

// ReadU16 loads a little-endian 2-byte word.
func (p *Pool) ReadU16(off uint64) uint16 {
	p.onAccess(off, 2, false)
	return binary.LittleEndian.Uint16(p.mem[off:])
}

// WriteU16 stores a little-endian 2-byte word.
func (p *Pool) WriteU16(off uint64, v uint16) {
	p.onAccess(off, 2, true)
	binary.LittleEndian.PutUint16(p.mem[off:], v)
}

// ReadU8 loads one byte.
func (p *Pool) ReadU8(off uint64) uint8 {
	p.onAccess(off, 1, false)
	return p.mem[off]
}

// WriteU8 stores one byte.
func (p *Pool) WriteU8(off uint64, v uint8) {
	p.onAccess(off, 1, true)
	p.mem[off] = v
}

// ReadBytes copies size bytes starting at off into a fresh slice.
func (p *Pool) ReadBytes(off, size uint64) []byte {
	if size == 0 {
		return nil
	}
	p.onAccess(off, size, false)
	out := make([]byte, size)
	copy(out, p.mem[off:off+size])
	return out
}

// ReadInto copies len(dst) bytes starting at off into dst without allocating.
func (p *Pool) ReadInto(off uint64, dst []byte) {
	if len(dst) == 0 {
		return
	}
	p.onAccess(off, uint64(len(dst)), false)
	copy(dst, p.mem[off:off+uint64(len(dst))])
}

// WriteBytes stores b at off.
func (p *Pool) WriteBytes(off uint64, b []byte) {
	if len(b) == 0 {
		return
	}
	p.onAccess(off, uint64(len(b)), true)
	copy(p.mem[off:], b)
}

// EqualBytes reports whether the size bytes at off equal b, without copying.
func (p *Pool) EqualBytes(off uint64, b []byte) bool {
	p.onAccess(off, uint64(len(b)), false)
	return string(p.mem[off:off+uint64(len(b))]) == string(b)
}

// CompareBytes three-way-compares the size bytes at off with b, like
// bytes.Compare.
func (p *Pool) CompareBytes(off, size uint64, b []byte) int {
	p.onAccess(off, size, false)
	a := p.mem[off : off+size]
	if string(a) < string(b) {
		return -1
	}
	if string(a) > string(b) {
		return 1
	}
	return 0
}

// ReadPPtr loads a persistent pointer.
func (p *Pool) ReadPPtr(off uint64) PPtr {
	return PPtr{ArenaID: p.ReadU64(off), Offset: p.ReadU64(off + 8)}
}

// WritePPtr stores a persistent pointer. The two words straddle at most one
// cache line because allocator-minted PPtr fields are 16-byte aligned; the
// store itself is not p-atomic, callers that need atomic visibility must use
// an 8-byte commit word, as the tree bitmaps do.
func (p *Pool) WritePPtr(off uint64, v PPtr) {
	p.WriteU64(off, v.ArenaID)
	p.WriteU64(off+8, v.Offset)
}

// --- persistence primitives ----------------------------------------------

// Persist makes the byte range [off, off+size) durable: it write-backs every
// covered cache line and issues a fence, the moral equivalent of
// CLFLUSH+MFENCE (or CLWB+SFENCE) in the paper. It is the only way data
// reaches the durable view.
func (p *Pool) Persist(off, size uint64) {
	if size == 0 {
		return
	}
	p.maybeInjectCrash()
	first := off / LineSize
	last := (off + size - 1) / LineSize
	for l := first; l <= last; l++ {
		p.flushLine(l)
	}
	p.maybeInjectFenceCrash()
	p.stats.Fences.Add(1)
	p.stats.BytesFlushed.Add(size)
}

// Fence orders prior flushes without flushing anything itself.
func (p *Pool) Fence() {
	p.maybeInjectFenceCrash()
	p.stats.Fences.Add(1)
}

func (p *Pool) flushLine(l uint64) {
	word := &p.dirty[l/64]
	mask := uint64(1) << (l % 64)
	if word.Load()&mask == 0 {
		return // clean line: CLFLUSH of a clean line is ~free
	}
	off := l * LineSize
	copy(p.durable[off:off+LineSize], p.mem[off:off+LineSize])
	word.And(^mask)
	p.cache.evict(off)
	p.stats.Flushes.Add(1)
	if p.cfg.Mode != LatencyCount {
		p.charge(p.cfg.WriteLatency)
	}
}

// charge makes the caller pay d of emulated media latency according to the
// configured mode: a precise busy-wait (LatencySpin) or a contribution to
// the pool's shared sleep debt (LatencySleep), materialized in batches of
// latencyBatch so concurrent accessors' waits overlap in wall-clock time.
func (p *Pool) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.cfg.Mode == LatencySpin {
		spin(d)
		return
	}
	if n := p.latDebt.Add(int64(d)); n >= int64(latencyBatch) {
		if owed := p.latDebt.Swap(0); owed > 0 {
			time.Sleep(time.Duration(owed))
		}
	}
}

// --- crash machinery -------------------------------------------------------

// FailAfterFlushes arms the crash fail-point: the n-th subsequent Persist
// call panics with ErrInjectedCrash *before* flushing (n=1 means the very
// next Persist). Pass a negative n to disarm.
func (p *Pool) FailAfterFlushes(n int64) {
	p.failFlushes.Store(n)
}

// FailAfterFences arms the complementary fail-point at fence granularity: the
// n-th subsequent fence — an explicit Fence call or the fence each Persist
// issues after its write-backs — panics with ErrInjectedCrash. Unlike
// FailAfterFlushes, the lines covered by the interrupted Persist HAVE reached
// the durable view when the crash fires, so enumerating both fail-points
// exposes the states immediately before and immediately after every
// persistence primitive. Pass a negative n to disarm.
func (p *Pool) FailAfterFences(n int64) {
	p.failFences.Store(n)
}

func (p *Pool) maybeInjectCrash() {
	p.inject(&p.failFlushes)
}

func (p *Pool) maybeInjectFenceCrash() {
	p.inject(&p.failFences)
}

func (p *Pool) inject(counter *atomic.Int64) {
	if counter.Load() < 0 {
		return
	}
	if counter.Add(-1) <= 0 {
		counter.Store(-1)
		p.crashed.Store(true)
		panic(ErrInjectedCrash)
	}
}

// PanicIfCrashed propagates an injected crash to callers that spin without
// touching the pool (optimistic retry loops): once the "machine" has failed,
// no code may make progress. It is a no-op in normal operation.
func (p *Pool) PanicIfCrashed() {
	if p.crashed.Load() {
		panic(ErrInjectedCrash)
	}
}

// Crash simulates a power failure: every line that was not flushed reverts to
// its durable content and the simulated CPU cache empties. The caller must
// then run recovery (allocator RecoverAlloc plus data-structure recovery)
// before using the pool again.
func (p *Pool) Crash() {
	for w := range p.dirty {
		bits := p.dirty[w].Load()
		if bits == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if bits&(1<<b) == 0 {
				continue
			}
			off := (uint64(w)*64 + uint64(b)) * LineSize
			copy(p.mem[off:off+LineSize], p.durable[off:off+LineSize])
		}
		p.dirty[w].Store(0)
	}
	p.cache.reset()
	p.crashed.Store(false)
}

// CrashTornSeed is CrashTorn with a self-contained RNG: the same seed applied
// to the same dirty state always yields the same torn image, so a failing
// enumeration reproduces exactly from its logged seed.
func (p *Pool) CrashTornSeed(seed int64) {
	p.CrashTorn(rand.New(rand.NewSource(seed)))
}

// CrashTorn behaves like Crash but, before reverting, commits a random prefix
// of 8-byte words of each dirty line with probability ½ per line. This models
// the hardware guarantee floor the paper assumes: stores become durable in
// word units, in unspecified order, unless explicitly flushed. Recovery code
// must tolerate any such state. Dirty lines are visited in address order, so
// the outcome is a pure function of (rng stream, dirty state) — see
// CrashTornSeed for the reproducible-seed variant.
func (p *Pool) CrashTorn(rng *rand.Rand) {
	for w := range p.dirty {
		bits := p.dirty[w].Load()
		if bits == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if bits&(1<<b) == 0 {
				continue
			}
			off := (uint64(w)*64 + uint64(b)) * LineSize
			if rng.Intn(2) == 0 {
				// Persist a random prefix of words, tear the rest.
				words := rng.Intn(LineSize / 8)
				copy(p.durable[off:off+uint64(words*8)], p.mem[off:off+uint64(words*8)])
			}
			copy(p.mem[off:off+LineSize], p.durable[off:off+LineSize])
		}
		p.dirty[w].Store(0)
	}
	p.cache.reset()
	p.crashed.Store(false)
}

// Clone returns an independent deep copy of the arena: cache and durable
// views, the dirty-line bitmap, and allocator bookkeeping. The simulated CPU
// cache starts cold (as after a restart) and crash-injection fail points are
// disarmed. Like Crash and Save it requires quiescence. Crash tests use it
// to recover the same crash image several ways — e.g. sequentially on the
// original and in parallel on the clone — and compare the results.
func (p *Pool) Clone() *Pool {
	q := &Pool{
		id:      p.id,
		cfg:     p.cfg,
		mem:     append([]byte(nil), p.mem...),
		durable: append([]byte(nil), p.durable...),
		dirty:   make([]atomic.Uint64, len(p.dirty)),
		cache:   newCacheSim(p.cfg.CacheBytes),
	}
	for i := range p.dirty {
		q.dirty[i].Store(p.dirty[i].Load())
	}
	q.alloc.largeFrees = p.alloc.largeFrees
	q.crashed.Store(p.crashed.Load())
	q.failFlushes.Store(-1)
	q.failFences.Store(-1)
	return q
}

// --- image save/load -------------------------------------------------------

// Save writes the durable view to path, modelling the arena file that an
// SCM-aware filesystem would expose. Only flushed data is written: anything
// still in the cache view is lost, exactly as on a machine restart.
//
// The write is crash-safe: the image goes to a temp file in the target's
// directory, is fsynced, and is renamed over path, so a crash mid-save never
// corrupts an existing image — readers observe either the old bytes or the
// new ones, never a torn mix.
func (p *Pool) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(p.durable); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// The rename is only durable once the directory entry is; fsync the
	// directory so a power cut after Save returns cannot undo it.
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power failure.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// validateImage sanity-checks the durable view as an arena image: magic,
// formatted flag, and a bump pointer inside the arena. A truncated or torn
// image file fails here instead of surfacing as corruption later.
func (p *Pool) validateImage(path string) error {
	if got := binary.LittleEndian.Uint64(p.durable[offMagic:]); got != headerMagic {
		return fmt.Errorf("scm: %s: bad magic %#x", path, got)
	}
	if binary.LittleEndian.Uint64(p.durable[offState:]) != 1 {
		return fmt.Errorf("scm: %s: arena header never finished formatting", path)
	}
	bump := binary.LittleEndian.Uint64(p.durable[offBump:])
	if bump < headerSize || bump > uint64(len(p.durable)) {
		return fmt.Errorf("scm: %s: bump pointer %#x outside arena of %d bytes (truncated image?)", path, bump, len(p.durable))
	}
	return nil
}

// Load opens an arena file produced by Save. The cache view starts equal to
// the durable view (a cold restart) and the caller must run recovery. The
// restored arena ID also advances the global pool-ID counter, so pools
// created afterwards can never mint a colliding PPtr.ArenaID.
func Load(path string, cfg LatencyConfig) (*Pool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize || len(data)%LineSize != 0 {
		return nil, fmt.Errorf("scm: %s: not an arena image (size %d)", path, len(data))
	}
	p := newPoolRaw(data, cfg)
	if err := p.validateImage(path); err != nil {
		return nil, err
	}
	p.loadAllocState()
	return p, nil
}
