package scm

// File-backed arenas: the durable view of a Pool lives in a real file, so the
// tree's persistent state survives an actual process death (kill -9), not
// just the emulated Crash(). The paper's persistence primitives map onto the
// file as follows:
//
//   - flushLine (the CLFLUSH/CLWB equivalent every Persist performs) copies
//     the dirty cache line into the arena file's shared mapping. From that
//     moment the line lives in the kernel page cache, which survives process
//     death — the page cache plays the role of the SCM media, exactly like
//     the battery-backed buffers the paper's emulation platform assumes.
//   - Fence keeps its ordering-only role: the line copies are synchronous, so
//     by the time a Persist returns, its lines are already "in the media".
//   - Sync (msync/fdatasync) extends durability from process death to
//     machine power failure. Close syncs; callers wanting power-fail
//     durability at a finer grain call Sync themselves (memkv's -sync flag).
//
// The 8-byte-atomicity contract is unchanged: recovery code only ever relies
// on aligned 8-byte words appearing atomically, and both the mapping copy
// and the page cache preserve that (pages are only ever written whole).
//
// The file format is identical to Save's image: the raw durable view with
// the arena header at offset 0. On platforms without mmap support the
// durable view stays a heap slice and Sync rewrites the file, so kill -9
// durability degrades to Sync/Close granularity there (see mmap_stub.go).

import (
	"fmt"
	"io"
	"os"
	"time"
)

// OffClean is the byte offset of the 8-byte clean-shutdown marker word in
// the arena header. Exported so callers diffing durable images can mask the
// one word that legitimately differs between a crashed and a closed arena.
const OffClean = offClean

// fileBacking is the file behind a file-backed pool.
type fileBacking struct {
	f      *os.File
	path   string
	mapped bool // durable view is a shared mapping of the file
}

// OpenFile opens (or creates) a file-backed arena with create-or-recover
// semantics:
//
//   - A missing or empty file is formatted as a fresh arena of the given
//     capacity; recovered is false.
//   - An existing image is validated and reopened cold (capacity is ignored:
//     the file's size wins); recovered is true and the caller must run the
//     recovery pipeline (Pool.Recover plus data-structure recovery) before
//     serving — recovery never depends on the clean-shutdown marker.
//
// On reopen the clean-shutdown marker is consumed (readable via
// WasCleanShutdown) and immediately re-armed to "dirty", so a later
// inspection of the file tells whether the previous process closed cleanly.
func OpenFile(path string, capacity int64, cfg LatencyConfig) (p *Pool, recovered bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, false, err
	}
	size := st.Size()
	fresh := size == 0
	if fresh {
		size = roundCapacity(capacity)
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, false, err
		}
	} else if size < headerSize || size%LineSize != 0 {
		f.Close()
		return nil, false, fmt.Errorf("scm: %s: not an arena image (size %d)", path, size)
	}

	var durable []byte
	mapped := false
	if mmapSupported {
		durable, err = mmapFile(f, size)
		if err != nil {
			f.Close()
			return nil, false, fmt.Errorf("scm: mmap %s: %w", path, err)
		}
		mapped = true
	} else {
		durable = make([]byte, size)
		if !fresh {
			if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), durable); err != nil {
				f.Close()
				return nil, false, fmt.Errorf("scm: read %s: %w", path, err)
			}
		}
	}

	p = newPoolRaw(durable, cfg)
	p.back = &fileBacking{f: f, path: path, mapped: mapped}
	if fresh {
		p.id = poolIDs.Add(1)
		p.formatHeader()
		if err := p.Sync(); err != nil {
			p.teardownBacking()
			return nil, false, err
		}
		return p, false, nil
	}
	if err := p.validateImage(path); err != nil {
		p.teardownBacking()
		return nil, false, err
	}
	p.loadAllocState()
	p.wasClean = p.ReadU64(offClean) != 0
	// Re-arm the marker: from here on, only a completed Close writes it back,
	// so any other exit (crash, kill -9) leaves the image marked dirty.
	p.WriteU64(offClean, 0)
	p.Persist(offClean, 8)
	if err := p.Sync(); err != nil {
		p.teardownBacking()
		return nil, false, err
	}
	return p, true, nil
}

// FileBacked reports whether the pool's durable view is an arena file.
func (p *Pool) FileBacked() bool { return p.back != nil }

// Path returns the arena file path of a file-backed pool ("" otherwise).
func (p *Pool) Path() string {
	if p.back == nil {
		return ""
	}
	return p.back.path
}

// WasCleanShutdown reports whether the arena image carried the
// clean-shutdown marker when it was reopened by OpenFile. It is purely
// informational — recovery always runs in full — but lets operators
// distinguish a crash restart from a normal one. False for fresh arenas and
// non-file-backed pools.
func (p *Pool) WasCleanShutdown() bool { return p.wasClean }

// Sync makes the durable view power-fail durable: msync on mapped arenas, a
// rewrite+fdatasync on the fallback path. A no-op for non-file-backed pools.
// Note that process-death durability does not need Sync — flushed lines live
// in the kernel page cache — so the hot path never calls it.
func (p *Pool) Sync() error {
	if p.back == nil {
		return nil
	}
	start := time.Now()
	var err error
	if p.back.mapped {
		err = msyncFile(p.durable)
	} else {
		if _, werr := p.back.f.WriteAt(p.durable, 0); werr != nil {
			err = werr
		} else {
			err = p.back.f.Sync()
		}
	}
	p.stats.Syncs.Add(1)
	p.stats.SyncNanos.Add(uint64(time.Since(start).Nanoseconds()))
	return err
}

// Close durably sets the clean-shutdown marker, syncs the arena file and
// releases the mapping and file handle. The pool must be quiescent; after
// Close it is unusable. A no-op for non-file-backed pools, so generic
// teardown paths can call it unconditionally.
func (p *Pool) Close() error {
	if p.back == nil {
		return nil
	}
	p.WriteU64(offClean, 1)
	p.Persist(offClean, 8)
	err := p.Sync()
	if terr := p.teardownBacking(); err == nil {
		err = terr
	}
	return err
}

// teardownBacking unmaps and closes the arena file without syncing.
func (p *Pool) teardownBacking() error {
	var err error
	if p.back.mapped {
		err = munmapFile(p.durable)
	}
	if cerr := p.back.f.Close(); err == nil {
		err = cerr
	}
	p.back = nil
	p.durable = nil
	return err
}
