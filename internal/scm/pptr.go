// Package scm emulates Storage Class Memory (SCM) with the semantics the
// FPTree paper depends on: byte-addressable persistent memory reached through
// a volatile CPU cache, explicit cache-line flush and fence primitives,
// 8-byte power-fail-atomic (p-atomic) stores, configurable media latency, and
// a crash-safe persistent allocator with the leak-prevention interface of
// Section 2 of the paper (Allocate writes the block address into a persistent
// pointer owned by the caller before returning).
//
// The emulator keeps two views of the arena: the cache view (what the CPU
// sees) and the durable view (what survives a crash). Stores land in the
// cache view and mark their 64-byte lines dirty; Persist copies the covered
// lines to the durable view. Crash discards every dirty line, so recovery
// code is exercised against exactly the states a real power failure could
// leave behind.
package scm

import "fmt"

// LineSize is the cache-line size in bytes. All flush, dirty-tracking and
// latency accounting happens at this granularity.
const LineSize = 64

// PPtr is a persistent pointer: an (arena ID, offset) pair that stays valid
// across restarts, unlike virtual addresses. Offset 0 addresses the arena
// header, which is never handed out by the allocator, so the zero PPtr acts
// as the persistent null.
type PPtr struct {
	ArenaID uint64
	Offset  uint64
}

// PPtrSize is the serialized size of a PPtr in SCM.
const PPtrSize = 16

// IsNull reports whether p is the persistent null pointer.
func (p PPtr) IsNull() bool { return p.Offset == 0 }

// String renders the pointer for diagnostics.
func (p PPtr) String() string {
	if p.IsNull() {
		return "pnull"
	}
	return fmt.Sprintf("p%d:%#x", p.ArenaID, p.Offset)
}
