package scm

import (
	"encoding/binary"
	"fmt"

	"fptree/internal/obs"
)

// statsEntries enumerates the counters of s in registration order; the single
// table keeps single-pool, multi-pool and labeled registration in sync (the
// drift test pins Stats fields against registered names).
func statsEntries(s *Stats) []struct {
	suffix string
	help   string
	src    interface{ Load() uint64 }
} {
	return []struct {
		suffix string
		help   string
		src    interface{ Load() uint64 }
	}{
		{"reads_total", "SCM load operations of any size", &s.Reads},
		{"writes_total", "SCM store operations of any size", &s.Writes},
		{"read_hits_total", "line accesses served by the simulated CPU cache", &s.ReadHits},
		{"read_misses_total", "line accesses that missed the simulated cache and paid SCM read latency", &s.ReadMisses},
		{"flushes_total", "cache-line write-backs (CLFLUSH equivalents)", &s.Flushes},
		{"fences_total", "memory fences (SFENCE/MFENCE equivalents)", &s.Fences},
		{"allocs_total", "persistent allocations", &s.Allocs},
		{"frees_total", "persistent deallocations", &s.Frees},
		{"bytes_flushed_total", "payload bytes made durable", &s.BytesFlushed},
		{"syncs_total", "arena-file syncs (msync/fdatasync equivalents)", &s.Syncs},
		{"sync_nanos_total", "wall-clock nanoseconds spent in arena-file syncs", &s.SyncNanos},
	}
}

// RegisterMetrics exposes the counters in s on reg under the given name
// prefix (e.g. "scm"). The registered metrics read the live atomics, so a
// snapshot of reg observes exactly what s.Snapshot would.
func (s *Stats) RegisterMetrics(reg *obs.Registry, prefix string) {
	for _, e := range statsEntries(s) {
		reg.CounterFunc(fmt.Sprintf("%s_%s", prefix, e.suffix), e.help, e.src.Load)
	}
}

// RegisterMetrics exposes the pool's activity counters and capacity gauges on
// reg under the given prefix. The allocated-bytes gauge reads the bump pointer
// from the cache view directly so a metrics scrape does not itself count as
// SCM traffic (and cannot trip a crash fail-point).
func (p *Pool) RegisterMetrics(reg *obs.Registry, prefix string) {
	p.stats.RegisterMetrics(reg, prefix)
	reg.GaugeFunc(prefix+"_pool_size_bytes", "arena capacity in bytes",
		func() float64 { return float64(len(p.mem)) })
	reg.GaugeFunc(prefix+"_pool_allocated_bytes", "bytes claimed by the bump allocator",
		func() float64 { return float64(binary.LittleEndian.Uint64(p.mem[offBump:])) })
}

// RegisterPoolsMetrics registers the pools' counters summed across the fleet
// under the same names Pool.RegisterMetrics would use for one pool — so the
// sharded server exposes one scm_flushes_total regardless of shard count —
// plus per-shard labeled series (`scm_flushes_total{shard="2"}`) for the
// counters and capacity gauges of every individual pool.
func RegisterPoolsMetrics(reg *obs.Registry, prefix string, pools []*Pool) {
	if len(pools) == 1 {
		pools[0].RegisterMetrics(reg, prefix)
		return
	}
	// Aggregates first, so the unlabeled sample leads its family.
	var probe Stats
	for i, e := range statsEntries(&probe) {
		srcs := make([]interface{ Load() uint64 }, len(pools))
		for j, p := range pools {
			srcs[j] = statsEntries(&p.stats)[i].src
		}
		reg.CounterFunc(fmt.Sprintf("%s_%s", prefix, e.suffix), e.help+" (summed across shards)",
			func() uint64 {
				var sum uint64
				for _, s := range srcs {
					sum += s.Load()
				}
				return sum
			})
	}
	reg.GaugeFunc(prefix+"_pool_size_bytes", "arena capacity in bytes (summed across shards)",
		func() float64 {
			var sum float64
			for _, p := range pools {
				sum += float64(len(p.mem))
			}
			return sum
		})
	reg.GaugeFunc(prefix+"_pool_allocated_bytes", "bytes claimed by the bump allocators (summed across shards)",
		func() float64 {
			var sum float64
			for _, p := range pools {
				sum += float64(binary.LittleEndian.Uint64(p.mem[offBump:]))
			}
			return sum
		})
	for i, p := range pools {
		p := p
		lbl := obs.ShardLabel(i)
		for _, e := range statsEntries(&p.stats) {
			reg.CounterFuncL(fmt.Sprintf("%s_%s", prefix, e.suffix), lbl, e.help, e.src.Load)
		}
		reg.GaugeFuncL(prefix+"_pool_size_bytes", lbl, "arena capacity in bytes",
			func() float64 { return float64(len(p.mem)) })
		reg.GaugeFuncL(prefix+"_pool_allocated_bytes", lbl, "bytes claimed by the bump allocator",
			func() float64 { return float64(binary.LittleEndian.Uint64(p.mem[offBump:])) })
	}
}
