package scm

import (
	"encoding/binary"
	"fmt"

	"fptree/internal/obs"
)

// RegisterMetrics exposes the counters in s on reg under the given name
// prefix (e.g. "scm"). The registered metrics read the live atomics, so a
// snapshot of reg observes exactly what s.Snapshot would.
func (s *Stats) RegisterMetrics(reg *obs.Registry, prefix string) {
	type entry struct {
		suffix string
		help   string
		src    interface{ Load() uint64 }
	}
	for _, e := range []entry{
		{"reads_total", "SCM load operations of any size", &s.Reads},
		{"writes_total", "SCM store operations of any size", &s.Writes},
		{"read_hits_total", "line accesses served by the simulated CPU cache", &s.ReadHits},
		{"read_misses_total", "line accesses that missed the simulated cache and paid SCM read latency", &s.ReadMisses},
		{"flushes_total", "cache-line write-backs (CLFLUSH equivalents)", &s.Flushes},
		{"fences_total", "memory fences (SFENCE/MFENCE equivalents)", &s.Fences},
		{"allocs_total", "persistent allocations", &s.Allocs},
		{"frees_total", "persistent deallocations", &s.Frees},
		{"bytes_flushed_total", "payload bytes made durable", &s.BytesFlushed},
		{"syncs_total", "arena-file syncs (msync/fdatasync equivalents)", &s.Syncs},
		{"sync_nanos_total", "wall-clock nanoseconds spent in arena-file syncs", &s.SyncNanos},
	} {
		reg.CounterFunc(fmt.Sprintf("%s_%s", prefix, e.suffix), e.help, e.src.Load)
	}
}

// RegisterMetrics exposes the pool's activity counters and capacity gauges on
// reg under the given prefix. The allocated-bytes gauge reads the bump pointer
// from the cache view directly so a metrics scrape does not itself count as
// SCM traffic (and cannot trip a crash fail-point).
func (p *Pool) RegisterMetrics(reg *obs.Registry, prefix string) {
	p.stats.RegisterMetrics(reg, prefix)
	reg.GaugeFunc(prefix+"_pool_size_bytes", "arena capacity in bytes",
		func() float64 { return float64(len(p.mem)) })
	reg.GaugeFunc(prefix+"_pool_allocated_bytes", "bytes claimed by the bump allocator",
		func() float64 { return float64(binary.LittleEndian.Uint64(p.mem[offBump:])) })
}
