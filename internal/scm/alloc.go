package scm

import (
	"fmt"
	"sync"
)

// Arena header layout. Everything the allocator needs survives in SCM; the
// only volatile state is a mutex. All multi-step transitions are covered by
// a persistent intent record so that recovery can roll every allocation or
// deallocation forward or back (Section 2 of the paper, "Memory leaks").
const (
	headerMagic  = 0xF97B_EE00_5C11_0001
	headerSize   = 4096
	offMagic     = 0
	offVersion   = 8
	offState     = 16 // formatted flag
	offBump      = 24 // bump pointer: next never-allocated offset
	offRoot      = 32 // application root PPtr (16 bytes)
	offIntentOp  = 48 // 0 = none, 1 = alloc, 2 = free
	offIntentRef = 56 // offset of the caller's persistent pointer
	offIntentSz  = 64 // requested size
	offIntentBlk = 72 // staged block offset
	offArenaID   = 80 // persistent arena identity (PPtrs embed it)
	offIntentSum = 88 // checksum over (op, ref, sz, blk): torn-stage detector
	offClean     = 96 // clean-shutdown marker: 1 = Close completed (file-backed)
	offFreeHeads = 256
	numClasses   = (headerSize - offFreeHeads) / 8 // 480 classes → max 30 KiB reusable blocks
	maxClassSize = numClasses * LineSize

	intentNone  = 0
	intentAlloc = 1
	intentFree  = 2
)

// allocState is the volatile half of the allocator.
type allocState struct {
	mu         sync.Mutex
	largeFrees uint64 // blocks too large for a free list, dropped (documented leak)
}

// intentSum mixes the four intent words into a checksum. The record spans two
// cache lines, so a torn crash during the staging persist can commit any
// per-line word prefix — in particular the op word alone, which would
// otherwise resurrect the *previous* operation's staged block and roll back
// memory the application still owns. Recovery discards any record whose
// stored sum does not match; completion rewrites the sum over op=none so a
// torn op-only commit of a later stage can never validate against leftovers.
func intentSum(op, ref, sz, blk uint64) uint64 {
	x := op ^ 0x9E3779B97F4A7C15
	for _, v := range [...]uint64{ref, sz, blk} {
		x ^= v
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 31
	}
	return x
}

// stageIntent durably records a full intent. One persist: both header lines.
func (p *Pool) stageIntent(op, refOff, size, blk uint64) {
	p.WriteU64(offIntentOp, op)
	p.WriteU64(offIntentRef, refOff)
	p.WriteU64(offIntentSz, size)
	p.WriteU64(offIntentBlk, blk)
	p.WriteU64(offIntentSum, intentSum(op, refOff, size, blk))
	p.Persist(offIntentOp, offIntentSum+8-offIntentOp)
}

// stageIntentBlk updates the staged block of the current intent. blk and sum
// share a line, so this is a single-line persist; a torn commit of blk
// without sum fails validation, which is correct — at this point the free
// list or bump pointer has not durably changed yet.
func (p *Pool) stageIntentBlk(blk uint64) {
	op := p.ReadU64(offIntentOp)
	ref := p.ReadU64(offIntentRef)
	sz := p.ReadU64(offIntentSz)
	p.WriteU64(offIntentBlk, blk)
	p.WriteU64(offIntentSum, intentSum(op, ref, sz, blk))
	p.Persist(offIntentBlk, offIntentSum+8-offIntentBlk)
}

// clearIntent durably retires the current intent, re-binding the checksum to
// op=none so the retired record can never be mistaken for a live one.
func (p *Pool) clearIntent() {
	p.WriteU64(offIntentOp, intentNone)
	p.WriteU64(offIntentSum, intentSum(intentNone,
		p.ReadU64(offIntentRef), p.ReadU64(offIntentSz), p.ReadU64(offIntentBlk)))
	p.Persist(offIntentOp, offIntentSum+8-offIntentOp)
}

func (p *Pool) formatHeader() {
	p.WriteU64(offMagic, headerMagic)
	p.WriteU64(offVersion, 1)
	p.WriteU64(offBump, headerSize)
	p.WriteU64(offArenaID, p.id)
	p.WriteU64(offState, 1)
	p.Persist(0, headerSize)
}

// loadAllocState restores the volatile allocator state after Load/OpenFile:
// the arena identity is persistent because every PPtr in the arena embeds it.
// The global ID counter is advanced past the restored ID — without that, a
// later NewPool could mint the same ArenaID and PPtrs from two live arenas
// would be indistinguishable.
func (p *Pool) loadAllocState() {
	p.id = p.ReadU64(offArenaID)
	notePoolID(p.id)
}

// notePoolID raises the global pool-ID counter to at least id (CAS-max).
func notePoolID(id uint64) {
	for {
		cur := poolIDs.Load()
		if cur >= id || poolIDs.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Root returns the application root pointer stored in the arena header. It
// is the well-known anchor from which all persistent data is reachable.
func (p *Pool) Root() PPtr { return p.ReadPPtr(offRoot) }

// SetRoot durably stores the application root pointer.
func (p *Pool) SetRoot(v PPtr) {
	p.WritePPtr(offRoot, v)
	p.Persist(offRoot, PPtrSize)
}

// AllocRoot allocates a block owned by the arena root pointer itself — the
// usual way an application creates its top-level metadata block.
func (p *Pool) AllocRoot(size uint64) (PPtr, error) {
	return p.Alloc(offRoot, size)
}

// sizeClass maps a byte size to a free-list class, or -1 for sizes handled
// by bump allocation only.
func sizeClass(size uint64) int {
	c := int((size+LineSize-1)/LineSize) - 1
	if c >= numClasses {
		return -1
	}
	return c
}

func classBytes(c int) uint64 { return uint64(c+1) * LineSize }

// Alloc carves out a zeroed block of at least size bytes, 64-byte aligned,
// and durably writes its address into the caller's persistent pointer at
// refOff before returning. If a crash interrupts the allocation, Recover
// either completes it (the pointer holds the block) or rolls it back (the
// pointer is untouched and the block returns to the free list) — the block
// can never leak, because responsibility is split between the allocator and
// the pointer owned by the calling data structure.
func (p *Pool) Alloc(refOff uint64, size uint64) (PPtr, error) {
	if size == 0 {
		return PPtr{}, fmt.Errorf("scm: zero-size allocation")
	}
	p.alloc.mu.Lock()
	defer p.alloc.mu.Unlock()

	// Stage the intent.
	p.stageIntent(intentAlloc, refOff, size, 0)

	blk, err := p.carve(size)
	if err != nil {
		p.clearIntent()
		return PPtr{}, err
	}

	// Zero the block so reused memory never leaks stale contents, then
	// publish it through the caller's persistent pointer.
	p.zero(blk, roundedSize(size))
	ptr := PPtr{ArenaID: p.id, Offset: blk}
	p.WritePPtr(refOff, ptr)
	p.Persist(refOff, PPtrSize)

	p.clearIntent()
	p.stats.Allocs.Add(1)
	return ptr, nil
}

func roundedSize(size uint64) uint64 {
	return (size + LineSize - 1) / LineSize * LineSize
}

// carve obtains a block from the free list of the right class, or by bumping
// the high-water mark. The staged block offset is persisted before any list
// mutation so recovery can always locate the in-limbo block.
func (p *Pool) carve(size uint64) (uint64, error) {
	c := sizeClass(size)
	if c >= 0 {
		headOff := uint64(offFreeHeads + c*8)
		if head := p.ReadU64(headOff); head != 0 {
			p.stageIntentBlk(head)
			next := p.ReadU64(head) // free blocks store the next pointer in word 0
			p.WriteU64(headOff, next)
			p.Persist(headOff, 8)
			return head, nil
		}
	}
	rs := roundedSize(size)
	bump := p.ReadU64(offBump)
	if bump+rs > uint64(len(p.mem)) {
		return 0, ErrOutOfMemory
	}
	p.stageIntentBlk(bump)
	p.WriteU64(offBump, bump+rs)
	p.Persist(offBump, 8)
	return bump, nil
}

var zeroBuf [4096]byte

func (p *Pool) zero(off, size uint64) {
	for size > 0 {
		n := size
		if n > uint64(len(zeroBuf)) {
			n = uint64(len(zeroBuf))
		}
		p.WriteBytes(off, zeroBuf[:n])
		p.Persist(off, n)
		off += n
		size -= n
	}
}

// Free returns the block referenced by the persistent pointer at refOff to
// the allocator and durably nulls that pointer. size must be the size passed
// to Alloc. Like Alloc, the operation is made crash-atomic by the intent
// record: after recovery the pointer is either intact (free rolled back
// cleanly, still owned) or null with the block on the free list.
func (p *Pool) Free(refOff uint64, size uint64) {
	p.alloc.mu.Lock()
	defer p.alloc.mu.Unlock()

	blk := p.ReadPPtr(refOff)
	if blk.IsNull() {
		return
	}
	p.stageIntent(intentFree, refOff, size, blk.Offset)

	p.push(blk.Offset, size)

	p.WritePPtr(refOff, PPtr{})
	p.Persist(refOff, PPtrSize)
	p.clearIntent()
	p.stats.Frees.Add(1)
}

// push links blk onto the free list for size's class. Idempotent: if blk is
// already the head (a crashed free being replayed), it does nothing.
func (p *Pool) push(blk, size uint64) {
	c := sizeClass(size)
	if c < 0 {
		p.alloc.largeFrees++
		return
	}
	headOff := uint64(offFreeHeads + c*8)
	head := p.ReadU64(headOff)
	if head == blk {
		return
	}
	p.WriteU64(blk, head)
	p.Persist(blk, 8)
	p.WriteU64(headOff, blk)
	p.Persist(headOff, 8)
}

// Recover completes or rolls back whatever allocator operation was in flight
// when the crash hit. It must run before any data-structure recovery touches
// the arena. The decision table follows Section 2 of the paper: the intent
// record plus the caller's persistent pointer together determine how far the
// operation progressed.
func (p *Pool) Recover() {
	p.alloc.mu.Lock()
	defer p.alloc.mu.Unlock()

	op := p.ReadU64(offIntentOp)
	if op == intentNone {
		return
	}
	refOff := p.ReadU64(offIntentRef)
	size := p.ReadU64(offIntentSz)
	blk := p.ReadU64(offIntentBlk)
	if p.ReadU64(offIntentSum) != intentSum(op, refOff, size, blk) {
		// Torn staging persist: some words of the record are from an older,
		// already-retired operation. The crash hit before any list or bump
		// mutation, so the correct recovery is to do nothing at all —
		// rolling back the stale blk would push live memory onto the free
		// list (double ownership).
		p.clearIntent()
		return
	}
	switch op {
	case intentAlloc:
		p.recoverAlloc(refOff, size, blk)
	case intentFree:
		p.recoverFree(refOff, size, blk)
	}
	p.clearIntent()
}

func (p *Pool) recoverAlloc(refOff, size, blk uint64) {
	if blk == 0 {
		return // crashed before a block was staged: nothing happened
	}
	if ref := p.ReadPPtr(refOff); ref.Offset == blk {
		return // pointer published: allocation completed
	}
	c := sizeClass(size)
	if p.ReadU64(offBump) == blk {
		return // bump path crashed before advancing: block never existed
	}
	if c >= 0 {
		headOff := uint64(offFreeHeads + c*8)
		if p.ReadU64(headOff) == blk {
			return // free-list pop never became durable: block still free
		}
	}
	// Block is in limbo: popped (or bumped) but never delivered. Roll back.
	p.push(blk, size)
}

func (p *Pool) recoverFree(refOff, size, blk uint64) {
	if blk == 0 {
		return
	}
	if ref := p.ReadPPtr(refOff); ref.IsNull() {
		return // pointer already nulled: free completed
	}
	p.push(blk, size) // idempotent replay of the list insertion
	p.WritePPtr(refOff, PPtr{})
	p.Persist(refOff, PPtrSize)
}

// LargeFrees reports how many freed blocks were too large for the free-list
// classes and were therefore dropped rather than reused.
func (p *Pool) LargeFrees() uint64 {
	p.alloc.mu.Lock()
	defer p.alloc.mu.Unlock()
	return p.alloc.largeFrees
}

// AllocatedBytes returns the high-water mark of SCM consumption: all bytes
// ever carved out of the arena (free-listed blocks still count, matching how
// the paper reports SCM footprint of a loaded tree).
func (p *Pool) AllocatedBytes() uint64 { return p.ReadU64(offBump) }
