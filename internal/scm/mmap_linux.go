//go:build linux

package scm

import (
	"os"
	"syscall"
	"unsafe"
)

// Linux arena-file mapping: the durable view is a MAP_SHARED mmap of the
// file, so every flushLine memcpy lands straight in the page cache and
// survives process death. msync(MS_SYNC) extends that to power failure.

const mmapSupported = true

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }

// msyncFile is msync(2); the stdlib syscall package exposes the constants
// but not the wrapper, so issue it directly.
func msyncFile(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}
