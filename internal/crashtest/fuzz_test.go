package crashtest

// Native fuzz targets funnelling into the differential checker. The input
// byte stream decodes into (op, key, value) triples — including a
// crash-and-recover opcode — applied in lockstep to the FPTree and PTree
// variants (fixed keys) or the var-key FPTree, against the map oracle.
// Seed corpora live in testdata/fuzz/. CI smoke-runs each target briefly;
// run `go test -fuzz FuzzTreeOpsFixed ./internal/crashtest` to dig.

import (
	"strconv"
	"testing"

	"fptree/internal/core"
	"fptree/internal/scm"
)

const fuzzPoolBytes = 4 << 20

// fuzzOps decodes the raw fuzz input into a trace over a deliberately tiny
// key space (collisions make updates, duplicate inserts and deletes land).
type fuzzOp struct {
	kind  OpKind
	crash bool
	k, v  uint64
}

func decodeFuzz(data []byte) []fuzzOp {
	var ops []fuzzOp
	for len(data) >= 3 {
		kind, kb, vb := data[0], data[1], data[2]
		data = data[3:]
		op := fuzzOp{k: uint64(kb%32) + 1, v: uint64(vb)}
		switch kind % 6 {
		case 0, 1:
			op.kind = OpInsert
		case 2:
			op.kind = OpUpdate
		case 3:
			op.kind = OpDelete
		case 4:
			op.kind = OpFind
		case 5:
			op.crash = true
		}
		ops = append(ops, op)
	}
	return ops
}

// fuzzSeeds are also checked in under testdata/fuzz/ so the corpora survive
// outside the binary.
func fuzzSeeds(f *testing.F) {
	seq := make([]byte, 0, 3*16)
	for k := byte(1); k <= 16; k++ {
		seq = append(seq, 0, k, k)
	}
	f.Add(seq)
	f.Add([]byte("\x00\x01\x01\x00\x02\x02\x05\x00\x00\x02\x01\x63\x03\x02\x00\x04\x01\x00\x05\x00\x00\x00\x09\x09"))
	churn := make([]byte, 0, 6*20)
	for k := byte(1); k <= 20; k++ {
		churn = append(churn, 0, k, 2*k)
	}
	for k := byte(1); k <= 20; k++ {
		churn = append(churn, 3, k, 0)
	}
	f.Add(churn)
}

func FuzzTreeOpsFixed(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pools := [2]*scm.Pool{}
		trees := [2]*core.Tree{}
		for i, variant := range []core.Variant{core.VariantFPTree, core.VariantPTree} {
			pools[i] = scm.NewPool(fuzzPoolBytes, scm.LatencyConfig{CacheBytes: -1})
			tr, err := core.Create(pools[i], core.Config{Variant: variant, LeafCap: 8, InnerFanout: 4})
			if err != nil {
				t.Fatal(err)
			}
			trees[i] = tr
		}
		// One oracle per tree; both replay the identical trace, so the
		// oracles stay equal and each tree is checked against its own.
		oracles := [2]map[uint64]uint64{{}, {}}
		touched := map[uint64]bool{}
		for _, op := range decodeFuzz(data) {
			if op.crash {
				for i := range trees {
					pools[i].Crash()
					tr, err := core.Open(pools[i])
					if err != nil {
						t.Fatalf("recovery: %v", err)
					}
					if err := tr.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
					trees[i] = tr
				}
				continue
			}
			touched[op.k] = true
			for i := range trees {
				if err := ReplayFixed(trees[i], oracles[i], []FixedOp{{Kind: op.kind, K: op.k, V: op.v}}); err != nil {
					t.Fatalf("tree %d: %v", i, err)
				}
			}
		}
		probe := make([]uint64, 0, len(touched))
		for k := range touched {
			probe = append(probe, k)
		}
		for i, tr := range trees {
			scan := func(from uint64, n int) []FixedKV {
				kvs := tr.ScanN(from, n)
				out := make([]FixedKV, len(kvs))
				for j, kv := range kvs {
					out[j] = FixedKV{kv.Key, kv.Value}
				}
				return out
			}
			if err := DiffFixed(tr, oracles[i], probe, scan); err != nil {
				t.Fatalf("tree %d: %v", i, err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("tree %d: %v", i, err)
			}
		}
	})
}

func FuzzTreeOpsVar(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pool := scm.NewPool(fuzzPoolBytes, scm.LatencyConfig{CacheBytes: -1})
		tr, err := core.CreateVar(pool, core.Config{LeafCap: 8, InnerFanout: 4, ValueSize: varValLen})
		if err != nil {
			t.Fatal(err)
		}
		var tree Var = tr
		check := tr.CheckInvariants
		oracle := map[string][]byte{}
		touched := map[string]bool{}
		for _, op := range decodeFuzz(data) {
			if op.crash {
				pool.Crash()
				tr, err := core.OpenVar(pool)
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				tree, check = tr, tr.CheckInvariants
				continue
			}
			k := []byte(strconv.FormatUint(op.k, 10))
			touched[string(k)] = true
			vop := VarOp{Kind: op.kind, K: k, V: pack8(op.v)}
			if err := ReplayVar(tree, oracle, []VarOp{vop}); err != nil {
				t.Fatal(err)
			}
		}
		probe := make([]string, 0, len(touched))
		for k := range touched {
			probe = append(probe, k)
		}
		if err := DiffVar(tree, oracle, probe, nil); err != nil {
			t.Fatal(err)
		}
		if err := check(); err != nil {
			t.Fatal(err)
		}
	})
}
