package crashtest

// Concurrent-history checks against the concurrent FPTree (optimistic
// version-lock descent, the software stand-in for the paper's HTM leaf
// protection) under three SpecMutex schedules: free-running, forced early
// aborts, and always-abort (every section driven onto the fallback lock).
// Run with -race in CI.

import (
	"testing"

	"fptree/internal/core"
)

func newCTree(tb testing.TB) *core.CTree {
	tb.Helper()
	pool := newTestPool()
	tr, err := core.CCreate(pool, core.Config{LeafCap: 16, InnerFanout: 8, GroupSize: 4})
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func TestConcurrentHistoryOptimistic(t *testing.T) {
	stats := ConcurrentHistory(t, newCTree(t), ConcurrentOptions{
		Workers: 4, OpsPerWorker: 1500, Seed: 1,
	})
	if stats.Increments == 0 {
		t.Fatal("workload performed no shared increments")
	}
	t.Logf("optimistic: %+v", stats)
}

func TestConcurrentHistoryForcedAborts(t *testing.T) {
	stats := ConcurrentHistory(t, newCTree(t), ConcurrentOptions{
		Workers: 4, OpsPerWorker: 800, Seed: 2, MaxRetries: 4,
		ForceAbort: func(attempt int) bool { return attempt < 2 },
	})
	if stats.Aborts == 0 {
		t.Fatal("forced-abort schedule never fired")
	}
	if stats.Increments == 0 {
		t.Fatal("workload performed no shared increments")
	}
	t.Logf("forced aborts: %+v", stats)
}

func TestConcurrentHistoryAlwaysFallback(t *testing.T) {
	stats := ConcurrentHistory(t, newCTree(t), ConcurrentOptions{
		Workers: 4, OpsPerWorker: 400, Seed: 3, MaxRetries: 2,
		ForceAbort: func(int) bool { return true },
	})
	if stats.Fallbacks == 0 {
		t.Fatal("always-abort schedule never drove a section onto the fallback lock")
	}
	if stats.Increments == 0 {
		t.Fatal("workload performed no shared increments")
	}
	t.Logf("always-fallback: %+v", stats)
}
