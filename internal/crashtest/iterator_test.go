package crashtest

// Differential and crash-point coverage for the resumable range iterators.
//
// Four randomized suites (≥10k iterator sessions in total on a full run,
// scaled down 10x under -short):
//
//   - TestIteratorDifferentialFixed/Var: single-threaded sessions over random
//     windows and directions with mutations injected between steps, checked
//     against the exact sorted-map oracle (CheckIterFixed/Var) — the iterator
//     must behave as if it re-read the tree at every step.
//   - TestIteratorConcurrentFixed/Var: occ-tree sessions racing live mutator
//     goroutines that churn a volatile half of the key space, checked with
//     the stable-key oracle (CheckIterStable*) — no stable key may ever be
//     skipped or double-emitted and every value must be canonical.
//
// Plus crash-point enumeration (TestIteratorCrashEnumeration*): every persist
// of a mixed insert/update/delete workload is crashed while an iterator is
// parked mid-tree; after recovery, full forward and reverse iterations must
// reproduce the reconciled oracle exactly.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"fptree/internal/core"
)

// scaled shrinks a session count under -short so the differential suites
// stay in CI budgets while full runs keep the ≥10k-session guarantee.
func scaled(n int) int {
	if testing.Short() {
		return n / 10
	}
	return n
}

func TestIteratorDifferentialFixed(t *testing.T) {
	const keySpace = 240
	sessions := scaled(3500)
	pool := newTestPool()
	tr, err := core.Create(pool, core.Config{Variant: core.VariantFPTree, LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	oracle := map[uint64]uint64{}
	var sorted []FixedKV
	dirty := true
	live := func() []FixedKV {
		if dirty {
			sorted = sorted[:0]
			for k, v := range oracle {
				sorted = append(sorted, FixedKV{k, v})
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
			dirty = false
		}
		return sorted
	}
	mutate := func() {
		k := rng.Uint64()%keySpace + 1
		v := rng.Uint64()
		var err error
		switch _, exists := oracle[k]; {
		case !exists:
			err = tr.Insert(k, v)
			oracle[k] = v
		case rng.Intn(2) == 0:
			_, err = tr.Update(k, v)
			oracle[k] = v
		default:
			_, err = tr.Delete(k)
			delete(oracle, k)
		}
		if err != nil {
			t.Fatal(err)
		}
		dirty = true
	}
	for i := 0; i < 300; i++ {
		mutate()
	}
	emitted := 0
	for s := 0; s < sessions; s++ {
		lo := rng.Uint64() % (keySpace + 20)
		var hi uint64
		if rng.Intn(4) > 0 {
			hi = lo + rng.Uint64()%(keySpace/2) // may equal lo: empty domain
		}
		reverse := rng.Intn(2) == 1
		var it FixedIter
		if reverse {
			it = tr.ReverseIterator(lo, hi)
		} else {
			it = tr.Iterator(lo, hi)
		}
		n, err := CheckIterFixed(it, live, lo, hi, reverse, func(step int) {
			if rng.Intn(3) == 0 {
				mutate()
			}
		})
		if err != nil {
			t.Fatalf("session %d [%d,%d) rev=%v: %v", s, lo, hi, reverse, err)
		}
		emitted += n
		mutate()
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("fixed st: %d sessions, %d keys emitted", sessions, emitted)
}

func TestIteratorDifferentialVar(t *testing.T) {
	const keySpace = 240
	sessions := scaled(2000)
	pool := newTestPool()
	cfg := core.Config{Variant: core.VariantFPTree, LeafCap: 8, InnerFanout: 4, GroupSize: 4, ValueSize: varValLen}
	tr, err := core.CreateVar(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	oracle := map[string][]byte{}
	var sorted []VarKV
	dirty := true
	live := func() []VarKV {
		if dirty {
			sorted = sorted[:0]
			for k, v := range oracle {
				sorted = append(sorted, VarKV{[]byte(k), v})
			}
			sort.Slice(sorted, func(i, j int) bool { return string(sorted[i].K) < string(sorted[j].K) })
			dirty = false
		}
		return sorted
	}
	mutate := func() {
		k := []byte(strconv.FormatUint(rng.Uint64()%keySpace+1, 10))
		v := pack8(rng.Uint64())
		var err error
		switch _, exists := oracle[string(k)]; {
		case !exists:
			err = tr.Insert(k, v)
			oracle[string(k)] = v
		case rng.Intn(2) == 0:
			_, err = tr.Update(k, v)
			oracle[string(k)] = v
		default:
			_, err = tr.Delete(k)
			delete(oracle, string(k))
		}
		if err != nil {
			t.Fatal(err)
		}
		dirty = true
	}
	for i := 0; i < 300; i++ {
		mutate()
	}
	emitted := 0
	for s := 0; s < sessions; s++ {
		var lo, hi []byte
		if rng.Intn(5) > 0 {
			lo = []byte(strconv.FormatUint(rng.Uint64()%(keySpace+20), 10))
		}
		if rng.Intn(3) > 0 {
			hi = []byte(strconv.FormatUint(rng.Uint64()%(keySpace+20), 10))
		}
		reverse := rng.Intn(2) == 1
		var it VarIter
		if reverse {
			it = tr.ReverseIterator(lo, hi)
		} else {
			it = tr.Iterator(lo, hi)
		}
		n, err := CheckIterVar(it, live, lo, hi, reverse, func(step int) {
			if rng.Intn(3) == 0 {
				mutate()
			}
		})
		if err != nil {
			t.Fatalf("session %d [%q,%q) rev=%v: %v", s, lo, hi, reverse, err)
		}
		emitted += n
		mutate()
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("var st: %d sessions, %d keys emitted", sessions, emitted)
}

// canonVal is the canonical value every concurrent-suite key carries, so any
// emission is verifiable without coordinating with the mutators.
func canonVal(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

// churnOdd runs one mutator goroutine owning the odd keys congruent to
// 2*w+1 mod 4 within [1, keySpace]: disjoint ownership plus local
// present-tracking keeps duplicate inserts impossible, and every write is
// the canonical value so iterator emissions stay verifiable.
func churnOdd(w int, keySpace uint64, stop *atomic.Bool, ins func(uint64) error,
	upd func(uint64) error, del func(uint64) error) error {
	rng := rand.New(rand.NewSource(int64(100 + w)))
	present := map[uint64]bool{}
	for !stop.Load() {
		k := (rng.Uint64()%(keySpace/4))*4 + uint64(2*w+1)
		var err error
		switch {
		case !present[k]:
			err = ins(k)
			present[k] = true
		case rng.Intn(3) == 0:
			err = upd(k)
		default:
			err = del(k)
			delete(present, k)
		}
		if err != nil {
			return fmt.Errorf("mutator %d key %d: %v", w, k, err)
		}
		runtime.Gosched()
	}
	return nil
}

func TestIteratorConcurrentFixed(t *testing.T) {
	const keySpace = 800
	sessions := scaled(2600)
	pool := newTestPool()
	tr, err := core.CCreate(pool, core.Config{LeafCap: 32, InnerFanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	var stable []uint64
	for k := uint64(2); k <= keySpace; k += 2 {
		stable = append(stable, k)
		if err := tr.Insert(k, canonVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = churnOdd(w, keySpace, &stop,
				func(k uint64) error { return tr.Insert(k, canonVal(k)) },
				func(k uint64) error { _, err := tr.Update(k, canonVal(k)); return err },
				func(k uint64) error { _, err := tr.Delete(k); return err })
		}(w)
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Error(err)
			}
		}
	}()
	volatileOK := func(k uint64) bool { return k%2 == 1 && k >= 1 && k <= keySpace }
	rng := rand.New(rand.NewSource(13))
	emitted := 0
	for s := 0; s < sessions; s++ {
		lo := rng.Uint64() % (keySpace + 60)
		var hi uint64
		if rng.Intn(3) > 0 {
			hi = lo + 1 + rng.Uint64()%300
		}
		reverse := s%2 == 1
		var it FixedIter
		if reverse {
			it = tr.ReverseIterator(lo, hi)
		} else {
			it = tr.Iterator(lo, hi)
		}
		n, err := CheckIterStableFixed(it, stable, lo, hi, reverse, canonVal, volatileOK)
		if err != nil {
			t.Fatalf("session %d [%d,%d) rev=%v: %v", s, lo, hi, reverse, err)
		}
		emitted += n
	}
	stop.Store(true)
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("fixed occ: %d sessions, %d keys emitted", sessions, emitted)
}

// varKey renders a key with fixed width so bytewise order matches numeric
// order, keeping the stable-key subsequence contiguous in iteration order.
func varKey(k uint64) []byte { return []byte(fmt.Sprintf("%04d", k)) }

func varKeyNum(k []byte) (uint64, bool) {
	if len(k) != 4 {
		return 0, false
	}
	n, err := strconv.ParseUint(string(k), 10, 64)
	return n, err == nil
}

func TestIteratorConcurrentVar(t *testing.T) {
	const keySpace = 800
	sessions := scaled(2000)
	pool := newTestPool()
	tr, err := core.CCreateVar(pool, core.Config{LeafCap: 32, InnerFanout: 16, ValueSize: varValLen})
	if err != nil {
		t.Fatal(err)
	}
	valueOf := func(k []byte) []byte {
		n, ok := varKeyNum(k)
		if !ok {
			return nil
		}
		return pack8(canonVal(n))
	}
	var stable [][]byte
	for k := uint64(2); k <= keySpace; k += 2 {
		stable = append(stable, varKey(k))
		if err := tr.Insert(varKey(k), pack8(canonVal(k))); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = churnOdd(w, keySpace, &stop,
				func(k uint64) error { return tr.Insert(varKey(k), pack8(canonVal(k))) },
				func(k uint64) error { _, err := tr.Update(varKey(k), pack8(canonVal(k))); return err },
				func(k uint64) error { _, err := tr.Delete(varKey(k)); return err })
		}(w)
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Error(err)
			}
		}
	}()
	volatileOK := func(k []byte) bool {
		n, ok := varKeyNum(k)
		return ok && n%2 == 1 && n >= 1 && n <= keySpace
	}
	rng := rand.New(rand.NewSource(17))
	emitted := 0
	for s := 0; s < sessions; s++ {
		var lo, hi []byte
		if rng.Intn(4) > 0 {
			lo = varKey(rng.Uint64() % (keySpace + 60))
		}
		if rng.Intn(3) > 0 {
			hi = varKey(rng.Uint64() % (keySpace + 60))
		}
		reverse := s%2 == 1
		var it VarIter
		if reverse {
			it = tr.ReverseIterator(lo, hi)
		} else {
			it = tr.Iterator(lo, hi)
		}
		n, err := CheckIterStableVar(it, stable, lo, hi, reverse, valueOf, volatileOK)
		if err != nil {
			t.Fatalf("session %d [%q,%q) rev=%v: %v", s, lo, hi, reverse, err)
		}
		emitted += n
	}
	stop.Store(true)
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("var occ: %d sessions, %d keys emitted", sessions, emitted)
}

// iterEnumPasses is the crash grid for the iterator enumerations: clean
// persist crashes plus torn-line persist crashes (fences add little for a
// read-only observer and are covered by the op-level enumeration).
var iterEnumPasses = []struct {
	name string
	opts Options
}{
	{"persist", Options{Persists: true}},
	{"torn", Options{Persists: true, Torn: true, Seed: 11}},
}

func TestIteratorCrashEnumerationFixed(t *testing.T) {
	for _, pass := range iterEnumPasses {
		t.Run(pass.name, func(t *testing.T) {
			if testing.Short() && pass.opts.Torn {
				t.Skip("torn pass skipped in -short mode")
			}
			pool := newTestPool()
			cfg := core.Config{Variant: core.VariantFPTree, LeafCap: 8, InnerFanout: 4, GroupSize: 4}
			tr, err := core.Create(pool, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ops := fixedWorkload(5, 24, 40, 32)
			if testing.Short() {
				ops = fixedWorkload(5, 16, 24, 20)
			}
			probe := probeUniverse(ops)
			oracle := map[uint64]uint64{}
			live := func() []FixedKV {
				out := make([]FixedKV, 0, len(oracle))
				for k, v := range oracle {
					out = append(out, FixedKV{k, v})
				}
				sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
				return out
			}
			total := 0
			for i := range ops {
				op := ops[i]
				if op.Kind == OpFind || op.Kind == OpScan {
					if err := ReplayFixed(tr, oracle, ops[i:i+1]); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					continue
				}
				total += Enumerate(t, pool, pass.opts,
					func() error {
						// Park an iterator two steps into the tree, crash the
						// mutating op under it, then drain: an abandoned or
						// resumed iterator must never wedge or hold locks.
						it := tr.Iterator(0, 0)
						defer it.Close()
						for j := 0; j < 2 && it.Valid(); j++ {
							it.Next()
						}
						if err := ReplayFixed(tr, oracle, ops[i:i+1]); err != nil {
							return err
						}
						for it.Valid() {
							it.Next()
						}
						return nil
					},
					func(pt Point) error {
						tr2, err := core.Open(pool)
						if err != nil {
							return fmt.Errorf("op %d (%v %d): recovery: %v", i, op.Kind, op.K, err)
						}
						tr = tr2
						if err := tr.CheckInvariants(); err != nil {
							return fmt.Errorf("op %d (%v %d): invariants: %v", i, op.Kind, op.K, err)
						}
						syncFixed(tr, oracle, op)
						if err := DiffFixed(tr, oracle, probe, nil); err != nil {
							return fmt.Errorf("op %d (%v %d): %v", i, op.Kind, op.K, err)
						}
						if _, err := CheckIterFixed(tr.Iterator(0, 0), live, 0, 0, false, nil); err != nil {
							return fmt.Errorf("op %d (%v %d): forward iteration after crash: %v", i, op.Kind, op.K, err)
						}
						if _, err := CheckIterFixed(tr.ReverseIterator(0, 0), live, 0, 0, true, nil); err != nil {
							return fmt.Errorf("op %d (%v %d): reverse iteration after crash: %v", i, op.Kind, op.K, err)
						}
						return nil
					})
			}
			if total < 64 {
				t.Fatalf("only %d crash points exercised — fail-point wiring broken?", total)
			}
			t.Logf("%s: %d crash points", pass.name, total)
		})
	}
}

func TestIteratorCrashEnumerationVar(t *testing.T) {
	for _, pass := range iterEnumPasses {
		t.Run(pass.name, func(t *testing.T) {
			if testing.Short() && pass.opts.Torn {
				t.Skip("torn pass skipped in -short mode")
			}
			pool := newTestPool()
			cfg := core.Config{Variant: core.VariantFPTree, LeafCap: 8, InnerFanout: 4, GroupSize: 4, ValueSize: varValLen}
			tr, err := core.CreateVar(pool, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ops := varWorkload(6, 20, 36, 28)
			if testing.Short() {
				ops = varWorkload(6, 14, 20, 18)
			}
			probe := probeUniverseVar(ops)
			oracle := map[string][]byte{}
			live := func() []VarKV {
				out := make([]VarKV, 0, len(oracle))
				for k, v := range oracle {
					out = append(out, VarKV{[]byte(k), v})
				}
				sort.Slice(out, func(i, j int) bool { return string(out[i].K) < string(out[j].K) })
				return out
			}
			total := 0
			for i := range ops {
				op := ops[i]
				if op.Kind == OpFind || op.Kind == OpScan {
					if err := ReplayVar(tr, oracle, ops[i:i+1]); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					continue
				}
				total += Enumerate(t, pool, pass.opts,
					func() error {
						it := tr.Iterator(nil, nil)
						defer it.Close()
						for j := 0; j < 2 && it.Valid(); j++ {
							it.Next()
						}
						if err := ReplayVar(tr, oracle, ops[i:i+1]); err != nil {
							return err
						}
						for it.Valid() {
							it.Next()
						}
						return nil
					},
					func(pt Point) error {
						tr2, err := core.OpenVar(pool)
						if err != nil {
							return fmt.Errorf("op %d (%v %q): recovery: %v", i, op.Kind, op.K, err)
						}
						tr = tr2
						if err := tr.CheckInvariants(); err != nil {
							return fmt.Errorf("op %d (%v %q): invariants: %v", i, op.Kind, op.K, err)
						}
						syncVar(tr, oracle, op)
						if err := DiffVar(tr, oracle, probe, nil); err != nil {
							return fmt.Errorf("op %d (%v %q): %v", i, op.Kind, op.K, err)
						}
						if _, err := CheckIterVar(tr.Iterator(nil, nil), live, nil, nil, false, nil); err != nil {
							return fmt.Errorf("op %d (%v %q): forward iteration after crash: %v", i, op.Kind, op.K, err)
						}
						if _, err := CheckIterVar(tr.ReverseIterator(nil, nil), live, nil, nil, true, nil); err != nil {
							return fmt.Errorf("op %d (%v %q): reverse iteration after crash: %v", i, op.Kind, op.K, err)
						}
						return nil
					})
			}
			if total < 48 {
				t.Fatalf("only %d crash points exercised — fail-point wiring broken?", total)
			}
			t.Logf("%s: %d crash points", pass.name, total)
		})
	}
}
