package crashtest

// Native fuzz target for the resumable iterators: the input byte stream
// decodes into (op, a, b) triples that interleave tree mutations with
// iterator opens, steps, closes and whole-pool crash/recover cycles on a
// single-threaded FPTree. Every emission is validated against the exact
// sorted-map oracle, so the fuzzer hunts for interleavings where a resume
// skips, duplicates or invents a key. CI smoke-runs it briefly; dig with
// `go test -fuzz FuzzIterOps ./internal/crashtest`.

import (
	"sort"
	"testing"

	"fptree/internal/core"
	"fptree/internal/scm"
)

// iterFuzzOp mirrors the 3-byte decode of decodeFuzz but with iterator
// opcodes: 0/1 insert-or-update, 2 update, 3 delete, 4 open forward,
// 5 open reverse, 6 step, 7 step, 8 close, 9 crash+recover.
const iterFuzzOps = 10

func FuzzIterOps(f *testing.F) {
	// Fill, open forward, step through mutations, crash, reopen reverse.
	seed := make([]byte, 0, 3*40)
	for k := byte(1); k <= 20; k++ {
		seed = append(seed, 0, k, 2*k)
	}
	seed = append(seed, 4, 0, 0)
	for k := byte(0); k < 8; k++ {
		seed = append(seed, 6, 0, 0, 3, 2*k, 0)
	}
	seed = append(seed, 9, 0, 0, 5, 0, 0)
	for k := byte(0); k < 12; k++ {
		seed = append(seed, 7, 0, 0)
	}
	f.Add(seed)
	// Windowed forward session with churn, then a bounded reverse one.
	f.Add([]byte("\x00\x05\x05\x00\x0a\x0a\x00\x0f\x0f\x04\x05\x10\x06\x00\x00\x03\x0a\x00\x06\x00\x00\x08\x00\x00\x05\x02\x14\x07\x00\x00\x09\x00\x00\x07\x00\x00"))
	// Empty-domain and exhausted-iterator stepping.
	f.Add([]byte("\x00\x03\x01\x04\x09\x09\x06\x00\x00\x06\x00\x00\x05\x01\x01\x07\x00\x00\x08\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		pool := scm.NewPool(fuzzPoolBytes, scm.LatencyConfig{CacheBytes: -1})
		tr, err := core.Create(pool, core.Config{Variant: core.VariantFPTree, LeafCap: 8, InnerFanout: 4})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]uint64{}
		live := func() []FixedKV {
			out := make([]FixedKV, 0, len(oracle))
			for k, v := range oracle {
				out = append(out, FixedKV{k, v})
			}
			sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
			return out
		}
		var it *core.FixedIterator
		var reverse bool
		var lo, hi uint64
		var cur uint64
		curSet := false
		// checkPos asserts the iterator's position is exactly what the
		// oracle dictates for the current cursor.
		checkPos := func(what string) {
			want, wantV, ok := nextExpectedFixed(live(), lo, hi, reverse, cur, curSet)
			if it.Valid() != ok {
				t.Fatalf("%s: Valid=%v, oracle expects %v (want key %d)", what, it.Valid(), ok, want)
			}
			if ok && (it.Key() != want || it.Value() != wantV) {
				t.Fatalf("%s: at (%d,%d), oracle expects (%d,%d)", what, it.Key(), it.Value(), want, wantV)
			}
		}
		steps := 0
		for i := 0; i+2 < len(data) && steps < 400; i += 3 {
			steps++
			op, a, b := data[i]%iterFuzzOps, data[i+1], data[i+2]
			k := uint64(a)%32 + 1
			v := uint64(a)<<8 | uint64(b)
			switch op {
			case 0, 1, 2, 3:
				kind := OpInsert
				if op == 2 {
					kind = OpUpdate
				} else if op == 3 {
					kind = OpDelete
				}
				if err := ReplayFixed(tr, oracle, []FixedOp{{Kind: kind, K: k, V: v}}); err != nil {
					t.Fatal(err)
				}
			case 4, 5:
				if it != nil {
					it.Close()
				}
				reverse = op == 5
				lo = uint64(a) % 40
				hi = uint64(b) % 40 // 0 = unbounded; may invert: empty domain
				if reverse {
					it = tr.ReverseIterator(lo, hi)
				} else {
					it = tr.Iterator(lo, hi)
				}
				cur, curSet = 0, false
				checkPos("open")
			case 6, 7:
				if it == nil {
					continue
				}
				if !it.Valid() {
					if it.Next() {
						t.Fatal("Next on exhausted iterator returned true")
					}
					continue
				}
				cur, curSet = it.Key(), true
				it.Next()
				checkPos("step")
			case 8:
				if it != nil {
					it.Close()
					it = nil
				}
			case 9:
				// Between ops every committed mutation is durable, so the
				// oracle carries across the crash unchanged.
				if it != nil {
					it.Close()
					it = nil
				}
				pool.Crash()
				tr2, err := core.Open(pool)
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				tr = tr2
				if err := tr.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if it != nil {
			it.Close()
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		probe := make([]uint64, 0, 40)
		for k := uint64(1); k <= 40; k++ {
			probe = append(probe, k)
		}
		if err := DiffFixed(tr, oracle, probe, nil); err != nil {
			t.Fatal(err)
		}
	})
}
