package crashtest

// Rigs couple each persistent tree with its recovery, invariant-check and
// scan hooks so the enumeration and differential drivers can treat all four
// trees (FPTree fixed/var, PTree, NV-Tree, wBTree) uniformly. Test-only:
// the crashtest package itself depends only on scm and htm; these internal
// test files may import the tree packages freely (none of them import
// crashtest outside their own tests).

import (
	"encoding/binary"
	"testing"

	"fptree/internal/core"
	"fptree/internal/nvtree"
	"fptree/internal/scm"
	"fptree/internal/wbtree"
)

// testPoolBytes keeps every harness pool small enough that the whole matrix
// runs in CI (the enumeration loops re-execute ops thousands of times).
const testPoolBytes = 16 << 20

func newTestPool() *scm.Pool {
	return scm.NewPool(testPoolBytes, scm.LatencyConfig{CacheBytes: -1})
}

// fixedRig is one fixed-size-key tree under test. reopen simulates restart
// after a crash and rebinds tree/check/scan to the recovered instance.
type fixedRig struct {
	name    string
	leafCap int
	pool    *scm.Pool
	tree    Fixed
	reopen  func() error
	check   func() error
	scan    FixedScan
}

// varRig is the variable-size-key counterpart.
type varRig struct {
	name    string
	leafCap int
	pool    *scm.Pool
	tree    Var
	reopen  func() error
	check   func() error
	scan    VarScan
}

// Small fanouts everywhere: splits, merges and root growth/collapse all
// happen within a few dozen keys, so the enumerations stay fast while still
// covering every structural path.

func fptreeFixedRig(tb testing.TB, variant core.Variant) *fixedRig {
	tb.Helper()
	cfg := core.Config{Variant: variant, LeafCap: 8, InnerFanout: 4}
	if variant == core.VariantFPTree {
		cfg.GroupSize = 4
	}
	name := "fptree"
	if variant == core.VariantPTree {
		name = "ptree"
	}
	rig := &fixedRig{name: name, leafCap: cfg.LeafCap, pool: newTestPool()}
	set := func(tr *core.Tree) {
		rig.tree = tr
		rig.check = tr.CheckInvariants
		rig.scan = func(from uint64, n int) []FixedKV {
			kvs := tr.ScanN(from, n)
			out := make([]FixedKV, len(kvs))
			for i, kv := range kvs {
				out[i] = FixedKV{kv.Key, kv.Value}
			}
			return out
		}
	}
	tr, err := core.Create(rig.pool, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	set(tr)
	rig.reopen = func() error {
		tr, err := core.Open(rig.pool)
		if err != nil {
			return err
		}
		set(tr)
		return nil
	}
	return rig
}

func nvtreeFixedRig(tb testing.TB) *fixedRig {
	tb.Helper()
	rig := &fixedRig{name: "nvtree", leafCap: 8, pool: newTestPool()}
	set := func(tr *nvtree.Tree) {
		rig.tree = tr
		rig.check = tr.CheckInvariants
		rig.scan = func(from uint64, n int) []FixedKV {
			var out []FixedKV
			tr.Scan(from, func(k, v uint64) bool {
				out = append(out, FixedKV{k, v})
				return len(out) < n
			})
			return out
		}
	}
	tr, err := nvtree.New(rig.pool, nvtree.Config{LeafCap: 8, InnerCap: 4})
	if err != nil {
		tb.Fatal(err)
	}
	set(tr)
	rig.reopen = func() error {
		tr, err := nvtree.Open(rig.pool, 4)
		if err != nil {
			return err
		}
		set(tr)
		return nil
	}
	return rig
}

func wbtreeFixedRig(tb testing.TB) *fixedRig {
	tb.Helper()
	rig := &fixedRig{name: "wbtree", leafCap: 4, pool: newTestPool()}
	set := func(tr *wbtree.Tree) {
		rig.tree = tr
		rig.check = tr.CheckInvariants
		rig.scan = func(from uint64, n int) []FixedKV {
			var out []FixedKV
			tr.Scan(from, func(k, v uint64) bool {
				out = append(out, FixedKV{k, v})
				return len(out) < n
			})
			return out
		}
	}
	tr, err := wbtree.New(rig.pool, wbtree.Config{InnerCap: 4, LeafCap: 4})
	if err != nil {
		tb.Fatal(err)
	}
	set(tr)
	rig.reopen = func() error {
		tr, err := wbtree.Open(rig.pool)
		if err != nil {
			return err
		}
		set(tr)
		return nil
	}
	return rig
}

func fixedRigs() []struct {
	name string
	mk   func(testing.TB) *fixedRig
} {
	return []struct {
		name string
		mk   func(testing.TB) *fixedRig
	}{
		{"fptree", func(tb testing.TB) *fixedRig { return fptreeFixedRig(tb, core.VariantFPTree) }},
		{"ptree", func(tb testing.TB) *fixedRig { return fptreeFixedRig(tb, core.VariantPTree) }},
		{"nvtree", func(tb testing.TB) *fixedRig { return nvtreeFixedRig(tb) }},
		{"wbtree", func(tb testing.TB) *fixedRig { return wbtreeFixedRig(tb) }},
	}
}

// All harness var values are exactly 8 bytes: it matches the trees'
// configured inline ValueSize (so contents round-trip byte-for-byte) and
// packs into the wBTree's uint64 payload.
const varValLen = 8

func pack8(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func fptreeVarRig(tb testing.TB, variant core.Variant) *varRig {
	tb.Helper()
	cfg := core.Config{Variant: variant, LeafCap: 8, InnerFanout: 4, ValueSize: varValLen}
	if variant == core.VariantFPTree {
		cfg.GroupSize = 4
	}
	name := "fptree-var"
	if variant == core.VariantPTree {
		name = "ptree-var"
	}
	rig := &varRig{name: name, leafCap: cfg.LeafCap, pool: newTestPool()}
	set := func(tr *core.VarTree) {
		rig.tree = tr
		rig.check = tr.CheckInvariants
		rig.scan = func(from []byte, n int) []VarKV {
			kvs := tr.ScanN(from, n)
			out := make([]VarKV, len(kvs))
			for i, kv := range kvs {
				out[i] = VarKV{kv.Key, kv.Value}
			}
			return out
		}
	}
	tr, err := core.CreateVar(rig.pool, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	set(tr)
	rig.reopen = func() error {
		tr, err := core.OpenVar(rig.pool)
		if err != nil {
			return err
		}
		set(tr)
		return nil
	}
	return rig
}

func nvtreeVarRig(tb testing.TB) *varRig {
	tb.Helper()
	rig := &varRig{name: "nvtree-var", leafCap: 8, pool: newTestPool()}
	set := func(tr *nvtree.VarTree) {
		rig.tree = tr
		rig.check = tr.CheckInvariants
		rig.scan = func(from []byte, n int) []VarKV {
			var out []VarKV
			tr.Scan(from, func(k, v []byte) bool {
				out = append(out, VarKV{k, v})
				return len(out) < n
			})
			return out
		}
	}
	tr, err := nvtree.NewVar(rig.pool, nvtree.Config{LeafCap: 8, InnerCap: 4, ValueSize: varValLen})
	if err != nil {
		tb.Fatal(err)
	}
	set(tr)
	rig.reopen = func() error {
		tr, err := nvtree.OpenVar(rig.pool, 4)
		if err != nil {
			return err
		}
		set(tr)
		return nil
	}
	return rig
}

// wbVarAdapter packs the harness's 8-byte values into the wBTree var tree's
// uint64 payload (same trick the bench adapters use).
type wbVarAdapter struct{ t *wbtree.VarTree }

func (w wbVarAdapter) Insert(k, v []byte) error {
	return w.t.Insert(k, binary.LittleEndian.Uint64(v))
}

func (w wbVarAdapter) Find(k []byte) ([]byte, bool) {
	v, ok := w.t.Find(k)
	if !ok {
		return nil, false
	}
	return pack8(v), true
}

func (w wbVarAdapter) Update(k, v []byte) (bool, error) {
	return w.t.Update(k, binary.LittleEndian.Uint64(v))
}

func (w wbVarAdapter) Delete(k []byte) (bool, error) { return w.t.Delete(k) }

func wbtreeVarRig(tb testing.TB) *varRig {
	tb.Helper()
	rig := &varRig{name: "wbtree-var", leafCap: 4, pool: newTestPool()}
	set := func(tr *wbtree.VarTree) {
		rig.tree = wbVarAdapter{tr}
		rig.check = tr.CheckInvariants
		rig.scan = func(from []byte, n int) []VarKV {
			var out []VarKV
			tr.Scan(from, func(k []byte, v uint64) bool {
				out = append(out, VarKV{k, pack8(v)})
				return len(out) < n
			})
			return out
		}
	}
	tr, err := wbtree.NewVar(rig.pool, wbtree.Config{InnerCap: 4, LeafCap: 4})
	if err != nil {
		tb.Fatal(err)
	}
	set(tr)
	rig.reopen = func() error {
		tr, err := wbtree.OpenVar(rig.pool)
		if err != nil {
			return err
		}
		set(tr)
		return nil
	}
	return rig
}

func varRigs() []struct {
	name string
	mk   func(testing.TB) *varRig
} {
	return []struct {
		name string
		mk   func(testing.TB) *varRig
	}{
		{"fptree", func(tb testing.TB) *varRig { return fptreeVarRig(tb, core.VariantFPTree) }},
		{"ptree", func(tb testing.TB) *varRig { return fptreeVarRig(tb, core.VariantPTree) }},
		{"nvtree", func(tb testing.TB) *varRig { return nvtreeVarRig(tb) }},
		{"wbtree", func(tb testing.TB) *varRig { return wbtreeVarRig(tb) }},
	}
}
