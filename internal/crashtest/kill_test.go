package crashtest

// Real process-death testing: unlike the emulated Crash()/CrashTorn() in the
// rest of this package, these tests SIGKILL a live child process mid-workload
// and recover the tree from the arena file it left behind. The child is this
// same test binary re-executed (TestMain dispatches on an env var); it drives
// a mixed upsert/delete workload against a file-backed concurrent FPTree and
// acknowledges every completed operation on stdout. An acknowledged operation
// has returned from the tree, so its effects were persisted — the restarted
// tree must reflect every one of them.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"fptree/internal/core"
	"fptree/internal/scm"
)

const (
	killChildEnv  = "FPTREE_KILL_CHILD"
	killPathEnv   = "FPTREE_KILL_PATH"
	killStartEnv  = "FPTREE_KILL_START"
	killShardsEnv = "FPTREE_KILL_SHARDS" // > 1: run the sharded-router child
)

func TestMain(m *testing.M) {
	if os.Getenv(killChildEnv) == "1" {
		if shards := os.Getenv(killShardsEnv); shards != "" && shards != "1" {
			killShardedChildMain()
		} else {
			killChildMain()
		}
		return
	}
	os.Exit(m.Run())
}

// killChildMain is the workload the parent SIGKILLs: open (or recover) the
// arena file, then run the deterministic mixed trace from the given start
// index forever, acking each completed operation. It never exits on its own.
func killChildMain() {
	path := os.Getenv(killPathEnv)
	var start int
	fmt.Sscanf(os.Getenv(killStartEnv), "%d", &start)

	pool, recovered, err := scm.OpenFile(path, 64<<20, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var tr *core.CVarTree
	if recovered && core.HasTree(pool) {
		tr, err = core.COpenVar(pool, core.RecoveryOptions{Workers: 2})
	} else {
		tr, err = core.CCreateVar(pool, core.Config{LeafCap: 8, InnerFanout: 8, ValueSize: 12})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(out, "READY")
	out.Flush()
	for i := start; ; i++ {
		k, v, del := killTraceOp(i)
		if del {
			if _, err := tr.Delete([]byte(k)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			if err := tr.Upsert([]byte(k), []byte(v)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		// The operation returned, so it is persisted: ack it. The write is
		// unbuffered (per-line flush) so the parent's oracle never runs ahead
		// of the durable state.
		fmt.Fprintf(out, "ACK %d\n", i)
		out.Flush()
	}
}

// killTraceOp is the deterministic trace both sides share: the child executes
// step i, the parent replays acked steps into a map oracle.
func killTraceOp(i int) (key, val string, del bool) {
	k := i % 400
	if i%7 == 3 {
		return fmt.Sprintf("key-%04d", (k+200)%400), "", true
	}
	return fmt.Sprintf("key-%04d", k), fmt.Sprintf("val-%08d", i), false
}

// killOneChild re-execs the test binary as a workload child on path, waits
// for at least minAcks acknowledged operations, SIGKILLs it mid-workload, and
// returns the acked step indices (in order).
func killOneChild(t *testing.T, path string, start, minAcks int) []int {
	t.Helper()
	return killOneChildEnv(t, path, start, minAcks, nil)
}

// killOneChildEnv is killOneChild with extra child environment entries (the
// sharded variant passes its shard count through).
func killOneChildEnv(t *testing.T, path string, start, minAcks int, extraEnv []string) []int {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		killChildEnv+"=1",
		killPathEnv+"="+path,
		fmt.Sprintf("%s=%d", killStartEnv, start),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var (
		mu    sync.Mutex
		acked []int
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "ACK ") {
				continue
			}
			var step int
			if _, err := fmt.Sscanf(line, "ACK %d", &step); err != nil {
				continue
			}
			mu.Lock()
			acked = append(acked, step)
			mu.Unlock()
		}
	}()

	// Wait until the child has acked enough work, then kill it without
	// warning — no drain, no Close, no Sync.
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= minAcks {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("child acked only %d/%d operations before deadline", n, minAcks)
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck — the child was killed, a non-nil error is expected
	<-done     // drain any acks that were in flight when the kill landed

	mu.Lock()
	defer mu.Unlock()
	return acked
}

// verifyAcked reopens the arena file in-process, recovers the tree, and
// checks it against the oracle built from the acked steps of every child run
// so far: acknowledged upserts must be present with their latest value,
// acknowledged deletes must have removed the key. A kill can land mid-
// operation, so for each run the few steps after its last ack may or may not
// have reached the tree; the keys those steps touch (masked generously: 64
// steps per kill point) are excluded from the strict comparison. Each
// subsequent run starts past its predecessor's masked window, so the windows
// never overlap acked work and the oracle stays exact everywhere else.
func verifyAcked(t *testing.T, path string, runs [][]int) {
	t.Helper()
	pool, recovered, err := scm.OpenFile(path, 0, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if !recovered {
		t.Fatal("arena file not recognized as existing")
	}
	if pool.WasCleanShutdown() {
		t.Fatal("SIGKILLed child left a clean-shutdown marker")
	}
	tr, err := core.COpenVar(pool, core.RecoveryOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("recovered tree invariants: %v", err)
	}

	oracle := map[string]string{}
	masked := map[string]bool{}
	for _, acked := range runs {
		if len(acked) == 0 {
			continue
		}
		for _, step := range acked {
			k, v, del := killTraceOp(step)
			if del {
				delete(oracle, k)
			} else {
				oracle[k] = v
			}
		}
		last := acked[len(acked)-1]
		for s := last + 1; s <= last+killMaskWindow; s++ {
			k, _, _ := killTraceOp(s)
			masked[k] = true
		}
	}
	for k, want := range oracle {
		if masked[k] {
			continue
		}
		got, ok := tr.Find([]byte(k))
		if !ok {
			t.Fatalf("acked key %q lost after kill -9", k)
		}
		if string(got) != want {
			t.Fatalf("acked key %q = %q, oracle %q", k, got, want)
		}
	}
}

// killMaskWindow is how many steps past a run's last ack are treated as
// possibly-landed. The child is at most one operation (plus one torn ack
// line) ahead of its acks; 64 is deliberate overkill.
const killMaskWindow = 64

// TestKillDashNineRecovers is the real-durability acceptance test: a child
// process is SIGKILLed mid-workload (twice — the second child first recovers
// what the first left behind), and each time the reopened arena must serve
// every acknowledged operation and pass the invariant checks.
func TestKillDashNineRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	path := filepath.Join(t.TempDir(), "arena.dat")

	acked := killOneChild(t, path, 0, 400)
	if len(acked) == 0 {
		t.Fatal("no operations acked")
	}
	verifyAcked(t, path, [][]int{acked})

	// Second life: the child recovers the survivor tree and keeps writing
	// from where the trace left off — past the first kill's masked window, so
	// the union oracle stays exact — then is killed again and re-verified.
	start := acked[len(acked)-1] + killMaskWindow + 1
	acked2 := killOneChild(t, path, start, 400)
	verifyAcked(t, path, [][]int{acked, acked2})
}
