package crashtest

// Crash-consistency under the adaptive concurrency controller: the controller
// only steers scheduling (retry pacing, fallback serialization) — every
// persistence action still happens inside the same leaf-lock critical
// sections in the same order. These tests prove that by running the
// concurrent-history workload with a controller attached (both the default
// adaptive policy and AlwaysFallback, which drives every write through the
// global fallback lock), then crashing the pool mid-life and recovering: the
// recovered tree must pass full invariant checks and carry exactly the
// committed pre-crash contents.

import (
	"testing"

	"fptree/internal/core"
	"fptree/internal/htm"
)

func crashUnderController(t *testing.T, cfg htm.AdaptiveConfig) {
	t.Helper()
	pool := newTestPool()
	tr, err := core.CCreate(pool, core.Config{LeafCap: 16, InnerFanout: 8, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := htm.NewAdaptiveController(cfg)
	tr.SetController(ctrl)

	stats := ConcurrentHistory(t, tr, ConcurrentOptions{
		Workers: 4, OpsPerWorker: 800, Seed: 11,
	})
	if stats.Increments == 0 {
		t.Fatal("workload performed no shared increments")
	}
	if cfg.AlwaysFallback && ctrl.Stats.FallbackEntries.Load() == 0 {
		t.Fatal("AlwaysFallback controller never entered the fallback lock")
	}

	// Snapshot the committed contents, then die.
	want := map[uint64]uint64{}
	for it := tr.Iterator(0, 0); it.Valid(); it.Next() {
		want[it.Key()] = it.Value()
	}
	pool.Crash()

	re, err := core.COpen(pool)
	if err != nil {
		t.Fatalf("recovery after crash under controller: %v", err)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatalf("invariants after crash under controller: %v", err)
	}
	got := map[uint64]uint64{}
	for it := re.Iterator(0, 0); it.Valid(); it.Next() {
		got[it.Key()] = it.Value()
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("key %#x = %d,%v after recovery, want %d", k, gv, ok, v)
		}
	}
}

// TestCrashUnderAdaptiveController: default adaptive policy — a mix of
// optimistic and (under conflict) fallback executions precedes the crash.
func TestCrashUnderAdaptiveController(t *testing.T) {
	// A tight window and band so adaptation actually fires during the run.
	crashUnderController(t, htm.AdaptiveConfig{AdaptEvery: 64})
}

// TestCrashUnderAlwaysFallback: every write serialized through the global
// fallback lock (the paper's lock-elision degenerate case) — persistence
// ordering must be byte-for-byte the same story as the optimistic path.
func TestCrashUnderAlwaysFallback(t *testing.T) {
	crashUnderController(t, htm.AdaptiveConfig{AlwaysFallback: true})
}
