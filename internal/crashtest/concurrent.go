package crashtest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fptree/internal/htm"
)

// ConcurrentOptions tunes a concurrent-history check.
type ConcurrentOptions struct {
	Workers      int // concurrent goroutines (default 4)
	OpsPerWorker int // operations each performs (default 2000)
	Seed         int64
	SharedKeys   int // contended read-modify-write counter slots (default 4)
	MaxRetries   int // SpecMutex abort budget before fallback (default htm.DefaultMaxRetries)
	// ForceAbort, when non-nil, is installed as the SpecMutex abort schedule
	// so the mix of optimistic and fallback executions is under test control
	// (e.g. func(a int) bool { return a < 3 } kills every section's first
	// three optimistic attempts).
	ForceAbort func(attempt int) bool
}

// ConcurrentStats reports what the speculative machinery did during a run —
// tests assert on it to prove the intended schedule actually executed.
type ConcurrentStats struct {
	Aborts, Restarts, Fallbacks uint64
	Increments                  uint64 // committed shared-counter increments
}

// histMult packs a shared slot's counter as value = seq*histMult + slot, so
// any torn read mixing two slots' bytes, or a half-applied write, decodes to
// a slot mismatch.
const histMult = 1 << 20

// ConcurrentHistory drives a mixed workload against a thread-safe tree:
// each worker mutates a private key range (verified afterwards against its
// local model — any cross-worker interference or torn write breaks exact
// equality) and increments shared counter slots under an htm.SpecMutex with
// the requested forced-abort schedule, taking a per-slot version lock for
// the read-modify-write. Readers run the optimistic version-lock protocol
// and fail on torn values. After the run, every slot's value must equal its
// committed increment count exactly — a lost update leaves it short, a
// doubled one leaves it long.
func ConcurrentHistory(tb testing.TB, t Fixed, opts ConcurrentOptions) ConcurrentStats {
	tb.Helper()
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.OpsPerWorker <= 0 {
		opts.OpsPerWorker = 2000
	}
	if opts.SharedKeys <= 0 {
		opts.SharedKeys = 4
	}
	mu := &htm.SpecMutex{MaxRetries: opts.MaxRetries, ForceAbort: opts.ForceAbort}
	locks := make([]htm.VersionLock, opts.SharedKeys)
	started := make([]atomic.Uint64, opts.SharedKeys)
	committed := make([]atomic.Uint64, opts.SharedKeys)

	sharedKey := func(slot int) uint64 { return uint64(slot) + 1 }
	privKey := func(w, i int) uint64 { return uint64(w+1)<<32 | uint64(i) }

	for slot := 0; slot < opts.SharedKeys; slot++ {
		if err := t.Insert(sharedKey(slot), uint64(slot)); err != nil {
			tb.Fatalf("concurrent(seed=%d): seed slot %d: %v", opts.Seed, slot, err)
		}
	}

	increment := func(slot int) error {
		k := sharedKey(slot)
		started[slot].Add(1)
		g := mu.Acquire()
		for {
			lk := &locks[slot]
			lk.Lock()
			if g.MustAbort() {
				// Forced abort: the emulated transaction dies before its
				// writes become visible; release the slot untouched first
				// (Abort may block waiting out a fallback holder).
				lk.UnlockNoBump()
				g.Abort()
				continue
			}
			v, ok := t.Find(k)
			if !ok {
				lk.UnlockNoBump()
				g.Release()
				return fmt.Errorf("shared slot %d vanished", slot)
			}
			if v%histMult != uint64(slot) {
				lk.UnlockNoBump()
				g.Release()
				return fmt.Errorf("torn RMW read on slot %d: value %#x", slot, v)
			}
			if _, err := t.Update(k, v+histMult); err != nil {
				lk.UnlockNoBump()
				g.Release()
				return fmt.Errorf("slot %d update: %v", slot, err)
			}
			lk.Unlock()
			g.Release()
			committed[slot].Add(1)
			return nil
		}
	}

	readShared := func(slot int) error {
		k := sharedKey(slot)
		for {
			ver := locks[slot].ReadBegin()
			v, ok := t.Find(k)
			if !locks[slot].ReadValidate(ver) {
				continue // overlapped a writer; retry, as a real reader would
			}
			if !ok {
				return fmt.Errorf("shared slot %d missing", slot)
			}
			if v%histMult != uint64(slot) {
				return fmt.Errorf("torn read on slot %d: value %#x", slot, v)
			}
			if seq := v / histMult; seq > started[slot].Load() {
				return fmt.Errorf("slot %d counter %d exceeds %d started increments", slot, seq, started[slot].Load())
			}
			return nil
		}
	}

	models := make([]map[uint64]uint64, opts.Workers)
	errs := make(chan error, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		models[w] = map[uint64]uint64{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(w+1)*0x9E3779B9))
			model := models[w]
			for i := 0; i < opts.OpsPerWorker; i++ {
				switch rng.Intn(8) {
				case 0, 1: // shared increment
					if err := increment(rng.Intn(opts.SharedKeys)); err != nil {
						errs <- fmt.Errorf("worker %d op %d: %v", w, i, err)
						return
					}
				case 2: // shared optimistic read
					if err := readShared(rng.Intn(opts.SharedKeys)); err != nil {
						errs <- fmt.Errorf("worker %d op %d: %v", w, i, err)
						return
					}
				default: // private-range mutation or lookup
					k := privKey(w, rng.Intn(200))
					switch want, exists := model[k]; {
					case rng.Intn(4) == 0 && exists:
						if _, err := t.Delete(k); err != nil {
							errs <- fmt.Errorf("worker %d op %d: delete(%#x): %v", w, i, k, err)
							return
						}
						delete(model, k)
					case rng.Intn(3) == 0:
						v, ok := t.Find(k)
						if ok != exists || (ok && v != want) {
							errs <- fmt.Errorf("worker %d op %d: find(%#x) = %d,%v want %d,%v", w, i, k, v, ok, want, exists)
							return
						}
					case exists:
						v := rng.Uint64()
						if _, err := t.Update(k, v); err != nil {
							errs <- fmt.Errorf("worker %d op %d: update(%#x): %v", w, i, k, err)
							return
						}
						model[k] = v
					default:
						v := rng.Uint64()
						if err := t.Insert(k, v); err != nil {
							errs <- fmt.Errorf("worker %d op %d: insert(%#x): %v", w, i, k, err)
							return
						}
						model[k] = v
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		tb.Fatalf("concurrent(seed=%d): %v", opts.Seed, err)
	}

	var stats ConcurrentStats
	for slot := 0; slot < opts.SharedKeys; slot++ {
		n := committed[slot].Load()
		stats.Increments += n
		want := n*histMult + uint64(slot)
		if v, ok := t.Find(sharedKey(slot)); !ok || v != want {
			tb.Fatalf("concurrent(seed=%d): slot %d final value %#x,%v want %#x (%d committed increments — lost or doubled update)",
				opts.Seed, slot, v, ok, want, n)
		}
	}
	for w := range models {
		for k, want := range models[w] {
			if v, ok := t.Find(k); !ok || v != want {
				tb.Fatalf("concurrent(seed=%d): worker %d key %#x = %d,%v want %d", opts.Seed, w, k, v, ok, want)
			}
		}
	}
	stats.Aborts = mu.Stats.Aborts.Load()
	stats.Restarts = mu.Stats.Restarts.Load()
	stats.Fallbacks = mu.Stats.Fallbacks.Load()
	return stats
}
