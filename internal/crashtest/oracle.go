package crashtest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"
)

// Fixed is the adapter every fixed-size-key tree satisfies (structurally
// identical to bench.FixedTree, so the bench instances plug straight in).
type Fixed interface {
	Insert(k, v uint64) error
	Find(k uint64) (uint64, bool)
	Update(k, v uint64) (bool, error)
	Delete(k uint64) (bool, error)
}

// Var is the adapter every variable-size-key tree satisfies (structurally
// identical to bench.VarTree).
type Var interface {
	Insert(k, v []byte) error
	Find(k []byte) ([]byte, bool)
	Update(k, v []byte) (bool, error)
	Delete(k []byte) (bool, error)
}

// FixedScan returns up to n pairs with key >= from in ascending key order.
// Trees expose scans under differing signatures, so callers wrap theirs in a
// closure; nil disables scan checking.
type FixedScan func(from uint64, n int) []FixedKV

// VarScan is the variable-size-key counterpart of FixedScan.
type VarScan func(from []byte, n int) []VarKV

// FixedKV is one fixed-key pair.
type FixedKV struct{ K, V uint64 }

// VarKV is one variable-size-key pair.
type VarKV struct{ K, V []byte }

// OpKind enumerates trace operations.
type OpKind uint8

// The trace operation kinds. OpInsert on an existing key is canonicalized to
// an update by the replayer (the trees disagree on duplicate-insert
// semantics; upsert is the behaviour they can all express).
const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
	OpFind
	OpScan
	opKinds
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpFind:
		return "find"
	case OpScan:
		return "scan"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// FixedOp is one fixed-key trace operation.
type FixedOp struct {
	Kind OpKind
	K, V uint64
}

// VarOp is one variable-size-key trace operation.
type VarOp struct {
	Kind OpKind
	K, V []byte
}

// GenFixed builds a reproducible mixed trace of n operations over keys in
// [1, keySpace]; the small key space forces collisions so updates, deletes
// and duplicate inserts actually hit.
func GenFixed(seed int64, n int, keySpace uint64) []FixedOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]FixedOp, n)
	for i := range ops {
		ops[i] = FixedOp{
			Kind: OpKind(rng.Intn(int(opKinds))),
			K:    rng.Uint64()%keySpace + 1,
			V:    rng.Uint64(),
		}
	}
	return ops
}

// GenVar builds a reproducible mixed trace over the decimal-string keys of
// [1, keySpace] (their varying lengths exercise the var-key paths) with
// values of exactly valLen bytes — sized to the trees' configured inline
// value so contents compare byte-for-byte.
func GenVar(seed int64, n int, keySpace uint64, valLen int) []VarOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]VarOp, n)
	for i := range ops {
		v := make([]byte, valLen)
		rng.Read(v)
		ops[i] = VarOp{
			Kind: OpKind(rng.Intn(int(opKinds))),
			K:    []byte(strconv.FormatUint(rng.Uint64()%keySpace+1, 10)),
			V:    v,
		}
	}
	return ops
}

// ReplayFixed applies ops to the tree and the map oracle in lockstep,
// comparing every return value. The oracle map is mutated; errors name the
// diverging op index.
func ReplayFixed(t Fixed, oracle map[uint64]uint64, ops []FixedOp) error {
	for i, op := range ops {
		_, exists := oracle[op.K]
		switch {
		case op.Kind == OpInsert && !exists:
			if err := t.Insert(op.K, op.V); err != nil {
				return fmt.Errorf("op %d: insert(%d): %v", i, op.K, err)
			}
			oracle[op.K] = op.V
		case op.Kind == OpInsert || op.Kind == OpUpdate:
			ok, err := t.Update(op.K, op.V)
			if err != nil {
				return fmt.Errorf("op %d: update(%d): %v", i, op.K, err)
			}
			if ok != exists {
				return fmt.Errorf("op %d: update(%d) = %v, oracle has-key %v", i, op.K, ok, exists)
			}
			if exists {
				oracle[op.K] = op.V
			}
		case op.Kind == OpDelete:
			ok, err := t.Delete(op.K)
			if err != nil {
				return fmt.Errorf("op %d: delete(%d): %v", i, op.K, err)
			}
			if ok != exists {
				return fmt.Errorf("op %d: delete(%d) = %v, oracle has-key %v", i, op.K, ok, exists)
			}
			delete(oracle, op.K)
		case op.Kind == OpFind:
			v, ok := t.Find(op.K)
			want, wantOK := oracle[op.K]
			if ok != wantOK || (ok && v != want) {
				return fmt.Errorf("op %d: find(%d) = %d,%v want %d,%v", i, op.K, v, ok, want, wantOK)
			}
		case op.Kind == OpScan:
			// Scan checking happens in DiffFixed (needs the optional scan
			// closure); a scan op inside a trace is a no-op here.
		}
	}
	return nil
}

// ReplayVar is the variable-size-key ReplayFixed. Oracle keys are the string
// form of the byte keys.
func ReplayVar(t Var, oracle map[string][]byte, ops []VarOp) error {
	for i, op := range ops {
		_, exists := oracle[string(op.K)]
		switch {
		case op.Kind == OpInsert && !exists:
			if err := t.Insert(op.K, op.V); err != nil {
				return fmt.Errorf("op %d: insert(%q): %v", i, op.K, err)
			}
			oracle[string(op.K)] = op.V
		case op.Kind == OpInsert || op.Kind == OpUpdate:
			ok, err := t.Update(op.K, op.V)
			if err != nil {
				return fmt.Errorf("op %d: update(%q): %v", i, op.K, err)
			}
			if ok != exists {
				return fmt.Errorf("op %d: update(%q) = %v, oracle has-key %v", i, op.K, ok, exists)
			}
			if exists {
				oracle[string(op.K)] = op.V
			}
		case op.Kind == OpDelete:
			ok, err := t.Delete(op.K)
			if err != nil {
				return fmt.Errorf("op %d: delete(%q): %v", i, op.K, err)
			}
			if ok != exists {
				return fmt.Errorf("op %d: delete(%q) = %v, oracle has-key %v", i, op.K, ok, exists)
			}
			delete(oracle, string(op.K))
		case op.Kind == OpFind:
			v, ok := t.Find(op.K)
			want, wantOK := oracle[string(op.K)]
			if ok != wantOK || (ok && !bytes.Equal(v, want)) {
				return fmt.Errorf("op %d: find(%q) = %x,%v want %x,%v", i, op.K, v, ok, want, wantOK)
			}
		}
	}
	return nil
}

// DiffFixed compares the tree's full contents with the oracle: every key of
// the probe universe is looked up (catching both losses and resurrections —
// a tree cannot invent keys outside the keys ever traced), and, when scan is
// non-nil, a full ascending scan must reproduce the sorted oracle exactly.
func DiffFixed(t Fixed, oracle map[uint64]uint64, probe []uint64, scan FixedScan) error {
	for _, k := range probe {
		v, ok := t.Find(k)
		want, wantOK := oracle[k]
		if ok != wantOK || (ok && v != want) {
			return fmt.Errorf("diff: key %d = %d,%v want %d,%v", k, v, ok, want, wantOK)
		}
	}
	if scan != nil {
		want := make([]FixedKV, 0, len(oracle))
		for k, v := range oracle {
			want = append(want, FixedKV{k, v})
		}
		sort.Slice(want, func(i, j int) bool { return want[i].K < want[j].K })
		got := scan(0, len(oracle)+1)
		if len(got) != len(want) {
			return fmt.Errorf("diff: scan returned %d pairs, oracle has %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("diff: scan[%d] = (%d,%d) want (%d,%d)", i, got[i].K, got[i].V, want[i].K, want[i].V)
			}
		}
	}
	return nil
}

// DiffVar is the variable-size-key DiffFixed; probe keys are string-form.
func DiffVar(t Var, oracle map[string][]byte, probe []string, scan VarScan) error {
	for _, k := range probe {
		v, ok := t.Find([]byte(k))
		want, wantOK := oracle[k]
		if ok != wantOK || (ok && !bytes.Equal(v, want)) {
			return fmt.Errorf("diff: key %q = %x,%v want %x,%v", k, v, ok, want, wantOK)
		}
	}
	if scan != nil {
		keys := make([]string, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		got := scan(nil, len(oracle)+1)
		if len(got) != len(keys) {
			return fmt.Errorf("diff: scan returned %d pairs, oracle has %d", len(got), len(keys))
		}
		for i, k := range keys {
			if string(got[i].K) != k || !bytes.Equal(got[i].V, oracle[k]) {
				return fmt.Errorf("diff: scan[%d] = (%q,%x) want (%q,%x)", i, got[i].K, got[i].V, k, oracle[k])
			}
		}
	}
	return nil
}

// probeUniverse collects every key a fixed trace touches, sorted.
func probeUniverse(ops []FixedOp) []uint64 {
	seen := map[uint64]bool{}
	for _, op := range ops {
		seen[op.K] = true
	}
	out := make([]uint64, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// probeUniverseVar collects every key a var trace touches, sorted.
func probeUniverseVar(ops []VarOp) []string {
	seen := map[string]bool{}
	for _, op := range ops {
		seen[string(op.K)] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunDifferentialFixed replays a generated trace against the tree in batches,
// diffing full contents (probe universe plus optional scan) after every
// batch. Failures print the generating seed and batch.
func RunDifferentialFixed(tb testing.TB, t Fixed, scan FixedScan, seed int64, nops, batch int, keySpace uint64) {
	tb.Helper()
	ops := GenFixed(seed, nops, keySpace)
	probe := probeUniverse(ops)
	oracle := map[uint64]uint64{}
	for at := 0; at < len(ops); at += batch {
		end := min(at+batch, len(ops))
		if err := ReplayFixed(t, oracle, ops[at:end]); err != nil {
			tb.Fatalf("differential(seed=%d) batch @%d: %v", seed, at, err)
		}
		if err := DiffFixed(t, oracle, probe, scan); err != nil {
			tb.Fatalf("differential(seed=%d) after batch @%d: %v", seed, at, err)
		}
	}
}

// RunDifferentialVar is the variable-size-key RunDifferentialFixed.
func RunDifferentialVar(tb testing.TB, t Var, scan VarScan, seed int64, nops, batch int, keySpace uint64, valLen int) {
	tb.Helper()
	ops := GenVar(seed, nops, keySpace, valLen)
	probe := probeUniverseVar(ops)
	oracle := map[string][]byte{}
	for at := 0; at < len(ops); at += batch {
		end := min(at+batch, len(ops))
		if err := ReplayVar(t, oracle, ops[at:end]); err != nil {
			tb.Fatalf("differential(seed=%d) batch @%d: %v", seed, at, err)
		}
		if err := DiffVar(t, oracle, probe, scan); err != nil {
			tb.Fatalf("differential(seed=%d) after batch @%d: %v", seed, at, err)
		}
	}
}
