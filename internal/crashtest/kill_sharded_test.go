package crashtest

// Sharded variant of the kill -9 test: the child routes the same mixed trace
// through a kvserver.ShardedStore over a fleet of shard arena files
// (<path>.shard<i>), so a SIGKILL lands while several independent trees have
// in-flight persistent state. Recovery must reassemble the whole fleet —
// every shard file replayed, every acknowledged operation served — which is
// exactly the guarantee the sharded memkv server relies on.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"fptree/internal/core"
	"fptree/internal/kvserver"
	"fptree/internal/scm"
)

const killShardCount = 4

// openShardedFleet opens (or creates) the shard arenas under path and builds
// the router over one FPTreeC store per shard.
func openShardedFleet(path string, shards int) (*kvserver.ShardedStore, []*scm.Pool, error) {
	pools, recovered, err := scm.OpenFileShards(path, shards, 16<<20, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		return nil, nil, err
	}
	stores, err := kvserver.BuildShardStores(shards, func(i int) (kvserver.Store, error) {
		if recovered[i] && core.HasTree(pools[i]) {
			return kvserver.OpenFPTreeCStore(pools[i], 2)
		}
		return kvserver.NewFPTreeCStore(pools[i])
	})
	if err != nil {
		scm.ClosePools(pools)
		return nil, nil, err
	}
	router, err := kvserver.NewShardedStore(stores, pools)
	if err != nil {
		scm.ClosePools(pools)
		return nil, nil, err
	}
	return router, pools, nil
}

// killShardedChildMain mirrors killChildMain but drives the sharded router:
// open or recover the fleet, run the shared trace from the given start index
// forever, ack each completed operation. It never exits on its own.
func killShardedChildMain() {
	path := os.Getenv(killPathEnv)
	shards, _ := strconv.Atoi(os.Getenv(killShardsEnv))
	var start int
	fmt.Sscanf(os.Getenv(killStartEnv), "%d", &start)

	router, _, err := openShardedFleet(path, shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(out, "READY")
	out.Flush()
	for i := start; ; i++ {
		k, v, del := killTraceOp(i)
		if del {
			if _, err := router.Delete([]byte(k)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			if err := router.Set([]byte(k), []byte(v)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(out, "ACK %d\n", i)
		out.Flush()
	}
}

// verifyAckedSharded reopens the fleet in-process and checks the recovered
// router against the oracle of every acked step, with the same mask-window
// treatment of possibly-landed trailing steps as verifyAcked.
func verifyAckedSharded(t *testing.T, path string, shards int, runs [][]int) {
	t.Helper()
	pools, recovered, err := scm.OpenFileShards(path, shards, 0, scm.LatencyConfig{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer scm.ClosePools(pools)
	for i, p := range pools {
		if !recovered[i] {
			t.Fatalf("shard %d arena not recognized as existing", i)
		}
		if p.WasCleanShutdown() {
			t.Fatalf("SIGKILLed child left a clean-shutdown marker on shard %d", i)
		}
	}
	stores, err := kvserver.BuildShardStores(shards, func(i int) (kvserver.Store, error) {
		return kvserver.OpenFPTreeCStore(pools[i], 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := kvserver.NewShardedStore(stores, pools)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.CheckInvariants(); err != nil {
		t.Fatalf("recovered fleet invariants: %v", err)
	}

	oracle := map[string]string{}
	masked := map[string]bool{}
	for _, acked := range runs {
		if len(acked) == 0 {
			continue
		}
		for _, step := range acked {
			k, v, del := killTraceOp(step)
			if del {
				delete(oracle, k)
			} else {
				oracle[k] = v
			}
		}
		last := acked[len(acked)-1]
		for s := last + 1; s <= last+killMaskWindow; s++ {
			k, _, _ := killTraceOp(s)
			masked[k] = true
		}
	}
	for k, want := range oracle {
		if masked[k] {
			continue
		}
		got, ok := router.Get([]byte(k))
		if !ok {
			t.Fatalf("acked key %q lost after sharded kill -9", k)
		}
		if string(got) != want {
			t.Fatalf("acked key %q = %q, oracle %q", k, got, want)
		}
	}
}

// TestKillDashNineRecoversSharded is the sharded-durability acceptance test:
// a child driving the 4-shard router is SIGKILLed mid-workload (twice — the
// second child first recovers the fleet the first left behind), and each time
// the reopened fleet must serve every acknowledged operation across all shard
// files and pass the per-shard invariant checks.
func TestKillDashNineRecoversSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	path := filepath.Join(t.TempDir(), "arena.dat")
	extra := []string{fmt.Sprintf("%s=%d", killShardsEnv, killShardCount)}

	acked := killOneChildEnv(t, path, 0, 400, extra)
	if len(acked) == 0 {
		t.Fatal("no operations acked")
	}
	// The kill must have caught a fleet with every shard file on disk.
	for i := 0; i < killShardCount; i++ {
		if _, err := os.Stat(scm.ShardPath(path, i)); err != nil {
			t.Fatalf("shard file %d missing after kill: %v", i, err)
		}
	}
	verifyAckedSharded(t, path, killShardCount, [][]int{acked})

	start := acked[len(acked)-1] + killMaskWindow + 1
	acked2 := killOneChildEnv(t, path, start, 400, extra)
	verifyAckedSharded(t, path, killShardCount, [][]int{acked, acked2})
}
