// Package crashtest is the shared crash-consistency verification harness for
// every persistent structure in the repository.
//
// It offers three layers, each usable on its own:
//
//   - Crash-point enumeration (Enumerate, EveryPersist, EveryFence): run a
//     mutating operation repeatedly, crashing it at the 1st, 2nd, ... Nth
//     persistence primitive — optionally with torn cache lines — recovering
//     after each crash and handing control to a caller-supplied checker.
//     Every failure report carries the crash Point (kind, step, torn seed)
//     needed to reproduce it deterministically.
//
//   - Differential replay (oracle.go): generated operation traces applied in
//     lockstep to a tree and a plain map oracle, with full-content diffs
//     after every batch.
//
//   - Concurrent-history checking (concurrent.go): mixed workloads under
//     htm.SpecMutex with forced abort schedules, verified against per-slot
//     commit counts so lost updates and torn reads cannot hide.
//
// The package deliberately depends only on scm, htm and the standard
// library, so the tree packages' own tests (including internal test files of
// scm itself, via an external _test package) can all import it.
package crashtest

import (
	"fmt"
	"testing"

	"fptree/internal/scm"
)

// Point identifies one crash point in an enumeration: the Step-th primitive
// of the given Kind since the workload began, with Seed driving the torn
// cache-line commit when Torn is set. Its String form appears in every
// failure message, so a failing point can be replayed in isolation.
type Point struct {
	Kind string // "persist" or "fence"
	Step int64  // 1-based index of the primitive at which the crash fired
	Torn bool   // whether dirty lines were torn at word granularity
	Seed int64  // RNG seed of the torn commit (meaningful when Torn)
}

func (p Point) String() string {
	if p.Torn {
		return fmt.Sprintf("crash@%s[%d] torn(seed=%d)", p.Kind, p.Step, p.Seed)
	}
	return fmt.Sprintf("crash@%s[%d]", p.Kind, p.Step)
}

// Options tunes an enumeration.
type Options struct {
	// Persists enumerates crashes immediately before the Nth Persist's
	// write-back (scm.Pool.FailAfterFlushes). Enabled by default when both
	// Persists and Fences are false.
	Persists bool
	// Fences additionally enumerates crashes at the Nth fence — an explicit
	// Fence call or the fence a Persist issues after its write-backs
	// (scm.Pool.FailAfterFences) — covering the state just after each
	// primitive.
	Fences bool
	// Torn commits a random word-prefix of every dirty line at each crash
	// (scm.Pool.CrashTornSeed) instead of dropping dirty lines whole. The
	// per-point seed is derived from Seed and the point's kind and step, so
	// any failure reproduces from its printed Point alone.
	Torn bool
	// Seed is the base seed for torn crashes.
	Seed int64
	// MaxSteps caps the number of crash points per kind (default 10000) to
	// keep a buggy, never-converging workload from spinning forever.
	MaxSteps int64
}

// Crashes runs fn, converting an injected-crash panic into a true return.
// Real errors return as-is; any other panic propagates. It is the one
// recover-and-filter idiom every crash test needs.
func Crashes(fn func() error) (crashed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if r == scm.ErrInjectedCrash {
				crashed = true
				err = nil
				return
			}
			panic(r)
		}
	}()
	err = fn()
	return false, err
}

// Enumerate exhaustively crash-tests op on pool. For each enabled fail-point
// kind it arms a crash at step 1, 2, ... and re-invokes op until a run
// completes with no crash left to inject (op is expected to resume the same
// logical workload each time — typically "finish inserting the remaining
// keys"). After every crash the pool state is made durable-consistent
// (Crash or CrashTornSeed) and afterCrash runs recovery plus whatever
// verification the caller wants; its error fails the test with the
// reproducing Point. Returns the total number of crash points exercised.
func Enumerate(tb testing.TB, pool *scm.Pool, opts Options, op func() error, afterCrash func(pt Point) error) int {
	tb.Helper()
	if !opts.Persists && !opts.Fences {
		opts.Persists = true
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 10000
	}
	total := 0
	kinds := make([]string, 0, 2)
	if opts.Persists {
		kinds = append(kinds, "persist")
	}
	if opts.Fences {
		kinds = append(kinds, "fence")
	}
	for _, kind := range kinds {
		for step := int64(1); ; step++ {
			if step > opts.MaxSteps {
				tb.Fatalf("crashtest: enumeration of %s points did not converge within %d steps", kind, opts.MaxSteps)
			}
			if kind == "persist" {
				pool.FailAfterFlushes(step)
			} else {
				pool.FailAfterFences(step)
			}
			crashed, err := Crashes(op)
			pool.FailAfterFlushes(-1)
			pool.FailAfterFences(-1)
			if err != nil {
				tb.Fatalf("crashtest: op failed at %s step %d: %v", kind, step, err)
			}
			if !crashed {
				break
			}
			pt := Point{Kind: kind, Step: step, Torn: opts.Torn}
			if opts.Torn {
				pt.Seed = tornSeed(opts.Seed, kind, step)
				pool.CrashTornSeed(pt.Seed)
			} else {
				pool.Crash()
			}
			total++
			if err := afterCrash(pt); err != nil {
				tb.Fatalf("crashtest: %v: %v", pt, err)
			}
		}
	}
	return total
}

// tornSeed derives the per-point torn-commit seed. It only needs to be
// deterministic and well-spread; SplitMix64's finalizer does both.
func tornSeed(base int64, kind string, step int64) int64 {
	z := uint64(base) ^ (uint64(step) * 0x9E3779B97F4A7C15)
	if kind == "fence" {
		z ^= 0xD1342543DE82EF95
	}
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// EveryPersist enumerates clean crashes at every Persist of op — the
// promoted form of the crashEveryFlush helper the scm tests grew first.
func EveryPersist(tb testing.TB, pool *scm.Pool, op func() error, afterCrash func(pt Point) error) int {
	tb.Helper()
	return Enumerate(tb, pool, Options{Persists: true}, op, afterCrash)
}

// EveryFence enumerates clean crashes at every fence of op.
func EveryFence(tb testing.TB, pool *scm.Pool, op func() error, afterCrash func(pt Point) error) int {
	tb.Helper()
	return Enumerate(tb, pool, Options{Fences: true}, op, afterCrash)
}
