package crashtest

// Named recovery edge cases from the issue checklist: crash mid-leaf-split,
// crash in the window between the fingerprint write and the bitmap commit,
// crash during allocator/root-growth metadata updates, and a double crash —
// the recovery procedure itself crashed at every one of its own persists,
// then recovered again from the resulting state.

import (
	"fmt"
	"path/filepath"
	"testing"

	"fptree/internal/core"
	"fptree/internal/scm"
	"fptree/internal/wbtree"
)

// TestCrashMidLeafSplit fills one leaf to capacity and enumerates every
// persist of the insert that splits it, for all four trees. The final diff
// after each crash point proves the split is all-or-nothing.
func TestCrashMidLeafSplit(t *testing.T) {
	for _, tc := range fixedRigs() {
		t.Run(tc.name, func(t *testing.T) {
			rig := tc.mk(t)
			ops := make([]FixedOp, 0, rig.leafCap+1)
			for k := uint64(1); k <= uint64(rig.leafCap)+1; k++ {
				ops = append(ops, FixedOp{Kind: OpInsert, K: k, V: k * 3})
			}
			n := enumerateFixed(t, rig, ops, Options{Persists: true})
			if n <= 4 {
				t.Fatalf("split insert exercised only %d persist points — no split happened?", n)
			}
		})
	}
}

// TestCrashBetweenFingerprintAndBitmapCommit pins the FPTree's non-split
// insert protocol: exactly two persists — the interleaved key+value slot in
// one flush, then the fingerprint and bitmap commit batched into one flush
// of the shared header line (the bitmap word is last in the line, so a torn
// crash can never commit the valid bit without its fingerprint). A crash at
// either point — including inside the fingerprint/bitmap window — leaves
// the insert invisible and the rest of the leaf untouched.
func TestCrashBetweenFingerprintAndBitmapCommit(t *testing.T) {
	pool := newTestPool()
	tr, err := core.Create(pool, core.Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 4; k++ {
		if err := tr.Insert(k, k*7); err != nil {
			t.Fatal(err)
		}
	}
	n := EveryPersist(t, pool,
		func() error { return tr.Upsert(99, 1234) },
		func(pt Point) error {
			tr2, err := core.Open(pool)
			if err != nil {
				return fmt.Errorf("recovery: %v", err)
			}
			tr = tr2
			if err := tr.CheckInvariants(); err != nil {
				return err
			}
			if _, ok := tr.Find(99); ok {
				return fmt.Errorf("insert visible before its bitmap commit")
			}
			for k := uint64(1); k <= 4; k++ {
				if v, ok := tr.Find(k); !ok || v != k*7 {
					return fmt.Errorf("pre-existing key %d = %d,%v after crash", k, v, ok)
				}
			}
			return nil
		})
	if n != 2 {
		t.Fatalf("non-split FPTree insert exercised %d persist points, want 2 (key+value, fingerprint+bitmap)", n)
	}
	if v, ok := tr.Find(99); !ok || v != 1234 {
		t.Fatalf("key 99 = %d,%v after completed insert", v, ok)
	}
}

// TestCrashDuringRootGrowthAllocation enumerates the wBTree's very first
// insert, which allocates the root leaf and commits it through the root
// log — a crash inside the allocator metadata update must either hand the
// block back or complete the root switch.
func TestCrashDuringRootGrowthAllocation(t *testing.T) {
	pool := newTestPool()
	tr, err := wbtree.New(pool, wbtree.Config{InnerCap: 4, LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := EveryPersist(t, pool,
		func() error { return tr.Upsert(7, 70) },
		func(pt Point) error {
			tr2, err := wbtree.Open(pool)
			if err != nil {
				return fmt.Errorf("recovery: %v", err)
			}
			tr = tr2
			if err := tr.CheckInvariants(); err != nil {
				return err
			}
			if v, ok := tr.Find(7); ok && v != 70 {
				return fmt.Errorf("key 7 torn: %d", v)
			}
			return nil
		})
	if n == 0 {
		t.Fatal("first insert performed no persists")
	}
	if v, ok := tr.Find(7); !ok || v != 70 {
		t.Fatalf("key 7 = %d,%v after completed insert", v, ok)
	}
}

// TestDoubleCrashDuringRecovery crashes a leaf split, saves the resulting
// arena image, and then crashes recovery itself at every one of recovery's
// own persist points — reloading the image fresh each time so every inner
// point starts from the identical dirty state. After each nested crash a
// second, clean recovery must succeed and restore all acknowledged data.
func TestDoubleCrashDuringRecovery(t *testing.T) {
	type sys struct {
		name string
		mk   func(pool *scm.Pool) error              // create + fill one leaf
		ins  func(pool *scm.Pool, k, v uint64) error // upsert via a fresh handle
		open func(pool *scm.Pool) (Fixed, func() error, error)
		cap  uint64
	}
	systems := []sys{
		{
			name: "fptree",
			mk: func(pool *scm.Pool) error {
				_, err := core.Create(pool, core.Config{LeafCap: 8, InnerFanout: 4, GroupSize: 4})
				return err
			},
			ins: func(pool *scm.Pool, k, v uint64) error {
				tr, err := core.Open(pool)
				if err != nil {
					return err
				}
				return tr.Upsert(k, v)
			},
			open: func(pool *scm.Pool) (Fixed, func() error, error) {
				tr, err := core.Open(pool)
				if err != nil {
					return nil, nil, err
				}
				return tr, tr.CheckInvariants, nil
			},
			cap: 8,
		},
		{
			name: "wbtree",
			mk: func(pool *scm.Pool) error {
				_, err := wbtree.New(pool, wbtree.Config{InnerCap: 4, LeafCap: 4})
				return err
			},
			ins: func(pool *scm.Pool, k, v uint64) error {
				tr, err := wbtree.Open(pool)
				if err != nil {
					return err
				}
				return tr.Upsert(k, v)
			},
			open: func(pool *scm.Pool) (Fixed, func() error, error) {
				tr, err := wbtree.Open(pool)
				if err != nil {
					return nil, nil, err
				}
				return tr, tr.CheckInvariants, nil
			},
			cap: 4,
		},
	}
	for _, s := range systems {
		t.Run(s.name, func(t *testing.T) {
			img := filepath.Join(t.TempDir(), "arena.img")
			pool := scm.NewPool(2<<20, scm.LatencyConfig{CacheBytes: -1})
			if err := s.mk(pool); err != nil {
				t.Fatal(err)
			}
			for k := uint64(1); k <= s.cap; k++ {
				if err := s.ins(pool, k, k*5); err != nil {
					t.Fatal(err)
				}
			}
			verify := func(tr Fixed, check func() error, pt string) error {
				if err := check(); err != nil {
					return fmt.Errorf("%s: invariants: %v", pt, err)
				}
				for k := uint64(1); k <= s.cap; k++ {
					if v, ok := tr.Find(k); !ok || v != k*5 {
						return fmt.Errorf("%s: acked key %d = %d,%v", pt, k, v, ok)
					}
				}
				if v, ok := tr.Find(s.cap + 1); ok && v != 999 {
					return fmt.Errorf("%s: in-flight key torn: %d", pt, v)
				}
				return nil
			}
			innerPoints := 0
			// Outer enumeration: crash the splitting insert at every persist.
			EveryPersist(t, pool,
				func() error { return s.ins(pool, s.cap+1, 999) },
				func(outer Point) error {
					// The pool now holds the durable post-crash state; freeze it.
					if err := pool.Save(img); err != nil {
						return err
					}
					// Inner enumeration: crash recovery itself at every persist.
					for step := int64(1); ; step++ {
						p2, err := scm.Load(img, scm.LatencyConfig{CacheBytes: -1})
						if err != nil {
							return err
						}
						p2.FailAfterFlushes(step)
						crashed, err := Crashes(func() error {
							_, _, err := s.open(p2)
							return err
						})
						p2.FailAfterFlushes(-1)
						if err != nil {
							return fmt.Errorf("%v: recovery step %d: %v", outer, step, err)
						}
						if !crashed {
							break
						}
						p2.Crash()
						innerPoints++
						tr2, check2, err := s.open(p2)
						if err != nil {
							return fmt.Errorf("%v: second recovery after recovery crash %d: %v", outer, step, err)
						}
						if err := verify(tr2, check2, fmt.Sprintf("%v/recovery-crash %d", outer, step)); err != nil {
							return err
						}
						// Recovery of an already-recovered arena must be a no-op.
						tr3, check3, err := s.open(p2)
						if err != nil {
							return fmt.Errorf("%v: idempotent re-recovery: %v", outer, err)
						}
						if err := verify(tr3, check3, "re-recovery"); err != nil {
							return err
						}
					}
					// Recover the original pool so the outer enumeration resumes.
					tr, check, err := s.open(pool)
					if err != nil {
						return err
					}
					return verify(tr, check, outer.String())
				})
			if innerPoints == 0 {
				t.Fatal("no recovery persist was ever crash-tested — recovery never wrote?")
			}
			t.Logf("%s: %d nested recovery crash points", s.name, innerPoints)
		})
	}
}
