package crashtest

// Exhaustive crash-point enumeration over all four persistent trees: every
// mutating operation of a mixed workload is crashed at each of its Persist
// (and separately, fence) primitives, recovery runs, invariants are checked
// and the full contents are diffed against the map oracle. The workload
// includes a sequential fill (leaf splits, root growth), a random trace
// (updates, duplicate inserts, deletes) and a full delete sweep (merges,
// chain pruning, root collapse), so the grid covers insert, delete, split
// and the recovery paths behind each.

import (
	"fmt"
	"strconv"
	"testing"
)

// fixedWorkload builds the canonical enumeration trace: sequential fill,
// random mixed trace, full delete sweep.
func fixedWorkload(seed int64, inserts, trace int, keySpace uint64) []FixedOp {
	ops := make([]FixedOp, 0, inserts+trace+int(keySpace))
	for k := uint64(1); k <= uint64(inserts); k++ {
		ops = append(ops, FixedOp{Kind: OpInsert, K: k, V: k * 7})
	}
	ops = append(ops, GenFixed(seed, trace, keySpace)...)
	for k := uint64(1); k <= keySpace; k++ {
		ops = append(ops, FixedOp{Kind: OpDelete, K: k})
	}
	return ops
}

func varWorkload(seed int64, inserts, trace int, keySpace uint64) []VarOp {
	ops := make([]VarOp, 0, inserts+trace+int(keySpace))
	for k := uint64(1); k <= uint64(inserts); k++ {
		ops = append(ops, VarOp{Kind: OpInsert, K: []byte(strconv.FormatUint(k, 10)), V: pack8(k * 7)})
	}
	ops = append(ops, GenVar(seed, trace, keySpace, varValLen)...)
	for k := uint64(1); k <= keySpace; k++ {
		ops = append(ops, VarOp{Kind: OpDelete, K: []byte(strconv.FormatUint(k, 10))})
	}
	return ops
}

// syncFixed reconciles the oracle with the tree for the one operation that
// was in flight when the crash hit: its effects are either fully present
// (the commit point persisted before the crash) or fully absent — anything
// in between is a consistency bug the subsequent diff reports.
func syncFixed(t Fixed, oracle map[uint64]uint64, op FixedOp) {
	v, ok := t.Find(op.K)
	switch op.Kind {
	case OpInsert, OpUpdate:
		if ok && v == op.V {
			oracle[op.K] = op.V
		}
	case OpDelete:
		if !ok {
			delete(oracle, op.K)
		}
	}
}

func syncVar(t Var, oracle map[string][]byte, op VarOp) {
	v, ok := t.Find(op.K)
	switch op.Kind {
	case OpInsert, OpUpdate:
		if ok && string(v) == string(op.V) {
			oracle[string(op.K)] = op.V
		}
	case OpDelete:
		if !ok {
			delete(oracle, string(op.K))
		}
	}
}

// enumerateFixed walks the workload one operation at a time and runs a full
// crash-point enumeration around each mutating op, so no persist point is
// ever skipped (a workload-level enumeration would advance more than one
// primitive per iteration). opts must enable exactly one crash kind: after
// one kind's enumeration completes, the op has committed, and re-running it
// for a second kind would exercise a different (idempotent-update) path.
func enumerateFixed(t *testing.T, rig *fixedRig, ops []FixedOp, opts Options) int {
	t.Helper()
	if opts.Persists == opts.Fences {
		t.Fatal("enumerateFixed needs exactly one crash kind per pass")
	}
	probe := probeUniverse(ops)
	oracle := map[uint64]uint64{}
	total := 0
	for i := range ops {
		op := ops[i]
		if op.Kind == OpFind || op.Kind == OpScan {
			if err := ReplayFixed(rig.tree, oracle, ops[i:i+1]); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			continue
		}
		total += Enumerate(t, rig.pool, opts,
			func() error { return ReplayFixed(rig.tree, oracle, ops[i:i+1]) },
			func(pt Point) error {
				if err := rig.reopen(); err != nil {
					return fmt.Errorf("op %d (%v %d): recovery: %v", i, op.Kind, op.K, err)
				}
				if err := rig.check(); err != nil {
					return fmt.Errorf("op %d (%v %d): invariants: %v", i, op.Kind, op.K, err)
				}
				syncFixed(rig.tree, oracle, op)
				if err := DiffFixed(rig.tree, oracle, probe, rig.scan); err != nil {
					return fmt.Errorf("op %d (%v %d): %v", i, op.Kind, op.K, err)
				}
				return nil
			})
	}
	return total
}

func enumerateVar(t *testing.T, rig *varRig, ops []VarOp, opts Options) int {
	t.Helper()
	if opts.Persists == opts.Fences {
		t.Fatal("enumerateVar needs exactly one crash kind per pass")
	}
	probe := probeUniverseVar(ops)
	oracle := map[string][]byte{}
	total := 0
	for i := range ops {
		op := ops[i]
		if op.Kind == OpFind || op.Kind == OpScan {
			if err := ReplayVar(rig.tree, oracle, ops[i:i+1]); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			continue
		}
		total += Enumerate(t, rig.pool, opts,
			func() error { return ReplayVar(rig.tree, oracle, ops[i:i+1]) },
			func(pt Point) error {
				if err := rig.reopen(); err != nil {
					return fmt.Errorf("op %d (%v %q): recovery: %v", i, op.Kind, op.K, err)
				}
				if err := rig.check(); err != nil {
					return fmt.Errorf("op %d (%v %q): invariants: %v", i, op.Kind, op.K, err)
				}
				syncVar(rig.tree, oracle, op)
				if err := DiffVar(rig.tree, oracle, probe, rig.scan); err != nil {
					return fmt.Errorf("op %d (%v %q): %v", i, op.Kind, op.K, err)
				}
				return nil
			})
	}
	return total
}

// enumPasses is the crash-kind × torn grid each tree runs through.
var enumPasses = []struct {
	name string
	opts Options
}{
	{"persist", Options{Persists: true}},
	{"fence", Options{Fences: true}},
	{"torn", Options{Persists: true, Torn: true, Seed: 42}},
}

func TestCrashEnumerationFixed(t *testing.T) {
	for _, tc := range fixedRigs() {
		t.Run(tc.name, func(t *testing.T) {
			for _, pass := range enumPasses {
				t.Run(pass.name, func(t *testing.T) {
					rig := tc.mk(t)
					ops := fixedWorkload(1, 32, 60, 40)
					n := enumerateFixed(t, rig, ops, pass.opts)
					if n < 64 {
						t.Fatalf("only %d crash points exercised — fail-point wiring broken?", n)
					}
					t.Logf("%s/%s: %d crash points", rig.name, pass.name, n)
				})
			}
		})
	}
}

func TestCrashEnumerationVar(t *testing.T) {
	for _, tc := range varRigs() {
		t.Run(tc.name, func(t *testing.T) {
			for _, pass := range enumPasses {
				t.Run(pass.name, func(t *testing.T) {
					rig := tc.mk(t)
					ops := varWorkload(2, 24, 40, 32)
					n := enumerateVar(t, rig, ops, pass.opts)
					if n < 48 {
						t.Fatalf("only %d crash points exercised — fail-point wiring broken?", n)
					}
					t.Logf("%s/%s: %d crash points", rig.name, pass.name, n)
				})
			}
		})
	}
}
