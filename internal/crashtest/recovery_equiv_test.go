package crashtest

// Parallel recovery must be indistinguishable from sequential recovery on
// every reachable crash image, not just on the seeded traces the core tests
// sample. This file re-runs the crash-point enumeration for the FPTree rigs
// and, at every enumerated image, recovers a clone of the crashed pool with
// RecoveryOptions{Workers: 3} and diffs it against the sequential reopen of
// the original pool.

import (
	"bytes"
	"fmt"
	"testing"

	"fptree/internal/core"
)

// equivScanLimit comfortably exceeds every workload's live-key count.
const equivScanLimit = 10000

func enumerateFixedEquiv(t *testing.T, rig *fixedRig, ops []FixedOp, opts Options) int {
	t.Helper()
	probe := probeUniverse(ops)
	oracle := map[uint64]uint64{}
	total := 0
	for i := range ops {
		op := ops[i]
		if op.Kind == OpFind || op.Kind == OpScan {
			if err := ReplayFixed(rig.tree, oracle, ops[i:i+1]); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			continue
		}
		total += Enumerate(t, rig.pool, opts,
			func() error { return ReplayFixed(rig.tree, oracle, ops[i:i+1]) },
			func(pt Point) error {
				clone := rig.pool.Clone()
				if err := rig.reopen(); err != nil {
					return fmt.Errorf("op %d (%v %d): recovery: %v", i, op.Kind, op.K, err)
				}
				if err := rig.check(); err != nil {
					return fmt.Errorf("op %d (%v %d): invariants: %v", i, op.Kind, op.K, err)
				}
				par, err := core.Open(clone, core.RecoveryOptions{Workers: 3})
				if err != nil {
					return fmt.Errorf("op %d (%v %d): parallel recovery: %v", i, op.Kind, op.K, err)
				}
				if err := par.CheckInvariants(); err != nil {
					return fmt.Errorf("op %d (%v %d): parallel invariants: %v", i, op.Kind, op.K, err)
				}
				seq := rig.scan(0, equivScanLimit)
				got := par.ScanN(0, equivScanLimit)
				if len(got) != len(seq) {
					return fmt.Errorf("op %d (%v %d): parallel recovered %d pairs, sequential %d",
						i, op.Kind, op.K, len(got), len(seq))
				}
				for j := range got {
					if got[j].Key != seq[j].K || got[j].Value != seq[j].V {
						return fmt.Errorf("op %d (%v %d): pair %d: parallel %d=%d, sequential %d=%d",
							i, op.Kind, op.K, j, got[j].Key, got[j].Value, seq[j].K, seq[j].V)
					}
				}
				syncFixed(rig.tree, oracle, op)
				if err := DiffFixed(rig.tree, oracle, probe, rig.scan); err != nil {
					return fmt.Errorf("op %d (%v %d): %v", i, op.Kind, op.K, err)
				}
				return nil
			})
	}
	return total
}

func enumerateVarEquiv(t *testing.T, rig *varRig, ops []VarOp, opts Options) int {
	t.Helper()
	probe := probeUniverseVar(ops)
	oracle := map[string][]byte{}
	total := 0
	for i := range ops {
		op := ops[i]
		if op.Kind == OpFind || op.Kind == OpScan {
			if err := ReplayVar(rig.tree, oracle, ops[i:i+1]); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			continue
		}
		total += Enumerate(t, rig.pool, opts,
			func() error { return ReplayVar(rig.tree, oracle, ops[i:i+1]) },
			func(pt Point) error {
				clone := rig.pool.Clone()
				if err := rig.reopen(); err != nil {
					return fmt.Errorf("op %d (%v %q): recovery: %v", i, op.Kind, op.K, err)
				}
				if err := rig.check(); err != nil {
					return fmt.Errorf("op %d (%v %q): invariants: %v", i, op.Kind, op.K, err)
				}
				par, err := core.OpenVar(clone, core.RecoveryOptions{Workers: 3})
				if err != nil {
					return fmt.Errorf("op %d (%v %q): parallel recovery: %v", i, op.Kind, op.K, err)
				}
				if err := par.CheckInvariants(); err != nil {
					return fmt.Errorf("op %d (%v %q): parallel invariants: %v", i, op.Kind, op.K, err)
				}
				seq := rig.scan(nil, equivScanLimit)
				got := par.ScanN(nil, equivScanLimit)
				if len(got) != len(seq) {
					return fmt.Errorf("op %d (%v %q): parallel recovered %d pairs, sequential %d",
						i, op.Kind, op.K, len(got), len(seq))
				}
				for j := range got {
					if !bytes.Equal(got[j].Key, seq[j].K) || !bytes.Equal(got[j].Value, seq[j].V) {
						return fmt.Errorf("op %d (%v %q): pair %d: parallel %q=%q, sequential %q=%q",
							i, op.Kind, op.K, j, got[j].Key, got[j].Value, seq[j].K, seq[j].V)
					}
				}
				syncVar(rig.tree, oracle, op)
				if err := DiffVar(rig.tree, oracle, probe, rig.scan); err != nil {
					return fmt.Errorf("op %d (%v %q): %v", i, op.Kind, op.K, err)
				}
				return nil
			})
	}
	return total
}

func TestParallelRecoveryEquivEnumFixed(t *testing.T) {
	for _, pass := range enumPasses {
		t.Run(pass.name, func(t *testing.T) {
			rig := fptreeFixedRig(t, core.VariantFPTree)
			ops := fixedWorkload(3, 24, 40, 28)
			n := enumerateFixedEquiv(t, rig, ops, pass.opts)
			if n < 48 {
				t.Fatalf("only %d crash points exercised — fail-point wiring broken?", n)
			}
			t.Logf("%s/%s: %d crash points, parallel == sequential at each", rig.name, pass.name, n)
		})
	}
}

func TestParallelRecoveryEquivEnumVar(t *testing.T) {
	for _, pass := range enumPasses {
		t.Run(pass.name, func(t *testing.T) {
			rig := fptreeVarRig(t, core.VariantFPTree)
			ops := varWorkload(4, 16, 30, 24)
			n := enumerateVarEquiv(t, rig, ops, pass.opts)
			if n < 32 {
				t.Fatalf("only %d crash points exercised — fail-point wiring broken?", n)
			}
			t.Logf("%s/%s: %d crash points, parallel == sequential at each", rig.name, pass.name, n)
		})
	}
}
