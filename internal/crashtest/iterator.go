package crashtest

// Iterator checkers: the differential layer for the resumable range
// iterators of the core trees. Two strengths are offered, matching the two
// guarantees the iterators make.
//
// CheckIterFixed/CheckIterVar verify the EXACT single-threaded contract:
// with no concurrent writers (mutations happen only between steps, through
// the mutate callback), every step must return precisely the first live
// in-window key past the cursor — the iterator behaves as if it re-read the
// tree at each step. This is also the contract a concurrent tree's iterator
// honors when driven from one goroutine.
//
// CheckIterStableFixed/CheckIterStableVar verify the concurrent contract
// under live mutators: with the key space split into stable keys (never
// touched during the session) and volatile keys (churned concurrently, but
// always carrying their canonical value when present), the emission must be
// strictly monotonic inside the window, every stable in-window key must
// appear exactly once, every emitted key must carry its canonical value,
// and every volatile emission must be a plausible key. Skipping or
// double-emitting a stable key — the linearizability-per-step property the
// iterator claims — is reported with the offending step.
//
// Like the rest of this package's exported surface, only scm/htm/stdlib are
// imported, so tree packages' own tests can use these checkers too.

import (
	"bytes"
	"fmt"
	"sort"
)

// FixedIter is the iterator surface the fixed-key checkers drive; it matches
// core.FixedIterator.
type FixedIter interface {
	Valid() bool
	Next() bool
	Key() uint64
	Value() uint64
	Close()
}

// VarIter matches core.VarIterator.
type VarIter interface {
	Valid() bool
	Next() bool
	Key() []byte
	Value() []byte
	Close()
}

// fixedInWindow reports whether k lies in [start, end) under the fixed-key
// convention (end == 0 means unbounded).
func fixedInWindow(k, start, end uint64) bool {
	return k >= start && (end == 0 || k < end)
}

// varInWindow is the byte-string counterpart (nil edges are unbounded).
func varInWindow(k, start, end []byte) bool {
	if len(start) > 0 && bytes.Compare(k, start) < 0 {
		return false
	}
	return len(end) == 0 || bytes.Compare(k, end) < 0
}

// CheckIterFixed drives it to exhaustion against the exact oracle. live must
// return the CURRENT live pairs sorted ascending by key; mutate (optional)
// runs after each emission and may mutate both the tree and whatever backs
// live. start/end bound the window with end == 0 meaning unbounded; reverse
// selects descending iteration. Returns the number of keys emitted.
func CheckIterFixed(it FixedIter, live func() []FixedKV, start, end uint64, reverse bool, mutate func(step int)) (int, error) {
	defer it.Close()
	var cur uint64
	curSet := false
	steps := 0
	for {
		want, wantV, ok := nextExpectedFixed(live(), start, end, reverse, cur, curSet)
		if !it.Valid() {
			if ok {
				return steps, fmt.Errorf("step %d: iterator exhausted but key %d is live in the window", steps, want)
			}
			if it.Next() {
				return steps, fmt.Errorf("step %d: Next on exhausted iterator returned true", steps)
			}
			return steps, nil
		}
		if !ok {
			return steps, fmt.Errorf("step %d: emitted %d but no live key remains past cursor", steps, it.Key())
		}
		if it.Key() != want {
			return steps, fmt.Errorf("step %d: emitted key %d, oracle expects %d", steps, it.Key(), want)
		}
		if it.Value() != wantV {
			return steps, fmt.Errorf("step %d: key %d carries value %d, oracle has %d", steps, want, it.Value(), wantV)
		}
		cur, curSet = want, true
		steps++
		if mutate != nil {
			mutate(steps)
		}
		it.Next()
	}
}

// nextExpectedFixed returns the first live key the iterator must emit next:
// the smallest (or, reversed, greatest) in-window key strictly past the
// cursor. sorted is ascending.
func nextExpectedFixed(sorted []FixedKV, start, end uint64, reverse bool, cur uint64, curSet bool) (uint64, uint64, bool) {
	if !reverse {
		i := sort.Search(len(sorted), func(i int) bool {
			if sorted[i].K < start {
				return false
			}
			return !curSet || sorted[i].K > cur
		})
		if i == len(sorted) || !fixedInWindow(sorted[i].K, start, end) {
			return 0, 0, false
		}
		return sorted[i].K, sorted[i].V, true
	}
	// Greatest key below the cursor (or below end / at the top when unset).
	i := sort.Search(len(sorted), func(i int) bool {
		if curSet && sorted[i].K >= cur {
			return true
		}
		return !curSet && end != 0 && sorted[i].K >= end
	})
	if i == 0 {
		return 0, 0, false
	}
	k := sorted[i-1]
	if !fixedInWindow(k.K, start, end) {
		return 0, 0, false
	}
	return k.K, k.V, true
}

// CheckIterVar is CheckIterFixed for byte-string keys; nil window edges mean
// unbounded and live must be sorted ascending by bytewise key order.
func CheckIterVar(it VarIter, live func() []VarKV, start, end []byte, reverse bool, mutate func(step int)) (int, error) {
	defer it.Close()
	var cur []byte
	steps := 0
	for {
		want, ok := nextExpectedVar(live(), start, end, reverse, cur)
		if !it.Valid() {
			if ok {
				return steps, fmt.Errorf("step %d: iterator exhausted but key %q is live in the window", steps, want.K)
			}
			return steps, nil
		}
		if !ok {
			return steps, fmt.Errorf("step %d: emitted %q but no live key remains past cursor", steps, it.Key())
		}
		if !bytes.Equal(it.Key(), want.K) {
			return steps, fmt.Errorf("step %d: emitted key %q, oracle expects %q", steps, it.Key(), want.K)
		}
		if !bytes.Equal(it.Value(), want.V) {
			return steps, fmt.Errorf("step %d: key %q carries value %x, oracle has %x", steps, want.K, it.Value(), want.V)
		}
		cur = append(cur[:0], want.K...)
		steps++
		if mutate != nil {
			mutate(steps)
		}
		it.Next()
	}
}

func nextExpectedVar(sorted []VarKV, start, end []byte, reverse bool, cur []byte) (VarKV, bool) {
	if !reverse {
		i := sort.Search(len(sorted), func(i int) bool {
			if len(start) > 0 && bytes.Compare(sorted[i].K, start) < 0 {
				return false
			}
			return cur == nil || bytes.Compare(sorted[i].K, cur) > 0
		})
		if i == len(sorted) || !varInWindow(sorted[i].K, start, end) {
			return VarKV{}, false
		}
		return sorted[i], true
	}
	i := sort.Search(len(sorted), func(i int) bool {
		if cur != nil {
			return bytes.Compare(sorted[i].K, cur) >= 0
		}
		return len(end) > 0 && bytes.Compare(sorted[i].K, end) >= 0
	})
	if i == 0 {
		return VarKV{}, false
	}
	k := sorted[i-1]
	if !varInWindow(k.K, start, end) {
		return VarKV{}, false
	}
	return k, true
}

// CheckIterStableFixed drives it to exhaustion under concurrent mutators.
// stable is the ascending list of keys guaranteed live for the whole session;
// valueOf gives every key's canonical value (mutators must only ever write
// canonical values); volatileOK reports whether a non-stable key is one the
// mutators could legitimately have inserted. Verifies strict in-window
// monotonic emission, exact once-each coverage of the stable keys, and
// canonical values throughout. Returns the number of keys emitted.
func CheckIterStableFixed(it FixedIter, stable []uint64, start, end uint64, reverse bool, valueOf func(uint64) uint64, volatileOK func(uint64) bool) (int, error) {
	defer it.Close()
	want := stableWindowFixed(stable, start, end, reverse)
	idx := 0
	var prev uint64
	prevSet := false
	steps := 0
	for ; it.Valid(); it.Next() {
		k := it.Key()
		if !fixedInWindow(k, start, end) {
			return steps, fmt.Errorf("step %d: key %d outside window [%d,%d)", steps, k, start, end)
		}
		if prevSet {
			if !reverse && k <= prev {
				return steps, fmt.Errorf("step %d: key %d after %d — duplicate or regression", steps, k, prev)
			}
			if reverse && k >= prev {
				return steps, fmt.Errorf("step %d: key %d after %d — duplicate or regression (reverse)", steps, k, prev)
			}
		}
		prev, prevSet = k, true
		if it.Value() != valueOf(k) {
			return steps, fmt.Errorf("step %d: key %d carries value %d, canonical is %d", steps, k, it.Value(), valueOf(k))
		}
		if idx < len(want) && k == want[idx] {
			idx++
		} else if isStableKey(stable, k) {
			if idx < len(want) {
				return steps, fmt.Errorf("step %d: stable key %d emitted while %d was still pending — a stable key was skipped", steps, k, want[idx])
			}
			return steps, fmt.Errorf("step %d: stable key %d emitted twice", steps, k)
		} else if !volatileOK(k) {
			return steps, fmt.Errorf("step %d: key %d is neither stable nor a legal volatile key", steps, k)
		}
		steps++
	}
	if idx != len(want) {
		return steps, fmt.Errorf("iterator exhausted with stable key %d (and %d more) never emitted", want[idx], len(want)-idx-1)
	}
	return steps, nil
}

// CheckIterStableVar is the byte-string counterpart of CheckIterStableFixed.
func CheckIterStableVar(it VarIter, stable [][]byte, start, end []byte, reverse bool, valueOf func([]byte) []byte, volatileOK func([]byte) bool) (int, error) {
	defer it.Close()
	want := stableWindowVar(stable, start, end, reverse)
	idx := 0
	var prev []byte
	steps := 0
	for ; it.Valid(); it.Next() {
		k := it.Key()
		if !varInWindow(k, start, end) {
			return steps, fmt.Errorf("step %d: key %q outside window [%q,%q)", steps, k, start, end)
		}
		if prev != nil {
			c := bytes.Compare(k, prev)
			if !reverse && c <= 0 || reverse && c >= 0 {
				return steps, fmt.Errorf("step %d: key %q after %q — duplicate or regression", steps, k, prev)
			}
		}
		prev = append(prev[:0], k...)
		if !bytes.Equal(it.Value(), valueOf(k)) {
			return steps, fmt.Errorf("step %d: key %q carries value %x, canonical is %x", steps, k, it.Value(), valueOf(k))
		}
		if idx < len(want) && bytes.Equal(k, want[idx]) {
			idx++
		} else if isStableKeyVar(stable, k) {
			if idx < len(want) {
				return steps, fmt.Errorf("step %d: stable key %q emitted while %q was still pending — a stable key was skipped", steps, k, want[idx])
			}
			return steps, fmt.Errorf("step %d: stable key %q emitted twice", steps, k)
		} else if !volatileOK(k) {
			return steps, fmt.Errorf("step %d: key %q is neither stable nor a legal volatile key", steps, k)
		}
		steps++
	}
	if idx != len(want) {
		return steps, fmt.Errorf("iterator exhausted with stable key %q (and %d more) never emitted", want[idx], len(want)-idx-1)
	}
	return steps, nil
}

// stableWindowFixed selects the in-window stable keys in emission order.
func stableWindowFixed(stable []uint64, start, end uint64, reverse bool) []uint64 {
	var w []uint64
	for _, k := range stable {
		if fixedInWindow(k, start, end) {
			w = append(w, k)
		}
	}
	if reverse {
		for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
			w[i], w[j] = w[j], w[i]
		}
	}
	return w
}

func stableWindowVar(stable [][]byte, start, end []byte, reverse bool) [][]byte {
	var w [][]byte
	for _, k := range stable {
		if varInWindow(k, start, end) {
			w = append(w, k)
		}
	}
	if reverse {
		for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
			w[i], w[j] = w[j], w[i]
		}
	}
	return w
}

func isStableKey(stable []uint64, k uint64) bool {
	i := sort.Search(len(stable), func(i int) bool { return stable[i] >= k })
	return i < len(stable) && stable[i] == k
}

func isStableKeyVar(stable [][]byte, k []byte) bool {
	i := sort.Search(len(stable), func(i int) bool { return bytes.Compare(stable[i], k) >= 0 })
	return i < len(stable) && bytes.Equal(stable[i], k)
}
