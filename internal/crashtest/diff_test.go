package crashtest

// Crash-free differential runs: long generated traces replayed against each
// tree and a map oracle in lockstep, with full-content diffs (point lookups
// over the touched-key universe plus a complete ordered scan) after every
// batch. This is the same checker the fuzz targets funnel into.

import "testing"

func TestDifferentialFixed(t *testing.T) {
	for _, tc := range fixedRigs() {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(100); seed < 103; seed++ {
				rig := tc.mk(t)
				RunDifferentialFixed(t, rig.tree, rig.scan, seed, 4000, 97, 300)
				if err := rig.check(); err != nil {
					t.Fatalf("seed %d: invariants after differential run: %v", seed, err)
				}
			}
		})
	}
}

func TestDifferentialVar(t *testing.T) {
	for _, tc := range varRigs() {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(200); seed < 202; seed++ {
				rig := tc.mk(t)
				RunDifferentialVar(t, rig.tree, rig.scan, seed, 2000, 89, 200, varValLen)
				if err := rig.check(); err != nil {
					t.Fatalf("seed %d: invariants after differential run: %v", seed, err)
				}
			}
		})
	}
}
