package crashtest

// Self-tests of the harness machinery itself: the enumeration must visit
// every primitive exactly once per kind, distinguish the before-flush and
// after-flush crash states, and derive torn seeds deterministically.

import (
	"testing"

	"fptree/internal/scm"
)

// rawCells allocates a scratch block and returns a 3-cell write protocol:
// each completed cell is individually persisted, so the op has exactly three
// persist points and three fence points.
func rawCells(t *testing.T) (*scm.Pool, uint64, func() error) {
	t.Helper()
	pool := scm.NewPool(1<<20, scm.LatencyConfig{CacheBytes: -1})
	ptr, err := pool.AllocRoot(256)
	if err != nil {
		t.Fatal(err)
	}
	base := ptr.Offset
	op := func() error {
		for i := uint64(0); i < 3; i++ {
			pool.WriteU64(base+8*i, i+1)
			pool.Persist(base+8*i, 8)
		}
		return nil
	}
	return pool, base, op
}

func TestEnumerateVisitsEveryPersist(t *testing.T) {
	pool, base, op := rawCells(t)
	var steps []int64
	n := EveryPersist(t, pool, op, func(pt Point) error {
		steps = append(steps, pt.Step)
		// Crash fires BEFORE the Step-th flush: exactly the first Step-1
		// cells are durable.
		for i := int64(0); i < 3; i++ {
			got := pool.ReadU64(base + 8*uint64(i))
			want := uint64(0)
			if i < pt.Step-1 {
				want = uint64(i) + 1
			}
			if got != want {
				t.Fatalf("%v: cell %d = %d, want %d", pt, i, got, want)
			}
		}
		return nil
	})
	if n != 3 {
		t.Fatalf("persist enumeration visited %d points, want 3", n)
	}
	for i, s := range steps {
		if s != int64(i)+1 {
			t.Fatalf("steps = %v, want 1,2,3", steps)
		}
	}
}

func TestEnumerateVisitsEveryFence(t *testing.T) {
	pool, base, op := rawCells(t)
	n := EveryFence(t, pool, op, func(pt Point) error {
		// Fence crash fires AFTER the Step-th flush: the first Step cells
		// are durable.
		for i := int64(0); i < 3; i++ {
			got := pool.ReadU64(base + 8*uint64(i))
			want := uint64(0)
			if i < pt.Step {
				want = uint64(i) + 1
			}
			if got != want {
				t.Fatalf("%v: cell %d = %d, want %d", pt, i, got, want)
			}
		}
		return nil
	})
	if n != 3 {
		t.Fatalf("fence enumeration visited %d points, want 3", n)
	}
}

func TestEnumerateBothKindsSum(t *testing.T) {
	pool, _, op := rawCells(t)
	n := Enumerate(t, pool, Options{Persists: true, Fences: true}, op,
		func(pt Point) error { return nil })
	if n != 6 {
		t.Fatalf("combined enumeration visited %d points, want 6", n)
	}
}

func TestTornSeedDerivation(t *testing.T) {
	if tornSeed(1, "persist", 3) != tornSeed(1, "persist", 3) {
		t.Fatal("tornSeed is not deterministic")
	}
	seen := map[int64]bool{}
	for step := int64(1); step <= 100; step++ {
		seen[tornSeed(7, "persist", step)] = true
		seen[tornSeed(7, "fence", step)] = true
	}
	if len(seen) != 200 {
		t.Fatalf("tornSeed collided: %d distinct seeds from 200 points", len(seen))
	}
}

func TestCrashesFiltersOnlyInjectedCrash(t *testing.T) {
	crashed, err := Crashes(func() error { return nil })
	if crashed || err != nil {
		t.Fatalf("clean run reported crashed=%v err=%v", crashed, err)
	}
	crashed, err = Crashes(func() error { panic(scm.ErrInjectedCrash) })
	if !crashed || err != nil {
		t.Fatalf("injected crash reported crashed=%v err=%v", crashed, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	Crashes(func() error { panic("unrelated") })
}
