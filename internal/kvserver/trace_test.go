package kvserver

import (
	"testing"
	"time"

	"fptree/internal/obs"
	"fptree/internal/obs/trace"
)

// TestSlowOpAndTracing drives the server with an always-firing slow-op
// threshold and 1-in-1 span sampling, then checks all three observability
// surfaces at once: the always-on slow_ops counter and its event, and the
// sampled request + engine spans (the request span wraps the engine span of
// the same call, so both op families must appear).
func TestSlowOpAndTracing(t *testing.T) {
	p := pool()
	store, err := NewFPTreeCStore(p)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewEventRing(64)
	tr := trace.New(trace.Config{SampleEvery: 1, Costs: p.Stats(), Events: ring})
	srv, addr, err := ServeConfig("127.0.0.1:0", store, Config{
		Pool:            p,
		Events:          ring,
		Tracer:          tr,
		SlowOpThreshold: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if err := c.set("k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.get("k"); err != nil || !ok || v != "v" {
		t.Fatalf("get = %q,%v,%v", v, ok, err)
	}
	if found, err := c.delete("k"); err != nil || !found {
		t.Fatalf("delete = %v,%v", found, err)
	}

	if got := srv.Metrics().SlowOps.Load(); got < 3 {
		t.Fatalf("slow_ops = %d, want >= 3 with a 1ns threshold", got)
	}
	var slowEvents int
	for _, e := range ring.Events() {
		if e.Kind == "slow" {
			slowEvents++
		}
	}
	if slowEvents < 3 {
		t.Fatalf("slow events = %d, want >= 3", slowEvents)
	}

	spans, recorded, _ := tr.Spans()
	if recorded == 0 {
		t.Fatal("no spans recorded")
	}
	seen := map[string]bool{}
	for _, sp := range spans {
		seen[sp.Op.String()] = true
	}
	for _, want := range []string{"req_set", "req_get", "req_delete", "upsert", "find", "delete"} {
		if !seen[want] {
			t.Fatalf("no %s span; saw %v", want, seen)
		}
	}
}

// TestSlowOpDisabledByDefault: with no threshold configured the counter
// must never move.
func TestSlowOpDisabledByDefault(t *testing.T) {
	store, err := NewFPTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := ServeConfig("127.0.0.1:0", store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if err := c.set("k", "v"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().SlowOps.Load(); got != 0 {
		t.Fatalf("slow_ops = %d without a threshold, want 0", got)
	}
}
