package kvserver

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fptree/internal/obs"
	"fptree/internal/scm"
)

// TestMetricsEndpointEndToEnd drives the full memkv observability path
// in-process: FPTreeC store + server + obs HTTP endpoint, some protocol
// traffic, then a /metrics scrape that must be valid Prometheus exposition
// and contain the paper-claim series the acceptance criteria name.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	pool := scm.NewPool(64<<20, scm.LatencyConfig{})
	store, err := NewFPTreeCStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewEventRing(64)
	srv, addr, err := ServeConfig("127.0.0.1:0", store, Config{Pool: pool, Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)
	httpSrv, httpAddr, err := obs.Serve("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer httpSrv.Close()

	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key%03d", i)
		if err := c.set(key, "value"); err != nil {
			t.Fatalf("set %s: %v", key, err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, hit, err := c.get(fmt.Sprintf("key%03d", i)); err != nil || !hit {
			t.Fatalf("get key%03d: hit=%v err=%v", i, hit, err)
		}
	}

	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	if err := obs.ValidateExposition(strings.NewReader(exposition)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, exposition)
	}
	for _, series := range []string{
		"fptree_fingerprint_false_positives_total",
		"fptree_searches_total",
		"scm_flushes_total",
		"scm_fences_total",
		"htm_fallbacks_total",
		"memkv_cmd_set_total 200",
		"memkv_cmd_get_total 200",
		"memkv_get_latency_seconds_count 200",
		"memkv_set_latency_seconds_bucket",
	} {
		if !strings.Contains(exposition, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, exposition)
		}
	}
	// The workload flushed cache lines; the counter series must show it.
	snap := reg.Snapshot()
	if snap.Get("scm_flushes_total") == 0 {
		t.Fatal("scm_flushes_total is zero after 200 persisted sets")
	}
	if snap.Get("fptree_searches_total") == 0 {
		t.Fatal("fptree_searches_total is zero after 200 gets")
	}
}

func TestStatsDelta(t *testing.T) {
	before := map[string]string{
		"cmd_set": "10", "scm_flushes": "100", "engine": "FPTreeC", "gone": "1",
	}
	after := map[string]string{
		"cmd_set": "25", "scm_flushes": "180", "engine": "FPTreeC", "new": "5",
	}
	d := StatsDelta(before, after)
	if d["cmd_set"] != 15 || d["scm_flushes"] != 80 {
		t.Fatalf("delta = %v", d)
	}
	if _, ok := d["engine"]; ok {
		t.Fatal("non-numeric stat leaked into delta")
	}
	if _, ok := d["new"]; ok {
		t.Fatal("stat absent from before leaked into delta")
	}
	if _, ok := d["gone"]; ok {
		t.Fatal("stat absent from after leaked into delta")
	}
}

// TestMicrosecondsClampsNegative pins the stats rendering fix: a clock step
// must render as 0.0, not a negative latency.
func TestMicrosecondsClampsNegative(t *testing.T) {
	if got := microseconds(-5 * time.Microsecond); got != "0.0" {
		t.Fatalf("microseconds(-5us) = %q, want \"0.0\"", got)
	}
	if got := microseconds(1500 * time.Nanosecond); got != "1.5" {
		t.Fatalf("microseconds(1.5us) = %q", got)
	}
}
