package kvserver

// ShardedStore is the router of the sharded engine: the keyspace is
// hash-partitioned across N independent shard stores, each an FPTree over
// its own scm.Pool (its own arena file, allocator and occCC domain), so
// concurrent clients touching different shards share no synchronization at
// all — the contention Brown's HTM-template work shows dominating
// single-structure scaling simply has no object to form on. The router
// itself satisfies Store (and Checker, Syncer, the metrics and tracing
// hooks), so the protocol layer composes with it unchanged.

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"fptree/internal/core"
	"fptree/internal/htm"
	"fptree/internal/obs"
	"fptree/internal/obs/trace"
	"fptree/internal/scm"
)

// Syncer is the optional store interface for stores whose durable state can
// be made power-fail durable on demand; the sharded router fans Sync out to
// every shard pool so the memkv -sync ticker (and the shutdown path) cover
// the whole fleet.
type Syncer interface {
	Sync() error
}

// ShardedStore routes each key to one of N shard stores by consistent hash.
type ShardedStore struct {
	shards []Store
	pools  []*scm.Pool // len == len(shards); entries may be nil (e.g. hashmap shards)
}

// NewShardedStore builds a router over the given shard stores. pools[i] is
// the SCM pool behind shards[i] (nil for poolless stores); it powers the
// Sync/Close fan-out and the per-shard stats lines. pools may be nil when no
// shard has one.
func NewShardedStore(shards []Store, pools []*scm.Pool) (*ShardedStore, error) {
	if len(shards) < 1 {
		return nil, fmt.Errorf("kvserver: sharded store needs at least 1 shard")
	}
	if pools == nil {
		pools = make([]*scm.Pool, len(shards))
	}
	if len(pools) != len(shards) {
		return nil, fmt.Errorf("kvserver: %d shards but %d pools", len(shards), len(pools))
	}
	return &ShardedStore{shards: shards, pools: pools}, nil
}

// ShardFor returns the shard index serving key. The mapping is a consistent
// hash (FNV-1a 64 into Lamping-Veach jump hash): stable across process
// restarts for a fixed shard count — the property the shard arena files rely
// on — and moving only ~1/N of keys if the fleet is ever rehashed wider.
func (s *ShardedStore) ShardFor(key []byte) int {
	return jumpHash(fnv64a(key), len(s.shards))
}

func fnv64a(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key) //nolint:errcheck — fnv never fails
	return h.Sum64()
}

// jumpHash is the Lamping-Veach jump consistent hash: maps key to a bucket
// in [0, buckets) such that growing the bucket count relocates only the
// minimal fraction of keys.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// Shard returns shard store i (for tests and per-shard reporting).
func (s *ShardedStore) Shard(i int) Store { return s.shards[i] }

// Set routes to the key's shard.
func (s *ShardedStore) Set(key, value []byte) error {
	return s.shards[s.ShardFor(key)].Set(key, value)
}

// Get routes to the key's shard.
func (s *ShardedStore) Get(key []byte) ([]byte, bool) {
	return s.shards[s.ShardFor(key)].Get(key)
}

// Delete routes to the key's shard.
func (s *ShardedStore) Delete(key []byte) (bool, error) {
	return s.shards[s.ShardFor(key)].Delete(key)
}

// Name reports the shard engine and the fleet width, e.g. "FPTreeC[4 shards]".
func (s *ShardedStore) Name() string {
	return fmt.Sprintf("%s[%d shards]", s.shards[0].Name(), len(s.shards))
}

// Len sums the shard sizes (Checker). Shards that do not implement Checker
// contribute zero.
func (s *ShardedStore) Len() int {
	total := 0
	for _, sh := range s.shards {
		if c, ok := sh.(Checker); ok {
			total += c.Len()
		}
	}
	return total
}

// CheckInvariants fans out across the shards in parallel (each check walks
// its own tree, so they don't contend) and reports the first failure with
// its shard index.
func (s *ShardedStore) CheckInvariants() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		c, ok := sh.(Checker)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, c Checker) {
			defer wg.Done()
			if err := c.CheckInvariants(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Sync makes every shard pool power-fail durable. All shards are synced even
// if one fails; the first error wins.
func (s *ShardedStore) Sync() error {
	return scm.SyncPools(s.pools)
}

// Close closes every shard pool (clean-shutdown marker + sync + release).
func (s *ShardedStore) Close() error {
	return scm.ClosePools(s.pools)
}

// SetTracer hands the tracer to every shard that supports it.
func (s *ShardedStore) SetTracer(tr *trace.Tracer) {
	for _, sh := range s.shards {
		if ts, ok := sh.(interface{ SetTracer(*trace.Tracer) }); ok {
			ts.SetTracer(tr)
		}
	}
}

// engineStats is the optional store interface tree-backed shard stores
// implement so the router can aggregate their engine counters.
type engineStats interface {
	opStats() *core.OpStats
	htmStats() *htm.Stats
}

func (s cvarStore) opStats() *core.OpStats       { return &s.t.Ops }
func (s cvarStore) htmStats() *htm.Stats         { return &s.t.Stats }
func (s *lockedVarStore) opStats() *core.OpStats { return &s.t.Ops }
func (s *lockedVarStore) htmStats() *htm.Stats   { return &s.t.Stats }

// RegisterMetrics exposes the fleet on reg: the shard trees' operation and
// HTM counters summed under the canonical unlabeled names (so dashboards and
// the window_* ratio gauges read the same series regardless of shard count),
// per-shard labeled series for the counters contention diagnosis needs
// (searches, aborts, restarts, fallbacks), and a memkv_shard_len gauge per
// shard for key-distribution monitoring.
func (s *ShardedStore) RegisterMetrics(reg *obs.Registry) {
	ops := make([]*core.OpStats, 0, len(s.shards))
	hts := make([]*htm.Stats, 0, len(s.shards))
	for _, sh := range s.shards {
		es, ok := sh.(engineStats)
		if !ok {
			// Mixed or non-tree fleet: fall back to each shard's own
			// registration if it has one (names would collide across shards,
			// so only uniform tree fleets get aggregation).
			return
		}
		ops = append(ops, es.opStats())
		hts = append(hts, es.htmStats())
	}
	sum := func(fns []func() uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, fn := range fns {
				t += fn()
			}
			return t
		}
	}
	collect := func(get func(int) func() uint64) []func() uint64 {
		fns := make([]func() uint64, len(ops))
		for i := range ops {
			fns[i] = get(i)
		}
		return fns
	}
	agg := " (summed across shards)"
	reg.CounterFunc("fptree_searches_total", "completed in-leaf searches"+agg,
		sum(collect(func(i int) func() uint64 { return ops[i].Searches.Load })))
	reg.CounterFunc("fptree_key_probes_total", "keys dereferenced and compared during in-leaf searches"+agg,
		sum(collect(func(i int) func() uint64 { return ops[i].KeyProbes.Load })))
	reg.CounterFunc("fptree_fingerprint_compares_total", "fingerprint byte-compares against valid slots"+agg,
		sum(collect(func(i int) func() uint64 { return ops[i].FPCompares.Load })))
	reg.CounterFunc("fptree_fingerprint_hits_total", "fingerprint matches that forced a key dereference"+agg,
		sum(collect(func(i int) func() uint64 { return ops[i].FPHits.Load })))
	reg.CounterFunc("fptree_fingerprint_false_positives_total", "fingerprint matches on a differing key"+agg,
		sum(collect(func(i int) func() uint64 { return ops[i].FPFalsePositives.Load })))
	reg.CounterFunc("fptree_leaf_splits_total", "completed leaf splits"+agg,
		sum(collect(func(i int) func() uint64 { return ops[i].LeafSplits.Load })))
	reg.CounterFunc("fptree_inner_rebuilds_total", "DRAM inner-node reconstructions during recovery"+agg,
		sum(collect(func(i int) func() uint64 { return ops[i].InnerRebuilds.Load })))
	reg.CounterFunc("fptree_recovery_leaves_scanned_total", "persistent leaves scanned while rebuilding inner nodes"+agg,
		sum(collect(func(i int) func() uint64 { return ops[i].RecoveryLeaves.Load })))
	reg.CounterFunc("htm_aborts_total", "optimistic validation failures"+agg,
		sum(collect(func(i int) func() uint64 { return hts[i].Aborts.Load })))
	reg.CounterFunc("htm_restarts_total", "full operation restarts after an abort"+agg,
		sum(collect(func(i int) func() uint64 { return hts[i].Restarts.Load })))
	reg.CounterFunc("htm_fallbacks_total", "times the global fallback lock serialized a section"+agg,
		sum(collect(func(i int) func() uint64 { return hts[i].Fallbacks.Load })))
	for c := htm.AbortCause(0); c < htm.NumAbortCauses; c++ {
		c := c
		reg.CounterFunc("htm_aborts_"+c.String()+"_total",
			"conflict aborts attributed to the "+c.String()+" protocol step"+agg,
			sum(collect(func(i int) func() uint64 { return hts[i].ByCause[c].Load })))
	}
	for i := range s.shards {
		i := i
		lbl := obs.ShardLabel(i)
		reg.CounterFuncL("fptree_searches_total", lbl, "completed in-leaf searches", ops[i].Searches.Load)
		reg.CounterFuncL("fptree_leaf_splits_total", lbl, "completed leaf splits", ops[i].LeafSplits.Load)
		reg.CounterFuncL("htm_aborts_total", lbl, "optimistic validation failures", hts[i].Aborts.Load)
		reg.CounterFuncL("htm_restarts_total", lbl, "full operation restarts after an abort", hts[i].Restarts.Load)
		reg.CounterFuncL("htm_fallbacks_total", lbl, "times the global fallback lock serialized a section", hts[i].Fallbacks.Load)
		if c, ok := s.shards[i].(Checker); ok {
			reg.GaugeFuncL("memkv_shard_len", lbl, "live keys resident in this shard",
				func() float64 { return float64(c.Len()) })
		}
	}
	s.registerControllerMetrics(reg)
}

// ShardStat is the per-shard view behind the `stats shards` verbose form.
type ShardStat struct {
	Engine string
	Len    int
	Pool   *scm.Pool // nil when the shard has no SCM pool
}

// ShardStatser is the optional store interface the server uses to answer
// `stats shards`.
type ShardStatser interface {
	NumShards() int
	ShardStat(i int) ShardStat
}

// ShardStat returns the stats view of shard i.
func (s *ShardedStore) ShardStat(i int) ShardStat {
	st := ShardStat{Engine: s.shards[i].Name(), Pool: s.pools[i]}
	if c, ok := s.shards[i].(Checker); ok {
		st.Len = c.Len()
	}
	return st
}

// writeShardStats renders the `stats shards` per-shard lines.
func writeShardStats(w io.Writer, ss ShardStatser, eol string) {
	n := ss.NumShards()
	fmt.Fprintf(w, "STAT shards %d%s", n, eol)
	for i := 0; i < n; i++ {
		st := ss.ShardStat(i)
		pfx := fmt.Sprintf("shard%d_", i)
		fmt.Fprintf(w, "STAT %sengine %s%s", pfx, st.Engine, eol)
		fmt.Fprintf(w, "STAT %slen %d%s", pfx, st.Len, eol)
		if st.Pool == nil {
			continue
		}
		ps := st.Pool.Stats().Snapshot()
		stat := func(k string, v interface{}) { fmt.Fprintf(w, "STAT %s%s %v%s", pfx, k, v, eol) }
		stat("scm_pool_bytes", st.Pool.Size())
		stat("scm_reads", ps.Reads)
		stat("scm_writes", ps.Writes)
		stat("scm_flushes", ps.Flushes)
		stat("scm_fences", ps.Fences)
		stat("scm_allocs", ps.Allocs)
		stat("scm_syncs", ps.Syncs)
	}
}

// BuildShardStores constructs one store per pool by calling build(i) for
// every shard concurrently — each build may run a full crash recovery, and
// the paper's §6 recovery experiment (PR 5) showed those parallelize almost
// linearly, so a 4-shard reopen costs barely more than the widest shard.
// On any failure the first error (by shard index) is returned.
func BuildShardStores(n int, build func(i int) (Store, error)) ([]Store, error) {
	stores := make([]Store, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stores[i], errs[i] = build(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return stores, nil
}
