package kvserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// pipelineScript builds a deterministic burst of mixed commands — sets (some
// noreply), multi-gets, deletes (some noreply), protocol errors, version —
// followed by the expected response bytes. stats is excluded (its output is
// nondeterministic); quit terminates the script so the full response stream
// has a definite end.
func pipelineScript() (request, want string) {
	var req, exp strings.Builder
	for i := 0; i < 40; i++ {
		v := fmt.Sprintf("value-%02d", i)
		if i%3 == 0 {
			fmt.Fprintf(&req, "set k%02d 0 0 %d noreply\r\n%s\r\n", i, len(v), v)
		} else {
			fmt.Fprintf(&req, "set k%02d 0 0 %d\r\n%s\r\n", i, len(v), v)
			exp.WriteString("STORED\r\n")
		}
	}
	for i := 0; i < 40; i += 4 {
		fmt.Fprintf(&req, "get k%02d k%02d absent-%d\r\n", i, i+1, i)
		for j := i; j <= i+1; j++ {
			v := fmt.Sprintf("value-%02d", j)
			fmt.Fprintf(&exp, "VALUE k%02d 0 %d\r\n%s\r\n", j, len(v), v)
		}
		exp.WriteString("END\r\n")
	}
	req.WriteString("delete k00 noreply\r\n")
	req.WriteString("delete k01\r\n")
	exp.WriteString("DELETED\r\n")
	req.WriteString("delete k00\r\n")
	exp.WriteString("NOT_FOUND\r\n")
	req.WriteString("bogus command\r\n")
	exp.WriteString("ERROR\r\n")
	req.WriteString("get k00 k02\r\n")
	v := "value-02"
	fmt.Fprintf(&exp, "VALUE k02 0 %d\r\n%s\r\nEND\r\n", len(v), v)
	req.WriteString("version\r\n")
	exp.WriteString("VERSION " + Version + "\r\n")
	req.WriteString("quit\r\n")
	return req.String(), exp.String()
}

func runPipelineScript(t *testing.T, addr string) string {
	t.Helper()
	req, _ := pipelineScript()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	// quit closes the connection after the queued replies flush, so EOF
	// delimits the full response.
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	return string(got)
}

// TestPipelinedBurstByteForByte pins the pipelining contract: a single write
// carrying the whole command burst must produce exactly the replies of
// sequential execution, in command order, with noreply commands contributing
// nothing — and the sharded server must be byte-identical to the unsharded
// one, since routing must not reorder or reframe replies.
func TestPipelinedBurstByteForByte(t *testing.T) {
	_, want := pipelineScript()

	srv1, addr1, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()
	got1 := runPipelineScript(t, addr1)
	if got1 != want {
		t.Fatalf("unsharded response diverges:\ngot:  %q\nwant: %q", got1, want)
	}

	srv4, addr4, err := Serve("127.0.0.1:0", newShardedFPTreeC(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv4.Close()
	got4 := runPipelineScript(t, addr4)
	if got4 != got1 {
		t.Fatalf("sharded response diverges from unsharded:\nsharded:   %q\nunsharded: %q", got4, got1)
	}
}

// TestPipelineDeepBurst overflows the reply queue depth (pipelineDepth) with
// a burst of small gets while the client reads nothing until the end: the
// writer must drain under back-pressure without deadlock, and every reply
// must arrive in order.
func TestPipelineDeepBurst(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.store.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	const burst = 4 * pipelineDepth
	var req strings.Builder
	for i := 0; i < burst; i++ {
		req.WriteString("get k\r\n")
	}
	done := make(chan error, 1)
	go func() {
		_, err := conn.Write([]byte(req.String()))
		done <- err
	}()

	r := bufio.NewReader(conn)
	for i := 0; i < burst; i++ {
		for _, wantLine := range []string{"VALUE k 0 1", "v", "END"} {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("reply %d: %v", i, err)
			}
			if strings.TrimSpace(line) != wantLine {
				t.Fatalf("reply %d = %q, want %q", i, line, wantLine)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
