package kvserver

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"fptree/internal/htm"
	"fptree/internal/obs"
)

// TestAttachAdaptiveSharded: one controller per shard, each wired into its
// shard tree, and only concurrent stores get one.
func TestAttachAdaptiveSharded(t *testing.T) {
	ss := newShardedFPTreeC(t, 4)
	ctrls := AttachAdaptive(ss, htm.AdaptiveConfig{Floor: 3, Ceiling: 9})
	if len(ctrls) != 4 {
		t.Fatalf("attached %d controllers, want 4", len(ctrls))
	}
	for i, c := range ctrls {
		if got := ss.Shard(i).(controllerGetter).Controller(); got != c {
			t.Fatalf("shard %d: controller not installed", i)
		}
		if cfg := c.Config(); cfg.Floor != 3 || cfg.Ceiling != 9 {
			t.Fatalf("shard %d: config [%d,%d]", i, cfg.Floor, cfg.Ceiling)
		}
	}

	// Non-concurrent stores refuse: a controller only attaches where it
	// steers a live retry loop.
	hm := NewHashMapStore()
	if got := AttachAdaptive(hm, htm.AdaptiveConfig{}); got != nil {
		t.Fatalf("hashmap store accepted %d controllers", len(got))
	}
	lk, err := NewFPTreeStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	if got := AttachAdaptive(lk, htm.AdaptiveConfig{}); got != nil {
		t.Fatalf("locked single-threaded store accepted %d controllers", len(got))
	}
}

// TestAttachAdaptiveSingle: an unsharded concurrent store gets exactly one
// controller and its tree sees it.
func TestAttachAdaptiveSingle(t *testing.T) {
	st, err := NewFPTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	ctrls := AttachAdaptive(st, htm.AdaptiveConfig{})
	if len(ctrls) != 1 {
		t.Fatalf("attached %d controllers, want 1", len(ctrls))
	}
	if got := st.(controllerGetter).Controller(); got != ctrls[0] {
		t.Fatal("controller not installed on the tree")
	}
}

// TestShardedAdaptiveMetrics: with controllers attached, the router exposes
// the aggregate fallback/adaptation counters, the min-budget gauge, and the
// per-shard labeled budget/EWMA series, and serving traffic moves them.
func TestShardedAdaptiveMetrics(t *testing.T) {
	ss := newShardedFPTreeC(t, 2)
	ctrls := AttachAdaptive(ss, htm.AdaptiveConfig{AdaptEvery: 32})
	if len(ctrls) != 2 {
		t.Fatalf("attached %d controllers", len(ctrls))
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := ss.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, ok := ss.Get(k); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	reg := obs.NewRegistry()
	ss.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, series := range []string{
		"htm_adaptive_budget ",
		`htm_adaptive_budget{shard="0"}`,
		`htm_adaptive_abort_ewma{shard="1"}`,
		"htm_fallback_entries_total ",
		`htm_fallback_entries_total{shard="0"}`,
		"htm_adaptive_adaptations_total ",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("missing series %q in exposition:\n%s", series, out)
		}
	}
	var adapted uint64
	for _, c := range ctrls {
		adapted += c.Stats.Adaptations.Load()
	}
	if adapted == 0 {
		t.Fatal("no adaptation windows fired under 400 routed ops with AdaptEvery=32")
	}
}
