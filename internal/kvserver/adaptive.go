package kvserver

import (
	"fptree/internal/htm"
	"fptree/internal/obs"
)

// Adaptive concurrency plumbing: each shard is its own occCC domain, so each
// gets its own htm.AdaptiveController — abort storms on one hot shard shrink
// that shard's retry budget without costing the calm shards any optimism.

// controllerSetter and controllerGetter are the optional store interfaces
// tree-backed stores implement (the engine promotes SetController/Controller
// through the facades) so controllers attach without constructor plumbing.
type controllerSetter interface {
	SetController(*htm.AdaptiveController)
}

type controllerGetter interface {
	Controller() *htm.AdaptiveController
}

func (s cvarStore) SetController(c *htm.AdaptiveController) { s.t.SetController(c) }
func (s cvarStore) Controller() *htm.AdaptiveController     { return s.t.Controller() }

// AttachAdaptive installs one adaptive controller per shard of st (or one on
// an unsharded store) and returns the controllers it attached. Stores whose
// engine is not concurrent are skipped — a controller is only attached where
// it actually steers a retry loop, so the returned slice length is the number
// of live controllers. Call before the store serves traffic and before
// metrics registration.
func AttachAdaptive(st Store, cfg htm.AdaptiveConfig) []*htm.AdaptiveController {
	attach := func(sh Store) *htm.AdaptiveController {
		cs, ok := sh.(controllerSetter)
		if !ok {
			return nil
		}
		c := htm.NewAdaptiveController(cfg)
		cs.SetController(c)
		// The engine ignores controllers on single-threaded trees; only
		// report the ones that actually took.
		if cg, ok := sh.(controllerGetter); !ok || cg.Controller() != c {
			return nil
		}
		return c
	}
	if ss, ok := st.(*ShardedStore); ok {
		var out []*htm.AdaptiveController
		for _, sh := range ss.shards {
			if c := attach(sh); c != nil {
				out = append(out, c)
			}
		}
		return out
	}
	if c := attach(st); c != nil {
		return []*htm.AdaptiveController{c}
	}
	return nil
}

// registerControllerMetrics exposes the fleet's adaptive-controller state on
// reg: event counters summed under the canonical unlabeled names, the
// unlabeled budget gauge as the minimum across shards (the most contended
// shard — the one an operator alarms on), and per-shard labeled series for
// the budget, EWMA, and fallback entries.
func (s *ShardedStore) registerControllerMetrics(reg *obs.Registry) {
	var ctrls []*htm.AdaptiveController
	for _, sh := range s.shards {
		cg, ok := sh.(controllerGetter)
		if !ok || cg.Controller() == nil {
			return // uniform fleets only, like the engine-counter aggregation
		}
		ctrls = append(ctrls, cg.Controller())
	}
	sum := func(get func(*htm.AdaptiveController) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, c := range ctrls {
				t += get(c)
			}
			return t
		}
	}
	agg := " (summed across shards)"
	reg.CounterFunc("htm_fallback_entries_total", "writer entries into the global fallback lock"+agg,
		sum(func(c *htm.AdaptiveController) uint64 { return c.Stats.FallbackEntries.Load() }))
	reg.CounterFunc("htm_adaptive_adaptations_total", "adaptation windows evaluated"+agg,
		sum(func(c *htm.AdaptiveController) uint64 { return c.Stats.Adaptations.Load() }))
	reg.CounterFunc("htm_adaptive_budget_cuts_total", "adaptation windows that shrank a retry budget"+agg,
		sum(func(c *htm.AdaptiveController) uint64 { return c.Stats.BudgetCuts.Load() }))
	reg.CounterFunc("htm_adaptive_budget_raises_total", "adaptation windows that grew a retry budget"+agg,
		sum(func(c *htm.AdaptiveController) uint64 { return c.Stats.BudgetRaises.Load() }))
	reg.GaugeFunc("htm_adaptive_budget", "minimum live retry budget across shards (most contended shard)",
		func() float64 {
			min := ctrls[0].Budget()
			for _, c := range ctrls[1:] {
				if b := c.Budget(); b < min {
					min = b
				}
			}
			return float64(min)
		})
	for i, c := range ctrls {
		c := c
		lbl := obs.ShardLabel(i)
		reg.GaugeFuncL("htm_adaptive_budget", lbl, "live optimistic retry budget",
			func() float64 { return float64(c.Budget()) })
		reg.GaugeFuncL("htm_adaptive_abort_ewma", lbl, "smoothed conflict-aborts-per-op ratio",
			c.AbortEWMA)
		reg.CounterFuncL("htm_fallback_entries_total", lbl, "writer entries into the global fallback lock",
			c.Stats.FallbackEntries.Load)
	}
}
