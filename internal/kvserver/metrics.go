package kvserver

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"fptree/internal/obs"
)

// Histogram is the lock-free power-of-two latency histogram. The
// implementation originated in this package and was generalized into
// internal/obs so every subsystem shares it; the alias keeps the kvserver
// API unchanged.
type Histogram = obs.Histogram

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot = obs.HistogramSnapshot

// Metrics aggregates the server's per-operation counters, byte counters,
// connection gauges and latency histograms. All fields are updated atomically
// and may be read while the server is running; the `stats` protocol command
// and Server.DumpStats render them in memcached STAT form.
type Metrics struct {
	start time.Time

	CmdGet     atomic.Uint64 // get keys processed (per key, as memcached counts)
	CmdSet     atomic.Uint64
	CmdDelete  atomic.Uint64
	CmdStats   atomic.Uint64
	CmdVersion atomic.Uint64

	GetHits      atomic.Uint64
	GetMisses    atomic.Uint64
	DeleteHits   atomic.Uint64
	DeleteMisses atomic.Uint64

	StoreErrors    atomic.Uint64 // engine-level Set/Delete failures
	ProtocolErrors atomic.Uint64 // malformed commands, bad framing, unknown verbs
	SlowOps        atomic.Uint64 // requests over Config.SlowOpThreshold

	BytesRead    atomic.Uint64
	BytesWritten atomic.Uint64

	CurrConnections     atomic.Int64
	TotalConnections    atomic.Uint64
	RejectedConnections atomic.Uint64

	GetLatency    Histogram
	SetLatency    Histogram
	DeleteLatency Histogram
}

// writeTo renders the metrics as "STAT <name> <value>" lines terminated by
// eol (the protocol uses "\r\n", console dumps "\n").
func (m *Metrics) writeTo(w io.Writer, eol string) {
	stat := func(k string, v interface{}) { fmt.Fprintf(w, "STAT %s %v%s", k, v, eol) }
	if !m.start.IsZero() {
		stat("uptime", int64(time.Since(m.start).Seconds()))
	}
	stat("curr_connections", m.CurrConnections.Load())
	stat("total_connections", m.TotalConnections.Load())
	stat("rejected_connections", m.RejectedConnections.Load())
	stat("cmd_get", m.CmdGet.Load())
	stat("cmd_set", m.CmdSet.Load())
	stat("cmd_delete", m.CmdDelete.Load())
	stat("cmd_stats", m.CmdStats.Load())
	stat("cmd_version", m.CmdVersion.Load())
	stat("get_hits", m.GetHits.Load())
	stat("get_misses", m.GetMisses.Load())
	stat("delete_hits", m.DeleteHits.Load())
	stat("delete_misses", m.DeleteMisses.Load())
	stat("store_errors", m.StoreErrors.Load())
	stat("protocol_errors", m.ProtocolErrors.Load())
	stat("slow_ops", m.SlowOps.Load())
	stat("bytes_read", m.BytesRead.Load())
	stat("bytes_written", m.BytesWritten.Load())
	hist := func(name string, h *Histogram) {
		s := h.Snapshot()
		stat(name+"_count", s.Count)
		stat(name+"_mean_us", microseconds(s.Mean))
		stat(name+"_p50_us", microseconds(s.P50))
		stat(name+"_p95_us", microseconds(s.P95))
		stat(name+"_p99_us", microseconds(s.P99))
		stat(name+"_max_us", microseconds(s.Max))
	}
	hist("get_latency", &m.GetLatency)
	hist("set_latency", &m.SetLatency)
	hist("delete_latency", &m.DeleteLatency)
}

func microseconds(d time.Duration) string {
	if d < 0 {
		// A negative duration can only come from a clock step between the
		// caller's two time reads; render it as zero rather than "-0.0".
		d = 0
	}
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

// RegisterMetrics exposes the server metrics on reg under the given prefix
// (conventionally "memkv"): one counter per command/outcome counter, gauges
// for the connection counts, and the three latency histograms (rendered as
// full Prometheus histograms by the /metrics endpoint).
func (m *Metrics) RegisterMetrics(reg *obs.Registry, prefix string) {
	counter := func(suffix, help string, c *atomic.Uint64) {
		reg.CounterFunc(prefix+"_"+suffix, help, c.Load)
	}
	counter("cmd_get_total", "get keys processed", &m.CmdGet)
	counter("cmd_set_total", "set commands processed", &m.CmdSet)
	counter("cmd_delete_total", "delete commands processed", &m.CmdDelete)
	counter("cmd_stats_total", "stats commands processed", &m.CmdStats)
	counter("cmd_version_total", "version commands processed", &m.CmdVersion)
	counter("get_hits_total", "get keys found", &m.GetHits)
	counter("get_misses_total", "get keys not found", &m.GetMisses)
	counter("delete_hits_total", "delete keys found", &m.DeleteHits)
	counter("delete_misses_total", "delete keys not found", &m.DeleteMisses)
	counter("store_errors_total", "engine-level Set/Delete failures", &m.StoreErrors)
	counter("protocol_errors_total", "malformed commands, bad framing, unknown verbs", &m.ProtocolErrors)
	counter("slow_ops_total", "requests over the slow-op threshold", &m.SlowOps)
	counter("bytes_read_total", "raw bytes read from clients", &m.BytesRead)
	counter("bytes_written_total", "raw bytes written to clients", &m.BytesWritten)
	counter("connections_total", "connections accepted", &m.TotalConnections)
	counter("connections_rejected_total", "connections refused at MaxConns", &m.RejectedConnections)
	reg.GaugeFunc(prefix+"_curr_connections", "open client connections",
		func() float64 { return float64(m.CurrConnections.Load()) })
	reg.RegisterHistogram(prefix+"_get_latency_seconds", "get command latency", &m.GetLatency)
	reg.RegisterHistogram(prefix+"_set_latency_seconds", "set command latency", &m.SetLatency)
	reg.RegisterHistogram(prefix+"_delete_latency_seconds", "delete command latency", &m.DeleteLatency)
}

// countingReader/countingWriter meter the raw bytes moving through a
// connection, beneath the bufio layers.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

type countingWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	return n, err
}
