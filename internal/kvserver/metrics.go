package kvserver

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free latency histogram with power-of-two nanosecond
// buckets: bucket b counts observations whose nanosecond value has b
// significant bits (upper bound 2^b - 1 ns). Forty buckets cover sub-ns to
// ~9 minutes, far beyond any realistic request latency.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
	buckets [histogramBuckets]atomic.Uint64
}

const histogramBuckets = 40

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	b := bits.Len64(ns)
	if b >= histogramBuckets {
		b = histogramBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram. Quantiles are
// upper bounds of the containing power-of-two bucket, so they are conservative
// (never under-report).
type HistogramSnapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histogramBuckets]uint64
	total := uint64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Max: time.Duration(h.maxNS.Load())}
	if total == 0 {
		return s
	}
	s.Mean = time.Duration(h.sumNS.Load() / total)
	quantile := func(q float64) time.Duration {
		target := uint64(q * float64(total))
		if target == 0 {
			target = 1
		}
		seen := uint64(0)
		for b, c := range counts {
			seen += c
			if seen >= target {
				if b == 0 {
					return 0
				}
				return time.Duration(uint64(1)<<b - 1)
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P95 = quantile(0.95)
	s.P99 = quantile(0.99)
	return s
}

// Metrics aggregates the server's per-operation counters, byte counters,
// connection gauges and latency histograms. All fields are updated atomically
// and may be read while the server is running; the `stats` protocol command
// and Server.DumpStats render them in memcached STAT form.
type Metrics struct {
	start time.Time

	CmdGet     atomic.Uint64 // get keys processed (per key, as memcached counts)
	CmdSet     atomic.Uint64
	CmdDelete  atomic.Uint64
	CmdStats   atomic.Uint64
	CmdVersion atomic.Uint64

	GetHits      atomic.Uint64
	GetMisses    atomic.Uint64
	DeleteHits   atomic.Uint64
	DeleteMisses atomic.Uint64

	StoreErrors    atomic.Uint64 // engine-level Set/Delete failures
	ProtocolErrors atomic.Uint64 // malformed commands, bad framing, unknown verbs

	BytesRead    atomic.Uint64
	BytesWritten atomic.Uint64

	CurrConnections     atomic.Int64
	TotalConnections    atomic.Uint64
	RejectedConnections atomic.Uint64

	GetLatency    Histogram
	SetLatency    Histogram
	DeleteLatency Histogram
}

// writeTo renders the metrics as "STAT <name> <value>" lines terminated by
// eol (the protocol uses "\r\n", console dumps "\n").
func (m *Metrics) writeTo(w io.Writer, eol string) {
	stat := func(k string, v interface{}) { fmt.Fprintf(w, "STAT %s %v%s", k, v, eol) }
	if !m.start.IsZero() {
		stat("uptime", int64(time.Since(m.start).Seconds()))
	}
	stat("curr_connections", m.CurrConnections.Load())
	stat("total_connections", m.TotalConnections.Load())
	stat("rejected_connections", m.RejectedConnections.Load())
	stat("cmd_get", m.CmdGet.Load())
	stat("cmd_set", m.CmdSet.Load())
	stat("cmd_delete", m.CmdDelete.Load())
	stat("cmd_stats", m.CmdStats.Load())
	stat("cmd_version", m.CmdVersion.Load())
	stat("get_hits", m.GetHits.Load())
	stat("get_misses", m.GetMisses.Load())
	stat("delete_hits", m.DeleteHits.Load())
	stat("delete_misses", m.DeleteMisses.Load())
	stat("store_errors", m.StoreErrors.Load())
	stat("protocol_errors", m.ProtocolErrors.Load())
	stat("bytes_read", m.BytesRead.Load())
	stat("bytes_written", m.BytesWritten.Load())
	hist := func(name string, h *Histogram) {
		s := h.Snapshot()
		stat(name+"_count", s.Count)
		stat(name+"_mean_us", microseconds(s.Mean))
		stat(name+"_p50_us", microseconds(s.P50))
		stat(name+"_p95_us", microseconds(s.P95))
		stat(name+"_p99_us", microseconds(s.P99))
		stat(name+"_max_us", microseconds(s.Max))
	}
	hist("get_latency", &m.GetLatency)
	hist("set_latency", &m.SetLatency)
	hist("delete_latency", &m.DeleteLatency)
}

func microseconds(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

// countingReader/countingWriter meter the raw bytes moving through a
// connection, beneath the bufio layers.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

type countingWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	return n, err
}
