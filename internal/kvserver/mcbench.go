package kvserver

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// BenchResult reports one mc-benchmark phase.
type BenchResult struct {
	Store  string
	SetOps float64 // SET requests per second
	GetOps float64 // GET requests per second
}

// RunMCBenchmark is the in-process equivalent of the paper's mc-benchmark:
// clients connections issue ops SET requests (round-robin over the
// connections) followed by ops GET requests, against a server at addr.
func RunMCBenchmark(addr string, clients, ops, valueSize int) (BenchResult, error) {
	conns := make([]*mcConn, clients)
	for i := range conns {
		c, err := dialMC(addr)
		if err != nil {
			return BenchResult{}, err
		}
		conns[i] = c
		defer c.close()
	}
	val := strings.Repeat("v", valueSize)

	phase := func(op func(c *mcConn, i int) error) (float64, error) {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		per := ops / clients
		start := time.Now()
		for ci, c := range conns {
			wg.Add(1)
			go func(c *mcConn, ci int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := op(c, ci*per+i); err != nil {
						errs <- err
						return
					}
				}
			}(c, ci)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return float64(per*clients) / time.Since(start).Seconds(), nil
	}

	setRate, err := phase(func(c *mcConn, i int) error {
		return c.set(fmt.Sprintf("memtier-%08d", i), val)
	})
	if err != nil {
		return BenchResult{}, err
	}
	getRate, err := phase(func(c *mcConn, i int) error {
		_, _, err := c.get(fmt.Sprintf("memtier-%08d", i))
		return err
	})
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{SetOps: setRate, GetOps: getRate}, nil
}

// mcConn is a tiny memcached text-protocol client.
type mcConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dialMC(addr string) (*mcConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &mcConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

func (c *mcConn) close() { c.conn.Close() }

func (c *mcConn) set(key, value string) error {
	fmt.Fprintf(c.w, "set %s 0 0 %d\r\n%s\r\n", key, len(value), value)
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.HasPrefix(line, "STORED") {
		return fmt.Errorf("set %s: %q", key, line)
	}
	return nil
}

func (c *mcConn) get(key string) (string, bool, error) {
	fmt.Fprintf(c.w, "get %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return "", false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", false, err
	}
	if strings.HasPrefix(line, "END") {
		return "", false, nil
	}
	if !strings.HasPrefix(line, "VALUE ") {
		return "", false, fmt.Errorf("get %s: %q", key, line)
	}
	var k string
	var flags, n int
	if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &k, &flags, &n); err != nil {
		return "", false, err
	}
	data := make([]byte, n+2)
	if _, err := readFull(c.r, data); err != nil {
		return "", false, err
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return "", false, err
	}
	if !strings.HasPrefix(end, "END") {
		return "", false, fmt.Errorf("get %s: missing END: %q", key, end)
	}
	return string(data[:n]), true, nil
}
