package kvserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// BenchResult reports one mc-benchmark run.
type BenchResult struct {
	Store        string
	SetOps       float64 // SET requests per second (completed ops only)
	GetOps       float64 // GET requests per second (completed ops only)
	SetCompleted uint64  // SET requests that finished successfully
	GetCompleted uint64  // GET requests that finished successfully
	SetLatency   HistogramSnapshot
	GetLatency   HistogramSnapshot
}

// RunMCBenchmark is the in-process equivalent of the paper's mc-benchmark:
// clients connections issue ops SET requests (split over the connections,
// remainder included) followed by ops GET requests, against a server at addr.
func RunMCBenchmark(addr string, clients, ops, valueSize int) (BenchResult, error) {
	return RunMCBenchmarkTimeout(addr, clients, ops, valueSize, 0)
}

// RunMCBenchmarkTimeout is RunMCBenchmark with a per-request I/O deadline on
// every client connection (0 disables deadlines).
func RunMCBenchmarkTimeout(addr string, clients, ops, valueSize int, ioTimeout time.Duration) (BenchResult, error) {
	if clients < 1 {
		clients = 1
	}
	conns := make([]*mcConn, clients)
	for i := range conns {
		c, err := dialMC(addr)
		if err != nil {
			return BenchResult{}, err
		}
		c.timeout = ioTimeout
		conns[i] = c
		defer c.close()
	}
	val := strings.Repeat("v", valueSize)

	// phase spreads ops over the connections (the first ops%clients
	// connections take one extra so nothing is dropped), runs them, and
	// computes the rate from the ops that actually completed — a goroutine
	// that errors mid-phase stops contributing instead of being counted.
	phase := func(hist *Histogram, op func(c *mcConn, i int) error) (float64, uint64, error) {
		var wg sync.WaitGroup
		var completed atomic.Uint64
		errs := make(chan error, clients)
		per, rem := ops/clients, ops%clients
		next := 0
		start := time.Now()
		for ci, c := range conns {
			n := per
			if ci < rem {
				n++
			}
			base := next
			next += n
			wg.Add(1)
			go func(c *mcConn, base, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					t0 := time.Now()
					if err := op(c, base+i); err != nil {
						errs <- err
						return
					}
					hist.Observe(time.Since(t0))
					completed.Add(1)
				}
			}(c, base, n)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		close(errs)
		err := <-errs // nil if no goroutine failed
		return float64(completed.Load()) / elapsed, completed.Load(), err
	}

	var res BenchResult
	var setHist, getHist Histogram
	rate, done, err := phase(&setHist, func(c *mcConn, i int) error {
		return c.set(fmt.Sprintf("memtier-%08d", i), val)
	})
	if err != nil {
		return BenchResult{}, err
	}
	res.SetOps, res.SetCompleted, res.SetLatency = rate, done, setHist.Snapshot()

	rate, done, err = phase(&getHist, func(c *mcConn, i int) error {
		_, _, err := c.get(fmt.Sprintf("memtier-%08d", i))
		return err
	})
	if err != nil {
		return BenchResult{}, err
	}
	res.GetOps, res.GetCompleted, res.GetLatency = rate, done, getHist.Snapshot()
	return res, nil
}

// FetchServerStats dials addr and returns the server's `stats` output as a
// name → value map.
func FetchServerStats(addr string, timeout time.Duration) (map[string]string, error) {
	c, err := dialMC(addr)
	if err != nil {
		return nil, err
	}
	defer c.close()
	c.timeout = timeout
	return c.stats()
}

// FetchShardStats dials addr and returns the server's `stats shards` output
// (the per-shard verbose form a sharded server answers) as a name → value
// map. It fails against an unsharded server.
func FetchShardStats(addr string, timeout time.Duration) (map[string]string, error) {
	c, err := dialMC(addr)
	if err != nil {
		return nil, err
	}
	defer c.close()
	c.timeout = timeout
	return c.statsCmd("stats shards")
}

// ShardLens extracts the per-shard key counts (shard<i>_len) from a `stats
// shards` map, index-ordered. It returns nil if the map lacks a shards line.
func ShardLens(stats map[string]string) []uint64 {
	n, err := strconv.Atoi(stats["shards"])
	if err != nil || n < 1 {
		return nil
	}
	lens := make([]uint64, n)
	for i := 0; i < n; i++ {
		lens[i], _ = strconv.ParseUint(stats[fmt.Sprintf("shard%d_len", i)], 10, 64)
	}
	return lens
}

// StatsDelta returns after-minus-before for every stat whose values in both
// maps parse as numbers (uptime, counters, the scm_* lines); non-numeric
// stats (version, engine) and stats absent from either map are dropped.
// Fetch the server's stats before and after a run and diff them to attribute
// SCM traffic and command counts to that run alone.
func StatsDelta(before, after map[string]string) map[string]float64 {
	delta := make(map[string]float64, len(after))
	for k, av := range after {
		bv, ok := before[k]
		if !ok {
			continue
		}
		a, errA := strconv.ParseFloat(av, 64)
		b, errB := strconv.ParseFloat(bv, 64)
		if errA != nil || errB != nil {
			continue
		}
		delta[k] = a - b
	}
	return delta
}

// FormatStats renders a stats map sorted by name, one "name value" per line.
func FormatStats(stats map[string]string) string {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s\n", k, stats[k])
	}
	return b.String()
}

// mcConn is a tiny memcached text-protocol client.
type mcConn struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration // per-request I/O deadline; 0 = none
}

func dialMC(addr string) (*mcConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &mcConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

func (c *mcConn) close() { c.conn.Close() }

// arm sets the I/O deadline for the next request/response exchange.
func (c *mcConn) arm() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

func (c *mcConn) set(key, value string) error {
	c.arm()
	fmt.Fprintf(c.w, "set %s 0 0 %d\r\n%s\r\n", key, len(value), value)
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.HasPrefix(line, "STORED") {
		return fmt.Errorf("set %s: %q", key, line)
	}
	return nil
}

// setNoreply issues a fire-and-forget set; the server sends no response, so
// consecutive calls pipeline without a round-trip each.
func (c *mcConn) setNoreply(key, value string) error {
	c.arm()
	fmt.Fprintf(c.w, "set %s 0 0 %d noreply\r\n%s\r\n", key, len(value), value)
	return c.w.Flush()
}

func (c *mcConn) get(key string) (string, bool, error) {
	c.arm()
	fmt.Fprintf(c.w, "get %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return "", false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", false, err
	}
	if strings.HasPrefix(line, "END") {
		return "", false, nil
	}
	if !strings.HasPrefix(line, "VALUE ") {
		return "", false, fmt.Errorf("get %s: %q", key, line)
	}
	var k string
	var flags, n int
	if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &k, &flags, &n); err != nil {
		return "", false, err
	}
	data := make([]byte, n+2)
	if _, err := io.ReadFull(c.r, data); err != nil {
		return "", false, err
	}
	end, err := c.r.ReadString('\n')
	if err != nil {
		return "", false, err
	}
	if !strings.HasPrefix(end, "END") {
		return "", false, fmt.Errorf("get %s: missing END: %q", key, end)
	}
	return string(data[:n]), true, nil
}

func (c *mcConn) delete(key string) (bool, error) {
	c.arm()
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	switch {
	case strings.HasPrefix(line, "DELETED"):
		return true, nil
	case strings.HasPrefix(line, "NOT_FOUND"):
		return false, nil
	}
	return false, fmt.Errorf("delete %s: %q", key, line)
}

func (c *mcConn) version() (string, error) {
	c.arm()
	fmt.Fprintf(c.w, "version\r\n")
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, "VERSION ") {
		return "", fmt.Errorf("version: %q", line)
	}
	return strings.TrimSpace(strings.TrimPrefix(line, "VERSION ")), nil
}

// stats issues the memcached stats command and returns the STAT lines as a
// name → value map.
func (c *mcConn) stats() (map[string]string, error) {
	return c.statsCmd("stats")
}

// statsCmd issues a stats-family command ("stats", "stats shards") and
// returns the STAT lines as a name → value map.
func (c *mcConn) statsCmd(cmd string) (map[string]string, error) {
	c.arm()
	fmt.Fprintf(c.w, "%s\r\n", cmd)
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := map[string]string{}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			return out, nil
		}
		if line == "ERROR" {
			return nil, fmt.Errorf("%s: server answered ERROR (not a sharded server?)", cmd)
		}
		// Values may contain spaces (e.g. engine "FPTreeC[4 shards]"), so
		// split into exactly three fields and keep the rest verbatim.
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 || parts[0] != "STAT" {
			return nil, fmt.Errorf("stats: bad line %q", line)
		}
		out[parts[1]] = parts[2]
	}
}
