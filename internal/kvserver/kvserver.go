// Package kvserver is the memcached integration of Section 6.4: a TCP
// key-value cache speaking a subset of the memcached text protocol
// (get/set/delete/stats/version), whose internal hash table is replaced by
// the persistent trees under test. As in the paper, full string keys are
// stored in the tree (not their hashes), and the concurrent trees service
// requests in parallel while the single-threaded trees serialize behind a
// global lock.
package kvserver

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fptree/internal/core"
	"fptree/internal/nvtree"
	"fptree/internal/obs"
	"fptree/internal/obs/trace"
	"fptree/internal/scm"
)

// Version is reported by the memcached `version` command.
const Version = "fptree-memkv/1.1"

// Store is the pluggable storage engine behind the server.
type Store interface {
	Set(key, value []byte) error
	Get(key []byte) ([]byte, bool)
	Delete(key []byte) (bool, error)
	Name() string
}

// MaxValueSize bounds stored values (they are stored inline in the trees'
// fixed-size value slots with a 2-byte length prefix).
const MaxValueSize = 120

const slotSize = MaxValueSize + 2

// ErrValueTooLarge is returned by Store.Set when the value does not fit in
// the trees' inline value slots.
var ErrValueTooLarge = errors.New("kvserver: value exceeds MaxValueSize")

func encodeVal(v []byte) ([]byte, error) {
	if len(v) > MaxValueSize {
		return nil, ErrValueTooLarge
	}
	buf := make([]byte, slotSize)
	buf[0] = byte(len(v))
	buf[1] = byte(len(v) >> 8)
	copy(buf[2:], v)
	return buf, nil
}

func decodeVal(buf []byte) []byte {
	if len(buf) < 2 {
		return nil
	}
	n := int(buf[0]) | int(buf[1])<<8
	if n > len(buf)-2 {
		n = len(buf) - 2
	}
	return buf[2 : 2+n]
}

// --- stores -----------------------------------------------------------------

// Checker is the optional store interface for post-recovery validation:
// stores backed by a persistent tree report their size and can verify the
// tree's structural invariants. The transient hash map does not implement it.
type Checker interface {
	Len() int
	CheckInvariants() error
}

// NewFPTreeCStore backs the cache with the concurrent FPTree.
func NewFPTreeCStore(pool *scm.Pool) (Store, error) {
	t, err := core.CCreateVar(pool, core.Config{LeafCap: 56, InnerFanout: 64, ValueSize: slotSize})
	if err != nil {
		return nil, err
	}
	return cvarStore{t}, nil
}

// OpenFPTreeCStore recovers a concurrent-FPTree store from an arena that
// already holds one (a reopened -data file); workers tunes the parallel
// recovery leaf scan.
func OpenFPTreeCStore(pool *scm.Pool, workers int) (Store, error) {
	t, err := core.COpenVar(pool, core.RecoveryOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	return cvarStore{t}, nil
}

type cvarStore struct{ t *core.CVarTree }

func (s cvarStore) Set(k, v []byte) error {
	buf, err := encodeVal(v)
	if err != nil {
		return err
	}
	return s.t.Upsert(k, buf)
}
func (s cvarStore) Get(k []byte) ([]byte, bool) {
	v, ok := s.t.Find(k)
	if !ok {
		return nil, false
	}
	return decodeVal(v), true
}
func (s cvarStore) Delete(k []byte) (bool, error)         { return s.t.Delete(k) }
func (s cvarStore) Name() string                          { return "FPTreeC" }
func (s cvarStore) Len() int                              { return s.t.Len() }
func (s cvarStore) CheckInvariants() error                { return s.t.CheckInvariants() }
func (s cvarStore) RegisterMetrics(reg *obs.Registry)     { s.t.RegisterMetrics(reg) }
func (s cvarStore) SetTracer(tr *trace.Tracer)            { s.t.SetTracer(tr) }
func (s *lockedVarStore) RegisterMetrics(r *obs.Registry) { s.t.RegisterMetrics(r) }
func (s *lockedVarStore) SetTracer(tr *trace.Tracer)      { s.t.SetTracer(tr) }

// NewFPTreeStore backs the cache with the single-threaded FPTree behind a
// global lock (the paper's non-concurrent configuration).
func NewFPTreeStore(pool *scm.Pool) (Store, error) {
	t, err := core.CreateVar(pool, core.Config{LeafCap: 56, InnerFanout: 2048, GroupSize: 8, ValueSize: slotSize})
	if err != nil {
		return nil, err
	}
	return &lockedVarStore{t: t, name: "FPTree"}, nil
}

// NewPTreeStore backs the cache with the single-threaded PTree.
func NewPTreeStore(pool *scm.Pool) (Store, error) {
	t, err := core.CreateVar(pool, core.Config{Variant: core.VariantPTree, LeafCap: 32, InnerFanout: 256, ValueSize: slotSize})
	if err != nil {
		return nil, err
	}
	return &lockedVarStore{t: t, name: "PTree"}, nil
}

// OpenFPTreeStore recovers a single-threaded FPTree store from an arena that
// already holds one. The tree's variant and layout come from the persistent
// metadata, not from the constructor's defaults.
func OpenFPTreeStore(pool *scm.Pool, workers int) (Store, error) {
	return openLockedVarStore(pool, workers, "FPTree")
}

// OpenPTreeStore recovers a single-threaded PTree store.
func OpenPTreeStore(pool *scm.Pool, workers int) (Store, error) {
	return openLockedVarStore(pool, workers, "PTree")
}

func openLockedVarStore(pool *scm.Pool, workers int, name string) (Store, error) {
	t, err := core.OpenVar(pool, core.RecoveryOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	return &lockedVarStore{t: t, name: name}, nil
}

type lockedVarStore struct {
	mu   sync.Mutex
	t    *core.VarTree
	name string
}

func (s *lockedVarStore) Set(k, v []byte) error {
	buf, err := encodeVal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Upsert(k, buf)
}

func (s *lockedVarStore) Get(k []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.t.Find(k)
	if !ok {
		return nil, false
	}
	return decodeVal(v), true
}

func (s *lockedVarStore) Delete(k []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Delete(k)
}

func (s *lockedVarStore) Name() string { return s.name }

func (s *lockedVarStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Len()
}

func (s *lockedVarStore) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.CheckInvariants()
}

// NewNVTreeCStore backs the cache with the concurrent NV-Tree.
func NewNVTreeCStore(pool *scm.Pool) (Store, error) {
	t, err := nvtree.CNewVar(pool, nvtree.Config{LeafCap: 32, InnerCap: 128, ValueSize: slotSize})
	if err != nil {
		return nil, err
	}
	return nvStore{t}, nil
}

// OpenNVTreeCStore recovers a concurrent NV-Tree store from an arena that
// already holds one.
func OpenNVTreeCStore(pool *scm.Pool) (Store, error) {
	t, err := nvtree.COpenVar(pool, 128)
	if err != nil {
		return nil, err
	}
	return nvStore{t}, nil
}

type nvStore struct{ t *nvtree.CVarTree }

func (s nvStore) Set(k, v []byte) error {
	buf, err := encodeVal(v)
	if err != nil {
		return err
	}
	return s.t.Upsert(k, buf)
}
func (s nvStore) Get(k []byte) ([]byte, bool) {
	v, ok := s.t.Find(k)
	if !ok {
		return nil, false
	}
	return decodeVal(v), true
}
func (s nvStore) Delete(k []byte) (bool, error) { return s.t.Delete(k) }
func (s nvStore) Name() string                  { return "NV-TreeC" }
func (s nvStore) Len() int                      { return s.t.Len() }
func (s nvStore) CheckInvariants() error        { return s.t.CheckInvariants() }

// NewHashMapStore is vanilla memcached's transient hash table. It enforces
// the same MaxValueSize contract as the tree stores so every engine is
// interchangeable behind the protocol.
func NewHashMapStore() Store {
	return &mapStore{m: map[string][]byte{}}
}

type mapStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

func (s *mapStore) Set(k, v []byte) error {
	if len(v) > MaxValueSize {
		return ErrValueTooLarge
	}
	s.mu.Lock()
	s.m[string(k)] = append([]byte(nil), v...)
	s.mu.Unlock()
	return nil
}

func (s *mapStore) Get(k []byte) ([]byte, bool) {
	s.mu.RLock()
	v, ok := s.m[string(k)]
	s.mu.RUnlock()
	return v, ok
}

func (s *mapStore) Delete(k []byte) (bool, error) {
	s.mu.Lock()
	_, ok := s.m[string(k)]
	delete(s.m, string(k))
	s.mu.Unlock()
	return ok, nil
}

func (s *mapStore) Name() string { return "HashMap" }

// --- server -------------------------------------------------------------------

// Config tunes the server's lifecycle and resource limits. The zero value
// means: no per-command deadlines, unlimited connections, 500ms drain on
// Close, no SCM counters in `stats`.
type Config struct {
	// ReadTimeout bounds how long the server waits for the next command (and
	// its payload) on a connection; expiry closes the connection. 0 disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response flush. 0 disables.
	WriteTimeout time.Duration
	// MaxConns caps simultaneous connections; excess clients receive
	// "SERVER_ERROR max connections reached" and are disconnected. 0 means
	// unlimited.
	MaxConns int
	// DrainTimeout is the grace period Close gives in-flight commands before
	// force-closing their connections. 0 means 500ms.
	DrainTimeout time.Duration
	// Pool, when set, adds the SCM emulator counters (scm_* lines) to the
	// `stats` command output.
	Pool *scm.Pool
	// Pools lists every SCM pool behind a sharded store; `stats` reports the
	// scm_* counters summed across them and /metrics exposes both the
	// aggregate and per-shard labeled series. When empty, Pool (if any) is
	// used alone. Setting both is equivalent to Pools alone.
	Pools []*scm.Pool
	// Events, when set, receives noteworthy server events (rejected
	// connections, store errors, slow requests) for the /debug/events
	// endpoint.
	Events *obs.EventRing
	// Tracer, when set, samples request spans (parse/store/reply phases)
	// and is handed down to the storage engine when it supports SetTracer,
	// so one sampled request shows both the server-side and tree-side
	// attribution. Server spans carry time only; the engine spans own the
	// flush/fence attribution (no double counting).
	Tracer *trace.Tracer
	// SlowOpThreshold, when >0, counts and event-logs every request that
	// takes at least this long — always on, independent of trace sampling,
	// because the server already times each request.
	SlowOpThreshold time.Duration
}

const defaultDrainTimeout = 500 * time.Millisecond

// Server is a memcached-protocol server with connection tracking, graceful
// shutdown and a metrics layer surfaced through the `stats` command.
type Server struct {
	store   Store
	cfg     Config
	ln      net.Listener
	metrics Metrics
	wg      sync.WaitGroup
	closing atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") with default Config
// and returns the bound address.
func Serve(addr string, store Store) (*Server, string, error) {
	return ServeConfig(addr, store, Config{})
}

// ServeConfig starts listening on addr with the given Config and returns the
// bound address.
func ServeConfig(addr string, store Store, cfg Config) (*Server, string, error) {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = defaultDrainTimeout
	}
	if len(cfg.Pools) == 0 && cfg.Pool != nil {
		cfg.Pools = []*scm.Pool{cfg.Pool}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	s := &Server{store: store, cfg: cfg, ln: ln, conns: map[net.Conn]struct{}{}}
	s.metrics.start = time.Now()
	if cfg.Tracer != nil {
		if ts, ok := store.(interface{ SetTracer(*trace.Tracer) }); ok {
			ts.SetTracer(cfg.Tracer)
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, ln.Addr().String(), nil
}

// Metrics exposes the server's live counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// RegisterMetrics exposes the server's counters and histograms on reg
// ("memkv" prefix), along with the SCM pool counters ("scm") when the server
// was configured with one and the storage engine's own tree counters
// ("fptree"/"htm") when the engine provides them.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	s.metrics.RegisterMetrics(reg, "memkv")
	if len(s.cfg.Pools) > 0 {
		scm.RegisterPoolsMetrics(reg, "scm", s.cfg.Pools)
	}
	if ms, ok := s.store.(interface{ RegisterMetrics(*obs.Registry) }); ok {
		ms.RegisterMetrics(reg)
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.RegisterMetrics(reg, "trace")
	}
}

// event records a noteworthy occurrence in the configured ring, if any.
func (s *Server) event(kind, format string, args ...interface{}) {
	if s.cfg.Events != nil {
		s.cfg.Events.Record(kind, format, args...)
	}
}

// Close stops the listener and shuts down every live connection: handlers
// get DrainTimeout to finish their current command (idle connections are
// released by the same deadline), after which remaining connections are
// force-closed. It is safe to call multiple times.
func (s *Server) Close() error {
	err := s.ln.Close()
	if s.closing.Swap(true) {
		s.wg.Wait()
		return err
	}
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	s.mu.Lock()
	for c := range s.conns {
		c.SetDeadline(deadline)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Until(deadline) + s.cfg.DrainTimeout):
		// A handler extended its own deadline past the drain window (or is
		// blocked writing to a dead peer): pull the plug.
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// DumpStats writes the current stats (the same lines the `stats` protocol
// command reports, newline-terminated) to w.
func (s *Server) DumpStats(w io.Writer) {
	s.writeStats(w, "\n")
	fmt.Fprintf(w, "END\n")
}

func (s *Server) writeStats(w io.Writer, eol string) {
	fmt.Fprintf(w, "STAT version %s%s", Version, eol)
	fmt.Fprintf(w, "STAT engine %s%s", s.store.Name(), eol)
	if ss, ok := s.store.(ShardStatser); ok {
		fmt.Fprintf(w, "STAT shards %d%s", ss.NumShards(), eol)
	}
	s.metrics.writeTo(w, eol)
	if len(s.cfg.Pools) > 0 {
		// One scm_* block regardless of shard count: counters summed across
		// every shard pool (`stats shards` breaks them out per shard).
		var size int64
		var ps scm.StatsSnapshot
		for _, p := range s.cfg.Pools {
			size += p.Size()
			ps = ps.Add(p.Stats().Snapshot())
		}
		stat := func(k string, v interface{}) { fmt.Fprintf(w, "STAT %s %v%s", k, v, eol) }
		stat("scm_pool_bytes", size)
		stat("scm_reads", ps.Reads)
		stat("scm_writes", ps.Writes)
		stat("scm_read_hits", ps.ReadHits)
		stat("scm_read_misses", ps.ReadMisses)
		stat("scm_flushes", ps.Flushes)
		stat("scm_fences", ps.Fences)
		stat("scm_allocs", ps.Allocs)
		stat("scm_frees", ps.Frees)
		stat("scm_bytes_flushed", ps.BytesFlushed)
		stat("scm_syncs", ps.Syncs)
		stat("scm_sync_nanos", ps.SyncNanos)
	}
}

// track registers a connection; it reports (accepted, atCapacity).
func (s *Server) track(c net.Conn) (bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing.Load() {
		return false, false
	}
	if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
		return false, true
	}
	s.conns[c] = struct{}{}
	return true, false
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.metrics.TotalConnections.Add(1)
		ok, full := s.track(conn)
		if !ok {
			if full {
				s.metrics.RejectedConnections.Add(1)
				s.event("conn", "rejected %s: max connections reached", conn.RemoteAddr())
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				io.WriteString(conn, "SERVER_ERROR max connections reached\r\n")
			}
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// pipelineDepth bounds the per-connection reply queue: the reader/executor
// may run this many commands ahead of the writer before back-pressure blocks
// it. Replies stay strictly in command order — the queue is the order.
const pipelineDepth = 128

// replyBufPool recycles the per-command reply buffers that travel from the
// reader/executor goroutine to the connection's writer goroutine.
var replyBufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

func getReplyBuf() *bytes.Buffer {
	b := replyBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// connWriter is the write half of a pipelined connection: an in-order queue
// of reply buffers drained by one goroutine that coalesces every reply
// already queued into a single buffered flush — hundreds of pipelined
// commands cost one write syscall per readable burst instead of one each.
type connWriter struct {
	out    chan *bytes.Buffer
	done   chan struct{}
	failed atomic.Bool // a flush failed; the connection is dead for writing
}

// run drains the queue until it is closed. After a write failure it keeps
// draining (recycling buffers, writing nothing) so the reader never blocks
// on a dead writer.
func (cw *connWriter) run(s *Server, conn net.Conn, w *bufio.Writer) {
	defer close(cw.done)
	flush := func() {
		if cw.failed.Load() || w.Buffered() == 0 {
			return
		}
		if s.cfg.WriteTimeout > 0 && !s.closing.Load() {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if w.Flush() != nil {
			cw.failed.Store(true)
		}
	}
	write := func(b *bytes.Buffer) {
		if !cw.failed.Load() {
			w.Write(b.Bytes()) // errors are sticky and surface at Flush
		}
		replyBufPool.Put(b)
	}
	for buf := range cw.out {
		write(buf)
		// Coalesce the burst: fold in every reply already queued before
		// paying the flush syscall.
		for coalescing := true; coalescing; {
			select {
			case more, ok := <-cw.out:
				if !ok {
					flush()
					return
				}
				write(more)
			default:
				coalescing = false
			}
		}
		flush()
	}
	flush()
}

func (s *Server) handle(conn net.Conn) {
	m := &s.metrics
	r := bufio.NewReader(countingReader{conn, &m.BytesRead})
	w := bufio.NewWriter(countingWriter{conn, &m.BytesWritten})
	cw := &connWriter{out: make(chan *bytes.Buffer, pipelineDepth), done: make(chan struct{})}
	go cw.run(s, conn, w)
	defer func() {
		close(cw.out)
		<-cw.done // final flush of any queued replies (e.g. after quit)
		conn.Close()
		s.untrack(conn)
		s.metrics.CurrConnections.Add(-1)
	}()
	s.metrics.CurrConnections.Add(1)
	enqueue := func(b *bytes.Buffer) bool {
		if cw.failed.Load() {
			replyBufPool.Put(b)
			return false
		}
		cw.out <- b
		return true
	}
	reply := func(msg string) bool {
		b := getReplyBuf()
		b.WriteString(msg)
		return enqueue(b)
	}
	for {
		if s.closing.Load() || cw.failed.Load() {
			return
		}
		if s.cfg.ReadTimeout > 0 && !s.closing.Load() {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		start := time.Now()
		switch fields[0] {
		case "set":
			sp := s.cfg.Tracer.Start(trace.OpReqSet)
			keep := s.cmdSet(sp, fields, r, reply, start)
			sp.Finish()
			s.noteSlow("set", fields, start)
			if !keep {
				return
			}
		case "get", "gets":
			sp := s.cfg.Tracer.Start(trace.OpReqGet)
			keep := s.cmdGet(sp, fields, enqueue, start)
			sp.Finish()
			s.noteSlow("get", fields, start)
			if !keep {
				return
			}
		case "delete":
			sp := s.cfg.Tracer.Start(trace.OpReqDelete)
			keep := s.cmdDelete(sp, fields, reply, start)
			sp.Finish()
			s.noteSlow("delete", fields, start)
			if !keep {
				return
			}
		case "stats":
			m.CmdStats.Add(1)
			b := getReplyBuf()
			if len(fields) == 2 && fields[1] == "shards" {
				ss, ok := s.store.(ShardStatser)
				if !ok {
					m.ProtocolErrors.Add(1)
					b.WriteString("ERROR\r\n")
					if !enqueue(b) {
						return
					}
					continue
				}
				writeShardStats(b, ss, "\r\n")
			} else {
				s.writeStats(b, "\r\n")
			}
			b.WriteString("END\r\n")
			if !enqueue(b) {
				return
			}
		case "version":
			m.CmdVersion.Add(1)
			if !reply("VERSION " + Version + "\r\n") {
				return
			}
		case "quit":
			return
		default:
			m.ProtocolErrors.Add(1)
			if !reply("ERROR\r\n") {
				return
			}
		}
	}
}

// noteSlow counts and event-logs a request that crossed SlowOpThreshold.
// Unlike trace sampling this sees every request: the check rides on the
// per-request timing the latency histograms already pay for, so slow
// outliers surface even with tracing disabled.
func (s *Server) noteSlow(verb string, fields []string, start time.Time) {
	th := s.cfg.SlowOpThreshold
	if th <= 0 {
		return
	}
	d := time.Since(start)
	if d < th {
		return
	}
	s.metrics.SlowOps.Add(1)
	key := ""
	if len(fields) > 1 {
		key = fields[1]
	}
	s.event("slow", "%s %q took %s (threshold %s)", verb, key, d, th)
}

// cmdSet handles one `set <key> <flags> <exptime> <bytes> [noreply]`
// command; it reports whether the connection should stay open. sp is nil
// unless this request was sampled.
func (s *Server) cmdSet(sp *trace.Span, fields []string, r *bufio.Reader, reply func(string) bool, start time.Time) bool {
	sp.Enter(trace.PhaseParse)
	m := &s.metrics
	noreply := len(fields) == 6 && fields[5] == "noreply"
	if len(fields) < 5 || len(fields) > 6 || (len(fields) == 6 && !noreply) {
		m.ProtocolErrors.Add(1)
		return reply("CLIENT_ERROR bad command line format\r\n")
	}
	n, err := strconv.Atoi(fields[4])
	if err != nil || n < 0 {
		// The payload length is unknowable; the stream cannot be
		// resynchronized. Report and keep reading (as memcached does).
		m.ProtocolErrors.Add(1)
		return reply("CLIENT_ERROR bad command line format\r\n")
	}
	if n > MaxValueSize {
		// Consume the declared payload so framing stays intact, then
		// reject. Oversize is a client error, reported even on noreply.
		if _, err := io.CopyN(io.Discard, r, int64(n)+2); err != nil {
			return false
		}
		m.StoreErrors.Add(1)
		return reply("SERVER_ERROR object too large for cache\r\n")
	}
	data := make([]byte, n+2) // payload + trailing \r\n
	if _, err := io.ReadFull(r, data); err != nil {
		return false
	}
	if data[n] != '\r' || data[n+1] != '\n' {
		// Corrupt framing is reported even under noreply: the
		// connection is already suspect and silence would hide it.
		m.ProtocolErrors.Add(1)
		return reply("CLIENT_ERROR bad data chunk\r\n")
	}
	m.CmdSet.Add(1)
	sp.Enter(trace.PhaseStore)
	err = s.store.Set([]byte(fields[1]), data[:n])
	m.SetLatency.Observe(time.Since(start))
	sp.Enter(trace.PhaseReply)
	if err != nil {
		m.StoreErrors.Add(1)
		s.event("store", "set %q: %v", fields[1], err)
	}
	if noreply {
		return true
	}
	switch {
	case errors.Is(err, ErrValueTooLarge):
		return reply("SERVER_ERROR object too large for cache\r\n")
	case err != nil:
		return reply(fmt.Sprintf("SERVER_ERROR %v\r\n", err))
	default:
		return reply("STORED\r\n")
	}
}

// cmdGet handles one `get <key>...` command; it reports whether the
// connection should stay open. The whole response (VALUE blocks + END) is
// built in one reply buffer and enqueued as a unit, so pipelined gets
// coalesce into the writer's per-burst flush.
func (s *Server) cmdGet(sp *trace.Span, fields []string, enqueue func(*bytes.Buffer) bool, start time.Time) bool {
	sp.Enter(trace.PhaseParse)
	m := &s.metrics
	b := getReplyBuf()
	if len(fields) < 2 {
		m.ProtocolErrors.Add(1)
		b.WriteString("ERROR\r\n")
		return enqueue(b)
	}
	sp.Enter(trace.PhaseStore)
	for _, key := range fields[1:] {
		m.CmdGet.Add(1)
		if v, ok := s.store.Get([]byte(key)); ok {
			m.GetHits.Add(1)
			fmt.Fprintf(b, "VALUE %s 0 %d\r\n", key, len(v))
			b.Write(v)
			b.WriteString("\r\n")
		} else {
			m.GetMisses.Add(1)
		}
	}
	sp.Enter(trace.PhaseReply)
	b.WriteString("END\r\n")
	m.GetLatency.Observe(time.Since(start))
	return enqueue(b)
}

// cmdDelete handles one `delete <key> [noreply]` command; it reports whether
// the connection should stay open.
func (s *Server) cmdDelete(sp *trace.Span, fields []string, reply func(string) bool, start time.Time) bool {
	sp.Enter(trace.PhaseParse)
	m := &s.metrics
	noreply := len(fields) == 3 && fields[2] == "noreply"
	if len(fields) < 2 || len(fields) > 3 || (len(fields) == 3 && !noreply) {
		m.ProtocolErrors.Add(1)
		return reply("CLIENT_ERROR bad command line format\r\n")
	}
	m.CmdDelete.Add(1)
	sp.Enter(trace.PhaseStore)
	found, err := s.store.Delete([]byte(fields[1]))
	m.DeleteLatency.Observe(time.Since(start))
	sp.Enter(trace.PhaseReply)
	if err != nil {
		m.StoreErrors.Add(1)
		s.event("store", "delete %q: %v", fields[1], err)
	} else if found {
		m.DeleteHits.Add(1)
	} else {
		m.DeleteMisses.Add(1)
	}
	if noreply {
		return true
	}
	switch {
	case err != nil:
		return reply(fmt.Sprintf("SERVER_ERROR %v\r\n", err))
	case found:
		return reply("DELETED\r\n")
	default:
		return reply("NOT_FOUND\r\n")
	}
}
