// Package kvserver is the memcached integration of Section 6.4: a TCP
// key-value cache speaking a subset of the memcached text protocol (get/set),
// whose internal hash table is replaced by the persistent trees under test.
// As in the paper, full string keys are stored in the tree (not their
// hashes), and the concurrent trees service requests in parallel while the
// single-threaded trees serialize behind a global lock.
package kvserver

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"fptree/internal/core"
	"fptree/internal/nvtree"
	"fptree/internal/scm"
)

// Store is the pluggable storage engine behind the server.
type Store interface {
	Set(key, value []byte) error
	Get(key []byte) ([]byte, bool)
	Name() string
}

// MaxValueSize bounds stored values (they are stored inline in the trees'
// fixed-size value slots with a 2-byte length prefix).
const MaxValueSize = 120

const slotSize = MaxValueSize + 2

func encodeVal(v []byte) []byte {
	buf := make([]byte, slotSize)
	buf[0] = byte(len(v))
	buf[1] = byte(len(v) >> 8)
	copy(buf[2:], v)
	return buf
}

func decodeVal(buf []byte) []byte {
	if len(buf) < 2 {
		return nil
	}
	n := int(buf[0]) | int(buf[1])<<8
	if n > len(buf)-2 {
		n = len(buf) - 2
	}
	return buf[2 : 2+n]
}

// --- stores -----------------------------------------------------------------

// NewFPTreeCStore backs the cache with the concurrent FPTree.
func NewFPTreeCStore(pool *scm.Pool) (Store, error) {
	t, err := core.CCreateVar(pool, core.Config{LeafCap: 56, InnerFanout: 64, ValueSize: slotSize})
	if err != nil {
		return nil, err
	}
	return cvarStore{t}, nil
}

type cvarStore struct{ t *core.CVarTree }

func (s cvarStore) Set(k, v []byte) error { return s.t.Upsert(k, encodeVal(v)) }
func (s cvarStore) Get(k []byte) ([]byte, bool) {
	v, ok := s.t.Find(k)
	if !ok {
		return nil, false
	}
	return decodeVal(v), true
}
func (s cvarStore) Name() string { return "FPTreeC" }

// NewFPTreeStore backs the cache with the single-threaded FPTree behind a
// global lock (the paper's non-concurrent configuration).
func NewFPTreeStore(pool *scm.Pool) (Store, error) {
	t, err := core.CreateVar(pool, core.Config{LeafCap: 56, InnerFanout: 2048, GroupSize: 8, ValueSize: slotSize})
	if err != nil {
		return nil, err
	}
	return &lockedVarStore{t: t, name: "FPTree"}, nil
}

// NewPTreeStore backs the cache with the single-threaded PTree.
func NewPTreeStore(pool *scm.Pool) (Store, error) {
	t, err := core.CreateVar(pool, core.Config{Variant: core.VariantPTree, LeafCap: 32, InnerFanout: 256, ValueSize: slotSize})
	if err != nil {
		return nil, err
	}
	return &lockedVarStore{t: t, name: "PTree"}, nil
}

type lockedVarStore struct {
	mu   sync.Mutex
	t    *core.VarTree
	name string
}

func (s *lockedVarStore) Set(k, v []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Upsert(k, encodeVal(v))
}

func (s *lockedVarStore) Get(k []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.t.Find(k)
	if !ok {
		return nil, false
	}
	return decodeVal(v), true
}

func (s *lockedVarStore) Name() string { return s.name }

// NewNVTreeCStore backs the cache with the concurrent NV-Tree.
func NewNVTreeCStore(pool *scm.Pool) (Store, error) {
	t, err := nvtree.CNewVar(pool, nvtree.Config{LeafCap: 32, InnerCap: 128, ValueSize: slotSize})
	if err != nil {
		return nil, err
	}
	return nvStore{t}, nil
}

type nvStore struct{ t *nvtree.CVarTree }

func (s nvStore) Set(k, v []byte) error { return s.t.Upsert(k, encodeVal(v)) }
func (s nvStore) Get(k []byte) ([]byte, bool) {
	v, ok := s.t.Find(k)
	if !ok {
		return nil, false
	}
	return decodeVal(v), true
}
func (s nvStore) Name() string { return "NV-TreeC" }

// NewHashMapStore is vanilla memcached's transient hash table.
func NewHashMapStore() Store {
	return &mapStore{m: map[string][]byte{}}
}

type mapStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

func (s *mapStore) Set(k, v []byte) error {
	s.mu.Lock()
	s.m[string(k)] = append([]byte(nil), v...)
	s.mu.Unlock()
	return nil
}

func (s *mapStore) Get(k []byte) ([]byte, bool) {
	s.mu.RLock()
	v, ok := s.m[string(k)]
	s.mu.RUnlock()
	return v, ok
}

func (s *mapStore) Name() string { return "HashMap" }

// --- server -------------------------------------------------------------------

// Server is a minimal memcached-protocol server.
type Server struct {
	store Store
	ln    net.Listener
	wg    sync.WaitGroup
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and returns the bound
// address.
func Serve(addr string, store Store) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	s := &Server{store: store, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, ln.Addr().String(), nil
}

// Close stops the listener and waits for connection handlers to drain.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "set":
			// set <key> <flags> <exptime> <bytes>
			if len(fields) < 5 {
				fmt.Fprintf(w, "CLIENT_ERROR bad command\r\n")
				w.Flush()
				continue
			}
			n, err := strconv.Atoi(fields[4])
			if err != nil || n < 0 || n > MaxValueSize {
				fmt.Fprintf(w, "SERVER_ERROR object too large for cache\r\n")
				w.Flush()
				continue
			}
			data := make([]byte, n+2) // payload + trailing \r\n
			if _, err := readFull(r, data); err != nil {
				return
			}
			if err := s.store.Set([]byte(fields[1]), data[:n]); err != nil {
				fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
			} else {
				fmt.Fprintf(w, "STORED\r\n")
			}
			w.Flush()
		case "get":
			for _, key := range fields[1:] {
				if v, ok := s.store.Get([]byte(key)); ok {
					fmt.Fprintf(w, "VALUE %s 0 %d\r\n", key, len(v))
					w.Write(v)
					w.WriteString("\r\n")
				}
			}
			fmt.Fprintf(w, "END\r\n")
			w.Flush()
		case "quit":
			return
		default:
			fmt.Fprintf(w, "ERROR\r\n")
			w.Flush()
		}
	}
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
