package kvserver

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast ops, 10 slow ops.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// Quantiles are power-of-two bucket upper bounds: conservative, never
	// below the true value, never more than 2x above it.
	if s.P50 < 1*time.Microsecond || s.P50 >= 2*time.Microsecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < 1*time.Millisecond || s.P99 >= 2*time.Millisecond {
		t.Fatalf("p99 = %v", s.P99)
	}
	if s.Max < 1*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	if s.Mean <= 1*time.Microsecond || s.Mean >= 1*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestHistogramEmptyAndZero(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped, must not panic or corrupt
	if s := h.Snapshot(); s.Count != 2 || s.P50 != 0 {
		t.Fatalf("zero snapshot = %+v", s)
	}
}

func TestMetricsWriteTo(t *testing.T) {
	var m Metrics
	m.CmdSet.Add(3)
	m.SetLatency.Observe(time.Millisecond)
	var b strings.Builder
	m.writeTo(&b, "\n")
	out := b.String()
	for _, want := range []string{"STAT cmd_set 3\n", "STAT set_latency_count 1\n", "STAT curr_connections 0\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("writeTo output missing %q:\n%s", want, out)
		}
	}
}
