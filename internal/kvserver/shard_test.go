package kvserver

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fptree/internal/obs"
	"fptree/internal/scm"
)

func newShardedFPTreeC(t *testing.T, n int) *ShardedStore {
	t.Helper()
	pools := make([]*scm.Pool, n)
	stores := make([]Store, n)
	for i := range stores {
		pools[i] = pool()
		st, err := NewFPTreeCStore(pools[i])
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	ss, err := NewShardedStore(stores, pools)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// TestShardForStable pins the key→shard mapping: it must be a pure function
// of (key, shard count) — no process state — because the per-shard arena
// files persist the partition across restarts. A drift here would strand
// every persisted key on the wrong shard.
func TestShardForStable(t *testing.T) {
	a := newShardedFPTreeC(t, 4)
	b := newShardedFPTreeC(t, 4)
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		sa, sb := a.ShardFor(k), b.ShardFor(k)
		if sa != sb {
			t.Fatalf("ShardFor(%s) differs across instances: %d vs %d", k, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("ShardFor(%s) = %d out of range", k, sa)
		}
		counts[sa]++
	}
	// The hash must spread keys: with 4096 keys over 4 shards, each shard
	// should hold roughly 1024; a shard below 1/4 of that indicates a broken
	// hash, not bad luck.
	for i, c := range counts {
		if c < 256 {
			t.Fatalf("shard %d holds only %d/4096 keys: %v", i, c, counts)
		}
	}
	// One bucket degenerates to the identity mapping.
	one := newShardedFPTreeC(t, 1)
	if got := one.ShardFor([]byte("anything")); got != 0 {
		t.Fatalf("ShardFor with 1 shard = %d", got)
	}
}

// TestShardedStoreDifferential checks the router against a plain map oracle:
// routing must never lose, duplicate or misdeliver a key.
func TestShardedStoreDifferential(t *testing.T) {
	ss := newShardedFPTreeC(t, 4)
	oracle := map[string]string{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(800))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", i)
			if err := ss.Set([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 2:
			found, err := ss.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if _, want := oracle[k]; found != want {
				t.Fatalf("delete(%s) found=%v, oracle=%v", k, found, want)
			}
			delete(oracle, k)
		}
	}
	if ss.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle has %d", ss.Len(), len(oracle))
	}
	for k, want := range oracle {
		v, ok := ss.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("get(%s) = %q,%v, want %q", k, v, ok, want)
		}
	}
	if err := ss.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func openShardedFromFiles(t *testing.T, path string, n int) (*ShardedStore, []bool) {
	t.Helper()
	pools, recovered, err := scm.OpenFileShards(path, n, 16<<20, scm.LatencyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	stores, err := BuildShardStores(n, func(i int) (Store, error) {
		if recovered[i] {
			return OpenFPTreeCStore(pools[i], 2)
		}
		return NewFPTreeCStore(pools[i])
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewShardedStore(stores, pools)
	if err != nil {
		t.Fatal(err)
	}
	return ss, recovered
}

// TestShardedRestartRecoversAllShards persists keys across a fleet of shard
// files, closes cleanly, reopens, and requires every key back — which holds
// only if the hash is restart-stable AND every shard file recovered.
func TestShardedRestartRecoversAllShards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data")
	const n = 4

	ss, recovered := openShardedFromFiles(t, path, n)
	for _, r := range recovered {
		if r {
			t.Fatal("fresh files reported recovered")
		}
	}
	const keys = 500
	for i := 0; i < keys; i++ {
		if err := ss.Set([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := os.Stat(scm.ShardPath(path, i)); err != nil {
			t.Fatalf("shard file %d: %v", i, err)
		}
	}

	ss2, recovered2 := openShardedFromFiles(t, path, n)
	defer ss2.Close()
	for i, r := range recovered2 {
		if !r {
			t.Fatalf("shard %d did not recover", i)
		}
	}
	if ss2.Len() != keys {
		t.Fatalf("recovered Len = %d, want %d", ss2.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok := ss2.Get([]byte(k))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after restart get(%s) = %q,%v", k, v, ok)
		}
	}
	if err := ss2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Reopening narrower than the on-disk fleet must fail loudly, not
	// silently strand the keys of the dropped shards.
	if err := ss2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := scm.OpenFileShards(path, n/2, 16<<20, scm.LatencyConfig{}); err == nil {
		t.Fatal("opening 4-shard fleet with 2 shards succeeded")
	}
}

// TestShardedSyncFanOut pins the -sync ticker contract: one router Sync must
// reach every shard pool.
func TestShardedSyncFanOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data")
	const n = 3
	ss, _ := openShardedFromFiles(t, path, n)
	defer ss.Close()
	before := make([]uint64, n)
	for i := 0; i < n; i++ {
		before[i] = ss.ShardStat(i).Pool.Stats().Syncs.Load()
	}
	if err := ss.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := ss.ShardStat(i).Pool.Stats().Syncs.Load(); got != before[i]+1 {
			t.Fatalf("shard %d syncs = %d, want %d", i, got, before[i]+1)
		}
	}
}

// TestShardedCloseMarksClean: router Close must write the clean-shutdown
// marker on every shard file, so the next open of each shard skips crash
// recovery (the memkv shutdown path relies on this fan-out).
func TestShardedCloseMarksClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data")
	const n = 3
	ss, _ := openShardedFromFiles(t, path, n)
	if err := ss.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	pools, _, err := scm.OpenFileShards(path, n, 16<<20, scm.LatencyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer scm.ClosePools(pools)
	for i, p := range pools {
		if !p.WasCleanShutdown() {
			t.Fatalf("shard %d reopened dirty after Close", i)
		}
	}
}

// TestShardedServerStats drives `stats` and `stats shards` over TCP against a
// sharded server: the flat form reports the fleet width and pool counters
// summed across shards; the verbose form breaks them out per shard.
func TestShardedServerStats(t *testing.T) {
	ss := newShardedFPTreeC(t, 4)
	pools := make([]*scm.Pool, ss.NumShards())
	var wantBytes int64
	for i := range pools {
		pools[i] = ss.ShardStat(i).Pool
		wantBytes += pools[i].Size()
	}
	srv, addr, err := ServeConfig("127.0.0.1:0", ss, Config{Pools: pools})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	const keys = 64
	for i := 0; i < keys; i++ {
		if err := c.set(fmt.Sprintf("k%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := c.stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["shards"] != "4" {
		t.Fatalf("stats shards = %q", stats["shards"])
	}
	if stats["engine"] != "FPTreeC[4 shards]" {
		t.Fatalf("engine = %q", stats["engine"])
	}
	if stats["scm_pool_bytes"] != fmt.Sprint(wantBytes) {
		t.Fatalf("scm_pool_bytes = %q, want %d (sum of shard pools)", stats["scm_pool_bytes"], wantBytes)
	}
	var gotWrites uint64
	if _, err := fmt.Sscan(stats["scm_writes"], &gotWrites); err != nil {
		t.Fatalf("scm_writes = %q: %v", stats["scm_writes"], err)
	}
	var wantWrites uint64
	for _, p := range pools {
		wantWrites += p.Stats().Writes.Load()
	}
	if gotWrites == 0 || gotWrites > wantWrites {
		t.Fatalf("scm_writes = %d, fleet total %d", gotWrites, wantWrites)
	}

	// Verbose per-shard form.
	fmt.Fprintf(c.w, "stats shards\r\n")
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	per := map[string]string{}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			break
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 || parts[0] != "STAT" {
			t.Fatalf("bad stats shards line %q", line)
		}
		per[parts[1]] = parts[2]
	}
	if per["shards"] != "4" {
		t.Fatalf("stats shards: shards = %q", per["shards"])
	}
	lenSum := 0
	for i := 0; i < 4; i++ {
		pfx := fmt.Sprintf("shard%d_", i)
		if per[pfx+"engine"] != "FPTreeC" {
			t.Fatalf("%sengine = %q", pfx, per[pfx+"engine"])
		}
		var n int
		if _, err := fmt.Sscan(per[pfx+"len"], &n); err != nil {
			t.Fatalf("%slen = %q", pfx, per[pfx+"len"])
		}
		if n == 0 {
			t.Fatalf("shard %d is empty; %d keys should spread over 4 shards", i, keys)
		}
		lenSum += n
		if per[pfx+"scm_writes"] == "" || per[pfx+"scm_writes"] == "0" {
			t.Fatalf("%sscm_writes = %q", pfx, per[pfx+"scm_writes"])
		}
	}
	if lenSum != keys {
		t.Fatalf("per-shard lens sum to %d, want %d", lenSum, keys)
	}
}

// TestStatsShardsOnUnshardedServer: the verbose form is an ERROR on a plain
// store, and the connection stays usable.
func TestStatsShardsOnUnshardedServer(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, r := dialRaw(t, addr)
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "stats shards\r\nversion\r\n")
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "ERROR") {
		t.Fatalf("stats shards on unsharded = %q,%v", line, err)
	}
	if line, err = r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VERSION ") {
		t.Fatalf("connection unusable after stats shards error: %q,%v", line, err)
	}
}

// TestShardedMetricsRegistry: a sharded fleet registers the canonical
// unlabeled tree/HTM counters (summed) plus per-shard labeled series, and
// the resulting exposition parses.
func TestShardedMetricsRegistry(t *testing.T) {
	ss := newShardedFPTreeC(t, 4)
	pools := make([]*scm.Pool, ss.NumShards())
	for i := range pools {
		pools[i] = ss.ShardStat(i).Pool
	}
	srv, addr, err := ServeConfig("127.0.0.1:0", ss, Config{Pools: pools})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	for i := 0; i < 64; i++ {
		if err := c.set(fmt.Sprintf("k%03d", i), "v"); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := c.get(fmt.Sprintf("k%03d", i)); err != nil || !ok {
			t.Fatalf("get = %v,%v", ok, err)
		}
	}

	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	snap := reg.Snapshot()
	agg, ok := snap["fptree_searches_total"]
	if !ok || agg == 0 {
		t.Fatalf("aggregate fptree_searches_total = %v,%v", agg, ok)
	}
	var labeledSum float64
	for i := 0; i < 4; i++ {
		series := obs.Series("fptree_searches_total", obs.ShardLabel(i))
		v, ok := snap[series]
		if !ok {
			t.Fatalf("missing %s in snapshot", series)
		}
		labeledSum += v
	}
	if labeledSum != agg {
		t.Fatalf("per-shard searches sum to %v, aggregate is %v", labeledSum, agg)
	}
	for i := 0; i < 4; i++ {
		series := obs.Series("scm_writes_total", obs.ShardLabel(i))
		if _, ok := snap[series]; !ok {
			t.Fatalf("missing %s in snapshot", series)
		}
		series = obs.Series("memkv_shard_len", obs.ShardLabel(i))
		if v, ok := snap[series]; !ok || v == 0 {
			t.Fatalf("%s = %v,%v", series, v, ok)
		}
	}
}
