package kvserver

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"fptree/internal/scm"
)

func pool() *scm.Pool { return scm.NewPool(128<<20, scm.LatencyConfig{}) }

func allStores(t *testing.T) []Store {
	t.Helper()
	fpc, err := NewFPTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewFPTreeStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPTreeStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	nv, err := NewNVTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	return []Store{fpc, fp, pt, nv, NewHashMapStore()}
}

func TestStoresSetGet(t *testing.T) {
	for _, s := range allStores(t) {
		t.Run(s.Name(), func(t *testing.T) {
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("key-%05d", i))
				v := []byte(strings.Repeat("x", i%100))
				if err := s.Set(k, v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("key-%05d", i))
				v, ok := s.Get(k)
				if !ok || len(v) != i%100 {
					t.Fatalf("get(%s) = %d bytes, %v", k, len(v), ok)
				}
			}
			if _, ok := s.Get([]byte("absent")); ok {
				t.Fatal("found absent key")
			}
			// Overwrite.
			if err := s.Set([]byte("key-00001"), []byte("new")); err != nil {
				t.Fatal(err)
			}
			if v, _ := s.Get([]byte("key-00001")); string(v) != "new" {
				t.Fatalf("overwrite failed: %q", v)
			}
		})
	}
}

func TestServerProtocol(t *testing.T) {
	store, err := NewFPTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	if err := c.set("hello", "world"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.get("hello")
	if err != nil || !ok || v != "world" {
		t.Fatalf("get = %q,%v,%v", v, ok, err)
	}
	if _, ok, err := c.get("absent"); err != nil || ok {
		t.Fatalf("absent get = %v,%v", ok, err)
	}
	// Empty value round-trip.
	if err := c.set("empty", ""); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.get("empty"); !ok || v != "" {
		t.Fatalf("empty = %q,%v", v, ok)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	store, err := NewFPTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := dialMC(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.close()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("c%d-%d", w, i)
				if err := c.set(k, k); err != nil {
					t.Error(err)
					return
				}
				v, ok, err := c.get(k)
				if err != nil || !ok || v != k {
					t.Errorf("get(%s) = %q,%v,%v", k, v, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMCBenchmarkRuns(t *testing.T) {
	store := NewHashMapStore()
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := RunMCBenchmark(addr, 4, 400, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetOps <= 0 || res.GetOps <= 0 {
		t.Fatalf("rates = %v", res)
	}
}

func TestValueTooLargeRejected(t *testing.T) {
	store := NewHashMapStore()
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if err := c.set("big", strings.Repeat("x", MaxValueSize+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
}
