package kvserver

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fptree/internal/scm"
)

// pool is deliberately small: tests store at most a few hundred tiny values,
// and zeroing big arenas dominates test runtime on slow machines.
func pool() *scm.Pool { return scm.NewPool(16<<20, scm.LatencyConfig{}) }

func allStores(t *testing.T) []Store {
	t.Helper()
	fpc, err := NewFPTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewFPTreeStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPTreeStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	nv, err := NewNVTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	return []Store{fpc, fp, pt, nv, NewHashMapStore()}
}

func TestStoresSetGet(t *testing.T) {
	for _, s := range allStores(t) {
		t.Run(s.Name(), func(t *testing.T) {
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("key-%05d", i))
				v := []byte(strings.Repeat("x", i%100))
				if err := s.Set(k, v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("key-%05d", i))
				v, ok := s.Get(k)
				if !ok || len(v) != i%100 {
					t.Fatalf("get(%s) = %d bytes, %v", k, len(v), ok)
				}
			}
			if _, ok := s.Get([]byte("absent")); ok {
				t.Fatal("found absent key")
			}
			// Overwrite.
			if err := s.Set([]byte("key-00001"), []byte("new")); err != nil {
				t.Fatal(err)
			}
			if v, _ := s.Get([]byte("key-00001")); string(v) != "new" {
				t.Fatalf("overwrite failed: %q", v)
			}
		})
	}
}

func TestStoresDelete(t *testing.T) {
	for _, s := range allStores(t) {
		t.Run(s.Name(), func(t *testing.T) {
			if err := s.Set([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			found, err := s.Delete([]byte("k"))
			if err != nil || !found {
				t.Fatalf("delete = %v,%v", found, err)
			}
			if _, ok := s.Get([]byte("k")); ok {
				t.Fatal("key survived delete")
			}
			found, err = s.Delete([]byte("k"))
			if err != nil || found {
				t.Fatalf("second delete = %v,%v", found, err)
			}
		})
	}
}

func TestStoresOversizedValueError(t *testing.T) {
	big := []byte(strings.Repeat("x", MaxValueSize+1))
	for _, s := range allStores(t) {
		t.Run(s.Name(), func(t *testing.T) {
			err := s.Set([]byte("big"), big)
			if !errors.Is(err, ErrValueTooLarge) {
				t.Fatalf("Set oversized = %v, want ErrValueTooLarge", err)
			}
			if _, ok := s.Get([]byte("big")); ok {
				t.Fatal("oversized value was stored")
			}
			// Exactly MaxValueSize must still fit.
			if err := s.Set([]byte("max"), big[:MaxValueSize]); err != nil {
				t.Fatal(err)
			}
			if v, ok := s.Get([]byte("max")); !ok || len(v) != MaxValueSize {
				t.Fatalf("max-size value = %d bytes, %v", len(v), ok)
			}
		})
	}
}

func TestServerProtocol(t *testing.T) {
	store, err := NewFPTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	if err := c.set("hello", "world"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.get("hello")
	if err != nil || !ok || v != "world" {
		t.Fatalf("get = %q,%v,%v", v, ok, err)
	}
	if _, ok, err := c.get("absent"); err != nil || ok {
		t.Fatalf("absent get = %v,%v", ok, err)
	}
	// Empty value round-trip.
	if err := c.set("empty", ""); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.get("empty"); !ok || v != "" {
		t.Fatalf("empty = %q,%v", v, ok)
	}
}

func TestServerDeleteAndVersion(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	if err := c.set("k", "v"); err != nil {
		t.Fatal(err)
	}
	found, err := c.delete("k")
	if err != nil || !found {
		t.Fatalf("delete = %v,%v", found, err)
	}
	if _, ok, _ := c.get("k"); ok {
		t.Fatal("key survived delete")
	}
	found, err = c.delete("k")
	if err != nil || found {
		t.Fatalf("delete of absent key = %v,%v", found, err)
	}
	ver, err := c.version()
	if err != nil || ver != Version {
		t.Fatalf("version = %q,%v", ver, err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	store, err := NewFPTreeCStore(pool())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := dialMC(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.close()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("c%d-%d", w, i)
				if err := c.set(k, k); err != nil {
					t.Error(err)
					return
				}
				v, ok, err := c.get(k)
				if err != nil || !ok || v != k {
					t.Errorf("get(%s) = %q,%v,%v", k, v, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMCBenchmarkRuns(t *testing.T) {
	store := NewHashMapStore()
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := RunMCBenchmark(addr, 4, 400, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetOps <= 0 || res.GetOps <= 0 {
		t.Fatalf("rates = %v", res)
	}
	if res.SetCompleted != 400 || res.GetCompleted != 400 {
		t.Fatalf("completed = %d/%d, want 400/400", res.SetCompleted, res.GetCompleted)
	}
	if res.SetLatency.Count != 400 || res.GetLatency.Count != 400 {
		t.Fatalf("latency counts = %d/%d", res.SetLatency.Count, res.GetLatency.Count)
	}
}

// TestMCBenchmarkRemainder pins the fix for the dropped ops%clients
// remainder: every requested op must run, over a client count that does not
// divide the op count.
func TestMCBenchmarkRemainder(t *testing.T) {
	store := NewHashMapStore()
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const ops = 10
	res, err := RunMCBenchmark(addr, 3, ops, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetCompleted != ops || res.GetCompleted != ops {
		t.Fatalf("completed = %d/%d, want %d/%d", res.SetCompleted, res.GetCompleted, ops, ops)
	}
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("memtier-%08d", i)
		if _, ok := store.Get([]byte(k)); !ok {
			t.Fatalf("key %s was never set", k)
		}
	}
	if _, ok := store.Get([]byte(fmt.Sprintf("memtier-%08d", ops))); ok {
		t.Fatal("benchmark set more keys than requested")
	}
}

func TestValueTooLargeRejected(t *testing.T) {
	store := NewHashMapStore()
	srv, addr, err := Serve("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if err := c.set("big", strings.Repeat("x", MaxValueSize+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
	// The oversized payload must have been consumed: the connection stays in
	// sync and the next command works.
	if err := c.set("ok", "v"); err != nil {
		t.Fatal(err)
	}
}

// --- protocol edge cases ----------------------------------------------------

func dialRaw(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn, bufio.NewReader(conn)
}

// TestNoreplyPipelining pins the fix for the ignored noreply flag: a
// pipelined stream of noreply sets must produce zero response bytes, so the
// reply to a trailing get lines up with the get — the stream stays in sync.
func TestNoreplyPipelining(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, r := dialRaw(t, addr)
	defer conn.Close()

	var b strings.Builder
	const n = 50
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("val-%d", i)
		fmt.Fprintf(&b, "set k%d 0 0 %d noreply\r\n%s\r\n", i, len(v), v)
	}
	fmt.Fprintf(&b, "get k%d\r\n", n-1)
	if _, err := conn.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("VALUE k%d 0 ", n-1)
	if !strings.HasPrefix(line, want) {
		t.Fatalf("first response line = %q, want prefix %q (stream out of sync)", line, want)
	}
	if _, err := r.ReadString('\n'); err != nil { // data line
		t.Fatal(err)
	}
	if line, err = r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "END") {
		t.Fatalf("expected END, got %q,%v", line, err)
	}

	// noreply delete pipelined with a get: only the get responds.
	fmt.Fprintf(conn, "delete k%d noreply\r\nget k%d\r\n", n-1, n-1)
	if line, err = r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "END") {
		t.Fatalf("after noreply delete, got %q,%v (want END)", line, err)
	}
}

func TestMultiKeyGetWithMissingKeys(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if err := c.set("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := c.set("c", "3"); err != nil {
		t.Fatal(err)
	}

	fmt.Fprintf(c.w, "get a b c d\r\n")
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		got = append(got, line)
		if line == "END" {
			break
		}
	}
	want := []string{"VALUE a 0 1", "1", "VALUE c 0 1", "3", "END"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("multi-get = %v, want %v", got, want)
	}
}

// TestBadDataChunk pins the framing fix: a set whose payload is not
// terminated by \r\n must be rejected with CLIENT_ERROR, and because the
// declared length was consumed the connection stays usable.
func TestBadDataChunk(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, r := dialRaw(t, addr)
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	if _, err := conn.Write([]byte("set k 0 0 3\r\nabcXY")); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "CLIENT_ERROR bad data chunk") {
		t.Fatalf("bad chunk response = %q,%v", line, err)
	}
	if _, ok := srv.store.Get([]byte("k")); ok {
		t.Fatal("corrupt set was stored")
	}
	// Connection still in sync.
	if _, err := conn.Write([]byte("set k 0 0 2\r\nok\r\n")); err != nil {
		t.Fatal(err)
	}
	if line, err = r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "STORED") {
		t.Fatalf("after bad chunk, set = %q,%v", line, err)
	}
}

// TestAbruptDisconnectMidPayload drops the connection halfway through a set
// payload; the server must shed the handler and keep serving others.
func TestAbruptDisconnectMidPayload(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, _ := dialRaw(t, addr)
	if _, err := conn.Write([]byte("set k 0 0 100\r\npartial")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The server must still serve a fresh client.
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if err := c.set("alive", "yes"); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.store.Get([]byte("k")); ok {
		t.Fatal("partial payload was stored")
	}
}

// TestCloseWithIdleConnection pins the shutdown fix: Close must not deadlock
// on a handler blocked reading from an idle client.
func TestCloseWithIdleConnection(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewHashMapStore())
	if err != nil {
		t.Fatal(err)
	}
	conn, _ := dialRaw(t, addr)
	defer conn.Close()
	// Let the server register the connection.
	deadlineByConnCount(t, srv, 1)

	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return within 2s with an idle open connection")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %v", d)
	}
}

func deadlineByConnCount(t *testing.T, srv *Server, want int64) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if srv.Metrics().CurrConnections.Load() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never saw %d connection(s)", want)
}

func TestMaxConnsGracefulRejection(t *testing.T) {
	srv, addr, err := ServeConfig("127.0.0.1:0", NewHashMapStore(), Config{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.set("k", "v"); err != nil {
		t.Fatal(err)
	}

	conn2, r2 := dialRaw(t, addr)
	defer conn2.Close()
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := r2.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "SERVER_ERROR max connections reached") {
		t.Fatalf("second connection got %q,%v", line, err)
	}
	if got := srv.Metrics().RejectedConnections.Load(); got != 1 {
		t.Fatalf("rejected_connections = %d", got)
	}

	// Freeing the slot lets new clients in.
	c1.close()
	ok := false
	for i := 0; i < 200 && !ok; i++ {
		c3, err := dialMC(addr)
		if err == nil {
			if err := c3.set("again", "v"); err == nil {
				ok = true
			}
			c3.close()
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatal("connection slot never freed after close")
	}
}

func TestReadTimeoutClosesIdleConnection(t *testing.T) {
	srv, addr, err := ServeConfig("127.0.0.1:0", NewHashMapStore(), Config{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, r := dialRaw(t, addr)
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("expected the server to drop the idle connection")
	}
}

// TestStatsEndToEnd drives the full stack — protocol commands against a
// tree-backed store over TCP — and checks that `stats` reports op counters,
// latency histogram summaries and SCM pool counters.
func TestStatsEndToEnd(t *testing.T) {
	p := pool()
	store, err := NewFPTreeCStore(p)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := ServeConfig("127.0.0.1:0", store, Config{Pool: p})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := dialMC(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	for i := 0; i < 5; i++ {
		if err := c.set(fmt.Sprintf("k%d", i), "value"); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	if _, ok, _ := c.get("nope"); ok {
		t.Fatal("phantom hit")
	}
	if _, err := c.delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.version(); err != nil {
		t.Fatal(err)
	}

	stats, err := c.stats()
	if err != nil {
		t.Fatal(err)
	}
	num := func(name string) uint64 {
		t.Helper()
		v, ok := stats[name]
		if !ok {
			t.Fatalf("stats missing %q (got %d lines)", name, len(stats))
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("stat %s = %q: %v", name, v, err)
		}
		return n
	}
	if got := num("cmd_set"); got != 5 {
		t.Fatalf("cmd_set = %d", got)
	}
	if got := num("cmd_get"); got != 2 {
		t.Fatalf("cmd_get = %d", got)
	}
	if num("get_hits") != 1 || num("get_misses") != 1 {
		t.Fatalf("get_hits/misses = %s/%s", stats["get_hits"], stats["get_misses"])
	}
	if num("cmd_delete") != 1 || num("delete_hits") != 1 {
		t.Fatalf("delete counters = %s/%s", stats["cmd_delete"], stats["delete_hits"])
	}
	if num("set_latency_count") != 5 || num("get_latency_count") != 2 {
		t.Fatalf("latency counts = %s/%s", stats["set_latency_count"], stats["get_latency_count"])
	}
	for _, k := range []string{"set_latency_p50_us", "set_latency_p99_us", "get_latency_mean_us"} {
		if _, err := strconv.ParseFloat(stats[k], 64); err != nil {
			t.Fatalf("stat %s = %q: %v", k, stats[k], err)
		}
	}
	if num("scm_reads") == 0 || num("scm_writes") == 0 || num("scm_flushes") == 0 {
		t.Fatalf("scm counters = %s/%s/%s", stats["scm_reads"], stats["scm_writes"], stats["scm_flushes"])
	}
	if num("scm_pool_bytes") != uint64(p.Size()) {
		t.Fatalf("scm_pool_bytes = %s, want %d", stats["scm_pool_bytes"], p.Size())
	}
	if num("bytes_read") == 0 || num("bytes_written") == 0 {
		t.Fatal("byte counters not moving")
	}
	if num("curr_connections") != 1 {
		t.Fatalf("curr_connections = %s", stats["curr_connections"])
	}
	if stats["engine"] != "FPTreeC" {
		t.Fatalf("engine = %q", stats["engine"])
	}
}
